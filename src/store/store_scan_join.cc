#include "store/store_scan_join.h"

#include <utility>

#include "core/filter.h"
#include "core/observe.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/profile.h"
#include "store/block_cursor.h"
#include "util/timer.h"

namespace urbane::store {

StatusOr<std::unique_ptr<StoreScanJoin>> StoreScanJoin::Create(
    const StoreReader& reader, BlockCache& cache,
    const data::RegionSet& regions) {
  WallTimer timer;
  URBANE_ASSIGN_OR_RETURN(index::RTree rtree,
                          index::RTree::Build(regions.RegionBounds()));
  auto executor = std::unique_ptr<StoreScanJoin>(
      new StoreScanJoin(reader, cache, regions, std::move(rtree)));
  executor->stats_.build_seconds = timer.ElapsedSeconds();
  return executor;
}

StatusOr<core::QueryResult> StoreScanJoin::Execute(
    const core::AggregationQuery& query) {
  // The store supplies the rows; rebind the query's table to the schema
  // carrier so the standard structural validation applies.
  core::AggregationQuery q = query;
  q.points = &schema_table_;
  if (q.regions == nullptr) {
    q.regions = &regions_;
  }
  URBANE_RETURN_IF_ERROR(q.Validate());
  const double build_seconds = stats_.build_seconds;
  stats_.Reset();
  stats_.build_seconds = build_seconds;
  stats_.threads_used = 1;
  store_stats_ = StoreScanStats();
  obs::TraceSpan exec_span(q.trace, "store_scan");
  // Cache counters are global to the (possibly shared) BlockCache; the
  // before/after delta attributes this query's reads and hits. Exact while
  // no other query runs against the same cache concurrently.
  const BlockCacheStats cache_before =
      q.profile != nullptr ? cache_.stats() : BlockCacheStats();
  WallTimer timer;

  WallTimer filter_timer;
  URBANE_ASSIGN_OR_RETURN(core::CompiledFilter filter,
                          core::CompiledFilter::Compile(q.filter,
                                                        schema_table_));
  stats_.filter_seconds = filter_timer.ElapsedSeconds();
  URBANE_RETURN_IF_ERROR(q.CheckControl());

  const int attr_col =
      q.aggregate.NeedsAttribute()
          ? reader_.schema().AttributeIndex(q.aggregate.attribute)
          : -1;

  BlockCursor cursor(reader_, cache_, q.filter);
  store_stats_.blocks_total = cursor.blocks_total();
  store_stats_.blocks_pruned = cursor.blocks_pruned();
  if (obs::MetricsEnabled() && cursor.blocks_pruned() > 0) {
    obs::MetricsRegistry::Global()
        .GetCounter("store.blocks_pruned")
        .Add(cursor.blocks_pruned());
    obs::MetricsRegistry::Global()
        .GetCounter("store.rows_pruned")
        .Add(cursor.rows_pruned());
  }

  std::vector<core::Accumulator> accumulators(regions_.size());
  WallTimer reduce_timer;
  for (; !cursor.Done(); cursor.Advance()) {
    URBANE_RETURN_IF_ERROR(q.CheckControl());
    URBANE_ASSIGN_OR_RETURN(BlockCache::PinnedBlock pinned, cursor.Pin());
    URBANE_ASSIGN_OR_RETURN(data::PointTable view,
                            pinned->AsView(reader_.schema()));
    ++store_stats_.blocks_scanned;
    const float* attr =
        attr_col >= 0 ? view.attribute_data(static_cast<std::size_t>(attr_col))
                      : nullptr;
    const std::size_t rows = view.size();
    // Rows run in store order (ascending global row id), so every
    // accumulator sees the same value sequence as a serial scan of the
    // full table: results are bit-identical, including float SUM/AVG.
    for (std::size_t i = 0; i < rows; ++i) {
      if (!filter.Matches(view, i)) {
        continue;
      }
      ++stats_.points_scanned;
      const geometry::Vec2 p{view.x(i), view.y(i)};
      const double value = attr ? static_cast<double>(attr[i]) : 1.0;
      rtree_.QueryPoint(p, [&](std::uint32_t region_index) {
        ++stats_.pip_tests;
        if (regions_[region_index].geometry.Contains(p)) {
          accumulators[region_index].Add(value);
        }
      });
    }
  }
  stats_.reduce_seconds = reduce_timer.ElapsedSeconds();

  core::QueryResult result;
  result.values.reserve(regions_.size());
  result.counts.reserve(regions_.size());
  for (const core::Accumulator& acc : accumulators) {
    result.values.push_back(acc.Finalize(q.aggregate.kind));
    result.counts.push_back(acc.count);
  }
  stats_.query_seconds = timer.ElapsedSeconds();
  if (q.profile != nullptr) {
    const BlockCacheStats cache_now = cache_.stats();
    q.profile->blocks_total = store_stats_.blocks_total;
    q.profile->blocks_pruned = store_stats_.blocks_pruned;
    q.profile->rows_pruned = cursor.rows_pruned();
    q.profile->store_blocks_scanned = store_stats_.blocks_scanned;
    q.profile->store_blocks_read = cache_now.blocks_read - cache_before.blocks_read;
    q.profile->store_cache_hits = cache_now.hits - cache_before.hits;
    q.profile->store_bytes_read = cache_now.bytes_read - cache_before.bytes_read;
  }
  core::ObserveExecutorStats("store_scan", stats_);
  return result;
}

}  // namespace urbane::store
