#ifndef URBANE_STORE_STORE_SCAN_JOIN_H_
#define URBANE_STORE_STORE_SCAN_JOIN_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/query.h"
#include "data/point_table.h"
#include "data/region.h"
#include "index/rtree.h"
#include "store/block_cache.h"
#include "store/store_reader.h"

namespace urbane::store {

/// Per-query block accounting from the most recent Execute.
struct StoreScanStats {
  std::uint64_t blocks_total = 0;
  std::uint64_t blocks_pruned = 0;
  std::uint64_t blocks_scanned = 0;
};

/// Out-of-core exact scan: streams the store block-at-a-time through the
/// block cache (pread mode needs no mapping of the whole file), pruning
/// blocks by zone map before any byte of them is read. Rows within and
/// across blocks are visited in store order — identical to the row order
/// the mmap'ed view exposes — so results are bit-identical to a serial
/// in-memory ScanJoin over the same store.
class StoreScanJoin : public core::SpatialAggregationExecutor {
 public:
  /// `reader`, `cache`, and `regions` must outlive this. Builds the same
  /// region-box R-tree as the in-memory scan.
  static StatusOr<std::unique_ptr<StoreScanJoin>> Create(
      const StoreReader& reader, BlockCache& cache,
      const data::RegionSet& regions);

  /// `query.points` may be null (the store supplies the rows); if set, it
  /// is only used to validate the schema.
  StatusOr<core::QueryResult> Execute(
      const core::AggregationQuery& query) override;
  std::string name() const override { return "store_scan"; }
  bool exact() const override { return true; }
  const core::ExecutorStats& stats() const override { return stats_; }

  const StoreScanStats& store_stats() const { return store_stats_; }

 private:
  StoreScanJoin(const StoreReader& reader, BlockCache& cache,
                const data::RegionSet& regions, index::RTree rtree)
      : reader_(reader),
        cache_(cache),
        regions_(regions),
        rtree_(std::move(rtree)),
        schema_table_(reader.schema()) {}

  const StoreReader& reader_;
  BlockCache& cache_;
  const data::RegionSet& regions_;
  index::RTree rtree_;
  /// Empty table carrying the store's schema, used to validate queries and
  /// compile filters without materializing any rows.
  data::PointTable schema_table_;
  core::ExecutorStats stats_;
  StoreScanStats store_stats_;
};

}  // namespace urbane::store

#endif  // URBANE_STORE_STORE_SCAN_JOIN_H_
