#ifndef URBANE_STORE_FORMAT_H_
#define URBANE_STORE_FORMAT_H_

#include <cstddef>
#include <cstdint>

namespace urbane::store {

/// On-disk layout of a block-partitioned point store (format "UST1").
///
///   header:
///     magic            "UST1"                       (4 bytes)
///     version          u32                           (currently 1)
///     row_count        u64
///     block_rows       u64   nominal rows per block (last block may be
///                            shorter)
///     block_count      u64
///     attr_count       u64
///     attr names       attr_count x (u64 length + bytes)
///     data_offset      u64   absolute offset of the x section
///   columns (each section 64-byte aligned, zero padding between):
///     x                row_count x f32
///     y                row_count x f32
///     t                row_count x i64
///     attrs            attr_count x (row_count x f32)
///   footer (at footer_offset): block_count zone-map records
///     row_begin        u64
///     row_count        u64
///     min_x max_x min_y max_y                        (4 x f32)
///     min_t max_t                                    (2 x i64)
///     per-attr min,max                               (attr_count x 2 x f32)
///   trailer (last 12 bytes of the file):
///     footer_offset    u64
///     end magic        "1TSU"
///
/// Columns are whole-file contiguous (not interleaved per block): a block is
/// a *logical* row range [row_begin, row_begin + row_count), which lets an
/// mmap'ed file be served zero-copy as one PointTable view while the paged
/// reader still fetches a single block's rows with one pread per column.
/// The trailer-last layout means a crashed writer can never be mistaken for
/// a complete store even before the atomic-rename guarantee kicks in.

inline constexpr char kStoreMagic[4] = {'U', 'S', 'T', '1'};
inline constexpr char kStoreEndMagic[4] = {'1', 'T', 'S', 'U'};
inline constexpr std::uint32_t kStoreVersion = 1;

/// Column sections start on cache-line/SIMD-friendly boundaries.
inline constexpr std::uint64_t kSectionAlignment = 64;

inline constexpr std::uint64_t AlignUp(std::uint64_t offset) {
  return (offset + kSectionAlignment - 1) & ~(kSectionAlignment - 1);
}

/// Serialized zone-map record size for a schema with `attr_count` columns.
inline constexpr std::uint64_t ZoneMapRecordBytes(std::uint64_t attr_count) {
  return 2 * sizeof(std::uint64_t) + 4 * sizeof(float) +
         2 * sizeof(std::int64_t) + attr_count * 2 * sizeof(float);
}

inline constexpr std::uint64_t kTrailerBytes = sizeof(std::uint64_t) + 4;

/// Sanity caps mirroring binary_io.cc: reject absurd on-disk claims before
/// any allocation.
inline constexpr std::uint64_t kMaxAttributes = 4096;
inline constexpr std::uint64_t kMaxRows = 1ULL << 40;

}  // namespace urbane::store

#endif  // URBANE_STORE_FORMAT_H_
