#include "store/store_writer.h"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>
#include <utility>

#include "raster/morton.h"
#include "store/format.h"
#include "util/file_util.h"
#include "util/string_util.h"

namespace urbane::store {

namespace {

Status SpillWrite(std::FILE* file, const void* data, std::size_t size,
                  const std::string& path) {
  if (size != 0 && std::fwrite(data, 1, size, file) != size) {
    return Status::IoError("spill write failure: " + path);
  }
  return Status::OK();
}

core::BlockZoneMap FreshZoneMap(std::uint64_t row_begin,
                                std::size_t attr_count) {
  core::BlockZoneMap zm;
  zm.row_begin = row_begin;
  zm.row_count = 0;
  zm.min_x = std::numeric_limits<float>::infinity();
  zm.max_x = -std::numeric_limits<float>::infinity();
  zm.min_y = std::numeric_limits<float>::infinity();
  zm.max_y = -std::numeric_limits<float>::infinity();
  zm.min_t = std::numeric_limits<std::int64_t>::max();
  zm.max_t = std::numeric_limits<std::int64_t>::min();
  zm.attr_min.assign(attr_count, std::numeric_limits<float>::infinity());
  zm.attr_max.assign(attr_count, -std::numeric_limits<float>::infinity());
  return zm;
}

}  // namespace

StoreWriter::~StoreWriter() { Abandon(); }

StoreWriter::StoreWriter(StoreWriter&& other) noexcept
    : path_(std::move(other.path_)),
      schema_(std::move(other.schema_)),
      options_(other.options_),
      spill_files_(std::move(other.spill_files_)),
      spill_paths_(std::move(other.spill_paths_)),
      batch_xs_(std::move(other.batch_xs_)),
      batch_ys_(std::move(other.batch_ys_)),
      batch_ts_(std::move(other.batch_ts_)),
      batch_attrs_(std::move(other.batch_attrs_)),
      zone_maps_(std::move(other.zone_maps_)),
      current_(std::move(other.current_)),
      current_open_(other.current_open_),
      rows_written_(other.rows_written_),
      finished_(other.finished_) {
  other.spill_files_.clear();
  other.spill_paths_.clear();
  other.finished_ = true;  // neutered: destructor must not unlink our spills
}

void StoreWriter::Abandon() {
  for (std::FILE* file : spill_files_) {
    if (file != nullptr) std::fclose(file);
  }
  spill_files_.clear();
  for (const std::string& path : spill_paths_) {
    ::unlink(path.c_str());
  }
  spill_paths_.clear();
}

StatusOr<StoreWriter> StoreWriter::Create(const std::string& path,
                                          data::Schema schema,
                                          const StoreWriterOptions& options) {
  if (options.block_rows == 0) {
    return Status::InvalidArgument("block_rows must be positive");
  }
  if (options.sort_batch_rows == 0) {
    return Status::InvalidArgument("sort_batch_rows must be positive");
  }
  StoreWriter writer;
  writer.path_ = path;
  writer.schema_ = std::move(schema);
  writer.options_ = options;
  const std::size_t columns = 3 + writer.schema_.attribute_count();
  writer.spill_files_.reserve(columns);
  writer.spill_paths_.reserve(columns);
  for (std::size_t c = 0; c < columns; ++c) {
    std::string spill_path = StringPrintf("%s.col%zu.tmp", path.c_str(), c);
    std::FILE* file = std::fopen(spill_path.c_str(), "wb");
    if (file == nullptr) {
      writer.Abandon();
      return Status::IoError("cannot open spill file: " + spill_path);
    }
    writer.spill_files_.push_back(file);
    writer.spill_paths_.push_back(std::move(spill_path));
  }
  writer.batch_attrs_.resize(writer.schema_.attribute_count());
  writer.current_ = FreshZoneMap(0, writer.schema_.attribute_count());
  writer.current_open_ = true;
  return writer;
}

Status StoreWriter::Append(const data::PointTable& batch) {
  if (finished_) {
    return Status::FailedPrecondition("Append after Finish");
  }
  if (!(batch.schema() == schema_)) {
    return Status::InvalidArgument("batch schema differs from the store's");
  }
  const std::size_t n = batch.size();
  for (std::size_t i = 0; i < n; ++i) {
    batch_xs_.push_back(batch.x(i));
    batch_ys_.push_back(batch.y(i));
    batch_ts_.push_back(batch.t(i));
    for (std::size_t c = 0; c < batch_attrs_.size(); ++c) {
      batch_attrs_[c].push_back(batch.attribute(i, c));
    }
    if (batch_xs_.size() >= options_.sort_batch_rows) {
      URBANE_RETURN_IF_ERROR(FlushBatch());
    }
  }
  return Status::OK();
}

void StoreWriter::FoldRowIntoZoneMap(float x, float y, std::int64_t t,
                                     const std::vector<const float*>& attrs,
                                     std::size_t row_in_batch) {
  // NaN-safe fold: comparisons with NaN are false, so NaN values leave the
  // extents untouched (an all-NaN column keeps its inverted range, which
  // every pruning overlap test rejects — matching Matches(), which a NaN
  // row always fails).
  if (x < current_.min_x) current_.min_x = x;
  if (x > current_.max_x) current_.max_x = x;
  if (y < current_.min_y) current_.min_y = y;
  if (y > current_.max_y) current_.max_y = y;
  if (t < current_.min_t) current_.min_t = t;
  if (t > current_.max_t) current_.max_t = t;
  for (std::size_t c = 0; c < attrs.size(); ++c) {
    const float v = attrs[c][row_in_batch];
    if (v < current_.attr_min[c]) current_.attr_min[c] = v;
    if (v > current_.attr_max[c]) current_.attr_max[c] = v;
  }
  ++current_.row_count;
  if (current_.row_count == options_.block_rows) {
    zone_maps_.push_back(current_);
    current_ = FreshZoneMap(current_.row_end(), schema_.attribute_count());
  }
}

Status StoreWriter::FlushBatch() {
  const std::size_t n = batch_xs_.size();
  if (n == 0) {
    return Status::OK();
  }
  // Morton-cluster the batch: quantize x/y to a 2^16 grid over the batch
  // bounds and stable-sort row indices by Z-order key. Stability keeps
  // same-cell rows in arrival order, so conversion is deterministic.
  float min_x = std::numeric_limits<float>::infinity();
  float max_x = -std::numeric_limits<float>::infinity();
  float min_y = std::numeric_limits<float>::infinity();
  float max_y = -std::numeric_limits<float>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    if (batch_xs_[i] < min_x) min_x = batch_xs_[i];
    if (batch_xs_[i] > max_x) max_x = batch_xs_[i];
    if (batch_ys_[i] < min_y) min_y = batch_ys_[i];
    if (batch_ys_[i] > max_y) max_y = batch_ys_[i];
  }
  const float span_x = max_x > min_x ? max_x - min_x : 1.0f;
  const float span_y = max_y > min_y ? max_y - min_y : 1.0f;
  constexpr float kGrid = 65535.0f;
  std::vector<std::uint32_t> keys(n);
  for (std::size_t i = 0; i < n; ++i) {
    float fx = (batch_xs_[i] - min_x) / span_x * kGrid;
    float fy = (batch_ys_[i] - min_y) / span_y * kGrid;
    // Non-finite coordinates sort to the last cell instead of poisoning
    // the key computation.
    if (!std::isfinite(fx)) fx = kGrid;
    if (!std::isfinite(fy)) fy = kGrid;
    const auto qx =
        static_cast<std::uint32_t>(std::clamp(fx, 0.0f, kGrid));
    const auto qy =
        static_cast<std::uint32_t>(std::clamp(fy, 0.0f, kGrid));
    keys[i] = raster::MortonPixelKey(qx, qy);
  }
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return keys[a] < keys[b];
                   });

  // Gather each column in Morton order and append to its spill file.
  std::vector<const float*> attr_data(batch_attrs_.size());
  {
    std::vector<float> sorted_f(n);
    for (std::size_t i = 0; i < n; ++i) sorted_f[i] = batch_xs_[order[i]];
    URBANE_RETURN_IF_ERROR(SpillWrite(spill_files_[0], sorted_f.data(),
                                      n * sizeof(float), spill_paths_[0]));
    for (std::size_t i = 0; i < n; ++i) sorted_f[i] = batch_ys_[order[i]];
    URBANE_RETURN_IF_ERROR(SpillWrite(spill_files_[1], sorted_f.data(),
                                      n * sizeof(float), spill_paths_[1]));
    std::vector<std::int64_t> sorted_t(n);
    for (std::size_t i = 0; i < n; ++i) sorted_t[i] = batch_ts_[order[i]];
    URBANE_RETURN_IF_ERROR(SpillWrite(spill_files_[2], sorted_t.data(),
                                      n * sizeof(std::int64_t),
                                      spill_paths_[2]));
    for (std::size_t c = 0; c < batch_attrs_.size(); ++c) {
      for (std::size_t i = 0; i < n; ++i) {
        sorted_f[i] = batch_attrs_[c][order[i]];
      }
      URBANE_RETURN_IF_ERROR(SpillWrite(spill_files_[3 + c], sorted_f.data(),
                                        n * sizeof(float),
                                        spill_paths_[3 + c]));
    }
  }

  // Fold the sorted rows into the running zone maps.
  for (std::size_t c = 0; c < batch_attrs_.size(); ++c) {
    attr_data[c] = batch_attrs_[c].data();
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t src = order[i];
    FoldRowIntoZoneMap(batch_xs_[src], batch_ys_[src], batch_ts_[src],
                       attr_data, src);
  }
  rows_written_ += n;

  batch_xs_.clear();
  batch_ys_.clear();
  batch_ts_.clear();
  for (auto& col : batch_attrs_) {
    col.clear();
  }
  return Status::OK();
}

StatusOr<StoreWriterStats> StoreWriter::Finish() {
  if (finished_) {
    return Status::FailedPrecondition("Finish called twice");
  }
  URBANE_RETURN_IF_ERROR(FlushBatch());
  if (current_open_ && current_.row_count > 0) {
    zone_maps_.push_back(current_);
  }
  current_open_ = false;

  // Flush and reopen the spill files for reading.
  for (std::size_t c = 0; c < spill_files_.size(); ++c) {
    if (std::fflush(spill_files_[c]) != 0 ||
        std::fclose(spill_files_[c]) != 0) {
      spill_files_[c] = nullptr;
      Abandon();
      return Status::IoError("spill flush failure: " + spill_paths_[c]);
    }
    spill_files_[c] = nullptr;
  }
  spill_files_.clear();

  const std::uint64_t n = rows_written_;
  const std::uint64_t attr_count = schema_.attribute_count();

  URBANE_ASSIGN_OR_RETURN(AtomicFileWriter out,
                          AtomicFileWriter::Open(path_));
  auto write_pod = [&out](const auto& value) {
    return out.Write(&value, sizeof(value));
  };
  auto pad_to = [&out](std::uint64_t target) -> Status {
    static constexpr char kZeros[kSectionAlignment] = {};
    while (out.offset() < target) {
      const std::uint64_t chunk =
          std::min<std::uint64_t>(sizeof(kZeros), target - out.offset());
      URBANE_RETURN_IF_ERROR(out.Write(kZeros, chunk));
    }
    return Status::OK();
  };

  // --- header ---
  URBANE_RETURN_IF_ERROR(out.Write(kStoreMagic, 4));
  URBANE_RETURN_IF_ERROR(write_pod(kStoreVersion));
  URBANE_RETURN_IF_ERROR(write_pod(n));
  URBANE_RETURN_IF_ERROR(write_pod(options_.block_rows));
  const std::uint64_t block_count = zone_maps_.size();
  URBANE_RETURN_IF_ERROR(write_pod(block_count));
  URBANE_RETURN_IF_ERROR(write_pod(attr_count));
  for (std::uint64_t c = 0; c < attr_count; ++c) {
    const std::string& name = schema_.attribute_name(c);
    const std::uint64_t len = name.size();
    URBANE_RETURN_IF_ERROR(write_pod(len));
    URBANE_RETURN_IF_ERROR(out.Write(name.data(), name.size()));
  }
  const std::uint64_t data_offset =
      AlignUp(out.offset() + sizeof(std::uint64_t));
  URBANE_RETURN_IF_ERROR(write_pod(data_offset));
  URBANE_RETURN_IF_ERROR(pad_to(data_offset));

  // --- column sections, copied from the spill files ---
  std::vector<char> buffer(1 << 20);
  for (std::size_t c = 0; c < spill_paths_.size(); ++c) {
    URBANE_RETURN_IF_ERROR(pad_to(AlignUp(out.offset())));
    std::FILE* in = std::fopen(spill_paths_[c].c_str(), "rb");
    if (in == nullptr) {
      return Status::IoError("cannot reopen spill file: " + spill_paths_[c]);
    }
    std::uint64_t copied = 0;
    while (true) {
      const std::size_t got = std::fread(buffer.data(), 1, buffer.size(), in);
      if (got == 0) break;
      const Status status = out.Write(buffer.data(), got);
      if (!status.ok()) {
        std::fclose(in);
        return status;
      }
      copied += got;
    }
    const bool read_error = std::ferror(in) != 0;
    std::fclose(in);
    if (read_error) {
      return Status::IoError("spill read failure: " + spill_paths_[c]);
    }
    const std::uint64_t elem = c == 2 ? sizeof(std::int64_t) : sizeof(float);
    if (copied != n * elem) {
      return Status::Internal(StringPrintf(
          "spill column %zu holds %llu bytes, expected %llu", c,
          static_cast<unsigned long long>(copied),
          static_cast<unsigned long long>(n * elem)));
    }
  }

  // --- footer: zone maps ---
  const std::uint64_t footer_offset = AlignUp(out.offset());
  URBANE_RETURN_IF_ERROR(pad_to(footer_offset));
  for (const core::BlockZoneMap& zm : zone_maps_) {
    URBANE_RETURN_IF_ERROR(write_pod(zm.row_begin));
    URBANE_RETURN_IF_ERROR(write_pod(zm.row_count));
    URBANE_RETURN_IF_ERROR(write_pod(zm.min_x));
    URBANE_RETURN_IF_ERROR(write_pod(zm.max_x));
    URBANE_RETURN_IF_ERROR(write_pod(zm.min_y));
    URBANE_RETURN_IF_ERROR(write_pod(zm.max_y));
    URBANE_RETURN_IF_ERROR(write_pod(zm.min_t));
    URBANE_RETURN_IF_ERROR(write_pod(zm.max_t));
    for (std::uint64_t c = 0; c < attr_count; ++c) {
      URBANE_RETURN_IF_ERROR(write_pod(zm.attr_min[c]));
      URBANE_RETURN_IF_ERROR(write_pod(zm.attr_max[c]));
    }
  }

  // --- trailer ---
  URBANE_RETURN_IF_ERROR(write_pod(footer_offset));
  URBANE_RETURN_IF_ERROR(out.Write(kStoreEndMagic, 4));
  const std::uint64_t file_bytes = out.offset();
  URBANE_RETURN_IF_ERROR(out.Commit());

  finished_ = true;
  Abandon();  // spill files only; the store itself is committed

  StoreWriterStats stats;
  stats.rows_written = n;
  stats.blocks_written = block_count;
  stats.file_bytes = file_bytes;
  return stats;
}

StatusOr<StoreWriterStats> WritePointStore(const data::PointTable& table,
                                           const std::string& path,
                                           const StoreWriterOptions& options) {
  URBANE_ASSIGN_OR_RETURN(StoreWriter writer,
                          StoreWriter::Create(path, table.schema(), options));
  URBANE_RETURN_IF_ERROR(writer.Append(table));
  return writer.Finish();
}

}  // namespace urbane::store
