#ifndef URBANE_STORE_BLOCK_CACHE_H_
#define URBANE_STORE_BLOCK_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "store/store_reader.h"
#include "util/status.h"

namespace urbane::store {

struct BlockCacheOptions {
  /// Maximum resident blocks. Pinned blocks never leave, so the cache can
  /// temporarily exceed this if more than capacity_blocks are pinned at
  /// once; unpinned blocks are evicted LRU-first back down to capacity.
  std::size_t capacity_blocks = 64;
};

struct BlockCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t blocks_read = 0;  // actual disk reads (== misses that loaded)
  std::uint64_t bytes_read = 0;   // decoded bytes of those disk reads
};

/// Bounded, thread-safe cache of decoded store blocks with pin/unpin
/// semantics: a block stays resident while any PinnedBlock handle is live.
/// Concurrent requests for the same absent block coalesce — one thread
/// loads while the rest wait on a condition variable, so a block is read
/// from disk at most once per residency. Hit/miss/eviction counts feed the
/// obs counters store.cache_hit / store.cache_miss / store.cache_evict /
/// store.blocks_read.
class BlockCache {
 public:
  /// `reader` must outlive the cache.
  explicit BlockCache(const StoreReader* reader,
                      const BlockCacheOptions& options = BlockCacheOptions());
  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// RAII pin: the referenced block cannot be evicted until destruction.
  class PinnedBlock {
   public:
    PinnedBlock() = default;
    PinnedBlock(PinnedBlock&& other) noexcept
        : cache_(other.cache_), index_(other.index_), block_(other.block_) {
      other.cache_ = nullptr;
      other.block_ = nullptr;
    }
    PinnedBlock& operator=(PinnedBlock&& other) noexcept;
    PinnedBlock(const PinnedBlock&) = delete;
    PinnedBlock& operator=(const PinnedBlock&) = delete;
    ~PinnedBlock() { Release(); }

    const StoreBlock& operator*() const { return *block_; }
    const StoreBlock* operator->() const { return block_; }
    const StoreBlock* get() const { return block_; }

   private:
    friend class BlockCache;
    PinnedBlock(BlockCache* cache, std::size_t index,
                const StoreBlock* block)
        : cache_(cache), index_(index), block_(block) {}
    void Release();

    BlockCache* cache_ = nullptr;
    std::size_t index_ = 0;
    const StoreBlock* block_ = nullptr;
  };

  /// Returns the block pinned; loads it (once) on a miss.
  StatusOr<PinnedBlock> Pin(std::size_t block_index);

  BlockCacheStats stats() const;
  std::size_t resident_blocks() const;

 private:
  struct Entry {
    StoreBlock block;
    int pin_count = 0;
    bool loading = true;
    std::uint64_t last_use = 0;
  };

  void Unpin(std::size_t block_index);
  /// Drops LRU unpinned entries until at most capacity remain. Caller holds
  /// the lock.
  void EvictLocked();

  const StoreReader* reader_;
  BlockCacheOptions options_;

  mutable std::mutex mu_;
  std::condition_variable load_cv_;
  std::unordered_map<std::size_t, Entry> entries_;
  std::uint64_t tick_ = 0;
  BlockCacheStats stats_;
};

}  // namespace urbane::store

#endif  // URBANE_STORE_BLOCK_CACHE_H_
