#include "store/block_cursor.h"

namespace urbane::store {

BlockCursor::BlockCursor(const StoreReader& reader, BlockCache& cache,
                         const core::FilterSpec& filter)
    : reader_(reader), cache_(cache) {
  const core::ZoneMapIndex& index = reader.zone_maps();
  blocks_total_ = index.block_count();
  if (filter.IsTrivial()) {
    survivors_.reserve(index.block_count());
    for (std::size_t b = 0; b < index.block_count(); ++b) {
      survivors_.push_back(b);
    }
    return;
  }
  // Prune() returns candidate row ranges built from whole blocks, so a
  // block survives iff its first row is a candidate.
  const core::PruneResult prune = index.Prune(filter, reader.schema());
  blocks_pruned_ = prune.blocks_pruned;
  rows_pruned_ = prune.rows_pruned;
  survivors_.reserve(index.block_count() - prune.blocks_pruned);
  for (std::size_t b = 0; b < index.block_count(); ++b) {
    if (prune.candidates.Contains(index.blocks()[b].row_begin)) {
      survivors_.push_back(b);
    }
  }
}

const core::BlockZoneMap& BlockCursor::ZoneMap() const {
  return reader_.zone_maps().blocks()[survivors_[pos_]];
}

StatusOr<BlockCache::PinnedBlock> BlockCursor::Pin() {
  return cache_.Pin(survivors_[pos_]);
}

}  // namespace urbane::store
