#include "store/store_reader.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "store/format.h"
#include "util/file_util.h"
#include "util/string_util.h"

namespace urbane::store {

namespace {

std::string PrintableMagic(const char magic[4]) {
  std::string out;
  for (int i = 0; i < 4; ++i) {
    const unsigned char c = static_cast<unsigned char>(magic[i]);
    if (c >= 0x20 && c < 0x7f) {
      out.push_back(static_cast<char>(c));
    } else {
      out += StringPrintf("\\x%02X", c);
    }
  }
  return out;
}

/// Bounds-checked sequential parser over the header region. Every read is
/// validated against the real file size first, so a truncated or lying file
/// fails with the exact offset instead of reading garbage.
class HeaderCursor {
 public:
  HeaderCursor(int fd, std::uint64_t file_size, const std::string& path)
      : fd_(fd), file_size_(file_size), path_(path) {}

  std::uint64_t offset() const { return offset_; }
  std::uint64_t Remaining() const {
    return file_size_ > offset_ ? file_size_ - offset_ : 0;
  }

  Status Bytes(void* dst, std::uint64_t n, const char* what) {
    if (n > Remaining()) {
      return Status::IoError(StringPrintf(
          "truncated store %s: need %llu bytes for %s at offset %llu, "
          "file is %llu bytes",
          path_.c_str(), static_cast<unsigned long long>(n), what,
          static_cast<unsigned long long>(offset_),
          static_cast<unsigned long long>(file_size_)));
    }
    std::uint64_t done = 0;
    while (done < n) {
      const ssize_t got =
          ::pread(fd_, static_cast<char*>(dst) + done, n - done,
                  static_cast<off_t>(offset_ + done));
      if (got <= 0) {
        return Status::IoError(StringPrintf(
            "read failure in %s at offset %llu (%s)", path_.c_str(),
            static_cast<unsigned long long>(offset_ + done), what));
      }
      done += static_cast<std::uint64_t>(got);
    }
    offset_ += n;
    return Status::OK();
  }

  template <typename T>
  Status Pod(T* value, const char* what) {
    return Bytes(value, sizeof(T), what);
  }

  /// Validates an on-disk element count against the bytes actually left.
  Status Count(std::uint64_t n, std::uint64_t elem_size, const char* what) {
    if (elem_size == 0 || n > Remaining() / elem_size) {
      return Status::IoError(StringPrintf(
          "corrupt %s count %llu at offset %llu of %s: only %llu bytes "
          "remain",
          what, static_cast<unsigned long long>(n),
          static_cast<unsigned long long>(offset_), path_.c_str(),
          static_cast<unsigned long long>(Remaining())));
    }
    return Status::OK();
  }

  void Seek(std::uint64_t offset) { offset_ = offset; }

 private:
  int fd_;
  std::uint64_t file_size_;
  const std::string& path_;
  std::uint64_t offset_ = 0;
};

}  // namespace

std::size_t StoreBlock::MemoryBytes() const {
  std::size_t bytes = xs.capacity() * sizeof(float) +
                      ys.capacity() * sizeof(float) +
                      ts.capacity() * sizeof(std::int64_t);
  for (const auto& a : attrs) bytes += a.capacity() * sizeof(float);
  return bytes;
}

StatusOr<data::PointTable> StoreBlock::AsView(
    const data::Schema& schema) const {
  std::vector<const float*> attr_ptrs;
  attr_ptrs.reserve(attrs.size());
  for (const auto& a : attrs) attr_ptrs.push_back(a.data());
  return data::PointTable::View(schema, xs.data(), ys.data(), ts.data(),
                                std::move(attr_ptrs), xs.size());
}

StoreReader::~StoreReader() {
  if (mapped_ != nullptr) {
    ::munmap(mapped_, static_cast<std::size_t>(file_size_));
  }
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

StoreReader::StoreReader(StoreReader&& other) noexcept
    : path_(std::move(other.path_)),
      schema_(std::move(other.schema_)),
      zone_maps_(std::move(other.zone_maps_)),
      row_count_(other.row_count_),
      block_rows_(other.block_rows_),
      file_size_(other.file_size_),
      x_offset_(other.x_offset_),
      y_offset_(other.y_offset_),
      t_offset_(other.t_offset_),
      attr_offsets_(std::move(other.attr_offsets_)),
      fd_(other.fd_),
      mapped_(other.mapped_) {
  other.fd_ = -1;
  other.mapped_ = nullptr;
}

StatusOr<StoreReader> StoreReader::Open(const std::string& path,
                                        const StoreReaderOptions& options) {
  URBANE_ASSIGN_OR_RETURN(std::uint64_t file_size, FileSizeBytes(path));
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open store file: " + path);
  }
  StoreReader reader;
  reader.path_ = path;
  reader.fd_ = fd;
  reader.file_size_ = file_size;

  HeaderCursor cur(fd, file_size, path);

  // --- header ---
  char magic[4];
  URBANE_RETURN_IF_ERROR(cur.Bytes(magic, 4, "magic"));
  if (std::memcmp(magic, kStoreMagic, 4) != 0) {
    return Status::IoError(StringPrintf(
        "bad magic in %s: found '%s', expected '%s' (UST1 point store)",
        path.c_str(), PrintableMagic(magic).c_str(),
        PrintableMagic(kStoreMagic).c_str()));
  }
  std::uint32_t version = 0;
  URBANE_RETURN_IF_ERROR(cur.Pod(&version, "version"));
  if (version != kStoreVersion) {
    return Status::IoError(StringPrintf(
        "unsupported store version %u in %s, expected %u", version,
        path.c_str(), kStoreVersion));
  }
  std::uint64_t row_count = 0;
  std::uint64_t block_rows = 0;
  std::uint64_t block_count = 0;
  std::uint64_t attr_count = 0;
  URBANE_RETURN_IF_ERROR(cur.Pod(&row_count, "row count"));
  URBANE_RETURN_IF_ERROR(cur.Pod(&block_rows, "block rows"));
  URBANE_RETURN_IF_ERROR(cur.Pod(&block_count, "block count"));
  URBANE_RETURN_IF_ERROR(cur.Pod(&attr_count, "attribute count"));
  if (row_count > kMaxRows) {
    return Status::IoError(StringPrintf(
        "corrupt row count %llu in %s (cap %llu)",
        static_cast<unsigned long long>(row_count), path.c_str(),
        static_cast<unsigned long long>(kMaxRows)));
  }
  if (attr_count > kMaxAttributes) {
    return Status::IoError(StringPrintf(
        "corrupt attribute count %llu in %s (cap %llu)",
        static_cast<unsigned long long>(attr_count), path.c_str(),
        static_cast<unsigned long long>(kMaxAttributes)));
  }
  if (row_count > 0 && block_rows == 0) {
    return Status::IoError(StringPrintf(
        "corrupt store %s: %llu rows but block_rows is zero", path.c_str(),
        static_cast<unsigned long long>(row_count)));
  }
  // The writer always emits exactly ceil(rows / block_rows) blocks; checking
  // the count here (before any reserve and before the footer-size equation,
  // whose multiply could otherwise wrap) keeps a flipped block_count from
  // driving allocations.
  const std::uint64_t expected_blocks =
      row_count == 0 ? 0 : (row_count + block_rows - 1) / block_rows;
  if (block_count != expected_blocks) {
    return Status::IoError(StringPrintf(
        "corrupt block count %llu in %s: %llu rows at %llu rows/block "
        "require %llu blocks",
        static_cast<unsigned long long>(block_count), path.c_str(),
        static_cast<unsigned long long>(row_count),
        static_cast<unsigned long long>(block_rows),
        static_cast<unsigned long long>(expected_blocks)));
  }
  std::vector<std::string> names;
  names.reserve(attr_count);
  for (std::uint64_t c = 0; c < attr_count; ++c) {
    std::uint64_t len = 0;
    URBANE_RETURN_IF_ERROR(cur.Pod(&len, "attribute name length"));
    URBANE_RETURN_IF_ERROR(cur.Count(len, 1, "attribute name"));
    std::string name(len, '\0');
    URBANE_RETURN_IF_ERROR(cur.Bytes(name.data(), len, "attribute name"));
    names.push_back(std::move(name));
  }
  std::uint64_t data_offset = 0;
  URBANE_RETURN_IF_ERROR(cur.Pod(&data_offset, "data offset"));
  const std::uint64_t expected_data_offset = AlignUp(cur.offset());
  if (data_offset != expected_data_offset) {
    return Status::IoError(StringPrintf(
        "corrupt data offset %llu in %s, expected %llu",
        static_cast<unsigned long long>(data_offset), path.c_str(),
        static_cast<unsigned long long>(expected_data_offset)));
  }

  // --- derive and bounds-check the section layout ---
  const std::uint64_t n = row_count;
  reader.x_offset_ = data_offset;
  reader.y_offset_ = AlignUp(reader.x_offset_ + n * sizeof(float));
  reader.t_offset_ = AlignUp(reader.y_offset_ + n * sizeof(float));
  std::uint64_t end = reader.t_offset_ + n * sizeof(std::int64_t);
  reader.attr_offsets_.reserve(attr_count);
  for (std::uint64_t c = 0; c < attr_count; ++c) {
    reader.attr_offsets_.push_back(AlignUp(end));
    end = reader.attr_offsets_.back() + n * sizeof(float);
  }
  const std::uint64_t expected_footer = AlignUp(end);
  const std::uint64_t footer_bytes = block_count * ZoneMapRecordBytes(attr_count);
  if (file_size < kTrailerBytes ||
      expected_footer + footer_bytes + kTrailerBytes != file_size) {
    return Status::IoError(StringPrintf(
        "store %s is %llu bytes, but %llu rows x %llu attrs + %llu "
        "zone maps require %llu",
        path.c_str(), static_cast<unsigned long long>(file_size),
        static_cast<unsigned long long>(n),
        static_cast<unsigned long long>(attr_count),
        static_cast<unsigned long long>(block_count),
        static_cast<unsigned long long>(expected_footer + footer_bytes +
                                        kTrailerBytes)));
  }

  // --- trailer ---
  cur.Seek(file_size - kTrailerBytes);
  std::uint64_t footer_offset = 0;
  URBANE_RETURN_IF_ERROR(cur.Pod(&footer_offset, "footer offset"));
  char end_magic[4];
  URBANE_RETURN_IF_ERROR(cur.Bytes(end_magic, 4, "end magic"));
  if (std::memcmp(end_magic, kStoreEndMagic, 4) != 0) {
    return Status::IoError(StringPrintf(
        "bad end magic in %s: found '%s', expected '%s' — file is "
        "truncated or was not finalized",
        path.c_str(), PrintableMagic(end_magic).c_str(),
        PrintableMagic(kStoreEndMagic).c_str()));
  }
  if (footer_offset != expected_footer) {
    return Status::IoError(StringPrintf(
        "corrupt footer offset %llu in %s, expected %llu",
        static_cast<unsigned long long>(footer_offset), path.c_str(),
        static_cast<unsigned long long>(expected_footer)));
  }

  // --- footer: zone maps ---
  cur.Seek(footer_offset);
  std::vector<core::BlockZoneMap> blocks;
  blocks.reserve(block_count);
  for (std::uint64_t b = 0; b < block_count; ++b) {
    core::BlockZoneMap zm;
    URBANE_RETURN_IF_ERROR(cur.Pod(&zm.row_begin, "zone map row begin"));
    URBANE_RETURN_IF_ERROR(cur.Pod(&zm.row_count, "zone map row count"));
    URBANE_RETURN_IF_ERROR(cur.Pod(&zm.min_x, "zone map min x"));
    URBANE_RETURN_IF_ERROR(cur.Pod(&zm.max_x, "zone map max x"));
    URBANE_RETURN_IF_ERROR(cur.Pod(&zm.min_y, "zone map min y"));
    URBANE_RETURN_IF_ERROR(cur.Pod(&zm.max_y, "zone map max y"));
    URBANE_RETURN_IF_ERROR(cur.Pod(&zm.min_t, "zone map min t"));
    URBANE_RETURN_IF_ERROR(cur.Pod(&zm.max_t, "zone map max t"));
    zm.attr_min.resize(attr_count);
    zm.attr_max.resize(attr_count);
    for (std::uint64_t c = 0; c < attr_count; ++c) {
      URBANE_RETURN_IF_ERROR(cur.Pod(&zm.attr_min[c], "zone map attr min"));
      URBANE_RETURN_IF_ERROR(cur.Pod(&zm.attr_max[c], "zone map attr max"));
    }
    blocks.push_back(std::move(zm));
  }
  auto index_or = core::ZoneMapIndex::Create(std::move(blocks), attr_count);
  if (!index_or.ok()) {
    return Status::IoError(StringPrintf(
        "corrupt zone maps in %s: %s", path.c_str(),
        index_or.status().message().c_str()));
  }
  reader.zone_maps_ = std::move(index_or).value();
  if (reader.zone_maps_.total_rows() != row_count) {
    return Status::IoError(StringPrintf(
        "zone maps in %s cover %llu rows but the header claims %llu",
        path.c_str(),
        static_cast<unsigned long long>(reader.zone_maps_.total_rows()),
        static_cast<unsigned long long>(row_count)));
  }

  URBANE_ASSIGN_OR_RETURN(data::Schema schema,
                          data::Schema::Create(std::move(names)));
  reader.schema_ = std::move(schema);
  reader.row_count_ = row_count;
  reader.block_rows_ = block_rows;

  if (options.use_mmap && file_size > 0) {
    void* map = ::mmap(nullptr, static_cast<std::size_t>(file_size),
                       PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      reader.mapped_ = map;
    }
    // mmap failure is not fatal: ReadBlock/Materialize still work via pread.
  }
  return reader;
}

Status StoreReader::ReadAt(std::uint64_t offset, void* dst,
                           std::uint64_t bytes, const char* what) const {
  if (offset + bytes > file_size_) {
    return Status::IoError(StringPrintf(
        "read past end of %s: %llu bytes at offset %llu (%s)",
        path_.c_str(), static_cast<unsigned long long>(bytes),
        static_cast<unsigned long long>(offset), what));
  }
  if (mapped_ != nullptr) {
    std::memcpy(dst, static_cast<const char*>(mapped_) + offset, bytes);
    return Status::OK();
  }
  std::uint64_t done = 0;
  while (done < bytes) {
    const ssize_t got = ::pread(fd_, static_cast<char*>(dst) + done,
                                bytes - done,
                                static_cast<off_t>(offset + done));
    if (got <= 0) {
      return Status::IoError(StringPrintf(
          "read failure in %s at offset %llu (%s)", path_.c_str(),
          static_cast<unsigned long long>(offset + done), what));
    }
    done += static_cast<std::uint64_t>(got);
  }
  return Status::OK();
}

StatusOr<data::PointTable> StoreReader::MappedTable() const {
  if (mapped_ == nullptr && row_count_ > 0) {
    return Status::IoError("store " + path_ +
                           " is not memory-mapped; use ReadBlock");
  }
  const char* base = static_cast<const char*>(mapped_);
  std::vector<const float*> attrs;
  attrs.reserve(attr_offsets_.size());
  for (const std::uint64_t off : attr_offsets_) {
    attrs.push_back(row_count_ > 0
                        ? reinterpret_cast<const float*>(base + off)
                        : nullptr);
  }
  URBANE_ASSIGN_OR_RETURN(
      data::PointTable table,
      data::PointTable::View(
          schema_,
          row_count_ > 0 ? reinterpret_cast<const float*>(base + x_offset_)
                         : nullptr,
          row_count_ > 0 ? reinterpret_cast<const float*>(base + y_offset_)
                         : nullptr,
          row_count_ > 0
              ? reinterpret_cast<const std::int64_t*>(base + t_offset_)
              : nullptr,
          std::move(attrs), static_cast<std::size_t>(row_count_)));
  table.SetCachedExtents(zone_maps_.Bounds(), zone_maps_.TimeRange());
  return table;
}

StatusOr<StoreBlock> StoreReader::ReadBlock(std::size_t block_index) const {
  if (block_index >= zone_maps_.block_count()) {
    return Status::InvalidArgument(StringPrintf(
        "block %zu out of range (store has %zu)", block_index,
        zone_maps_.block_count()));
  }
  const core::BlockZoneMap& zm = zone_maps_.blocks()[block_index];
  const std::uint64_t rows = zm.row_count;
  StoreBlock block;
  block.index = block_index;
  block.row_begin = zm.row_begin;
  block.xs.resize(rows);
  block.ys.resize(rows);
  block.ts.resize(rows);
  URBANE_RETURN_IF_ERROR(
      ReadAt(x_offset_ + zm.row_begin * sizeof(float), block.xs.data(),
             rows * sizeof(float), "block x column"));
  URBANE_RETURN_IF_ERROR(
      ReadAt(y_offset_ + zm.row_begin * sizeof(float), block.ys.data(),
             rows * sizeof(float), "block y column"));
  URBANE_RETURN_IF_ERROR(
      ReadAt(t_offset_ + zm.row_begin * sizeof(std::int64_t),
             block.ts.data(), rows * sizeof(std::int64_t),
             "block t column"));
  block.attrs.resize(attr_offsets_.size());
  for (std::size_t c = 0; c < attr_offsets_.size(); ++c) {
    block.attrs[c].resize(rows);
    URBANE_RETURN_IF_ERROR(
        ReadAt(attr_offsets_[c] + zm.row_begin * sizeof(float),
               block.attrs[c].data(), rows * sizeof(float),
               "block attribute column"));
  }
  return block;
}

StatusOr<data::PointTable> StoreReader::Materialize() const {
  data::PointTable table{schema_};
  table.Reserve(static_cast<std::size_t>(row_count_));
  for (std::size_t b = 0; b < zone_maps_.block_count(); ++b) {
    URBANE_ASSIGN_OR_RETURN(StoreBlock block, ReadBlock(b));
    const std::uint64_t rows = block.row_count();
    for (std::uint64_t i = 0; i < rows; ++i) {
      table.AppendXyt(block.xs[i], block.ys[i], block.ts[i]);
    }
    for (std::size_t c = 0; c < block.attrs.size(); ++c) {
      auto& col = table.mutable_attribute_column(c);
      col.insert(col.end(), block.attrs[c].begin(), block.attrs[c].end());
    }
  }
  return table;
}

}  // namespace urbane::store
