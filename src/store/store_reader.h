#ifndef URBANE_STORE_STORE_READER_H_
#define URBANE_STORE_STORE_READER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/zone_map.h"
#include "data/point_table.h"
#include "data/schema.h"
#include "util/status.h"

namespace urbane::store {

struct StoreReaderOptions {
  /// Map the file read-only and serve MappedTable() zero-copy. When false
  /// (or when mmap fails, e.g. on a filesystem without support), the reader
  /// degrades to pread-per-block and only ReadBlock()/Materialize() work.
  bool use_mmap = true;
};

/// One block's columns, copied out of the store (the unit the BlockCache
/// holds). Self-contained: safe to use after the reader is gone as long as
/// the schema outlives it.
struct StoreBlock {
  std::size_t index = 0;
  std::uint64_t row_begin = 0;
  std::vector<float> xs;
  std::vector<float> ys;
  std::vector<std::int64_t> ts;
  std::vector<std::vector<float>> attrs;

  std::uint64_t row_count() const { return xs.size(); }
  std::size_t MemoryBytes() const;

  /// Borrowing PointTable over this block's rows (local row space
  /// [0, row_count)).
  StatusOr<data::PointTable> AsView(const data::Schema& schema) const;
};

/// Validating reader for UST1 store files. Open() checks every on-disk
/// count and offset against the actual file size before any allocation —
/// the same contract as data::binary_io — so a truncated, bit-flipped, or
/// wrong-format file yields a clean IoError naming the byte offset, never
/// UB. All read paths (mmap and pread) are safe for concurrent use from
/// multiple threads once Open returns.
class StoreReader {
 public:
  ~StoreReader();
  StoreReader(StoreReader&&) noexcept;
  StoreReader& operator=(StoreReader&&) = delete;
  StoreReader(const StoreReader&) = delete;
  StoreReader& operator=(const StoreReader&) = delete;

  static StatusOr<StoreReader> Open(const std::string& path,
                                    const StoreReaderOptions& options =
                                        StoreReaderOptions());

  const std::string& path() const { return path_; }
  const data::Schema& schema() const { return schema_; }
  std::uint64_t row_count() const { return row_count_; }
  std::uint64_t block_rows() const { return block_rows_; }
  std::size_t block_count() const { return zone_maps_.block_count(); }
  const core::ZoneMapIndex& zone_maps() const { return zone_maps_; }
  bool mapped() const { return mapped_ != nullptr; }

  /// Zero-copy PointTable view over the whole mmap'ed file, with
  /// Bounds()/TimeRange() pre-cached from the zone maps (bit-exact with a
  /// scan). IoError in pread mode. The view borrows the mapping: it must
  /// not outlive this reader.
  StatusOr<data::PointTable> MappedTable() const;

  /// Copies one block's rows out of the file (pread or memcpy-from-map).
  StatusOr<StoreBlock> ReadBlock(std::size_t block_index) const;

  /// Full owning copy of the table — block order, which is row order.
  StatusOr<data::PointTable> Materialize() const;

 private:
  StoreReader() = default;

  /// Reads `bytes` at absolute `offset` into `dst` from map or fd.
  Status ReadAt(std::uint64_t offset, void* dst, std::uint64_t bytes,
                const char* what) const;

  std::string path_;
  data::Schema schema_;
  core::ZoneMapIndex zone_maps_;
  std::uint64_t row_count_ = 0;
  std::uint64_t block_rows_ = 0;
  std::uint64_t file_size_ = 0;

  // Absolute offsets of the column sections.
  std::uint64_t x_offset_ = 0;
  std::uint64_t y_offset_ = 0;
  std::uint64_t t_offset_ = 0;
  std::vector<std::uint64_t> attr_offsets_;

  int fd_ = -1;
  void* mapped_ = nullptr;  // nullptr in pread mode
};

}  // namespace urbane::store

#endif  // URBANE_STORE_STORE_READER_H_
