#ifndef URBANE_STORE_BLOCK_CURSOR_H_
#define URBANE_STORE_BLOCK_CURSOR_H_

#include <cstdint>
#include <vector>

#include "core/filter.h"
#include "core/zone_map.h"
#include "store/block_cache.h"
#include "store/store_reader.h"
#include "util/status.h"

namespace urbane::store {

/// Block-at-a-time iteration over a store, with zone-map pruning decided up
/// front: blocks the filter provably cannot match are never read. Blocks
/// are visited in ascending row order, so a consumer that folds rows in
/// cursor order reproduces the in-memory row order exactly.
///
///   BlockCursor cursor(reader, cache, query.filter);
///   for (; !cursor.Done(); cursor.Advance()) {
///     URBANE_ASSIGN_OR_RETURN(auto pinned, cursor.Pin());
///     ... pinned->xs / ys / ts / attrs, rows start at pinned->row_begin
///   }
class BlockCursor {
 public:
  /// `reader` and `cache` must outlive the cursor.
  BlockCursor(const StoreReader& reader, BlockCache& cache,
              const core::FilterSpec& filter);

  bool Done() const { return pos_ >= survivors_.size(); }
  void Advance() { ++pos_; }

  /// Zone map of the current block (valid while !Done()).
  const core::BlockZoneMap& ZoneMap() const;

  /// Reads (or fetches from cache) the current block, pinned.
  StatusOr<BlockCache::PinnedBlock> Pin();

  std::uint64_t blocks_total() const { return blocks_total_; }
  std::uint64_t blocks_pruned() const { return blocks_pruned_; }
  std::uint64_t rows_pruned() const { return rows_pruned_; }

 private:
  const StoreReader& reader_;
  BlockCache& cache_;
  std::vector<std::size_t> survivors_;
  std::size_t pos_ = 0;
  std::uint64_t blocks_total_ = 0;
  std::uint64_t blocks_pruned_ = 0;
  std::uint64_t rows_pruned_ = 0;
};

}  // namespace urbane::store

#endif  // URBANE_STORE_BLOCK_CURSOR_H_
