#ifndef URBANE_STORE_STORE_WRITER_H_
#define URBANE_STORE_STORE_WRITER_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/zone_map.h"
#include "data/point_table.h"
#include "data/schema.h"
#include "util/status.h"

namespace urbane::store {

struct StoreWriterOptions {
  /// Rows per block — the pruning granule and the paged reader's I/O unit.
  /// 64Ki rows ≈ 1 MiB per f32 column.
  std::uint64_t block_rows = 64 * 1024;
  /// Rows buffered in memory before a Morton sort + flush to the column
  /// spill files. Bounds the writer's memory footprint independently of the
  /// dataset size; larger batches give better spatial clustering.
  std::uint64_t sort_batch_rows = 1024 * 1024;
};

struct StoreWriterStats {
  std::uint64_t rows_written = 0;
  std::uint64_t blocks_written = 0;
  std::uint64_t file_bytes = 0;
};

/// Streaming writer for the UST1 block store. Append() batches are
/// Morton-sorted (points quantized to a 2^16 grid over the batch bounds,
/// stable by Z-order key) so consecutive rows — and therefore blocks — are
/// spatially clustered, which is what makes the per-block bboxes tight
/// enough to prune on. Rows spill to per-column temp files as batches
/// flush, so peak memory is O(sort_batch_rows), not O(total rows);
/// Finish() assembles the final file through AtomicFileWriter (temp +
/// fsync + rename), so an interrupted conversion never leaves a partial
/// store at the target path.
class StoreWriter {
 public:
  ~StoreWriter();
  StoreWriter(StoreWriter&&) noexcept;
  StoreWriter& operator=(StoreWriter&&) = delete;
  StoreWriter(const StoreWriter&) = delete;
  StoreWriter& operator=(const StoreWriter&) = delete;

  static StatusOr<StoreWriter> Create(const std::string& path,
                                      data::Schema schema,
                                      const StoreWriterOptions& options =
                                          StoreWriterOptions());

  /// Appends a batch of points (schema must match Create's). The batch's
  /// rows are re-ordered internally; order across Append calls is
  /// preserved batch-to-batch.
  Status Append(const data::PointTable& batch);

  /// Flushes, assembles, and atomically publishes the store file.
  StatusOr<StoreWriterStats> Finish();

 private:
  StoreWriter() = default;

  Status FlushBatch();
  void FoldRowIntoZoneMap(float x, float y, std::int64_t t,
                          const std::vector<const float*>& attrs,
                          std::size_t row_in_batch);
  void Abandon();

  std::string path_;
  data::Schema schema_;
  StoreWriterOptions options_;

  // One spill file per column: x, y, t, then one per attribute.
  std::vector<std::FILE*> spill_files_;
  std::vector<std::string> spill_paths_;

  // The in-memory batch awaiting its Morton sort.
  std::vector<float> batch_xs_;
  std::vector<float> batch_ys_;
  std::vector<std::int64_t> batch_ts_;
  std::vector<std::vector<float>> batch_attrs_;

  // Zone-map accumulation across the whole row stream.
  std::vector<core::BlockZoneMap> zone_maps_;
  core::BlockZoneMap current_;
  bool current_open_ = false;

  std::uint64_t rows_written_ = 0;
  bool finished_ = false;
};

/// One-call conversion of an in-memory table (convenience for the CLI and
/// tests): streams `table` through a StoreWriter in sort_batch_rows chunks.
StatusOr<StoreWriterStats> WritePointStore(
    const data::PointTable& table, const std::string& path,
    const StoreWriterOptions& options = StoreWriterOptions());

}  // namespace urbane::store

#endif  // URBANE_STORE_STORE_WRITER_H_
