#include "store/block_cache.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/obs.h"

namespace urbane::store {

namespace {

void Bump(const char* name) {
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry::Global().GetCounter(name).Add(1);
  }
}

}  // namespace

BlockCache::PinnedBlock& BlockCache::PinnedBlock::operator=(
    PinnedBlock&& other) noexcept {
  if (this != &other) {
    Release();
    cache_ = other.cache_;
    index_ = other.index_;
    block_ = other.block_;
    other.cache_ = nullptr;
    other.block_ = nullptr;
  }
  return *this;
}

void BlockCache::PinnedBlock::Release() {
  if (cache_ != nullptr) {
    cache_->Unpin(index_);
    cache_ = nullptr;
    block_ = nullptr;
  }
}

BlockCache::BlockCache(const StoreReader* reader,
                       const BlockCacheOptions& options)
    : reader_(reader), options_(options) {
  if (options_.capacity_blocks == 0) {
    options_.capacity_blocks = 1;
  }
}

StatusOr<BlockCache::PinnedBlock> BlockCache::Pin(std::size_t block_index) {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    auto it = entries_.find(block_index);
    if (it == entries_.end()) break;
    if (!it->second.loading) {
      ++stats_.hits;
      Bump("store.cache_hit");
      ++it->second.pin_count;
      it->second.last_use = ++tick_;
      return PinnedBlock(this, block_index, &it->second.block);
    }
    // Another thread is loading this block; wait for it. It may fail and
    // erase the entry, in which case we loop and become the loader.
    load_cv_.wait(lock);
  }

  ++stats_.misses;
  Bump("store.cache_miss");
  Entry& entry = entries_[block_index];  // loading=true placeholder
  lock.unlock();

  StatusOr<StoreBlock> block_or = reader_->ReadBlock(block_index);

  lock.lock();
  if (!block_or.ok()) {
    entries_.erase(block_index);
    load_cv_.notify_all();
    return block_or.status();
  }
  entry.block = std::move(block_or).value();
  entry.loading = false;
  entry.pin_count = 1;
  entry.last_use = ++tick_;
  ++stats_.blocks_read;
  stats_.bytes_read += entry.block.MemoryBytes();
  Bump("store.blocks_read");
  EvictLocked();
  load_cv_.notify_all();
  return PinnedBlock(this, block_index, &entry.block);
}

void BlockCache::Unpin(std::size_t block_index) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(block_index);
  if (it != entries_.end() && it->second.pin_count > 0) {
    --it->second.pin_count;
    if (it->second.pin_count == 0) {
      EvictLocked();
    }
  }
}

void BlockCache::EvictLocked() {
  while (entries_.size() > options_.capacity_blocks) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.loading || it->second.pin_count > 0) continue;
      if (victim == entries_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // everything pinned or loading
    entries_.erase(victim);
    ++stats_.evictions;
    Bump("store.cache_evict");
  }
}

BlockCacheStats BlockCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t BlockCache::resident_blocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace urbane::store
