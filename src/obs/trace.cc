#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace urbane::obs {
namespace {

double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

QueryTrace::QueryTrace() : origin_seconds_(MonotonicSeconds()) {}

int QueryTrace::BeginSpan(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  TraceSpanRecord span;
  span.name = name;
  span.parent = open_stack_.empty() ? -1 : open_stack_.back();
  span.start_seconds = MonotonicSeconds() - origin_seconds_;
  const int id = static_cast<int>(spans_.size());
  spans_.push_back(std::move(span));
  open_stack_.push_back(id);
  return id;
}

void QueryTrace::EndSpan(int id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<int>(spans_.size())) {
    return;
  }
  const double now = MonotonicSeconds() - origin_seconds_;
  // Close the span and any descendants left open above it on the stack.
  const auto it = std::find(open_stack_.begin(), open_stack_.end(), id);
  if (it == open_stack_.end()) {
    return;  // already closed
  }
  for (auto open = it; open != open_stack_.end(); ++open) {
    TraceSpanRecord& span = spans_[static_cast<std::size_t>(*open)];
    span.duration_seconds = now - span.start_seconds;
  }
  open_stack_.erase(it, open_stack_.end());
}

void QueryTrace::AddSpanTag(int id, const std::string& key,
                            const std::string& value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<int>(spans_.size())) {
    return;
  }
  spans_[static_cast<std::size_t>(id)].tags.emplace_back(key, value);
}

int QueryTrace::AddCompletedSpan(const std::string& name,
                                 double duration_seconds, int parent,
                                 double start_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  TraceSpanRecord span;
  span.name = name;
  span.parent =
      (parent >= 0 && parent < static_cast<int>(spans_.size())) ? parent : -1;
  span.start_seconds = start_seconds;
  span.duration_seconds = duration_seconds;
  const int id = static_cast<int>(spans_.size());
  spans_.push_back(std::move(span));
  return id;
}

void QueryTrace::Tag(const std::string& key, const std::string& value) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& tag : tags_) {
    if (tag.first == key) {
      tag.second = value;
      return;
    }
  }
  tags_.emplace_back(key, value);
}

std::vector<TraceSpanRecord> QueryTrace::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::vector<std::pair<std::string, std::string>> QueryTrace::Tags() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tags_;
}

bool QueryTrace::Empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.empty() && tags_.empty();
}

void QueryTrace::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  open_stack_.clear();
  tags_.clear();
  origin_seconds_ = MonotonicSeconds();
}

data::JsonValue QueryTrace::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  data::JsonValue::Object root;
  root.emplace_back("schema", data::JsonValue("urbane.trace.v1"));

  data::JsonValue::Object tags;
  for (const auto& [key, value] : tags_) {
    tags.emplace_back(key, data::JsonValue(value));
  }
  root.emplace_back("tags", data::JsonValue(std::move(tags)));

  data::JsonValue::Array spans;
  for (const TraceSpanRecord& span : spans_) {
    data::JsonValue::Object entry;
    entry.emplace_back("name", data::JsonValue(span.name));
    entry.emplace_back("parent", data::JsonValue(span.parent));
    entry.emplace_back("start_seconds", data::JsonValue(span.start_seconds));
    entry.emplace_back("duration_seconds",
                       data::JsonValue(span.duration_seconds));
    if (!span.tags.empty()) {
      data::JsonValue::Object span_tags;
      for (const auto& [key, value] : span.tags) {
        span_tags.emplace_back(key, data::JsonValue(value));
      }
      entry.emplace_back("tags", data::JsonValue(std::move(span_tags)));
    }
    spans.emplace_back(std::move(entry));
  }
  root.emplace_back("spans", data::JsonValue(std::move(spans)));

  return data::JsonValue(std::move(root));
}

std::string QueryTrace::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [key, value] : tags_) {
    out += key;
    out += " = ";
    out += value;
    out += "\n";
  }
  // Children in span-id order under each parent (spans are appended in
  // begin order, so this reads as the execution unfolded).
  std::vector<std::vector<int>> children(spans_.size());
  std::vector<int> roots;
  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const int parent = spans_[i].parent;
    if (parent < 0) {
      roots.push_back(static_cast<int>(i));
    } else {
      children[static_cast<std::size_t>(parent)].push_back(
          static_cast<int>(i));
    }
  }
  struct Frame {
    int id;
    int depth;
  };
  std::vector<Frame> stack;
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    stack.push_back(Frame{*it, 0});
  }
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const TraceSpanRecord& span = spans_[static_cast<std::size_t>(frame.id)];
    char line[256];
    std::snprintf(line, sizeof(line), "%*s%s  %.3f ms", frame.depth * 2, "",
                  span.name.c_str(), span.duration_seconds * 1e3);
    out += line;
    for (const auto& [key, value] : span.tags) {
      out += "  [";
      out += key;
      out += "=";
      out += value;
      out += "]";
    }
    out += "\n";
    const auto& kids = children[static_cast<std::size_t>(frame.id)];
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back(Frame{*it, frame.depth + 1});
    }
  }
  return out;
}

}  // namespace urbane::obs
