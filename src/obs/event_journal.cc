#include "obs/event_journal.h"

#include <chrono>

namespace urbane::obs {

namespace {

std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

std::uint64_t SteadyNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kQueryStart:
      return "query.start";
    case EventKind::kQueryFinish:
      return "query.finish";
    case EventKind::kCacheEvict:
      return "cache.evict";
    case EventKind::kPlannerChoose:
      return "planner.choose";
    case EventKind::kSessionFrame:
      return "session.frame";
    case EventKind::kError:
      return "error";
    case EventKind::kIngestAppend:
      return "ingest.append";
    case EventKind::kIngestFlush:
      return "ingest.flush";
  }
  return "unknown";
}

EventJournal::EventJournal(std::size_t capacity)
    : capacity_(RoundUpPow2(capacity < 2 ? 2 : capacity)),
      mask_(capacity_ - 1),
      slots_(new Slot[capacity_]) {
  // Slot sequence i == "slot i is free for the producer whose ticket is i".
  for (std::size_t i = 0; i < capacity_; ++i) {
    slots_[i].seq.store(i, std::memory_order_relaxed);
  }
}

bool EventJournal::Publish(Event event) {
  std::uint64_t pos = head_.load(std::memory_order_relaxed);
  Slot* slot;
  for (;;) {
    slot = &slots_[pos & mask_];
    const std::uint64_t seq = slot->seq.load(std::memory_order_acquire);
    const std::int64_t dif =
        static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
    if (dif == 0) {
      // Slot is free at our ticket; claim it.
      if (head_.compare_exchange_weak(pos, pos + 1,
                                      std::memory_order_relaxed)) {
        break;
      }
      // CAS failed: pos was reloaded, retry with the new ticket.
    } else if (dif < 0) {
      // The consumer has not yet freed this slot — ring is full. Dropping
      // here (rather than spinning) is the "never block writers" contract.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    } else {
      // Another producer claimed this ticket; chase the head.
      pos = head_.load(std::memory_order_relaxed);
    }
  }
  event.sequence = published_.fetch_add(1, std::memory_order_relaxed);
  if (event.timestamp_ns == 0) event.timestamp_ns = SteadyNowNs();
  slot->event = event;
  // Release-publish: seq == pos + 1 means "filled, consumer may take it".
  slot->seq.store(pos + 1, std::memory_order_release);
  return true;
}

std::size_t EventJournal::Drain(std::vector<Event>* out,
                                std::size_t max_events) {
  std::lock_guard<std::mutex> lock(consumer_mu_);
  std::size_t drained = 0;
  while (drained < max_events) {
    Slot* slot = &slots_[tail_ & mask_];
    const std::uint64_t seq = slot->seq.load(std::memory_order_acquire);
    if (seq != tail_ + 1) break;  // not yet filled
    out->push_back(slot->event);
    // Free the slot for the producer one lap ahead.
    slot->seq.store(tail_ + capacity_, std::memory_order_release);
    ++tail_;
    ++drained;
  }
  return drained;
}

void EventJournal::Reset() {
  std::lock_guard<std::mutex> lock(consumer_mu_);
  for (std::size_t i = 0; i < capacity_; ++i) {
    slots_[i].seq.store(i, std::memory_order_relaxed);
  }
  head_.store(0, std::memory_order_relaxed);
  tail_ = 0;
  published_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

EventJournal& EventJournal::Global() {
  static EventJournal* journal = new EventJournal();
  return *journal;
}

namespace {
thread_local std::uint64_t t_event_context = 0;
thread_local std::uint64_t t_trace_hi = 0;
thread_local std::uint64_t t_trace_lo = 0;
}  // namespace

std::uint64_t CurrentEventContext() { return t_event_context; }

ScopedEventContext::ScopedEventContext(std::uint64_t context)
    : previous_(t_event_context) {
  t_event_context = context;
}

ScopedEventContext::~ScopedEventContext() { t_event_context = previous_; }

void CurrentTraceContext(std::uint64_t* trace_hi, std::uint64_t* trace_lo) {
  *trace_hi = t_trace_hi;
  *trace_lo = t_trace_lo;
}

ScopedTraceContext::ScopedTraceContext(std::uint64_t trace_hi,
                                       std::uint64_t trace_lo)
    : previous_hi_(t_trace_hi), previous_lo_(t_trace_lo) {
  t_trace_hi = trace_hi;
  t_trace_lo = trace_lo;
}

ScopedTraceContext::~ScopedTraceContext() {
  t_trace_hi = previous_hi_;
  t_trace_lo = previous_lo_;
}

}  // namespace urbane::obs
