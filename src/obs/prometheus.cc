#include "obs/prometheus.h"

#include <cctype>
#include <sstream>

namespace urbane::obs {

namespace {

void AppendNumber(std::ostringstream& out, double value) {
  // ostream default formatting gives shortest-ish round-trippable doubles
  // at precision 17; Prometheus accepts any float literal. Use a fixed
  // high precision but trim via ostringstream default instead.
  out << value;
}

}  // namespace

std::string PrometheusMetricName(const std::string& name) {
  std::string out = "urbane_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out.precision(12);

  for (const CounterSnapshot& counter : snapshot.counters) {
    const std::string name = PrometheusMetricName(counter.name);
    out << "# TYPE " << name << " counter\n";
    out << name << " " << counter.value << "\n";
  }

  for (const GaugeSnapshot& gauge : snapshot.gauges) {
    const std::string name = PrometheusMetricName(gauge.name);
    out << "# TYPE " << name << " gauge\n";
    out << name << " ";
    AppendNumber(out, gauge.value);
    out << "\n";
  }

  for (const HistogramSnapshot& histogram : snapshot.histograms) {
    const std::string name = PrometheusMetricName(histogram.name);
    out << "# TYPE " << name << " histogram\n";
    // Snapshot buckets are per-bucket counts; Prometheus buckets are
    // cumulative ("observations <= le").
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < histogram.bounds.size(); ++i) {
      cumulative += i < histogram.buckets.size() ? histogram.buckets[i] : 0;
      out << name << "_bucket{le=\"";
      AppendNumber(out, histogram.bounds[i]);
      out << "\"} " << cumulative << "\n";
    }
    out << name << "_bucket{le=\"+Inf\"} " << histogram.count << "\n";
    out << name << "_sum ";
    AppendNumber(out, histogram.sum);
    out << "\n";
    out << name << "_count " << histogram.count << "\n";
  }

  return out.str();
}

}  // namespace urbane::obs
