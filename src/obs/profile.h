#ifndef URBANE_OBS_PROFILE_H_
#define URBANE_OBS_PROFILE_H_

// Per-request query profiles ("EXPLAIN ANALYZE" for the serving path).
//
// A QueryProfile rides one request end to end: the server (or the CLI)
// creates it, the facade attributes planner choice, cache outcome,
// zone-map pruning, executor pass costs and coordinator thread-CPU time
// to it, and the sharded executor appends a per-shard breakdown table in
// shard-index order. The filled profile renders as the stable
// `urbane.profile.v1` JSON document (HTTP `?profile=1`), as an aligned
// text table (CLI `explain analyze`), and is retained in a bounded
// in-process ProfileStore keyed by trace id (`GET /v1/profiles/<id>`).
//
// Trace-context propagation follows W3C trace context: the server parses
// an inbound `traceparent` header (malformed headers are ignored — the
// request is still served under a freshly generated context), echoes the
// context in the response, and stamps the trace id into journal events
// and slow-query records so one id links every artifact of a request.
//
// Cost model: the profile is a nullable pointer on AggregationQuery,
// exactly like `trace` — a null profile (the default) costs one pointer
// test per instrumentation site, preserving the obs-off == baseline
// contract. All mutation happens on the coordinator thread; per-shard
// measurements are taken on pool workers into per-slot storage and folded
// in after the gather fence (see shard/sharded_executor.cc).
//
// Determinism contract (DESIGN.md §12): for a fixed (thread count, shard
// count) every structural and counter field of the profile is bit-stable
// across runs; `*_seconds` fields are wall/CPU measurements and are
// excluded from the contract. CanonicalizeProfileJson zeroes exactly the
// measured fields so golden tests can compare whole documents.

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/json.h"

namespace urbane::obs {

/// W3C trace-context identity: 128-bit trace id, 64-bit parent (span) id,
/// 8-bit flags. A default-constructed context (all-zero trace id) is
/// invalid per the spec and means "none".
struct TraceContext {
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  std::uint64_t parent_id = 0;
  std::uint8_t flags = 0x01;  // sampled

  bool valid() const { return (trace_hi | trace_lo) != 0; }
  /// 32 lowercase hex chars (the `/v1/profiles/<id>` key).
  std::string TraceIdHex() const;
  /// "00-<32 hex trace id>-<16 hex parent id>-<2 hex flags>".
  std::string ToTraceparent() const;
};

/// Parses a `traceparent` header value. Accepts exactly the W3C version-00
/// shape: "vv-tttt(32)-pppp(16)-ff" with lowercase-or-uppercase hex,
/// version != "ff", and a non-zero trace id and parent id. Returns false —
/// leaving *out untouched — on anything malformed, so callers fall back to
/// a generated context and still serve the request.
bool ParseTraceparent(const std::string& header, TraceContext* out);

/// Fresh context: a process-unique 128-bit trace id (seeded from the
/// monotonic clock and a process-wide counter, splitmix-scrambled) with a
/// new parent id and the sampled flag.
TraceContext GenerateTraceContext();

/// CLOCK_THREAD_CPUTIME_ID in seconds; 0.0 where unsupported. The delta
/// across a scope is the calling thread's CPU attribution for it — exact
/// for serial and per-shard execution (each shard pass runs serially on
/// one pool thread), coordinator-only for intra-executor parallelism.
double ThreadCpuSeconds();

/// One execution's pass costs — the profile's mirror of
/// core::ExecutorStats (obs cannot depend on core; core/observe.h copies
/// the fields across). Counters are deterministic; seconds are measured.
struct ProfilePassCosts {
  std::uint64_t points_scanned = 0;
  std::uint64_t points_bulk = 0;
  std::uint64_t pip_tests = 0;
  std::uint64_t pixels_touched = 0;
  std::uint64_t boundary_pixels = 0;
  std::uint64_t tiles_visited = 0;
  std::uint64_t simd_fragments = 0;
  double filter_seconds = 0.0;
  double splat_seconds = 0.0;
  double sweep_seconds = 0.0;
  double reduce_seconds = 0.0;
  double refine_seconds = 0.0;
  double query_seconds = 0.0;

  data::JsonValue ToJson() const;
};

/// One shard's slice of a scatter-gather execution, in shard-index order.
struct ShardProfileEntry {
  std::uint64_t index = 0;
  std::uint64_t rows_begin = 0;
  std::uint64_t rows_end = 0;
  /// Candidate rows after intersecting the shard with zone-map pruning.
  std::uint64_t candidate_rows = 0;
  double wall_seconds = 0.0;  // measured on the shard's worker thread
  double cpu_seconds = 0.0;   // CLOCK_THREAD_CPUTIME_ID delta, same thread
  ProfilePassCosts costs;
};

/// The per-request profile. Single-writer: only the coordinator thread of
/// a request mutates it (see file comment), so fields are plain.
struct QueryProfile {
  TraceContext context;

  /// Request layer (filled by the query server; zero for CLI/library use).
  double queue_wait_seconds = 0.0;

  /// Facade layer.
  std::string method;               // executor that ran ("scan", ...)
  std::string planner_choice;       // set when the planner picked `method`
  std::string planner_explanation;  // planner cost-model rationale
  std::string cache = "off";        // "hit" | "miss" | "off"
  double wall_seconds = 0.0;        // facade Execute wall time
  double cpu_seconds = 0.0;         // coordinator thread-CPU inside Execute

  /// Store layer (zone-map pruning; zero when no store is attached).
  std::uint64_t blocks_total = 0;
  std::uint64_t blocks_pruned = 0;
  std::uint64_t rows_pruned = 0;
  /// Block-cache / streaming-scan attribution (store-backed execution
  /// outside the mmap zero-copy path; zero otherwise).
  std::uint64_t store_blocks_scanned = 0;
  std::uint64_t store_blocks_read = 0;
  std::uint64_t store_cache_hits = 0;
  std::uint64_t store_bytes_read = 0;

  /// Executor totals (the merged stats of the pass that ran). For a
  /// sharded execution the counters equal the sum over `shards`.
  std::uint64_t threads_used = 0;
  ProfilePassCosts totals;

  /// Shard layer; empty unless the sharded path executed.
  double scatter_seconds = 0.0;
  double merge_seconds = 0.0;
  std::vector<ShardProfileEntry> shards;

  /// The stable wire document, schema "urbane.profile.v1". Key order is
  /// fixed; integer counters render exactly (they stay far below 2^53).
  data::JsonValue ToJson() const;

  /// Aligned text rendering for `explain analyze` — same structure as the
  /// JSON: header lines, a totals row, then one row per shard.
  std::string ToTable() const;
};

/// Zeroes every measured (`*_seconds`) field of an urbane.profile.v1
/// document in place, leaving the deterministic skeleton golden tests
/// compare. Unknown keys are preserved untouched.
void CanonicalizeProfileJson(data::JsonValue* doc);

/// Bounded in-memory retention of rendered profiles keyed by trace id.
/// Insert-order eviction (oldest first); lookups and the recent listing
/// take one mutex — profile retention is off the query hot path (one
/// insert per *profiled* request, which already paid for JSON rendering).
class ProfileStore {
 public:
  explicit ProfileStore(std::size_t capacity = kDefaultCapacity);

  ProfileStore(const ProfileStore&) = delete;
  ProfileStore& operator=(const ProfileStore&) = delete;

  /// The process-wide store behind /v1/profiles.
  static ProfileStore& Global();

  /// Renders and retains `profile`. Re-inserting a trace id replaces the
  /// retained document (and refreshes its eviction position).
  void Insert(const QueryProfile& profile);

  /// The retained document for a trace id (32 lowercase hex chars), or
  /// false when unknown/evicted.
  bool Lookup(const std::string& trace_id, data::JsonValue* out) const;

  /// Schema "urbane.profiles.v1": newest-first summaries of up to `limit`
  /// retained profiles {trace_id, method, cache, wall_seconds, shards}.
  data::JsonValue Recent(std::size_t limit = 32) const;

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  void Clear();

  static constexpr std::size_t kDefaultCapacity = 256;

 private:
  struct Entry {
    data::JsonValue doc;
    std::string method;
    std::string cache;
    double wall_seconds = 0.0;
    std::uint64_t shards = 0;
  };

  std::size_t capacity_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  std::deque<std::string> order_;  // insertion order, oldest first
};

}  // namespace urbane::obs

#endif  // URBANE_OBS_PROFILE_H_
