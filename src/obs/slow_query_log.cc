#include "obs/slow_query_log.h"

#include <algorithm>
#include <utility>

#include "obs/process_metrics.h"
#include "util/string_util.h"

namespace urbane::obs {

namespace {
constexpr double kThresholdRefreshSeconds = 0.25;
}  // namespace

SlowQueryLog::SlowQueryLog(SlowQueryLogOptions options)
    : options_(std::move(options)) {
  if (options_.capacity == 0) options_.capacity = 1;
}

SlowQueryLog& SlowQueryLog::Global() {
  static SlowQueryLog* log = new SlowQueryLog();  // never destroyed
  return *log;
}

void SlowQueryLog::SetOptions(const SlowQueryLogOptions& options) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    options_ = options;
    if (options_.capacity == 0) options_.capacity = 1;
    while (records_.size() > options_.capacity) records_.pop_front();
  }
  // Invalidate the cached threshold so the new options take effect now.
  std::lock_guard<std::mutex> lock(threshold_mu_);
  cached_at_seconds_ = -1.0;
}

SlowQueryLogOptions SlowQueryLog::options() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_;
}

double SlowQueryLog::ThresholdSeconds() const {
  SlowQueryLogOptions opts = options();
  if (opts.p99_multiplier <= 0.0) return opts.threshold_seconds;
  const double now = ProcessUptimeSeconds();
  std::lock_guard<std::mutex> lock(threshold_mu_);
  if (cached_at_seconds_ >= 0.0 &&
      now - cached_at_seconds_ < kThresholdRefreshSeconds) {
    return cached_threshold_;
  }
  const HistogramSnapshot histogram =
      MetricsRegistry::Global().SnapshotHistogram(opts.histogram_name);
  double threshold = opts.threshold_floor_seconds;
  if (histogram.count > 0) {
    threshold = std::max(threshold,
                         opts.p99_multiplier * histogram.Quantile(0.99));
  }
  cached_threshold_ = threshold;
  cached_at_seconds_ = now;
  return threshold;
}

void SlowQueryLog::RefreshThreshold(const MetricsRegistry* registry) {
  SlowQueryLogOptions opts = options();
  std::lock_guard<std::mutex> lock(threshold_mu_);
  if (opts.p99_multiplier <= 0.0) {
    cached_threshold_ = opts.threshold_seconds;
    cached_at_seconds_ = ProcessUptimeSeconds();
    return;
  }
  const MetricsRegistry& source =
      registry != nullptr ? *registry : MetricsRegistry::Global();
  const HistogramSnapshot histogram =
      source.SnapshotHistogram(opts.histogram_name);
  double threshold = opts.threshold_floor_seconds;
  if (histogram.count > 0) {
    threshold = std::max(threshold,
                         opts.p99_multiplier * histogram.Quantile(0.99));
  }
  cached_threshold_ = threshold;
  cached_at_seconds_ = ProcessUptimeSeconds();
}

bool SlowQueryLog::MaybeRecord(std::uint64_t fingerprint,
                               const std::string& method,
                               const std::string& query,
                               const std::string& plan, double wall_seconds,
                               const QueryTrace* trace,
                               const QueryProfile* profile) {
  const double threshold = ThresholdSeconds();
  if (wall_seconds < threshold) return false;

  SlowQueryRecord record;
  record.fingerprint = fingerprint;
  record.method = method;
  record.query = query;
  record.plan = plan;
  record.wall_seconds = wall_seconds;
  record.threshold_seconds = threshold;
  record.timestamp_seconds = ProcessUptimeSeconds();
  if (trace != nullptr) record.trace = trace->ToJson();
  if (profile != nullptr) {
    record.trace_id = profile->context.TraceIdHex();
    record.profile = profile->ToJson();
  }

  std::lock_guard<std::mutex> lock(mu_);
  record.sequence = next_sequence_++;
  records_.push_back(std::move(record));
  while (records_.size() > options_.capacity) records_.pop_front();
  captured_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::vector<SlowQueryRecord> SlowQueryLog::Records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<SlowQueryRecord>(records_.begin(), records_.end());
}

void SlowQueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  captured_.store(0, std::memory_order_relaxed);
  next_sequence_ = 0;
}

data::JsonValue SlowQueryLog::ToJson() const {
  data::JsonValue::Object root;
  root.emplace_back("schema", data::JsonValue("urbane.slowlog.v1"));
  root.emplace_back("armed", data::JsonValue(armed()));
  root.emplace_back("threshold_seconds", data::JsonValue(ThresholdSeconds()));
  root.emplace_back("captured",
                    data::JsonValue(static_cast<double>(captured())));

  data::JsonValue::Array record_array;
  for (const SlowQueryRecord& record : Records()) {
    data::JsonValue::Object entry;
    entry.emplace_back("sequence",
                       data::JsonValue(static_cast<double>(record.sequence)));
    // 64-bit fingerprints don't round-trip through JSON doubles; hex string.
    entry.emplace_back(
        "fingerprint",
        data::JsonValue(StringPrintf(
            "%016llx", static_cast<unsigned long long>(record.fingerprint))));
    entry.emplace_back("method", data::JsonValue(record.method));
    entry.emplace_back("query", data::JsonValue(record.query));
    entry.emplace_back("plan", data::JsonValue(record.plan));
    entry.emplace_back("trace_id", data::JsonValue(record.trace_id));
    entry.emplace_back("wall_seconds", data::JsonValue(record.wall_seconds));
    entry.emplace_back("threshold_seconds",
                       data::JsonValue(record.threshold_seconds));
    entry.emplace_back("timestamp_seconds",
                       data::JsonValue(record.timestamp_seconds));
    entry.emplace_back("trace", record.trace);
    entry.emplace_back("profile", record.profile);
    record_array.emplace_back(std::move(entry));
  }
  root.emplace_back("records", data::JsonValue(std::move(record_array)));
  return data::JsonValue(std::move(root));
}

}  // namespace urbane::obs
