#ifndef URBANE_OBS_EVENT_JOURNAL_H_
#define URBANE_OBS_EVENT_JOURNAL_H_

// Bounded lock-free MPSC journal of fixed-size structured events.
//
// The journal is the always-on production feed: every query start/finish,
// cache eviction, planner decision, session frame, and error drops one
// fixed-size Event into a bounded ring. Producers (query threads) never
// block and never allocate — a full ring drops the event and counts the
// drop exactly. A single drainer (CLI `events`, the TelemetryExporter, or
// a test) consumes events in publication order without ever stalling
// producers.
//
// The ring is a Vyukov bounded MPMC queue specialised to multi-producer /
// single-consumer: each slot carries a sequence number that encodes whose
// turn it is (producer vs. consumer) for that slot, so producers only
// contend on one atomic counter and the consumer walks the ring with plain
// loads + one release store per slot.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/obs.h"

namespace urbane::obs {

enum class EventKind : std::uint8_t {
  kQueryStart = 0,
  kQueryFinish = 1,
  kCacheEvict = 2,
  kPlannerChoose = 3,
  kSessionFrame = 4,
  kError = 5,
  kIngestAppend = 6,
  kIngestFlush = 7,
};

// Stable wire name for an event kind ("query.start", "cache.evict", ...).
const char* EventKindName(EventKind kind);

// Event::flags bits.
inline constexpr std::uint8_t kEventCacheHit = 1u << 0;
inline constexpr std::uint8_t kEventError = 1u << 1;

// One fixed-size journal entry. Interpretation of the payload fields by
// kind (unused fields are zero):
//   kQueryStart    method=ExecutionMethod, fingerprint=query fingerprint
//   kQueryFinish   method, fingerprint, value=wall seconds,
//                  flags&kEventCacheHit, flags&kEventError
//   kCacheEvict    fingerprint=evicted key, value=entry bytes
//   kPlannerChoose method=chosen ExecutionMethod, fingerprint,
//                  value=estimated cost of the chosen plan
//   kSessionFrame  detail=InteractionKind, value=frame seconds,
//                  flags&kEventCacheHit
//   kError         method, fingerprint, detail=StatusCode
//   kIngestAppend  fingerprint=new watermark, value=rows appended
//   kIngestFlush   fingerprint=run generation, value=rows flushed
struct Event {
  EventKind kind = EventKind::kQueryStart;
  std::uint8_t method = 0;
  std::uint8_t flags = 0;
  std::uint8_t detail = 0;
  std::uint64_t fingerprint = 0;
  double value = 0.0;
  // Caller context (e.g. the query server's connection id), 0 when none.
  // Stamped by EmitEvent from the thread-local ScopedEventContext, so deep
  // instrumentation sites (cache, planner) inherit it for free.
  std::uint64_t context = 0;
  // W3C trace id of the request that caused this event (both halves zero
  // when none). Stamped by EmitEvent from the thread-local
  // ScopedTraceContext the same way `context` is, so one trace id links a
  // request's response, journal events, slowlog record, and retained
  // profile (DESIGN.md §12).
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  // Monotonic (steady_clock) nanoseconds, stamped at publication.
  std::uint64_t timestamp_ns = 0;
  // Global publication order; contiguous across drains, so gaps caused by
  // overflow drops are visible to consumers.
  std::uint64_t sequence = 0;
};

// The calling thread's current event context (0 = none). Set via
// ScopedEventContext; read by EmitEvent.
std::uint64_t CurrentEventContext();

// RAII: tags every event the current thread emits within the scope with
// `context` (e.g. one server request handler). Nestable; restores the
// previous context on destruction.
class ScopedEventContext {
 public:
  explicit ScopedEventContext(std::uint64_t context);
  ~ScopedEventContext();

  ScopedEventContext(const ScopedEventContext&) = delete;
  ScopedEventContext& operator=(const ScopedEventContext&) = delete;

 private:
  std::uint64_t previous_;
};

// The calling thread's current trace id halves (both zero = none). Set via
// ScopedTraceContext; read by EmitEvent and the facade's armed-profile
// path. Raw halves rather than obs::TraceContext so this header stays free
// of the profile layer.
void CurrentTraceContext(std::uint64_t* trace_hi, std::uint64_t* trace_lo);

// RAII: stamps every event the current thread emits within the scope with
// a W3C trace id (e.g. one server request). Nestable; restores the
// previous trace id on destruction.
class ScopedTraceContext {
 public:
  ScopedTraceContext(std::uint64_t trace_hi, std::uint64_t trace_lo);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  std::uint64_t previous_hi_;
  std::uint64_t previous_lo_;
};

class EventJournal {
 public:
  // Capacity is rounded up to a power of two; minimum 2.
  explicit EventJournal(std::size_t capacity = kDefaultCapacity);

  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  // Publishes one event (stamping sequence + timestamp). Never blocks;
  // returns false and counts the drop when the ring is full. Safe to call
  // from any number of threads concurrently with Drain.
  bool Publish(Event event);

  // Drains up to max_events in publication order into *out (appending).
  // Single-consumer: concurrent Drain calls are serialised internally, and
  // never block producers. Returns the number of events appended.
  std::size_t Drain(std::vector<Event>* out,
                    std::size_t max_events = SIZE_MAX);

  std::size_t capacity() const { return capacity_; }
  // Total events accepted / rejected since construction (or last Reset).
  std::uint64_t published() const {
    return published_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  // Discards buffered events and zeroes the publish/drop counters. Not
  // safe concurrently with Publish; intended for tests and CLI resets.
  void Reset();

  static constexpr std::size_t kDefaultCapacity = 8192;

  // The process-wide journal instrumentation sites publish into.
  static EventJournal& Global();

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> seq;
    Event event;
  };

  std::size_t capacity_;
  std::uint64_t mask_;
  std::unique_ptr<Slot[]> slots_;
  alignas(64) std::atomic<std::uint64_t> head_{0};  // next producer position
  alignas(64) std::uint64_t tail_ = 0;              // next consumer position
  std::mutex consumer_mu_;                          // serialises drainers
  alignas(64) std::atomic<std::uint64_t> published_{0};
  alignas(64) std::atomic<std::uint64_t> dropped_{0};
};

// Publishes into EventJournal::Global() iff JournalEnabled(); stamps the
// timestamp. Instrumentation sites call this so a disabled journal costs
// one relaxed load.
inline void EmitEvent(const Event& event) {
  if (!JournalEnabled()) return;
  if (event.context == 0 || (event.trace_hi | event.trace_lo) == 0) {
    Event tagged = event;
    if (tagged.context == 0) tagged.context = CurrentEventContext();
    if ((tagged.trace_hi | tagged.trace_lo) == 0) {
      CurrentTraceContext(&tagged.trace_hi, &tagged.trace_lo);
    }
    EventJournal::Global().Publish(tagged);
    return;
  }
  EventJournal::Global().Publish(event);
}

}  // namespace urbane::obs

#endif  // URBANE_OBS_EVENT_JOURNAL_H_
