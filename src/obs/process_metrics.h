#ifndef URBANE_OBS_PROCESS_METRICS_H_
#define URBANE_OBS_PROCESS_METRICS_H_

// Process-level gauges for the exporter's /metrics page: uptime, memory
// from /proc/self (graceful zero fallback off-Linux), and thread counts.

#include <cstdint>

namespace urbane::obs {
class MetricsRegistry;

// Seconds since this module was first initialised (steady clock).
double ProcessUptimeSeconds();

// Resident-set / virtual-memory size in bytes from /proc/self/statm;
// 0 when unavailable (non-Linux or restricted /proc).
std::uint64_t ProcessResidentBytes();
std::uint64_t ProcessVirtualBytes();

// Live OS thread count from /proc/self/status ("Threads:"); 0 when
// unavailable.
std::uint64_t ProcessThreadCount();

// Writes the process.* gauges (uptime_seconds, resident_bytes,
// virtual_bytes, threads, hardware_threads) into `registry`. Unavailable
// values are skipped rather than exported as 0.
void UpdateProcessGauges(MetricsRegistry& registry);

}  // namespace urbane::obs

#endif  // URBANE_OBS_PROCESS_METRICS_H_
