#ifndef URBANE_OBS_OBS_H_
#define URBANE_OBS_OBS_H_

// Process-wide observability switches.
//
// Both metrics and tracing default to OFF so the hot query path pays only a
// relaxed atomic load (and null-pointer span checks) when nobody is looking.
// The switches are independent: benchmarks usually want metrics without the
// per-query trace allocations, while the CLI `trace` command wants a trace
// for exactly one query.
//
// Compiling with -DURBANE_OBS_DISABLED hard-wires both switches off so the
// compiler can fold every instrumentation site to nothing.

#include <atomic>

namespace urbane::obs {

#ifdef URBANE_OBS_DISABLED

inline constexpr bool MetricsEnabled() { return false; }
inline constexpr bool TracingEnabled() { return false; }
inline constexpr bool JournalEnabled() { return false; }
inline void SetMetricsEnabled(bool) {}
inline void SetTracingEnabled(bool) {}
inline void SetJournalEnabled(bool) {}

#else

namespace internal {
// Defined in obs.cc. Relaxed ordering is sufficient: the flags gate
// *recording*, not inter-thread data publication.
extern std::atomic<bool> g_metrics_enabled;
extern std::atomic<bool> g_tracing_enabled;
extern std::atomic<bool> g_journal_enabled;
}  // namespace internal

inline bool MetricsEnabled() {
  return internal::g_metrics_enabled.load(std::memory_order_relaxed);
}
inline bool TracingEnabled() {
  return internal::g_tracing_enabled.load(std::memory_order_relaxed);
}
// Gates the structured event journal (obs/event_journal.h). Independent of
// the other two switches: the journal is the always-on production feed,
// metrics/tracing are the heavier aggregate/diagnostic layers.
inline bool JournalEnabled() {
  return internal::g_journal_enabled.load(std::memory_order_relaxed);
}
void SetMetricsEnabled(bool enabled);
void SetTracingEnabled(bool enabled);
void SetJournalEnabled(bool enabled);

#endif  // URBANE_OBS_DISABLED

// True when neither metrics nor tracing is active: the zero-cost fast path.
inline bool Disabled() { return !MetricsEnabled() && !TracingEnabled(); }

}  // namespace urbane::obs

#endif  // URBANE_OBS_OBS_H_
