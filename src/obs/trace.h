#ifndef URBANE_OBS_TRACE_H_
#define URBANE_OBS_TRACE_H_

// Per-query hierarchical tracing.
//
// A `QueryTrace` collects the spans and tags for one query: the planner's
// choice, the cache probe outcome, and one span per executor pass (filter,
// splat, reduce, sweep, refine). Executors receive the trace as a nullable
// pointer on `AggregationQuery`; a null pointer makes every `TraceSpan` a
// no-op, which is the disabled fast path.
//
// Coordinator-side spans are opened/closed sequentially, so parentage is
// tracked with a stack of open spans: a span begun while another is open
// becomes its child. Worker threads never open spans directly — per-worker
// timings are folded in afterwards via `AddCompletedSpan` with an explicit
// parent. All mutating calls lock the trace's mutex, so one trace may be
// shared by the facade and an executor without racing.

#include <cstddef>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "data/json.h"

namespace urbane::obs {

struct TraceSpanRecord {
  std::string name;
  int parent = -1;  // index into the trace's span list; -1 for roots
  double start_seconds = 0.0;     // relative to the trace origin
  double duration_seconds = 0.0;  // 0 while the span is still open
  std::vector<std::pair<std::string, std::string>> tags;
};

class QueryTrace {
 public:
  QueryTrace();
  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  /// Opens a span; it becomes a child of the innermost open span. Returns
  /// the span id for `EndSpan`/`AddSpanTag`.
  int BeginSpan(const std::string& name);
  /// Closes the span, recording its duration. Ends any of its still-open
  /// descendants as well (they share the end time).
  void EndSpan(int id);
  void AddSpanTag(int id, const std::string& key, const std::string& value);

  /// Appends an already-measured span (e.g. per-worker time folded in by a
  /// coordinator). `start_seconds` defaults to 0 so traces assembled from
  /// synthetic durations stay deterministic.
  int AddCompletedSpan(const std::string& name, double duration_seconds,
                       int parent = -1, double start_seconds = 0.0);

  /// Trace-level tag (planner choice, cache outcome, ...). Last write wins.
  void Tag(const std::string& key, const std::string& value);

  std::vector<TraceSpanRecord> Spans() const;
  std::vector<std::pair<std::string, std::string>> Tags() const;
  bool Empty() const;
  void Clear();

  /// Schema "urbane.trace.v1" — see DESIGN.md "Observability".
  data::JsonValue ToJson() const;
  /// Indented span tree with millisecond durations, for the CLI.
  std::string ToString() const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceSpanRecord> spans_;
  std::vector<int> open_stack_;
  std::vector<std::pair<std::string, std::string>> tags_;
  double origin_seconds_ = 0.0;  // monotonic clock at construction
};

/// RAII span handle. A null trace makes construction, tagging, and
/// destruction no-ops — instrumentation sites don't branch on the obs
/// switches themselves.
class TraceSpan {
 public:
  TraceSpan(QueryTrace* trace, const char* name)
      : trace_(trace), id_(trace ? trace->BeginSpan(name) : -1) {}
  ~TraceSpan() {
    if (trace_ != nullptr) {
      trace_->EndSpan(id_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void Tag(const std::string& key, const std::string& value) {
    if (trace_ != nullptr) {
      trace_->AddSpanTag(id_, key, value);
    }
  }
  int id() const { return id_; }

 private:
  QueryTrace* trace_;
  int id_;
};

}  // namespace urbane::obs

#endif  // URBANE_OBS_TRACE_H_
