#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace urbane::obs {
namespace {

// Each thread gets a stable slot so repeated Adds from one thread hit one
// cache line, and threads spread across shards round-robin.
std::size_t ThreadSlot() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

void AtomicAddDouble(std::atomic<double>& target, double delta) {
  double observed = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(observed, observed + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMinDouble(std::atomic<double>& target, double value) {
  double observed = target.load(std::memory_order_relaxed);
  while (value < observed &&
         !target.compare_exchange_weak(observed, value,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>& target, double value) {
  double observed = target.load(std::memory_order_relaxed);
  while (value > observed &&
         !target.compare_exchange_weak(observed, value,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Counter

void Counter::Add(std::uint64_t delta) {
  shards_[ThreadSlot() % kShards].value.fetch_add(delta,
                                                  std::memory_order_relaxed);
}

std::uint64_t Counter::Value() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Shard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// Gauge

void Gauge::Add(double delta) { AtomicAddDouble(value_, delta); }

// ---------------------------------------------------------------------------
// Histogram

std::vector<double> DefaultLatencyBounds() {
  return {0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
          0.025,  0.05,    0.1,    0.25,  0.5,    1.0,   2.5,  5.0};
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  if (buckets_.size() != bounds_.size() + 1) {
    // Duplicates were removed; re-size the bucket array to match.
    buckets_ = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
  }
  // Pre-C++20, default-constructed std::atomic is NOT value-initialized;
  // vector's default construction leaves the counts indeterminate.
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_.begin());  // overflow bucket last
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(sum_, value);
  AtomicMinDouble(min_, value);
  AtomicMaxDouble(max_, value);
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Snapshots

double HistogramSnapshot::Mean() const {
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0 || buckets.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the target observation (1-based, linear in q).
  const double rank = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    const double next = static_cast<double>(cumulative + in_bucket);
    if (rank <= next || i + 1 == buckets.size()) {
      // Interpolate within [lower, upper). The overflow bucket (no bound)
      // stretches from the last bound to the observed max.
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      const double upper = i < bounds.size() ? bounds[i] : std::max(max, lower);
      const double into =
          std::min(1.0, std::max(0.0, (rank - static_cast<double>(cumulative)) /
                                          static_cast<double>(in_bucket)));
      const double value = lower + (upper - lower) * into;
      // Bucket edges can over/under-shoot the true range; the histogram
      // tracks exact min/max, so clamp to them.
      return std::min(max, std::max(min, value));
    }
    cumulative += in_bucket;
  }
  return max;
}

namespace {

template <typename T>
const T* FindByName(const std::vector<T>& items, const std::string& name) {
  for (const T& item : items) {
    if (item.name == name) {
      return &item;
    }
  }
  return nullptr;
}

}  // namespace

const CounterSnapshot* MetricsSnapshot::FindCounter(
    const std::string& name) const& {
  return FindByName(counters, name);
}

const GaugeSnapshot* MetricsSnapshot::FindGauge(
    const std::string& name) const& {
  return FindByName(gauges, name);
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    const std::string& name) const& {
  return FindByName(histograms, name);
}

std::uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  const CounterSnapshot* counter = FindCounter(name);
  return counter == nullptr ? 0 : counter->value;
}

data::JsonValue MetricsSnapshot::ToJson() const {
  data::JsonValue::Object root;
  root.emplace_back("schema", data::JsonValue("urbane.metrics.v1"));

  data::JsonValue::Array counter_array;
  for (const CounterSnapshot& counter : counters) {
    data::JsonValue::Object entry;
    entry.emplace_back("name", data::JsonValue(counter.name));
    entry.emplace_back("value",
                       data::JsonValue(static_cast<double>(counter.value)));
    counter_array.emplace_back(std::move(entry));
  }
  root.emplace_back("counters", data::JsonValue(std::move(counter_array)));

  data::JsonValue::Array gauge_array;
  for (const GaugeSnapshot& gauge : gauges) {
    data::JsonValue::Object entry;
    entry.emplace_back("name", data::JsonValue(gauge.name));
    entry.emplace_back("value", data::JsonValue(gauge.value));
    gauge_array.emplace_back(std::move(entry));
  }
  root.emplace_back("gauges", data::JsonValue(std::move(gauge_array)));

  data::JsonValue::Array histogram_array;
  for (const HistogramSnapshot& histogram : histograms) {
    data::JsonValue::Object entry;
    entry.emplace_back("name", data::JsonValue(histogram.name));
    data::JsonValue::Array bounds;
    for (const double bound : histogram.bounds) {
      bounds.emplace_back(bound);
    }
    entry.emplace_back("bounds", data::JsonValue(std::move(bounds)));
    data::JsonValue::Array buckets;
    for (const std::uint64_t bucket : histogram.buckets) {
      buckets.emplace_back(static_cast<double>(bucket));
    }
    entry.emplace_back("buckets", data::JsonValue(std::move(buckets)));
    entry.emplace_back("count",
                       data::JsonValue(static_cast<double>(histogram.count)));
    entry.emplace_back("sum", data::JsonValue(histogram.sum));
    entry.emplace_back("min", data::JsonValue(histogram.min));
    entry.emplace_back("max", data::JsonValue(histogram.max));
    // Derived, not parsed back by FromJson (recomputable from the buckets);
    // exported so dashboards need not re-derive quantiles themselves.
    entry.emplace_back("p50", data::JsonValue(histogram.Quantile(0.50)));
    entry.emplace_back("p95", data::JsonValue(histogram.Quantile(0.95)));
    entry.emplace_back("p99", data::JsonValue(histogram.Quantile(0.99)));
    histogram_array.emplace_back(std::move(entry));
  }
  root.emplace_back("histograms", data::JsonValue(std::move(histogram_array)));

  return data::JsonValue(std::move(root));
}

namespace {

Status ExpectObject(const data::JsonValue& value, const char* what) {
  if (!value.is_object()) {
    return Status::InvalidArgument(std::string(what) + " is not an object");
  }
  return Status::OK();
}

StatusOr<std::string> RequireName(const data::JsonValue& entry,
                                  const char* what) {
  const data::JsonValue* name = entry.Find("name");
  if (name == nullptr || !name->is_string()) {
    return Status::InvalidArgument(std::string(what) +
                                   " entry is missing a string \"name\"");
  }
  return name->AsString();
}

double NumberOr(const data::JsonValue& entry, const std::string& key,
                double fallback) {
  const data::JsonValue* value = entry.Find(key);
  return (value != nullptr && value->is_number()) ? value->AsNumber()
                                                  : fallback;
}

}  // namespace

StatusOr<MetricsSnapshot> MetricsSnapshot::FromJson(
    const data::JsonValue& json) {
  URBANE_RETURN_IF_ERROR(ExpectObject(json, "metrics snapshot"));
  MetricsSnapshot snapshot;

  if (const data::JsonValue* counters = json.Find("counters");
      counters != nullptr) {
    if (!counters->is_array()) {
      return Status::InvalidArgument("\"counters\" is not an array");
    }
    for (const data::JsonValue& entry : counters->AsArray()) {
      URBANE_RETURN_IF_ERROR(ExpectObject(entry, "counter"));
      URBANE_ASSIGN_OR_RETURN(std::string name, RequireName(entry, "counter"));
      CounterSnapshot counter;
      counter.name = std::move(name);
      counter.value =
          static_cast<std::uint64_t>(NumberOr(entry, "value", 0.0));
      snapshot.counters.push_back(std::move(counter));
    }
  }

  if (const data::JsonValue* gauges = json.Find("gauges"); gauges != nullptr) {
    if (!gauges->is_array()) {
      return Status::InvalidArgument("\"gauges\" is not an array");
    }
    for (const data::JsonValue& entry : gauges->AsArray()) {
      URBANE_RETURN_IF_ERROR(ExpectObject(entry, "gauge"));
      URBANE_ASSIGN_OR_RETURN(std::string name, RequireName(entry, "gauge"));
      GaugeSnapshot gauge;
      gauge.name = std::move(name);
      gauge.value = NumberOr(entry, "value", 0.0);
      snapshot.gauges.push_back(std::move(gauge));
    }
  }

  if (const data::JsonValue* histograms = json.Find("histograms");
      histograms != nullptr) {
    if (!histograms->is_array()) {
      return Status::InvalidArgument("\"histograms\" is not an array");
    }
    for (const data::JsonValue& entry : histograms->AsArray()) {
      URBANE_RETURN_IF_ERROR(ExpectObject(entry, "histogram"));
      URBANE_ASSIGN_OR_RETURN(std::string name,
                              RequireName(entry, "histogram"));
      HistogramSnapshot histogram;
      histogram.name = std::move(name);
      if (const data::JsonValue* bounds = entry.Find("bounds");
          bounds != nullptr && bounds->is_array()) {
        for (const data::JsonValue& bound : bounds->AsArray()) {
          if (!bound.is_number()) {
            return Status::InvalidArgument("histogram bound is not a number");
          }
          histogram.bounds.push_back(bound.AsNumber());
        }
      }
      if (const data::JsonValue* buckets = entry.Find("buckets");
          buckets != nullptr && buckets->is_array()) {
        for (const data::JsonValue& bucket : buckets->AsArray()) {
          if (!bucket.is_number()) {
            return Status::InvalidArgument("histogram bucket is not a number");
          }
          histogram.buckets.push_back(
              static_cast<std::uint64_t>(bucket.AsNumber()));
        }
      }
      histogram.count =
          static_cast<std::uint64_t>(NumberOr(entry, "count", 0.0));
      histogram.sum = NumberOr(entry, "sum", 0.0);
      histogram.min = NumberOr(entry, "min", 0.0);
      histogram.max = NumberOr(entry, "max", 0.0);
      snapshot.histograms.push_back(std::move(histogram));
    }
  }

  return snapshot;
}

MetricsSnapshot MetricsSnapshot::Delta(const MetricsSnapshot& after,
                                       const MetricsSnapshot& before) {
  MetricsSnapshot delta;
  delta.counters.reserve(after.counters.size());
  for (const CounterSnapshot& counter : after.counters) {
    CounterSnapshot diff = counter;
    if (const CounterSnapshot* base = before.FindCounter(counter.name);
        base != nullptr && base->value <= counter.value) {
      diff.value = counter.value - base->value;
    }
    delta.counters.push_back(std::move(diff));
  }
  delta.gauges = after.gauges;
  delta.histograms.reserve(after.histograms.size());
  for (const HistogramSnapshot& histogram : after.histograms) {
    HistogramSnapshot diff = histogram;
    const HistogramSnapshot* base = before.FindHistogram(histogram.name);
    if (base != nullptr && base->bounds == histogram.bounds &&
        base->buckets.size() == histogram.buckets.size() &&
        base->count <= histogram.count) {
      for (std::size_t i = 0; i < diff.buckets.size(); ++i) {
        diff.buckets[i] = histogram.buckets[i] >= base->buckets[i]
                              ? histogram.buckets[i] - base->buckets[i]
                              : 0;
      }
      diff.count = histogram.count - base->count;
      diff.sum = histogram.sum - base->sum;
      // min/max are not recoverable from a diff; keep the `after` values.
    }
    delta.histograms.push_back(std::move(diff));
  }
  return delta;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

MetricsRegistry::Shard& MetricsRegistry::ShardFor(const std::string& name) {
  return shards_[std::hash<std::string>{}(name) % kShards];
}

const MetricsRegistry::Shard& MetricsRegistry::ShardFor(
    const std::string& name) const {
  return shards_[std::hash<std::string>{}(name) % kShards];
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& slot = shard.counters[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& slot = shard.gauges[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& slot = shard.histograms[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot;
}

HistogramSnapshot MetricsRegistry::SnapshotHistogram(
    const std::string& name) const {
  HistogramSnapshot copy;
  const Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.histograms.find(name);
  if (it == shard.histograms.end()) return copy;
  const Histogram& histogram = *it->second;
  copy.name = name;
  copy.bounds = histogram.bounds();
  copy.buckets.reserve(histogram.buckets_.size());
  for (const auto& bucket : histogram.buckets_) {
    copy.buckets.push_back(bucket.load(std::memory_order_relaxed));
  }
  copy.count = histogram.count_.load(std::memory_order_relaxed);
  copy.sum = histogram.sum_.load(std::memory_order_relaxed);
  const double min = histogram.min_.load(std::memory_order_relaxed);
  const double max = histogram.max_.load(std::memory_order_relaxed);
  copy.min = copy.count == 0 ? 0.0 : min;
  copy.max = copy.count == 0 ? 0.0 : max;
  return copy;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [name, counter] : shard.counters) {
      snapshot.counters.push_back(CounterSnapshot{name, counter->Value()});
    }
    for (const auto& [name, gauge] : shard.gauges) {
      snapshot.gauges.push_back(GaugeSnapshot{name, gauge->Value()});
    }
    for (const auto& [name, histogram] : shard.histograms) {
      HistogramSnapshot copy;
      copy.name = name;
      copy.bounds = histogram->bounds();
      copy.buckets.reserve(histogram->buckets_.size());
      for (const auto& bucket : histogram->buckets_) {
        copy.buckets.push_back(bucket.load(std::memory_order_relaxed));
      }
      copy.count = histogram->count_.load(std::memory_order_relaxed);
      copy.sum = histogram->sum_.load(std::memory_order_relaxed);
      const double min = histogram->min_.load(std::memory_order_relaxed);
      const double max = histogram->max_.load(std::memory_order_relaxed);
      copy.min = copy.count == 0 ? 0.0 : min;
      copy.max = copy.count == 0 ? 0.0 : max;
      snapshot.histograms.push_back(std::move(copy));
    }
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snapshot.counters.begin(), snapshot.counters.end(), by_name);
  std::sort(snapshot.gauges.begin(), snapshot.gauges.end(), by_name);
  std::sort(snapshot.histograms.begin(), snapshot.histograms.end(), by_name);
  return snapshot;
}

void MetricsRegistry::Reset() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto& [name, counter] : shard.counters) {
      counter->Reset();
    }
    for (auto& [name, gauge] : shard.gauges) {
      gauge->Reset();
    }
    for (auto& [name, histogram] : shard.histograms) {
      histogram->Reset();
    }
  }
}

}  // namespace urbane::obs
