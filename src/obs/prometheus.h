#ifndef URBANE_OBS_PROMETHEUS_H_
#define URBANE_OBS_PROMETHEUS_H_

// Prometheus text exposition format (version 0.0.4) rendering for a
// MetricsSnapshot. Metric names are prefixed "urbane_" and sanitised to
// [a-zA-Z0-9_:]; histograms render the conventional cumulative
// `_bucket{le="..."}` series plus `_sum` and `_count`.

#include <string>

#include "obs/metrics.h"

namespace urbane::obs {

// "cache.hits" -> "urbane_cache_hits".
std::string PrometheusMetricName(const std::string& name);

std::string ToPrometheusText(const MetricsSnapshot& snapshot);

}  // namespace urbane::obs

#endif  // URBANE_OBS_PROMETHEUS_H_
