#include "obs/exporter.h"

#include <chrono>
#include <fstream>
#include <utility>

#include "net/http.h"
#include "net/socket.h"
#include "obs/process_metrics.h"
#include "obs/event_journal.h"
#include "obs/prometheus.h"
#include "obs/slow_query_log.h"

namespace urbane::obs {

namespace {

constexpr int kPollSliceMs = 50;

// Scrape requests are tiny GETs; anything bigger is not a scraper.
constexpr std::size_t kMaxRequestBytes = 4096;

std::string HttpResponseString(int code, const char* reason,
                               const std::string& content_type,
                               const std::string& body) {
  net::HttpResponse response;
  response.version = "HTTP/1.0";
  response.status = code;
  response.reason = reason;
  response.content_type = content_type;
  response.body = body;
  return net::FormatHttpResponse(response);
}

}  // namespace

bool TelemetryEndpoint(const std::string& path, std::string* content_type,
                       std::string* body) {
  // Ignore any query string.
  const std::string route = path.substr(0, path.find('?'));
  if (route == "/metrics") {
    UpdateProcessGauges(MetricsRegistry::Global());
    // Journal/slowlog health is sampled at scrape time rather than pushed
    // on every event: dropped events are exactly the moments when pushing
    // more telemetry is the wrong idea.
    MetricsRegistry::Global()
        .GetGauge("journal.dropped_total")
        .Set(static_cast<double>(EventJournal::Global().dropped()));
    MetricsRegistry::Global()
        .GetGauge("slowlog.entries")
        .Set(static_cast<double>(SlowQueryLog::Global().Records().size()));
    const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
    *content_type = "text/plain; version=0.0.4";
    *body = ToPrometheusText(snapshot);
    return true;
  }
  if (route == "/slowlog") {
    *content_type = "application/json";
    *body = SlowQueryLog::Global().ToJson().Dump(2) + "\n";
    return true;
  }
  if (route == "/healthz") {
    *content_type = "text/plain";
    *body = "ok\n";
    return true;
  }
  return false;
}

TelemetryExporter::TelemetryExporter(TelemetryExporterOptions options)
    : options_(std::move(options)) {}

TelemetryExporter::~TelemetryExporter() { Stop(); }

Status TelemetryExporter::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("exporter already running");
  }
  if (options_.listen) {
    if (!net::SocketsAvailable()) {
      return Status::NotImplemented("sockets unavailable on this platform");
    }
    URBANE_ASSIGN_OR_RETURN(listen_fd_,
                            net::ListenLoopback(options_.port, 8, &port_));
  }

  stop_.store(false, std::memory_order_release);
  last_flushed_ = MetricsSnapshot{};
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void TelemetryExporter::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  net::CloseSocket(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
  Flush();  // final flush so short-lived runs still leave a sink line
}

void TelemetryExporter::Run() {
  using Clock = std::chrono::steady_clock;
  const auto flush_period = std::chrono::duration<double>(
      options_.flush_period_seconds > 0.0 ? options_.flush_period_seconds
                                          : 1.0);
  Flush();  // initial snapshot establishes the delta baseline
  auto next_flush = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                       flush_period);
  while (!stop_.load(std::memory_order_acquire)) {
    if (listen_fd_ >= 0) {
      if (net::WaitReadable(listen_fd_, kPollSliceMs)) {
        const int client = net::AcceptConnection(listen_fd_);
        if (client >= 0) ServeOne(client);
      }
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(kPollSliceMs));
    }
    if (Clock::now() >= next_flush) {
      Flush();
      next_flush = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                      flush_period);
    }
  }
}

void TelemetryExporter::ServeOne(int client_fd) {
  // Bound how long a slow or half-open client can hold the loop: both the
  // read of its request and the write of our response time out.
  const int timeout_ms =
      options_.client_timeout_ms > 0 ? options_.client_timeout_ms : 250;
  net::SetSocketTimeouts(client_fd, timeout_ms, timeout_ms);

  net::HttpLimits limits;
  limits.max_header_bytes = kMaxRequestBytes;
  limits.max_body_bytes = 0;  // scrape endpoints take no request body
  StatusOr<net::HttpRequest> request = net::ReadHttpRequest(client_fd, limits);
  if (request.ok()) {
    net::SendAll(client_fd,
                 HandleRequest(request->method, request->target));
  } else if (request.status().code() == StatusCode::kInvalidArgument) {
    net::SendAll(client_fd,
                 HttpResponseString(400, "Bad Request", "text/plain",
                                    request.status().message() + "\n"));
  }
  // IoError (half-open peer, timeout): nothing useful to send.
  net::CloseSocket(client_fd);
}

std::string TelemetryExporter::HandleRequest(const std::string& method,
                                             const std::string& path) const {
  if (method != "GET") {
    return HttpResponseString(405, "Method Not Allowed", "text/plain",
                              "method not allowed\n");
  }
  std::string content_type;
  std::string body;
  if (TelemetryEndpoint(path, &content_type, &body)) {
    return HttpResponseString(200, "OK", content_type, body);
  }
  return HttpResponseString(404, "Not Found", "text/plain", "not found\n");
}

void TelemetryExporter::Flush() {
  if (options_.sink_path.empty()) return;
  UpdateProcessGauges(MetricsRegistry::Global());
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  const MetricsSnapshot delta = MetricsSnapshot::Delta(snapshot, last_flushed_);
  last_flushed_ = snapshot;

  data::JsonValue::Object line;
  line.emplace_back("schema", data::JsonValue("urbane.telemetry.v1"));
  line.emplace_back("uptime_seconds",
                    data::JsonValue(ProcessUptimeSeconds()));
  line.emplace_back("delta", delta.ToJson());
  std::ofstream out(options_.sink_path, std::ios::app);
  if (!out) return;
  out << data::JsonValue(std::move(line)).Dump(-1) << "\n";
  flushes_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace urbane::obs
