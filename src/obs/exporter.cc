#include "obs/exporter.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "obs/process_metrics.h"
#include "obs/prometheus.h"
#include "obs/slow_query_log.h"

#ifdef __unix__
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#define URBANE_HAVE_SOCKETS 1
#endif

namespace urbane::obs {

namespace {

constexpr int kPollSliceMs = 50;
constexpr std::size_t kMaxRequestBytes = 4096;

#ifdef URBANE_HAVE_SOCKETS
#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

// Blocking send of the whole buffer; swallows errors (client gone).
void SendAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<std::size_t>(n);
  }
}
#endif  // URBANE_HAVE_SOCKETS

std::string HttpResponse(int code, const char* reason,
                         const std::string& content_type,
                         const std::string& body) {
  std::ostringstream out;
  out << "HTTP/1.0 " << code << " " << reason << "\r\n"
      << "Content-Type: " << content_type << "\r\n"
      << "Content-Length: " << body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << body;
  return out.str();
}

}  // namespace

TelemetryExporter::TelemetryExporter(TelemetryExporterOptions options)
    : options_(std::move(options)) {}

TelemetryExporter::~TelemetryExporter() { Stop(); }

Status TelemetryExporter::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("exporter already running");
  }
#ifndef URBANE_HAVE_SOCKETS
  if (options_.listen) {
    return Status::NotImplemented("sockets unavailable on this platform");
  }
#else
  if (options_.listen) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return Status::IoError(std::string("socket: ") + std::strerror(errno));
    }
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options_.port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      const std::string err = std::strerror(errno);
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status::IoError("bind: " + err);
    }
    if (::listen(listen_fd_, 8) != 0) {
      const std::string err = std::strerror(errno);
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status::IoError("listen: " + err);
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
        0) {
      port_ = ntohs(addr.sin_port);
    }
    // Non-blocking accept so the poll loop never wedges on a vanished
    // connection between poll() and accept().
    const int flags = ::fcntl(listen_fd_, F_GETFL, 0);
    if (flags >= 0) ::fcntl(listen_fd_, F_SETFL, flags | O_NONBLOCK);
  }
#endif  // URBANE_HAVE_SOCKETS

  stop_.store(false, std::memory_order_release);
  last_flushed_ = MetricsSnapshot{};
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void TelemetryExporter::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
#ifdef URBANE_HAVE_SOCKETS
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
#endif
  port_ = 0;
  Flush();  // final flush so short-lived runs still leave a sink line
}

void TelemetryExporter::Run() {
  using Clock = std::chrono::steady_clock;
  const auto flush_period = std::chrono::duration<double>(
      options_.flush_period_seconds > 0.0 ? options_.flush_period_seconds
                                          : 1.0);
  Flush();  // initial snapshot establishes the delta baseline
  auto next_flush = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                       flush_period);
  while (!stop_.load(std::memory_order_acquire)) {
#ifdef URBANE_HAVE_SOCKETS
    if (listen_fd_ >= 0) {
      pollfd pfd{};
      pfd.fd = listen_fd_;
      pfd.events = POLLIN;
      const int ready = ::poll(&pfd, 1, kPollSliceMs);
      if (ready > 0 && (pfd.revents & POLLIN) != 0) {
        const int client = ::accept(listen_fd_, nullptr, nullptr);
        if (client >= 0) ServeOne(client);
      }
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(kPollSliceMs));
    }
#else
    std::this_thread::sleep_for(std::chrono::milliseconds(kPollSliceMs));
#endif
    if (Clock::now() >= next_flush) {
      Flush();
      next_flush = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                      flush_period);
    }
  }
}

#ifdef URBANE_HAVE_SOCKETS
void TelemetryExporter::ServeOne(int client_fd) {
  // Bound how long a slow client can hold the loop hostage.
  timeval timeout{};
  timeout.tv_sec = 1;
  ::setsockopt(client_fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  std::string request;
  char buffer[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    const ssize_t n = ::recv(client_fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    request.append(buffer, static_cast<std::size_t>(n));
    // GET requests have no body; the request line alone is enough.
    if (request.find('\n') != std::string::npos) break;
  }

  std::string method, path;
  std::istringstream line(request.substr(0, request.find('\n')));
  line >> method >> path;
  SendAll(client_fd, HandleRequest(method, path));
  ::close(client_fd);
}
#else
void TelemetryExporter::ServeOne(int) {}
#endif  // URBANE_HAVE_SOCKETS

std::string TelemetryExporter::HandleRequest(const std::string& method,
                                             const std::string& path) const {
  if (method != "GET") {
    return HttpResponse(405, "Method Not Allowed", "text/plain",
                        "method not allowed\n");
  }
  // Ignore any query string.
  const std::string route = path.substr(0, path.find('?'));
  if (route == "/metrics") {
    UpdateProcessGauges(MetricsRegistry::Global());
    const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
    return HttpResponse(200, "OK", "text/plain; version=0.0.4",
                        ToPrometheusText(snapshot));
  }
  if (route == "/slowlog") {
    return HttpResponse(200, "OK", "application/json",
                        SlowQueryLog::Global().ToJson().Dump(2) + "\n");
  }
  if (route == "/healthz") {
    return HttpResponse(200, "OK", "text/plain", "ok\n");
  }
  return HttpResponse(404, "Not Found", "text/plain", "not found\n");
}

void TelemetryExporter::Flush() {
  if (options_.sink_path.empty()) return;
  UpdateProcessGauges(MetricsRegistry::Global());
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  const MetricsSnapshot delta = MetricsSnapshot::Delta(snapshot, last_flushed_);
  last_flushed_ = snapshot;

  data::JsonValue::Object line;
  line.emplace_back("schema", data::JsonValue("urbane.telemetry.v1"));
  line.emplace_back("uptime_seconds",
                    data::JsonValue(ProcessUptimeSeconds()));
  line.emplace_back("delta", delta.ToJson());
  std::ofstream out(options_.sink_path, std::ios::app);
  if (!out) return;
  out << data::JsonValue(std::move(line)).Dump(-1) << "\n";
  flushes_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace urbane::obs
