#include "obs/profile.h"

#include <atomic>
#include <chrono>
#include <ctime>
#include <utility>

#include "util/string_util.h"

namespace urbane::obs {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

void AppendHex64(std::string* out, std::uint64_t value, int digits) {
  for (int shift = (digits - 1) * 4; shift >= 0; shift -= 4) {
    out->push_back(kHexDigits[(value >> shift) & 0xF]);
  }
}

/// Parses exactly `digits` hex chars of `text` at `pos`; false on any
/// non-hex byte. Accepts both cases (W3C mandates lowercase on emit, but
/// tolerating uppercase on ingest costs nothing).
bool ParseHex(const std::string& text, std::size_t pos, int digits,
              std::uint64_t* out) {
  std::uint64_t value = 0;
  for (int i = 0; i < digits; ++i) {
    const char c = text[pos + static_cast<std::size_t>(i)];
    std::uint64_t nibble;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      nibble = static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      return false;
    }
    value = (value << 4) | nibble;
  }
  *out = value;
  return true;
}

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

data::JsonValue U64(std::uint64_t value) {
  return data::JsonValue(static_cast<double>(value));
}

}  // namespace

std::string TraceContext::TraceIdHex() const {
  std::string out;
  out.reserve(32);
  AppendHex64(&out, trace_hi, 16);
  AppendHex64(&out, trace_lo, 16);
  return out;
}

std::string TraceContext::ToTraceparent() const {
  std::string out;
  out.reserve(55);
  out += "00-";
  AppendHex64(&out, trace_hi, 16);
  AppendHex64(&out, trace_lo, 16);
  out.push_back('-');
  AppendHex64(&out, parent_id, 16);
  out.push_back('-');
  AppendHex64(&out, flags, 2);
  return out;
}

bool ParseTraceparent(const std::string& header, TraceContext* out) {
  // version(2) '-' trace-id(32) '-' parent-id(16) '-' flags(2) == 55 bytes.
  if (header.size() != 55) return false;
  if (header[2] != '-' || header[35] != '-' || header[52] != '-') {
    return false;
  }
  std::uint64_t version = 0;
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  std::uint64_t parent = 0;
  std::uint64_t flags = 0;
  if (!ParseHex(header, 0, 2, &version) ||
      !ParseHex(header, 3, 16, &trace_hi) ||
      !ParseHex(header, 19, 16, &trace_lo) ||
      !ParseHex(header, 36, 16, &parent) ||
      !ParseHex(header, 53, 2, &flags)) {
    return false;
  }
  // 0xff is forbidden; all-zero trace or parent ids are invalid per spec.
  if (version == 0xFF) return false;
  if ((trace_hi | trace_lo) == 0 || parent == 0) return false;
  out->trace_hi = trace_hi;
  out->trace_lo = trace_lo;
  out->parent_id = parent;
  out->flags = static_cast<std::uint8_t>(flags);
  return true;
}

TraceContext GenerateTraceContext() {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t now = static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  TraceContext context;
  context.trace_hi = SplitMix64(now ^ (n << 32));
  context.trace_lo = SplitMix64(n + 0x632BE59BD9B4E019ULL);
  if (!context.valid()) context.trace_lo = 1;  // all-zero ids are invalid
  context.parent_id = SplitMix64(context.trace_lo ^ now);
  if (context.parent_id == 0) context.parent_id = 1;
  context.flags = 0x01;
  return context;
}

double ThreadCpuSeconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
#else
  return 0.0;
#endif
}

data::JsonValue ProfilePassCosts::ToJson() const {
  data::JsonValue::Object doc;
  doc.emplace_back("points_scanned", U64(points_scanned));
  doc.emplace_back("points_bulk", U64(points_bulk));
  doc.emplace_back("pip_tests", U64(pip_tests));
  doc.emplace_back("pixels_touched", U64(pixels_touched));
  doc.emplace_back("boundary_pixels", U64(boundary_pixels));
  doc.emplace_back("tiles_visited", U64(tiles_visited));
  doc.emplace_back("simd_fragments", U64(simd_fragments));
  doc.emplace_back("filter_seconds", data::JsonValue(filter_seconds));
  doc.emplace_back("splat_seconds", data::JsonValue(splat_seconds));
  doc.emplace_back("sweep_seconds", data::JsonValue(sweep_seconds));
  doc.emplace_back("reduce_seconds", data::JsonValue(reduce_seconds));
  doc.emplace_back("refine_seconds", data::JsonValue(refine_seconds));
  doc.emplace_back("query_seconds", data::JsonValue(query_seconds));
  return data::JsonValue(std::move(doc));
}

data::JsonValue QueryProfile::ToJson() const {
  data::JsonValue::Object doc;
  doc.emplace_back("schema", data::JsonValue("urbane.profile.v1"));
  doc.emplace_back("trace_id", data::JsonValue(context.TraceIdHex()));
  doc.emplace_back("traceparent", data::JsonValue(context.ToTraceparent()));
  doc.emplace_back("method", data::JsonValue(method));
  doc.emplace_back("cache", data::JsonValue(cache));

  data::JsonValue::Object planner;
  planner.emplace_back("choice", data::JsonValue(planner_choice));
  planner.emplace_back("explanation", data::JsonValue(planner_explanation));
  doc.emplace_back("planner", data::JsonValue(std::move(planner)));

  data::JsonValue::Object request;
  request.emplace_back("queue_wait_seconds",
                       data::JsonValue(queue_wait_seconds));
  request.emplace_back("wall_seconds", data::JsonValue(wall_seconds));
  request.emplace_back("cpu_seconds", data::JsonValue(cpu_seconds));
  doc.emplace_back("request", data::JsonValue(std::move(request)));

  data::JsonValue::Object store;
  store.emplace_back("blocks_total", U64(blocks_total));
  store.emplace_back("blocks_pruned", U64(blocks_pruned));
  store.emplace_back("rows_pruned", U64(rows_pruned));
  store.emplace_back("blocks_scanned", U64(store_blocks_scanned));
  store.emplace_back("blocks_read", U64(store_blocks_read));
  store.emplace_back("cache_hits", U64(store_cache_hits));
  store.emplace_back("bytes_read", U64(store_bytes_read));
  doc.emplace_back("store", data::JsonValue(std::move(store)));

  data::JsonValue::Object executor;
  executor.emplace_back("threads_used", U64(threads_used));
  executor.emplace_back("totals", totals.ToJson());
  doc.emplace_back("executor", data::JsonValue(std::move(executor)));

  data::JsonValue::Object shard_section;
  shard_section.emplace_back("count", U64(shards.size()));
  shard_section.emplace_back("scatter_seconds",
                             data::JsonValue(scatter_seconds));
  shard_section.emplace_back("merge_seconds", data::JsonValue(merge_seconds));
  data::JsonValue::Array shard_rows;
  shard_rows.reserve(shards.size());
  for (const ShardProfileEntry& shard : shards) {
    data::JsonValue::Object row;
    row.emplace_back("index", U64(shard.index));
    row.emplace_back("rows_begin", U64(shard.rows_begin));
    row.emplace_back("rows_end", U64(shard.rows_end));
    row.emplace_back("candidate_rows", U64(shard.candidate_rows));
    row.emplace_back("wall_seconds", data::JsonValue(shard.wall_seconds));
    row.emplace_back("cpu_seconds", data::JsonValue(shard.cpu_seconds));
    row.emplace_back("costs", shard.costs.ToJson());
    shard_rows.emplace_back(std::move(row));
  }
  shard_section.emplace_back("shards", data::JsonValue(std::move(shard_rows)));
  doc.emplace_back("sharding", data::JsonValue(std::move(shard_section)));
  return data::JsonValue(std::move(doc));
}

std::string QueryProfile::ToTable() const {
  std::string out;
  out += "trace    " + context.TraceIdHex() + "\n";
  out += StringPrintf("query    method=%s cache=%s wall=%.3fms cpu=%.3fms",
                      method.c_str(), cache.c_str(), wall_seconds * 1e3,
                      cpu_seconds * 1e3);
  if (queue_wait_seconds > 0.0) {
    out += StringPrintf(" queue_wait=%.3fms", queue_wait_seconds * 1e3);
  }
  out += "\n";
  if (!planner_choice.empty()) {
    out += "planner  " + planner_choice;
    if (!planner_explanation.empty()) out += ": " + planner_explanation;
    out += "\n";
  }
  if (blocks_total > 0 || store_blocks_scanned > 0) {
    out += StringPrintf(
        "store    blocks=%llu pruned=%llu rows_pruned=%llu scanned=%llu "
        "read=%llu cache_hits=%llu bytes=%llu\n",
        static_cast<unsigned long long>(blocks_total),
        static_cast<unsigned long long>(blocks_pruned),
        static_cast<unsigned long long>(rows_pruned),
        static_cast<unsigned long long>(store_blocks_scanned),
        static_cast<unsigned long long>(store_blocks_read),
        static_cast<unsigned long long>(store_cache_hits),
        static_cast<unsigned long long>(store_bytes_read));
  }
  out += StringPrintf(
      "passes   filter=%.3fms splat=%.3fms sweep=%.3fms reduce=%.3fms "
      "refine=%.3fms\n",
      totals.filter_seconds * 1e3, totals.splat_seconds * 1e3,
      totals.sweep_seconds * 1e3, totals.reduce_seconds * 1e3,
      totals.refine_seconds * 1e3);
  out += StringPrintf(
      "counters points=%llu bulk=%llu pip=%llu pixels=%llu boundary=%llu "
      "tiles=%llu simd=%llu threads=%llu\n",
      static_cast<unsigned long long>(totals.points_scanned),
      static_cast<unsigned long long>(totals.points_bulk),
      static_cast<unsigned long long>(totals.pip_tests),
      static_cast<unsigned long long>(totals.pixels_touched),
      static_cast<unsigned long long>(totals.boundary_pixels),
      static_cast<unsigned long long>(totals.tiles_visited),
      static_cast<unsigned long long>(totals.simd_fragments),
      static_cast<unsigned long long>(threads_used));
  if (!shards.empty()) {
    out += StringPrintf("shards   count=%llu scatter=%.3fms merge=%.3fms\n",
                        static_cast<unsigned long long>(shards.size()),
                        scatter_seconds * 1e3, merge_seconds * 1e3);
    out += "  shard rows                 candidates   wall       cpu        "
           "points     pip\n";
    for (const ShardProfileEntry& shard : shards) {
      out += StringPrintf(
          "  %-5llu [%llu,%llu) %-12llu %-10.3f %-10.3f %-10llu %llu\n",
          static_cast<unsigned long long>(shard.index),
          static_cast<unsigned long long>(shard.rows_begin),
          static_cast<unsigned long long>(shard.rows_end),
          static_cast<unsigned long long>(shard.candidate_rows),
          shard.wall_seconds * 1e3, shard.cpu_seconds * 1e3,
          static_cast<unsigned long long>(shard.costs.points_scanned),
          static_cast<unsigned long long>(shard.costs.pip_tests));
    }
  }
  return out;
}

void CanonicalizeProfileJson(data::JsonValue* doc) {
  if (doc == nullptr) return;
  if (doc->is_object()) {
    for (auto& [key, value] : doc->AsObject()) {
      if (value.is_number() && key.size() > 8 &&
          key.compare(key.size() - 8, 8, "_seconds") == 0) {
        value = data::JsonValue(0.0);
      } else {
        CanonicalizeProfileJson(&value);
      }
    }
  } else if (doc->is_array()) {
    for (data::JsonValue& element : doc->AsArray()) {
      CanonicalizeProfileJson(&element);
    }
  }
}

ProfileStore::ProfileStore(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

ProfileStore& ProfileStore::Global() {
  static ProfileStore* store = new ProfileStore();  // never destroyed
  return *store;
}

void ProfileStore::Insert(const QueryProfile& profile) {
  const std::string key = profile.context.TraceIdHex();
  Entry entry;
  entry.doc = profile.ToJson();
  entry.method = profile.method;
  entry.cache = profile.cache;
  entry.wall_seconds = profile.wall_seconds;
  entry.shards = profile.shards.size();

  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.find(key) == entries_.end()) {
    order_.push_back(key);
  } else {
    // Replacement refreshes eviction order: drop the stale position.
    for (auto it = order_.begin(); it != order_.end(); ++it) {
      if (*it == key) {
        order_.erase(it);
        break;
      }
    }
    order_.push_back(key);
  }
  entries_[key] = std::move(entry);
  while (order_.size() > capacity_) {
    entries_.erase(order_.front());
    order_.pop_front();
  }
}

bool ProfileStore::Lookup(const std::string& trace_id,
                          data::JsonValue* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(trace_id);
  if (it == entries_.end()) return false;
  if (out != nullptr) *out = it->second.doc;
  return true;
}

data::JsonValue ProfileStore::Recent(std::size_t limit) const {
  data::JsonValue::Array profiles;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::size_t n = order_.size();
    const std::size_t take = limit < n ? limit : n;
    profiles.reserve(take);
    // Newest first.
    for (std::size_t k = 0; k < take; ++k) {
      const std::string& key = order_[n - 1 - k];
      const auto it = entries_.find(key);
      if (it == entries_.end()) continue;
      data::JsonValue::Object row;
      row.emplace_back("trace_id", data::JsonValue(key));
      row.emplace_back("method", data::JsonValue(it->second.method));
      row.emplace_back("cache", data::JsonValue(it->second.cache));
      row.emplace_back("wall_seconds",
                       data::JsonValue(it->second.wall_seconds));
      row.emplace_back("shards", U64(it->second.shards));
      profiles.emplace_back(std::move(row));
    }
  }
  data::JsonValue::Object doc;
  doc.emplace_back("schema", data::JsonValue("urbane.profiles.v1"));
  doc.emplace_back("profiles", data::JsonValue(std::move(profiles)));
  return data::JsonValue(std::move(doc));
}

std::size_t ProfileStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void ProfileStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  order_.clear();
}

}  // namespace urbane::obs
