#ifndef URBANE_OBS_EXPORTER_H_
#define URBANE_OBS_EXPORTER_H_

// Background telemetry exporter.
//
// One thread owns (a) a periodic flush that snapshots the metrics registry
// and appends a JSONL delta line ("urbane.telemetry.v1") to a sink file,
// and (b) a minimal single-threaded, poll-based HTTP listener serving
//   GET /metrics  — Prometheus text exposition format (0.0.4)
//   GET /slowlog  — the slow-query flight recorder as urbane.slowlog.v1
//   GET /healthz  — "ok"
// Requests are handled synchronously between 50 ms poll slices. Every
// connection carries a per-socket recv/send timeout
// (client_timeout_ms), so a slow or half-open client can delay other
// scrapers by at most one timeout slice — never stall the exporter thread
// indefinitely. Socket plumbing lives in src/net (shared with the query
// server). No third-party dependencies — raw POSIX sockets.

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "util/status.h"

namespace urbane::obs {

/// Routes one telemetry path to its payload, shared by the exporter and
/// the query server (which mounts /metrics, /slowlog, /healthz on its own
/// listener so one port serves traffic and scrape). Returns false for an
/// unknown path; otherwise fills content type and body.
bool TelemetryEndpoint(const std::string& path, std::string* content_type,
                       std::string* body);

struct TelemetryExporterOptions {
  // TCP listener; port 0 picks an ephemeral port (see port()). Set
  // listen = false for a sink-only exporter with no socket.
  bool listen = true;
  std::uint16_t port = 0;
  // JSONL delta sink; empty disables file output.
  std::string sink_path;
  // Period between registry snapshots / sink flushes.
  double flush_period_seconds = 1.0;
  // Per-connection socket recv/send timeout: the longest a slow or
  // half-open client can hold the (single-threaded) serving loop.
  int client_timeout_ms = 250;
};

class TelemetryExporter {
 public:
  explicit TelemetryExporter(TelemetryExporterOptions options = {});
  ~TelemetryExporter();  // calls Stop()

  TelemetryExporter(const TelemetryExporter&) = delete;
  TelemetryExporter& operator=(const TelemetryExporter&) = delete;

  // Binds the listener (when enabled) and starts the background thread.
  // Fails on socket errors or double Start.
  Status Start();
  // Stops the thread, closes the socket, and writes one final sink flush.
  // Idempotent; also invoked by the destructor.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // The bound port (resolves port 0 to the actual ephemeral port); 0 when
  // not listening.
  std::uint16_t port() const { return port_; }
  const TelemetryExporterOptions& options() const { return options_; }

  // Handles one request path and returns the full HTTP response; exposed
  // for tests. `path` is e.g. "/metrics".
  std::string HandleRequest(const std::string& method,
                            const std::string& path) const;

  // Number of sink flushes written so far.
  std::uint64_t flushes() const {
    return flushes_.load(std::memory_order_relaxed);
  }

 private:
  void Run();
  void ServeOne(int client_fd);
  void Flush();

  TelemetryExporterOptions options_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::thread thread_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<std::uint64_t> flushes_{0};
  MetricsSnapshot last_flushed_;  // thread-private to Run()/final Stop flush
};

}  // namespace urbane::obs

#endif  // URBANE_OBS_EXPORTER_H_
