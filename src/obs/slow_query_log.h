#ifndef URBANE_OBS_SLOW_QUERY_LOG_H_
#define URBANE_OBS_SLOW_QUERY_LOG_H_

// Slow-query flight recorder.
//
// Globally enabling per-query tracing is too expensive for production, and
// switching it on *after* a slow query happened is too late. The flight
// recorder arms a cheap per-query trace instead: the facade attaches a
// trace to every query while armed, and after the query finishes asks
// `MaybeRecord` whether the wall time crossed the threshold. Only then is
// the full trace (with per-pass spans), the query fingerprint, the query
// text, and the plan committed to a bounded ring of retained records —
// tail diagnosis at the cost of one trace allocation per query.
//
// The threshold is either absolute (`threshold_seconds`) or relative: with
// `p99_multiplier > 0` the threshold is `multiplier * p99` of a registry
// latency histogram, re-read at most every 250 ms so the p99 computation
// stays off the per-query path.

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "data/json.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace urbane::obs {

struct SlowQueryRecord {
  std::uint64_t sequence = 0;       // monotonically increasing capture index
  std::uint64_t fingerprint = 0;    // query fingerprint (cache key)
  std::string method;               // executor name ("scan", "raster", ...)
  std::string query;                // AggregationQuery::ToString()
  std::string plan;                 // planner explanation, if any
  std::string trace_id;             // W3C trace id (hex); "" when none
  double wall_seconds = 0.0;
  double threshold_seconds = 0.0;   // the threshold in force at capture
  double timestamp_seconds = 0.0;   // process uptime at capture
  data::JsonValue trace;            // urbane.trace.v1 span tree
  data::JsonValue profile;          // urbane.profile.v1 document (or null)
};

struct SlowQueryLogOptions {
  // Absolute threshold. Used as-is when p99_multiplier == 0.
  double threshold_seconds = 0.1;
  // When > 0: threshold = p99_multiplier * p99(histogram_name), floored at
  // threshold_floor_seconds so an idle histogram doesn't capture everything.
  double p99_multiplier = 0.0;
  std::string histogram_name = "query.wall_seconds";
  double threshold_floor_seconds = 0.001;
  // Retained records; oldest evicted first.
  std::size_t capacity = 64;
};

class SlowQueryLog {
 public:
  explicit SlowQueryLog(SlowQueryLogOptions options = {});

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  // The process-wide recorder the facade consults.
  static SlowQueryLog& Global();

  // Armed == the facade should attach a lightweight trace to every query.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }
  void Arm() { armed_.store(true, std::memory_order_relaxed); }
  void Disarm() { armed_.store(false, std::memory_order_relaxed); }

  void SetOptions(const SlowQueryLogOptions& options);
  SlowQueryLogOptions options() const;

  // The threshold currently in force (cached; see RefreshThreshold).
  double ThresholdSeconds() const;
  // Recomputes the p99-derived threshold immediately (the per-query path
  // refreshes it lazily at most every 250 ms). Reads `registry` — pass the
  // registry whose histogram the options name; defaults to the global one.
  void RefreshThreshold(const MetricsRegistry* registry = nullptr);

  // Commits a record iff wall_seconds >= ThresholdSeconds(). The trace and
  // profile may be null (the record is kept without spans / breakdown); a
  // non-null profile embeds the full urbane.profile.v1 document and its
  // trace id in the record. Returns true on capture.
  bool MaybeRecord(std::uint64_t fingerprint, const std::string& method,
                   const std::string& query, const std::string& plan,
                   double wall_seconds, const QueryTrace* trace,
                   const QueryProfile* profile = nullptr);

  // Newest-last copy of the retained records.
  std::vector<SlowQueryRecord> Records() const;
  // Total captures since construction/Clear (>= Records().size()).
  std::uint64_t captured() const {
    return captured_.load(std::memory_order_relaxed);
  }
  void Clear();

  // Schema "urbane.slowlog.v1": {schema, armed, threshold_seconds,
  // captured, records: [...]} — see DESIGN.md "Observability".
  data::JsonValue ToJson() const;

 private:
  std::atomic<bool> armed_{false};

  mutable std::mutex mu_;
  SlowQueryLogOptions options_;
  std::deque<SlowQueryRecord> records_;
  std::atomic<std::uint64_t> captured_{0};
  std::uint64_t next_sequence_ = 0;

  // Cached threshold, refreshed from the histogram at most every 250 ms.
  mutable std::mutex threshold_mu_;
  mutable double cached_threshold_ = 0.0;
  mutable double cached_at_seconds_ = -1.0;
};

}  // namespace urbane::obs

#endif  // URBANE_OBS_SLOW_QUERY_LOG_H_
