#include "obs/obs.h"

namespace urbane::obs {

#ifndef URBANE_OBS_DISABLED

namespace internal {
std::atomic<bool> g_metrics_enabled{false};
std::atomic<bool> g_tracing_enabled{false};
std::atomic<bool> g_journal_enabled{false};
}  // namespace internal

void SetMetricsEnabled(bool enabled) {
  internal::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

void SetTracingEnabled(bool enabled) {
  internal::g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

void SetJournalEnabled(bool enabled) {
  internal::g_journal_enabled.store(enabled, std::memory_order_relaxed);
}

#endif  // URBANE_OBS_DISABLED

}  // namespace urbane::obs
