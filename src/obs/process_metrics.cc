#include "obs/process_metrics.h"

#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "obs/metrics.h"

#ifdef __linux__
#include <unistd.h>
#endif

namespace urbane::obs {

namespace {

std::chrono::steady_clock::time_point ProcessStart() {
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return start;
}

// Ensures the uptime origin is stamped at static-init time, not on the
// first scrape.
const bool g_start_stamped = (ProcessStart(), true);

}  // namespace

double ProcessUptimeSeconds() {
  (void)g_start_stamped;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       ProcessStart())
      .count();
}

std::uint64_t ProcessResidentBytes() {
#ifdef __linux__
  std::ifstream statm("/proc/self/statm");
  std::uint64_t vm_pages = 0, rss_pages = 0;
  if (statm >> vm_pages >> rss_pages) {
    const long page = sysconf(_SC_PAGESIZE);
    if (page > 0) return rss_pages * static_cast<std::uint64_t>(page);
  }
#endif
  return 0;
}

std::uint64_t ProcessVirtualBytes() {
#ifdef __linux__
  std::ifstream statm("/proc/self/statm");
  std::uint64_t vm_pages = 0;
  if (statm >> vm_pages) {
    const long page = sysconf(_SC_PAGESIZE);
    if (page > 0) return vm_pages * static_cast<std::uint64_t>(page);
  }
#endif
  return 0;
}

std::uint64_t ProcessThreadCount() {
#ifdef __linux__
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      std::istringstream fields(line.substr(8));
      std::uint64_t threads = 0;
      if (fields >> threads) return threads;
      break;
    }
  }
#endif
  return 0;
}

void UpdateProcessGauges(MetricsRegistry& registry) {
  registry.GetGauge("process.uptime_seconds").Set(ProcessUptimeSeconds());
  if (const std::uint64_t rss = ProcessResidentBytes(); rss > 0) {
    registry.GetGauge("process.resident_bytes")
        .Set(static_cast<double>(rss));
  }
  if (const std::uint64_t vm = ProcessVirtualBytes(); vm > 0) {
    registry.GetGauge("process.virtual_bytes").Set(static_cast<double>(vm));
  }
  if (const std::uint64_t threads = ProcessThreadCount(); threads > 0) {
    registry.GetGauge("process.threads").Set(static_cast<double>(threads));
  }
  registry.GetGauge("process.hardware_threads")
      .Set(static_cast<double>(std::thread::hardware_concurrency()));
}

}  // namespace urbane::obs
