#ifndef URBANE_OBS_METRICS_H_
#define URBANE_OBS_METRICS_H_

// Process-wide metrics: named counters, gauges, and fixed-bucket latency
// histograms, collected in a lock-sharded registry.
//
// Hot-path contract:
//   * `Counter::Add` is a single relaxed fetch_add on a cache-line-padded
//     shard picked by a thread-local slot — no locks, no false sharing.
//   * `Histogram::Observe` is a bucket scan plus a handful of relaxed
//     atomics; bucket bounds are immutable after construction.
//   * Registry lookups take a per-shard mutex, so instrumentation sites
//     should capture `Counter&`/`Histogram&` references once (metric
//     objects have stable addresses for the life of the process — `Reset`
//     zeroes values but never destroys a metric).
//
// Snapshots decouple readers from writers: `MetricsRegistry::Snapshot`
// copies every metric under the shard locks into plain structs that can be
// diffed (`MetricsSnapshot::Delta`) and serialized (`ToJson`/`FromJson`).

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "data/json.h"
#include "util/status.h"

namespace urbane::obs {

/// Monotonic counter, sharded to keep concurrent increments cheap.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(std::uint64_t delta = 1);
  std::uint64_t Value() const;
  void Reset();

 private:
  static constexpr std::size_t kShards = 8;
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  Shard shards_[kShards];
};

/// Last-write-wins instantaneous value (e.g. cache entries, bytes).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta);
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Bucket upper bounds suited to frame latencies: 100 us .. 5 s.
std::vector<double> DefaultLatencyBounds();

/// Fixed-bucket histogram. `bounds` are inclusive upper bounds, strictly
/// increasing; one extra overflow bucket catches everything above the last
/// bound. Also tracks count/sum/min/max for mean and range reporting.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);
  const std::vector<double>& bounds() const { return bounds_; }
  std::uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  friend class MetricsRegistry;

  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
};

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1 (overflow last)
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  double Mean() const;
  /// Approximate quantile (q in [0, 1]) by linear interpolation inside the
  /// fixed buckets, clamped to the exact observed [min, max]. Returns 0
  /// when the histogram is empty. The overflow bucket interpolates between
  /// the last bound and max.
  double Quantile(double q) const;
};

/// Point-in-time copy of every registered metric, sorted by name.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Lookups return pointers into this snapshot, so they are lvalue-only:
  /// `registry.Snapshot().FindHistogram(...)` would dangle and is a
  /// compile error. Bind the snapshot to a local first.
  const CounterSnapshot* FindCounter(const std::string& name) const&;
  const GaugeSnapshot* FindGauge(const std::string& name) const&;
  const HistogramSnapshot* FindHistogram(const std::string& name) const&;
  const CounterSnapshot* FindCounter(const std::string&) const&& = delete;
  const GaugeSnapshot* FindGauge(const std::string&) const&& = delete;
  const HistogramSnapshot* FindHistogram(const std::string&) const&& = delete;
  /// Counter value by name; 0 when absent (by value: safe on temporaries).
  std::uint64_t CounterValue(const std::string& name) const;

  /// Schema "urbane.metrics.v1" — see DESIGN.md "Observability".
  data::JsonValue ToJson() const;
  /// Tolerant parse: unknown fields are ignored, missing sections and
  /// missing optional fields default to empty/zero. Fails only on type
  /// mismatches or entries without a name.
  static StatusOr<MetricsSnapshot> FromJson(const data::JsonValue& json);

  /// Per-metric difference `after - before` (counters and histogram
  /// buckets clamp at 0; gauges keep the `after` value). Metrics absent
  /// from `before` are kept as-is.
  static MetricsSnapshot Delta(const MetricsSnapshot& after,
                               const MetricsSnapshot& before);
};

/// Name -> metric map, sharded by name hash. Metric objects live for the
/// life of the registry: `Reset` zeroes values, it never invalidates a
/// reference handed out by a Get* call.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry used by all instrumentation sites.
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// First Get wins the bucket bounds; later calls with different bounds
  /// return the existing histogram unchanged.
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> bounds = DefaultLatencyBounds());

  MetricsSnapshot Snapshot() const;
  /// Copies a single histogram without walking the whole registry — cheap
  /// enough for periodic reads on the query path (slow-query thresholds).
  /// Returns an empty snapshot (count 0, empty name) when absent.
  HistogramSnapshot SnapshotHistogram(const std::string& name) const;
  data::JsonValue ToJson() const { return Snapshot().ToJson(); }

  /// Zeroes every metric's value, preserving the objects (and therefore
  /// every cached reference).
  void Reset();

 private:
  static constexpr std::size_t kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
  };

  Shard& ShardFor(const std::string& name);
  const Shard& ShardFor(const std::string& name) const;

  Shard shards_[kShards];
};

}  // namespace urbane::obs

#endif  // URBANE_OBS_METRICS_H_
