#include "data/region_generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"

namespace urbane::data {

namespace {

// Deterministic hash of a lattice vertex pair (quantized world coords), so
// both cells sharing an edge derive the same wiggle stream.
std::uint64_t EdgeHash(std::uint64_t seed, const geometry::Vec2& a,
                       const geometry::Vec2& b) {
  auto quantize = [](double v) {
    return static_cast<std::uint64_t>(
        static_cast<std::int64_t>(std::llround(v * 1024.0)));
  };
  std::uint64_t state = seed;
  state ^= SplitMix64(state) ^ quantize(a.x);
  state ^= SplitMix64(state) ^ quantize(a.y);
  state ^= SplitMix64(state) ^ quantize(b.x);
  state ^= SplitMix64(state) ^ quantize(b.y);
  return SplitMix64(state);
}

// Wiggled polyline from `a` to `b` (exclusive of `b`). Canonicalizes the
// endpoint order before sampling so (a, b) and (b, a) produce mirrored
// copies of the same curve.
std::vector<geometry::Vec2> EdgePolyline(std::uint64_t seed,
                                         const geometry::Vec2& a,
                                         const geometry::Vec2& b,
                                         int subdivisions, double wiggle) {
  const bool forward =
      a.x < b.x || (a.x == b.x && a.y <= b.y);  // canonical direction
  const geometry::Vec2& lo = forward ? a : b;
  const geometry::Vec2& hi = forward ? b : a;

  std::vector<geometry::Vec2> canonical;
  canonical.reserve(static_cast<std::size_t>(subdivisions) + 2);
  canonical.push_back(lo);
  if (subdivisions > 0 && wiggle > 0.0) {
    Rng rng(EdgeHash(seed, lo, hi));
    const geometry::Vec2 d = hi - lo;
    const double len = d.Norm();
    const geometry::Vec2 normal =
        len > 0 ? geometry::Vec2{-d.y / len, d.x / len}
                : geometry::Vec2{0.0, 0.0};
    for (int m = 1; m <= subdivisions; ++m) {
      const double s =
          static_cast<double>(m) / static_cast<double>(subdivisions + 1);
      // Damp the wiggle near the endpoints so neighbours meet exactly.
      const double amp = wiggle * len * std::sin(M_PI * s);
      const double offset = rng.NextGaussian(0.0, 0.4) * amp;
      canonical.push_back(lo + d * s + normal * offset);
    }
  } else {
    // No interior vertices.
  }
  canonical.push_back(hi);

  std::vector<geometry::Vec2> out;
  out.reserve(canonical.size() - 1);
  if (forward) {
    out.assign(canonical.begin(), canonical.end() - 1);
  } else {
    out.assign(canonical.rbegin(), canonical.rend() - 1);
  }
  return out;
}

}  // namespace

RegionSet GenerateTessellation(const TessellationOptions& options) {
  URBANE_CHECK(options.cells_x > 0 && options.cells_y > 0);
  const geometry::BoundingBox& world = options.bounds;
  const int cx = options.cells_x;
  const int cy = options.cells_y;
  const double cell_w = world.Width() / cx;
  const double cell_h = world.Height() / cy;

  // Jittered lattice; border vertices stay on the border (corners fixed).
  std::vector<geometry::Vec2> lattice(
      static_cast<std::size_t>(cx + 1) * (cy + 1));
  auto vertex = [&](int i, int j) -> geometry::Vec2& {
    return lattice[static_cast<std::size_t>(j) * (cx + 1) + i];
  };
  Rng rng(options.seed);
  for (int j = 0; j <= cy; ++j) {
    for (int i = 0; i <= cx; ++i) {
      geometry::Vec2 p{world.min_x + i * cell_w, world.min_y + j * cell_h};
      const bool x_border = (i == 0 || i == cx);
      const bool y_border = (j == 0 || j == cy);
      if (!x_border) {
        p.x += rng.NextDouble(-0.5, 0.5) * options.jitter * cell_w;
      }
      if (!y_border) {
        p.y += rng.NextDouble(-0.5, 0.5) * options.jitter * cell_h;
      }
      vertex(i, j) = p;
    }
  }

  RegionSet regions;
  Rng hole_rng(options.seed ^ 0xA5A5A5A5ULL);
  std::int64_t next_id = 0;
  for (int j = 0; j < cy; ++j) {
    for (int i = 0; i < cx; ++i) {
      geometry::Ring ring;
      auto extend = [&](const geometry::Vec2& a, const geometry::Vec2& b) {
        // Edges lying on the world border must stay straight or the
        // tessellation would leak outside the bounds (no neighbour exists
        // to absorb the wiggle).
        const bool on_border =
            (a.x == world.min_x && b.x == world.min_x) ||
            (a.x == world.max_x && b.x == world.max_x) ||
            (a.y == world.min_y && b.y == world.min_y) ||
            (a.y == world.max_y && b.y == world.max_y);
        std::vector<geometry::Vec2> part = EdgePolyline(
            options.seed, a, b, options.edge_subdivisions,
            on_border ? 0.0 : options.edge_wiggle);
        ring.insert(ring.end(), part.begin(), part.end());
      };
      extend(vertex(i, j), vertex(i + 1, j));          // bottom
      extend(vertex(i + 1, j), vertex(i + 1, j + 1));  // right
      extend(vertex(i + 1, j + 1), vertex(i, j + 1));  // top
      extend(vertex(i, j + 1), vertex(i, j));          // left

      geometry::Polygon polygon(std::move(ring));
      if (options.hole_probability > 0.0 &&
          hole_rng.NextBool(options.hole_probability)) {
        // Punch a small "park" around the cell centroid; radius small
        // enough to stay inside despite jitter and wiggle.
        const geometry::Vec2 c = polygon.Centroid();
        const double r =
            0.12 * std::min(cell_w, cell_h) * hole_rng.NextDouble(0.6, 1.0);
        geometry::Polygon park = geometry::MakeRegularPolygon(
            c, r, 8, hole_rng.NextDouble(0.0, M_PI));
        polygon.add_hole(park.outer());
      }
      polygon.Normalize();

      Region region;
      region.id = next_id++;
      region.name = StringPrintf("%s-%02d-%02d", options.name_prefix.c_str(),
                                 i, j);
      region.geometry = geometry::MultiPolygon(std::move(polygon));
      URBANE_CHECK_OK(regions.Add(std::move(region)));
    }
  }
  return regions;
}

RegionSet GenerateNeighborhoods(std::uint64_t seed) {
  TessellationOptions options;
  options.cells_x = 16;
  options.cells_y = 16;
  options.seed = seed;
  options.name_prefix = "NH";
  return GenerateTessellation(options);
}

RegionSet GenerateBoroughs(std::uint64_t seed) {
  TessellationOptions options;
  options.cells_x = 2;
  options.cells_y = 3;
  options.seed = seed;
  options.edge_subdivisions = 24;
  options.name_prefix = "BORO";
  return GenerateTessellation(options);
}

RegionSet GenerateCensusTracts(std::uint64_t seed) {
  TessellationOptions options;
  options.cells_x = 46;
  options.cells_y = 46;
  options.seed = seed;
  options.edge_subdivisions = 2;
  options.name_prefix = "CT";
  return GenerateTessellation(options);
}

RegionSet GenerateRandomRegions(const RandomRegionOptions& options) {
  RegionSet regions;
  Rng rng(options.seed);
  const double extent =
      std::min(options.bounds.Width(), options.bounds.Height());
  for (std::size_t r = 0; r < options.count; ++r) {
    const double radius =
        extent * rng.NextDouble(options.min_radius_fraction,
                                options.max_radius_fraction);
    const geometry::Vec2 center{
        rng.NextDouble(options.bounds.min_x + radius,
                       options.bounds.max_x - radius),
        rng.NextDouble(options.bounds.min_y + radius,
                       options.bounds.max_y - radius)};
    // Star-convex construction: strictly increasing angles guarantee a
    // simple polygon regardless of radial noise.
    geometry::Ring ring;
    const std::size_t n = std::max<std::size_t>(3, options.vertices_per_region);
    ring.reserve(n);
    const double phase = rng.NextDouble(0.0, 2.0 * M_PI);
    for (std::size_t v = 0; v < n; ++v) {
      const double angle =
          phase + 2.0 * M_PI * static_cast<double>(v) / static_cast<double>(n);
      const double rr =
          radius * (1.0 + options.radial_noise * rng.NextDouble(-1.0, 1.0));
      ring.push_back({center.x + rr * std::cos(angle),
                      center.y + rr * std::sin(angle)});
    }
    Region region;
    region.id = static_cast<std::int64_t>(r);
    region.name = StringPrintf("%s-%03zu", options.name_prefix.c_str(), r);
    region.geometry = geometry::MultiPolygon(geometry::Polygon(std::move(ring)));
    URBANE_CHECK_OK(regions.Add(std::move(region)));
  }
  return regions;
}

}  // namespace urbane::data
