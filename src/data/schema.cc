#include "data/schema.h"

#include <unordered_set>

#include "util/logging.h"

namespace urbane::data {

Schema::Schema(std::vector<std::string> attribute_names)
    : names_(std::move(attribute_names)) {
  auto checked = Create(names_);
  URBANE_CHECK(checked.ok()) << checked.status().ToString();
}

StatusOr<Schema> Schema::Create(std::vector<std::string> attribute_names) {
  std::unordered_set<std::string> seen;
  for (const std::string& name : attribute_names) {
    if (name.empty()) {
      return Status::InvalidArgument("attribute names must be non-empty");
    }
    if (name == "x" || name == "y" || name == "t") {
      return Status::InvalidArgument(
          "attribute name collides with implicit column: " + name);
    }
    if (!seen.insert(name).second) {
      return Status::InvalidArgument("duplicate attribute name: " + name);
    }
  }
  Schema schema;
  schema.names_ = std::move(attribute_names);
  return schema;
}

int Schema::AttributeIndex(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace urbane::data
