#include "data/binary_io.h"

#include <cctype>
#include <cstring>
#include <fstream>

#include "util/file_util.h"
#include "util/string_util.h"

namespace urbane::data {

namespace {

constexpr char kPointMagic[4] = {'U', 'P', 'T', '1'};
constexpr char kRegionMagic[4] = {'U', 'R', 'G', '1'};

std::string PrintableMagic(const char magic[4]) {
  std::string out;
  for (int i = 0; i < 4; ++i) {
    const unsigned char c = static_cast<unsigned char>(magic[i]);
    if (std::isprint(c)) {
      out.push_back(static_cast<char>(c));
    } else {
      out += StringPrintf("\\x%02x", c);
    }
  }
  return out;
}

/// Buffered writer over the crash-safe AtomicFileWriter: bytes land in
/// `<path>.tmp` and only an error-free Finish() renames onto the final
/// path, so interrupted saves never leave a half-written snapshot behind.
class Writer {
 public:
  static StatusOr<Writer> Open(const std::string& path) {
    URBANE_ASSIGN_OR_RETURN(AtomicFileWriter file,
                            AtomicFileWriter::Open(path));
    Writer w;
    w.file_ = std::move(file);
    return w;
  }

  void Bytes(const void* data, std::size_t size) {
    if (!status_.ok()) return;
    status_ = file_.Write(data, size);
  }
  template <typename T>
  void Pod(const T& value) {
    Bytes(&value, sizeof(T));
  }
  void U64(std::uint64_t v) { Pod(v); }
  void Str(const std::string& s) {
    U64(s.size());
    Bytes(s.data(), s.size());
  }
  template <typename T>
  void Vec(const std::vector<T>& v) {
    U64(v.size());
    Bytes(v.data(), v.size() * sizeof(T));
  }

  Status Finish() {
    URBANE_RETURN_IF_ERROR(status_);
    return file_.Commit();
  }

 private:
  Writer() = default;

  AtomicFileWriter file_;
  Status status_;
};

/// Hardened reader: every length field is validated against the bytes that
/// actually remain in the file *before* any allocation or read, so a
/// truncated or corrupted snapshot yields a clean IoError (with the byte
/// offset of the offending field) instead of a multi-GB allocation or a
/// silent short read.
class Reader {
 public:
  explicit Reader(const std::string& path)
      : file_(path, std::ios::binary), path_(path) {
    if (file_) {
      file_.seekg(0, std::ios::end);
      const std::streamoff size = file_.tellg();
      file_.seekg(0, std::ios::beg);
      if (size >= 0 && file_) {
        file_size_ = static_cast<std::uint64_t>(size);
        sized_ = true;
      }
    }
  }

  bool ok() const { return sized_ && static_cast<bool>(file_); }

  std::uint64_t offset() const { return offset_; }
  std::uint64_t Remaining() const {
    return offset_ <= file_size_ ? file_size_ - offset_ : 0;
  }

  Status Bytes(void* data, std::size_t size) {
    if (size > Remaining()) {
      return Status::IoError(StringPrintf(
          "truncated file %s: need %zu bytes at offset %llu, %llu remain",
          path_.c_str(), size, static_cast<unsigned long long>(offset_),
          static_cast<unsigned long long>(Remaining())));
    }
    file_.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
    if (!file_) {
      return Status::IoError(StringPrintf(
          "read failure in %s at offset %llu", path_.c_str(),
          static_cast<unsigned long long>(offset_)));
    }
    offset_ += size;
    return Status::OK();
  }
  template <typename T>
  Status Pod(T& value) {
    return Bytes(&value, sizeof(T));
  }
  StatusOr<std::uint64_t> U64() {
    std::uint64_t v = 0;
    URBANE_RETURN_IF_ERROR(Pod(v));
    return v;
  }

  /// A count of `elem_size`-byte elements read at the current offset; the
  /// claimed payload must fit in the remaining file bytes.
  StatusOr<std::uint64_t> Count(std::size_t elem_size, const char* what) {
    const std::uint64_t at = offset_;
    URBANE_ASSIGN_OR_RETURN(std::uint64_t n, U64());
    if (elem_size != 0 && n > Remaining() / elem_size) {
      return Status::IoError(StringPrintf(
          "corrupt %s count %llu at offset %llu of %s: %llu * %zu bytes "
          "exceed the %llu remaining",
          what, static_cast<unsigned long long>(n),
          static_cast<unsigned long long>(at), path_.c_str(),
          static_cast<unsigned long long>(n), elem_size,
          static_cast<unsigned long long>(Remaining())));
    }
    return n;
  }

  StatusOr<std::string> Str() {
    URBANE_ASSIGN_OR_RETURN(std::uint64_t size, Count(1, "string length"));
    std::string s(size, '\0');
    URBANE_RETURN_IF_ERROR(Bytes(s.data(), size));
    return s;
  }
  template <typename T>
  Status Vec(std::vector<T>& v) {
    URBANE_ASSIGN_OR_RETURN(std::uint64_t size,
                            Count(sizeof(T), "vector length"));
    v.resize(size);
    return Bytes(v.data(), v.size() * sizeof(T));
  }

  /// Validated bulk column read: `n` elements must fit in the remaining
  /// bytes (Bytes() checks) — kept for symmetry and error context.
  template <typename T>
  Status Column(std::vector<T>& v, std::uint64_t n, const char* what) {
    if (n > Remaining() / sizeof(T)) {
      return Status::IoError(StringPrintf(
          "truncated %s column in %s at offset %llu: %llu elements do not "
          "fit in the %llu remaining bytes",
          what, path_.c_str(), static_cast<unsigned long long>(offset_),
          static_cast<unsigned long long>(n),
          static_cast<unsigned long long>(Remaining())));
    }
    v.resize(n);
    return Bytes(v.data(), v.size() * sizeof(T));
  }

  const std::string& path() const { return path_; }

 private:
  std::ifstream file_;
  std::string path_;
  std::uint64_t file_size_ = 0;
  std::uint64_t offset_ = 0;
  bool sized_ = false;
};

/// Distinct, actionable magic/version diagnostics: a mismatch names both
/// the found and the expected magic so a format upgrade (or handing a UPT1
/// file to the region reader) fails loudly instead of as a generic read
/// error downstream.
Status CheckMagic(Reader& reader, const char expected[4],
                  const std::string& what) {
  char magic[4];
  URBANE_RETURN_IF_ERROR(reader.Bytes(magic, 4));
  if (std::memcmp(magic, expected, 4) != 0) {
    return Status::IoError("bad magic in " + reader.path() + ": found '" +
                           PrintableMagic(magic) + "', expected '" +
                           PrintableMagic(expected) + "' (" + what +
                           " snapshot)");
  }
  return Status::OK();
}

void WriteRing(Writer& w, const geometry::Ring& ring) {
  w.U64(ring.size());
  for (const geometry::Vec2& p : ring) {
    w.Pod(p.x);
    w.Pod(p.y);
  }
}

StatusOr<geometry::Ring> ReadRing(Reader& r) {
  URBANE_ASSIGN_OR_RETURN(std::uint64_t n,
                          r.Count(2 * sizeof(double), "ring size"));
  geometry::Ring ring(n);
  for (auto& p : ring) {
    URBANE_RETURN_IF_ERROR(r.Pod(p.x));
    URBANE_RETURN_IF_ERROR(r.Pod(p.y));
  }
  return ring;
}

}  // namespace

Status WritePointTableBinary(const PointTable& table,
                             const std::string& path) {
  URBANE_ASSIGN_OR_RETURN(Writer w, Writer::Open(path));
  w.Bytes(kPointMagic, 4);
  w.U64(table.schema().attribute_count());
  for (const std::string& name : table.schema().attribute_names()) {
    w.Str(name);
  }
  const std::size_t n = table.size();
  w.U64(n);
  w.Bytes(table.xs(), n * sizeof(float));
  w.Bytes(table.ys(), n * sizeof(float));
  w.Bytes(table.ts(), n * sizeof(std::int64_t));
  for (std::size_t c = 0; c < table.schema().attribute_count(); ++c) {
    w.Bytes(table.attribute_data(c), n * sizeof(float));
  }
  return w.Finish();
}

StatusOr<PointTable> ReadPointTableBinary(const std::string& path) {
  Reader r(path);
  if (!r.ok()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  URBANE_RETURN_IF_ERROR(CheckMagic(r, kPointMagic, "point-table"));
  URBANE_ASSIGN_OR_RETURN(std::uint64_t attr_count,
                          r.Count(/*elem_size=*/9, "attribute"));
  if (attr_count > 4096) {
    return Status::IoError(StringPrintf(
        "implausible attribute count %llu in %s",
        static_cast<unsigned long long>(attr_count), path.c_str()));
  }
  std::vector<std::string> names;
  names.reserve(attr_count);
  for (std::uint64_t c = 0; c < attr_count; ++c) {
    URBANE_ASSIGN_OR_RETURN(std::string name, r.Str());
    names.push_back(std::move(name));
  }
  URBANE_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(names)));
  // Each row occupies 16 + 4 * attr_count bytes of payload after the count.
  const std::size_t row_bytes =
      2 * sizeof(float) + sizeof(std::int64_t) +
      schema.attribute_count() * sizeof(float);
  URBANE_ASSIGN_OR_RETURN(std::uint64_t n, r.Count(row_bytes, "row"));
  PointTable table(schema);
  table.Reserve(n);
  std::vector<float> xs;
  std::vector<float> ys;
  std::vector<std::int64_t> ts;
  URBANE_RETURN_IF_ERROR(r.Column(xs, n, "x"));
  URBANE_RETURN_IF_ERROR(r.Column(ys, n, "y"));
  URBANE_RETURN_IF_ERROR(r.Column(ts, n, "t"));
  for (std::uint64_t i = 0; i < n; ++i) {
    table.AppendXyt(xs[i], ys[i], ts[i]);
  }
  for (std::size_t c = 0; c < schema.attribute_count(); ++c) {
    std::vector<float>& col = table.mutable_attribute_column(c);
    URBANE_RETURN_IF_ERROR(
        r.Column(col, n, schema.attribute_name(c).c_str()));
  }
  URBANE_RETURN_IF_ERROR(table.Validate());
  return table;
}

Status WriteRegionSetBinary(const RegionSet& regions,
                            const std::string& path) {
  URBANE_ASSIGN_OR_RETURN(Writer w, Writer::Open(path));
  w.Bytes(kRegionMagic, 4);
  w.U64(regions.size());
  for (const Region& region : regions.regions()) {
    w.Pod(region.id);
    w.Str(region.name);
    w.U64(region.geometry.parts().size());
    for (const geometry::Polygon& part : region.geometry.parts()) {
      WriteRing(w, part.outer());
      w.U64(part.holes().size());
      for (const geometry::Ring& hole : part.holes()) {
        WriteRing(w, hole);
      }
    }
  }
  return w.Finish();
}

StatusOr<RegionSet> ReadRegionSetBinary(const std::string& path) {
  Reader r(path);
  if (!r.ok()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  URBANE_RETURN_IF_ERROR(CheckMagic(r, kRegionMagic, "region-set"));
  // A serialized region is at least id + name length + part count bytes.
  URBANE_ASSIGN_OR_RETURN(std::uint64_t count,
                          r.Count(/*elem_size=*/20, "region"));
  RegionSet regions;
  for (std::uint64_t i = 0; i < count; ++i) {
    Region region;
    URBANE_RETURN_IF_ERROR(r.Pod(region.id));
    URBANE_ASSIGN_OR_RETURN(region.name, r.Str());
    // A part carries at least an outer-ring size and a hole count.
    URBANE_ASSIGN_OR_RETURN(std::uint64_t parts, r.Count(16, "part"));
    for (std::uint64_t p = 0; p < parts; ++p) {
      URBANE_ASSIGN_OR_RETURN(geometry::Ring outer, ReadRing(r));
      geometry::Polygon polygon(std::move(outer));
      URBANE_ASSIGN_OR_RETURN(std::uint64_t holes, r.Count(8, "hole"));
      for (std::uint64_t h = 0; h < holes; ++h) {
        URBANE_ASSIGN_OR_RETURN(geometry::Ring hole, ReadRing(r));
        polygon.add_hole(std::move(hole));
      }
      region.geometry.add_part(std::move(polygon));
    }
    URBANE_RETURN_IF_ERROR(regions.Add(std::move(region)));
  }
  return regions;
}

}  // namespace urbane::data
