#include "data/binary_io.h"

#include <cstring>
#include <fstream>

#include "util/string_util.h"

namespace urbane::data {

namespace {

constexpr char kPointMagic[4] = {'U', 'P', 'T', '1'};
constexpr char kRegionMagic[4] = {'U', 'R', 'G', '1'};

class Writer {
 public:
  explicit Writer(const std::string& path)
      : file_(path, std::ios::binary | std::ios::trunc), path_(path) {}

  bool ok() const { return static_cast<bool>(file_); }

  void Bytes(const void* data, std::size_t size) {
    file_.write(static_cast<const char*>(data),
                static_cast<std::streamsize>(size));
  }
  template <typename T>
  void Pod(const T& value) {
    Bytes(&value, sizeof(T));
  }
  void U64(std::uint64_t v) { Pod(v); }
  void Str(const std::string& s) {
    U64(s.size());
    Bytes(s.data(), s.size());
  }
  template <typename T>
  void Vec(const std::vector<T>& v) {
    U64(v.size());
    Bytes(v.data(), v.size() * sizeof(T));
  }

  Status Finish() {
    file_.flush();
    if (!file_) {
      return Status::IoError("write failure: " + path_);
    }
    return Status::OK();
  }

 private:
  std::ofstream file_;
  std::string path_;
};

class Reader {
 public:
  explicit Reader(const std::string& path)
      : file_(path, std::ios::binary), path_(path) {}

  bool ok() const { return static_cast<bool>(file_); }

  Status Bytes(void* data, std::size_t size) {
    file_.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
    if (!file_) {
      return Status::IoError("truncated or unreadable file: " + path_);
    }
    return Status::OK();
  }
  template <typename T>
  Status Pod(T& value) {
    return Bytes(&value, sizeof(T));
  }
  StatusOr<std::uint64_t> U64() {
    std::uint64_t v = 0;
    URBANE_RETURN_IF_ERROR(Pod(v));
    return v;
  }
  StatusOr<std::string> Str() {
    URBANE_ASSIGN_OR_RETURN(std::uint64_t size, U64());
    if (size > (1ULL << 32)) {
      return Status::IoError("implausible string length in " + path_);
    }
    std::string s(size, '\0');
    URBANE_RETURN_IF_ERROR(Bytes(s.data(), size));
    return s;
  }
  template <typename T>
  Status Vec(std::vector<T>& v) {
    URBANE_ASSIGN_OR_RETURN(std::uint64_t size, U64());
    if (size > (1ULL << 34) / sizeof(T)) {
      return Status::IoError("implausible vector length in " + path_);
    }
    v.resize(size);
    return Bytes(v.data(), v.size() * sizeof(T));
  }

 private:
  std::ifstream file_;
  std::string path_;
};

Status CheckMagic(Reader& reader, const char expected[4],
                  const std::string& what) {
  char magic[4];
  URBANE_RETURN_IF_ERROR(reader.Bytes(magic, 4));
  if (std::memcmp(magic, expected, 4) != 0) {
    return Status::InvalidArgument("not a " + what + " snapshot file");
  }
  return Status::OK();
}

void WriteRing(Writer& w, const geometry::Ring& ring) {
  w.U64(ring.size());
  for (const geometry::Vec2& p : ring) {
    w.Pod(p.x);
    w.Pod(p.y);
  }
}

StatusOr<geometry::Ring> ReadRing(Reader& r) {
  URBANE_ASSIGN_OR_RETURN(std::uint64_t n, r.U64());
  if (n > (1ULL << 28)) {
    return Status::IoError("implausible ring size");
  }
  geometry::Ring ring(n);
  for (auto& p : ring) {
    URBANE_RETURN_IF_ERROR(r.Pod(p.x));
    URBANE_RETURN_IF_ERROR(r.Pod(p.y));
  }
  return ring;
}

}  // namespace

Status WritePointTableBinary(const PointTable& table,
                             const std::string& path) {
  Writer w(path);
  if (!w.ok()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  w.Bytes(kPointMagic, 4);
  w.U64(table.schema().attribute_count());
  for (const std::string& name : table.schema().attribute_names()) {
    w.Str(name);
  }
  const std::size_t n = table.size();
  w.U64(n);
  w.Bytes(table.xs(), n * sizeof(float));
  w.Bytes(table.ys(), n * sizeof(float));
  w.Bytes(table.ts(), n * sizeof(std::int64_t));
  for (std::size_t c = 0; c < table.schema().attribute_count(); ++c) {
    w.Bytes(table.attribute_column(c).data(), n * sizeof(float));
  }
  return w.Finish();
}

StatusOr<PointTable> ReadPointTableBinary(const std::string& path) {
  Reader r(path);
  if (!r.ok()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  URBANE_RETURN_IF_ERROR(CheckMagic(r, kPointMagic, "point-table"));
  URBANE_ASSIGN_OR_RETURN(std::uint64_t attr_count, r.U64());
  if (attr_count > 4096) {
    return Status::IoError("implausible attribute count");
  }
  std::vector<std::string> names;
  names.reserve(attr_count);
  for (std::uint64_t c = 0; c < attr_count; ++c) {
    URBANE_ASSIGN_OR_RETURN(std::string name, r.Str());
    names.push_back(std::move(name));
  }
  URBANE_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(names)));
  URBANE_ASSIGN_OR_RETURN(std::uint64_t n, r.U64());
  if (n > (1ULL << 33)) {
    return Status::IoError("implausible row count");
  }
  PointTable table(schema);
  table.Reserve(n);
  std::vector<float> xs(n);
  std::vector<float> ys(n);
  std::vector<std::int64_t> ts(n);
  URBANE_RETURN_IF_ERROR(r.Bytes(xs.data(), n * sizeof(float)));
  URBANE_RETURN_IF_ERROR(r.Bytes(ys.data(), n * sizeof(float)));
  URBANE_RETURN_IF_ERROR(r.Bytes(ts.data(), n * sizeof(std::int64_t)));
  for (std::uint64_t i = 0; i < n; ++i) {
    table.AppendXyt(xs[i], ys[i], ts[i]);
  }
  for (std::size_t c = 0; c < schema.attribute_count(); ++c) {
    std::vector<float>& col = table.mutable_attribute_column(c);
    col.resize(n);
    URBANE_RETURN_IF_ERROR(r.Bytes(col.data(), n * sizeof(float)));
  }
  URBANE_RETURN_IF_ERROR(table.Validate());
  return table;
}

Status WriteRegionSetBinary(const RegionSet& regions,
                            const std::string& path) {
  Writer w(path);
  if (!w.ok()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  w.Bytes(kRegionMagic, 4);
  w.U64(regions.size());
  for (const Region& region : regions.regions()) {
    w.Pod(region.id);
    w.Str(region.name);
    w.U64(region.geometry.parts().size());
    for (const geometry::Polygon& part : region.geometry.parts()) {
      WriteRing(w, part.outer());
      w.U64(part.holes().size());
      for (const geometry::Ring& hole : part.holes()) {
        WriteRing(w, hole);
      }
    }
  }
  return w.Finish();
}

StatusOr<RegionSet> ReadRegionSetBinary(const std::string& path) {
  Reader r(path);
  if (!r.ok()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  URBANE_RETURN_IF_ERROR(CheckMagic(r, kRegionMagic, "region-set"));
  URBANE_ASSIGN_OR_RETURN(std::uint64_t count, r.U64());
  if (count > (1ULL << 24)) {
    return Status::IoError("implausible region count");
  }
  RegionSet regions;
  for (std::uint64_t i = 0; i < count; ++i) {
    Region region;
    URBANE_RETURN_IF_ERROR(r.Pod(region.id));
    URBANE_ASSIGN_OR_RETURN(region.name, r.Str());
    URBANE_ASSIGN_OR_RETURN(std::uint64_t parts, r.U64());
    if (parts > (1ULL << 20)) {
      return Status::IoError("implausible part count");
    }
    for (std::uint64_t p = 0; p < parts; ++p) {
      URBANE_ASSIGN_OR_RETURN(geometry::Ring outer, ReadRing(r));
      geometry::Polygon polygon(std::move(outer));
      URBANE_ASSIGN_OR_RETURN(std::uint64_t holes, r.U64());
      if (holes > (1ULL << 20)) {
        return Status::IoError("implausible hole count");
      }
      for (std::uint64_t h = 0; h < holes; ++h) {
        URBANE_ASSIGN_OR_RETURN(geometry::Ring hole, ReadRing(r));
        polygon.add_hole(std::move(hole));
      }
      region.geometry.add_part(std::move(polygon));
    }
    URBANE_RETURN_IF_ERROR(regions.Add(std::move(region)));
  }
  return regions;
}

}  // namespace urbane::data
