#ifndef URBANE_DATA_CSV_LOADER_H_
#define URBANE_DATA_CSV_LOADER_H_

#include <string>

#include "data/point_table.h"
#include "util/status.h"

namespace urbane::data {

/// Column-name bindings for CSV ingest.
struct CsvPointOptions {
  std::string x_column = "x";
  std::string y_column = "y";
  std::string t_column = "t";
  /// When true, x/y columns hold lon/lat degrees and get projected to
  /// Mercator meters (how real TLC exports would be ingested). When false
  /// they are taken as planar coordinates.
  bool project_lonlat_to_mercator = false;
  /// Rows whose x/y/t fail to parse are skipped instead of failing the
  /// whole load (real open-data exports contain junk rows).
  bool skip_bad_rows = true;
};

/// Loads a point table from CSV: x/y/t from the bound columns, every other
/// numeric column becomes a float attribute.
StatusOr<PointTable> ReadPointTableCsv(const std::string& csv_text,
                                       const CsvPointOptions& options =
                                           CsvPointOptions());

StatusOr<PointTable> ReadPointTableCsvFile(const std::string& path,
                                           const CsvPointOptions& options =
                                               CsvPointOptions());

/// Serializes a point table to CSV (x, y, t, then attributes).
std::string WritePointTableCsv(const PointTable& table);

Status WritePointTableCsvFile(const PointTable& table,
                              const std::string& path);

}  // namespace urbane::data

#endif  // URBANE_DATA_CSV_LOADER_H_
