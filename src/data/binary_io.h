#ifndef URBANE_DATA_BINARY_IO_H_
#define URBANE_DATA_BINARY_IO_H_

#include <string>

#include "data/point_table.h"
#include "data/region.h"
#include "util/status.h"

namespace urbane::data {

/// Fast binary snapshot format ("UPT1" / "URG1") for point tables and
/// region sets. Little-endian, versioned magic, length-prefixed strings.
/// This is the library's analogue of the preprocessed binary dumps the
/// Urbane deployment loads at startup instead of re-parsing CSV/GeoJSON.
Status WritePointTableBinary(const PointTable& table,
                             const std::string& path);
StatusOr<PointTable> ReadPointTableBinary(const std::string& path);

Status WriteRegionSetBinary(const RegionSet& regions,
                            const std::string& path);
StatusOr<RegionSet> ReadRegionSetBinary(const std::string& path);

}  // namespace urbane::data

#endif  // URBANE_DATA_BINARY_IO_H_
