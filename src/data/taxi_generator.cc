#include "data/taxi_generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/random.h"

namespace urbane::data {

const char* const kTaxiAttributeNames[4] = {
    "fare_amount", "trip_distance", "passenger_count", "tip_amount"};

namespace {

// Hour-of-day demand shape (arbitrary units): overnight lull, AM rush,
// midday plateau, PM rush, evening decline. Loosely matched to published
// TLC demand curves.
constexpr double kWeekdayHourly[24] = {
    2.0, 1.2, 0.8, 0.6, 0.6, 1.0, 2.4, 4.2, 5.2, 4.6, 4.2, 4.4,
    4.8, 4.6, 4.6, 4.4, 4.2, 5.0, 6.2, 6.6, 6.0, 5.2, 4.2, 3.0};
constexpr double kWeekendHourly[24] = {
    4.6, 4.0, 3.4, 2.4, 1.6, 1.0, 1.0, 1.4, 2.0, 2.8, 3.6, 4.2,
    4.6, 4.8, 4.8, 4.6, 4.4, 4.6, 5.0, 5.4, 5.4, 5.2, 5.0, 4.8};

struct Hotspot {
  geometry::Vec2 center;
  double sigma_x;
  double sigma_y;
  double rotation;  // radians
  double weight;
};

std::vector<Hotspot> MakeHotspots(const TaxiGeneratorOptions& options,
                                  Rng& rng) {
  std::vector<Hotspot> hotspots;
  hotspots.reserve(static_cast<std::size_t>(options.num_hotspots));
  const geometry::Vec2 center = options.bounds.Center();
  const double extent_x = options.bounds.Width();
  const double extent_y = options.bounds.Height();
  // Manhattan-like spine: hotspots scattered along a NE-tilted ellipse
  // around the center; Zipf-ish popularity.
  const double spine_angle = 0.5;  // ~29 degrees
  for (int h = 0; h < options.num_hotspots; ++h) {
    const double along = rng.NextGaussian(0.0, 0.22) * extent_y;
    const double across = rng.NextGaussian(0.0, 0.05) * extent_x;
    Hotspot spot;
    spot.center = {
        center.x + along * std::sin(spine_angle) + across * std::cos(spine_angle),
        center.y + along * std::cos(spine_angle) - across * std::sin(spine_angle)};
    spot.center.x = std::clamp(spot.center.x, options.bounds.min_x,
                               options.bounds.max_x);
    spot.center.y = std::clamp(spot.center.y, options.bounds.min_y,
                               options.bounds.max_y);
    spot.sigma_x = rng.NextDouble(120.0, 900.0);
    spot.sigma_y = rng.NextDouble(120.0, 900.0);
    spot.rotation = rng.NextDouble(0.0, M_PI);
    spot.weight = 1.0 / static_cast<double>(h + 1);  // Zipf(1)
    hotspots.push_back(spot);
  }
  return hotspots;
}

// Samples an index from unnormalized weights via inverse CDF.
std::size_t SampleIndex(const std::vector<double>& cdf, double total,
                        Rng& rng) {
  const double u = rng.NextDouble() * total;
  const auto it = std::upper_bound(cdf.begin(), cdf.end(), u);
  return std::min(static_cast<std::size_t>(it - cdf.begin()),
                  cdf.size() - 1);
}

}  // namespace

double TaxiHourWeight(int hour, bool weekday) {
  hour = ((hour % 24) + 24) % 24;
  return weekday ? kWeekdayHourly[hour] : kWeekendHourly[hour];
}

PointTable GenerateTaxiTrips(const TaxiGeneratorOptions& options) {
  Schema schema(std::vector<std::string>(
      kTaxiAttributeNames, kTaxiAttributeNames + 4));
  PointTable table(schema);
  table.Reserve(options.num_trips);

  Rng rng(options.seed);
  std::vector<Hotspot> hotspots = MakeHotspots(options, rng);
  std::vector<double> hotspot_cdf;
  double hotspot_total = 0.0;
  for (const Hotspot& h : hotspots) {
    hotspot_total += h.weight;
    hotspot_cdf.push_back(hotspot_total);
  }

  // Hour sampling: build per-day-type CDFs once.
  std::vector<double> weekday_cdf(24);
  std::vector<double> weekend_cdf(24);
  double weekday_total = 0.0;
  double weekend_total = 0.0;
  for (int h = 0; h < 24; ++h) {
    weekday_total += kWeekdayHourly[h];
    weekend_total += kWeekendHourly[h];
    weekday_cdf[static_cast<std::size_t>(h)] = weekday_total;
    weekend_cdf[static_cast<std::size_t>(h)] = weekend_total;
  }

  const std::int64_t num_days =
      std::max<std::int64_t>(1, options.duration_seconds / 86400);

  std::vector<float>& fare = table.mutable_attribute_column(0);
  std::vector<float>& distance = table.mutable_attribute_column(1);
  std::vector<float>& passengers = table.mutable_attribute_column(2);
  std::vector<float>& tip = table.mutable_attribute_column(3);
  fare.reserve(options.num_trips);
  distance.reserve(options.num_trips);
  passengers.reserve(options.num_trips);
  tip.reserve(options.num_trips);

  for (std::size_t i = 0; i < options.num_trips; ++i) {
    // --- location ---
    geometry::Vec2 p;
    if (rng.NextDouble() < options.hotspot_fraction && !hotspots.empty()) {
      const Hotspot& spot =
          hotspots[SampleIndex(hotspot_cdf, hotspot_total, rng)];
      for (int attempt = 0; attempt < 8; ++attempt) {
        const double gx = rng.NextGaussian() * spot.sigma_x;
        const double gy = rng.NextGaussian() * spot.sigma_y;
        const double c = std::cos(spot.rotation);
        const double s = std::sin(spot.rotation);
        p = {spot.center.x + gx * c - gy * s,
             spot.center.y + gx * s + gy * c};
        if (options.bounds.Contains(p)) break;
        p = spot.center;  // fallback if all attempts leave the city
      }
    } else {
      p = {rng.NextDouble(options.bounds.min_x, options.bounds.max_x),
           rng.NextDouble(options.bounds.min_y, options.bounds.max_y)};
    }

    // --- time ---
    const std::int64_t day = rng.NextInt(0, num_days - 1);
    // 2009-01-01 was a Thursday; day-of-week = (4 + day) % 7, 0 = Sunday.
    const int dow = static_cast<int>((4 + day) % 7);
    const bool weekday = dow >= 1 && dow <= 5;
    const std::size_t hour =
        weekday ? SampleIndex(weekday_cdf, weekday_total, rng)
                : SampleIndex(weekend_cdf, weekend_total, rng);
    const std::int64_t t = options.start_time + day * 86400 +
                           static_cast<std::int64_t>(hour) * 3600 +
                           rng.NextInt(0, 3599);

    // --- attributes ---
    // Trip distance: lognormal-ish, median ~1.8 miles, capped at 30.
    const double dist =
        std::min(30.0, std::exp(rng.NextGaussian(0.6, 0.7)));
    // 2009 fare structure: $2.50 flag drop + ~$2.4/mile + noise.
    const double fare_usd =
        std::max(2.5, 2.5 + 2.4 * dist + rng.NextGaussian(0.0, 1.0));
    const double tip_usd =
        rng.NextBool(0.55) ? fare_usd * rng.NextDouble(0.08, 0.30) : 0.0;
    const double r = rng.NextDouble();
    // Passenger counts: heavily skewed toward 1.
    int pax = 1;
    if (r > 0.70) pax = 2;
    if (r > 0.85) pax = 3;
    if (r > 0.92) pax = 4;
    if (r > 0.96) pax = 5;
    if (r > 0.99) pax = 6;

    table.AppendXyt(static_cast<float>(p.x), static_cast<float>(p.y), t);
    fare.push_back(static_cast<float>(fare_usd));
    distance.push_back(static_cast<float>(dist));
    passengers.push_back(static_cast<float>(pax));
    tip.push_back(static_cast<float>(tip_usd));
  }
  return table;
}

}  // namespace urbane::data
