#ifndef URBANE_DATA_SCHEMA_H_
#define URBANE_DATA_SCHEMA_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace urbane::data {

/// Schema of a spatio-temporal point data set: every table has the implicit
/// columns `x`, `y` (projected meters, float32 — matching the GPU pipeline's
/// vertex precision) and `t` (epoch seconds, int64), plus zero or more named
/// float32 attributes (fare, trip distance, complaint code, ...).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<std::string> attribute_names);

  /// Fails on duplicate or empty names, or names colliding with x/y/t.
  static StatusOr<Schema> Create(std::vector<std::string> attribute_names);

  std::size_t attribute_count() const { return names_.size(); }
  const std::vector<std::string>& attribute_names() const { return names_; }
  const std::string& attribute_name(std::size_t i) const { return names_[i]; }

  /// Index of the attribute, or -1 if absent.
  int AttributeIndex(const std::string& name) const;
  bool HasAttribute(const std::string& name) const {
    return AttributeIndex(name) >= 0;
  }

  bool operator==(const Schema& other) const { return names_ == other.names_; }

 private:
  std::vector<std::string> names_;
};

}  // namespace urbane::data

#endif  // URBANE_DATA_SCHEMA_H_
