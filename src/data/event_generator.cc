#include "data/event_generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/random.h"

namespace urbane::data {

namespace {

struct Cluster {
  geometry::Vec2 center;
  double sigma;
  double weight;
};

std::vector<Cluster> MakeClusters(const UrbanEventOptions& options,
                                  Rng& rng) {
  std::vector<Cluster> clusters;
  clusters.reserve(static_cast<std::size_t>(options.num_clusters));
  const bool concentrated = options.kind == UrbanEventKind::kCrimeIncidents;
  for (int c = 0; c < options.num_clusters; ++c) {
    Cluster cluster;
    cluster.center = {
        rng.NextDouble(options.bounds.min_x, options.bounds.max_x),
        rng.NextDouble(options.bounds.min_y, options.bounds.max_y)};
    cluster.sigma = concentrated ? rng.NextDouble(100.0, 600.0)
                                 : rng.NextDouble(400.0, 2500.0);
    cluster.weight = concentrated ? 1.0 / (c + 1.0) : rng.NextDouble(0.5, 1.5);
    clusters.push_back(cluster);
  }
  return clusters;
}

}  // namespace

PointTable GenerateUrbanEvents(const UrbanEventOptions& options) {
  const bool crime = options.kind == UrbanEventKind::kCrimeIncidents;
  Schema schema(crime
                    ? std::vector<std::string>{"severity", "indoor"}
                    : std::vector<std::string>{"category", "response_hours"});
  PointTable table(schema);
  table.Reserve(options.num_events);

  Rng rng(options.seed + (crime ? 0x9E37ULL : 0));
  std::vector<Cluster> clusters = MakeClusters(options, rng);
  std::vector<double> cdf;
  double total = 0.0;
  for (const Cluster& c : clusters) {
    total += c.weight;
    cdf.push_back(total);
  }

  std::vector<float>& attr0 = table.mutable_attribute_column(0);
  std::vector<float>& attr1 = table.mutable_attribute_column(1);
  attr0.reserve(options.num_events);
  attr1.reserve(options.num_events);

  for (std::size_t i = 0; i < options.num_events; ++i) {
    geometry::Vec2 p;
    if (rng.NextDouble() < 0.75 && !clusters.empty()) {
      const double u = rng.NextDouble() * total;
      const auto it = std::upper_bound(cdf.begin(), cdf.end(), u);
      const Cluster& cluster =
          clusters[std::min(static_cast<std::size_t>(it - cdf.begin()),
                            clusters.size() - 1)];
      p = {rng.NextGaussian(cluster.center.x, cluster.sigma),
           rng.NextGaussian(cluster.center.y, cluster.sigma)};
      p.x = std::clamp(p.x, options.bounds.min_x, options.bounds.max_x);
      p.y = std::clamp(p.y, options.bounds.min_y, options.bounds.max_y);
    } else {
      p = {rng.NextDouble(options.bounds.min_x, options.bounds.max_x),
           rng.NextDouble(options.bounds.min_y, options.bounds.max_y)};
    }

    std::int64_t offset = rng.NextInt(0, options.duration_seconds - 1);
    if (crime) {
      // Night-weighted: fold 60% of events into 20:00-04:00.
      if (rng.NextBool(0.6)) {
        const std::int64_t day = offset / 86400;
        const std::int64_t night_second =
            20 * 3600 + rng.NextInt(0, 8 * 3600 - 1);
        offset = day * 86400 + (night_second % 86400);
        offset = std::min(offset, options.duration_seconds - 1);
      }
    }
    const std::int64_t t = options.start_time + offset;
    table.AppendXyt(static_cast<float>(p.x), static_cast<float>(p.y), t);

    if (crime) {
      attr0.push_back(static_cast<float>(rng.NextInt(1, 5)));  // severity
      attr1.push_back(rng.NextBool(0.35) ? 1.0f : 0.0f);       // indoor
    } else {
      attr0.push_back(static_cast<float>(rng.NextInt(0, 19)));  // category
      attr1.push_back(
          static_cast<float>(std::min(720.0, rng.NextExponential(1.0 / 36.0))));
    }
  }
  return table;
}

}  // namespace urbane::data
