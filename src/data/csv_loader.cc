#include "data/csv_loader.h"

#include <vector>

#include "geometry/mercator.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace urbane::data {

StatusOr<PointTable> ReadPointTableCsv(const std::string& csv_text,
                                       const CsvPointOptions& options) {
  URBANE_ASSIGN_OR_RETURN(CsvDocument doc, ParseCsv(csv_text));
  const int x_col = doc.ColumnIndex(options.x_column);
  const int y_col = doc.ColumnIndex(options.y_column);
  const int t_col = doc.ColumnIndex(options.t_column);
  if (x_col < 0 || y_col < 0 || t_col < 0) {
    return Status::InvalidArgument(StringPrintf(
        "CSV is missing required columns '%s'/'%s'/'%s'",
        options.x_column.c_str(), options.y_column.c_str(),
        options.t_column.c_str()));
  }
  std::vector<std::string> attr_names;
  std::vector<int> attr_cols;
  for (std::size_t c = 0; c < doc.header.size(); ++c) {
    const int ci = static_cast<int>(c);
    if (ci == x_col || ci == y_col || ci == t_col) continue;
    attr_names.push_back(doc.header[c]);
    attr_cols.push_back(ci);
  }
  URBANE_ASSIGN_OR_RETURN(Schema schema, Schema::Create(attr_names));
  PointTable table(schema);
  table.Reserve(doc.rows.size());

  std::vector<float> attrs(attr_cols.size());
  for (std::size_t r = 0; r < doc.rows.size(); ++r) {
    const auto& row = doc.rows[r];
    const auto x = ParseDouble(row[static_cast<std::size_t>(x_col)]);
    const auto y = ParseDouble(row[static_cast<std::size_t>(y_col)]);
    const auto t = ParseInt64(row[static_cast<std::size_t>(t_col)]);
    if (!x.ok() || !y.ok() || !t.ok()) {
      if (options.skip_bad_rows) continue;
      return Status::InvalidArgument(
          StringPrintf("row %zu has unparseable x/y/t", r + 1));
    }
    bool attrs_ok = true;
    for (std::size_t a = 0; a < attr_cols.size(); ++a) {
      const auto v =
          ParseDouble(row[static_cast<std::size_t>(attr_cols[a])]);
      if (!v.ok()) {
        if (!options.skip_bad_rows) {
          return Status::InvalidArgument(StringPrintf(
              "row %zu attribute '%s' unparseable", r + 1,
              attr_names[a].c_str()));
        }
        attrs_ok = false;
        break;
      }
      attrs[a] = static_cast<float>(v.value());
    }
    if (!attrs_ok) continue;

    geometry::Vec2 p{x.value(), y.value()};
    if (options.project_lonlat_to_mercator) {
      p = geometry::LonLatToMercator({p.x, p.y});
    }
    URBANE_RETURN_IF_ERROR(table.AppendRow(
        static_cast<float>(p.x), static_cast<float>(p.y), t.value(), attrs));
  }
  return table;
}

StatusOr<PointTable> ReadPointTableCsvFile(const std::string& path,
                                           const CsvPointOptions& options) {
  URBANE_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  return ReadPointTableCsv(content, options);
}

std::string WritePointTableCsv(const PointTable& table) {
  CsvDocument doc;
  doc.header = {"x", "y", "t"};
  for (const std::string& name : table.schema().attribute_names()) {
    doc.header.push_back(name);
  }
  doc.rows.reserve(table.size());
  for (std::size_t i = 0; i < table.size(); ++i) {
    std::vector<std::string> row;
    row.reserve(doc.header.size());
    row.push_back(StringPrintf("%.9g", table.x(i)));
    row.push_back(StringPrintf("%.9g", table.y(i)));
    row.push_back(StringPrintf("%lld", static_cast<long long>(table.t(i))));
    for (std::size_t c = 0; c < table.schema().attribute_count(); ++c) {
      row.push_back(StringPrintf("%.9g", table.attribute(i, c)));
    }
    doc.rows.push_back(std::move(row));
  }
  return WriteCsv(doc);
}

Status WritePointTableCsvFile(const PointTable& table,
                              const std::string& path) {
  return WriteStringToFile(WritePointTableCsv(table), path);
}

}  // namespace urbane::data
