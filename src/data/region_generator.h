#ifndef URBANE_DATA_REGION_GENERATOR_H_
#define URBANE_DATA_REGION_GENERATOR_H_

#include <cstdint>
#include <string>

#include "data/region.h"
#include "geometry/bounding_box.h"
#include "geometry/mercator.h"

namespace urbane::data {

/// Synthetic polygonal tessellations standing in for NYC administrative
/// boundary files (boroughs / neighborhoods / census tracts).
///
/// The generator jitters a lattice and wiggles the shared cell edges with
/// *deterministic per-edge randomness* (seeded by the edge endpoints), so
/// adjacent cells reproduce the identical boundary polyline: the output is a
/// true partition of the bounding box — disjoint interiors, no gaps. That
/// invariant powers a key test: per-region COUNTs must sum to the total
/// point count.
struct TessellationOptions {
  int cells_x = 16;
  int cells_y = 16;
  std::uint64_t seed = 3;
  /// Lattice jitter as a fraction of cell size (interior vertices only).
  double jitter = 0.3;
  /// Extra vertices inserted per cell edge (polygon-complexity dial).
  int edge_subdivisions = 6;
  /// Perpendicular wiggle of edge midpoints, fraction of edge length.
  double edge_wiggle = 0.06;
  /// Probability that a cell gets a hole punched in it (a "park").
  double hole_probability = 0.0;
  geometry::BoundingBox bounds = geometry::NycMercatorBounds();
  std::string name_prefix = "NH";
};

/// Jittered-lattice tessellation; `cells_x * cells_y` regions.
RegionSet GenerateTessellation(const TessellationOptions& options);

/// ~256 neighborhood-scale regions (matches NYC's ~195 NTAs in count and
/// typical vertex complexity).
RegionSet GenerateNeighborhoods(std::uint64_t seed = 3);

/// 6 borough-scale regions.
RegionSet GenerateBoroughs(std::uint64_t seed = 3);

/// ~2116 census-tract-scale regions.
RegionSet GenerateCensusTracts(std::uint64_t seed = 3);

/// Independent star-convex polygons with `vertices_per_region` vertices —
/// possibly overlapping, arbitrary complexity; drives the F5
/// polygon-complexity sweep and exercises overlapping-region aggregation.
struct RandomRegionOptions {
  std::size_t count = 64;
  std::size_t vertices_per_region = 64;
  std::uint64_t seed = 11;
  geometry::BoundingBox bounds = geometry::NycMercatorBounds();
  /// Region radius range as a fraction of the world's smaller extent.
  double min_radius_fraction = 0.02;
  double max_radius_fraction = 0.10;
  /// Radial noise (0 = regular polygon, 0.5 = very spiky).
  double radial_noise = 0.35;
  std::string name_prefix = "R";
};

RegionSet GenerateRandomRegions(const RandomRegionOptions& options);

}  // namespace urbane::data

#endif  // URBANE_DATA_REGION_GENERATOR_H_
