#ifndef URBANE_DATA_CATALOG_H_
#define URBANE_DATA_CATALOG_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace urbane::data {

/// One entry of a workspace manifest: a named data set or region layer
/// stored at a path relative to the manifest file.
struct CatalogEntry {
  enum class Kind { kPoints, kRegions };
  Kind kind = Kind::kPoints;
  std::string name;
  std::string path;      // relative to the manifest's directory
  std::string format;    // "upt" | "csv" | "urg" | "geojson"
};

/// A workspace manifest ("urbane.workspace.json"): the deployment story for
/// a city's data sets — one JSON file enumerating every preprocessed feed
/// and boundary layer, so a session can be reopened with a single load.
class Catalog {
 public:
  Catalog() = default;

  Status Add(CatalogEntry entry);
  const std::vector<CatalogEntry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }

  /// Entry lookup by (kind, name); nullptr if absent.
  const CatalogEntry* Find(CatalogEntry::Kind kind,
                           const std::string& name) const;

  /// JSON serialization.
  std::string ToJson() const;
  static StatusOr<Catalog> FromJson(const std::string& json);

  Status WriteFile(const std::string& path) const;
  static StatusOr<Catalog> ReadFile(const std::string& path);

 private:
  std::vector<CatalogEntry> entries_;
};

/// Infers the storage format from a file extension
/// (".upt"/".csv"/".urg"/".geojson"); empty string if unknown.
std::string FormatFromPath(const std::string& path);

}  // namespace urbane::data

#endif  // URBANE_DATA_CATALOG_H_
