#ifndef URBANE_DATA_JSON_H_
#define URBANE_DATA_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "util/status.h"

namespace urbane::data {

/// Minimal JSON document model — just enough for GeoJSON and config files.
/// Objects keep insertion order (GeoJSON consumers often rely on it for
/// readability of round-tripped files).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}             // NOLINT
  JsonValue(bool b) : value_(b) {}                           // NOLINT
  JsonValue(double d) : value_(d) {}                         // NOLINT
  JsonValue(int i) : value_(static_cast<double>(i)) {}       // NOLINT
  JsonValue(std::int64_t i) : value_(static_cast<double>(i)) {}  // NOLINT
  JsonValue(const char* s) : value_(std::string(s)) {}       // NOLINT
  JsonValue(std::string s) : value_(std::move(s)) {}         // NOLINT
  JsonValue(Array a) : value_(std::move(a)) {}               // NOLINT
  JsonValue(Object o) : value_(std::move(o)) {}              // NOLINT

  Type type() const;
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_number() const { return type() == Type::kNumber; }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  bool AsBool() const { return std::get<bool>(value_); }
  double AsNumber() const { return std::get<double>(value_); }
  const std::string& AsString() const { return std::get<std::string>(value_); }
  const Array& AsArray() const { return std::get<Array>(value_); }
  Array& AsArray() { return std::get<Array>(value_); }
  const Object& AsObject() const { return std::get<Object>(value_); }
  Object& AsObject() { return std::get<Object>(value_); }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Appends/overwrites an object member.
  void Set(const std::string& key, JsonValue value);

  /// Serialization. `indent` < 0 produces compact output.
  std::string Dump(int indent = -1) const;

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      value_;
};

/// Parses a complete JSON document (trailing non-whitespace is an error).
StatusOr<JsonValue> ParseJson(const std::string& text);

}  // namespace urbane::data

#endif  // URBANE_DATA_JSON_H_
