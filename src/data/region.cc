#include "data/region.h"

#include "util/string_util.h"

namespace urbane::data {

Status RegionSet::Add(Region region) {
  if (region.geometry.empty()) {
    return Status::InvalidArgument("region '" + region.name +
                                   "' has empty geometry");
  }
  if (IndexOfId(region.id) >= 0) {
    return Status::AlreadyExists(
        StringPrintf("duplicate region id %lld",
                     static_cast<long long>(region.id)));
  }
  regions_.push_back(std::move(region));
  return Status::OK();
}

int RegionSet::IndexOfId(std::int64_t id) const {
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    if (regions_[i].id == id) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

geometry::BoundingBox RegionSet::Bounds() const {
  geometry::BoundingBox box;
  for (const Region& region : regions_) {
    box.Extend(region.geometry.Bounds());
  }
  return box;
}

std::size_t RegionSet::TotalVertexCount() const {
  std::size_t count = 0;
  for (const Region& region : regions_) {
    count += region.geometry.VertexCount();
  }
  return count;
}

std::vector<geometry::BoundingBox> RegionSet::RegionBounds() const {
  std::vector<geometry::BoundingBox> boxes;
  boxes.reserve(regions_.size());
  for (const Region& region : regions_) {
    boxes.push_back(region.geometry.Bounds());
  }
  return boxes;
}

void RegionSet::NormalizeAll() {
  for (Region& region : regions_) {
    region.geometry.Normalize();
  }
}

std::size_t RegionSet::MemoryBytes() const {
  std::size_t bytes = regions_.capacity() * sizeof(Region);
  for (const Region& region : regions_) {
    bytes += region.name.capacity();
    for (const geometry::Polygon& part : region.geometry.parts()) {
      bytes += part.outer().capacity() * sizeof(geometry::Vec2);
      for (const geometry::Ring& hole : part.holes()) {
        bytes += hole.capacity() * sizeof(geometry::Vec2);
      }
    }
  }
  return bytes;
}

}  // namespace urbane::data
