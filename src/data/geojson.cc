#include "data/geojson.h"

#include "data/json.h"
#include "geometry/mercator.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace urbane::data {

namespace {

StatusOr<geometry::Vec2> ParsePosition(const JsonValue& value,
                                       bool project) {
  if (!value.is_array() || value.AsArray().size() < 2 ||
      !value.AsArray()[0].is_number() || !value.AsArray()[1].is_number()) {
    return Status::InvalidArgument("GeoJSON position must be [x, y, ...]");
  }
  const double x = value.AsArray()[0].AsNumber();
  const double y = value.AsArray()[1].AsNumber();
  if (project) {
    return geometry::LonLatToMercator({x, y});
  }
  return geometry::Vec2{x, y};
}

StatusOr<geometry::Ring> ParseRing(const JsonValue& value, bool project) {
  if (!value.is_array()) {
    return Status::InvalidArgument("GeoJSON ring must be an array");
  }
  geometry::Ring ring;
  ring.reserve(value.AsArray().size());
  for (const JsonValue& pos : value.AsArray()) {
    URBANE_ASSIGN_OR_RETURN(geometry::Vec2 p, ParsePosition(pos, project));
    ring.push_back(p);
  }
  // GeoJSON rings repeat the first coordinate at the end; our rings are
  // implicitly closed.
  if (ring.size() >= 2 && ring.front() == ring.back()) {
    ring.pop_back();
  }
  if (ring.size() < 3) {
    return Status::InvalidArgument("GeoJSON ring has < 3 distinct vertices");
  }
  return ring;
}

StatusOr<geometry::Polygon> ParsePolygonCoords(const JsonValue& coords,
                                               bool project) {
  if (!coords.is_array() || coords.AsArray().empty()) {
    return Status::InvalidArgument("Polygon coordinates must be non-empty");
  }
  URBANE_ASSIGN_OR_RETURN(geometry::Ring outer,
                          ParseRing(coords.AsArray()[0], project));
  geometry::Polygon polygon(std::move(outer));
  for (std::size_t h = 1; h < coords.AsArray().size(); ++h) {
    URBANE_ASSIGN_OR_RETURN(geometry::Ring hole,
                            ParseRing(coords.AsArray()[h], project));
    polygon.add_hole(std::move(hole));
  }
  polygon.Normalize();
  return polygon;
}

}  // namespace

StatusOr<RegionSet> ReadGeoJsonRegions(const std::string& geojson_text,
                                       const GeoJsonReadOptions& options) {
  URBANE_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(geojson_text));
  const JsonValue* type = doc.Find("type");
  if (type == nullptr || !type->is_string() ||
      type->AsString() != "FeatureCollection") {
    return Status::InvalidArgument(
        "expected a GeoJSON FeatureCollection document");
  }
  const JsonValue* features = doc.Find("features");
  if (features == nullptr || !features->is_array()) {
    return Status::InvalidArgument("FeatureCollection lacks 'features' array");
  }

  RegionSet regions;
  std::int64_t next_id = 0;
  for (const JsonValue& feature : features->AsArray()) {
    const JsonValue* geom = feature.Find("geometry");
    if (geom == nullptr || !geom->is_object()) continue;
    const JsonValue* gtype = geom->Find("type");
    const JsonValue* coords = geom->Find("coordinates");
    if (gtype == nullptr || !gtype->is_string() || coords == nullptr) {
      continue;
    }

    geometry::MultiPolygon multi;
    if (gtype->AsString() == "Polygon") {
      URBANE_ASSIGN_OR_RETURN(
          geometry::Polygon poly,
          ParsePolygonCoords(*coords, options.project_lonlat_to_mercator));
      multi.add_part(std::move(poly));
    } else if (gtype->AsString() == "MultiPolygon") {
      if (!coords->is_array()) {
        return Status::InvalidArgument("MultiPolygon coordinates malformed");
      }
      for (const JsonValue& poly_coords : coords->AsArray()) {
        URBANE_ASSIGN_OR_RETURN(
            geometry::Polygon poly,
            ParsePolygonCoords(poly_coords,
                               options.project_lonlat_to_mercator));
        multi.add_part(std::move(poly));
      }
    } else {
      continue;  // points/lines are not regions
    }

    Region region;
    region.id = next_id;
    const JsonValue* props = feature.Find("properties");
    if (props != nullptr && props->is_object()) {
      const JsonValue* name = props->Find(options.name_property);
      if (name != nullptr && name->is_string()) {
        region.name = name->AsString();
      }
      const JsonValue* id = props->Find(options.id_property);
      if (id != nullptr && id->is_number()) {
        region.id = static_cast<std::int64_t>(id->AsNumber());
      }
    }
    if (region.name.empty()) {
      region.name = StringPrintf("region_%lld",
                                 static_cast<long long>(region.id));
    }
    region.geometry = std::move(multi);
    // Duplicate property ids fall back to sequential assignment rather than
    // rejecting the file.
    if (regions.IndexOfId(region.id) >= 0) {
      region.id = next_id;
    }
    URBANE_RETURN_IF_ERROR(regions.Add(std::move(region)));
    next_id = std::max<std::int64_t>(next_id + 1, regions.size());
  }
  return regions;
}

StatusOr<RegionSet> ReadGeoJsonRegionsFile(const std::string& path,
                                           const GeoJsonReadOptions& options) {
  URBANE_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  return ReadGeoJsonRegions(content, options);
}

namespace {

JsonValue RingToJson(const geometry::Ring& ring, bool unproject) {
  JsonValue::Array coords;
  coords.reserve(ring.size() + 1);
  auto emit = [&](const geometry::Vec2& p) {
    if (unproject) {
      const geometry::LonLat ll = geometry::MercatorToLonLat(p);
      coords.push_back(JsonValue(JsonValue::Array{ll.lon, ll.lat}));
    } else {
      coords.push_back(JsonValue(JsonValue::Array{p.x, p.y}));
    }
  };
  for (const geometry::Vec2& p : ring) emit(p);
  if (!ring.empty()) emit(ring.front());  // close the ring
  return JsonValue(std::move(coords));
}

JsonValue PolygonToJson(const geometry::Polygon& polygon, bool unproject) {
  JsonValue::Array rings;
  rings.push_back(RingToJson(polygon.outer(), unproject));
  for (const geometry::Ring& hole : polygon.holes()) {
    rings.push_back(RingToJson(hole, unproject));
  }
  return JsonValue(std::move(rings));
}

}  // namespace

std::string WriteGeoJsonRegions(const RegionSet& regions,
                                bool unproject_to_lonlat) {
  JsonValue::Array features;
  for (const Region& region : regions.regions()) {
    JsonValue geometry_json;
    if (region.geometry.parts().size() == 1) {
      geometry_json = JsonValue(JsonValue::Object{
          {"type", JsonValue("Polygon")},
          {"coordinates",
           PolygonToJson(region.geometry.parts()[0], unproject_to_lonlat)}});
    } else {
      JsonValue::Array polys;
      for (const geometry::Polygon& part : region.geometry.parts()) {
        polys.push_back(PolygonToJson(part, unproject_to_lonlat));
      }
      geometry_json = JsonValue(
          JsonValue::Object{{"type", JsonValue("MultiPolygon")},
                            {"coordinates", JsonValue(std::move(polys))}});
    }
    features.push_back(JsonValue(JsonValue::Object{
        {"type", JsonValue("Feature")},
        {"properties",
         JsonValue(JsonValue::Object{
             {"name", JsonValue(region.name)},
             {"id", JsonValue(static_cast<double>(region.id))}})},
        {"geometry", std::move(geometry_json)}}));
  }
  JsonValue doc(JsonValue::Object{
      {"type", JsonValue("FeatureCollection")},
      {"features", JsonValue(std::move(features))}});
  return doc.Dump(2);
}

}  // namespace urbane::data
