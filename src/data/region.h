#ifndef URBANE_DATA_REGION_H_
#define URBANE_DATA_REGION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/bounding_box.h"
#include "geometry/polygon.h"
#include "util/status.h"

namespace urbane::data {

/// One named region (neighborhood, census tract, zip code): id + geometry.
struct Region {
  std::int64_t id = 0;
  std::string name;
  geometry::MultiPolygon geometry;
};

/// An ordered collection of regions — the `R` side of the paper's
/// aggregation query. Region ids are unique; the *index* of a region in the
/// set is what aggregation results are keyed by.
class RegionSet {
 public:
  RegionSet() = default;

  /// Fails on duplicate ids or empty geometries.
  Status Add(Region region);

  std::size_t size() const { return regions_.size(); }
  bool empty() const { return regions_.empty(); }
  const Region& operator[](std::size_t i) const { return regions_[i]; }
  const std::vector<Region>& regions() const { return regions_; }

  /// Index of the region with this id, or -1.
  int IndexOfId(std::int64_t id) const;

  /// Union of all region bounds.
  geometry::BoundingBox Bounds() const;

  /// Total vertex count over all regions (polygon-complexity metric used by
  /// the F5 experiment).
  std::size_t TotalVertexCount() const;

  /// One bounding box per region, in order (feeds the R-tree).
  std::vector<geometry::BoundingBox> RegionBounds() const;

  /// Normalizes every polygon's ring orientation.
  void NormalizeAll();

  std::size_t MemoryBytes() const;

 private:
  std::vector<Region> regions_;
};

}  // namespace urbane::data

#endif  // URBANE_DATA_REGION_H_
