#ifndef URBANE_DATA_GEOJSON_H_
#define URBANE_DATA_GEOJSON_H_

#include <string>

#include "data/region.h"
#include "util/status.h"

namespace urbane::data {

/// Options controlling how GeoJSON features map onto regions.
struct GeoJsonReadOptions {
  /// Feature property carrying the region name (falls back to "name").
  std::string name_property = "name";
  /// Feature property carrying a numeric id; when absent ids are assigned
  /// by feature order.
  std::string id_property = "id";
  /// When true, coordinates are WGS84 lon/lat and get projected to Web
  /// Mercator meters (the library's working CRS). When false they are taken
  /// as already-projected planar coordinates.
  bool project_lonlat_to_mercator = true;
};

/// Parses a GeoJSON FeatureCollection of Polygon / MultiPolygon features
/// into a RegionSet. Non-polygonal features are skipped; rings are
/// normalized (outer CCW, holes CW). This is how users feed real
/// NYC Open Data boundary files to the library.
StatusOr<RegionSet> ReadGeoJsonRegions(
    const std::string& geojson_text,
    const GeoJsonReadOptions& options = GeoJsonReadOptions());

/// File variant of ReadGeoJsonRegions.
StatusOr<RegionSet> ReadGeoJsonRegionsFile(
    const std::string& path,
    const GeoJsonReadOptions& options = GeoJsonReadOptions());

/// Serializes a RegionSet back to a GeoJSON FeatureCollection. When
/// `unproject_to_lonlat` is set, coordinates are converted from Mercator
/// meters back to lon/lat degrees.
std::string WriteGeoJsonRegions(const RegionSet& regions,
                                bool unproject_to_lonlat = true);

}  // namespace urbane::data

#endif  // URBANE_DATA_GEOJSON_H_
