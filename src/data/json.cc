#include "data/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/string_util.h"

namespace urbane::data {

JsonValue::Type JsonValue::type() const {
  switch (value_.index()) {
    case 0:
      return Type::kNull;
    case 1:
      return Type::kBool;
    case 2:
      return Type::kNumber;
    case 3:
      return Type::kString;
    case 4:
      return Type::kArray;
    default:
      return Type::kObject;
  }
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) {
    return nullptr;
  }
  for (const auto& [k, v] : AsObject()) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

void JsonValue::Set(const std::string& key, JsonValue value) {
  if (!is_object()) {
    value_ = Object{};
  }
  for (auto& [k, v] : AsObject()) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  AsObject().emplace_back(key, std::move(value));
}

namespace {

void DumpString(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void DumpNumber(std::string& out, double d) {
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 1e15) {
    out += StringPrintf("%lld", static_cast<long long>(d));
  } else if (std::isfinite(d)) {
    out += StringPrintf("%.17g", d);
  } else {
    out += "null";  // JSON has no NaN/Inf
  }
}

void Newline(std::string& out, int indent, int depth) {
  if (indent >= 0) {
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent) * depth, ' ');
  }
}

}  // namespace

void JsonValue::DumpTo(std::string& out, int indent, int depth) const {
  switch (type()) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += AsBool() ? "true" : "false";
      break;
    case Type::kNumber:
      DumpNumber(out, AsNumber());
      break;
    case Type::kString:
      DumpString(out, AsString());
      break;
    case Type::kArray: {
      const Array& arr = AsArray();
      if (arr.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < arr.size(); ++i) {
        if (i > 0) out.push_back(',');
        Newline(out, indent, depth + 1);
        arr[i].DumpTo(out, indent, depth + 1);
      }
      Newline(out, indent, depth);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      const Object& obj = AsObject();
      if (obj.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < obj.size(); ++i) {
        if (i > 0) out.push_back(',');
        Newline(out, indent, depth + 1);
        DumpString(out, obj[i].first);
        out.push_back(':');
        if (indent >= 0) out.push_back(' ');
        obj[i].second.DumpTo(out, indent, depth + 1);
      }
      Newline(out, indent, depth);
      out.push_back('}');
      break;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> ParseDocument() {
    SkipWhitespace();
    URBANE_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 256;

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        StringPrintf("JSON parse error at byte %zu: %s", pos_,
                     message.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    std::size_t len = 0;
    while (literal[len] != '\0') ++len;
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  StatusOr<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) {
      return Error("nesting too deep");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    const char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      URBANE_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue(std::move(s));
    }
    if (ConsumeLiteral("true")) return JsonValue(true);
    if (ConsumeLiteral("false")) return JsonValue(false);
    if (ConsumeLiteral("null")) return JsonValue(nullptr);
    return ParseNumber();
  }

  StatusOr<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    JsonValue::Object obj;
    SkipWhitespace();
    if (Consume('}')) {
      return JsonValue(std::move(obj));
    }
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      URBANE_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) {
        return Error("expected ':' after object key");
      }
      URBANE_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      obj.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Error("expected ',' or '}' in object");
    }
    return JsonValue(std::move(obj));
  }

  StatusOr<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    JsonValue::Array arr;
    SkipWhitespace();
    if (Consume(']')) {
      return JsonValue(std::move(arr));
    }
    for (;;) {
      URBANE_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      arr.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Error("expected ',' or ']' in array");
    }
    return JsonValue(std::move(arr));
  }

  StatusOr<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Error("truncated \\u escape");
          }
          unsigned int code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("invalid hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported —
          // GeoJSON property strings in this repo are ASCII).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
    return Error("unterminated string");
  }

  StatusOr<JsonValue> ParseNumber() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Error("expected a value");
    }
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc() || ptr != text_.data() + pos_) {
      return Error("malformed number");
    }
    return JsonValue(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

StatusOr<JsonValue> ParseJson(const std::string& text) {
  Parser parser(text);
  return parser.ParseDocument();
}

}  // namespace urbane::data
