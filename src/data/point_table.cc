#include "data/point_table.h"

#include "util/string_util.h"

namespace urbane::data {

PointTable::PointTable(Schema schema) : schema_(std::move(schema)) {
  attributes_.resize(schema_.attribute_count());
}

void PointTable::Reserve(std::size_t capacity) {
  xs_.reserve(capacity);
  ys_.reserve(capacity);
  ts_.reserve(capacity);
  for (auto& col : attributes_) {
    col.reserve(capacity);
  }
}

Status PointTable::AppendRow(float x, float y, std::int64_t t,
                             const std::vector<float>& attributes) {
  if (attributes.size() != schema_.attribute_count()) {
    return Status::InvalidArgument(StringPrintf(
        "row has %zu attributes, schema expects %zu", attributes.size(),
        schema_.attribute_count()));
  }
  xs_.push_back(x);
  ys_.push_back(y);
  ts_.push_back(t);
  for (std::size_t c = 0; c < attributes.size(); ++c) {
    attributes_[c].push_back(attributes[c]);
  }
  return Status::OK();
}

void PointTable::AppendXyt(float x, float y, std::int64_t t) {
  xs_.push_back(x);
  ys_.push_back(y);
  ts_.push_back(t);
}

const std::vector<float>* PointTable::AttributeByName(
    const std::string& name) const {
  const int col = schema_.AttributeIndex(name);
  if (col < 0) {
    return nullptr;
  }
  return &attributes_[static_cast<std::size_t>(col)];
}

geometry::BoundingBox PointTable::Bounds() const {
  geometry::BoundingBox box;
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    box.Extend({xs_[i], ys_[i]});
  }
  return box;
}

std::pair<std::int64_t, std::int64_t> PointTable::TimeRange() const {
  if (ts_.empty()) {
    return {0, 0};
  }
  std::int64_t lo = ts_.front();
  std::int64_t hi = ts_.front();
  for (const std::int64_t t : ts_) {
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  return {lo, hi};
}

Status PointTable::Validate() const {
  if (ys_.size() != xs_.size() || ts_.size() != xs_.size()) {
    return Status::Internal("x/y/t column lengths disagree");
  }
  for (std::size_t c = 0; c < attributes_.size(); ++c) {
    if (attributes_[c].size() != xs_.size()) {
      return Status::Internal(StringPrintf(
          "attribute column '%s' has %zu rows, table has %zu",
          schema_.attribute_name(c).c_str(), attributes_[c].size(),
          xs_.size()));
    }
  }
  return Status::OK();
}

std::size_t PointTable::MemoryBytes() const {
  std::size_t bytes = xs_.capacity() * sizeof(float) +
                      ys_.capacity() * sizeof(float) +
                      ts_.capacity() * sizeof(std::int64_t);
  for (const auto& col : attributes_) {
    bytes += col.capacity() * sizeof(float);
  }
  return bytes;
}

}  // namespace urbane::data
