#include "data/point_table.h"

#include <algorithm>

#include "util/string_util.h"

namespace urbane::data {

PointTable::PointTable(Schema schema) : schema_(std::move(schema)) {
  attributes_.resize(schema_.attribute_count());
}

StatusOr<PointTable> PointTable::View(Schema schema, const float* xs,
                                      const float* ys, const std::int64_t* ts,
                                      std::vector<const float*> attributes,
                                      std::size_t size) {
  if (attributes.size() != schema.attribute_count()) {
    return Status::InvalidArgument(StringPrintf(
        "view has %zu attribute columns, schema expects %zu",
        attributes.size(), schema.attribute_count()));
  }
  if (size > 0) {
    if (xs == nullptr || ys == nullptr || ts == nullptr) {
      return Status::InvalidArgument("view with null x/y/t columns");
    }
    for (const float* col : attributes) {
      if (col == nullptr) {
        return Status::InvalidArgument("view with null attribute column");
      }
    }
  }
  PointTable table;
  table.schema_ = std::move(schema);
  table.is_view_ = true;
  table.view_size_ = size;
  table.view_xs_ = xs;
  table.view_ys_ = ys;
  table.view_ts_ = ts;
  table.view_attributes_ = std::move(attributes);
  return table;
}

void PointTable::Reserve(std::size_t capacity) {
  xs_.reserve(capacity);
  ys_.reserve(capacity);
  ts_.reserve(capacity);
  for (auto& col : attributes_) {
    col.reserve(capacity);
  }
}

Status PointTable::AppendRow(float x, float y, std::int64_t t,
                             const std::vector<float>& attributes) {
  if (is_view_) {
    return Status::FailedPrecondition("cannot append to a PointTable view");
  }
  if (attributes.size() != schema_.attribute_count()) {
    return Status::InvalidArgument(StringPrintf(
        "row has %zu attributes, schema expects %zu", attributes.size(),
        schema_.attribute_count()));
  }
  xs_.push_back(x);
  ys_.push_back(y);
  ts_.push_back(t);
  for (std::size_t c = 0; c < attributes.size(); ++c) {
    attributes_[c].push_back(attributes[c]);
  }
  return Status::OK();
}

void PointTable::AppendXyt(float x, float y, std::int64_t t) {
  xs_.push_back(x);
  ys_.push_back(y);
  ts_.push_back(t);
}

const float* PointTable::AttributeByName(const std::string& name) const {
  const int col = schema_.AttributeIndex(name);
  if (col < 0) {
    return nullptr;
  }
  return attribute_data(static_cast<std::size_t>(col));
}

geometry::BoundingBox PointTable::Bounds() const {
  if (has_cached_extents_) {
    return cached_bounds_;
  }
  geometry::BoundingBox box;
  const float* px = xs();
  const float* py = ys();
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    box.Extend({px[i], py[i]});
  }
  return box;
}

std::pair<std::int64_t, std::int64_t> PointTable::TimeRange() const {
  if (has_cached_extents_) {
    return cached_time_range_;
  }
  const std::int64_t* pt = ts();
  const std::size_t n = size();
  if (n == 0) {
    return {0, 0};
  }
  std::int64_t lo = pt[0];
  std::int64_t hi = pt[0];
  for (std::size_t i = 1; i < n; ++i) {
    lo = std::min(lo, pt[i]);
    hi = std::max(hi, pt[i]);
  }
  return {lo, hi};
}

void PointTable::SetCachedExtents(
    const geometry::BoundingBox& bounds,
    std::pair<std::int64_t, std::int64_t> time_range) {
  has_cached_extents_ = true;
  cached_bounds_ = bounds;
  cached_time_range_ = time_range;
}

Status PointTable::Validate() const {
  if (is_view_) {
    if (view_attributes_.size() != schema_.attribute_count()) {
      return Status::Internal("view attribute arity disagrees with schema");
    }
    if (view_size_ > 0 &&
        (view_xs_ == nullptr || view_ys_ == nullptr || view_ts_ == nullptr)) {
      return Status::Internal("non-empty view with null columns");
    }
    return Status::OK();
  }
  if (ys_.size() != xs_.size() || ts_.size() != xs_.size()) {
    return Status::Internal("x/y/t column lengths disagree");
  }
  for (std::size_t c = 0; c < attributes_.size(); ++c) {
    if (attributes_[c].size() != xs_.size()) {
      return Status::Internal(StringPrintf(
          "attribute column '%s' has %zu rows, table has %zu",
          schema_.attribute_name(c).c_str(), attributes_[c].size(),
          xs_.size()));
    }
  }
  return Status::OK();
}

std::size_t PointTable::MemoryBytes() const {
  std::size_t bytes = xs_.capacity() * sizeof(float) +
                      ys_.capacity() * sizeof(float) +
                      ts_.capacity() * sizeof(std::int64_t);
  for (const auto& col : attributes_) {
    bytes += col.capacity() * sizeof(float);
  }
  // A view owns only its pointer array; the columns belong to the store.
  bytes += view_attributes_.capacity() * sizeof(const float*);
  return bytes;
}

}  // namespace urbane::data
