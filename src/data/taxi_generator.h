#ifndef URBANE_DATA_TAXI_GENERATOR_H_
#define URBANE_DATA_TAXI_GENERATOR_H_

#include <cstdint>

#include "data/point_table.h"
#include "geometry/bounding_box.h"
#include "geometry/mercator.h"

namespace urbane::data {

/// Configuration for the synthetic NYC-taxi feed.
///
/// The real evaluation data (NYC TLC trip records) is not redistributable /
/// available offline, so this generator reproduces the workload properties
/// the spatial-aggregation algorithms are sensitive to:
///  * heavy spatial skew — a Zipf-weighted mixture of Gaussian hotspots laid
///    out along a Manhattan-like diagonal spine, plus a uniform background;
///  * temporal periodicity — diurnal demand curve with rush-hour peaks and a
///    weekday/weekend split;
///  * correlated attributes — fare grows with trip distance, tips are a
///    fraction of fare, passenger counts are small-integer skewed.
struct TaxiGeneratorOptions {
  std::size_t num_trips = 1'000'000;
  std::uint64_t seed = 42;
  /// 2009-01-01 00:00:00 UTC — the month shown in the paper's Figure 1.
  std::int64_t start_time = 1230768000;
  std::int64_t duration_seconds = 31LL * 24 * 3600;
  geometry::BoundingBox bounds = geometry::NycMercatorBounds();
  int num_hotspots = 24;
  /// Fraction of trips drawn from the hotspot mixture (rest uniform).
  double hotspot_fraction = 0.85;
};

/// Attribute columns of the generated table, in schema order.
/// {fare_amount, trip_distance, passenger_count, tip_amount}
extern const char* const kTaxiAttributeNames[4];

/// Generates the synthetic taxi pickup table.
PointTable GenerateTaxiTrips(const TaxiGeneratorOptions& options);

/// Relative demand weight for an hour-of-day (0-23) and weekday flag;
/// exposed so tests can verify the generated temporal profile matches.
double TaxiHourWeight(int hour, bool weekday);

}  // namespace urbane::data

#endif  // URBANE_DATA_TAXI_GENERATOR_H_
