#include "data/catalog.h"

#include "data/json.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace urbane::data {

namespace {

const char* KindToString(CatalogEntry::Kind kind) {
  return kind == CatalogEntry::Kind::kPoints ? "points" : "regions";
}

StatusOr<CatalogEntry::Kind> KindFromString(const std::string& text) {
  if (text == "points") return CatalogEntry::Kind::kPoints;
  if (text == "regions") return CatalogEntry::Kind::kRegions;
  return Status::InvalidArgument("unknown catalog entry kind: " + text);
}

constexpr const char* kValidFormats[] = {"upt", "csv", "urg", "geojson"};

bool IsValidFormat(const std::string& format) {
  for (const char* valid : kValidFormats) {
    if (format == valid) return true;
  }
  return false;
}

}  // namespace

std::string FormatFromPath(const std::string& path) {
  for (const char* format : kValidFormats) {
    if (EndsWith(path, std::string(".") + format)) {
      return format;
    }
  }
  return "";
}

Status Catalog::Add(CatalogEntry entry) {
  if (entry.name.empty() || entry.path.empty()) {
    return Status::InvalidArgument("catalog entries need a name and a path");
  }
  if (entry.format.empty()) {
    entry.format = FormatFromPath(entry.path);
  }
  if (!IsValidFormat(entry.format)) {
    return Status::InvalidArgument("unknown catalog format for " +
                                   entry.path);
  }
  const bool points_format =
      entry.format == "upt" || entry.format == "csv";
  if (points_format != (entry.kind == CatalogEntry::Kind::kPoints)) {
    return Status::InvalidArgument(
        "format '" + entry.format + "' does not match entry kind");
  }
  if (Find(entry.kind, entry.name) != nullptr) {
    return Status::AlreadyExists("duplicate catalog entry: " + entry.name);
  }
  entries_.push_back(std::move(entry));
  return Status::OK();
}

const CatalogEntry* Catalog::Find(CatalogEntry::Kind kind,
                                  const std::string& name) const {
  for (const CatalogEntry& entry : entries_) {
    if (entry.kind == kind && entry.name == name) {
      return &entry;
    }
  }
  return nullptr;
}

std::string Catalog::ToJson() const {
  JsonValue::Array items;
  for (const CatalogEntry& entry : entries_) {
    items.push_back(JsonValue(JsonValue::Object{
        {"kind", JsonValue(KindToString(entry.kind))},
        {"name", JsonValue(entry.name)},
        {"path", JsonValue(entry.path)},
        {"format", JsonValue(entry.format)}}));
  }
  JsonValue doc(JsonValue::Object{{"version", JsonValue(1)},
                                  {"entries", JsonValue(std::move(items))}});
  return doc.Dump(2);
}

StatusOr<Catalog> Catalog::FromJson(const std::string& json) {
  URBANE_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(json));
  const JsonValue* version = doc.Find("version");
  if (version == nullptr || !version->is_number() ||
      version->AsNumber() != 1.0) {
    return Status::InvalidArgument("unsupported workspace manifest version");
  }
  const JsonValue* entries = doc.Find("entries");
  if (entries == nullptr || !entries->is_array()) {
    return Status::InvalidArgument("manifest lacks 'entries' array");
  }
  Catalog catalog;
  for (const JsonValue& item : entries->AsArray()) {
    const JsonValue* kind = item.Find("kind");
    const JsonValue* name = item.Find("name");
    const JsonValue* path = item.Find("path");
    const JsonValue* format = item.Find("format");
    if (kind == nullptr || !kind->is_string() || name == nullptr ||
        !name->is_string() || path == nullptr || !path->is_string()) {
      return Status::InvalidArgument("malformed manifest entry");
    }
    CatalogEntry entry;
    URBANE_ASSIGN_OR_RETURN(entry.kind, KindFromString(kind->AsString()));
    entry.name = name->AsString();
    entry.path = path->AsString();
    if (format != nullptr && format->is_string()) {
      entry.format = format->AsString();
    }
    URBANE_RETURN_IF_ERROR(catalog.Add(std::move(entry)));
  }
  return catalog;
}

Status Catalog::WriteFile(const std::string& path) const {
  return WriteStringToFile(ToJson(), path);
}

StatusOr<Catalog> Catalog::ReadFile(const std::string& path) {
  URBANE_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  return FromJson(content);
}

}  // namespace urbane::data
