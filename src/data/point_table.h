#ifndef URBANE_DATA_POINT_TABLE_H_
#define URBANE_DATA_POINT_TABLE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "data/schema.h"
#include "geometry/bounding_box.h"
#include "util/status.h"

namespace urbane::data {

/// Columnar store for a spatio-temporal point data set (taxi pickups, 311
/// complaints, crime incidents, ...). Column-major layout mirrors the GPU
/// vertex-buffer representation Raster Join consumes: contiguous float32
/// x/y arrays stream straight into the splatting stage.
///
/// A table is either *owning* (the default: appendable, backed by vectors)
/// or a *view* (borrowed column pointers, e.g. into an mmap'ed store file).
/// Views are immutable and do not outlive the memory they borrow; every
/// read accessor behaves identically in both modes, so executors are
/// oblivious to where the columns live.
class PointTable {
 public:
  PointTable() = default;
  explicit PointTable(Schema schema);

  /// Wraps borrowed columns (length `size` each, one pointer per schema
  /// attribute) without copying. The caller keeps the backing memory alive
  /// for the lifetime of the view and of anything derived from it.
  static StatusOr<PointTable> View(Schema schema, const float* xs,
                                   const float* ys, const std::int64_t* ts,
                                   std::vector<const float*> attributes,
                                   std::size_t size);

  bool is_view() const { return is_view_; }

  const Schema& schema() const { return schema_; }
  std::size_t size() const { return is_view_ ? view_size_ : xs_.size(); }
  bool empty() const { return size() == 0; }

  void Reserve(std::size_t capacity);

  /// Appends one event. `attributes` must match the schema's arity.
  /// FailedPrecondition on a view.
  Status AppendRow(float x, float y, std::int64_t t,
                   const std::vector<float>& attributes);

  /// Unchecked fast-path append used by the generators (attribute columns
  /// are filled separately via mutable_attribute_column). Owning mode only.
  void AppendXyt(float x, float y, std::int64_t t);

  const float* xs() const { return is_view_ ? view_xs_ : xs_.data(); }
  const float* ys() const { return is_view_ ? view_ys_ : ys_.data(); }
  const std::int64_t* ts() const { return is_view_ ? view_ts_ : ts_.data(); }

  float x(std::size_t i) const { return xs()[i]; }
  float y(std::size_t i) const { return ys()[i]; }
  std::int64_t t(std::size_t i) const { return ts()[i]; }

  /// Attribute column by index (dense float32 array of length size()).
  const float* attribute_data(std::size_t col) const {
    return is_view_ ? view_attributes_[col] : attributes_[col].data();
  }
  /// Owning mode only; prefer attribute_data(), which also works on views.
  const std::vector<float>& attribute_column(std::size_t col) const {
    return attributes_[col];
  }
  /// Owning mode only (the generators fill columns in place).
  std::vector<float>& mutable_attribute_column(std::size_t col) {
    return attributes_[col];
  }

  /// Attribute column by name; nullptr if the name is unknown.
  const float* AttributeByName(const std::string& name) const;

  float attribute(std::size_t row, std::size_t col) const {
    return attribute_data(col)[row];
  }

  /// Spatial extent of all points. O(n) unless cached extents were set
  /// (store-backed views derive them from the block zone maps).
  geometry::BoundingBox Bounds() const;

  /// [min_t, max_t] over all points; {0, 0} when empty.
  std::pair<std::int64_t, std::int64_t> TimeRange() const;

  /// Installs precomputed extents so Bounds()/TimeRange() skip their O(n)
  /// scans. The values must equal what the scans would produce (the store
  /// oracle test checks this bit-exactly); mutating the table afterwards
  /// is unsupported.
  void SetCachedExtents(const geometry::BoundingBox& bounds,
                        std::pair<std::int64_t, std::int64_t> time_range);

  /// Consistency check: every column has length size().
  Status Validate() const;

  std::size_t MemoryBytes() const;

 private:
  Schema schema_;
  std::vector<float> xs_;
  std::vector<float> ys_;
  std::vector<std::int64_t> ts_;
  std::vector<std::vector<float>> attributes_;  // one vector per attribute

  // View mode: borrowed columns (is_view_ true, owning vectors empty).
  bool is_view_ = false;
  std::size_t view_size_ = 0;
  const float* view_xs_ = nullptr;
  const float* view_ys_ = nullptr;
  const std::int64_t* view_ts_ = nullptr;
  std::vector<const float*> view_attributes_;

  bool has_cached_extents_ = false;
  geometry::BoundingBox cached_bounds_;
  std::pair<std::int64_t, std::int64_t> cached_time_range_{0, 0};
};

}  // namespace urbane::data

#endif  // URBANE_DATA_POINT_TABLE_H_
