#ifndef URBANE_DATA_POINT_TABLE_H_
#define URBANE_DATA_POINT_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/schema.h"
#include "geometry/bounding_box.h"
#include "util/status.h"

namespace urbane::data {

/// Columnar store for a spatio-temporal point data set (taxi pickups, 311
/// complaints, crime incidents, ...). Column-major layout mirrors the GPU
/// vertex-buffer representation Raster Join consumes: contiguous float32
/// x/y arrays stream straight into the splatting stage.
class PointTable {
 public:
  PointTable() = default;
  explicit PointTable(Schema schema);

  const Schema& schema() const { return schema_; }
  std::size_t size() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }

  void Reserve(std::size_t capacity);

  /// Appends one event. `attributes` must match the schema's arity.
  Status AppendRow(float x, float y, std::int64_t t,
                   const std::vector<float>& attributes);

  /// Unchecked fast-path append used by the generators (attribute columns
  /// are filled separately via mutable_attribute_column).
  void AppendXyt(float x, float y, std::int64_t t);

  const float* xs() const { return xs_.data(); }
  const float* ys() const { return ys_.data(); }
  const std::int64_t* ts() const { return ts_.data(); }

  float x(std::size_t i) const { return xs_[i]; }
  float y(std::size_t i) const { return ys_[i]; }
  std::int64_t t(std::size_t i) const { return ts_[i]; }

  /// Attribute column by index (dense float32 array of length size()).
  const std::vector<float>& attribute_column(std::size_t col) const {
    return attributes_[col];
  }
  std::vector<float>& mutable_attribute_column(std::size_t col) {
    return attributes_[col];
  }

  /// Attribute column by name; nullptr if the name is unknown.
  const std::vector<float>* AttributeByName(const std::string& name) const;

  float attribute(std::size_t row, std::size_t col) const {
    return attributes_[col][row];
  }

  /// Spatial extent of all points.
  geometry::BoundingBox Bounds() const;

  /// [min_t, max_t] over all points; {0, 0} when empty.
  std::pair<std::int64_t, std::int64_t> TimeRange() const;

  /// Consistency check: every column has length size().
  Status Validate() const;

  std::size_t MemoryBytes() const;

 private:
  Schema schema_;
  std::vector<float> xs_;
  std::vector<float> ys_;
  std::vector<std::int64_t> ts_;
  std::vector<std::vector<float>> attributes_;  // one vector per attribute
};

}  // namespace urbane::data

#endif  // URBANE_DATA_POINT_TABLE_H_
