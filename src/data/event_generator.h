#ifndef URBANE_DATA_EVENT_GENERATOR_H_
#define URBANE_DATA_EVENT_GENERATOR_H_

#include <cstdint>

#include "data/point_table.h"
#include "geometry/bounding_box.h"
#include "geometry/mercator.h"

namespace urbane::data {

/// Families of synthetic urban event feeds beyond taxis — stand-ins for the
/// NYC 311-complaint and crime data sets Urbane's exploration view compares
/// region-by-region.
enum class UrbanEventKind {
  /// 311 service requests: broadly spread, residential-weighted, with a
  /// `category` code and a `response_hours` attribute.
  kServiceRequests311,
  /// Crime incidents: more concentrated mixture with a `severity` attribute
  /// and night-weighted temporal profile.
  kCrimeIncidents,
};

struct UrbanEventOptions {
  UrbanEventKind kind = UrbanEventKind::kServiceRequests311;
  std::size_t num_events = 250'000;
  std::uint64_t seed = 7;
  std::int64_t start_time = 1230768000;  // 2009-01-01
  std::int64_t duration_seconds = 31LL * 24 * 3600;
  geometry::BoundingBox bounds = geometry::NycMercatorBounds();
  int num_clusters = 40;
};

/// Schema: kServiceRequests311 -> {category, response_hours};
/// kCrimeIncidents -> {severity, indoor}.
PointTable GenerateUrbanEvents(const UrbanEventOptions& options);

}  // namespace urbane::data

#endif  // URBANE_DATA_EVENT_GENERATOR_H_
