#ifndef URBANE_SERVER_QUERY_BACKEND_H_
#define URBANE_SERVER_QUERY_BACKEND_H_

// The server's view of the query engine.
//
// QueryServer deliberately does not depend on app::DatasetManager (that
// would create a cycle: the CLI that embeds the server lives in the same
// library as the manager). Instead the app layer hands the server this
// narrow interface; src/urbane/server_backend.* adapts DatasetManager to
// it. Implementations must be safe for concurrent calls — the server
// invokes ExecuteSql from N worker threads at once.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/planner.h"
#include "core/query.h"
#include "data/point_table.h"
#include "util/status.h"

namespace urbane::obs {
struct QueryProfile;
}  // namespace urbane::obs

namespace urbane::server {

/// One region's aggregate in a query result, already joined with the
/// region's identity (results inside the engine are keyed by position).
struct RegionRow {
  std::int64_t id = 0;
  std::string name;
  double value = 0.0;
  std::uint64_t count = 0;
  /// Bounded-raster error bound; meaningful only when `has_error_bound`.
  double error_bound = 0.0;
  bool has_error_bound = false;
};

/// A fully-bound query result plus the identity needed to render it.
struct BackendResult {
  std::string dataset;
  std::string regions_layer;
  /// Executor that produced the rows ("scan", "index", ...).
  std::string method;
  bool exact = true;
  std::vector<RegionRow> rows;
  /// As-of position the result is exact for; set only when the data set is
  /// a live (appendable) one. Rendered as "watermark" in urbane.result.v1.
  std::optional<std::uint64_t> watermark;
};

/// A registered point data set or region layer, for the catalog endpoints.
struct CatalogEntry {
  std::string name;
  std::uint64_t size = 0;  // points or regions
};

/// A parsed POST /v1/ingest body: one batch of rows bound for a live data
/// set. The batch's schema carries positional attribute names; backends
/// validate arity against the target's schema, not names.
struct IngestRequest {
  std::string dataset;
  data::PointTable batch;
};

struct IngestResponse {
  /// Total visible rows after the append — every later query at or above
  /// this watermark sees the batch.
  std::uint64_t watermark = 0;
  std::uint64_t rows_appended = 0;
};

class QueryBackend {
 public:
  virtual ~QueryBackend() = default;

  /// Parses and executes one statement. An unset `method` means "auto"
  /// (the planner decides). `control` (borrowed, may be null) carries the
  /// request deadline; executors poll it between passes. A non-null
  /// `profile` (borrowed, see obs/profile.h) collects the per-request
  /// resource breakdown — implementations attach it to the query so the
  /// engine fills it in.
  virtual StatusOr<BackendResult> ExecuteSql(
      const std::string& sql, std::optional<core::ExecutionMethod> method,
      const core::QueryControl* control, obs::QueryProfile* profile) = 0;

  /// Appends one batch to a live data set (POST /v1/ingest).
  /// ResourceExhausted (-> HTTP 429 with Retry-After) when the write path
  /// is saturated; the default refuses — only backends with an append path
  /// override this, so read-only backends keep working unchanged.
  virtual StatusOr<IngestResponse> Ingest(const IngestRequest& request) {
    (void)request;
    return Status::NotImplemented("this backend does not support ingest");
  }

  virtual std::vector<CatalogEntry> ListDatasets() = 0;
  virtual std::vector<CatalogEntry> ListRegionLayers() = 0;
};

}  // namespace urbane::server

#endif  // URBANE_SERVER_QUERY_BACKEND_H_
