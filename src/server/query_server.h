#ifndef URBANE_SERVER_QUERY_SERVER_H_
#define URBANE_SERVER_QUERY_SERVER_H_

// Urbane's concurrent HTTP/JSON query service.
//
// Topology: one poll-based acceptor thread owns the loopback listener and
// performs admission control; accepted connections carry a monotonically
// increasing connection id and enter a bounded queue drained by N worker
// threads. Each worker handles one connection end-to-end: read request
// (per-socket timeouts), route, execute against the QueryBackend, write
// the JSON response, close.
//
// Admission control: when the queue is full the acceptor answers 429 with
// a Retry-After header and closes — the request is never admitted, so an
// overloaded server sheds load in O(1) without touching the engine. The
// in-flight cap is the worker pool itself (at most `worker_threads`
// queries execute concurrently).
//
// Deadlines: a request's `timeout_ms` (or the server default) arms a
// core::QueryControl polled by executors at pass boundaries; an expired
// query aborts within one pass and the client gets 504.
//
// Graceful drain: Stop() stops the acceptor first (new connections are
// refused), lets in-flight requests finish, and answers any still-queued
// connection with 503. If in-flight work outlives drain_timeout_ms, the
// remaining queries are cancelled through their QueryControls (-> 504) so
// Stop() is bounded by one executor pass, never unbounded.
//
// Endpoints:
//   POST /v1/query     — execute one statement (see server/json_api.h).
//        Honors a W3C `traceparent` request header (one is generated when
//        absent or malformed) and echoes it on the response; with
//        `?profile=1` or `X-Urbane-Profile: 1` the response embeds the
//        urbane.profile.v1 resource breakdown (obs/profile.h).
//   POST /v1/ingest    — append one batch to a live data set. A saturated
//        write path (the table's sealed-run bound) answers 429 with
//        Retry-After: the batch was not applied and retries verbatim —
//        the same backpressure contract as admission shedding, but from
//        the storage layer instead of the accept queue.
//   GET  /v1/datasets  — registered point data sets
//   GET  /v1/regions   — registered region layers
//   GET  /v1/profiles/recent      — recently retained query profiles
//   GET  /v1/profiles/<trace_id>  — one retained profile by trace id
//   GET  /metrics, /slowlog, /healthz — shared telemetry endpoints, so one
//        port serves traffic and scrape.
//
// Every request runs under an obs::ScopedEventContext carrying its
// connection id, and every /v1/query additionally under an
// obs::ScopedTraceContext carrying its trace id: journal events emitted
// anywhere below (query start / finish, cache evictions, planner
// decisions) are attributable to the connection — and trace — that caused
// them.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/query.h"
#include "server/query_backend.h"
#include "util/status.h"

namespace urbane::net {
struct HttpRequest;
}  // namespace urbane::net

namespace urbane::server {

struct QueryServerOptions {
  /// Loopback TCP port; 0 picks an ephemeral port (see port()).
  std::uint16_t port = 0;
  /// Worker pool size == maximum concurrently executing requests.
  int worker_threads = 4;
  /// Maximum accepted-but-not-yet-started connections; beyond this the
  /// acceptor sheds load with 429.
  int max_queue_depth = 64;
  /// Per-socket recv/send timeout for client connections.
  int client_timeout_ms = 5000;
  /// Deadline applied to requests that don't carry `timeout_ms`; 0 = none.
  int default_timeout_ms = 0;
  /// Retry-After value on 429 responses.
  int retry_after_seconds = 1;
  /// How long Stop() waits for in-flight requests before cancelling them.
  int drain_timeout_ms = 5000;
};

class QueryServer {
 public:
  /// `backend` is borrowed and must outlive the server.
  explicit QueryServer(QueryBackend* backend, QueryServerOptions options = {});
  ~QueryServer();  // calls Stop()

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds the listener and starts the acceptor + worker threads. Fails on
  /// socket errors, a missing backend, or double Start.
  Status Start();

  /// Graceful drain (see file comment). Idempotent; also run by the
  /// destructor.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// True once Stop() has begun refusing new work (drain in progress).
  bool draining() const { return draining_.load(std::memory_order_acquire); }
  /// The bound port (resolves port 0 to the actual ephemeral port).
  std::uint16_t port() const { return port_; }
  const QueryServerOptions& options() const { return options_; }

  /// Lifetime counters (also exported as server.* metrics).
  std::uint64_t accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  std::uint64_t rejected_overload() const {
    return rejected_overload_.load(std::memory_order_relaxed);
  }
  std::uint64_t rejected_draining() const {
    return rejected_draining_.load(std::memory_order_relaxed);
  }
  std::uint64_t served() const {
    return served_.load(std::memory_order_relaxed);
  }

 private:
  struct PendingConn {
    int fd = -1;
    std::uint64_t conn_id = 0;
    /// When the acceptor admitted the connection; the gap to worker pickup
    /// is the queue wait (server.queue_wait_seconds, profile queue_wait).
    std::chrono::steady_clock::time_point admitted;
  };

  /// Per-worker state with a stable address, so Stop() can cancel the
  /// control of whatever query the worker is running without racing its
  /// destruction.
  struct WorkerState {
    std::thread thread;
    core::QueryControl control;
    std::atomic<bool> executing{false};
  };

  void AcceptLoop();
  void WorkerLoop(WorkerState* state);
  void ServeConnection(WorkerState* state, PendingConn conn);
  /// Routes one parsed request; returns the full response string.
  /// `queue_wait_seconds` is the admission -> pickup gap for this
  /// connection (attributed to the profile of a /v1/query request).
  std::string HandleRequest(WorkerState* state, std::uint64_t conn_id,
                            const net::HttpRequest& request,
                            double queue_wait_seconds);
  std::string HandleQuery(WorkerState* state,
                          const net::HttpRequest& request,
                          double queue_wait_seconds);
  std::string HandleIngest(const net::HttpRequest& request);
  void SendErrorAndClose(int fd, int http_status, const Status& error,
                         int retry_after_seconds = 0);

  QueryBackend* backend_;
  QueryServerOptions options_;

  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::thread acceptor_;
  std::vector<std::unique_ptr<WorkerState>> workers_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<std::uint64_t> next_conn_id_{0};

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;   // workers wait for work
  std::condition_variable drain_cv_;   // Stop waits for idle
  std::deque<PendingConn> queue_;
  int in_flight_ = 0;  // guarded by queue_mu_

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_overload_{0};
  std::atomic<std::uint64_t> rejected_draining_{0};
  std::atomic<std::uint64_t> served_{0};
};

}  // namespace urbane::server

#endif  // URBANE_SERVER_QUERY_SERVER_H_
