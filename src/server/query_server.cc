#include "server/query_server.h"

#include <chrono>
#include <utility>

#include "net/http.h"
#include "net/socket.h"
#include "obs/event_journal.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "server/json_api.h"
#include "util/timer.h"

namespace urbane::server {

namespace {

constexpr int kPollSliceMs = 50;

std::string JsonResponse(
    int http_status, const data::JsonValue& doc, int retry_after_seconds = 0,
    const std::vector<std::pair<std::string, std::string>>& extra_headers =
        {}) {
  net::HttpResponse response;
  response.status = http_status;
  response.reason = "";  // resolved from the status code
  response.content_type = "application/json";
  response.body = doc.Dump(-1) + "\n";
  if (retry_after_seconds > 0) {
    response.extra_headers.emplace_back(
        "Retry-After", std::to_string(retry_after_seconds));
  }
  for (const auto& header : extra_headers) {
    response.extra_headers.push_back(header);
  }
  return net::FormatHttpResponse(response);
}

obs::Counter& ServerCounter(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name);
}

}  // namespace

QueryServer::QueryServer(QueryBackend* backend, QueryServerOptions options)
    : backend_(backend), options_(std::move(options)) {}

QueryServer::~QueryServer() { Stop(); }

Status QueryServer::Start() {
  if (backend_ == nullptr) {
    return Status::InvalidArgument("query server needs a backend");
  }
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("query server already running");
  }
  if (!net::SocketsAvailable()) {
    return Status::NotImplemented("sockets unavailable on this platform");
  }
  if (options_.worker_threads < 1) options_.worker_threads = 1;
  if (options_.max_queue_depth < 1) options_.max_queue_depth = 1;
  URBANE_ASSIGN_OR_RETURN(
      listen_fd_,
      net::ListenLoopback(options_.port, options_.max_queue_depth + 8,
                          &port_));

  draining_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  workers_.clear();
  workers_.reserve(static_cast<std::size_t>(options_.worker_threads));
  for (int i = 0; i < options_.worker_threads; ++i) {
    auto state = std::make_unique<WorkerState>();
    WorkerState* raw = state.get();
    state->thread = std::thread([this, raw] { WorkerLoop(raw); });
    workers_.push_back(std::move(state));
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void QueryServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;

  // Phase 1: stop admitting. The acceptor sees `draining_` and exits; any
  // connection racing the flag gets 503 from its worker.
  draining_.store(true, std::memory_order_release);
  if (acceptor_.joinable()) acceptor_.join();
  net::CloseSocket(listen_fd_);
  listen_fd_ = -1;

  // Phase 2: bounded drain. Workers answer everything still queued with
  // 503 and finish in-flight requests; past the deadline, cancel whatever
  // is still executing (it aborts at its next pass boundary -> 504).
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(
          options_.drain_timeout_ms > 0 ? options_.drain_timeout_ms : 0);
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    queue_cv_.notify_all();
    const bool drained = drain_cv_.wait_until(lock, deadline, [this] {
      return queue_.empty() && in_flight_ == 0;
    });
    if (!drained) {
      ServerCounter("server.drain.cancelled").Add(1);
      for (const auto& worker : workers_) {
        worker->control.cancelled.store(true, std::memory_order_release);
      }
    }
  }
  for (const auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  workers_.clear();
  port_ = 0;
}

void QueryServer::AcceptLoop() {
  while (!draining_.load(std::memory_order_acquire)) {
    if (!net::WaitReadable(listen_fd_, kPollSliceMs)) continue;
    const int fd = net::AcceptConnection(listen_fd_);
    if (fd < 0) continue;
    const std::uint64_t conn_id =
        next_conn_id_.fetch_add(1, std::memory_order_relaxed) + 1;
    // Timeouts armed before any byte moves: a half-open peer costs one
    // worker at most client_timeout_ms, never a hang.
    net::SetSocketTimeouts(fd, options_.client_timeout_ms,
                           options_.client_timeout_ms);
    bool overloaded = false;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (queue_.size() <
          static_cast<std::size_t>(options_.max_queue_depth)) {
        queue_.push_back(
            PendingConn{fd, conn_id, std::chrono::steady_clock::now()});
        accepted_.fetch_add(1, std::memory_order_relaxed);
      } else {
        overloaded = true;
      }
    }
    if (overloaded) {
      // Shed load from the acceptor itself: the engine never sees the
      // request, and the tiny response fits in the socket buffer.
      rejected_overload_.fetch_add(1, std::memory_order_relaxed);
      ServerCounter("server.rejected.overload").Add(1);
      SendErrorAndClose(
          fd, 429,
          Status::FailedPrecondition("admission queue full, retry later"),
          options_.retry_after_seconds);
      continue;
    }
    ServerCounter("server.accepted").Add(1);
    queue_cv_.notify_one();
  }
}

void QueryServer::WorkerLoop(WorkerState* state) {
  for (;;) {
    PendingConn conn;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return !queue_.empty() || draining_.load(std::memory_order_acquire);
      });
      if (queue_.empty()) {
        if (draining_.load(std::memory_order_acquire)) return;
        continue;  // spurious wakeup race; re-wait
      }
      conn = queue_.front();
      queue_.pop_front();
      if (draining_.load(std::memory_order_acquire)) {
        // Queued-but-not-started at drain time: refuse, don't execute.
        lock.unlock();
        rejected_draining_.fetch_add(1, std::memory_order_relaxed);
        ServerCounter("server.rejected.draining").Add(1);
        SendErrorAndClose(
            conn.fd, 503,
            Status::FailedPrecondition("server is draining"));
        lock.lock();
        drain_cv_.notify_all();
        continue;
      }
      ++in_flight_;
    }
    ServeConnection(state, conn);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      --in_flight_;
    }
    drain_cv_.notify_all();
  }
}

void QueryServer::ServeConnection(WorkerState* state, PendingConn conn) {
  // Everything emitted below (journal events from the cache, planner,
  // facade) carries this connection id.
  obs::ScopedEventContext event_context(conn.conn_id);
  // Admission -> pickup gap. Recorded for every connection (not just
  // profiled ones) so the histogram sees load even when nobody profiles.
  const double queue_wait_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    conn.admitted)
          .count();
  obs::MetricsRegistry::Global()
      .GetHistogram("server.queue_wait_seconds")
      .Observe(queue_wait_seconds);
  WallTimer timer;

  net::HttpLimits limits;
  StatusOr<net::HttpRequest> request = net::ReadHttpRequest(conn.fd, limits);
  if (!request.ok()) {
    if (request.status().code() == StatusCode::kInvalidArgument) {
      ServerCounter("server.requests.bad").Add(1);
      SendErrorAndClose(conn.fd, 400, request.status());
    } else {
      // Half-open or timed-out peer: nothing useful to send.
      ServerCounter("server.requests.aborted").Add(1);
      net::CloseSocket(conn.fd);
    }
    return;
  }
  const std::string response =
      HandleRequest(state, conn.conn_id, *request, queue_wait_seconds);
  net::SendAll(conn.fd, response);
  net::CloseSocket(conn.fd);
  served_.fetch_add(1, std::memory_order_relaxed);
  ServerCounter("server.requests.served").Add(1);
  obs::MetricsRegistry::Global()
      .GetHistogram("server.request.wall_seconds")
      .Observe(timer.ElapsedSeconds());
}

std::string QueryServer::HandleRequest(WorkerState* state,
                                       std::uint64_t conn_id,
                                       const net::HttpRequest& request,
                                       double queue_wait_seconds) {
  (void)conn_id;
  const std::string& method = request.method;
  const std::string& path = request.path;
  // Telemetry endpoints ride the same listener as traffic.
  {
    std::string content_type;
    std::string telemetry;
    if (obs::TelemetryEndpoint(path, &content_type, &telemetry)) {
      if (method != "GET") {
        return JsonResponse(
            405, RenderError(Status::InvalidArgument("use GET")));
      }
      net::HttpResponse response;
      response.content_type = content_type;
      response.body = std::move(telemetry);
      return net::FormatHttpResponse(response);
    }
  }
  if (path == "/v1/query") {
    if (method != "POST") {
      return JsonResponse(
          405, RenderError(Status::InvalidArgument("use POST /v1/query")));
    }
    return HandleQuery(state, request, queue_wait_seconds);
  }
  if (path == "/v1/ingest") {
    if (method != "POST") {
      return JsonResponse(
          405, RenderError(Status::InvalidArgument("use POST /v1/ingest")));
    }
    return HandleIngest(request);
  }
  if (path == "/v1/profiles/recent" ||
      path.rfind("/v1/profiles/", 0) == 0) {
    if (method != "GET") {
      return JsonResponse(
          405, RenderError(Status::InvalidArgument("use GET")));
    }
    if (path == "/v1/profiles/recent") {
      return JsonResponse(200, obs::ProfileStore::Global().Recent());
    }
    const std::string trace_id = path.substr(sizeof("/v1/profiles/") - 1);
    data::JsonValue doc;
    if (!obs::ProfileStore::Global().Lookup(trace_id, &doc)) {
      return JsonResponse(
          404, RenderError(Status::NotFound("no retained profile for trace "
                                            "id: " + trace_id)));
    }
    return JsonResponse(200, doc);
  }
  if (path == "/v1/datasets" || path == "/v1/regions") {
    if (method != "GET") {
      return JsonResponse(
          405, RenderError(Status::InvalidArgument("use GET")));
    }
    const bool datasets = path == "/v1/datasets";
    return JsonResponse(
        200, RenderCatalog(datasets ? "datasets" : "regions",
                           datasets ? backend_->ListDatasets()
                                    : backend_->ListRegionLayers()));
  }
  return JsonResponse(
      404, RenderError(Status::NotFound("no such endpoint: " + path)));
}

std::string QueryServer::HandleQuery(WorkerState* state,
                                     const net::HttpRequest& request,
                                     double queue_wait_seconds) {
  StatusOr<ApiRequest> api = ParseApiRequest(request.body);
  if (!api.ok()) {
    ServerCounter("server.queries.bad").Add(1);
    return JsonResponse(HttpStatusForError(api.status()),
                        RenderError(api.status()));
  }

  // Trace context: honor a well-formed W3C traceparent request header;
  // otherwise (absent or malformed — the spec says ignore, don't reject)
  // the request runs under a freshly generated trace. The scope stamps the
  // trace id onto every journal event this request emits, and the response
  // always echoes the context so the client can correlate.
  obs::TraceContext trace_context;
  bool inherited = false;
  if (const std::string* header = request.FindHeader("traceparent")) {
    inherited = obs::ParseTraceparent(*header, &trace_context);
  }
  if (!inherited) trace_context = obs::GenerateTraceContext();
  obs::ScopedTraceContext trace_scope(trace_context.trace_hi,
                                      trace_context.trace_lo);
  const std::vector<std::pair<std::string, std::string>> trace_headers = {
      {"traceparent", trace_context.ToTraceparent()}};

  // Profiling is per-request opt-in: ?profile=1 or X-Urbane-Profile: 1.
  const std::string* profile_header =
      request.FindHeader("x-urbane-profile");
  const bool want_profile =
      request.QueryParam("profile") == "1" ||
      (profile_header != nullptr && *profile_header == "1");
  std::unique_ptr<obs::QueryProfile> profile;
  if (want_profile) {
    ServerCounter("server.queries.profiled").Add(1);
    profile = std::make_unique<obs::QueryProfile>();
    profile->context = trace_context;
    profile->queue_wait_seconds = queue_wait_seconds;
  }

  // Arm this worker's (stable-address) control; Stop() may cancel it
  // concurrently, so only reset state here, never destroy.
  state->control.cancelled.store(false, std::memory_order_release);
  state->control.deadline = core::QueryControl::Clock::time_point{};
  const int timeout_ms =
      api->timeout_ms > 0 ? api->timeout_ms : options_.default_timeout_ms;
  if (timeout_ms > 0) {
    state->control.SetTimeout(std::chrono::milliseconds(timeout_ms));
  }
  state->executing.store(true, std::memory_order_release);
  WallTimer timer;
  StatusOr<BackendResult> result = backend_->ExecuteSql(
      api->sql, api->method, &state->control, profile.get());
  const double elapsed_ms = timer.ElapsedSeconds() * 1e3;
  state->executing.store(false, std::memory_order_release);

  if (!result.ok()) {
    if (result.status().code() == StatusCode::kDeadlineExceeded) {
      ServerCounter("server.queries.deadline_exceeded").Add(1);
    } else {
      ServerCounter("server.queries.error").Add(1);
    }
    return JsonResponse(HttpStatusForError(result.status()),
                        RenderError(result.status()), 0, trace_headers);
  }
  ServerCounter("server.queries.ok").Add(1);
  obs::MetricsRegistry::Global()
      .GetHistogram("server.query.wall_seconds")
      .Observe(elapsed_ms / 1e3);
  data::JsonValue profile_json;
  if (profile != nullptr) {
    obs::ProfileStore::Global().Insert(*profile);
    profile_json = profile->ToJson();
  }
  return JsonResponse(
      200,
      RenderResult(*result, elapsed_ms,
                   profile != nullptr ? &profile_json : nullptr),
      0, trace_headers);
}

std::string QueryServer::HandleIngest(const net::HttpRequest& request) {
  StatusOr<IngestRequest> api = ParseIngestRequest(request.body);
  if (!api.ok()) {
    ServerCounter("server.ingest.bad").Add(1);
    return JsonResponse(HttpStatusForError(api.status()),
                        RenderError(api.status()));
  }
  WallTimer timer;
  StatusOr<IngestResponse> result = backend_->Ingest(*api);
  if (!result.ok()) {
    // Storage-layer backpressure rides the admission-control contract:
    // 429 + Retry-After, nothing applied, retry the batch verbatim.
    if (result.status().code() == StatusCode::kResourceExhausted) {
      ServerCounter("server.ingest.rejected").Add(1);
      return JsonResponse(429, RenderError(result.status()),
                          options_.retry_after_seconds);
    }
    ServerCounter("server.ingest.error").Add(1);
    return JsonResponse(HttpStatusForError(result.status()),
                        RenderError(result.status()));
  }
  ServerCounter("server.ingest.ok").Add(1);
  obs::MetricsRegistry::Global()
      .GetHistogram("server.ingest.wall_seconds")
      .Observe(timer.ElapsedSeconds());
  return JsonResponse(200, RenderIngestResult(api->dataset, *result,
                                              timer.ElapsedSeconds() * 1e3));
}

void QueryServer::SendErrorAndClose(int fd, int http_status,
                                    const Status& error,
                                    int retry_after_seconds) {
  net::SendAll(fd,
               JsonResponse(http_status, RenderError(error),
                            retry_after_seconds));
  // These responses (429 shed, 503 drain, 400 framing) answer requests
  // whose body was never read; a plain close would RST the connection and
  // the peer could lose the response. On loopback with a well-behaved
  // client the drain completes in microseconds; the bound only limits how
  // long a hostile trickler can hold the calling thread.
  net::LingeringClose(fd, /*max_wait_ms=*/100);
}

}  // namespace urbane::server
