#ifndef URBANE_SERVER_JSON_API_H_
#define URBANE_SERVER_JSON_API_H_

// The query server's wire format, kept separate from the transport so the
// tests can exercise request parsing and result rendering without sockets.
//
// Request (POST /v1/query):
//   { "sql": "SELECT ...",            — required
//     "method": "accurate",           — optional: scan | index | raster |
//                                       accurate | auto (default accurate)
//     "timeout_ms": 250 }             — optional per-request deadline
//
// Success response ("urbane.result.v1"):
//   { "schema": "urbane.result.v1", "dataset": ..., "regions_layer": ...,
//     "method": ..., "exact": true, "elapsed_ms": ...,
//     "regions": [ {"id": 1, "name": "...", "value": ..., "count": ...,
//                   "error_bound": ...?}, ... ] }
// Non-finite values (AVG over an empty group) render as JSON null.
//
// Error response (any 4xx/5xx):
//   { "error": { "code": "InvalidArgument", "message": "..." } }

#include <optional>
#include <string>

#include "core/planner.h"
#include "data/json.h"
#include "server/query_backend.h"
#include "util/status.h"

namespace urbane::server {

/// A parsed and validated /v1/query body.
struct ApiRequest {
  std::string sql;
  /// Engine to run; unset means "auto" (the planner decides).
  std::optional<core::ExecutionMethod> method;
  /// Per-request deadline; <= 0 means none.
  int timeout_ms = 0;
};

/// Parses a JSON request body. InvalidArgument on malformed JSON, a
/// missing/empty "sql", an unknown "method", or a non-numeric/negative
/// "timeout_ms".
StatusOr<ApiRequest> ParseApiRequest(const std::string& body);

/// "scan" | "index" | "raster" | "accurate" -> the enum; "auto" -> unset.
StatusOr<std::optional<core::ExecutionMethod>> ParseMethodName(
    const std::string& name);

/// Renders a BackendResult as the urbane.result.v1 document. A non-null
/// `profile` (the urbane.profile.v1 document, see obs/profile.h) is
/// embedded as a trailing "profile" member — requested via ?profile=1 or
/// the X-Urbane-Profile header.
data::JsonValue RenderResult(const BackendResult& result, double elapsed_ms,
                             const data::JsonValue* profile = nullptr);

/// Renders the catalog endpoints (GET /v1/datasets, /v1/regions).
data::JsonValue RenderCatalog(const std::string& key,
                              const std::vector<CatalogEntry>& entries);

/// Renders the {"error": {...}} envelope.
data::JsonValue RenderError(const Status& status);

/// Maps a Status code onto the HTTP status the handler responds with
/// (InvalidArgument -> 400, NotFound -> 404, DeadlineExceeded -> 504, ...).
int HttpStatusForError(const Status& status);

}  // namespace urbane::server

#endif  // URBANE_SERVER_JSON_API_H_
