#ifndef URBANE_SERVER_JSON_API_H_
#define URBANE_SERVER_JSON_API_H_

// The query server's wire format, kept separate from the transport so the
// tests can exercise request parsing and result rendering without sockets.
//
// Request (POST /v1/query):
//   { "sql": "SELECT ...",            — required
//     "method": "accurate",           — optional: scan | index | raster |
//                                       accurate | auto (default accurate)
//     "timeout_ms": 250 }             — optional per-request deadline
//
// Success response ("urbane.result.v1"):
//   { "schema": "urbane.result.v1", "dataset": ..., "regions_layer": ...,
//     "method": ..., "exact": true, "elapsed_ms": ...,
//     "watermark": 1024,              — live data sets only: the as-of row
//                                       count the result is exact for
//     "regions": [ {"id": 1, "name": "...", "value": ..., "count": ...,
//                   "error_bound": ...?}, ... ] }
// Non-finite values (AVG over an empty group) render as JSON null.
//
// Ingest request (POST /v1/ingest):
//   { "dataset": "taxi",              — required: a live data set
//     "rows": [[x, y, t, attr...],    — required: >= 1 rows, each with the
//              ...] }                   same arity (>= 3; attrs positional)
//
// Ingest response ("urbane.ingest.v1"):
//   { "schema": "urbane.ingest.v1", "dataset": ..., "rows_appended": ...,
//     "watermark": ..., "elapsed_ms": ... }
// A saturated write path answers 429 with a Retry-After header; the batch
// was not applied and can be retried verbatim.
//
// Error response (any 4xx/5xx):
//   { "error": { "code": "InvalidArgument", "message": "..." } }

#include <optional>
#include <string>

#include "core/planner.h"
#include "data/json.h"
#include "server/query_backend.h"
#include "util/status.h"

namespace urbane::server {

/// A parsed and validated /v1/query body.
struct ApiRequest {
  std::string sql;
  /// Engine to run; unset means "auto" (the planner decides).
  std::optional<core::ExecutionMethod> method;
  /// Per-request deadline; <= 0 means none.
  int timeout_ms = 0;
};

/// Parses a JSON request body. InvalidArgument on malformed JSON, a
/// missing/empty "sql", an unknown "method", or a non-numeric/negative
/// "timeout_ms".
StatusOr<ApiRequest> ParseApiRequest(const std::string& body);

/// "scan" | "index" | "raster" | "accurate" -> the enum; "auto" -> unset.
StatusOr<std::optional<core::ExecutionMethod>> ParseMethodName(
    const std::string& name);

/// Parses a POST /v1/ingest body into a batch. InvalidArgument on
/// malformed JSON, a missing dataset, no rows, ragged rows, arity < 3, or
/// non-numeric cells. The batch's schema names attributes positionally
/// ("a0", "a1", ...) — live tables validate arity, not names.
StatusOr<IngestRequest> ParseIngestRequest(const std::string& body);

/// Renders an IngestResponse as the urbane.ingest.v1 document.
data::JsonValue RenderIngestResult(const std::string& dataset,
                                   const IngestResponse& response,
                                   double elapsed_ms);

/// Renders a BackendResult as the urbane.result.v1 document. A non-null
/// `profile` (the urbane.profile.v1 document, see obs/profile.h) is
/// embedded as a trailing "profile" member — requested via ?profile=1 or
/// the X-Urbane-Profile header.
data::JsonValue RenderResult(const BackendResult& result, double elapsed_ms,
                             const data::JsonValue* profile = nullptr);

/// Renders the catalog endpoints (GET /v1/datasets, /v1/regions).
data::JsonValue RenderCatalog(const std::string& key,
                              const std::vector<CatalogEntry>& entries);

/// Renders the {"error": {...}} envelope.
data::JsonValue RenderError(const Status& status);

/// Maps a Status code onto the HTTP status the handler responds with
/// (InvalidArgument -> 400, NotFound -> 404, DeadlineExceeded -> 504, ...).
int HttpStatusForError(const Status& status);

}  // namespace urbane::server

#endif  // URBANE_SERVER_JSON_API_H_
