#include "server/json_api.h"

#include <cmath>
#include <utility>

namespace urbane::server {

StatusOr<std::optional<core::ExecutionMethod>> ParseMethodName(
    const std::string& name) {
  if (name == "scan") return std::optional(core::ExecutionMethod::kScan);
  if (name == "index") return std::optional(core::ExecutionMethod::kIndexJoin);
  if (name == "raster") {
    return std::optional(core::ExecutionMethod::kBoundedRaster);
  }
  if (name == "accurate") {
    return std::optional(core::ExecutionMethod::kAccurateRaster);
  }
  if (name == "auto") return std::optional<core::ExecutionMethod>();
  return Status::InvalidArgument(
      "unknown method '" + name +
      "' (expected scan | index | raster | accurate | auto)");
}

StatusOr<ApiRequest> ParseApiRequest(const std::string& body) {
  URBANE_ASSIGN_OR_RETURN(data::JsonValue doc, data::ParseJson(body));
  if (!doc.is_object()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }
  ApiRequest request;

  const data::JsonValue* sql = doc.Find("sql");
  if (sql == nullptr || !sql->is_string() || sql->AsString().empty()) {
    return Status::InvalidArgument(
        "request must carry a non-empty string field \"sql\"");
  }
  request.sql = sql->AsString();

  if (const data::JsonValue* method = doc.Find("method")) {
    if (!method->is_string()) {
      return Status::InvalidArgument("\"method\" must be a string");
    }
    URBANE_ASSIGN_OR_RETURN(request.method,
                            ParseMethodName(method->AsString()));
  } else {
    // Default: the paper's exact raster join, the fastest exact engine.
    request.method = core::ExecutionMethod::kAccurateRaster;
  }

  if (const data::JsonValue* timeout = doc.Find("timeout_ms")) {
    if (!timeout->is_number() || !std::isfinite(timeout->AsNumber()) ||
        timeout->AsNumber() < 0) {
      return Status::InvalidArgument(
          "\"timeout_ms\" must be a non-negative number");
    }
    request.timeout_ms = static_cast<int>(timeout->AsNumber());
  }
  return request;
}

StatusOr<IngestRequest> ParseIngestRequest(const std::string& body) {
  URBANE_ASSIGN_OR_RETURN(data::JsonValue doc, data::ParseJson(body));
  if (!doc.is_object()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }
  IngestRequest request;

  const data::JsonValue* dataset = doc.Find("dataset");
  if (dataset == nullptr || !dataset->is_string() ||
      dataset->AsString().empty()) {
    return Status::InvalidArgument(
        "request must carry a non-empty string field \"dataset\"");
  }
  request.dataset = dataset->AsString();

  const data::JsonValue* rows = doc.Find("rows");
  if (rows == nullptr || !rows->is_array() || rows->AsArray().empty()) {
    return Status::InvalidArgument(
        "request must carry a non-empty array field \"rows\"");
  }
  const data::JsonValue::Array& array = rows->AsArray();

  // Arity comes from the first row; every row must match it. Attribute
  // names are positional — arity, not names, is what the live table checks.
  std::size_t arity = 0;
  if (array[0].is_array()) arity = array[0].AsArray().size();
  if (arity < 3) {
    return Status::InvalidArgument(
        "each row must be an array [x, y, t, attr...] with >= 3 numbers");
  }
  std::vector<std::string> names;
  names.reserve(arity - 3);
  for (std::size_t i = 0; i + 3 < arity; ++i) {
    names.push_back("a" + std::to_string(i));
  }
  URBANE_ASSIGN_OR_RETURN(data::Schema schema,
                          data::Schema::Create(std::move(names)));
  data::PointTable batch(std::move(schema));
  batch.Reserve(array.size());
  std::vector<float> attrs(arity - 3, 0.0f);
  for (std::size_t r = 0; r < array.size(); ++r) {
    if (!array[r].is_array() || array[r].AsArray().size() != arity) {
      return Status::InvalidArgument(
          "row " + std::to_string(r) + " does not match the first row's "
          "arity of " + std::to_string(arity));
    }
    const data::JsonValue::Array& row = array[r].AsArray();
    for (const data::JsonValue& cell : row) {
      if (!cell.is_number() || !std::isfinite(cell.AsNumber())) {
        return Status::InvalidArgument(
            "row " + std::to_string(r) + " holds a non-numeric cell");
      }
    }
    for (std::size_t i = 3; i < arity; ++i) {
      attrs[i - 3] = static_cast<float>(row[i].AsNumber());
    }
    URBANE_RETURN_IF_ERROR(batch.AppendRow(
        static_cast<float>(row[0].AsNumber()),
        static_cast<float>(row[1].AsNumber()),
        static_cast<std::int64_t>(row[2].AsNumber()), attrs));
  }
  request.batch = std::move(batch);
  return request;
}

namespace {

// JsonValue refuses to serialise non-finite numbers; the API contract is
// that they render as null (e.g. AVG over an empty group is NaN).
data::JsonValue FiniteOrNull(double value) {
  if (!std::isfinite(value)) return data::JsonValue();
  return data::JsonValue(value);
}

}  // namespace

data::JsonValue RenderResult(const BackendResult& result, double elapsed_ms,
                             const data::JsonValue* profile) {
  data::JsonValue::Array regions;
  regions.reserve(result.rows.size());
  for (const RegionRow& row : result.rows) {
    data::JsonValue::Object region;
    region.emplace_back("id",
                        data::JsonValue(static_cast<double>(row.id)));
    region.emplace_back("name", data::JsonValue(row.name));
    region.emplace_back("value", FiniteOrNull(row.value));
    region.emplace_back("count",
                        data::JsonValue(static_cast<double>(row.count)));
    if (row.has_error_bound) {
      region.emplace_back("error_bound", FiniteOrNull(row.error_bound));
    }
    regions.emplace_back(std::move(region));
  }
  data::JsonValue::Object doc;
  doc.emplace_back("schema", data::JsonValue("urbane.result.v1"));
  doc.emplace_back("dataset", data::JsonValue(result.dataset));
  doc.emplace_back("regions_layer", data::JsonValue(result.regions_layer));
  doc.emplace_back("method", data::JsonValue(result.method));
  doc.emplace_back("exact", data::JsonValue(result.exact));
  doc.emplace_back("elapsed_ms", FiniteOrNull(elapsed_ms));
  if (result.watermark.has_value()) {
    doc.emplace_back(
        "watermark",
        data::JsonValue(static_cast<double>(*result.watermark)));
  }
  doc.emplace_back("regions", data::JsonValue(std::move(regions)));
  if (profile != nullptr) {
    doc.emplace_back("profile", *profile);
  }
  return data::JsonValue(std::move(doc));
}

data::JsonValue RenderIngestResult(const std::string& dataset,
                                   const IngestResponse& response,
                                   double elapsed_ms) {
  data::JsonValue::Object doc;
  doc.emplace_back("schema", data::JsonValue("urbane.ingest.v1"));
  doc.emplace_back("dataset", data::JsonValue(dataset));
  doc.emplace_back(
      "rows_appended",
      data::JsonValue(static_cast<double>(response.rows_appended)));
  doc.emplace_back(
      "watermark",
      data::JsonValue(static_cast<double>(response.watermark)));
  doc.emplace_back("elapsed_ms", FiniteOrNull(elapsed_ms));
  return data::JsonValue(std::move(doc));
}

data::JsonValue RenderCatalog(const std::string& key,
                              const std::vector<CatalogEntry>& entries) {
  data::JsonValue::Array items;
  items.reserve(entries.size());
  for (const CatalogEntry& entry : entries) {
    data::JsonValue::Object item;
    item.emplace_back("name", data::JsonValue(entry.name));
    item.emplace_back("size",
                      data::JsonValue(static_cast<double>(entry.size)));
    items.emplace_back(std::move(item));
  }
  data::JsonValue::Object doc;
  doc.emplace_back("schema", data::JsonValue("urbane.catalog.v1"));
  doc.emplace_back(key, data::JsonValue(std::move(items)));
  return data::JsonValue(std::move(doc));
}

data::JsonValue RenderError(const Status& status) {
  data::JsonValue::Object error;
  error.emplace_back("code",
                     data::JsonValue(StatusCodeToString(status.code())));
  error.emplace_back("message", data::JsonValue(status.message()));
  data::JsonValue::Object doc;
  doc.emplace_back("error", data::JsonValue(std::move(error)));
  return data::JsonValue(std::move(doc));
}

int HttpStatusForError(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kAlreadyExists:
    case StatusCode::kFailedPrecondition:
      return 409;
    case StatusCode::kOutOfRange:
      return 416;
    case StatusCode::kResourceExhausted:
      return 429;
    case StatusCode::kDeadlineExceeded:
      return 504;
    case StatusCode::kNotImplemented:
      return 501;
    default:
      return 500;
  }
}

}  // namespace urbane::server
