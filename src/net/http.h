#ifndef URBANE_NET_HTTP_H_
#define URBANE_NET_HTTP_H_

// Minimal HTTP/1.x message handling shared by the telemetry exporter and
// the query server: an incremental request parser (request line, headers,
// Content-Length-delimited body) and a response formatter. The parser is a
// pure state machine over fed bytes — socket I/O lives in ReadHttpRequest —
// so malformed-input behavior is unit-testable without a socket.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace urbane::net {

/// One parsed request. `target` is the raw request target; `path`/`query`
/// split it at the first '?'. Header names are lowercased at parse time
/// (HTTP header names are case-insensitive); values keep their bytes.
struct HttpRequest {
  std::string method;   // "GET", "POST", ...
  std::string target;   // "/v1/regions?layer=nbhd"
  std::string path;     // "/v1/regions"
  std::string query;    // "layer=nbhd" ("" when absent)
  std::string version;  // "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Case-insensitive header lookup (names are stored lowercased); nullptr
  /// when absent.
  const std::string* FindHeader(const std::string& lowercase_name) const;

  /// First value of `key` in an application/x-www-form-urlencoded-style
  /// query string ("layer=nbhd&x=1"); "" when absent. No %-decoding — the
  /// API's identifiers are plain [A-Za-z0-9_] names.
  std::string QueryParam(const std::string& key) const;
};

/// Bounds a parse so a hostile peer cannot balloon memory.
struct HttpLimits {
  std::size_t max_header_bytes = 8 * 1024;
  std::size_t max_body_bytes = 1024 * 1024;
};

/// Incremental request parser. Feed bytes as they arrive; the parser stops
/// consuming once the message is complete. A parse failure is sticky and
/// carries a Status whose message is safe to echo into a 400 body.
class HttpRequestParser {
 public:
  explicit HttpRequestParser(HttpLimits limits = HttpLimits());

  enum class State {
    kHeaders,  // still reading the request line / header block
    kBody,     // headers done, awaiting Content-Length bytes
    kDone,     // complete message parsed
    kError,    // malformed or over limits (see error())
  };

  /// Consumes up to `size` bytes, advancing the state machine. Bytes past
  /// the end of a complete message are ignored (Connection: close — no
  /// pipelining). Returns the state after consuming.
  State Feed(const char* data, std::size_t size);

  State state() const { return state_; }
  bool done() const { return state_ == State::kDone; }
  /// Valid once done().
  const HttpRequest& request() const { return request_; }
  /// Non-OK once state() == kError.
  const Status& error() const { return error_; }

 private:
  State Fail(std::string message);
  bool ParseHeaderBlock();

  HttpLimits limits_;
  State state_ = State::kHeaders;
  std::string buffer_;        // unparsed header bytes
  std::size_t body_needed_ = 0;
  HttpRequest request_;
  Status error_;
};

/// One response to format. `extra_headers` lets callers attach e.g.
/// Retry-After; Content-Type/Content-Length/Connection are always written.
struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::string content_type = "text/plain";
  std::string body;
  std::vector<std::pair<std::string, std::string>> extra_headers;
  std::string version = "HTTP/1.1";
};

/// Stable reason phrase for the status codes this codebase emits.
const char* HttpReasonPhrase(int status);

/// Serializes status line + headers + body, Connection: close.
std::string FormatHttpResponse(const HttpResponse& response);

/// Reads one request from `fd` (which should already carry SO_RCVTIMEO —
/// see net::SetSocketTimeouts) into the parser until done, EOF, timeout,
/// or a parse error. Returns:
///   OK               — a complete request (in *request)
///   InvalidArgument  — malformed request (message safe for a 400 body)
///   IoError          — peer vanished / timed out before a full request
StatusOr<HttpRequest> ReadHttpRequest(int fd, const HttpLimits& limits);

/// Formats and sends `response` on `fd` (short-write/EINTR-safe SendAll).
Status WriteHttpResponse(int fd, const HttpResponse& response);

}  // namespace urbane::net

#endif  // URBANE_NET_HTTP_H_
