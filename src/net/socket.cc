#include "net/socket.h"

#include <cerrno>
#include <cstring>

#ifdef __unix__
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>
#define URBANE_NET_HAVE_SOCKETS 1
#endif

namespace urbane::net {

#ifdef URBANE_NET_HAVE_SOCKETS

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

bool SocketsAvailable() { return true; }

StatusOr<int> ListenLoopback(std::uint16_t port, int backlog,
                             std::uint16_t* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("bind: " + err);
  }
  if (::listen(fd, backlog) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("listen: " + err);
  }
  if (bound_port != nullptr) {
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
      *bound_port = ntohs(addr.sin_port);
    }
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  return fd;
}

bool WaitReadable(int fd, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  const int ready = ::poll(&pfd, 1, timeout_ms);
  return ready > 0 && (pfd.revents & POLLIN) != 0;
}

int AcceptConnection(int listen_fd) {
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  return fd >= 0 ? fd : -1;
}

void SetSocketTimeouts(int fd, int recv_timeout_ms, int send_timeout_ms) {
  const auto to_timeval = [](int ms) {
    timeval tv{};
    tv.tv_sec = ms / 1000;
    tv.tv_usec = (ms % 1000) * 1000;
    return tv;
  };
  if (recv_timeout_ms > 0) {
    const timeval tv = to_timeval(recv_timeout_ms);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  if (send_timeout_ms > 0) {
    const timeval tv = to_timeval(send_timeout_ms);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
}

Status SendAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;  // interrupted mid-write: retry the remainder
    }
    // EAGAIN/EWOULDBLOCK here means SO_SNDTIMEO expired: the peer stopped
    // reading. Give up rather than stall the serving thread.
    return Status::IoError(std::string("send: ") + std::strerror(errno));
  }
  return Status::OK();
}

StatusOr<std::size_t> RecvSome(int fd, char* buffer, std::size_t capacity) {
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, capacity, 0);
    if (n >= 0) {
      return static_cast<std::size_t>(n);
    }
    if (errno == EINTR) {
      continue;
    }
    return Status::IoError(std::string("recv: ") + std::strerror(errno));
  }
}

void CloseSocket(int fd) {
  if (fd >= 0) ::close(fd);
}

void LingeringClose(int fd, int max_wait_ms) {
  if (fd < 0) return;
  ::shutdown(fd, SHUT_WR);  // peer sees orderly EOF after our response
  char discard[1024];
  int waited_ms = 0;
  constexpr int kSliceMs = 10;
  while (waited_ms < max_wait_ms) {
    if (!WaitReadable(fd, kSliceMs)) {
      waited_ms += kSliceMs;
      continue;
    }
    const ssize_t n = ::recv(fd, discard, sizeof(discard), 0);
    if (n == 0) break;                   // orderly EOF: peer is done
    if (n < 0 && errno != EINTR) break;  // reset or timeout: give up
  }
  ::close(fd);
}

StatusOr<int> ConnectLoopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("connect: " + err);
  }
  return fd;
}

Status RecvAll(int fd, std::string* out) {
  char buffer[4096];
  for (;;) {
    URBANE_ASSIGN_OR_RETURN(std::size_t n,
                            RecvSome(fd, buffer, sizeof(buffer)));
    if (n == 0) return Status::OK();
    out->append(buffer, n);
  }
}

#else  // !URBANE_NET_HAVE_SOCKETS

bool SocketsAvailable() { return false; }

StatusOr<int> ListenLoopback(std::uint16_t, int, std::uint16_t*) {
  return Status::NotImplemented("sockets unavailable on this platform");
}

bool WaitReadable(int, int) { return false; }

int AcceptConnection(int) { return -1; }

void SetSocketTimeouts(int, int, int) {}

Status SendAll(int, const std::string&) {
  return Status::NotImplemented("sockets unavailable on this platform");
}

StatusOr<std::size_t> RecvSome(int, char*, std::size_t) {
  return Status::NotImplemented("sockets unavailable on this platform");
}

void CloseSocket(int) {}

void LingeringClose(int, int) {}

StatusOr<int> ConnectLoopback(std::uint16_t) {
  return Status::NotImplemented("sockets unavailable on this platform");
}

Status RecvAll(int, std::string*) {
  return Status::NotImplemented("sockets unavailable on this platform");
}

#endif  // URBANE_NET_HAVE_SOCKETS

}  // namespace urbane::net
