#ifndef URBANE_NET_SOCKET_H_
#define URBANE_NET_SOCKET_H_

// Raw POSIX TCP plumbing shared by the telemetry exporter and the query
// server. No third-party dependencies; on platforms without BSD sockets
// every entry point degrades to a clean NotImplemented/IoError status so
// higher layers can gate features on SocketsAvailable().
//
// All listeners bind the loopback interface only: both the scrape endpoint
// and the query server are sidecar-local services; exposing them beyond
// the host is a deployment concern (reverse proxy), not this layer's.

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace urbane::net {

/// True when the platform has BSD sockets (compiled under __unix__).
bool SocketsAvailable();

/// Creates a loopback TCP listener: socket + SO_REUSEADDR + bind + listen,
/// set non-blocking (so accept after a poll wakeup can never wedge on a
/// vanished connection). `port` 0 picks an ephemeral port; the bound port
/// is written to `*bound_port`. Returns the listening fd.
StatusOr<int> ListenLoopback(std::uint16_t port, int backlog,
                             std::uint16_t* bound_port);

/// Polls `fd` for readability for up to `timeout_ms`. Returns true when
/// readable; false on timeout or error (EINTR counts as a timeout slice —
/// callers loop anyway).
bool WaitReadable(int fd, int timeout_ms);

/// Accepts one pending connection on a non-blocking listener. Returns the
/// connection fd, or -1 when none is pending (EAGAIN / transient errors).
int AcceptConnection(int listen_fd);

/// Bounds how long a blocking recv/send on `fd` may stall (SO_RCVTIMEO /
/// SO_SNDTIMEO). A slow or half-open peer then fails the call with a
/// timeout instead of hanging the serving thread forever.
void SetSocketTimeouts(int fd, int recv_timeout_ms, int send_timeout_ms);

/// Sends the whole buffer, retrying EINTR and short writes (a peer that
/// reads slowly makes send() accept partial chunks). Fails with IoError on
/// a vanished peer or when SO_SNDTIMEO expires mid-write.
Status SendAll(int fd, const std::string& data);

/// Receives up to `capacity` bytes, retrying EINTR. Returns 0 on orderly
/// EOF; IoError on connection errors or an SO_RCVTIMEO expiry.
StatusOr<std::size_t> RecvSome(int fd, char* buffer, std::size_t capacity);

/// Closes a socket fd (no-op for fd < 0).
void CloseSocket(int fd);

/// Close for responses sent without reading the request (429 shed, 503
/// drain): half-closes the write side so the peer sees orderly EOF, then
/// discards pending input until EOF or `max_wait_ms`, then closes. A plain
/// close() here would reset the connection (unread bytes in the receive
/// buffer turn close into RST) and the peer could lose the response that
/// was just sent.
void LingeringClose(int fd, int max_wait_ms);

/// Blocking TCP connect to 127.0.0.1:port. Client side for the test suite
/// and the load generator; the serving path never dials out.
StatusOr<int> ConnectLoopback(std::uint16_t port);

/// Reads from `fd` until orderly EOF, appending to *out. With a peer that
/// sends Connection: close responses (all of ours), this collects exactly
/// one full response. IoError on connection errors / SO_RCVTIMEO expiry.
Status RecvAll(int fd, std::string* out);

}  // namespace urbane::net

#endif  // URBANE_NET_SOCKET_H_
