#include "net/http.h"

#include <cctype>
#include <cstdlib>

#include "net/socket.h"

namespace urbane::net {

namespace {

std::string LowerAscii(std::string text) {
  for (char& c : text) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return text;
}

std::string TrimSpaces(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

}  // namespace

const std::string* HttpRequest::FindHeader(
    const std::string& lowercase_name) const {
  for (const auto& [name, value] : headers) {
    if (name == lowercase_name) return &value;
  }
  return nullptr;
}

std::string HttpRequest::QueryParam(const std::string& key) const {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string pair = query.substr(pos, amp - pos);
    const std::size_t eq = pair.find('=');
    if (eq != std::string::npos && pair.substr(0, eq) == key) {
      return pair.substr(eq + 1);
    }
    if (eq == std::string::npos && pair == key) {
      return "";  // bare flag
    }
    pos = amp + 1;
  }
  return "";
}

HttpRequestParser::HttpRequestParser(HttpLimits limits)
    : limits_(limits) {}

HttpRequestParser::State HttpRequestParser::Fail(std::string message) {
  state_ = State::kError;
  error_ = Status::InvalidArgument(std::move(message));
  return state_;
}

HttpRequestParser::State HttpRequestParser::Feed(const char* data,
                                                 std::size_t size) {
  if (state_ == State::kDone || state_ == State::kError) {
    return state_;  // Connection: close — surplus bytes are ignored
  }
  if (state_ == State::kBody) {
    const std::size_t take =
        size < body_needed_ - request_.body.size()
            ? size
            : body_needed_ - request_.body.size();
    request_.body.append(data, take);
    if (request_.body.size() == body_needed_) {
      state_ = State::kDone;
    }
    return state_;
  }

  buffer_.append(data, size);
  // Terminator: blank line, tolerating bare-LF clients.
  std::size_t header_end = buffer_.find("\r\n\r\n");
  std::size_t body_start;
  if (header_end != std::string::npos) {
    body_start = header_end + 4;
  } else {
    header_end = buffer_.find("\n\n");
    if (header_end == std::string::npos) {
      if (buffer_.size() > limits_.max_header_bytes) {
        return Fail("header block exceeds " +
                    std::to_string(limits_.max_header_bytes) + " bytes");
      }
      return state_;  // need more bytes
    }
    body_start = header_end + 2;
  }
  if (header_end > limits_.max_header_bytes) {
    return Fail("header block exceeds " +
                std::to_string(limits_.max_header_bytes) + " bytes");
  }

  const std::string leftover = buffer_.substr(body_start);
  buffer_.resize(header_end);
  if (!ParseHeaderBlock()) {
    return state_;  // Fail() already ran
  }

  body_needed_ = 0;
  if (const std::string* length = request_.FindHeader("content-length")) {
    const std::string trimmed = TrimSpaces(*length);
    if (trimmed.empty() ||
        trimmed.find_first_not_of("0123456789") != std::string::npos) {
      return Fail("invalid Content-Length '" + trimmed + "'");
    }
    errno = 0;
    const unsigned long long parsed =
        std::strtoull(trimmed.c_str(), nullptr, 10);
    if (errno != 0 || parsed > limits_.max_body_bytes) {
      return Fail("Content-Length " + trimmed + " exceeds limit of " +
                  std::to_string(limits_.max_body_bytes) + " bytes");
    }
    body_needed_ = static_cast<std::size_t>(parsed);
  }
  if (body_needed_ == 0) {
    state_ = State::kDone;
    return state_;
  }
  state_ = State::kBody;
  request_.body.reserve(body_needed_);
  // Bytes that arrived glued to the header block.
  return Feed(leftover.data(), leftover.size());
}

bool HttpRequestParser::ParseHeaderBlock() {
  std::size_t pos = 0;
  bool first_line = true;
  while (pos <= buffer_.size()) {
    std::size_t eol = buffer_.find('\n', pos);
    if (eol == std::string::npos) eol = buffer_.size();
    std::string line = buffer_.substr(pos, eol - pos);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    pos = eol + 1;
    if (first_line) {
      first_line = false;
      const std::size_t sp1 = line.find(' ');
      const std::size_t sp2 =
          sp1 == std::string::npos ? std::string::npos
                                   : line.find(' ', sp1 + 1);
      if (sp1 == std::string::npos || sp2 == std::string::npos) {
        Fail("malformed request line '" + line.substr(0, 64) + "'");
        return false;
      }
      request_.method = line.substr(0, sp1);
      request_.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
      request_.version = TrimSpaces(line.substr(sp2 + 1));
      if (request_.method.empty() || request_.target.empty() ||
          request_.version.rfind("HTTP/", 0) != 0) {
        Fail("malformed request line '" + line.substr(0, 64) + "'");
        return false;
      }
      const std::size_t qmark = request_.target.find('?');
      request_.path = request_.target.substr(0, qmark);
      request_.query = qmark == std::string::npos
                           ? std::string()
                           : request_.target.substr(qmark + 1);
      continue;
    }
    if (line.empty()) {
      continue;  // tolerated stray blank before the terminator
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) {
      Fail("malformed header line '" + line.substr(0, 64) + "'");
      return false;
    }
    request_.headers.emplace_back(LowerAscii(line.substr(0, colon)),
                                  TrimSpaces(line.substr(colon + 1)));
  }
  if (first_line) {
    Fail("empty request");
    return false;
  }
  return true;
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 416: return "Range Not Satisfiable";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

std::string FormatHttpResponse(const HttpResponse& response) {
  std::string out;
  out.reserve(response.body.size() + 256);
  out += response.version;
  out += ' ';
  out += std::to_string(response.status);
  out += ' ';
  out += response.reason.empty() ? HttpReasonPhrase(response.status)
                                 : response.reason.c_str();
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  for (const auto& [name, value] : response.extra_headers) {
    out += "\r\n";
    out += name;
    out += ": ";
    out += value;
  }
  out += "\r\nConnection: close\r\n\r\n";
  out += response.body;
  return out;
}

StatusOr<HttpRequest> ReadHttpRequest(int fd, const HttpLimits& limits) {
  HttpRequestParser parser(limits);
  char buffer[4096];
  for (;;) {
    URBANE_ASSIGN_OR_RETURN(std::size_t n,
                            RecvSome(fd, buffer, sizeof(buffer)));
    if (n == 0) {
      return Status::IoError("connection closed before a complete request");
    }
    switch (parser.Feed(buffer, n)) {
      case HttpRequestParser::State::kDone:
        return parser.request();
      case HttpRequestParser::State::kError:
        return parser.error();
      default:
        break;  // keep reading
    }
  }
}

Status WriteHttpResponse(int fd, const HttpResponse& response) {
  return SendAll(fd, FormatHttpResponse(response));
}

}  // namespace urbane::net
