#ifndef URBANE_CORE_EXECUTION_CONTEXT_H_
#define URBANE_CORE_EXECUTION_CONTEXT_H_

#include <cstddef>

#include "raster/point_splat.h"
#include "util/thread_pool.h"

namespace urbane::core {

/// How an executor spreads one query over cores. The default is serial,
/// keeping existing behavior, benches and bit-exactness unchanged; set
/// `num_threads > 1` (or 0 for "all") to parallelize the hot path.
///
/// Determinism contract: for a fixed `num_threads`, results are
/// reproducible regardless of pool size or scheduling, because every
/// parallel stage partitions work by `num_threads` and reduces partials in
/// partition order. Integer aggregates (COUNT) are bit-identical to the
/// serial result at every thread count; float SUM/AVG may differ from the
/// serial summation order within 1e-6-relative (MIN/MAX stay exact — min
/// and max are order-independent).
struct ExecutionContext {
  /// Worker pool to run on; null means `DefaultThreadPool()` whenever
  /// `num_threads` asks for parallelism. Borrowed — must outlive queries.
  ThreadPool* pool = nullptr;
  /// Partition count. 1 = serial (default); 0 = one per pool worker.
  std::size_t num_threads = 1;
  /// Workload floor (points / rows) under which stages stay serial.
  std::size_t min_parallel_points = raster::kDefaultParallelSplatMinPoints;

  /// Resolved partition count (>= 1).
  std::size_t EffectiveThreads() const {
    if (num_threads == 1) return 1;
    if (num_threads > 1) return num_threads;
    const ThreadPool* p = pool != nullptr ? pool : DefaultThreadPool();
    return p->num_threads() == 0 ? 1 : p->num_threads();
  }

  /// Pool to run on, or null when execution is serial.
  ThreadPool* EffectivePool() const {
    if (EffectiveThreads() <= 1) return nullptr;
    return pool != nullptr ? pool : DefaultThreadPool();
  }

  bool IsSerial() const { return EffectivePool() == nullptr; }

  /// The same knobs in the raster layer's vocabulary (pass-1 splats).
  raster::SplatParallelism Splat() const {
    raster::SplatParallelism par;
    par.pool = EffectivePool();
    par.partitions = EffectiveThreads();
    par.min_points = min_parallel_points;
    return par;
  }
};

/// Runs `body(partition, begin, end)` for each of `EffectiveThreads()`
/// contiguous partitions of `[0, count)`, blocking until all finish; runs
/// inline when the context is serial. Unlike `ParallelFor`, the partition
/// count is fixed by the context — not by pool size or load — so callers
/// can keep per-partition state (stamp buffers, stats, accumulators) and
/// reduce it in partition order, making results reproducible for a given
/// `num_threads` on any machine.
template <typename Body>
void ForEachPartition(const ExecutionContext& exec, std::size_t count,
                      Body&& body) {
  if (count == 0) {
    return;
  }
  const std::size_t parts = exec.EffectiveThreads();
  ThreadPool* pool = exec.EffectivePool();
  if (pool == nullptr || parts <= 1) {
    body(std::size_t{0}, std::size_t{0}, count);
    return;
  }
  const std::size_t chunk = (count + parts - 1) / parts;
  ThreadPool::Batch batch = pool->CreateBatch();
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t begin = p * chunk;
    const std::size_t end = begin + chunk < count ? begin + chunk : count;
    if (begin >= end) break;
    batch.Submit([&body, p, begin, end] { body(p, begin, end); });
  }
  batch.Wait();
}

}  // namespace urbane::core

#endif  // URBANE_CORE_EXECUTION_CONTEXT_H_
