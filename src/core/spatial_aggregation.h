#ifndef URBANE_CORE_SPATIAL_AGGREGATION_H_
#define URBANE_CORE_SPATIAL_AGGREGATION_H_

#include <list>
#include <memory>
#include <string>
#include <utility>

#include "core/accurate_join.h"
#include "core/index_join.h"
#include "core/planner.h"
#include "core/query.h"
#include "core/raster_join.h"
#include "core/scan_join.h"

namespace urbane::core {

/// Facade over the four executors — the library's main entry point.
///
/// Owns nothing heavy until first use: each executor is built lazily on the
/// first query routed to it and then reused (Raster Join's point textures,
/// pixel index, and the grid index are all query-independent). Typical use:
///
///   SpatialAggregation engine(taxis, neighborhoods);
///   AggregationQuery q;
///   q.aggregate = AggregateSpec::Count();
///   q.filter.WithTime(jan_begin, feb_begin);
///   auto result = engine.Execute(q, ExecutionMethod::kAccurateRaster);
///
/// or let the planner decide:
///
///   auto result = engine.ExecuteAuto(q, {.exact = false,
///                                        .epsilon_world = 15.0});
class SpatialAggregation {
 public:
  /// `points`/`regions` must outlive this object.
  ///
  /// `exec` sets the execution parallelism for every executor the facade
  /// builds. Precedence: a non-serial `exec` overrides whatever the
  /// per-executor options carry, so a caller who sets only `exec` gets a
  /// uniformly parallel engine; the serial default leaves the options
  /// untouched (so per-executor `raster_options.exec` still wins when the
  /// facade-level knob is not used).
  SpatialAggregation(const data::PointTable& points,
                     const data::RegionSet& regions,
                     const RasterJoinOptions& raster_options =
                         RasterJoinOptions(),
                     const IndexJoinOptions& index_options =
                         IndexJoinOptions(),
                     const ExecutionContext& exec = ExecutionContext());

  const data::PointTable& points() const { return points_; }
  const data::RegionSet& regions() const { return regions_; }

  /// Builds (or returns the cached) executor for a method.
  StatusOr<SpatialAggregationExecutor*> Executor(ExecutionMethod method);

  /// Result cache: interactive sessions revisit query states (brushing back
  /// to a previous window), so Execute can memoize results keyed by
  /// (method, aggregate, filter). The underlying tables are borrowed const,
  /// so entries never go stale. Capacity-bounded FIFO. Disabled by default
  /// (capacity 0) so latency measurements see real executor cost; Urbane's
  /// session layer turns it on.
  void set_result_cache_capacity(std::size_t capacity);
  std::size_t result_cache_hits() const { return cache_hits_; }
  std::size_t result_cache_size() const { return cache_.size(); }

  /// Fills in the query's points/regions and runs it with the given method.
  StatusOr<QueryResult> Execute(AggregationQuery query,
                                ExecutionMethod method);

  /// Runs several queries. When the method is kBoundedRaster and all
  /// queries share one filter, they execute as a single shared-splat batch
  /// (see BoundedRasterJoin::ExecuteBatch); otherwise they run one by one.
  StatusOr<std::vector<QueryResult>> ExecuteMany(
      std::vector<AggregationQuery> queries, ExecutionMethod method);

  /// Plans by cost model, then executes. `last_plan()` exposes the choice.
  StatusOr<QueryResult> ExecuteAuto(AggregationQuery query,
                                    const AccuracyRequirement& accuracy);

  const QueryPlan& last_plan() const { return last_plan_; }

  /// Estimated selectivity of a filter (exact evaluation; cheap relative to
  /// any join and cached by filter fingerprint would be overkill here).
  StatusOr<double> EstimateSelectivity(const FilterSpec& filter) const;

 private:
  /// Stable fingerprint of (method, aggregate, filter) for the cache.
  static std::string CacheKey(const AggregationQuery& query,
                              ExecutionMethod method);

  const data::PointTable& points_;
  const data::RegionSet& regions_;
  RasterJoinOptions raster_options_;
  IndexJoinOptions index_options_;
  ExecutionContext exec_;

  std::unique_ptr<ScanJoin> scan_;
  std::unique_ptr<IndexJoin> index_;
  std::unique_ptr<BoundedRasterJoin> raster_;
  std::unique_ptr<AccurateRasterJoin> accurate_;
  QueryPlan last_plan_;

  std::size_t cache_capacity_ = 0;
  std::size_t cache_hits_ = 0;
  std::list<std::pair<std::string, QueryResult>> cache_;  // FIFO order
};

}  // namespace urbane::core

#endif  // URBANE_CORE_SPATIAL_AGGREGATION_H_
