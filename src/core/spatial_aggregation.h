#ifndef URBANE_CORE_SPATIAL_AGGREGATION_H_
#define URBANE_CORE_SPATIAL_AGGREGATION_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/accurate_join.h"
#include "core/index_join.h"
#include "core/planner.h"
#include "core/query.h"
#include "core/query_cache.h"
#include "core/raster_join.h"
#include "core/scan_join.h"
#include "core/zone_map.h"
#include "shard/sharded_executor.h"

namespace urbane::core {

/// Facade over the four executors — the library's main entry point.
///
/// Owns nothing heavy until first use: each executor is built lazily on the
/// first query routed to it and then reused (Raster Join's point textures,
/// pixel index, and the grid index are all query-independent). Typical use:
///
///   SpatialAggregation engine(taxis, neighborhoods);
///   AggregationQuery q;
///   q.aggregate = AggregateSpec::Count();
///   q.filter.WithTime(jan_begin, feb_begin);
///   auto result = engine.Execute(q, ExecutionMethod::kAccurateRaster);
///
/// or let the planner decide:
///
///   auto result = engine.ExecuteAuto(q, {.exact = false,
///                                        .epsilon_world = 15.0});
///
/// Thread-safety contract: one engine serves many concurrent sessions.
/// Execute / ExecuteMany / ExecuteAuto / EstimateSelectivity may be called
/// from any number of threads. Executor construction and any rebuild (the
/// ExecuteAuto resolution bump) happen under a mutex; because the executors
/// keep per-query stats, execution itself is serialized per method (two
/// sessions can run scan and raster concurrently, but not two rasters) —
/// result-cache hits bypass that lock entirely, taking only a cache shard
/// mutex, which is what keeps revisited brush states concurrent.
class SpatialAggregation {
 public:
  /// `points`/`regions` must outlive this object.
  ///
  /// `exec` sets the execution parallelism for every executor the facade
  /// builds. Precedence: a non-serial `exec` overrides whatever the
  /// per-executor options carry, so a caller who sets only `exec` gets a
  /// uniformly parallel engine; the serial default leaves the options
  /// untouched (so per-executor `raster_options.exec` still wins when the
  /// facade-level knob is not used).
  SpatialAggregation(const data::PointTable& points,
                     const data::RegionSet& regions,
                     const RasterJoinOptions& raster_options =
                         RasterJoinOptions(),
                     const IndexJoinOptions& index_options =
                         IndexJoinOptions(),
                     const ExecutionContext& exec = ExecutionContext());

  const data::PointTable& points() const { return points_; }
  const data::RegionSet& regions() const { return regions_; }

  /// Attaches the block zone maps of a store-backed table: every query's
  /// filter is pruned against them and executors skip the pruned blocks
  /// (`AggregationQuery::candidate_ranges`). Call once, before the first
  /// query; `zone_maps` is borrowed and must outlive the engine. Pruning
  /// never changes results (see ZoneMapIndex), only the rows visited.
  void AttachZoneMaps(const ZoneMapIndex* zone_maps) {
    zone_maps_ = zone_maps;
  }
  const ZoneMapIndex* zone_maps() const { return zone_maps_; }

  /// Builds (or returns the cached) executor for a method. Construction is
  /// thread-safe; the pointer stays valid until the engine rebuilds that
  /// executor (e.g. an ExecuteAuto resolution bump), so concurrent sessions
  /// should prefer Execute over holding executor pointers.
  StatusOr<SpatialAggregationExecutor*> Executor(ExecutionMethod method);

  /// Result cache (core::QueryCache): interactive sessions revisit query
  /// states (brushing back to a previous window), so Execute memoizes
  /// results keyed by a fingerprint of (method, aggregate, filter, viewport
  /// window, canvas resolution, executor-config epoch). Any executor
  /// rebuild bumps the epoch, so entries computed under an older config —
  /// in particular a coarser ε — can never hit again. Disabled by default
  /// (capacity 0) so latency measurements see real executor cost; Urbane's
  /// session layer / the CLI `cache` command turn it on.
  /// Scatter-gather fan-out: with `num_shards > 1` every Execute runs as a
  /// sharded pass — the row space splits into that many contiguous shards
  /// (block-aligned when zone maps are attached), each shard executes the
  /// chosen method serially on the shared pool, and the partials merge per
  /// the shard-merge contract (see shard/shard_merge.h). 0 and 1 both mean
  /// unsharded. Takes every method mutex (no query can be in flight on the
  /// old configuration) and bumps the config epoch, so cached results from
  /// a different fan-out can never hit.
  void set_num_shards(std::size_t num_shards);
  std::size_t num_shards() const {
    return num_shards_.load(std::memory_order_acquire);
  }

  void set_result_cache_capacity(std::size_t capacity);
  void set_result_cache_max_bytes(std::size_t max_bytes);

  /// Scoped cache invalidation for appendable row sets (the ingest layer's
  /// LiveEngine): drops exactly the cached answers whose time filter
  /// intersects the appended half-open interval, plus every entry with no
  /// time filter. No epoch bump — answers over fully-closed time ranges
  /// outside the interval stay served from cache. Returns entries dropped.
  std::size_t InvalidateTimeRange(std::int64_t begin, std::int64_t end) {
    return cache_.InvalidateTimeOverlap(begin, end);
  }
  QueryCacheStats result_cache_stats() const { return cache_.stats(); }
  std::size_t result_cache_hits() const { return cache_.stats().hits; }
  std::size_t result_cache_size() const { return cache_.stats().entries; }

  /// Rebuild counter mixed into every cache key; bumped whenever an
  /// executor's configuration changes (see ExecuteAuto).
  std::uint64_t config_epoch() const {
    return config_epoch_.load(std::memory_order_acquire);
  }

  /// Fills in the query's points/regions and runs it with the given method.
  ///
  /// Telemetry: when the event journal is enabled, emits `query.start` /
  /// `query.finish` (and `error`) events; when the slow-query flight
  /// recorder is armed, attaches a lightweight trace and commits it to the
  /// recorder if the wall time crosses the threshold; when metrics are
  /// enabled, feeds the `query.wall_seconds` histogram. With everything
  /// off the cost is three relaxed loads before the baseline path.
  StatusOr<QueryResult> Execute(AggregationQuery query,
                                ExecutionMethod method);

  /// Runs several queries. When the method is kBoundedRaster and all
  /// queries share one filter, the cache is probed per query and only the
  /// misses execute as a single shared-splat batch (see
  /// BoundedRasterJoin::ExecuteBatch); otherwise they run one by one.
  StatusOr<std::vector<QueryResult>> ExecuteMany(
      std::vector<AggregationQuery> queries, ExecutionMethod method);

  /// Plans by cost model, then executes. `last_plan()` exposes the choice.
  /// A plan that tightens the bounded-raster resolution rebuilds that
  /// executor and bumps the config epoch (invalidating stale-ε entries).
  StatusOr<QueryResult> ExecuteAuto(AggregationQuery query,
                                    const AccuracyRequirement& accuracy);

  /// Plan chosen by the most recent ExecuteAuto (copied under the state
  /// lock — safe against concurrent planners, though "last" is then
  /// whichever session planned most recently).
  QueryPlan last_plan() const;

  /// Estimated selectivity of a filter: a count-only pass over an evenly
  /// strided sample (no bitmap / id materialization), so planning costs
  /// O(min(n, sample)) time and O(1) memory.
  StatusOr<double> EstimateSelectivity(const FilterSpec& filter) const;

 private:
  static constexpr std::size_t kNumMethods = 4;
  static std::size_t MethodIndex(ExecutionMethod method) {
    return static_cast<std::size_t>(method);
  }

  /// Requires state_mu_ held.
  StatusOr<SpatialAggregationExecutor*> ExecutorLocked(ExecutionMethod method);

  /// The executor Execute dispatches to: the sharded wrapper when
  /// `num_shards() > 1`, the plain executor otherwise. Requires state_mu_
  /// held.
  StatusOr<SpatialAggregationExecutor*> ActiveExecutorLocked(
      ExecutionMethod method);

  /// The baseline query path (cache probe + executor dispatch), free of
  /// journal/recorder instrumentation. `cache_hit`, when non-null, reports
  /// whether the result came from the cache.
  StatusOr<QueryResult> ExecuteUnobserved(AggregationQuery query,
                                          ExecutionMethod method,
                                          bool* cache_hit);

  /// Cache key for `query` under the engine's *current* config (snapshots
  /// resolution + epoch under state_mu_). Stable while the query's
  /// method_mu_ is held, since rebuilds take that mutex too.
  std::uint64_t Fingerprint(const AggregationQuery& query,
                            ExecutionMethod method) const;

  const data::PointTable& points_;
  const data::RegionSet& regions_;
  const IndexJoinOptions index_options_;
  ExecutionContext exec_;
  const ZoneMapIndex* zone_maps_ = nullptr;  // set before first query

  /// Guards executor pointers, raster_options_ and last_plan_.
  mutable std::mutex state_mu_;
  /// Serializes Execute per method (executors keep per-query stats) and
  /// protects in-flight executions against a concurrent rebuild.
  std::array<std::mutex, kNumMethods> method_mu_;

  RasterJoinOptions raster_options_;  // resolution mutates in ExecuteAuto
  std::unique_ptr<ScanJoin> scan_;
  std::unique_ptr<IndexJoin> index_;
  std::unique_ptr<BoundedRasterJoin> raster_;
  std::unique_ptr<AccurateRasterJoin> accurate_;
  /// Sharded wrappers, one per method, built lazily like the executors
  /// above whenever num_shards_ > 1 (each owns its private per-shard inner
  /// executors — the plain ones above stay untouched).
  std::array<std::unique_ptr<shard::ShardedExecutor>, kNumMethods> sharded_;
  QueryPlan last_plan_;

  std::atomic<std::size_t> num_shards_{1};
  std::atomic<std::uint64_t> config_epoch_{0};
  QueryCache cache_;
};

}  // namespace urbane::core

#endif  // URBANE_CORE_SPATIAL_AGGREGATION_H_
