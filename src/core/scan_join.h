#ifndef URBANE_CORE_SCAN_JOIN_H_
#define URBANE_CORE_SCAN_JOIN_H_

#include <memory>

#include "core/execution_context.h"
#include "core/query.h"
#include "index/rtree.h"

namespace urbane::core {

/// Exact full-scan baseline: every (filtered) point is tested against the
/// regions whose bounding box contains it (bounding boxes served from a
/// packed R-tree so the scan is O(P log R) instead of O(P * R)).
///
/// This is the reference oracle the tests compare every other executor
/// against, and the "no preprocessing, no GPU" baseline of the evaluation.
class ScanJoin : public SpatialAggregationExecutor {
 public:
  /// Builds the region-box R-tree; `points`/`regions` must outlive this.
  /// `exec` parallelizes the scan (points are partitioned, each worker
  /// keeps a private accumulator vector, merged in partition order with
  /// `Accumulator::Merge`); the default is the historical serial scan.
  static StatusOr<std::unique_ptr<ScanJoin>> Create(
      const data::PointTable& points, const data::RegionSet& regions,
      const ExecutionContext& exec = ExecutionContext());

  StatusOr<QueryResult> Execute(const AggregationQuery& query) override;
  std::string name() const override { return "scan"; }
  bool exact() const override { return true; }
  const ExecutorStats& stats() const override { return stats_; }

  std::size_t MemoryBytes() const { return rtree_.MemoryBytes(); }

 private:
  ScanJoin(const data::PointTable& points, const data::RegionSet& regions,
           index::RTree rtree, const ExecutionContext& exec)
      : points_(points),
        regions_(regions),
        rtree_(std::move(rtree)),
        exec_(exec) {}

  const data::PointTable& points_;
  const data::RegionSet& regions_;
  index::RTree rtree_;
  ExecutionContext exec_;
  ExecutorStats stats_;
};

}  // namespace urbane::core

#endif  // URBANE_CORE_SCAN_JOIN_H_
