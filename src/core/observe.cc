#include "core/observe.h"

#include <string>

#include "raster/simd.h"

namespace urbane::core {
namespace {

void ObservePass(obs::MetricsRegistry& registry, const std::string& prefix,
                 const char* pass, double seconds) {
  // A pass that did not run (e.g. splat on a scan join) stays absent from
  // the registry rather than polluting histograms with zeros.
  if (seconds > 0.0) {
    registry.GetHistogram(prefix + pass).Observe(seconds);
  }
}

void ObserveCount(obs::MetricsRegistry& registry, const std::string& prefix,
                  const char* counter, std::size_t value) {
  if (value > 0) {
    registry.GetCounter(prefix + counter).Add(value);
  }
}

}  // namespace

void ObserveExecutorStats(const char* executor, const ExecutorStats& stats) {
  if (!obs::MetricsEnabled()) {
    return;
  }
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const std::string prefix = std::string("exec.") + executor + ".";
  registry.GetCounter(prefix + "queries").Add(1);
  registry.GetHistogram(prefix + "query_seconds").Observe(stats.query_seconds);
  ObservePass(registry, prefix, "filter_seconds", stats.filter_seconds);
  ObservePass(registry, prefix, "splat_seconds", stats.splat_seconds);
  ObservePass(registry, prefix, "sweep_seconds", stats.sweep_seconds);
  ObservePass(registry, prefix, "reduce_seconds", stats.reduce_seconds);
  ObservePass(registry, prefix, "refine_seconds", stats.refine_seconds);
  ObserveCount(registry, prefix, "points_scanned", stats.points_scanned);
  ObserveCount(registry, prefix, "points_bulk", stats.points_bulk);
  ObserveCount(registry, prefix, "pip_tests", stats.pip_tests);
  ObserveCount(registry, prefix, "pixels_touched", stats.pixels_touched);
  ObserveCount(registry, prefix, "boundary_pixels", stats.boundary_pixels);
  ObserveCount(registry, prefix, "raster.tiles", stats.tiles_visited);
  ObserveCount(registry, prefix, "raster.fragments", stats.simd_fragments);
  // Which kernel table the raster executors ran with (0 = scalar,
  // 1 = SSE2, 2 = AVX2) — one global gauge, since the level is
  // process-wide.
  registry.GetGauge("raster.simd_level")
      .Set(static_cast<double>(static_cast<int>(raster::ActiveSimdLevel())));
}

void FillProfilePassCosts(const ExecutorStats& stats,
                          obs::ProfilePassCosts* out) {
  if (out == nullptr) return;
  out->points_scanned = stats.points_scanned;
  out->points_bulk = stats.points_bulk;
  out->pip_tests = stats.pip_tests;
  out->pixels_touched = stats.pixels_touched;
  out->boundary_pixels = stats.boundary_pixels;
  out->tiles_visited = stats.tiles_visited;
  out->simd_fragments = stats.simd_fragments;
  out->filter_seconds = stats.filter_seconds;
  out->splat_seconds = stats.splat_seconds;
  out->sweep_seconds = stats.sweep_seconds;
  out->reduce_seconds = stats.reduce_seconds;
  out->refine_seconds = stats.refine_seconds;
  out->query_seconds = stats.query_seconds;
}

}  // namespace urbane::core
