#include "core/query.h"

#include "util/string_util.h"

namespace urbane::core {

Status AggregationQuery::Validate() const {
  if (points == nullptr) {
    return Status::InvalidArgument("query has no point data set");
  }
  if (regions == nullptr) {
    return Status::InvalidArgument("query has no region set");
  }
  if (aggregate.NeedsAttribute()) {
    if (aggregate.attribute.empty()) {
      return Status::InvalidArgument(
          std::string(AggregateKindToString(aggregate.kind)) +
          " requires an attribute");
    }
    if (!points->schema().HasAttribute(aggregate.attribute)) {
      return Status::InvalidArgument("unknown aggregate attribute: " +
                                     aggregate.attribute);
    }
  }
  for (const AttributeRange& range : filter.attribute_ranges) {
    if (!points->schema().HasAttribute(range.attribute)) {
      return Status::InvalidArgument("unknown filter attribute: " +
                                     range.attribute);
    }
    if (range.lo > range.hi) {
      return Status::InvalidArgument("empty filter range on attribute: " +
                                     range.attribute);
    }
  }
  if (filter.time_range && filter.time_range->begin > filter.time_range->end) {
    return Status::InvalidArgument("empty time range");
  }
  return Status::OK();
}

std::string AggregationQuery::ToString() const {
  std::string out = "SELECT ";
  out += AggregateKindToString(aggregate.kind);
  out += "(";
  out += aggregate.NeedsAttribute() ? aggregate.attribute : "*";
  out += ") FROM P, R WHERE P.loc INSIDE R.geometry";
  if (filter.spatial_window) {
    out += StringPrintf(" AND P.loc INSIDE BOX [%g, %g, %g, %g]",
                        filter.spatial_window->min_x,
                        filter.spatial_window->min_y,
                        filter.spatial_window->max_x,
                        filter.spatial_window->max_y);
  }
  if (filter.time_range) {
    out += StringPrintf(" AND P.t IN [%lld, %lld)",
                        static_cast<long long>(filter.time_range->begin),
                        static_cast<long long>(filter.time_range->end));
  }
  for (const AttributeRange& range : filter.attribute_ranges) {
    out += StringPrintf(" AND P.%s IN [%g, %g]", range.attribute.c_str(),
                        range.lo, range.hi);
  }
  out += " GROUP BY R.id";
  return out;
}

}  // namespace urbane::core
