#include "core/planner.h"

#include <algorithm>
#include <cmath>

#include "core/raster_join.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "util/string_util.h"

namespace urbane::core {

const char* ExecutionMethodToString(ExecutionMethod method) {
  switch (method) {
    case ExecutionMethod::kScan:
      return "scan";
    case ExecutionMethod::kIndexJoin:
      return "index";
    case ExecutionMethod::kBoundedRaster:
      return "raster";
    case ExecutionMethod::kAccurateRaster:
      return "accurate";
  }
  return "unknown";
}

QueryPlan PlanQuery(const WorkloadProfile& profile,
                    const AccuracyRequirement& accuracy,
                    int default_resolution) {
  QueryPlan plan;
  const double p =
      std::max(1.0, profile.selectivity *
                        static_cast<double>(profile.num_points));
  const double regions = std::max<double>(1.0, profile.num_regions);
  const double vertices =
      std::max<double>(4.0, profile.total_region_vertices);

  // Canvas geometry for the raster estimates.
  int resolution = default_resolution;
  if (!accuracy.exact && accuracy.epsilon_world > 0.0 &&
      !profile.world.IsEmpty()) {
    resolution = ResolutionForEpsilon(profile.world, accuracy.epsilon_world);
  }
  const double aspect =
      profile.world.IsEmpty()
          ? 1.0
          : std::min(profile.world.Width(), profile.world.Height()) /
                std::max(profile.world.Width(), profile.world.Height());
  const double canvas_pixels =
      static_cast<double>(resolution) * resolution * std::max(0.05, aspect);

  // Unit costs (relative, calibrated on the bench machine's orders of
  // magnitude; only ratios matter).
  constexpr double kPipCost = 8.0;      // exact point-in-polygon test
  constexpr double kProbeCost = 2.0;    // R-tree descend per point
  constexpr double kSplatCost = 1.0;    // one point through the splat stage
  constexpr double kPixelCost = 0.25;   // one covered pixel reduction
  constexpr double kCellCost = 1.0;     // one grid cell classification

  plan.cost_scan = p * (kProbeCost * std::log2(regions + 1.0) + kPipCost);

  // Index join: classify ~vertices * cells-per-edge boundary cells, test the
  // points in them, take interior cells wholesale.
  const double cells = std::max(1.0, static_cast<double>(profile.num_points) / 64.0);
  const double boundary_cells =
      std::min(cells, vertices * 4.0 + regions * std::sqrt(cells) * 0.5);
  const double pts_per_cell =
      static_cast<double>(profile.num_points) / cells;
  plan.cost_index = boundary_cells * (kCellCost + pts_per_cell * kPipCost) +
                    p * 0.25 /* interior bulk accumulation */;

  // Raster join: splat surviving points + sweep covered pixels. Regions in a
  // partition cover the canvas about once.
  plan.cost_raster = p * kSplatCost + canvas_pixels * kPixelCost;
  if (accuracy.exact) {
    // Accurate variant adds boundary-pixel exact work.
    const double boundary_pixels = vertices * 2.0 +
                                   regions * static_cast<double>(resolution) *
                                       0.05;
    const double pts_per_pixel = p / std::max(1.0, canvas_pixels);
    plan.cost_raster +=
        boundary_pixels * (1.0 + pts_per_pixel * kPipCost);
  }

  // Pick the cheapest admissible method. The inexact branch admits every
  // method — an exact answer trivially satisfies an ε bound — so the index
  // join wins here too when preprocessing already paid for it.
  if (!accuracy.exact) {
    plan.method = ExecutionMethod::kBoundedRaster;
    double best = plan.cost_raster;
    if (plan.cost_scan < best) {
      plan.method = ExecutionMethod::kScan;
      best = plan.cost_scan;
    }
    if (profile.has_point_index && plan.cost_index < best) {
      plan.method = ExecutionMethod::kIndexJoin;
      best = plan.cost_index;
    }
  } else {
    plan.method = ExecutionMethod::kScan;
    double best = plan.cost_scan;
    if (profile.has_point_index && plan.cost_index < best) {
      plan.method = ExecutionMethod::kIndexJoin;
      best = plan.cost_index;
    }
    if (plan.cost_raster < best) {
      plan.method = ExecutionMethod::kAccurateRaster;
      best = plan.cost_raster;
    }
  }
  plan.resolution = (plan.method == ExecutionMethod::kBoundedRaster ||
                     plan.method == ExecutionMethod::kAccurateRaster)
                        ? resolution
                        : 0;
  plan.shards = std::max<std::size_t>(1, profile.available_shards);
  plan.explanation = StringPrintf(
      "planned %s (costs: scan=%.3g index=%.3g%s raster=%.3g; "
      "P=%.3g after selectivity=%.2f, R=%zu, V=%zu, res=%d, shards=%zu)",
      ExecutionMethodToString(plan.method), plan.cost_scan, plan.cost_index,
      profile.has_point_index ? "" : " [no index]", plan.cost_raster, p,
      profile.selectivity, profile.num_regions,
      profile.total_region_vertices, resolution, plan.shards);
  if (obs::MetricsEnabled()) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    registry.GetCounter("planner.plans").Add(1);
    registry
        .GetCounter(std::string("planner.chosen.") +
                    ExecutionMethodToString(plan.method))
        .Add(1);
  }
  return plan;
}

}  // namespace urbane::core
