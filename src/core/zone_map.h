#ifndef URBANE_CORE_ZONE_MAP_H_
#define URBANE_CORE_ZONE_MAP_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/filter.h"
#include "core/row_range.h"
#include "data/schema.h"
#include "geometry/bounding_box.h"
#include "util/status.h"

namespace urbane::core {

/// Per-block column statistics from the store footer: the spatial bbox,
/// time min/max, and per-attribute min/max of one contiguous row block.
/// Empty or all-NaN columns carry inverted extents (min > max), which every
/// pruning comparison naturally rejects.
struct BlockZoneMap {
  std::uint64_t row_begin = 0;
  std::uint64_t row_count = 0;
  float min_x = 0.0f;
  float max_x = 0.0f;
  float min_y = 0.0f;
  float max_y = 0.0f;
  std::int64_t min_t = 0;
  std::int64_t max_t = 0;
  std::vector<float> attr_min;  // one entry per schema attribute
  std::vector<float> attr_max;

  std::uint64_t row_end() const { return row_begin + row_count; }
};

/// Outcome of pruning one filter against the block footer.
struct PruneResult {
  RowRangeSet candidates;          // rows the filter might match
  std::uint64_t blocks_total = 0;
  std::uint64_t blocks_pruned = 0;
  std::uint64_t rows_pruned = 0;
};

/// The block footer as a queryable index. A block survives pruning iff the
/// filter's constraints all overlap its zone map:
///
///   * time [begin, end):    min_t < end  &&  max_t >= begin
///   * window (closed box):  block bbox intersects the window
///   * attribute [lo, hi]:   attr_min <= hi  &&  attr_max >= lo
///
/// Every pruned row therefore fails the row-level filter too, so skipping
/// pruned blocks removes only rows that contribute nothing to any
/// accumulator — executor results are bit-identical with and without
/// pruning, at every thread count.
class ZoneMapIndex {
 public:
  /// Validates that the blocks tile [0, total_rows) contiguously and carry
  /// `attribute_count` min/max entries each.
  static StatusOr<ZoneMapIndex> Create(std::vector<BlockZoneMap> blocks,
                                       std::size_t attribute_count);

  /// Blocks the filter cannot rule out, coalesced into row ranges.
  /// Attribute names that do not resolve in `schema` do not prune (the
  /// executor's own filter compile reports them as errors).
  PruneResult Prune(const FilterSpec& spec, const data::Schema& schema) const;

  /// Fraction of rows surviving Prune, in [0, 1] — the planner's zone-map
  /// selectivity bound (the true selectivity can only be lower).
  double CandidateFraction(const FilterSpec& spec,
                           const data::Schema& schema) const;

  std::size_t block_count() const { return blocks_.size(); }
  std::uint64_t total_rows() const { return total_rows_; }
  const std::vector<BlockZoneMap>& blocks() const { return blocks_; }

  /// Union of block bboxes. Bit-exact with PointTable::Bounds() over the
  /// same rows: both fold the same f32 extents through double Extend.
  geometry::BoundingBox Bounds() const;

  /// Union of block time extents; {0, 0} when empty.
  std::pair<std::int64_t, std::int64_t> TimeRange() const;

 private:
  std::vector<BlockZoneMap> blocks_;
  std::uint64_t total_rows_ = 0;
};

}  // namespace urbane::core

#endif  // URBANE_CORE_ZONE_MAP_H_
