#include "core/filter.h"

namespace urbane::core {

StatusOr<CompiledFilter> CompiledFilter::Compile(
    const FilterSpec& spec, const data::PointTable& table) {
  CompiledFilter compiled;
  compiled.time_range_ = spec.time_range;
  if (spec.spatial_window) {
    if (spec.spatial_window->IsEmpty()) {
      return Status::InvalidArgument("empty spatial window");
    }
    compiled.window_ = spec.spatial_window;
  }
  for (const AttributeRange& range : spec.attribute_ranges) {
    const int col = table.schema().AttributeIndex(range.attribute);
    if (col < 0) {
      return Status::InvalidArgument("filter references unknown attribute: " +
                                     range.attribute);
    }
    if (range.lo > range.hi) {
      return Status::InvalidArgument("empty filter range on attribute: " +
                                     range.attribute);
    }
    compiled.ranges_.push_back({static_cast<std::size_t>(col),
                                static_cast<float>(range.lo),
                                static_cast<float>(range.hi)});
  }
  return compiled;
}

bool CompiledFilter::Matches(const data::PointTable& table,
                             std::size_t row) const {
  if (time_range_ && !time_range_->Contains(table.t(row))) {
    return false;
  }
  if (window_ && !window_->Contains({table.x(row), table.y(row)})) {
    return false;
  }
  for (const BoundRange& range : ranges_) {
    const float v = table.attribute(row, range.column);
    if (v < range.lo || v > range.hi) {
      return false;
    }
  }
  return true;
}

StatusOr<FilterSelection> EvaluateFilter(const FilterSpec& spec,
                                         const data::PointTable& table) {
  return EvaluateFilter(spec, table, ExecutionContext());
}

StatusOr<double> EstimateFilterSelectivity(const FilterSpec& spec,
                                           const data::PointTable& table,
                                           std::size_t max_sample) {
  URBANE_ASSIGN_OR_RETURN(CompiledFilter compiled,
                          CompiledFilter::Compile(spec, table));
  const std::size_t n = table.size();
  if (n == 0) {
    return 0.0;
  }
  if (compiled.IsTrivial()) {
    return 1.0;
  }
  if (max_sample == 0) {
    max_sample = 1;
  }
  const std::size_t stride =
      n <= max_sample ? 1 : (n + max_sample - 1) / max_sample;
  std::size_t tested = 0;
  std::size_t matched = 0;
  for (std::size_t i = 0; i < n; i += stride) {
    ++tested;
    if (compiled.Matches(table, i)) {
      ++matched;
    }
  }
  return static_cast<double>(matched) / static_cast<double>(tested);
}

StatusOr<FilterSelection> EvaluateFilter(const FilterSpec& spec,
                                         const data::PointTable& table,
                                         const ExecutionContext& exec) {
  return EvaluateFilter(spec, table, exec, nullptr);
}

StatusOr<FilterSelection> EvaluateFilter(const FilterSpec& spec,
                                         const data::PointTable& table,
                                         const ExecutionContext& exec,
                                         const RowRangeSet* candidates) {
  URBANE_ASSIGN_OR_RETURN(CompiledFilter compiled,
                          CompiledFilter::Compile(spec, table));
  FilterSelection selection;
  const std::size_t n = table.size();
  selection.bitmap.assign(n, 0);
  if (compiled.IsTrivial() && candidates == nullptr) {
    selection.ids.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      selection.bitmap[i] = 1;
      selection.ids[i] = static_cast<std::uint32_t>(i);
    }
    return selection;
  }
  ThreadPool* pool = exec.EffectivePool();
  const std::size_t parts = exec.EffectiveThreads();
  if (pool == nullptr || parts <= 1 || n < exec.min_parallel_points) {
    selection.ids.reserve(n / 4);
    ForEachCandidateRow(candidates, 0, n, [&](std::uint64_t i) {
      if (compiled.Matches(table, i)) {
        selection.bitmap[i] = 1;
        selection.ids.push_back(static_cast<std::uint32_t>(i));
      }
    });
    return selection;
  }
  // Pass A: partitioned predicate evaluation into the bitmap, counting
  // survivors per partition. Candidate ranges narrow each partition's row
  // walk; the bitmap (and hence pass B) is unaffected by how rows were
  // skipped.
  const std::size_t chunk = (n + parts - 1) / parts;
  std::vector<std::size_t> counts(parts, 0);
  ThreadPool::Batch batch = pool->CreateBatch();
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t begin = p * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    batch.Submit([&, p, begin, end] {
      std::size_t local = 0;
      ForEachCandidateRow(candidates, begin, end, [&](std::uint64_t i) {
        if (compiled.Matches(table, i)) {
          selection.bitmap[i] = 1;
          ++local;
        }
      });
      counts[p] = local;
    });
  }
  batch.Wait();
  // Pass B: prefix offsets, then each partition writes its ids in place —
  // the id list comes out ascending, identical to the serial scan.
  std::vector<std::size_t> offsets(parts + 1, 0);
  for (std::size_t p = 0; p < parts; ++p) {
    offsets[p + 1] = offsets[p] + counts[p];
  }
  selection.ids.resize(offsets[parts]);
  ThreadPool::Batch fill = pool->CreateBatch();
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t begin = p * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    fill.Submit([&, p, begin, end] {
      std::size_t cursor = offsets[p];
      for (std::size_t i = begin; i < end; ++i) {
        if (selection.bitmap[i]) {
          selection.ids[cursor++] = static_cast<std::uint32_t>(i);
        }
      }
    });
  }
  fill.Wait();
  return selection;
}

}  // namespace urbane::core
