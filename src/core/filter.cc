#include "core/filter.h"

namespace urbane::core {

StatusOr<CompiledFilter> CompiledFilter::Compile(
    const FilterSpec& spec, const data::PointTable& table) {
  CompiledFilter compiled;
  compiled.time_range_ = spec.time_range;
  if (spec.spatial_window) {
    if (spec.spatial_window->IsEmpty()) {
      return Status::InvalidArgument("empty spatial window");
    }
    compiled.window_ = spec.spatial_window;
  }
  for (const AttributeRange& range : spec.attribute_ranges) {
    const int col = table.schema().AttributeIndex(range.attribute);
    if (col < 0) {
      return Status::InvalidArgument("filter references unknown attribute: " +
                                     range.attribute);
    }
    if (range.lo > range.hi) {
      return Status::InvalidArgument("empty filter range on attribute: " +
                                     range.attribute);
    }
    compiled.ranges_.push_back({static_cast<std::size_t>(col),
                                static_cast<float>(range.lo),
                                static_cast<float>(range.hi)});
  }
  return compiled;
}

bool CompiledFilter::Matches(const data::PointTable& table,
                             std::size_t row) const {
  if (time_range_ && !time_range_->Contains(table.t(row))) {
    return false;
  }
  if (window_ && !window_->Contains({table.x(row), table.y(row)})) {
    return false;
  }
  for (const BoundRange& range : ranges_) {
    const float v = table.attribute(row, range.column);
    if (v < range.lo || v > range.hi) {
      return false;
    }
  }
  return true;
}

StatusOr<FilterSelection> EvaluateFilter(const FilterSpec& spec,
                                         const data::PointTable& table) {
  URBANE_ASSIGN_OR_RETURN(CompiledFilter compiled,
                          CompiledFilter::Compile(spec, table));
  FilterSelection selection;
  const std::size_t n = table.size();
  selection.bitmap.assign(n, 0);
  if (compiled.IsTrivial()) {
    selection.ids.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      selection.bitmap[i] = 1;
      selection.ids[i] = static_cast<std::uint32_t>(i);
    }
    return selection;
  }
  selection.ids.reserve(n / 4);
  for (std::size_t i = 0; i < n; ++i) {
    if (compiled.Matches(table, i)) {
      selection.bitmap[i] = 1;
      selection.ids.push_back(static_cast<std::uint32_t>(i));
    }
  }
  return selection;
}

}  // namespace urbane::core
