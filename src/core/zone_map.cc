#include "core/zone_map.h"

#include "util/string_util.h"

namespace urbane::core {

StatusOr<ZoneMapIndex> ZoneMapIndex::Create(std::vector<BlockZoneMap> blocks,
                                            std::size_t attribute_count) {
  std::uint64_t next_row = 0;
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const BlockZoneMap& block = blocks[b];
    if (block.row_begin != next_row) {
      return Status::InvalidArgument(StringPrintf(
          "zone map %zu starts at row %llu, expected %llu", b,
          static_cast<unsigned long long>(block.row_begin),
          static_cast<unsigned long long>(next_row)));
    }
    if (block.row_count == 0) {
      return Status::InvalidArgument(
          StringPrintf("zone map %zu covers zero rows", b));
    }
    if (block.attr_min.size() != attribute_count ||
        block.attr_max.size() != attribute_count) {
      return Status::InvalidArgument(StringPrintf(
          "zone map %zu has %zu/%zu attribute extents, schema expects %zu",
          b, block.attr_min.size(), block.attr_max.size(), attribute_count));
    }
    next_row = block.row_end();
  }
  ZoneMapIndex index;
  index.blocks_ = std::move(blocks);
  index.total_rows_ = next_row;
  return index;
}

PruneResult ZoneMapIndex::Prune(const FilterSpec& spec,
                                const data::Schema& schema) const {
  // Resolve attribute names once; unresolvable names never prune.
  std::vector<std::pair<std::size_t, const AttributeRange*>> bound;
  bound.reserve(spec.attribute_ranges.size());
  for (const AttributeRange& range : spec.attribute_ranges) {
    const int col = schema.AttributeIndex(range.attribute);
    if (col >= 0) {
      bound.emplace_back(static_cast<std::size_t>(col), &range);
    }
  }

  PruneResult result;
  result.blocks_total = blocks_.size();
  std::vector<RowRange> survivors;
  survivors.reserve(blocks_.size());
  for (const BlockZoneMap& block : blocks_) {
    bool keep = true;
    if (spec.time_range) {
      keep = block.min_t < spec.time_range->end &&
             block.max_t >= spec.time_range->begin;
    }
    if (keep && spec.spatial_window) {
      const geometry::BoundingBox& w = *spec.spatial_window;
      keep = static_cast<double>(block.min_x) <= w.max_x &&
             static_cast<double>(block.max_x) >= w.min_x &&
             static_cast<double>(block.min_y) <= w.max_y &&
             static_cast<double>(block.max_y) >= w.min_y;
    }
    for (std::size_t i = 0; keep && i < bound.size(); ++i) {
      const AttributeRange& range = *bound[i].second;
      const float lo = block.attr_min[bound[i].first];
      const float hi = block.attr_max[bound[i].first];
      keep = static_cast<double>(lo) <= range.hi &&
             static_cast<double>(hi) >= range.lo;
    }
    if (keep) {
      survivors.push_back({block.row_begin, block.row_end()});
    } else {
      ++result.blocks_pruned;
      result.rows_pruned += block.row_count;
    }
  }
  result.candidates = RowRangeSet(std::move(survivors));
  return result;
}

double ZoneMapIndex::CandidateFraction(const FilterSpec& spec,
                                       const data::Schema& schema) const {
  if (total_rows_ == 0) {
    return 0.0;
  }
  const PruneResult result = Prune(spec, schema);
  return static_cast<double>(result.candidates.total_rows()) /
         static_cast<double>(total_rows_);
}

geometry::BoundingBox ZoneMapIndex::Bounds() const {
  geometry::BoundingBox box;
  for (const BlockZoneMap& block : blocks_) {
    if (block.min_x > block.max_x || block.min_y > block.max_y) {
      continue;  // empty/all-NaN block: no spatial extent
    }
    box.Extend({block.min_x, block.min_y});
    box.Extend({block.max_x, block.max_y});
  }
  return box;
}

std::pair<std::int64_t, std::int64_t> ZoneMapIndex::TimeRange() const {
  bool any = false;
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  for (const BlockZoneMap& block : blocks_) {
    if (block.min_t > block.max_t) {
      continue;
    }
    if (!any) {
      lo = block.min_t;
      hi = block.max_t;
      any = true;
    } else {
      lo = std::min(lo, block.min_t);
      hi = std::max(hi, block.max_t);
    }
  }
  return {lo, hi};
}

}  // namespace urbane::core
