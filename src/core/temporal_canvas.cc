#include "core/temporal_canvas.h"

#include <algorithm>

#include "raster/rasterizer.h"
#include "util/timer.h"

namespace urbane::core {

StatusOr<std::unique_ptr<TemporalCanvasIndex>> TemporalCanvasIndex::Build(
    const data::PointTable& points, const data::RegionSet& regions,
    const TemporalCanvasOptions& options) {
  if (options.resolution <= 0 || options.time_bins <= 0) {
    return Status::InvalidArgument(
        "temporal canvas needs positive resolution and time_bins");
  }
  WallTimer timer;
  // Reuse the raster-join canvas validation/derivation.
  RasterJoinOptions raster_options;
  raster_options.resolution = options.resolution;
  raster_options.world = options.world;
  URBANE_ASSIGN_OR_RETURN(
      std::unique_ptr<BoundedRasterJoin> probe,
      BoundedRasterJoin::Create(points, regions, raster_options));

  auto index = std::unique_ptr<TemporalCanvasIndex>(new TemporalCanvasIndex(
      points, regions, probe->canvas(), options.time_bins));
  if (options.time_domain.has_value()) {
    if (options.time_domain->second < options.time_domain->first) {
      return Status::InvalidArgument("temporal canvas time_domain inverted");
    }
    index->min_time_ = options.time_domain->first;
    index->max_time_ = options.time_domain->second;
  } else {
    const auto [t0, t1] = points.TimeRange();
    index->min_time_ = t0;
    index->max_time_ = t1;
  }
  index->pixels_per_canvas_ =
      static_cast<std::size_t>(index->viewport_.width()) *
      index->viewport_.height();
  index->prefix_.assign(
      index->pixels_per_canvas_ *
          (static_cast<std::size_t>(options.time_bins) + 1),
      0);

  // Bin pass: accumulate each point into its bin's canvas slice (stored at
  // prefix index bin+1), then prefix-sum along time.
  for (std::size_t i = 0; i < points.size(); ++i) {
    int ix;
    int iy;
    if (!index->viewport_.PixelForPoint({points.x(i), points.y(i)}, ix, iy)) {
      continue;
    }
    const int bin = index->BinForTime(points.t(i));
    const std::size_t offset =
        (static_cast<std::size_t>(bin) + 1) * index->pixels_per_canvas_ +
        static_cast<std::size_t>(iy) * index->viewport_.width() + ix;
    ++index->prefix_[offset];
  }
  for (int b = 1; b <= options.time_bins; ++b) {
    std::uint32_t* current =
        index->prefix_.data() +
        static_cast<std::size_t>(b) * index->pixels_per_canvas_;
    const std::uint32_t* previous =
        current - index->pixels_per_canvas_;
    for (std::size_t p = 0; p < index->pixels_per_canvas_; ++p) {
      current[p] += previous[p];
    }
  }
  index->build_seconds_ = timer.ElapsedSeconds();
  return index;
}

Status TemporalCanvasIndex::Append(const data::PointTable& batch) {
  for (std::size_t i = 0; i < batch.size(); ++i) {
    int ix;
    int iy;
    if (!viewport_.PixelForPoint({batch.x(i), batch.y(i)}, ix, iy)) {
      continue;
    }
    const int bin = BinForTime(batch.t(i));
    const std::size_t pixel =
        static_cast<std::size_t>(iy) * viewport_.width() + ix;
    // Only the prefix canvases above this bin change: prefix_[p] counts all
    // bins < p, so a point in `bin` is visible from p = bin + 1 upward.
    for (int p = bin + 1; p <= time_bins_; ++p) {
      ++prefix_[static_cast<std::size_t>(p) * pixels_per_canvas_ + pixel];
    }
  }
  return Status::OK();
}

int TemporalCanvasIndex::BinForTime(std::int64_t t) const {
  // Largest bin whose start is <= t; defined via BinStart so the two
  // helpers can never disagree about edge ownership (float rounding in the
  // bin-width division would otherwise split them).
  int lo = 0;
  int hi = time_bins_ - 1;
  while (lo < hi) {
    const int mid = (lo + hi + 1) / 2;
    if (BinStart(mid) <= t) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

std::int64_t TemporalCanvasIndex::BinStart(int b) const {
  const double span = static_cast<double>(max_time_ - min_time_) + 1.0;
  return min_time_ + static_cast<std::int64_t>(
                         span * b / static_cast<double>(time_bins_));
}

StatusOr<QueryResult> TemporalCanvasIndex::QueryTimeWindow(
    std::int64_t t_begin, std::int64_t t_end, std::int64_t* snapped_begin,
    std::int64_t* snapped_end) {
  if (t_end <= t_begin) {
    return Status::InvalidArgument("empty time window");
  }
  // Snap outward to bin edges (never drops a requested point).
  int b0 = 0;
  while (b0 < time_bins_ && BinStart(b0 + 1) <= t_begin) {
    ++b0;
  }
  int b1 = b0 + 1;
  while (b1 < time_bins_ && BinStart(b1) < t_end) {
    ++b1;
  }
  if (snapped_begin != nullptr) {
    *snapped_begin = BinStart(b0);
  }
  if (snapped_end != nullptr) {
    *snapped_end = b1 == time_bins_ ? max_time_ + 1 : BinStart(b1);
  }

  const std::uint32_t* lo = PrefixCanvas(b0);
  const std::uint32_t* hi = PrefixCanvas(b1);

  QueryResult result;
  result.values.reserve(regions_.size());
  result.counts.reserve(regions_.size());
  const int width = viewport_.width();
  for (std::size_t r = 0; r < regions_.size(); ++r) {
    std::uint64_t count = 0;
    for (const geometry::Polygon& part : regions_[r].geometry.parts()) {
      raster::ScanlineFillPolygon(
          viewport_, part, [&](int y, int x0, int x1) {
            const std::size_t base = static_cast<std::size_t>(y) * width;
            for (int x = x0; x < x1; ++x) {
              count += hi[base + x] - lo[base + x];
            }
          });
    }
    result.counts.push_back(count);
    result.values.push_back(static_cast<double>(count));
  }
  return result;
}

std::size_t TemporalCanvasIndex::MemoryBytes() const {
  // Committed size, not capacity: the prefix stack is built once and never
  // grows, so capacity() could overstate (growth slack) what the index
  // actually holds; the object header itself is counted so T2/F10 memory
  // rows reflect the whole structure.
  return sizeof(*this) + prefix_.size() * sizeof(std::uint32_t);
}

}  // namespace urbane::core
