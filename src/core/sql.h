#ifndef URBANE_CORE_SQL_H_
#define URBANE_CORE_SQL_H_

#include <string>

#include "core/aggregate.h"
#include "core/filter.h"
#include "util/status.h"

namespace urbane::core {

/// A parsed spatial-aggregation statement, before binding the FROM names to
/// actual tables (see app::DatasetManager-based helpers / examples).
struct ParsedQuery {
  std::string points_dataset;  // first FROM item (P)
  std::string regions_layer;   // second FROM item (R)
  AggregateSpec aggregate;
  FilterSpec filter;
};

/// Parses the paper's SQL-like query dialect:
///
///   SELECT AGG(attr | *) FROM <points>, <regions>
///   [WHERE [P.loc INSIDE R.geometry]
///          [AND t IN [t0, t1)]
///          [AND attr IN [lo, hi]]
///          [AND attr BETWEEN lo AND hi]
///          [AND attr >= lo] [AND attr <= hi] ...]
///   [GROUP BY R.id]
///
/// Notes on semantics:
///  * the spatial predicate is implicit; writing it is allowed but
///    optional (it is the whole point of the operator);
///  * `t` ranges are half-open `[t0, t1)` (a closing `]` is accepted and
///    converted to `< t1+1`);
///  * attribute ranges are closed `[lo, hi]` (BETWEEN is the same);
///  * keywords are case-insensitive; `P.`/`R.` prefixes on identifiers are
///    stripped.
///
/// `AggregationQuery::ToString()` emits exactly this dialect, so
/// Parse(ToString(q)) round-trips — a property the tests enforce.
StatusOr<ParsedQuery> ParseQuerySql(const std::string& sql);

}  // namespace urbane::core

#endif  // URBANE_CORE_SQL_H_
