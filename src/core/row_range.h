#ifndef URBANE_CORE_ROW_RANGE_H_
#define URBANE_CORE_ROW_RANGE_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace urbane::core {

/// Half-open row interval [begin, end) over a point table's row space.
struct RowRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;

  std::uint64_t size() const { return end - begin; }
  bool operator==(const RowRange& other) const {
    return begin == other.begin && end == other.end;
  }
};

/// Sorted, disjoint, coalesced set of row ranges — the output of zone-map
/// pruning. Executors either walk the ranges directly (scan) or probe
/// membership per row id (index/quadtree); both observe the same set, so
/// every executor skips exactly the same pruned rows.
class RowRangeSet {
 public:
  RowRangeSet() = default;

  /// `ranges` must be sorted by begin, non-overlapping, and non-empty per
  /// element; adjacent ranges are coalesced here so Contains and the range
  /// walk touch as few intervals as possible.
  explicit RowRangeSet(std::vector<RowRange> ranges) {
    for (RowRange& r : ranges) {
      if (r.begin >= r.end) continue;
      if (!ranges_.empty() && ranges_.back().end == r.begin) {
        ranges_.back().end = r.end;
      } else {
        ranges_.push_back(r);
      }
      total_rows_ += r.size();
    }
  }

  const std::vector<RowRange>& ranges() const { return ranges_; }
  bool empty() const { return ranges_.empty(); }
  std::uint64_t total_rows() const { return total_rows_; }

  /// Membership probe: O(log #ranges).
  bool Contains(std::uint64_t row) const {
    const auto it = std::upper_bound(
        ranges_.begin(), ranges_.end(), row,
        [](std::uint64_t r, const RowRange& range) { return r < range.end; });
    return it != ranges_.end() && row >= it->begin;
  }

 private:
  std::vector<RowRange> ranges_;
  std::uint64_t total_rows_ = 0;
};

/// Calls `fn(i)` for every row in [begin, end) ∩ candidates, ascending.
/// A null candidate set means "all rows". This is the scan executors' row
/// loop: candidate ranges replace the dense `for` so fully-pruned blocks
/// cost nothing, while the visit order (ascending) — and hence every
/// accumulator's fold order — is unchanged.
template <typename Fn>
inline void ForEachCandidateRow(const RowRangeSet* candidates,
                                std::uint64_t begin, std::uint64_t end,
                                Fn&& fn) {
  if (candidates == nullptr) {
    for (std::uint64_t i = begin; i < end; ++i) {
      fn(i);
    }
    return;
  }
  const std::vector<RowRange>& ranges = candidates->ranges();
  auto it = std::upper_bound(
      ranges.begin(), ranges.end(), begin,
      [](std::uint64_t r, const RowRange& range) { return r < range.end; });
  for (; it != ranges.end() && it->begin < end; ++it) {
    const std::uint64_t lo = std::max(begin, it->begin);
    const std::uint64_t hi = std::min(end, it->end);
    for (std::uint64_t i = lo; i < hi; ++i) {
      fn(i);
    }
  }
}

}  // namespace urbane::core

#endif  // URBANE_CORE_ROW_RANGE_H_
