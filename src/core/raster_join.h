#ifndef URBANE_CORE_RASTER_JOIN_H_
#define URBANE_CORE_RASTER_JOIN_H_

#include <memory>
#include <optional>
#include <vector>

#include "core/execution_context.h"
#include "core/query.h"
#include "core/raster_targets.h"
#include "core/region_spans.h"
#include "raster/buffer.h"
#include "raster/morton.h"
#include "raster/viewport.h"

namespace urbane::core {

/// Shared configuration of the raster-join executors.
struct RasterJoinOptions {
  /// Canvas resolution along the world's longer side; the shorter side is
  /// scaled to keep square pixels. Higher resolution -> smaller error bound
  /// (bounded variant) / fewer exact boundary tests (accurate variant) but
  /// more pixels to sweep. 1024 reproduces the paper's interactive setting.
  int resolution = 1024;
  /// Canvas world window. Default: union of point and region bounds — the
  /// correctness of both variants requires the canvas to cover every point
  /// and every region.
  std::optional<geometry::BoundingBox> world;
  /// Bounded variant: also compute per-region error bounds (costs one
  /// boundary rasterization per region).
  bool compute_error_bounds = true;
  /// Ablation: rasterize region interiors through ear-clipping triangles
  /// (the literal GPU path) instead of the scanline filler. Identical pixel
  /// coverage, different constant factors.
  bool use_triangle_pipeline = false;
  /// Ablation: accumulate pixel sums in float32 render targets exactly like
  /// the GPU implementation (default double keeps SUM/AVG bit-comparable to
  /// the scan oracle).
  bool use_float32_targets = false;
  /// Parallelism of the query path: filter evaluation, the point splat
  /// (pass 1, partial-buffer reduction) and the region sweep (pass 2, one
  /// region range per worker). Default serial — identical to the
  /// historical single-core behavior.
  ExecutionContext exec;
};

/// Canvas construction shared by the executors and the resolution planner.
raster::Viewport MakeCanvas(const geometry::BoundingBox& world,
                            int resolution);

/// The finishing step of default canvas-world derivation: empty worlds
/// fall back to the unit box and the edges are padded so points sitting
/// exactly on the max edge stay inside after float32 -> double round
/// trips. Exposed so composed engines (ingest::LiveEngine) that pin an
/// explicit world from a union of component bounds produce a canvas
/// BIT-identical to the one a stop-the-world engine would derive from the
/// concatenated rows.
geometry::BoundingBox PadCanvasWorld(geometry::BoundingBox world);

/// Smallest resolution whose pixel diagonal is <= `epsilon_world` (meters in
/// the Mercator plane), i.e. the cheapest canvas honoring the error bound.
int ResolutionForEpsilon(const geometry::BoundingBox& world,
                         double epsilon_world);

/// Validates `options` against the data and builds the canvas — the checks
/// both raster executors share (the world window must cover every point and
/// region).
StatusOr<raster::Viewport> MakeValidatedCanvas(
    const data::PointTable& points, const data::RegionSet& regions,
    const RasterJoinOptions& options);

/// Bounded Raster Join — the paper's approximate, fully raster-based
/// executor. Drawing operations on a canvas replace the spatial join:
///
///  pass 1  splat the filtered points into per-pixel aggregate targets
///          (additive blending — GL_ONE/GL_ONE — for COUNT/SUM, min/max
///          blending for MIN/MAX);
///  pass 2  "draw" each region over the canvas and reduce the covered
///          pixels into the region's accumulator.
///
/// A pixel straddling a region boundary is attributed by its center, so a
/// point can only be misassigned if it lies within one pixel diagonal ε of
/// the boundary; per-region error bounds are computed from the points in
/// boundary pixels.
class BoundedRasterJoin : public SpatialAggregationExecutor {
 public:
  static StatusOr<std::unique_ptr<BoundedRasterJoin>> Create(
      const data::PointTable& points, const data::RegionSet& regions,
      const RasterJoinOptions& options = RasterJoinOptions());

  StatusOr<QueryResult> Execute(const AggregationQuery& query) override;

  /// Multi-aggregate batch: evaluates several aggregates that share ONE
  /// filter in a single pass — the points are splatted once into the union
  /// of the needed render targets and each region is swept once, exactly
  /// how the GPU implementation amortizes multiple aggregates per frame.
  /// All queries must have identical filters (checked); results come back
  /// in query order. Error bounds are computed per aggregate when enabled.
  StatusOr<std::vector<QueryResult>> ExecuteBatch(
      const std::vector<AggregationQuery>& queries);

  std::string name() const override { return "raster"; }
  bool exact() const override { return false; }
  const ExecutorStats& stats() const override { return stats_; }

  const raster::Viewport& canvas() const { return viewport_; }
  /// Geometric error bound of this canvas (world units / meters).
  double EpsilonWorld() const { return viewport_.EpsilonWorld(); }
  std::size_t MemoryBytes() const;

 private:
  BoundedRasterJoin(const data::PointTable& points,
                    const data::RegionSet& regions,
                    const RasterJoinOptions& options,
                    raster::Viewport viewport)
      : points_(points),
        regions_(regions),
        options_(options),
        viewport_(viewport) {}

  const data::PointTable& points_;
  const data::RegionSet& regions_;
  RasterJoinOptions options_;
  raster::Viewport viewport_;
  // Query-independent caches built once at Create: the points in Z-order
  // (dense selections splat tile-coherently) and each region's covered
  // spans + boundary pixels (the sweep becomes a linear walk the SIMD span
  // kernels accelerate). Executors are rebuilt on dataset epoch bumps, so
  // neither can go stale.
  raster::MortonSplatOrder morton_;
  internal::SweepGeometry sweep_;
  // Render-target scratch reused across Execute calls: a warm refill is
  // several times cheaper than a fresh page-faulting allocation, and the
  // serial fused scatter first-touch-initializes value targets so most
  // queries only clear the count plane. Mutated per query like stats_ —
  // an executor instance serves one query at a time.
  internal::AggregateTargets targets_scratch_;
  // Boundary-pixel dedup scratch lives per sweep worker (see
  // internal::StampBuffer), so Execute holds no shared mutable state
  // across regions.
  ExecutorStats stats_;
};

}  // namespace urbane::core

#endif  // URBANE_CORE_RASTER_JOIN_H_
