#include "core/aggregate.h"

#include <cmath>

namespace urbane::core {

const char* AggregateKindToString(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kCount:
      return "COUNT";
    case AggregateKind::kSum:
      return "SUM";
    case AggregateKind::kAvg:
      return "AVG";
    case AggregateKind::kMin:
      return "MIN";
    case AggregateKind::kMax:
      return "MAX";
  }
  return "UNKNOWN";
}

double Accumulator::Finalize(AggregateKind kind) const {
  switch (kind) {
    case AggregateKind::kCount:
      return static_cast<double>(count);
    case AggregateKind::kSum:
      return sum;
    case AggregateKind::kAvg:
      return count == 0 ? std::nan("") : sum / static_cast<double>(count);
    case AggregateKind::kMin:
      return count == 0 ? std::nan("") : min;
    case AggregateKind::kMax:
      return count == 0 ? std::nan("") : max;
  }
  return std::nan("");
}

}  // namespace urbane::core
