#ifndef URBANE_CORE_INDEX_JOIN_H_
#define URBANE_CORE_INDEX_JOIN_H_

#include <memory>

#include "core/execution_context.h"
#include "core/query.h"
#include "index/grid_index.h"

namespace urbane::core {

/// Configuration of the index-based baseline.
struct IndexJoinOptions {
  /// Target points per grid cell (index granularity). The F4 `--grid-sweep`
  /// ablation varies this.
  double target_points_per_cell = 64.0;
  /// Execution parallelism: region probes are partitioned across the pool
  /// (the grid is read-only; each region's accumulator is private).
  /// Default serial.
  ExecutionContext exec;
};

/// Exact index-based join baseline: a uniform grid is built over the points
/// once; each region probe classifies overlapping cells as interior (take
/// every point, filter only) or boundary (filter + exact point-in-polygon).
///
/// This mirrors the "index-based join" the Raster Join paper compares
/// against: preprocessing buys per-query speed, but boundary cells still
/// need exact geometry tests, and complex polygons touch many cells.
class IndexJoin : public SpatialAggregationExecutor {
 public:
  static StatusOr<std::unique_ptr<IndexJoin>> Create(
      const data::PointTable& points, const data::RegionSet& regions,
      const IndexJoinOptions& options = IndexJoinOptions());

  StatusOr<QueryResult> Execute(const AggregationQuery& query) override;
  std::string name() const override { return "index"; }
  bool exact() const override { return true; }
  const ExecutorStats& stats() const override { return stats_; }

  const index::GridIndex& grid() const { return grid_; }
  std::size_t MemoryBytes() const { return grid_.MemoryBytes(); }

 private:
  IndexJoin(const data::PointTable& points, const data::RegionSet& regions,
            index::GridIndex grid, const IndexJoinOptions& options)
      : points_(points),
        regions_(regions),
        grid_(std::move(grid)),
        options_(options) {}

  const data::PointTable& points_;
  const data::RegionSet& regions_;
  index::GridIndex grid_;
  IndexJoinOptions options_;
  ExecutorStats stats_;
};

}  // namespace urbane::core

#endif  // URBANE_CORE_INDEX_JOIN_H_
