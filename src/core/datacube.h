#ifndef URBANE_CORE_DATACUBE_H_
#define URBANE_CORE_DATACUBE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/query.h"

namespace urbane::core {

/// Configuration of the pre-aggregation baseline.
struct DataCubeOptions {
  int time_bins = 64;
  /// The ONE attribute the cube is binned on (pre-aggregation must choose
  /// its dimensions up front — that is the point).
  std::string attribute;
  int attribute_bins = 16;
};

/// Pre-aggregated data cube — the traditional approach the paper's abstract
/// rules out ("they do not support ad-hoc query constraints or polygons of
/// arbitrary shapes"). Implemented faithfully so the claim is measurable:
///
///  * build time is a full exact spatial join (every point located in its
///    region) plus binning — paid again for EVERY new region set;
///  * the cube serves COUNT queries whose time window and (single)
///    attribute range align with its precomputed bins — those answers are
///    O(bins), microseconds;
///  * anything else — a different aggregate, an unanticipated attribute, a
///    non-bin-aligned range, a spatial window, new polygons — returns
///    FailedPrecondition. The caller must fall back to an on-the-fly
///    executor, which is exactly Urbane's situation.
class PreAggregatedCube {
 public:
  static StatusOr<std::unique_ptr<PreAggregatedCube>> Build(
      const data::PointTable& points, const data::RegionSet& regions,
      const DataCubeOptions& options = DataCubeOptions());

  /// OK iff the cube can answer this query exactly from its bins.
  Status CanServe(const AggregationQuery& query) const;

  /// Answers a servable query (see CanServe); FailedPrecondition otherwise.
  StatusOr<QueryResult> Query(const AggregationQuery& query) const;

  // Bin geometry (public so callers can construct bin-aligned queries).
  std::int64_t TimeBinStart(int b) const;
  double AttributeBinStart(int b) const;
  int time_bins() const { return options_.time_bins; }
  int attribute_bins() const { return options_.attribute_bins; }

  double build_seconds() const { return build_seconds_; }
  std::size_t MemoryBytes() const {
    return counts_.capacity() * sizeof(std::uint64_t);
  }

 private:
  PreAggregatedCube(const data::PointTable& points,
                    const data::RegionSet& regions, DataCubeOptions options)
      : points_(points), regions_(regions), options_(std::move(options)) {}

  std::size_t CellIndex(std::size_t region, int time_bin,
                        int attr_bin) const {
    return (region * options_.time_bins + time_bin) *
               options_.attribute_bins +
           attr_bin;
  }
  int TimeBinFor(std::int64_t t) const;
  int AttributeBinFor(float v) const;

  const data::PointTable& points_;
  const data::RegionSet& regions_;
  DataCubeOptions options_;
  std::int64_t min_time_ = 0;
  std::int64_t max_time_ = 0;
  float min_attr_ = 0.0f;
  float max_attr_ = 1.0f;
  std::vector<std::uint64_t> counts_;  // [region][time_bin][attr_bin]
  double build_seconds_ = 0.0;
};

}  // namespace urbane::core

#endif  // URBANE_CORE_DATACUBE_H_
