#include "core/datacube.h"

#include <algorithm>
#include <cmath>

#include "index/rtree.h"
#include "util/timer.h"

namespace urbane::core {

StatusOr<std::unique_ptr<PreAggregatedCube>> PreAggregatedCube::Build(
    const data::PointTable& points, const data::RegionSet& regions,
    const DataCubeOptions& options) {
  if (options.time_bins <= 0 || options.attribute_bins <= 0) {
    return Status::InvalidArgument("cube bins must be positive");
  }
  const float* attr = nullptr;
  if (!options.attribute.empty()) {
    attr = points.AttributeByName(options.attribute);
    if (attr == nullptr) {
      return Status::InvalidArgument("cube attribute not in table: " +
                                     options.attribute);
    }
  }
  WallTimer timer;
  auto cube = std::unique_ptr<PreAggregatedCube>(
      new PreAggregatedCube(points, regions, options));
  if (attr == nullptr) {
    cube->options_.attribute_bins = 1;
  }
  const auto [t0, t1] = points.TimeRange();
  cube->min_time_ = t0;
  cube->max_time_ = t1;
  if (attr != nullptr && points.size() > 0) {
    cube->min_attr_ = *std::min_element(attr, attr + points.size());
    cube->max_attr_ = *std::max_element(attr, attr + points.size());
  }
  cube->counts_.assign(regions.size() *
                           static_cast<std::size_t>(
                               cube->options_.time_bins) *
                           cube->options_.attribute_bins,
                       0);

  // The expensive part pre-aggregation pays up front (and again for every
  // new region set): an exact spatial join over all points.
  URBANE_ASSIGN_OR_RETURN(index::RTree rtree,
                          index::RTree::Build(regions.RegionBounds()));
  for (std::size_t i = 0; i < points.size(); ++i) {
    const geometry::Vec2 p{points.x(i), points.y(i)};
    const int tb = cube->TimeBinFor(points.t(i));
    const int ab =
        attr == nullptr ? 0 : cube->AttributeBinFor(attr[i]);
    rtree.QueryPoint(p, [&](std::uint32_t r) {
      if (regions[r].geometry.Contains(p)) {
        ++cube->counts_[cube->CellIndex(r, tb, ab)];
      }
    });
  }
  cube->build_seconds_ = timer.ElapsedSeconds();
  return cube;
}

// Both Bin*For functions are defined via their Bin*Start counterparts
// (largest bin whose start is <= the value) so bin-edge ownership is exactly
// consistent between build-time binning and query-time range mapping.
int PreAggregatedCube::TimeBinFor(std::int64_t t) const {
  int lo = 0;
  int hi = options_.time_bins - 1;
  while (lo < hi) {
    const int mid = (lo + hi + 1) / 2;
    if (TimeBinStart(mid) <= t) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

int PreAggregatedCube::AttributeBinFor(float v) const {
  int lo = 0;
  int hi = options_.attribute_bins - 1;
  while (lo < hi) {
    const int mid = (lo + hi + 1) / 2;
    if (AttributeBinStart(mid) <= v) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

std::int64_t PreAggregatedCube::TimeBinStart(int b) const {
  const double span = static_cast<double>(max_time_ - min_time_) + 1.0;
  return min_time_ + static_cast<std::int64_t>(
                         span * b / static_cast<double>(options_.time_bins));
}

double PreAggregatedCube::AttributeBinStart(int b) const {
  const double span =
      static_cast<double>(max_attr_) - min_attr_ + 1e-6;
  return min_attr_ + span * b / static_cast<double>(options_.attribute_bins);
}

Status PreAggregatedCube::CanServe(const AggregationQuery& query) const {
  if (query.regions != &regions_) {
    return Status::FailedPrecondition(
        "pre-aggregation is bound to the region set it was built for; new "
        "polygons require a full cube rebuild");
  }
  if (query.points != &points_) {
    return Status::FailedPrecondition("cube was built over a different table");
  }
  if (query.aggregate.kind != AggregateKind::kCount) {
    return Status::FailedPrecondition(
        "cube pre-aggregated COUNT only; other aggregates were not "
        "anticipated at build time");
  }
  if (query.filter.spatial_window.has_value()) {
    return Status::FailedPrecondition(
        "ad-hoc spatial windows are not servable from per-region bins");
  }
  // Time range must align with bin edges.
  if (query.filter.time_range) {
    const auto& range = *query.filter.time_range;
    bool begin_ok = false;
    bool end_ok = range.end >= max_time_ + 1;
    for (int b = 0; b < options_.time_bins; ++b) {
      begin_ok |= TimeBinStart(b) == range.begin;
      end_ok |= TimeBinStart(b) == range.end;
    }
    begin_ok |= range.begin <= min_time_;
    if (!begin_ok || !end_ok) {
      return Status::FailedPrecondition(
          "ad-hoc time range does not align with the cube's bins");
    }
  }
  // At most one attribute range, on the pre-chosen attribute, bin-aligned.
  if (query.filter.attribute_ranges.size() > 1) {
    return Status::FailedPrecondition(
        "cube has a single binned attribute dimension");
  }
  if (query.filter.attribute_ranges.size() == 1) {
    const AttributeRange& range = query.filter.attribute_ranges[0];
    if (range.attribute != options_.attribute) {
      return Status::FailedPrecondition(
          "filter attribute '" + range.attribute +
          "' was not a cube dimension");
    }
    bool lo_ok = range.lo <= min_attr_;
    bool hi_ok = range.hi >= max_attr_;
    for (int b = 0; b < options_.attribute_bins; ++b) {
      lo_ok |= std::fabs(AttributeBinStart(b) - range.lo) < 1e-9;
      hi_ok |= std::fabs(AttributeBinStart(b) - range.hi) < 1e-9;
    }
    if (!lo_ok || !hi_ok) {
      return Status::FailedPrecondition(
          "ad-hoc attribute range does not align with the cube's bins");
    }
  }
  return Status::OK();
}

StatusOr<QueryResult> PreAggregatedCube::Query(
    const AggregationQuery& query) const {
  URBANE_RETURN_IF_ERROR(CanServe(query));

  int tb0 = 0;
  int tb1 = options_.time_bins;
  if (query.filter.time_range) {
    const auto& range = *query.filter.time_range;
    tb0 = range.begin <= min_time_ ? 0 : TimeBinFor(range.begin);
    tb1 = range.end >= max_time_ + 1 ? options_.time_bins
                                     : TimeBinFor(range.end);
  }
  int ab0 = 0;
  int ab1 = options_.attribute_bins;
  if (query.filter.attribute_ranges.size() == 1) {
    const AttributeRange& range = query.filter.attribute_ranges[0];
    ab0 = range.lo <= min_attr_
              ? 0
              : AttributeBinFor(static_cast<float>(range.lo));
    ab1 = range.hi >= max_attr_
              ? options_.attribute_bins
              : AttributeBinFor(static_cast<float>(range.hi));
  }

  QueryResult result;
  result.values.reserve(regions_.size());
  result.counts.reserve(regions_.size());
  for (std::size_t r = 0; r < regions_.size(); ++r) {
    std::uint64_t count = 0;
    for (int tb = tb0; tb < tb1; ++tb) {
      for (int ab = ab0; ab < ab1; ++ab) {
        count += counts_[CellIndex(r, tb, ab)];
      }
    }
    result.counts.push_back(count);
    result.values.push_back(static_cast<double>(count));
  }
  return result;
}

}  // namespace urbane::core
