#ifndef URBANE_CORE_QUERY_CACHE_H_
#define URBANE_CORE_QUERY_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "core/planner.h"
#include "core/query.h"

namespace urbane::core {

/// Capacity / layout knobs of a QueryCache.
struct QueryCacheOptions {
  /// Total entry bound across shards; 0 disables the cache entirely.
  std::size_t max_entries = 0;
  /// Total result-payload bound across shards (approximate accounting via
  /// QueryCache::ResultBytes).
  std::size_t max_bytes = 256u << 20;
  /// Lock striping width (clamped to >= 1). More shards = less contention;
  /// per-shard capacity is the total divided across shards, so tiny
  /// `max_entries` values reserve capacity on only the first few shards.
  std::size_t shards = 8;
};

/// Aggregated counters across all shards (monotonic except entries/bytes).
struct QueryCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t inserts = 0;
  std::size_t evictions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;

  double HitRate() const {
    const std::size_t probes = hits + misses;
    return probes == 0 ? 0.0
                       : static_cast<double>(hits) /
                             static_cast<double>(probes);
  }
};

/// Thread-safe memoization of spatial aggregation results.
///
/// A sharded hash map with per-shard LRU eviction: every operation takes
/// exactly one shard mutex, so concurrent sessions probing different keys
/// rarely contend. Entries are keyed by a 64-bit fingerprint of the full
/// answer identity — method, aggregate, every filter conjunct (time range,
/// attribute ranges, viewport window), the canvas resolution the answer was
/// computed at, and the owning engine's executor-config epoch. Bumping the
/// epoch after any executor rebuild makes every older entry unreachable
/// (structural invalidation — no synchronous clear required), which is what
/// fixes the stale-ε bug: a bounded-raster answer memoized at a coarse
/// resolution can never be served after the engine re-plans to a finer one.
///
/// Keys are fingerprints only (the full query is not stored), so a 64-bit
/// hash collision would alias two queries; with FNV-1a over the canonical
/// field encoding the chance is ~2^-64 per pair and is accepted.
class QueryCache {
 public:
  explicit QueryCache(const QueryCacheOptions& options = QueryCacheOptions());

  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  /// Stable 64-bit fingerprint of (method, aggregate, filter conjuncts,
  /// viewport window, canvas resolution, executor-config epoch). The
  /// `canvas_resolution` must be the resolution the raster executors would
  /// run at (pass 0 for non-raster methods where it does not shape the
  /// answer); `config_epoch` is the owning engine's rebuild counter.
  static std::uint64_t Fingerprint(const AggregationQuery& query,
                                   ExecutionMethod method,
                                   int canvas_resolution,
                                   std::uint64_t config_epoch);

  /// Approximate heap footprint of a cached result (payload accounting).
  static std::size_t ResultBytes(const QueryResult& result);

  /// False when max_entries == 0 — callers can skip fingerprinting.
  bool enabled() const {
    return max_entries_.load(std::memory_order_relaxed) > 0;
  }

  /// Returns a copy of the entry and marks it most-recently-used, or
  /// nullopt. `record_miss=false` suppresses the miss counter — used for
  /// the double-checked re-probe after acquiring an execution lock, so one
  /// logical probe is not counted as two misses.
  std::optional<QueryResult> Lookup(std::uint64_t key,
                                    bool record_miss = true);

  /// The half-open time interval [begin, end) a cached answer depends on.
  /// An entry tagged with one is *closed over time*: rows outside the
  /// interval can never change it, so appends elsewhere keep it valid.
  struct TimeInterval {
    std::int64_t begin = 0;
    std::int64_t end = 0;
  };

  /// Inserts (or refreshes) an entry, then evicts LRU entries until the
  /// shard is within its entry and byte bounds. A result too large for its
  /// shard's byte bound is simply not retained.
  ///
  /// `valid_time` is the entry's dependency interval (the query's time
  /// filter); nullopt means the answer depends on every row, so any append
  /// invalidates it. See InvalidateTimeOverlap.
  void Insert(std::uint64_t key, const QueryResult& result,
              std::optional<TimeInterval> valid_time = std::nullopt);

  /// Scoped invalidation for appendable engines: drops exactly the entries
  /// whose dependency interval intersects the appended half-open interval
  /// [begin, end), plus every untagged entry (no time filter = depends on
  /// all rows). Entries over fully-closed time ranges below the appended
  /// interval stay cached — this replaces the config-epoch bump that used
  /// to flush provably-unaffected answers on every append.
  /// Returns the number of entries dropped.
  std::size_t InvalidateTimeOverlap(std::int64_t begin, std::int64_t end);

  /// Drops every entry (counters other than entries/bytes are kept).
  void Clear();

  /// Re-bound the cache; shrinking trims LRU entries immediately.
  /// Setting max_entries to 0 disables and clears it.
  void set_max_entries(std::size_t max_entries);
  void set_max_bytes(std::size_t max_bytes);

  std::size_t max_entries() const {
    return max_entries_.load(std::memory_order_relaxed);
  }
  std::size_t max_bytes() const {
    return max_bytes_.load(std::memory_order_relaxed);
  }

  QueryCacheStats stats() const;

 private:
  struct Entry {
    std::uint64_t key = 0;
    QueryResult result;
    std::size_t bytes = 0;
    std::optional<TimeInterval> valid_time;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> map;
    std::size_t bytes = 0;
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t inserts = 0;
    std::size_t evictions = 0;
  };

  Shard& ShardFor(std::uint64_t key) {
    // The fingerprint's low bits feed the hash map; route on high bits.
    return shards_[(key >> 57) % shard_count_];
  }
  /// This shard's slice of a total bound: totals are spread across shards
  /// with the remainder going to the first shards, so the sum of the
  /// per-shard bounds equals the total exactly.
  std::size_t ShardBound(const Shard& shard, std::size_t total) const;
  void TrimLocked(Shard& shard);

  std::atomic<std::size_t> max_entries_;
  std::atomic<std::size_t> max_bytes_;
  std::size_t shard_count_;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace urbane::core

#endif  // URBANE_CORE_QUERY_CACHE_H_
