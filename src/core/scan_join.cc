#include "core/scan_join.h"

#include <algorithm>

#include "core/observe.h"
#include "util/timer.h"

namespace urbane::core {

StatusOr<std::unique_ptr<ScanJoin>> ScanJoin::Create(
    const data::PointTable& points, const data::RegionSet& regions,
    const ExecutionContext& exec) {
  WallTimer timer;
  URBANE_ASSIGN_OR_RETURN(index::RTree rtree,
                          index::RTree::Build(regions.RegionBounds()));
  auto executor = std::unique_ptr<ScanJoin>(
      new ScanJoin(points, regions, std::move(rtree), exec));
  executor->stats_.build_seconds = timer.ElapsedSeconds();
  return executor;
}

StatusOr<QueryResult> ScanJoin::Execute(const AggregationQuery& query) {
  URBANE_RETURN_IF_ERROR(query.Validate());
  if (query.points != &points_ || query.regions != &regions_) {
    return Status::FailedPrecondition(
        "ScanJoin was created for a different table/region set");
  }
  const double build_seconds = stats_.build_seconds;
  stats_.Reset();
  stats_.build_seconds = build_seconds;
  stats_.threads_used = exec_.EffectiveThreads();
  obs::TraceSpan exec_span(query.trace, "scan");
  WallTimer timer;

  WallTimer filter_timer;
  URBANE_ASSIGN_OR_RETURN(CompiledFilter filter,
                          CompiledFilter::Compile(query.filter, points_));
  stats_.filter_seconds = filter_timer.ElapsedSeconds();
  TracePass(query.trace, exec_span.id(), "filter", stats_.filter_seconds);
  URBANE_RETURN_IF_ERROR(query.CheckControl());

  const float* attr = nullptr;
  if (query.aggregate.NeedsAttribute()) {
    attr = points_.AttributeByName(query.aggregate.attribute);
  }

  // Points are partitioned across the pool; each worker scans its range
  // into a private per-region accumulator vector (the R-tree and filter
  // are read-only). Partials merge in partition order, so COUNT is
  // bit-identical to the serial scan and float SUM/AVG only reorders the
  // summation (1e-6-relative).
  const std::size_t n = points_.size();
  const std::size_t parts =
      n < exec_.min_parallel_points ? 1 : exec_.EffectiveThreads();
  ExecutionContext scan_exec = exec_;
  if (parts <= 1) {
    scan_exec.num_threads = 1;
  }
  std::vector<std::vector<Accumulator>> partials(
      parts, std::vector<Accumulator>(regions_.size()));
  std::vector<ExecutorStats> worker_stats(parts);
  WallTimer reduce_timer;
  ForEachPartition(scan_exec, n, [&](std::size_t part, std::size_t begin,
                                     std::size_t end) {
    std::vector<Accumulator>& accumulators = partials[part];
    ExecutorStats& ws = worker_stats[part];
    // Candidate ranges (zone-map pruning) narrow the walk to rows the
    // filter might match; visit order stays ascending, so accumulation is
    // bit-identical to the dense loop.
    ForEachCandidateRow(query.candidate_ranges, begin, end,
                        [&](std::uint64_t i) {
      if (!filter.Matches(points_, i)) {
        return;
      }
      ++ws.points_scanned;
      const geometry::Vec2 p{points_.x(i), points_.y(i)};
      const double value = attr ? static_cast<double>(attr[i]) : 1.0;
      rtree_.QueryPoint(p, [&](std::uint32_t region_index) {
        ++ws.pip_tests;
        if (regions_[region_index].geometry.Contains(p)) {
          accumulators[region_index].Add(value);
        }
      });
    });
  });
  std::vector<Accumulator>& accumulators = partials[0];
  for (std::size_t part = 1; part < parts; ++part) {
    for (std::size_t r = 0; r < regions_.size(); ++r) {
      accumulators[r].Merge(partials[part][r]);
    }
  }
  for (const ExecutorStats& ws : worker_stats) {
    stats_.MergeCounters(ws);
  }
  stats_.reduce_seconds = reduce_timer.ElapsedSeconds();
  TracePass(query.trace, exec_span.id(), "reduce", stats_.reduce_seconds);

  QueryResult result;
  result.values.reserve(regions_.size());
  result.counts.reserve(regions_.size());
  for (const Accumulator& acc : accumulators) {
    result.values.push_back(acc.Finalize(query.aggregate.kind));
    result.counts.push_back(acc.count);
  }
  stats_.query_seconds = timer.ElapsedSeconds();
  ObserveExecutorStats("scan", stats_);
  return result;
}

}  // namespace urbane::core
