#include "core/scan_join.h"

#include "util/timer.h"

namespace urbane::core {

StatusOr<std::unique_ptr<ScanJoin>> ScanJoin::Create(
    const data::PointTable& points, const data::RegionSet& regions) {
  WallTimer timer;
  URBANE_ASSIGN_OR_RETURN(index::RTree rtree,
                          index::RTree::Build(regions.RegionBounds()));
  auto executor = std::unique_ptr<ScanJoin>(
      new ScanJoin(points, regions, std::move(rtree)));
  executor->stats_.build_seconds = timer.ElapsedSeconds();
  return executor;
}

StatusOr<QueryResult> ScanJoin::Execute(const AggregationQuery& query) {
  URBANE_RETURN_IF_ERROR(query.Validate());
  if (query.points != &points_ || query.regions != &regions_) {
    return Status::FailedPrecondition(
        "ScanJoin was created for a different table/region set");
  }
  const double build_seconds = stats_.build_seconds;
  stats_.Reset();
  stats_.build_seconds = build_seconds;
  WallTimer timer;

  URBANE_ASSIGN_OR_RETURN(CompiledFilter filter,
                          CompiledFilter::Compile(query.filter, points_));

  const std::vector<float>* attr = nullptr;
  if (query.aggregate.NeedsAttribute()) {
    attr = points_.AttributeByName(query.aggregate.attribute);
  }

  std::vector<Accumulator> accumulators(regions_.size());
  const std::size_t n = points_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (!filter.Matches(points_, i)) {
      continue;
    }
    ++stats_.points_scanned;
    const geometry::Vec2 p{points_.x(i), points_.y(i)};
    const double value = attr ? static_cast<double>((*attr)[i]) : 1.0;
    rtree_.QueryPoint(p, [&](std::uint32_t region_index) {
      ++stats_.pip_tests;
      if (regions_[region_index].geometry.Contains(p)) {
        accumulators[region_index].Add(value);
      }
    });
  }

  QueryResult result;
  result.values.reserve(regions_.size());
  result.counts.reserve(regions_.size());
  for (const Accumulator& acc : accumulators) {
    result.values.push_back(acc.Finalize(query.aggregate.kind));
    result.counts.push_back(acc.count);
  }
  stats_.query_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace urbane::core
