#include "core/query_cache.h"

#include <algorithm>
#include <cstring>

#include "obs/event_journal.h"
#include "obs/metrics.h"
#include "obs/obs.h"

namespace urbane::core {

namespace {

/// Mirrors a per-shard counter bump into the global registry so the bench
/// harness and the CLI `stats` command see cache traffic without polling
/// every engine. Registry metric objects have stable addresses, so the
/// lazily-bound references stay valid across MetricsRegistry::Reset.
void BumpCacheCounter(const char* name) {
  if (!obs::MetricsEnabled()) {
    return;
  }
  obs::MetricsRegistry::Global().GetCounter(name).Add(1);
}

/// FNV-1a 64 over explicitly encoded fields. Field order and the presence
/// flags make the encoding canonical: two queries fingerprint equal iff
/// they would produce the same answer under the same executor config.
class Fnv64 {
 public:
  void Mix(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      hash_ = (hash_ ^ (value & 0xffu)) * 1099511628211ull;
      value >>= 8;
    }
  }
  void MixDouble(double value) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    Mix(bits);
  }
  void MixString(const std::string& s) {
    Mix(s.size());
    for (const char c : s) {
      hash_ = (hash_ ^ static_cast<unsigned char>(c)) * 1099511628211ull;
    }
  }
  std::uint64_t hash() const { return hash_; }

 private:
  std::uint64_t hash_ = 1469598103934665603ull;
};

}  // namespace

std::uint64_t QueryCache::Fingerprint(const AggregationQuery& query,
                                      ExecutionMethod method,
                                      int canvas_resolution,
                                      std::uint64_t config_epoch) {
  Fnv64 fnv;
  fnv.Mix(config_epoch);
  fnv.Mix(static_cast<std::uint64_t>(method));
  fnv.Mix(static_cast<std::uint64_t>(canvas_resolution));
  fnv.Mix(static_cast<std::uint64_t>(query.aggregate.kind));
  // COUNT ignores its attribute, so a stray attribute must not split keys
  // (mirrors AggregationQuery::ToString, which renders COUNT(*)).
  if (query.aggregate.NeedsAttribute()) {
    fnv.MixString(query.aggregate.attribute);
  }
  const FilterSpec& filter = query.filter;
  fnv.Mix(filter.time_range.has_value() ? 1 : 0);
  if (filter.time_range) {
    fnv.Mix(static_cast<std::uint64_t>(filter.time_range->begin));
    fnv.Mix(static_cast<std::uint64_t>(filter.time_range->end));
  }
  fnv.Mix(filter.spatial_window.has_value() ? 1 : 0);
  if (filter.spatial_window) {
    fnv.MixDouble(filter.spatial_window->min_x);
    fnv.MixDouble(filter.spatial_window->min_y);
    fnv.MixDouble(filter.spatial_window->max_x);
    fnv.MixDouble(filter.spatial_window->max_y);
  }
  fnv.Mix(filter.attribute_ranges.size());
  for (const AttributeRange& range : filter.attribute_ranges) {
    fnv.MixString(range.attribute);
    fnv.MixDouble(range.lo);
    fnv.MixDouble(range.hi);
  }
  return fnv.hash();
}

std::size_t QueryCache::ResultBytes(const QueryResult& result) {
  return sizeof(QueryResult) +
         result.values.capacity() * sizeof(double) +
         result.counts.capacity() * sizeof(std::uint64_t) +
         result.error_bounds.capacity() * sizeof(double);
}

QueryCache::QueryCache(const QueryCacheOptions& options)
    : max_entries_(options.max_entries),
      max_bytes_(options.max_bytes),
      shard_count_(std::max<std::size_t>(1, options.shards)),
      shards_(new Shard[shard_count_]) {}

std::size_t QueryCache::ShardBound(const Shard& shard,
                                   std::size_t total) const {
  const std::size_t index = static_cast<std::size_t>(&shard - shards_.get());
  return total / shard_count_ + (index < total % shard_count_ ? 1 : 0);
}

void QueryCache::TrimLocked(Shard& shard) {
  const std::size_t entry_bound =
      ShardBound(shard, max_entries_.load(std::memory_order_relaxed));
  const std::size_t byte_bound =
      ShardBound(shard, max_bytes_.load(std::memory_order_relaxed));
  while (!shard.lru.empty() &&
         (shard.lru.size() > entry_bound || shard.bytes > byte_bound)) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    if (obs::JournalEnabled()) {
      obs::Event evict;
      evict.kind = obs::EventKind::kCacheEvict;
      evict.fingerprint = victim.key;
      evict.value = static_cast<double>(victim.bytes);
      obs::EmitEvent(evict);
    }
    shard.map.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
    BumpCacheCounter("cache.evictions");
  }
}

std::optional<QueryResult> QueryCache::Lookup(std::uint64_t key,
                                              bool record_miss) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    if (record_miss) {
      ++shard.misses;
      BumpCacheCounter("cache.misses");
    }
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.hits;
  BumpCacheCounter("cache.hits");
  return it->second->result;
}

void QueryCache::Insert(std::uint64_t key, const QueryResult& result,
                        std::optional<TimeInterval> valid_time) {
  if (!enabled()) {
    return;
  }
  Shard& shard = ShardFor(key);
  const std::size_t bytes = ResultBytes(result);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    // Refresh in place (an epoch bump means re-computed answers get new
    // keys, so a same-key refresh carries an identical result).
    shard.bytes -= it->second->bytes;
    it->second->result = result;
    it->second->bytes = bytes;
    it->second->valid_time = valid_time;
    shard.bytes += bytes;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    shard.lru.push_front(Entry{key, result, bytes, valid_time});
    shard.map.emplace(key, shard.lru.begin());
    shard.bytes += bytes;
    ++shard.inserts;
    BumpCacheCounter("cache.inserts");
  }
  TrimLocked(shard);
}

std::size_t QueryCache::InvalidateTimeOverlap(std::int64_t begin,
                                              std::int64_t end) {
  std::size_t dropped = 0;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      const bool affected =
          !it->valid_time.has_value() ||
          (it->valid_time->begin < end && it->valid_time->end > begin);
      if (!affected) {
        ++it;
        continue;
      }
      shard.bytes -= it->bytes;
      shard.map.erase(it->key);
      it = shard.lru.erase(it);
      ++dropped;
    }
  }
  return dropped;
}

void QueryCache::Clear() {
  for (std::size_t s = 0; s < shard_count_; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.map.clear();
    shard.bytes = 0;
  }
}

void QueryCache::set_max_entries(std::size_t max_entries) {
  max_entries_.store(max_entries, std::memory_order_relaxed);
  for (std::size_t s = 0; s < shard_count_; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    TrimLocked(shard);
  }
}

void QueryCache::set_max_bytes(std::size_t max_bytes) {
  max_bytes_.store(max_bytes, std::memory_order_relaxed);
  for (std::size_t s = 0; s < shard_count_; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    TrimLocked(shard);
  }
}

QueryCacheStats QueryCache::stats() const {
  QueryCacheStats total;
  for (std::size_t s = 0; s < shard_count_; ++s) {
    const Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    total.hits += shard.hits;
    total.misses += shard.misses;
    total.inserts += shard.inserts;
    total.evictions += shard.evictions;
    total.entries += shard.lru.size();
    total.bytes += shard.bytes;
  }
  return total;
}

}  // namespace urbane::core
