#ifndef URBANE_CORE_FILTER_H_
#define URBANE_CORE_FILTER_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "core/execution_context.h"
#include "core/row_range.h"
#include "data/point_table.h"
#include "geometry/bounding_box.h"
#include "util/status.h"

namespace urbane::core {

/// Closed attribute range predicate: lo <= value <= hi.
struct AttributeRange {
  std::string attribute;
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
};

/// Half-open time range [begin, end).
struct TimeRange {
  std::int64_t begin = 0;
  std::int64_t end = 0;

  bool Contains(std::int64_t t) const { return t >= begin && t < end; }
};

/// The ad-hoc [AND filterCondition]* of the paper's query: a conjunction of
/// an optional time range and any number of attribute ranges. These are
/// exactly the constraints pre-aggregation cubes cannot serve, which is why
/// the paper evaluates everything on the fly.
struct FilterSpec {
  std::optional<TimeRange> time_range;
  std::vector<AttributeRange> attribute_ranges;
  /// Spatial window on the implicit x/y columns (closed box). This is how
  /// Urbane's zoomed camera restricts queries to the visible viewport; it
  /// composes with every executor like any other conjunct.
  std::optional<geometry::BoundingBox> spatial_window;

  bool IsTrivial() const {
    return !time_range.has_value() && attribute_ranges.empty() &&
           !spatial_window.has_value();
  }

  FilterSpec& WithTime(std::int64_t begin, std::int64_t end) {
    time_range = TimeRange{begin, end};
    return *this;
  }
  FilterSpec& WithRange(std::string attribute, double lo, double hi) {
    attribute_ranges.push_back({std::move(attribute), lo, hi});
    return *this;
  }
  FilterSpec& WithWindow(const geometry::BoundingBox& window) {
    spatial_window = window;
    return *this;
  }
};

/// FilterSpec resolved against a concrete schema (attribute names bound to
/// column indices). Immutable after construction.
class CompiledFilter {
 public:
  /// Fails if an attribute name is unknown.
  static StatusOr<CompiledFilter> Compile(const FilterSpec& spec,
                                          const data::PointTable& table);

  /// Row-level predicate.
  bool Matches(const data::PointTable& table, std::size_t row) const;

  bool IsTrivial() const {
    return !time_range_ && ranges_.empty() && !window_;
  }

 private:
  struct BoundRange {
    std::size_t column;
    float lo;
    float hi;
  };

  std::optional<TimeRange> time_range_;
  std::vector<BoundRange> ranges_;
  std::optional<geometry::BoundingBox> window_;
};

/// Filter evaluation output shared by all executors: a dense row bitmap and
/// the surviving row ids.
struct FilterSelection {
  std::vector<std::uint8_t> bitmap;   // size == table.size()
  std::vector<std::uint32_t> ids;     // rows where bitmap != 0

  std::size_t passing() const { return ids.size(); }
  double Selectivity(std::size_t total) const {
    return total == 0 ? 0.0
                      : static_cast<double>(ids.size()) /
                            static_cast<double>(total);
  }
};

/// Evaluates the filter over every row.
StatusOr<FilterSelection> EvaluateFilter(const FilterSpec& spec,
                                         const data::PointTable& table);

/// Parallel variant: rows are partitioned across `exec`'s pool, per-chunk
/// survivor counts are prefix-summed, and the id list is written in place,
/// so the output (bitmap and ascending ids) is identical to the serial
/// evaluation at every thread count.
StatusOr<FilterSelection> EvaluateFilter(const FilterSpec& spec,
                                         const data::PointTable& table,
                                         const ExecutionContext& exec);

/// Zone-map-aware variant: rows outside `candidates` (null = all rows) are
/// skipped without testing the predicate. Because pruned rows cannot match
/// the filter, the selection is identical to the unpruned evaluation — the
/// pruning only saves the per-row work.
StatusOr<FilterSelection> EvaluateFilter(const FilterSpec& spec,
                                         const data::PointTable& table,
                                         const ExecutionContext& exec,
                                         const RowRangeSet* candidates);

/// Planning-time selectivity estimate: compiles the filter and counts
/// matches over an evenly strided sample of at most `max_sample` rows — no
/// bitmap or id vector is materialized, so the cost is O(min(n, max_sample))
/// time and O(1) memory (vs the O(n) allocation of EvaluateFilter). Exact
/// when the table fits in the sample; deterministic either way (stride
/// sampling, no RNG).
StatusOr<double> EstimateFilterSelectivity(const FilterSpec& spec,
                                           const data::PointTable& table,
                                           std::size_t max_sample = 65536);

}  // namespace urbane::core

#endif  // URBANE_CORE_FILTER_H_
