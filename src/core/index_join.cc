#include "core/index_join.h"

#include "util/timer.h"

namespace urbane::core {

StatusOr<std::unique_ptr<IndexJoin>> IndexJoin::Create(
    const data::PointTable& points, const data::RegionSet& regions,
    const IndexJoinOptions& options) {
  WallTimer timer;
  // Index bounds must cover all points; pad slightly so max-edge points
  // land in the last cell row/column.
  geometry::BoundingBox bounds = points.Bounds();
  if (bounds.IsEmpty()) {
    bounds = geometry::BoundingBox(0, 0, 1, 1);
  }
  bounds = bounds.Expanded(1e-6 * std::max(1.0, bounds.Width()));
  URBANE_ASSIGN_OR_RETURN(
      index::GridIndex grid,
      index::GridIndex::BuildAuto(points.xs(), points.ys(), points.size(),
                                  bounds, options.target_points_per_cell));
  auto executor = std::unique_ptr<IndexJoin>(
      new IndexJoin(points, regions, std::move(grid)));
  executor->stats_.build_seconds = timer.ElapsedSeconds();
  return executor;
}

StatusOr<QueryResult> IndexJoin::Execute(const AggregationQuery& query) {
  URBANE_RETURN_IF_ERROR(query.Validate());
  if (query.points != &points_ || query.regions != &regions_) {
    return Status::FailedPrecondition(
        "IndexJoin was created for a different table/region set");
  }
  const double build_seconds = stats_.build_seconds;
  stats_.Reset();
  stats_.build_seconds = build_seconds;
  WallTimer timer;

  URBANE_ASSIGN_OR_RETURN(CompiledFilter filter,
                          CompiledFilter::Compile(query.filter, points_));
  const bool trivial_filter = filter.IsTrivial();

  const std::vector<float>* attr = nullptr;
  if (query.aggregate.NeedsAttribute()) {
    attr = points_.AttributeByName(query.aggregate.attribute);
  }
  auto value_of = [&](std::uint32_t id) {
    return attr ? static_cast<double>((*attr)[id]) : 1.0;
  };

  QueryResult result;
  result.values.reserve(regions_.size());
  result.counts.reserve(regions_.size());

  for (std::size_t r = 0; r < regions_.size(); ++r) {
    Accumulator acc;
    for (const geometry::Polygon& part : regions_[r].geometry.parts()) {
      grid_.ClassifyCells(
          part,
          /*interior=*/
          [&](int cx, int cy) {
            const std::uint32_t* begin = grid_.CellBegin(cx, cy);
            const std::uint32_t* end = grid_.CellEnd(cx, cy);
            for (const std::uint32_t* it = begin; it != end; ++it) {
              if (!trivial_filter && !filter.Matches(points_, *it)) {
                continue;
              }
              acc.Add(value_of(*it));
              ++stats_.points_bulk;
            }
          },
          /*boundary=*/
          [&](int cx, int cy) {
            const std::uint32_t* begin = grid_.CellBegin(cx, cy);
            const std::uint32_t* end = grid_.CellEnd(cx, cy);
            for (const std::uint32_t* it = begin; it != end; ++it) {
              if (!trivial_filter && !filter.Matches(points_, *it)) {
                continue;
              }
              ++stats_.pip_tests;
              const geometry::Vec2 p{points_.x(*it), points_.y(*it)};
              if (part.Contains(p)) {
                acc.Add(value_of(*it));
                ++stats_.points_scanned;
              }
            }
          });
    }
    result.values.push_back(acc.Finalize(query.aggregate.kind));
    result.counts.push_back(acc.count);
  }

  stats_.query_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace urbane::core
