#include "core/index_join.h"

#include "core/observe.h"
#include "util/timer.h"

namespace urbane::core {

StatusOr<std::unique_ptr<IndexJoin>> IndexJoin::Create(
    const data::PointTable& points, const data::RegionSet& regions,
    const IndexJoinOptions& options) {
  WallTimer timer;
  // Index bounds must cover all points; pad slightly so max-edge points
  // land in the last cell row/column.
  geometry::BoundingBox bounds = points.Bounds();
  if (bounds.IsEmpty()) {
    bounds = geometry::BoundingBox(0, 0, 1, 1);
  }
  bounds = bounds.Expanded(1e-6 * std::max(1.0, bounds.Width()));
  URBANE_ASSIGN_OR_RETURN(
      index::GridIndex grid,
      index::GridIndex::BuildAuto(points.xs(), points.ys(), points.size(),
                                  bounds, options.target_points_per_cell));
  auto executor = std::unique_ptr<IndexJoin>(
      new IndexJoin(points, regions, std::move(grid), options));
  executor->stats_.build_seconds = timer.ElapsedSeconds();
  return executor;
}

StatusOr<QueryResult> IndexJoin::Execute(const AggregationQuery& query) {
  URBANE_RETURN_IF_ERROR(query.Validate());
  if (query.points != &points_ || query.regions != &regions_) {
    return Status::FailedPrecondition(
        "IndexJoin was created for a different table/region set");
  }
  const double build_seconds = stats_.build_seconds;
  stats_.Reset();
  stats_.build_seconds = build_seconds;
  obs::TraceSpan exec_span(query.trace, "index");
  WallTimer timer;

  WallTimer filter_timer;
  URBANE_ASSIGN_OR_RETURN(CompiledFilter filter,
                          CompiledFilter::Compile(query.filter, points_));
  stats_.filter_seconds = filter_timer.ElapsedSeconds();
  TracePass(query.trace, exec_span.id(), "filter", stats_.filter_seconds);
  URBANE_RETURN_IF_ERROR(query.CheckControl());
  const bool trivial_filter = filter.IsTrivial();

  const float* attr = nullptr;
  if (query.aggregate.NeedsAttribute()) {
    attr = points_.AttributeByName(query.aggregate.attribute);
  }
  auto value_of = [&](std::uint32_t id) {
    return attr ? static_cast<double>(attr[id]) : 1.0;
  };
  // Zone-map gate: a pruned id cannot match the filter, so skipping it
  // before Matches only saves the predicate work.
  const RowRangeSet* cand = query.candidate_ranges;
  auto pruned = [&](std::uint32_t id) {
    return cand != nullptr && !cand->Contains(id);
  };

  // Regions are independent probes of a read-only grid, so they partition
  // across the pool; each region's accumulator is private to one worker
  // and results land in preallocated region slots.
  const ExecutionContext& exec = options_.exec;
  stats_.threads_used = exec.EffectiveThreads();
  const std::size_t num_regions = regions_.size();
  QueryResult result;
  result.values.assign(num_regions, 0.0);
  result.counts.assign(num_regions, 0);
  std::vector<ExecutorStats> worker_stats(exec.EffectiveThreads());

  WallTimer reduce_timer;
  ForEachPartition(exec, num_regions, [&](std::size_t part_index,
                                          std::size_t begin,
                                          std::size_t end) {
    ExecutorStats& ws = worker_stats[part_index];
    for (std::size_t r = begin; r < end; ++r) {
      Accumulator acc;
      for (const geometry::Polygon& part : regions_[r].geometry.parts()) {
        grid_.ClassifyCells(
            part,
            /*interior=*/
            [&](int cx, int cy) {
              const std::uint32_t* cell_begin = grid_.CellBegin(cx, cy);
              const std::uint32_t* cell_end = grid_.CellEnd(cx, cy);
              for (const std::uint32_t* it = cell_begin; it != cell_end;
                   ++it) {
                if (pruned(*it)) {
                  continue;
                }
                if (!trivial_filter && !filter.Matches(points_, *it)) {
                  continue;
                }
                acc.Add(value_of(*it));
                ++ws.points_bulk;
              }
            },
            /*boundary=*/
            [&](int cx, int cy) {
              const std::uint32_t* cell_begin = grid_.CellBegin(cx, cy);
              const std::uint32_t* cell_end = grid_.CellEnd(cx, cy);
              for (const std::uint32_t* it = cell_begin; it != cell_end;
                   ++it) {
                if (pruned(*it)) {
                  continue;
                }
                if (!trivial_filter && !filter.Matches(points_, *it)) {
                  continue;
                }
                ++ws.pip_tests;
                const geometry::Vec2 p{points_.x(*it), points_.y(*it)};
                if (part.Contains(p)) {
                  acc.Add(value_of(*it));
                  ++ws.points_scanned;
                }
              }
            });
      }
      result.values[r] = acc.Finalize(query.aggregate.kind);
      result.counts[r] = acc.count;
    }
  });
  for (const ExecutorStats& ws : worker_stats) {
    stats_.MergeCounters(ws);
  }
  stats_.reduce_seconds = reduce_timer.ElapsedSeconds();
  TracePass(query.trace, exec_span.id(), "reduce", stats_.reduce_seconds);

  stats_.query_seconds = timer.ElapsedSeconds();
  ObserveExecutorStats("index", stats_);
  return result;
}

}  // namespace urbane::core
