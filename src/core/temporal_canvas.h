#ifndef URBANE_CORE_TEMPORAL_CANVAS_H_
#define URBANE_CORE_TEMPORAL_CANVAS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/query.h"
#include "core/raster_join.h"
#include "raster/buffer.h"
#include "raster/viewport.h"

namespace urbane::core {

/// Options of the time-binned canvas index.
struct TemporalCanvasOptions {
  /// Canvas resolution (same semantics as RasterJoinOptions::resolution).
  /// Memory is resolution^2 * (time_bins + 1) * 4 bytes, so the default is
  /// deliberately coarser than the per-query canvas.
  int resolution = 256;
  /// Number of equal-width time bins over the data's time span.
  int time_bins = 64;
  std::optional<geometry::BoundingBox> world;
  /// Pins the bin layout to the closed time span [first, second] instead of
  /// deriving it from the build-time points. Required for appendable use:
  /// Append() keeps the layout fixed (times outside the domain clamp into
  /// the edge bins), so an incrementally-maintained index is identical to a
  /// rebuild with the same pinned domain.
  std::optional<std::pair<std::int64_t, std::int64_t>> time_domain;
};

/// Time-brushing accelerator: a stack of per-time-bin COUNT canvases stored
/// as prefix sums along time, so the canvas of ANY bin-aligned time window
/// [b0, b1) is one subtraction — independent of the point count. Moving
/// Urbane's time slider then costs O(canvas + region sweep) per frame
/// instead of O(points).
///
/// The answer is approximate on two axes, both explicit:
///  * spatially, like BoundedRasterJoin (pixel-ownership, ε = pixel
///    diagonal);
///  * temporally, the query window is snapped OUTWARD to bin edges; the
///    report includes the snapped window so callers can display it (Urbane
///    snaps its slider to the same bins).
///
/// Supports COUNT (the brushing workload); other aggregates fall back to
/// the regular executors.
class TemporalCanvasIndex {
 public:
  static StatusOr<std::unique_ptr<TemporalCanvasIndex>> Build(
      const data::PointTable& points, const data::RegionSet& regions,
      const TemporalCanvasOptions& options = TemporalCanvasOptions());

  /// COUNT per region for points with t in the window snapped outward to
  /// bin edges. `snapped_begin/end` (optional) receive the effective
  /// window.
  StatusOr<QueryResult> QueryTimeWindow(std::int64_t t_begin,
                                        std::int64_t t_end,
                                        std::int64_t* snapped_begin = nullptr,
                                        std::int64_t* snapped_end = nullptr);

  /// Incrementally folds appended points into the index without a rebuild:
  /// each point splats into its time bin and updates only the prefix
  /// canvases at or above that bin (the affected temporal levels), so an
  /// append over a recent window costs O(rows * bins_above) instead of
  /// O(all_points * bins). The bin layout and canvas stay fixed — build
  /// with a pinned `world` and `time_domain` so the layout does not depend
  /// on which rows arrived first; out-of-domain times clamp into the edge
  /// bins and out-of-world points are skipped, exactly as Build does.
  /// The result equals a from-scratch Build over base+appended rows with
  /// the same pinned options (counts are integers, so equality is exact).
  Status Append(const data::PointTable& batch);

  const raster::Viewport& canvas() const { return viewport_; }
  int time_bins() const { return time_bins_; }
  std::int64_t min_time() const { return min_time_; }
  std::int64_t max_time() const { return max_time_; }
  std::size_t MemoryBytes() const;
  double build_seconds() const { return build_seconds_; }

  /// Bin index owning time t (clamped).
  int BinForTime(std::int64_t t) const;
  /// Start time of bin b (b may be time_bins for the exclusive end).
  std::int64_t BinStart(int b) const;

 private:
  TemporalCanvasIndex(const data::PointTable& points,
                      const data::RegionSet& regions,
                      raster::Viewport viewport, int time_bins)
      : points_(points),
        regions_(regions),
        viewport_(viewport),
        time_bins_(time_bins) {}

  /// Prefix canvas p such that prefix_[p] = counts of all bins < p.
  const std::uint32_t* PrefixCanvas(int p) const {
    return prefix_.data() +
           static_cast<std::size_t>(p) * pixels_per_canvas_;
  }

  const data::PointTable& points_;
  const data::RegionSet& regions_;
  raster::Viewport viewport_;
  int time_bins_;
  std::int64_t min_time_ = 0;
  std::int64_t max_time_ = 0;
  std::size_t pixels_per_canvas_ = 0;
  // (time_bins + 1) canvases, prefix-summed along time.
  std::vector<std::uint32_t> prefix_;
  double build_seconds_ = 0.0;
};

}  // namespace urbane::core

#endif  // URBANE_CORE_TEMPORAL_CANVAS_H_
