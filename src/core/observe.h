#ifndef URBANE_CORE_OBSERVE_H_
#define URBANE_CORE_OBSERVE_H_

// Glue between the executors and the obs subsystem.
//
// Executors keep their existing WallTimer-based pass timings (those feed
// `ExecutorStats` unconditionally, exactly as before this layer existed);
// this header turns the measured numbers into trace spans and registry
// metrics. Both entry points are no-ops on the disabled fast path, so the
// query path pays nothing when nobody is observing.

#include "core/aggregate.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace urbane::core {

/// Records one executor pass as a completed child span of `parent` (the
/// executor's RAII span). Completed pass spans carry durations only; their
/// `start_seconds` stays 0 so traces are reproducible from synthetic
/// timings (see DESIGN.md "Observability").
inline void TracePass(obs::QueryTrace* trace, int parent, const char* name,
                      double duration_seconds) {
  if (trace != nullptr) {
    trace->AddCompletedSpan(name, duration_seconds, parent);
  }
}

/// Publishes one Execute call's stats into the global registry under
/// `exec.<executor>.*` (see DESIGN.md for the metric naming convention).
/// No-op unless metrics are enabled.
void ObserveExecutorStats(const char* executor, const ExecutorStats& stats);

/// Copies one execution's measured pass costs into a profile section
/// (obs cannot depend on core, so the field copy lives on this side).
void FillProfilePassCosts(const ExecutorStats& stats,
                          obs::ProfilePassCosts* out);

/// RAII thread-CPU attribution for a span scope: records the calling
/// thread's CLOCK_THREAD_CPUTIME_ID delta across its lifetime into
/// `*sink` (accumulating). A null sink — the unprofiled common case —
/// makes both ends a pointer test, preserving the obs-off == baseline
/// contract. Exact for serial scopes (facade dispatch, one shard's pass);
/// for intra-executor parallelism it attributes the coordinator thread
/// only, which DESIGN.md §12 documents as the contract.
class ProfileCpuScope {
 public:
  explicit ProfileCpuScope(double* sink)
      : sink_(sink),
        start_(sink != nullptr ? obs::ThreadCpuSeconds() : 0.0) {}
  ~ProfileCpuScope() {
    if (sink_ != nullptr) {
      *sink_ += obs::ThreadCpuSeconds() - start_;
    }
  }
  ProfileCpuScope(const ProfileCpuScope&) = delete;
  ProfileCpuScope& operator=(const ProfileCpuScope&) = delete;

 private:
  double* sink_;
  double start_;
};

}  // namespace urbane::core

#endif  // URBANE_CORE_OBSERVE_H_
