#ifndef URBANE_CORE_QUERY_H_
#define URBANE_CORE_QUERY_H_

#include <string>

#include "core/aggregate.h"
#include "core/filter.h"
#include "data/point_table.h"
#include "data/region.h"
#include "util/status.h"

namespace urbane::obs {
class QueryTrace;
}  // namespace urbane::obs

namespace urbane::core {

/// The paper's spatial aggregation query:
///
///   SELECT AGG(a_i) FROM P, R
///   WHERE P.loc INSIDE R.geometry [AND filterCondition]*
///   GROUP BY R.id
///
/// `points` is P, `regions` is R; both are borrowed (caller keeps them alive
/// for the duration of execution). A point lying in several (overlapping)
/// regions contributes to each of them.
struct AggregationQuery {
  const data::PointTable* points = nullptr;
  const data::RegionSet* regions = nullptr;
  AggregateSpec aggregate;
  FilterSpec filter;

  /// Optional per-query trace sink (not part of the query's identity: the
  /// cache fingerprint ignores it). Executors emit one span per pass into
  /// it; null — the common case — makes every span a no-op.
  obs::QueryTrace* trace = nullptr;

  /// Structural validation (non-null inputs, attribute names resolvable).
  Status Validate() const;

  /// Human-readable SQL-ish rendering for logs and EXPLAIN output.
  std::string ToString() const;
};

/// Common interface of the four interchangeable execution strategies.
class SpatialAggregationExecutor {
 public:
  virtual ~SpatialAggregationExecutor() = default;

  /// Executes the query, producing one value per region (region order).
  virtual StatusOr<QueryResult> Execute(const AggregationQuery& query) = 0;

  /// Strategy name for reports ("scan", "index", "raster", "accurate").
  virtual std::string name() const = 0;

  /// True if results are exact (false only for the bounded raster join).
  virtual bool exact() const = 0;

  /// Telemetry from the most recent Execute call.
  virtual const ExecutorStats& stats() const = 0;
};

}  // namespace urbane::core

#endif  // URBANE_CORE_QUERY_H_
