#ifndef URBANE_CORE_QUERY_H_
#define URBANE_CORE_QUERY_H_

#include <atomic>
#include <chrono>
#include <string>

#include "core/aggregate.h"
#include "core/filter.h"
#include "core/row_range.h"
#include "data/point_table.h"
#include "data/region.h"
#include "util/status.h"

namespace urbane::obs {
class QueryTrace;
struct QueryProfile;
}  // namespace urbane::obs

namespace urbane::core {

/// Cooperative deadline / cancellation for one in-flight query. The owner
/// (e.g. a server worker) keeps the control alive for the duration of
/// Execute; executors poll Check() at pass boundaries (filter → splat →
/// sweep → reduce → refine), so a query aborts within one pass of the
/// deadline expiring or `cancelled` being set — never mid-buffer.
///
/// Not part of a query's identity: the result cache fingerprint ignores
/// it, and a query that aborts returns a non-OK status, so partial results
/// can never be cached.
struct QueryControl {
  using Clock = std::chrono::steady_clock;

  /// Absolute deadline; the epoch default means "none".
  Clock::time_point deadline{};
  /// Asynchronous abort (e.g. server drain past its drain deadline). May
  /// be set from any thread while the query runs.
  std::atomic<bool> cancelled{false};

  void SetTimeout(std::chrono::milliseconds timeout) {
    deadline = Clock::now() + timeout;
  }

  /// OK while the query may keep running; DeadlineExceeded once the
  /// deadline passed or the control was cancelled.
  Status Check() const {
    if (cancelled.load(std::memory_order_relaxed)) {
      return Status::DeadlineExceeded("query cancelled");
    }
    if (deadline != Clock::time_point{} && Clock::now() > deadline) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::OK();
  }
};

/// The paper's spatial aggregation query:
///
///   SELECT AGG(a_i) FROM P, R
///   WHERE P.loc INSIDE R.geometry [AND filterCondition]*
///   GROUP BY R.id
///
/// `points` is P, `regions` is R; both are borrowed (caller keeps them alive
/// for the duration of execution). A point lying in several (overlapping)
/// regions contributes to each of them.
struct AggregationQuery {
  const data::PointTable* points = nullptr;
  const data::RegionSet* regions = nullptr;
  AggregateSpec aggregate;
  FilterSpec filter;

  /// Optional per-query trace sink (not part of the query's identity: the
  /// cache fingerprint ignores it). Executors emit one span per pass into
  /// it; null — the common case — makes every span a no-op.
  obs::QueryTrace* trace = nullptr;

  /// Optional deadline/cancellation hook, polled between executor passes;
  /// null (the common case) costs one pointer test per pass. Borrowed —
  /// the caller keeps it alive for the duration of Execute. Like `trace`,
  /// not part of the query's identity.
  const QueryControl* control = nullptr;

  /// Optional per-request profile (obs/profile.h): the facade attributes
  /// planner/cache/prune outcomes and executor pass costs to it, and the
  /// sharded executor appends its per-shard breakdown. Same discipline as
  /// `trace`: nullable, borrowed, mutated only by the coordinator thread
  /// of this query, and never part of the query's identity.
  obs::QueryProfile* profile = nullptr;

  /// Optional zone-map pruning output (ZoneMapIndex::Prune over this
  /// query's filter): rows outside these ranges are known not to match the
  /// filter, so executors skip them before the per-point predicate. Null —
  /// the in-memory common case — means all rows are candidates. Borrowed
  /// for the duration of Execute; not part of the query's identity, since
  /// pruning never changes results (see ZoneMapIndex).
  const RowRangeSet* candidate_ranges = nullptr;

  /// Pass-boundary deadline poll (see QueryControl).
  Status CheckControl() const {
    return control == nullptr ? Status::OK() : control->Check();
  }

  /// Structural validation (non-null inputs, attribute names resolvable).
  Status Validate() const;

  /// Human-readable SQL-ish rendering for logs and EXPLAIN output.
  std::string ToString() const;
};

/// Common interface of the four interchangeable execution strategies.
class SpatialAggregationExecutor {
 public:
  virtual ~SpatialAggregationExecutor() = default;

  /// Executes the query, producing one value per region (region order).
  virtual StatusOr<QueryResult> Execute(const AggregationQuery& query) = 0;

  /// Strategy name for reports ("scan", "index", "raster", "accurate").
  virtual std::string name() const = 0;

  /// True if results are exact (false only for the bounded raster join).
  virtual bool exact() const = 0;

  /// Telemetry from the most recent Execute call.
  virtual const ExecutorStats& stats() const = 0;
};

}  // namespace urbane::core

#endif  // URBANE_CORE_QUERY_H_
