#include "core/region_spans.h"

#include "core/raster_targets.h"
#include "raster/kernels.h"
#include "raster/rasterizer.h"
#include "raster/tile.h"

namespace urbane::core::internal {

std::size_t RegionSpanCache::MemoryBytes() const {
  return spans.capacity() * sizeof(raster::PixelSpan) +
         span_part_offsets.capacity() * sizeof(std::uint32_t) +
         boundary.capacity() * sizeof(std::uint32_t) +
         boundary_part_offsets.capacity() * sizeof(std::uint32_t);
}

std::size_t SweepGeometry::MemoryBytes() const {
  std::size_t total = regions.capacity() * sizeof(RegionSpanCache);
  for (const RegionSpanCache& cache : regions) {
    total += cache.MemoryBytes();
  }
  return total;
}

SweepGeometry BuildSweepGeometry(const raster::Viewport& vp,
                                 const data::RegionSet& regions,
                                 SweepMode mode, bool with_boundary,
                                 bool triangle_pipeline) {
  SweepGeometry geometry;
  geometry.regions.resize(regions.size());
  const std::size_t num_pixels =
      static_cast<std::size_t>(vp.width()) * vp.height();
  StampBuffer stamp(with_boundary ? num_pixels : 0);
  const raster::RasterKernels& kernels = raster::ActiveKernels();

  for (std::size_t r = 0; r < regions.size(); ++r) {
    RegionSpanCache& cache = geometry.regions[r];
    cache.span_part_offsets.push_back(0);
    cache.boundary_part_offsets.push_back(0);
    raster::TileCoverage tiles(vp.width(), vp.height());

    // Bounded mode dedups boundary pixels once per region (the error-bound
    // loop's scope); accurate mode opens a fresh scope per part below.
    if (with_boundary && mode == SweepMode::kBounded) {
      stamp.NextScope();
    }

    for (const geometry::Polygon& part : regions[r].geometry.parts()) {
      if (with_boundary) {
        if (mode == SweepMode::kAccurate) {
          stamp.NextScope();
        }
        raster::RasterizePolygonBoundary(vp, part, [&](int x, int y) {
          const std::size_t idx =
              static_cast<std::size_t>(y) * vp.width() + x;
          if (stamp.MarkOnce(idx)) {
            cache.boundary.push_back(static_cast<std::uint32_t>(idx));
          }
        });
      }

      const auto emit = [&](int y, int x_begin, int x_end) {
        if (x_begin >= x_end) return;
        cache.pixels += static_cast<std::uint64_t>(x_end - x_begin);
        tiles.AddSpan(y, x_begin, x_end);
        if (mode == SweepMode::kAccurate && with_boundary) {
          // Cut this part's boundary pixels out of the span so the sweep
          // never re-checks them (they are resolved exactly instead).
          const std::size_t row_base =
              static_cast<std::size_t>(y) * vp.width();
          int run = x_begin;
          for (int x = x_begin; x < x_end; ++x) {
            if (stamp.Marked(row_base + x)) {
              if (run < x) cache.spans.push_back({y, run, x});
              run = x + 1;
            }
          }
          if (run < x_end) cache.spans.push_back({y, run, x_end});
        } else {
          cache.spans.push_back({y, x_begin, x_end});
        }
      };
      if (triangle_pipeline) {
        raster::TiledRasterizePolygonTriangles(vp, part, kernels, emit);
      } else {
        raster::ScanlineFillPolygon(vp, part, emit);
      }

      cache.span_part_offsets.push_back(
          static_cast<std::uint32_t>(cache.spans.size()));
      cache.boundary_part_offsets.push_back(
          static_cast<std::uint32_t>(cache.boundary.size()));
    }
    cache.tiles = static_cast<std::uint32_t>(tiles.count());
    cache.spans.shrink_to_fit();
    cache.boundary.shrink_to_fit();
  }
  return geometry;
}

}  // namespace urbane::core::internal
