#include "core/raster_join.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>

#include "core/observe.h"
#include "core/raster_targets.h"
#include "raster/rasterizer.h"
#include "util/timer.h"

namespace urbane::core {

raster::Viewport MakeCanvas(const geometry::BoundingBox& world,
                            int resolution) {
  if (world.Width() >= world.Height()) {
    const int height = std::max(
        1, static_cast<int>(std::lround(resolution * world.Height() /
                                        world.Width())));
    return raster::Viewport(world, resolution, height);
  }
  const int width = std::max(
      1,
      static_cast<int>(std::lround(resolution * world.Width() /
                                   world.Height())));
  return raster::Viewport(world, width, resolution);
}

int ResolutionForEpsilon(const geometry::BoundingBox& world,
                         double epsilon_world) {
  // Pixel diagonal of a square-pixel canvas at resolution R along the longer
  // side L: diag = sqrt(2) * L / R. Solve diag <= eps for R.
  const double longer = std::max(world.Width(), world.Height());
  const double r = std::sqrt(2.0) * longer / epsilon_world;
  return std::max(1, static_cast<int>(std::ceil(r)));
}

geometry::BoundingBox PadCanvasWorld(geometry::BoundingBox world) {
  if (world.IsEmpty()) {
    world = geometry::BoundingBox(0, 0, 1, 1);
  }
  // Pad so points sitting exactly on the max edge stay inside after
  // float32 -> double round trips.
  const double pad =
      1e-9 * std::max({1.0, std::fabs(world.max_x), std::fabs(world.max_y)});
  return world.Expanded(std::max(pad, 1e-7 * std::max(1.0, world.Width())));
}

namespace {

geometry::BoundingBox ComputeCanvasWorld(const data::PointTable& points,
                                         const data::RegionSet& regions) {
  geometry::BoundingBox world = points.Bounds();
  world.Extend(regions.Bounds());
  return PadCanvasWorld(world);
}

}  // namespace

StatusOr<raster::Viewport> MakeValidatedCanvas(
    const data::PointTable& points, const data::RegionSet& regions,
    const RasterJoinOptions& options) {
  if (options.resolution <= 0) {
    return Status::InvalidArgument("canvas resolution must be positive");
  }
  const geometry::BoundingBox world =
      options.world.value_or(ComputeCanvasWorld(points, regions));
  const geometry::BoundingBox point_bounds = points.Bounds();
  const geometry::BoundingBox region_bounds = regions.Bounds();
  if ((!point_bounds.IsEmpty() && !world.Contains(point_bounds)) ||
      (!region_bounds.IsEmpty() && !world.Contains(region_bounds))) {
    return Status::InvalidArgument(
        "canvas world window must cover all points and regions");
  }
  return MakeCanvas(world, options.resolution);
}

StatusOr<std::unique_ptr<BoundedRasterJoin>> BoundedRasterJoin::Create(
    const data::PointTable& points, const data::RegionSet& regions,
    const RasterJoinOptions& options) {
  WallTimer timer;
  URBANE_ASSIGN_OR_RETURN(raster::Viewport viewport,
                          MakeValidatedCanvas(points, regions, options));
  auto executor = std::unique_ptr<BoundedRasterJoin>(
      new BoundedRasterJoin(points, regions, options, viewport));
  executor->morton_ = raster::MortonSplatOrder::Build(
      viewport, points.xs(), points.ys(), points.size());
  executor->sweep_ = internal::BuildSweepGeometry(
      viewport, regions, internal::SweepMode::kBounded,
      /*with_boundary=*/options.compute_error_bounds,
      options.use_triangle_pipeline);
  executor->stats_.build_seconds = timer.ElapsedSeconds();
  return executor;
}

StatusOr<QueryResult> BoundedRasterJoin::Execute(
    const AggregationQuery& query) {
  URBANE_RETURN_IF_ERROR(query.Validate());
  if (query.points != &points_ || query.regions != &regions_) {
    return Status::FailedPrecondition(
        "BoundedRasterJoin was created for a different table/region set");
  }
  const double build_seconds = stats_.build_seconds;
  stats_.Reset();
  stats_.build_seconds = build_seconds;
  const ExecutionContext& exec = options_.exec;
  stats_.threads_used = exec.EffectiveThreads();
  obs::TraceSpan exec_span(query.trace, "raster");
  WallTimer timer;

  // --- filter + pass 1: splat the surviving points onto the canvas (pixel
  //     indices computed once, SIMD, and shared by every render target) ---
  WallTimer filter_timer;
  URBANE_ASSIGN_OR_RETURN(
      FilterSelection selection,
      EvaluateFilter(query.filter, points_, exec, query.candidate_ranges));
  stats_.filter_seconds = filter_timer.ElapsedSeconds();
  TracePass(query.trace, exec_span.id(), "filter", stats_.filter_seconds);
  URBANE_RETURN_IF_ERROR(query.CheckControl());
  const float* attr = nullptr;
  if (query.aggregate.NeedsAttribute()) {
    attr = points_.AttributeByName(query.aggregate.attribute);
  }
  // abs-sum targets only bound SUM's error; COUNT/AVG/MIN/MAX report the
  // boundary point count (see QueryResult::error_bounds docs).
  WallTimer splat_timer;
  const internal::SplatSchedule schedule =
      internal::BuildSplatSchedule(viewport_, points_, selection, &morton_);
  internal::AggregateTargets& targets = targets_scratch_;
  internal::BuildAggregateTargets(
      viewport_, schedule, attr, query.aggregate.kind,
      options_.use_float32_targets,
      /*need_abs_sum=*/options_.compute_error_bounds &&
          query.aggregate.kind == AggregateKind::kSum,
      targets, exec.Splat());
  stats_.splat_seconds = splat_timer.ElapsedSeconds();
  TracePass(query.trace, exec_span.id(), "splat", stats_.splat_seconds);
  URBANE_RETURN_IF_ERROR(query.CheckControl());
  stats_.points_scanned = selection.ids.size();

  // --- pass 2: sweep the cached region spans, one contiguous region range
  //     per worker; spans are walked in the exact order the scan converter
  //     emitted them, so results match the uncached serial sweep bit for
  //     bit ---
  WallTimer sweep_timer;
  const std::size_t num_regions = regions_.size();
  QueryResult result;
  result.values.assign(num_regions, 0.0);
  result.counts.assign(num_regions, 0);
  if (options_.compute_error_bounds) {
    result.error_bounds.assign(num_regions, 0.0);
  }

  const bool sum_bound = targets.need_abs_sum;
  const raster::RasterKernels& kernels = raster::ActiveKernels();
  const std::uint32_t* count_data = targets.count.data().data();
  const double* abs_data =
      sum_bound ? targets.abs_sum.data().data() : nullptr;
  std::vector<ExecutorStats> worker_stats(exec.EffectiveThreads());
  ForEachPartition(exec, num_regions, [&](std::size_t part, std::size_t begin,
                                          std::size_t end) {
    ExecutorStats& ws = worker_stats[part];
    std::vector<std::uint32_t> scratch(
        static_cast<std::size_t>(viewport_.width()));
    for (std::size_t r = begin; r < end; ++r) {
      const internal::RegionSpanCache& cache = sweep_.regions[r];
      Accumulator acc;
      for (const raster::PixelSpan& span : cache.spans) {
        ws.simd_fragments +=
            static_cast<std::size_t>(span.x_end - span.x_begin);
        internal::AccumulateSpan(targets, kernels, span, acc,
                                 scratch.data());
      }
      ws.pixels_touched += cache.pixels;
      ws.tiles_visited += cache.tiles;
      result.values[r] = acc.Finalize(query.aggregate.kind);
      result.counts[r] = acc.count;

      if (options_.compute_error_bounds) {
        // Error is confined to pixels the region boundary passes through;
        // bound it by the aggregate mass sitting in those pixels. Pixels no
        // point hit carry no mass — the count gate also keeps the read off
        // abs_sum's first-touch-initialized (possibly stale) cells.
        double bound = 0.0;
        for (const std::uint32_t idx : cache.boundary) {
          const std::uint32_t c = count_data[idx];
          if (c == 0) continue;
          bound += sum_bound ? abs_data[idx] : static_cast<double>(c);
        }
        ws.boundary_pixels += cache.boundary.size();
        result.error_bounds[r] = bound;
      }
    }
  });
  for (const ExecutorStats& ws : worker_stats) {
    stats_.MergeCounters(ws);
  }
  stats_.sweep_seconds = sweep_timer.ElapsedSeconds();
  TracePass(query.trace, exec_span.id(), "sweep", stats_.sweep_seconds);
  stats_.query_seconds = timer.ElapsedSeconds();
  ObserveExecutorStats("raster", stats_);
  return result;
}

namespace {

bool FiltersEqual(const FilterSpec& a, const FilterSpec& b) {
  if (a.time_range.has_value() != b.time_range.has_value()) return false;
  if (a.time_range && (a.time_range->begin != b.time_range->begin ||
                       a.time_range->end != b.time_range->end)) {
    return false;
  }
  if (a.spatial_window.has_value() != b.spatial_window.has_value()) {
    return false;
  }
  if (a.spatial_window && !(*a.spatial_window == *b.spatial_window)) {
    return false;
  }
  if (a.attribute_ranges.size() != b.attribute_ranges.size()) return false;
  for (std::size_t i = 0; i < a.attribute_ranges.size(); ++i) {
    const AttributeRange& ra = a.attribute_ranges[i];
    const AttributeRange& rb = b.attribute_ranges[i];
    if (ra.attribute != rb.attribute || ra.lo != rb.lo || ra.hi != rb.hi) {
      return false;
    }
  }
  return true;
}

}  // namespace

StatusOr<std::vector<QueryResult>> BoundedRasterJoin::ExecuteBatch(
    const std::vector<AggregationQuery>& queries) {
  if (queries.empty()) {
    return std::vector<QueryResult>();
  }
  for (const AggregationQuery& query : queries) {
    URBANE_RETURN_IF_ERROR(query.Validate());
    if (query.points != &points_ || query.regions != &regions_) {
      return Status::FailedPrecondition(
          "BoundedRasterJoin was created for a different table/region set");
    }
    if (!FiltersEqual(query.filter, queries.front().filter)) {
      return Status::InvalidArgument(
          "batched queries must share one filter (the splat pass is shared)");
    }
  }
  const double build_seconds = stats_.build_seconds;
  stats_.Reset();
  stats_.build_seconds = build_seconds;
  const ExecutionContext& exec = options_.exec;
  const raster::SplatParallelism splat_par = exec.Splat();
  stats_.threads_used = exec.EffectiveThreads();
  // Batch trace convention: the whole shared-splat execution reports into
  // the front query's trace (the batch is one execution, not N).
  obs::QueryTrace* trace = queries.front().trace;
  obs::TraceSpan exec_span(trace, "raster");
  exec_span.Tag("batch_size", std::to_string(queries.size()));
  WallTimer timer;

  WallTimer filter_timer;
  URBANE_ASSIGN_OR_RETURN(
      FilterSelection selection,
      EvaluateFilter(queries.front().filter, points_, exec,
                     queries.front().candidate_ranges));
  stats_.filter_seconds = filter_timer.ElapsedSeconds();
  TracePass(trace, exec_span.id(), "filter", stats_.filter_seconds);
  URBANE_RETURN_IF_ERROR(queries.front().CheckControl());
  stats_.points_scanned = selection.ids.size();

  // --- shared pass 1: the pixel indices are computed once for the whole
  //     batch; one count splat + one sum / min-max splat per distinct
  //     attribute the batch touches ---
  WallTimer splat_timer;
  const internal::SplatSchedule schedule =
      internal::BuildSplatSchedule(viewport_, points_, selection, &morton_);
  raster::Buffer2D<std::uint32_t> count(viewport_.width(),
                                        viewport_.height(), 0);
  raster::ParallelSplatIndexed(
      splat_par, viewport_, schedule.indices.data(), schedule.size(),
      raster::BlendOp::kAdd, [](std::size_t) { return 1u; }, count);

  struct AttrTargets {
    raster::Buffer2D<double> sum;
    raster::Buffer2D<double> abs_sum;
    raster::Buffer2D<float> min_value;
    raster::Buffer2D<float> max_value;
    bool has_sum = false;
    bool has_abs = false;
    bool has_minmax = false;
  };
  std::map<std::string, AttrTargets> per_attr;
  for (const AggregationQuery& query : queries) {
    if (!query.aggregate.NeedsAttribute()) continue;
    const std::string& name = query.aggregate.attribute;
    AttrTargets& targets = per_attr[name];
    const float* column = points_.AttributeByName(name);
    const bool needs_sum = query.aggregate.kind == AggregateKind::kSum ||
                           query.aggregate.kind == AggregateKind::kAvg;
    if (needs_sum && !targets.has_sum) {
      targets.has_sum = true;
      targets.sum =
          raster::Buffer2D<double>(viewport_.width(), viewport_.height(), 0);
      raster::ParallelSplatIndexed(
          splat_par, viewport_, schedule.indices.data(), schedule.size(),
          raster::BlendOp::kAdd,
          [&](std::size_t k) {
            return static_cast<double>(column[schedule.ids[k]]);
          },
          targets.sum);
    }
    if (needs_sum && options_.compute_error_bounds && !targets.has_abs) {
      targets.has_abs = true;
      targets.abs_sum =
          raster::Buffer2D<double>(viewport_.width(), viewport_.height(), 0);
      raster::ParallelSplatIndexed(
          splat_par, viewport_, schedule.indices.data(), schedule.size(),
          raster::BlendOp::kAdd,
          [&](std::size_t k) {
            return std::abs(static_cast<double>(column[schedule.ids[k]]));
          },
          targets.abs_sum);
    }
    const bool needs_minmax = query.aggregate.kind == AggregateKind::kMin ||
                              query.aggregate.kind == AggregateKind::kMax;
    if (needs_minmax && !targets.has_minmax) {
      targets.has_minmax = true;
      targets.min_value = raster::Buffer2D<float>(
          viewport_.width(), viewport_.height(),
          std::numeric_limits<float>::infinity());
      raster::ParallelSplatIndexed(
          splat_par, viewport_, schedule.indices.data(), schedule.size(),
          raster::BlendOp::kMin,
          [&](std::size_t k) { return column[schedule.ids[k]]; },
          targets.min_value);
      targets.max_value = raster::Buffer2D<float>(
          viewport_.width(), viewport_.height(),
          -std::numeric_limits<float>::infinity());
      raster::ParallelSplatIndexed(
          splat_par, viewport_, schedule.indices.data(), schedule.size(),
          raster::BlendOp::kMax,
          [&](std::size_t k) { return column[schedule.ids[k]]; },
          targets.max_value);
    }
  }
  stats_.splat_seconds = splat_timer.ElapsedSeconds();
  TracePass(trace, exec_span.id(), "splat", stats_.splat_seconds);
  URBANE_RETURN_IF_ERROR(queries.front().CheckControl());

  // Resolve each query's targets once; the sweep reads the map no more.
  std::vector<const AttrTargets*> query_targets(queries.size(), nullptr);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    if (queries[q].aggregate.NeedsAttribute()) {
      query_targets[q] = &per_attr.at(queries[q].aggregate.attribute);
    }
  }

  // --- shared pass 2: sweep each region's cached spans once, feeding every
  //     aggregate; the nonzero-count pixels of a span are gathered by the
  //     SIMD kernels and visited in ascending order, exactly like the
  //     per-pixel loop they replace ---
  WallTimer sweep_timer;
  const std::size_t num_regions = regions_.size();
  std::vector<QueryResult> results(queries.size());
  for (QueryResult& result : results) {
    result.values.assign(num_regions, 0.0);
    result.counts.assign(num_regions, 0);
    if (options_.compute_error_bounds) {
      result.error_bounds.assign(num_regions, 0.0);
    }
  }
  const raster::RasterKernels& kernels = raster::ActiveKernels();
  const std::uint32_t* count_data = count.data().data();
  std::vector<ExecutorStats> worker_stats(exec.EffectiveThreads());
  ForEachPartition(exec, num_regions, [&](std::size_t part, std::size_t begin,
                                          std::size_t end) {
    ExecutorStats& ws = worker_stats[part];
    std::vector<std::uint32_t> scratch(
        static_cast<std::size_t>(viewport_.width()));
    std::vector<Accumulator> accumulators(queries.size());
    for (std::size_t r = begin; r < end; ++r) {
      const internal::RegionSpanCache& cache = sweep_.regions[r];
      std::fill(accumulators.begin(), accumulators.end(), Accumulator());
      for (const raster::PixelSpan& span : cache.spans) {
        const std::size_t len =
            static_cast<std::size_t>(span.x_end - span.x_begin);
        ws.simd_fragments += len;
        const std::uint32_t* row =
            count.Row(span.y) + static_cast<std::size_t>(span.x_begin);
        const std::size_t hits =
            kernels.gather_nonzero_u32(row, len, scratch.data());
        for (std::size_t j = 0; j < hits; ++j) {
          const int x = span.x_begin + static_cast<int>(scratch[j]);
          const int y = span.y;
          const std::uint32_t c = row[scratch[j]];
          for (std::size_t q = 0; q < queries.size(); ++q) {
            const AggregateSpec& spec = queries[q].aggregate;
            Accumulator& acc = accumulators[q];
            if (!spec.NeedsAttribute()) {
              acc.AddBulk(c, 0.0);
              continue;
            }
            const AttrTargets& targets = *query_targets[q];
            switch (spec.kind) {
              case AggregateKind::kSum:
              case AggregateKind::kAvg:
                acc.AddBulk(c, targets.sum.at(x, y));
                break;
              case AggregateKind::kMin:
              case AggregateKind::kMax:
                acc.AddBulk(c, 0.0);
                acc.MergeMinMax(targets.min_value.at(x, y),
                                targets.max_value.at(x, y));
                break;
              default:
                acc.AddBulk(c, 0.0);
            }
          }
        }
      }
      ws.pixels_touched += cache.pixels;
      ws.tiles_visited += cache.tiles;
      // Error bounds share one cached boundary list per region.
      double count_bound = 0.0;
      std::map<std::string, double> abs_bound;
      if (options_.compute_error_bounds) {
        for (const std::uint32_t idx : cache.boundary) {
          count_bound += count_data[idx];
          for (const auto& [name, targets] : per_attr) {
            if (targets.has_abs) {
              abs_bound[name] += targets.abs_sum.data()[idx];
            }
          }
        }
        ws.boundary_pixels += cache.boundary.size();
      }
      for (std::size_t q = 0; q < queries.size(); ++q) {
        results[q].values[r] =
            accumulators[q].Finalize(queries[q].aggregate.kind);
        results[q].counts[r] = accumulators[q].count;
        if (options_.compute_error_bounds) {
          const AggregateSpec& spec = queries[q].aggregate;
          const bool sum_like = spec.kind == AggregateKind::kSum;
          results[q].error_bounds[r] =
              sum_like ? abs_bound[spec.attribute] : count_bound;
        }
      }
    }
  });
  for (const ExecutorStats& ws : worker_stats) {
    stats_.MergeCounters(ws);
  }
  stats_.sweep_seconds = sweep_timer.ElapsedSeconds();
  TracePass(trace, exec_span.id(), "sweep", stats_.sweep_seconds);
  stats_.query_seconds = timer.ElapsedSeconds();
  ObserveExecutorStats("raster", stats_);
  return results;
}

std::size_t BoundedRasterJoin::MemoryBytes() const {
  // The paper's "no preprocessing" story (Table 2) now carries two small
  // query-independent caches: the Morton splat order and the per-region
  // sweep spans. Render targets and per-worker scratch remain per-query.
  return morton_.MemoryBytes() + sweep_.MemoryBytes();
}

}  // namespace urbane::core
