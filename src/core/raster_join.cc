#include "core/raster_join.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "core/raster_targets.h"
#include "raster/rasterizer.h"
#include "util/timer.h"

namespace urbane::core {

raster::Viewport MakeCanvas(const geometry::BoundingBox& world,
                            int resolution) {
  if (world.Width() >= world.Height()) {
    const int height = std::max(
        1, static_cast<int>(std::lround(resolution * world.Height() /
                                        world.Width())));
    return raster::Viewport(world, resolution, height);
  }
  const int width = std::max(
      1,
      static_cast<int>(std::lround(resolution * world.Width() /
                                   world.Height())));
  return raster::Viewport(world, width, resolution);
}

int ResolutionForEpsilon(const geometry::BoundingBox& world,
                         double epsilon_world) {
  // Pixel diagonal of a square-pixel canvas at resolution R along the longer
  // side L: diag = sqrt(2) * L / R. Solve diag <= eps for R.
  const double longer = std::max(world.Width(), world.Height());
  const double r = std::sqrt(2.0) * longer / epsilon_world;
  return std::max(1, static_cast<int>(std::ceil(r)));
}

namespace {

geometry::BoundingBox ComputeCanvasWorld(const data::PointTable& points,
                                         const data::RegionSet& regions) {
  geometry::BoundingBox world = points.Bounds();
  world.Extend(regions.Bounds());
  if (world.IsEmpty()) {
    world = geometry::BoundingBox(0, 0, 1, 1);
  }
  // Pad so points sitting exactly on the max edge stay inside after
  // float32 -> double round trips.
  const double pad =
      1e-9 * std::max({1.0, std::fabs(world.max_x), std::fabs(world.max_y)});
  return world.Expanded(std::max(pad, 1e-7 * std::max(1.0, world.Width())));
}

}  // namespace

StatusOr<std::unique_ptr<BoundedRasterJoin>> BoundedRasterJoin::Create(
    const data::PointTable& points, const data::RegionSet& regions,
    const RasterJoinOptions& options) {
  if (options.resolution <= 0) {
    return Status::InvalidArgument("canvas resolution must be positive");
  }
  WallTimer timer;
  const geometry::BoundingBox world =
      options.world.value_or(ComputeCanvasWorld(points, regions));
  const geometry::BoundingBox point_bounds = points.Bounds();
  const geometry::BoundingBox region_bounds = regions.Bounds();
  if ((!point_bounds.IsEmpty() && !world.Contains(point_bounds)) ||
      (!region_bounds.IsEmpty() && !world.Contains(region_bounds))) {
    return Status::InvalidArgument(
        "canvas world window must cover all points and regions");
  }
  raster::Viewport viewport = MakeCanvas(world, options.resolution);
  auto executor = std::unique_ptr<BoundedRasterJoin>(
      new BoundedRasterJoin(points, regions, options, viewport));
  executor->stamp_.assign(
      static_cast<std::size_t>(viewport.width()) * viewport.height(), 0);
  executor->stats_.build_seconds = timer.ElapsedSeconds();
  return executor;
}

StatusOr<QueryResult> BoundedRasterJoin::Execute(
    const AggregationQuery& query) {
  URBANE_RETURN_IF_ERROR(query.Validate());
  if (query.points != &points_ || query.regions != &regions_) {
    return Status::FailedPrecondition(
        "BoundedRasterJoin was created for a different table/region set");
  }
  const double build_seconds = stats_.build_seconds;
  stats_.Reset();
  stats_.build_seconds = build_seconds;
  WallTimer timer;

  // --- filter + pass 1: splat the surviving points onto the canvas ---
  URBANE_ASSIGN_OR_RETURN(FilterSelection selection,
                          EvaluateFilter(query.filter, points_));
  const std::vector<float>* attr = nullptr;
  if (query.aggregate.NeedsAttribute()) {
    attr = points_.AttributeByName(query.aggregate.attribute);
  }
  // abs-sum targets only bound SUM's error; COUNT/AVG/MIN/MAX report the
  // boundary point count (see QueryResult::error_bounds docs).
  internal::AggregateTargets targets = internal::BuildAggregateTargets(
      viewport_, points_, selection.ids, attr, query.aggregate.kind,
      options_.use_float32_targets,
      /*need_abs_sum=*/options_.compute_error_bounds &&
          query.aggregate.kind == AggregateKind::kSum);
  stats_.points_scanned = selection.ids.size();

  // --- pass 2: sweep each region over the canvas ---
  QueryResult result;
  result.values.reserve(regions_.size());
  result.counts.reserve(regions_.size());
  if (options_.compute_error_bounds) {
    result.error_bounds.reserve(regions_.size());
  }

  const bool sum_bound = targets.need_abs_sum;
  for (std::size_t r = 0; r < regions_.size(); ++r) {
    Accumulator acc;
    for (const geometry::Polygon& part : regions_[r].geometry.parts()) {
      if (options_.use_triangle_pipeline) {
        raster::RasterizePolygonTriangles(
            viewport_, part, [&](int x, int y) {
              ++stats_.pixels_touched;
              internal::AccumulatePixel(targets, x, y, acc);
            });
      } else {
        raster::ScanlineFillPolygon(
            viewport_, part, [&](int y, int x_begin, int x_end) {
              stats_.pixels_touched +=
                  static_cast<std::size_t>(x_end - x_begin);
              for (int x = x_begin; x < x_end; ++x) {
                internal::AccumulatePixel(targets, x, y, acc);
              }
            });
      }
    }
    result.values.push_back(acc.Finalize(query.aggregate.kind));
    result.counts.push_back(acc.count);

    if (options_.compute_error_bounds) {
      // Error is confined to pixels the region boundary passes through;
      // bound it by the aggregate mass sitting in those pixels.
      ++current_stamp_;
      if (current_stamp_ == 0) {  // wrapped: reset the stamp buffer
        std::fill(stamp_.begin(), stamp_.end(), 0);
        current_stamp_ = 1;
      }
      double bound = 0.0;
      for (const geometry::Polygon& part : regions_[r].geometry.parts()) {
        raster::RasterizePolygonBoundary(
            viewport_, part, [&](int x, int y) {
              const std::size_t idx =
                  static_cast<std::size_t>(y) * viewport_.width() + x;
              if (stamp_[idx] == current_stamp_) {
                return;
              }
              stamp_[idx] = current_stamp_;
              ++stats_.boundary_pixels;
              bound += sum_bound
                           ? targets.abs_sum.at(x, y)
                           : static_cast<double>(targets.count.at(x, y));
            });
      }
      result.error_bounds.push_back(bound);
    }
  }
  stats_.query_seconds = timer.ElapsedSeconds();
  return result;
}

namespace {

bool FiltersEqual(const FilterSpec& a, const FilterSpec& b) {
  if (a.time_range.has_value() != b.time_range.has_value()) return false;
  if (a.time_range && (a.time_range->begin != b.time_range->begin ||
                       a.time_range->end != b.time_range->end)) {
    return false;
  }
  if (a.spatial_window.has_value() != b.spatial_window.has_value()) {
    return false;
  }
  if (a.spatial_window && !(*a.spatial_window == *b.spatial_window)) {
    return false;
  }
  if (a.attribute_ranges.size() != b.attribute_ranges.size()) return false;
  for (std::size_t i = 0; i < a.attribute_ranges.size(); ++i) {
    const AttributeRange& ra = a.attribute_ranges[i];
    const AttributeRange& rb = b.attribute_ranges[i];
    if (ra.attribute != rb.attribute || ra.lo != rb.lo || ra.hi != rb.hi) {
      return false;
    }
  }
  return true;
}

}  // namespace

StatusOr<std::vector<QueryResult>> BoundedRasterJoin::ExecuteBatch(
    const std::vector<AggregationQuery>& queries) {
  if (queries.empty()) {
    return std::vector<QueryResult>();
  }
  for (const AggregationQuery& query : queries) {
    URBANE_RETURN_IF_ERROR(query.Validate());
    if (query.points != &points_ || query.regions != &regions_) {
      return Status::FailedPrecondition(
          "BoundedRasterJoin was created for a different table/region set");
    }
    if (!FiltersEqual(query.filter, queries.front().filter)) {
      return Status::InvalidArgument(
          "batched queries must share one filter (the splat pass is shared)");
    }
  }
  const double build_seconds = stats_.build_seconds;
  stats_.Reset();
  stats_.build_seconds = build_seconds;
  WallTimer timer;

  URBANE_ASSIGN_OR_RETURN(FilterSelection selection,
                          EvaluateFilter(queries.front().filter, points_));
  stats_.points_scanned = selection.ids.size();

  // --- shared pass 1: one count splat + one sum / min-max splat per
  //     distinct attribute the batch touches ---
  raster::Buffer2D<std::uint32_t> count(viewport_.width(),
                                        viewport_.height(), 0);
  raster::SplatPointsSubset(
      viewport_, points_.xs(), points_.ys(), selection.ids,
      raster::BlendOp::kAdd, [](std::size_t) { return 1u; }, count);

  struct AttrTargets {
    raster::Buffer2D<double> sum;
    raster::Buffer2D<double> abs_sum;
    raster::Buffer2D<float> min_value;
    raster::Buffer2D<float> max_value;
    bool has_sum = false;
    bool has_abs = false;
    bool has_minmax = false;
  };
  std::map<std::string, AttrTargets> per_attr;
  for (const AggregationQuery& query : queries) {
    if (!query.aggregate.NeedsAttribute()) continue;
    const std::string& name = query.aggregate.attribute;
    AttrTargets& targets = per_attr[name];
    const std::vector<float>& column = *points_.AttributeByName(name);
    const bool needs_sum = query.aggregate.kind == AggregateKind::kSum ||
                           query.aggregate.kind == AggregateKind::kAvg;
    if (needs_sum && !targets.has_sum) {
      targets.has_sum = true;
      targets.sum =
          raster::Buffer2D<double>(viewport_.width(), viewport_.height(), 0);
      raster::SplatPointsSubset(
          viewport_, points_.xs(), points_.ys(), selection.ids,
          raster::BlendOp::kAdd,
          [&](std::size_t i) { return static_cast<double>(column[i]); },
          targets.sum);
    }
    if (needs_sum && options_.compute_error_bounds && !targets.has_abs) {
      targets.has_abs = true;
      targets.abs_sum =
          raster::Buffer2D<double>(viewport_.width(), viewport_.height(), 0);
      raster::SplatPointsSubset(
          viewport_, points_.xs(), points_.ys(), selection.ids,
          raster::BlendOp::kAdd,
          [&](std::size_t i) {
            return std::abs(static_cast<double>(column[i]));
          },
          targets.abs_sum);
    }
    const bool needs_minmax = query.aggregate.kind == AggregateKind::kMin ||
                              query.aggregate.kind == AggregateKind::kMax;
    if (needs_minmax && !targets.has_minmax) {
      targets.has_minmax = true;
      targets.min_value = raster::Buffer2D<float>(
          viewport_.width(), viewport_.height(),
          std::numeric_limits<float>::infinity());
      raster::SplatPointsSubset(
          viewport_, points_.xs(), points_.ys(), selection.ids,
          raster::BlendOp::kMin, [&](std::size_t i) { return column[i]; },
          targets.min_value);
      targets.max_value = raster::Buffer2D<float>(
          viewport_.width(), viewport_.height(),
          -std::numeric_limits<float>::infinity());
      raster::SplatPointsSubset(
          viewport_, points_.xs(), points_.ys(), selection.ids,
          raster::BlendOp::kMax, [&](std::size_t i) { return column[i]; },
          targets.max_value);
    }
  }

  // --- shared pass 2: sweep each region once, feeding every aggregate ---
  std::vector<QueryResult> results(queries.size());
  for (QueryResult& result : results) {
    result.values.reserve(regions_.size());
    result.counts.reserve(regions_.size());
    if (options_.compute_error_bounds) {
      result.error_bounds.reserve(regions_.size());
    }
  }
  std::vector<Accumulator> accumulators(queries.size());
  for (std::size_t r = 0; r < regions_.size(); ++r) {
    std::fill(accumulators.begin(), accumulators.end(), Accumulator());
    for (const geometry::Polygon& part : regions_[r].geometry.parts()) {
      raster::ScanlineFillPolygon(
          viewport_, part, [&](int y, int x_begin, int x_end) {
            stats_.pixels_touched +=
                static_cast<std::size_t>(x_end - x_begin);
            for (int x = x_begin; x < x_end; ++x) {
              const std::uint32_t c = count.at(x, y);
              if (c == 0) continue;
              for (std::size_t q = 0; q < queries.size(); ++q) {
                const AggregateSpec& spec = queries[q].aggregate;
                Accumulator& acc = accumulators[q];
                if (!spec.NeedsAttribute()) {
                  acc.AddBulk(c, 0.0);
                  continue;
                }
                const AttrTargets& targets = per_attr[spec.attribute];
                switch (spec.kind) {
                  case AggregateKind::kSum:
                  case AggregateKind::kAvg:
                    acc.AddBulk(c, targets.sum.at(x, y));
                    break;
                  case AggregateKind::kMin:
                  case AggregateKind::kMax:
                    acc.AddBulk(c, 0.0);
                    acc.MergeMinMax(targets.min_value.at(x, y),
                                    targets.max_value.at(x, y));
                    break;
                  default:
                    acc.AddBulk(c, 0.0);
                }
              }
            }
          });
    }
    // Error bounds share one boundary rasterization per region.
    std::vector<double> count_bound(1, 0.0);
    std::map<std::string, double> abs_bound;
    if (options_.compute_error_bounds) {
      ++current_stamp_;
      if (current_stamp_ == 0) {
        std::fill(stamp_.begin(), stamp_.end(), 0);
        current_stamp_ = 1;
      }
      double boundary_count = 0.0;
      for (const geometry::Polygon& part : regions_[r].geometry.parts()) {
        raster::RasterizePolygonBoundary(
            viewport_, part, [&](int x, int y) {
              const std::size_t idx =
                  static_cast<std::size_t>(y) * viewport_.width() + x;
              if (stamp_[idx] == current_stamp_) return;
              stamp_[idx] = current_stamp_;
              ++stats_.boundary_pixels;
              boundary_count += count.at(x, y);
              for (auto& [name, targets] : per_attr) {
                if (targets.has_abs) {
                  abs_bound[name] += targets.abs_sum.at(x, y);
                }
              }
            });
      }
      count_bound[0] = boundary_count;
    }
    for (std::size_t q = 0; q < queries.size(); ++q) {
      results[q].values.push_back(
          accumulators[q].Finalize(queries[q].aggregate.kind));
      results[q].counts.push_back(accumulators[q].count);
      if (options_.compute_error_bounds) {
        const AggregateSpec& spec = queries[q].aggregate;
        const bool sum_like = spec.kind == AggregateKind::kSum;
        results[q].error_bounds.push_back(
            sum_like ? abs_bound[spec.attribute] : count_bound[0]);
      }
    }
  }
  stats_.query_seconds = timer.ElapsedSeconds();
  return results;
}

std::size_t BoundedRasterJoin::MemoryBytes() const {
  return stamp_.capacity() * sizeof(std::uint32_t);
}

}  // namespace urbane::core
