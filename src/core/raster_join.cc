#include "core/raster_join.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>

#include "core/observe.h"
#include "core/raster_targets.h"
#include "raster/rasterizer.h"
#include "util/timer.h"

namespace urbane::core {

raster::Viewport MakeCanvas(const geometry::BoundingBox& world,
                            int resolution) {
  if (world.Width() >= world.Height()) {
    const int height = std::max(
        1, static_cast<int>(std::lround(resolution * world.Height() /
                                        world.Width())));
    return raster::Viewport(world, resolution, height);
  }
  const int width = std::max(
      1,
      static_cast<int>(std::lround(resolution * world.Width() /
                                   world.Height())));
  return raster::Viewport(world, width, resolution);
}

int ResolutionForEpsilon(const geometry::BoundingBox& world,
                         double epsilon_world) {
  // Pixel diagonal of a square-pixel canvas at resolution R along the longer
  // side L: diag = sqrt(2) * L / R. Solve diag <= eps for R.
  const double longer = std::max(world.Width(), world.Height());
  const double r = std::sqrt(2.0) * longer / epsilon_world;
  return std::max(1, static_cast<int>(std::ceil(r)));
}

namespace {

geometry::BoundingBox ComputeCanvasWorld(const data::PointTable& points,
                                         const data::RegionSet& regions) {
  geometry::BoundingBox world = points.Bounds();
  world.Extend(regions.Bounds());
  if (world.IsEmpty()) {
    world = geometry::BoundingBox(0, 0, 1, 1);
  }
  // Pad so points sitting exactly on the max edge stay inside after
  // float32 -> double round trips.
  const double pad =
      1e-9 * std::max({1.0, std::fabs(world.max_x), std::fabs(world.max_y)});
  return world.Expanded(std::max(pad, 1e-7 * std::max(1.0, world.Width())));
}

}  // namespace

StatusOr<std::unique_ptr<BoundedRasterJoin>> BoundedRasterJoin::Create(
    const data::PointTable& points, const data::RegionSet& regions,
    const RasterJoinOptions& options) {
  if (options.resolution <= 0) {
    return Status::InvalidArgument("canvas resolution must be positive");
  }
  WallTimer timer;
  const geometry::BoundingBox world =
      options.world.value_or(ComputeCanvasWorld(points, regions));
  const geometry::BoundingBox point_bounds = points.Bounds();
  const geometry::BoundingBox region_bounds = regions.Bounds();
  if ((!point_bounds.IsEmpty() && !world.Contains(point_bounds)) ||
      (!region_bounds.IsEmpty() && !world.Contains(region_bounds))) {
    return Status::InvalidArgument(
        "canvas world window must cover all points and regions");
  }
  raster::Viewport viewport = MakeCanvas(world, options.resolution);
  auto executor = std::unique_ptr<BoundedRasterJoin>(
      new BoundedRasterJoin(points, regions, options, viewport));
  executor->stats_.build_seconds = timer.ElapsedSeconds();
  return executor;
}

StatusOr<QueryResult> BoundedRasterJoin::Execute(
    const AggregationQuery& query) {
  URBANE_RETURN_IF_ERROR(query.Validate());
  if (query.points != &points_ || query.regions != &regions_) {
    return Status::FailedPrecondition(
        "BoundedRasterJoin was created for a different table/region set");
  }
  const double build_seconds = stats_.build_seconds;
  stats_.Reset();
  stats_.build_seconds = build_seconds;
  const ExecutionContext& exec = options_.exec;
  stats_.threads_used = exec.EffectiveThreads();
  obs::TraceSpan exec_span(query.trace, "raster");
  WallTimer timer;

  // --- filter + pass 1: splat the surviving points onto the canvas ---
  WallTimer filter_timer;
  URBANE_ASSIGN_OR_RETURN(FilterSelection selection,
                          EvaluateFilter(query.filter, points_, exec));
  stats_.filter_seconds = filter_timer.ElapsedSeconds();
  TracePass(query.trace, exec_span.id(), "filter", stats_.filter_seconds);
  URBANE_RETURN_IF_ERROR(query.CheckControl());
  const std::vector<float>* attr = nullptr;
  if (query.aggregate.NeedsAttribute()) {
    attr = points_.AttributeByName(query.aggregate.attribute);
  }
  // abs-sum targets only bound SUM's error; COUNT/AVG/MIN/MAX report the
  // boundary point count (see QueryResult::error_bounds docs).
  WallTimer splat_timer;
  internal::AggregateTargets targets = internal::BuildAggregateTargets(
      viewport_, points_, selection.ids, attr, query.aggregate.kind,
      options_.use_float32_targets,
      /*need_abs_sum=*/options_.compute_error_bounds &&
          query.aggregate.kind == AggregateKind::kSum,
      exec.Splat());
  stats_.splat_seconds = splat_timer.ElapsedSeconds();
  TracePass(query.trace, exec_span.id(), "splat", stats_.splat_seconds);
  URBANE_RETURN_IF_ERROR(query.CheckControl());
  stats_.points_scanned = selection.ids.size();

  // --- pass 2: sweep the regions over the canvas, one contiguous region
  //     range per worker; every region's answer is computed exactly as in
  //     the serial sweep, so parallelism cannot change the result ---
  WallTimer sweep_timer;
  const std::size_t num_regions = regions_.size();
  QueryResult result;
  result.values.assign(num_regions, 0.0);
  result.counts.assign(num_regions, 0);
  if (options_.compute_error_bounds) {
    result.error_bounds.assign(num_regions, 0.0);
  }

  const bool sum_bound = targets.need_abs_sum;
  const std::size_t num_pixels =
      static_cast<std::size_t>(viewport_.width()) * viewport_.height();
  std::vector<ExecutorStats> worker_stats(exec.EffectiveThreads());
  ForEachPartition(exec, num_regions, [&](std::size_t part, std::size_t begin,
                                          std::size_t end) {
    ExecutorStats& ws = worker_stats[part];
    internal::StampBuffer stamp(options_.compute_error_bounds ? num_pixels
                                                              : 0);
    for (std::size_t r = begin; r < end; ++r) {
      Accumulator acc;
      for (const geometry::Polygon& region_part : regions_[r].geometry.parts()) {
        if (options_.use_triangle_pipeline) {
          raster::RasterizePolygonTriangles(
              viewport_, region_part, [&](int x, int y) {
                ++ws.pixels_touched;
                internal::AccumulatePixel(targets, x, y, acc);
              });
        } else {
          raster::ScanlineFillPolygon(
              viewport_, region_part, [&](int y, int x_begin, int x_end) {
                ws.pixels_touched +=
                    static_cast<std::size_t>(x_end - x_begin);
                for (int x = x_begin; x < x_end; ++x) {
                  internal::AccumulatePixel(targets, x, y, acc);
                }
              });
        }
      }
      result.values[r] = acc.Finalize(query.aggregate.kind);
      result.counts[r] = acc.count;

      if (options_.compute_error_bounds) {
        // Error is confined to pixels the region boundary passes through;
        // bound it by the aggregate mass sitting in those pixels.
        stamp.NextScope();
        double bound = 0.0;
        for (const geometry::Polygon& region_part :
             regions_[r].geometry.parts()) {
          raster::RasterizePolygonBoundary(
              viewport_, region_part, [&](int x, int y) {
                const std::size_t idx =
                    static_cast<std::size_t>(y) * viewport_.width() + x;
                if (!stamp.MarkOnce(idx)) {
                  return;
                }
                ++ws.boundary_pixels;
                bound += sum_bound
                             ? targets.abs_sum.at(x, y)
                             : static_cast<double>(targets.count.at(x, y));
              });
        }
        result.error_bounds[r] = bound;
      }
    }
  });
  for (const ExecutorStats& ws : worker_stats) {
    stats_.MergeCounters(ws);
  }
  stats_.sweep_seconds = sweep_timer.ElapsedSeconds();
  TracePass(query.trace, exec_span.id(), "sweep", stats_.sweep_seconds);
  stats_.query_seconds = timer.ElapsedSeconds();
  ObserveExecutorStats("raster", stats_);
  return result;
}

namespace {

bool FiltersEqual(const FilterSpec& a, const FilterSpec& b) {
  if (a.time_range.has_value() != b.time_range.has_value()) return false;
  if (a.time_range && (a.time_range->begin != b.time_range->begin ||
                       a.time_range->end != b.time_range->end)) {
    return false;
  }
  if (a.spatial_window.has_value() != b.spatial_window.has_value()) {
    return false;
  }
  if (a.spatial_window && !(*a.spatial_window == *b.spatial_window)) {
    return false;
  }
  if (a.attribute_ranges.size() != b.attribute_ranges.size()) return false;
  for (std::size_t i = 0; i < a.attribute_ranges.size(); ++i) {
    const AttributeRange& ra = a.attribute_ranges[i];
    const AttributeRange& rb = b.attribute_ranges[i];
    if (ra.attribute != rb.attribute || ra.lo != rb.lo || ra.hi != rb.hi) {
      return false;
    }
  }
  return true;
}

}  // namespace

StatusOr<std::vector<QueryResult>> BoundedRasterJoin::ExecuteBatch(
    const std::vector<AggregationQuery>& queries) {
  if (queries.empty()) {
    return std::vector<QueryResult>();
  }
  for (const AggregationQuery& query : queries) {
    URBANE_RETURN_IF_ERROR(query.Validate());
    if (query.points != &points_ || query.regions != &regions_) {
      return Status::FailedPrecondition(
          "BoundedRasterJoin was created for a different table/region set");
    }
    if (!FiltersEqual(query.filter, queries.front().filter)) {
      return Status::InvalidArgument(
          "batched queries must share one filter (the splat pass is shared)");
    }
  }
  const double build_seconds = stats_.build_seconds;
  stats_.Reset();
  stats_.build_seconds = build_seconds;
  const ExecutionContext& exec = options_.exec;
  const raster::SplatParallelism splat_par = exec.Splat();
  stats_.threads_used = exec.EffectiveThreads();
  // Batch trace convention: the whole shared-splat execution reports into
  // the front query's trace (the batch is one execution, not N).
  obs::QueryTrace* trace = queries.front().trace;
  obs::TraceSpan exec_span(trace, "raster");
  exec_span.Tag("batch_size", std::to_string(queries.size()));
  WallTimer timer;

  WallTimer filter_timer;
  URBANE_ASSIGN_OR_RETURN(FilterSelection selection,
                          EvaluateFilter(queries.front().filter, points_,
                                         exec));
  stats_.filter_seconds = filter_timer.ElapsedSeconds();
  TracePass(trace, exec_span.id(), "filter", stats_.filter_seconds);
  URBANE_RETURN_IF_ERROR(queries.front().CheckControl());
  stats_.points_scanned = selection.ids.size();

  // --- shared pass 1: one count splat + one sum / min-max splat per
  //     distinct attribute the batch touches ---
  WallTimer splat_timer;
  raster::Buffer2D<std::uint32_t> count(viewport_.width(),
                                        viewport_.height(), 0);
  raster::ParallelSplatPointsSubset(
      splat_par, viewport_, points_.xs(), points_.ys(), selection.ids,
      raster::BlendOp::kAdd, [](std::size_t) { return 1u; }, count);

  struct AttrTargets {
    raster::Buffer2D<double> sum;
    raster::Buffer2D<double> abs_sum;
    raster::Buffer2D<float> min_value;
    raster::Buffer2D<float> max_value;
    bool has_sum = false;
    bool has_abs = false;
    bool has_minmax = false;
  };
  std::map<std::string, AttrTargets> per_attr;
  for (const AggregationQuery& query : queries) {
    if (!query.aggregate.NeedsAttribute()) continue;
    const std::string& name = query.aggregate.attribute;
    AttrTargets& targets = per_attr[name];
    const std::vector<float>& column = *points_.AttributeByName(name);
    const bool needs_sum = query.aggregate.kind == AggregateKind::kSum ||
                           query.aggregate.kind == AggregateKind::kAvg;
    if (needs_sum && !targets.has_sum) {
      targets.has_sum = true;
      targets.sum =
          raster::Buffer2D<double>(viewport_.width(), viewport_.height(), 0);
      raster::ParallelSplatPointsSubset(
          splat_par, viewport_, points_.xs(), points_.ys(), selection.ids,
          raster::BlendOp::kAdd,
          [&](std::size_t i) { return static_cast<double>(column[i]); },
          targets.sum);
    }
    if (needs_sum && options_.compute_error_bounds && !targets.has_abs) {
      targets.has_abs = true;
      targets.abs_sum =
          raster::Buffer2D<double>(viewport_.width(), viewport_.height(), 0);
      raster::ParallelSplatPointsSubset(
          splat_par, viewport_, points_.xs(), points_.ys(), selection.ids,
          raster::BlendOp::kAdd,
          [&](std::size_t i) {
            return std::abs(static_cast<double>(column[i]));
          },
          targets.abs_sum);
    }
    const bool needs_minmax = query.aggregate.kind == AggregateKind::kMin ||
                              query.aggregate.kind == AggregateKind::kMax;
    if (needs_minmax && !targets.has_minmax) {
      targets.has_minmax = true;
      targets.min_value = raster::Buffer2D<float>(
          viewport_.width(), viewport_.height(),
          std::numeric_limits<float>::infinity());
      raster::ParallelSplatPointsSubset(
          splat_par, viewport_, points_.xs(), points_.ys(), selection.ids,
          raster::BlendOp::kMin, [&](std::size_t i) { return column[i]; },
          targets.min_value);
      targets.max_value = raster::Buffer2D<float>(
          viewport_.width(), viewport_.height(),
          -std::numeric_limits<float>::infinity());
      raster::ParallelSplatPointsSubset(
          splat_par, viewport_, points_.xs(), points_.ys(), selection.ids,
          raster::BlendOp::kMax, [&](std::size_t i) { return column[i]; },
          targets.max_value);
    }
  }
  stats_.splat_seconds = splat_timer.ElapsedSeconds();
  TracePass(trace, exec_span.id(), "splat", stats_.splat_seconds);
  URBANE_RETURN_IF_ERROR(queries.front().CheckControl());

  // Resolve each query's targets once; the sweep reads the map no more.
  std::vector<const AttrTargets*> query_targets(queries.size(), nullptr);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    if (queries[q].aggregate.NeedsAttribute()) {
      query_targets[q] = &per_attr.at(queries[q].aggregate.attribute);
    }
  }

  // --- shared pass 2: sweep each region once, feeding every aggregate;
  //     regions are partitioned across the pool ---
  WallTimer sweep_timer;
  const std::size_t num_regions = regions_.size();
  std::vector<QueryResult> results(queries.size());
  for (QueryResult& result : results) {
    result.values.assign(num_regions, 0.0);
    result.counts.assign(num_regions, 0);
    if (options_.compute_error_bounds) {
      result.error_bounds.assign(num_regions, 0.0);
    }
  }
  const std::size_t num_pixels =
      static_cast<std::size_t>(viewport_.width()) * viewport_.height();
  std::vector<ExecutorStats> worker_stats(exec.EffectiveThreads());
  ForEachPartition(exec, num_regions, [&](std::size_t part, std::size_t begin,
                                          std::size_t end) {
    ExecutorStats& ws = worker_stats[part];
    internal::StampBuffer stamp(options_.compute_error_bounds ? num_pixels
                                                              : 0);
    std::vector<Accumulator> accumulators(queries.size());
    for (std::size_t r = begin; r < end; ++r) {
      std::fill(accumulators.begin(), accumulators.end(), Accumulator());
      for (const geometry::Polygon& region_part :
           regions_[r].geometry.parts()) {
        raster::ScanlineFillPolygon(
            viewport_, region_part, [&](int y, int x_begin, int x_end) {
              ws.pixels_touched += static_cast<std::size_t>(x_end - x_begin);
              for (int x = x_begin; x < x_end; ++x) {
                const std::uint32_t c = count.at(x, y);
                if (c == 0) continue;
                for (std::size_t q = 0; q < queries.size(); ++q) {
                  const AggregateSpec& spec = queries[q].aggregate;
                  Accumulator& acc = accumulators[q];
                  if (!spec.NeedsAttribute()) {
                    acc.AddBulk(c, 0.0);
                    continue;
                  }
                  const AttrTargets& targets = *query_targets[q];
                  switch (spec.kind) {
                    case AggregateKind::kSum:
                    case AggregateKind::kAvg:
                      acc.AddBulk(c, targets.sum.at(x, y));
                      break;
                    case AggregateKind::kMin:
                    case AggregateKind::kMax:
                      acc.AddBulk(c, 0.0);
                      acc.MergeMinMax(targets.min_value.at(x, y),
                                      targets.max_value.at(x, y));
                      break;
                    default:
                      acc.AddBulk(c, 0.0);
                  }
                }
              }
            });
      }
      // Error bounds share one boundary rasterization per region.
      double count_bound = 0.0;
      std::map<std::string, double> abs_bound;
      if (options_.compute_error_bounds) {
        stamp.NextScope();
        for (const geometry::Polygon& region_part :
             regions_[r].geometry.parts()) {
          raster::RasterizePolygonBoundary(
              viewport_, region_part, [&](int x, int y) {
                const std::size_t idx =
                    static_cast<std::size_t>(y) * viewport_.width() + x;
                if (!stamp.MarkOnce(idx)) return;
                ++ws.boundary_pixels;
                count_bound += count.at(x, y);
                for (const auto& [name, targets] : per_attr) {
                  if (targets.has_abs) {
                    abs_bound[name] += targets.abs_sum.at(x, y);
                  }
                }
              });
        }
      }
      for (std::size_t q = 0; q < queries.size(); ++q) {
        results[q].values[r] =
            accumulators[q].Finalize(queries[q].aggregate.kind);
        results[q].counts[r] = accumulators[q].count;
        if (options_.compute_error_bounds) {
          const AggregateSpec& spec = queries[q].aggregate;
          const bool sum_like = spec.kind == AggregateKind::kSum;
          results[q].error_bounds[r] =
              sum_like ? abs_bound[spec.attribute] : count_bound;
        }
      }
    }
  });
  for (const ExecutorStats& ws : worker_stats) {
    stats_.MergeCounters(ws);
  }
  stats_.sweep_seconds = sweep_timer.ElapsedSeconds();
  TracePass(trace, exec_span.id(), "sweep", stats_.sweep_seconds);
  stats_.query_seconds = timer.ElapsedSeconds();
  ObserveExecutorStats("raster", stats_);
  return results;
}

std::size_t BoundedRasterJoin::MemoryBytes() const {
  // Raster Join keeps no persistent point structures — render targets and
  // per-worker stamp scratch are per-query — which is exactly the paper's
  // "no preprocessing" story (Table 2).
  return 0;
}

}  // namespace urbane::core
