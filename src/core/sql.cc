#include "core/sql.h"

#include <cctype>
#include <cstddef>
#include <cmath>
#include <limits>
#include <vector>

#include "util/string_util.h"

namespace urbane::core {

namespace {

// Saturating double -> int64 conversion: a plain static_cast of an
// out-of-range value (e.g. `t IN [1e24, ...)`) is undefined behavior.
std::int64_t ClampToInt64(double value) {
  // The largest int64 exactly representable as a double is 2^63 - 1024;
  // comparing against 2^63 as a double is safe on both ends.
  constexpr double kMax = 9223372036854775808.0;  // 2^63
  if (std::isnan(value)) {
    return 0;
  }
  if (value >= kMax) {
    return std::numeric_limits<std::int64_t>::max();
  }
  if (value <= -kMax) {
    return std::numeric_limits<std::int64_t>::min();
  }
  return static_cast<std::int64_t>(value);
}

enum class TokenKind {
  kIdent,    // fare_amount, P.loc, COUNT, taxi
  kNumber,   // 12, -3.5, 1e9
  kSymbol,   // ( ) , * [ ] < > = <= >=
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  // Byte offset of the token's first character in the original SQL string
  // (for kEnd, the input length). Surfaced in parse-error messages so a
  // client can point at the offending token.
  std::size_t offset = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) { Advance(); }

  const Token& current() const { return current_; }

  void Advance() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= input_.size()) {
      current_ = {TokenKind::kEnd, "", pos_};
      return;
    }
    const char c = input_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '_' || input_[pos_] == '.')) {
        ++pos_;
      }
      current_ = {TokenKind::kIdent, input_.substr(start, pos_ - start),
                  start};
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        ((c == '-' || c == '+') && pos_ + 1 < input_.size() &&
         std::isdigit(static_cast<unsigned char>(input_[pos_ + 1])))) {
      std::size_t start = pos_;
      ++pos_;
      while (pos_ < input_.size() &&
             (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '.' || input_[pos_] == 'e' ||
              input_[pos_] == 'E' ||
              ((input_[pos_] == '-' || input_[pos_] == '+') &&
               (input_[pos_ - 1] == 'e' || input_[pos_ - 1] == 'E')))) {
        ++pos_;
      }
      current_ = {TokenKind::kNumber, input_.substr(start, pos_ - start),
                  start};
      return;
    }
    // Two-char comparison operators.
    if ((c == '<' || c == '>') && pos_ + 1 < input_.size() &&
        input_[pos_ + 1] == '=') {
      current_ = {TokenKind::kSymbol, input_.substr(pos_, 2), pos_};
      pos_ += 2;
      return;
    }
    current_ = {TokenKind::kSymbol, std::string(1, c), pos_};
    ++pos_;
  }

 private:
  const std::string& input_;
  std::size_t pos_ = 0;
  Token current_;
};

// Strips a leading "p."/"r." qualifier and lowercases nothing else
// (attribute names are case-sensitive; keywords are compared lowercased).
std::string StripQualifier(const std::string& ident) {
  if (ident.size() > 2) {
    const char q = static_cast<char>(
        std::tolower(static_cast<unsigned char>(ident[0])));
    if ((q == 'p' || q == 'r') && ident[1] == '.') {
      return ident.substr(2);
    }
  }
  return ident;
}

class Parser {
 public:
  explicit Parser(const std::string& sql) : lexer_(sql) {}

  StatusOr<ParsedQuery> Parse() {
    URBANE_RETURN_IF_ERROR(ExpectKeyword("select"));
    URBANE_RETURN_IF_ERROR(ParseAggregate());
    URBANE_RETURN_IF_ERROR(ExpectKeyword("from"));
    URBANE_ASSIGN_OR_RETURN(query_.points_dataset, ExpectIdent("points set"));
    URBANE_RETURN_IF_ERROR(ExpectSymbol(","));
    URBANE_ASSIGN_OR_RETURN(query_.regions_layer, ExpectIdent("region set"));
    if (IsKeyword("where")) {
      lexer_.Advance();
      URBANE_RETURN_IF_ERROR(ParseConditions());
    }
    if (IsKeyword("group")) {
      lexer_.Advance();
      URBANE_RETURN_IF_ERROR(ExpectKeyword("by"));
      const std::size_t key_offset = lexer_.current().offset;
      URBANE_ASSIGN_OR_RETURN(std::string key, ExpectIdent("group key"));
      const std::string lowered = ToLowerAscii(key);
      if (lowered != "r.id" && lowered != "id" && lowered != "region") {
        return Error("GROUP BY must be R.id (got '" + key + "')", key_offset);
      }
    }
    if (lexer_.current().kind != TokenKind::kEnd) {
      return Error("unexpected trailing token '" + lexer_.current().text +
                   "'");
    }
    return query_;
  }

 private:
  // Points at the current (offending) token; the overload lets semantic
  // checks that already consumed the token point back at it.
  Status Error(const std::string& message) const {
    return Error(message, lexer_.current().offset);
  }

  Status Error(const std::string& message, std::size_t offset) const {
    return Status::InvalidArgument("SQL parse error at byte " +
                                   std::to_string(offset) + ": " + message);
  }

  bool IsKeyword(const char* keyword) const {
    return lexer_.current().kind == TokenKind::kIdent &&
           ToLowerAscii(lexer_.current().text) == keyword;
  }

  Status ExpectKeyword(const char* keyword) {
    if (!IsKeyword(keyword)) {
      return Error(std::string("expected '") + keyword + "', got '" +
                   lexer_.current().text + "'");
    }
    lexer_.Advance();
    return Status::OK();
  }

  Status ExpectSymbol(const char* symbol) {
    if (lexer_.current().kind != TokenKind::kSymbol ||
        lexer_.current().text != symbol) {
      return Error(std::string("expected '") + symbol + "', got '" +
                   lexer_.current().text + "'");
    }
    lexer_.Advance();
    return Status::OK();
  }

  StatusOr<std::string> ExpectIdent(const char* what) {
    if (lexer_.current().kind != TokenKind::kIdent) {
      return Error(std::string("expected ") + what + ", got '" +
                   lexer_.current().text + "'");
    }
    std::string text = lexer_.current().text;
    lexer_.Advance();
    return text;
  }

  StatusOr<double> ExpectNumber() {
    if (lexer_.current().kind != TokenKind::kNumber) {
      return Error("expected a number, got '" + lexer_.current().text + "'");
    }
    // Re-wrap ParseDouble failures (overflow, "1e", "1.2.3") so every
    // parser error carries the same prefix.
    const auto value = ParseDouble(lexer_.current().text);
    if (!value.ok()) {
      return Error("invalid number '" + lexer_.current().text + "'");
    }
    lexer_.Advance();
    return *value;
  }

  Status ParseAggregate() {
    const std::size_t name_offset = lexer_.current().offset;
    URBANE_ASSIGN_OR_RETURN(std::string name, ExpectIdent("aggregate"));
    const std::string lowered = ToLowerAscii(name);
    AggregateKind kind;
    if (lowered == "count") {
      kind = AggregateKind::kCount;
    } else if (lowered == "sum") {
      kind = AggregateKind::kSum;
    } else if (lowered == "avg") {
      kind = AggregateKind::kAvg;
    } else if (lowered == "min") {
      kind = AggregateKind::kMin;
    } else if (lowered == "max") {
      kind = AggregateKind::kMax;
    } else {
      return Error("unknown aggregate '" + name + "'", name_offset);
    }
    URBANE_RETURN_IF_ERROR(ExpectSymbol("("));
    if (kind == AggregateKind::kCount) {
      // COUNT(*) or COUNT(attr) — the attribute is irrelevant for COUNT.
      if (lexer_.current().kind == TokenKind::kSymbol &&
          lexer_.current().text == "*") {
        lexer_.Advance();
      } else {
        URBANE_RETURN_IF_ERROR(ExpectIdent("attribute").status());
      }
      query_.aggregate = AggregateSpec::Count();
    } else {
      URBANE_ASSIGN_OR_RETURN(std::string attr, ExpectIdent("attribute"));
      query_.aggregate = AggregateSpec{kind, StripQualifier(attr)};
    }
    return ExpectSymbol(")");
  }

  Status ParseConditions() {
    for (;;) {
      URBANE_RETURN_IF_ERROR(ParseCondition());
      if (IsKeyword("and")) {
        lexer_.Advance();
        continue;
      }
      return Status::OK();
    }
  }

  // One condition: the spatial predicate, an IN-range, a BETWEEN, or a
  // single comparison.
  Status ParseCondition() {
    URBANE_ASSIGN_OR_RETURN(std::string raw, ExpectIdent("condition"));
    const std::string ident = StripQualifier(raw);
    const std::string lowered = ToLowerAscii(ident);

    if (lowered == "loc") {
      URBANE_RETURN_IF_ERROR(ExpectKeyword("inside"));
      URBANE_ASSIGN_OR_RETURN(std::string geom, ExpectIdent("geometry"));
      const std::string target = ToLowerAscii(StripQualifier(geom));
      if (target == "geometry") {
        return Status::OK();  // the implicit spatial join predicate
      }
      if (target == "box") {
        // Viewport restriction: loc INSIDE BOX [x0, y0, x1, y1].
        URBANE_RETURN_IF_ERROR(ExpectSymbol("["));
        URBANE_ASSIGN_OR_RETURN(double x0, ExpectNumber());
        URBANE_RETURN_IF_ERROR(ExpectSymbol(","));
        URBANE_ASSIGN_OR_RETURN(double y0, ExpectNumber());
        URBANE_RETURN_IF_ERROR(ExpectSymbol(","));
        URBANE_ASSIGN_OR_RETURN(double x1, ExpectNumber());
        URBANE_RETURN_IF_ERROR(ExpectSymbol(","));
        URBANE_ASSIGN_OR_RETURN(double y1, ExpectNumber());
        URBANE_RETURN_IF_ERROR(ExpectSymbol("]"));
        query_.filter.WithWindow(geometry::BoundingBox(x0, y0, x1, y1));
        return Status::OK();
      }
      return Error("expected R.geometry or BOX [...] after INSIDE");
    }

    const bool is_time = lowered == "t";
    if (IsKeyword("in")) {
      lexer_.Advance();
      URBANE_RETURN_IF_ERROR(ExpectSymbol("["));
      URBANE_ASSIGN_OR_RETURN(double lo, ExpectNumber());
      URBANE_RETURN_IF_ERROR(ExpectSymbol(","));
      URBANE_ASSIGN_OR_RETURN(double hi, ExpectNumber());
      bool half_open;
      if (lexer_.current().kind == TokenKind::kSymbol &&
          (lexer_.current().text == ")" || lexer_.current().text == "]")) {
        half_open = lexer_.current().text == ")";
        lexer_.Advance();
      } else {
        return Error("range must close with ')' or ']'");
      }
      if (is_time) {
        const std::int64_t begin = ClampToInt64(lo);
        std::int64_t end = ClampToInt64(hi);
        if (!half_open && end < std::numeric_limits<std::int64_t>::max()) {
          ++end;  // closed `]` means `< hi+1`
        }
        query_.filter.WithTime(begin, end);
      } else {
        if (half_open) {
          return Error("attribute ranges are closed; use [lo, hi]");
        }
        query_.filter.WithRange(ident, lo, hi);
      }
      return Status::OK();
    }
    if (IsKeyword("between")) {
      lexer_.Advance();
      URBANE_ASSIGN_OR_RETURN(double lo, ExpectNumber());
      URBANE_RETURN_IF_ERROR(ExpectKeyword("and"));
      URBANE_ASSIGN_OR_RETURN(double hi, ExpectNumber());
      if (is_time) {
        std::int64_t end = ClampToInt64(hi);
        if (end < std::numeric_limits<std::int64_t>::max()) {
          ++end;  // BETWEEN is closed
        }
        query_.filter.WithTime(ClampToInt64(lo), end);
      } else {
        query_.filter.WithRange(ident, lo, hi);
      }
      return Status::OK();
    }
    if (lexer_.current().kind == TokenKind::kSymbol) {
      const std::string op = lexer_.current().text;
      if (op == "<=" || op == ">=" || op == "<" || op == ">" || op == "=") {
        lexer_.Advance();
        URBANE_ASSIGN_OR_RETURN(double value, ExpectNumber());
        if (is_time) {
          return Error("use t IN [t0, t1) for time constraints");
        }
        constexpr double kInf = std::numeric_limits<double>::infinity();
        if (op == "<=" || op == "<") {
          query_.filter.WithRange(ident, -kInf, value);
        } else if (op == ">=" || op == ">") {
          query_.filter.WithRange(ident, value, kInf);
        } else {  // equality as a degenerate closed range
          query_.filter.WithRange(ident, value, value);
        }
        return Status::OK();
      }
    }
    return Error("malformed condition after '" + raw + "'");
  }

  Lexer lexer_;
  ParsedQuery query_;
};

}  // namespace

StatusOr<ParsedQuery> ParseQuerySql(const std::string& sql) {
  Parser parser(sql);
  return parser.Parse();
}

}  // namespace urbane::core
