#ifndef URBANE_CORE_PLANNER_H_
#define URBANE_CORE_PLANNER_H_

#include <string>

#include "core/query.h"
#include "geometry/bounding_box.h"

namespace urbane::core {

/// Execution strategies the planner can choose between.
enum class ExecutionMethod {
  kScan,
  kIndexJoin,
  kBoundedRaster,
  kAccurateRaster,
};

const char* ExecutionMethodToString(ExecutionMethod method);

/// Accuracy contract of a query.
struct AccuracyRequirement {
  /// Exact answers required (forces an exact executor).
  bool exact = true;
  /// When !exact: acceptable geometric slack in world meters — points
  /// within epsilon of a region boundary may be misattributed. 0 means
  /// "use the default canvas".
  double epsilon_world = 0.0;
};

/// Inputs the cost model needs (all cheap to obtain).
struct WorkloadProfile {
  std::size_t num_points = 0;
  std::size_t num_regions = 0;
  std::size_t total_region_vertices = 0;
  geometry::BoundingBox world;
  /// Estimated filter selectivity in [0, 1] (1 = no filter).
  double selectivity = 1.0;
  /// Whether a reusable point index / pixel index already exists.
  bool has_point_index = false;
  bool has_pixel_index = false;
  /// Shard fan-out the engine is configured for (SpatialAggregation::
  /// set_num_shards); 1 = unsharded. Sharding never changes which method
  /// is cheapest — every method shards the same way (by row range) — so
  /// the planner passes it through to the plan rather than weighing it.
  std::size_t available_shards = 1;
};

/// The chosen plan plus the reasoning (EXPLAIN-style).
struct QueryPlan {
  ExecutionMethod method = ExecutionMethod::kScan;
  /// Canvas resolution for the raster methods (0 for non-raster).
  int resolution = 0;
  /// Predicted relative costs (arbitrary units) per method, for reports.
  double cost_scan = 0.0;
  double cost_index = 0.0;
  double cost_raster = 0.0;
  /// Scatter-gather fan-out the chosen method will run with (1 = serial
  /// engine). Mirrors WorkloadProfile::available_shards.
  std::size_t shards = 1;
  std::string explanation;
};

/// Chooses an execution strategy with a simple analytic cost model:
///   scan    ~ selectivity * P * log2(R)   (R-tree probes + PIP)
///   index   ~ region cells + boundary-cell points (needs a point index)
///   raster  ~ selectivity * P + covered pixels (+ boundary work if exact)
/// The interesting behaviour the model reproduces: raster join wins once
/// P is large relative to the canvas, and the bounded variant wins whenever
/// an epsilon is tolerated (as in interactive exploration).
QueryPlan PlanQuery(const WorkloadProfile& profile,
                    const AccuracyRequirement& accuracy,
                    int default_resolution = 1024);

}  // namespace urbane::core

#endif  // URBANE_CORE_PLANNER_H_
