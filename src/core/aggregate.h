#ifndef URBANE_CORE_AGGREGATE_H_
#define URBANE_CORE_AGGREGATE_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/status.h"

namespace urbane::core {

/// Aggregate functions supported by the spatial aggregation query
/// (the AGG(a_i) of the paper's SELECT).
enum class AggregateKind {
  kCount,  // COUNT(*) — needs no attribute
  kSum,    // SUM(attribute)
  kAvg,    // AVG(attribute)
  kMin,    // MIN(attribute)
  kMax,    // MAX(attribute)
};

const char* AggregateKindToString(AggregateKind kind);

/// AGG + its attribute (ignored for COUNT).
struct AggregateSpec {
  AggregateKind kind = AggregateKind::kCount;
  std::string attribute;

  static AggregateSpec Count() { return {AggregateKind::kCount, ""}; }
  static AggregateSpec Sum(std::string attr) {
    return {AggregateKind::kSum, std::move(attr)};
  }
  static AggregateSpec Avg(std::string attr) {
    return {AggregateKind::kAvg, std::move(attr)};
  }
  static AggregateSpec Min(std::string attr) {
    return {AggregateKind::kMin, std::move(attr)};
  }
  static AggregateSpec Max(std::string attr) {
    return {AggregateKind::kMax, std::move(attr)};
  }

  bool NeedsAttribute() const { return kind != AggregateKind::kCount; }
};

/// Streaming accumulator covering all five aggregate kinds at once; cheap
/// enough that executors keep one per region.
struct Accumulator {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void Add(double value) {
    ++count;
    sum += value;
    if (value < min) min = value;
    if (value > max) max = value;
  }

  /// Adds `n` points whose values sum to `value_sum` (bulk path used when an
  /// index cell / raster pixel is known to be fully inside a region). Only
  /// valid to finalize COUNT/SUM/AVG afterwards unless min/max are merged
  /// separately.
  void AddBulk(std::uint64_t n, double value_sum) {
    count += n;
    sum += value_sum;
  }

  void MergeMinMax(double other_min, double other_max) {
    if (other_min < min) min = other_min;
    if (other_max > max) max = other_max;
  }

  void Merge(const Accumulator& other) {
    count += other.count;
    sum += other.sum;
    MergeMinMax(other.min, other.max);
  }

  /// Final value under `kind`; empty groups yield 0 for COUNT/SUM and NaN
  /// for AVG/MIN/MAX (SQL semantics would use NULL).
  double Finalize(AggregateKind kind) const;
};

/// Result of one spatial aggregation query: one value per region, in region
/// order, plus the per-region matching point count (always maintained — the
/// map view uses it for context) and, for the bounded raster join, a
/// per-region error bound.
struct QueryResult {
  std::vector<double> values;
  std::vector<std::uint64_t> counts;
  /// BoundedRasterJoin only; empty for exact executors. Semantics by
  /// aggregate: COUNT — |value - exact| <= bound (number of points in the
  /// region's boundary pixels); SUM — |value - exact| <= bound (sum of
  /// |attribute| over boundary-pixel points); AVG/MIN/MAX — the bound is
  /// the boundary point count, a diagnostic for how many points may be
  /// misattributed (no closed-form error bound exists for those).
  std::vector<double> error_bounds;

  std::size_t size() const { return values.size(); }
};

/// Execution telemetry the benches report alongside latency.
struct ExecutorStats {
  std::size_t points_scanned = 0;       // points touched individually
  std::size_t points_bulk = 0;          // points taken without a PIP test
  std::size_t pip_tests = 0;            // exact point-in-polygon tests run
  std::size_t pixels_touched = 0;       // raster: canvas pixels visited
  std::size_t boundary_pixels = 0;      // raster: boundary cells visited
  std::size_t tiles_visited = 0;        // raster: distinct 64x64 canvas
                                        // tiles the sweep covered
  std::size_t simd_fragments = 0;       // raster: pixels pushed through the
                                        // SIMD span kernels
  std::size_t threads_used = 0;         // partitions of the last Execute
  double build_seconds = 0.0;           // one-time prep (index build, splat)
  double query_seconds = 0.0;           // per-query time
  double filter_seconds = 0.0;          // per-pass: filter evaluation
  double splat_seconds = 0.0;           // per-pass: point splat (pass 1)
  double sweep_seconds = 0.0;           // per-pass: region sweep (pass 2)
  double reduce_seconds = 0.0;          // per-pass: probe/reduce loop
                                        // (scan, index, quadtree)
  double refine_seconds = 0.0;          // per-pass: boundary-pixel exact
                                        // refinement (accurate raster only;
                                        // recorded only when obs is enabled)

  void Reset() { *this = ExecutorStats(); }

  /// Folds one worker's counters into this (parallel executors keep
  /// per-worker stats to avoid sharing; timings are not summed — wall
  /// times overlap across workers and are recorded by the coordinator).
  void MergeCounters(const ExecutorStats& other) {
    points_scanned += other.points_scanned;
    points_bulk += other.points_bulk;
    pip_tests += other.pip_tests;
    pixels_touched += other.pixels_touched;
    boundary_pixels += other.boundary_pixels;
    tiles_visited += other.tiles_visited;
    simd_fragments += other.simd_fragments;
  }
};

}  // namespace urbane::core

#endif  // URBANE_CORE_AGGREGATE_H_
