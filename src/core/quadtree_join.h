#ifndef URBANE_CORE_QUADTREE_JOIN_H_
#define URBANE_CORE_QUADTREE_JOIN_H_

#include <memory>

#include "core/query.h"
#include "index/quadtree.h"

namespace urbane::core {

/// Configuration of the quadtree baseline.
struct QuadtreeJoinOptions {
  std::size_t max_points_per_leaf = 64;
  int max_depth = 16;
};

/// Exact quadtree-join baseline: the adaptive sibling of IndexJoin. A
/// bucket PR-quadtree is built over the points once; region probes take
/// whole subtrees that are provably inside the polygon and run exact tests
/// only on straddling leaves. Under the heavy spatial skew of urban data
/// the adaptive subdivision puts small leaves exactly where the uniform
/// grid drowns in points — the trade the index-structure comparison in the
/// companion evaluation examines.
class QuadtreeJoin : public SpatialAggregationExecutor {
 public:
  static StatusOr<std::unique_ptr<QuadtreeJoin>> Create(
      const data::PointTable& points, const data::RegionSet& regions,
      const QuadtreeJoinOptions& options = QuadtreeJoinOptions());

  StatusOr<QueryResult> Execute(const AggregationQuery& query) override;
  std::string name() const override { return "quadtree"; }
  bool exact() const override { return true; }
  const ExecutorStats& stats() const override { return stats_; }

  const index::Quadtree& tree() const { return tree_; }
  std::size_t MemoryBytes() const { return tree_.MemoryBytes(); }

 private:
  QuadtreeJoin(const data::PointTable& points, const data::RegionSet& regions,
               index::Quadtree tree)
      : points_(points), regions_(regions), tree_(std::move(tree)) {}

  const data::PointTable& points_;
  const data::RegionSet& regions_;
  index::Quadtree tree_;
  ExecutorStats stats_;
};

}  // namespace urbane::core

#endif  // URBANE_CORE_QUADTREE_JOIN_H_
