#ifndef URBANE_CORE_ACCURATE_JOIN_H_
#define URBANE_CORE_ACCURATE_JOIN_H_

#include <memory>

#include "core/query.h"
#include "core/raster_join.h"
#include "raster/viewport.h"

namespace urbane::core {

/// Accurate (hybrid) Raster Join — the paper's exact variant.
///
/// Identical to BoundedRasterJoin except at region boundaries: pixels the
/// boundary passes through (found by conservative edge rasterization) are
/// excluded from the raster reduction and their points are resolved with
/// exact point-in-polygon tests instead, served from a pixel -> point-list
/// index (the software analogue of the GPU fragment-list pass). Interior
/// pixels are provably uniform — no edge touches their cell — so taking
/// their blended values wholesale is exact, not approximate.
class AccurateRasterJoin : public SpatialAggregationExecutor {
 public:
  static StatusOr<std::unique_ptr<AccurateRasterJoin>> Create(
      const data::PointTable& points, const data::RegionSet& regions,
      const RasterJoinOptions& options = RasterJoinOptions());

  StatusOr<QueryResult> Execute(const AggregationQuery& query) override;
  std::string name() const override { return "accurate"; }
  bool exact() const override { return true; }
  const ExecutorStats& stats() const override { return stats_; }

  const raster::Viewport& canvas() const { return viewport_; }
  std::size_t MemoryBytes() const;

 private:
  AccurateRasterJoin(const data::PointTable& points,
                     const data::RegionSet& regions,
                     const RasterJoinOptions& options,
                     raster::Viewport viewport)
      : points_(points),
        regions_(regions),
        options_(options),
        viewport_(viewport) {}

  /// CSR pixel -> point ids, built once over all points.
  void BuildPixelIndex();

  const data::PointTable& points_;
  const data::RegionSet& regions_;
  RasterJoinOptions options_;
  raster::Viewport viewport_;
  std::vector<std::uint32_t> pixel_offsets_;  // W*H + 1
  std::vector<std::uint32_t> pixel_points_;   // point ids grouped by pixel
  // Query-independent caches (see BoundedRasterJoin): Z-ordered splat
  // schedule and per-region sweep spans. The accurate cache additionally
  // pre-cuts each part's boundary pixels out of its interior spans, so the
  // sweep loop runs without per-pixel stamp checks.
  raster::MortonSplatOrder morton_;
  internal::SweepGeometry sweep_;
  // Render-target scratch reused across Execute calls (see
  // BoundedRasterJoin::targets_scratch_).
  internal::AggregateTargets targets_scratch_;
  // Boundary-pixel dedup scratch is per sweep worker (see
  // internal::StampBuffer); Execute holds no shared mutable state.
  ExecutorStats stats_;
};

}  // namespace urbane::core

#endif  // URBANE_CORE_ACCURATE_JOIN_H_
