#include "core/quadtree_join.h"

#include "core/observe.h"
#include "util/timer.h"

namespace urbane::core {

StatusOr<std::unique_ptr<QuadtreeJoin>> QuadtreeJoin::Create(
    const data::PointTable& points, const data::RegionSet& regions,
    const QuadtreeJoinOptions& options) {
  WallTimer timer;
  geometry::BoundingBox bounds = points.Bounds();
  if (bounds.IsEmpty()) {
    bounds = geometry::BoundingBox(0, 0, 1, 1);
  }
  bounds = bounds.Expanded(1e-6 * std::max(1.0, bounds.Width()));
  index::QuadtreeOptions tree_options;
  tree_options.max_points_per_leaf = options.max_points_per_leaf;
  tree_options.max_depth = options.max_depth;
  URBANE_ASSIGN_OR_RETURN(
      index::Quadtree tree,
      index::Quadtree::Build(points.xs(), points.ys(), points.size(), bounds,
                             tree_options));
  auto executor = std::unique_ptr<QuadtreeJoin>(
      new QuadtreeJoin(points, regions, std::move(tree)));
  executor->stats_.build_seconds = timer.ElapsedSeconds();
  return executor;
}

StatusOr<QueryResult> QuadtreeJoin::Execute(const AggregationQuery& query) {
  URBANE_RETURN_IF_ERROR(query.Validate());
  if (query.points != &points_ || query.regions != &regions_) {
    return Status::FailedPrecondition(
        "QuadtreeJoin was created for a different table/region set");
  }
  const double build_seconds = stats_.build_seconds;
  stats_.Reset();
  stats_.build_seconds = build_seconds;
  obs::TraceSpan exec_span(query.trace, "quadtree");
  WallTimer timer;

  WallTimer filter_timer;
  URBANE_ASSIGN_OR_RETURN(CompiledFilter filter,
                          CompiledFilter::Compile(query.filter, points_));
  stats_.filter_seconds = filter_timer.ElapsedSeconds();
  TracePass(query.trace, exec_span.id(), "filter", stats_.filter_seconds);
  const bool trivial_filter = filter.IsTrivial();
  const float* attr = nullptr;
  if (query.aggregate.NeedsAttribute()) {
    attr = points_.AttributeByName(query.aggregate.attribute);
  }
  auto value_of = [&](std::uint32_t id) {
    return attr ? static_cast<double>(attr[id]) : 1.0;
  };
  // Zone-map gate: a pruned id cannot match the filter, so skipping it
  // before Matches only saves the predicate work.
  const RowRangeSet* cand = query.candidate_ranges;
  auto pruned = [&](std::uint32_t id) {
    return cand != nullptr && !cand->Contains(id);
  };

  QueryResult result;
  result.values.reserve(regions_.size());
  result.counts.reserve(regions_.size());
  WallTimer reduce_timer;
  for (std::size_t r = 0; r < regions_.size(); ++r) {
    Accumulator acc;
    for (const geometry::Polygon& part : regions_[r].geometry.parts()) {
      tree_.Query(
          part,
          /*take_all=*/
          [&](const std::uint32_t* ids, std::size_t n) {
            for (std::size_t k = 0; k < n; ++k) {
              if (pruned(ids[k])) {
                continue;
              }
              if (!trivial_filter && !filter.Matches(points_, ids[k])) {
                continue;
              }
              acc.Add(value_of(ids[k]));
              ++stats_.points_bulk;
            }
          },
          /*test_each=*/
          [&](const std::uint32_t* ids, std::size_t n) {
            for (std::size_t k = 0; k < n; ++k) {
              if (pruned(ids[k])) {
                continue;
              }
              if (!trivial_filter && !filter.Matches(points_, ids[k])) {
                continue;
              }
              ++stats_.pip_tests;
              const geometry::Vec2 p{points_.x(ids[k]), points_.y(ids[k])};
              if (part.Contains(p)) {
                acc.Add(value_of(ids[k]));
                ++stats_.points_scanned;
              }
            }
          });
    }
    result.values.push_back(acc.Finalize(query.aggregate.kind));
    result.counts.push_back(acc.count);
  }
  stats_.reduce_seconds = reduce_timer.ElapsedSeconds();
  TracePass(query.trace, exec_span.id(), "reduce", stats_.reduce_seconds);
  stats_.query_seconds = timer.ElapsedSeconds();
  ObserveExecutorStats("quadtree", stats_);
  return result;
}

}  // namespace urbane::core
