#include "core/spatial_aggregation.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "core/observe.h"
#include "obs/event_journal.h"
#include "obs/obs.h"
#include "obs/profile.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace urbane::core {

namespace {

/// The dependency interval a cached answer carries: the filter's time range
/// when present (the answer cannot depend on rows outside it), nullopt
/// otherwise (any append invalidates it). See
/// QueryCache::InvalidateTimeOverlap.
std::optional<QueryCache::TimeInterval> CacheValidTime(
    const FilterSpec& filter) {
  if (!filter.time_range.has_value()) {
    return std::nullopt;
  }
  return QueryCache::TimeInterval{filter.time_range->begin,
                                  filter.time_range->end};
}

}  // namespace

SpatialAggregation::SpatialAggregation(const data::PointTable& points,
                                       const data::RegionSet& regions,
                                       const RasterJoinOptions& raster_options,
                                       const IndexJoinOptions& index_options,
                                       const ExecutionContext& exec)
    : points_(points),
      regions_(regions),
      index_options_([&] {
        IndexJoinOptions options = index_options;
        if (!exec.IsSerial()) options.exec = exec;
        return options;
      }()),
      exec_(exec),
      raster_options_([&] {
        // A non-serial facade-level context overrides the per-executor knobs
        // so one argument parallelizes the whole engine uniformly.
        RasterJoinOptions options = raster_options;
        if (!exec.IsSerial()) options.exec = exec;
        return options;
      }()) {}

StatusOr<SpatialAggregationExecutor*> SpatialAggregation::ExecutorLocked(
    ExecutionMethod method) {
  switch (method) {
    case ExecutionMethod::kScan:
      if (!scan_) {
        URBANE_ASSIGN_OR_RETURN(scan_,
                                ScanJoin::Create(points_, regions_, exec_));
      }
      return static_cast<SpatialAggregationExecutor*>(scan_.get());
    case ExecutionMethod::kIndexJoin:
      if (!index_) {
        URBANE_ASSIGN_OR_RETURN(
            index_, IndexJoin::Create(points_, regions_, index_options_));
      }
      return static_cast<SpatialAggregationExecutor*>(index_.get());
    case ExecutionMethod::kBoundedRaster:
      if (!raster_) {
        URBANE_ASSIGN_OR_RETURN(
            raster_,
            BoundedRasterJoin::Create(points_, regions_, raster_options_));
      }
      return static_cast<SpatialAggregationExecutor*>(raster_.get());
    case ExecutionMethod::kAccurateRaster:
      if (!accurate_) {
        URBANE_ASSIGN_OR_RETURN(
            accurate_,
            AccurateRasterJoin::Create(points_, regions_, raster_options_));
      }
      return static_cast<SpatialAggregationExecutor*>(accurate_.get());
  }
  return Status::InvalidArgument("unknown execution method");
}

StatusOr<SpatialAggregationExecutor*> SpatialAggregation::ActiveExecutorLocked(
    ExecutionMethod method) {
  const std::size_t n = num_shards_.load(std::memory_order_relaxed);
  if (n <= 1) {
    return ExecutorLocked(method);
  }
  std::unique_ptr<shard::ShardedExecutor>& slot = sharded_[MethodIndex(method)];
  if (!slot) {
    shard::ShardedExecutorOptions options;
    options.num_shards = n;
    options.pool = exec_.pool;
    // Block-aligned shard boundaries over a store-backed table: no block
    // straddles two shards, so per-shard pruning stays whole-block.
    if (zone_maps_ != nullptr && !zone_maps_->blocks().empty()) {
      options.align_rows = zone_maps_->blocks().front().row_count;
    }
    URBANE_ASSIGN_OR_RETURN(
        slot, shard::ShardedExecutor::Create(points_, regions_, method,
                                             options, raster_options_,
                                             index_options_));
  }
  return static_cast<SpatialAggregationExecutor*>(slot.get());
}

StatusOr<SpatialAggregationExecutor*> SpatialAggregation::Executor(
    ExecutionMethod method) {
  std::lock_guard<std::mutex> lock(state_mu_);
  return ActiveExecutorLocked(method);
}

void SpatialAggregation::set_num_shards(std::size_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  // No query may be in flight on the old fan-out while it changes, and
  // cached results from the old configuration must never hit again (float
  // SUM/AVG can differ bitwise across fan-outs) — same discipline as the
  // ExecuteAuto resolution rebuild.
  std::scoped_lock lock(method_mu_[0], method_mu_[1], method_mu_[2],
                        method_mu_[3], state_mu_);
  if (num_shards_.load(std::memory_order_relaxed) == num_shards) {
    return;
  }
  num_shards_.store(num_shards, std::memory_order_release);
  for (std::unique_ptr<shard::ShardedExecutor>& slot : sharded_) {
    slot.reset();
  }
  config_epoch_.fetch_add(1, std::memory_order_acq_rel);
}

void SpatialAggregation::set_result_cache_capacity(std::size_t capacity) {
  cache_.set_max_entries(capacity);
}

void SpatialAggregation::set_result_cache_max_bytes(std::size_t max_bytes) {
  cache_.set_max_bytes(max_bytes);
}

std::uint64_t SpatialAggregation::Fingerprint(const AggregationQuery& query,
                                              ExecutionMethod method) const {
  int resolution = 0;
  if (method == ExecutionMethod::kBoundedRaster ||
      method == ExecutionMethod::kAccurateRaster) {
    std::lock_guard<std::mutex> lock(state_mu_);
    resolution = raster_options_.resolution;
  }
  return QueryCache::Fingerprint(query, method, resolution, config_epoch());
}

StatusOr<QueryResult> SpatialAggregation::ExecuteUnobserved(
    AggregationQuery query, ExecutionMethod method, bool* cache_hit) {
  query.points = &points_;
  query.regions = &regions_;
  // Facade-level span: the executor's own span nests under it, so a trace
  // shows cache/serialization overhead as the gap between the two.
  obs::TraceSpan facade_span(query.trace, "execute");
  facade_span.Tag("method", ExecutionMethodToString(method));
  const bool use_cache = cache_.enabled();
  if (query.trace != nullptr) {
    query.trace->Tag("method", ExecutionMethodToString(method));
    query.trace->Tag("cache", use_cache ? "miss" : "off");
  }
  if (query.profile != nullptr) {
    query.profile->method = ExecutionMethodToString(method);
    query.profile->cache = use_cache ? "miss" : "off";
  }
  if (use_cache) {
    // Fast path: a hit costs one shard mutex, no executor serialization.
    const std::uint64_t key = Fingerprint(query, method);
    if (std::optional<QueryResult> hit = cache_.Lookup(key)) {
      if (query.trace != nullptr) {
        query.trace->Tag("cache", "hit");
      }
      if (query.profile != nullptr) query.profile->cache = "hit";
      if (cache_hit != nullptr) *cache_hit = true;
      return std::move(*hit);
    }
  }
  std::lock_guard<std::mutex> serialize(method_mu_[MethodIndex(method)]);
  std::uint64_t key = 0;
  if (use_cache) {
    // Re-fingerprint under the method lock: the config (and thus the key)
    // is now stable, and a session that computed this entry while we waited
    // for the lock turns this into a hit.
    key = Fingerprint(query, method);
    if (std::optional<QueryResult> hit =
            cache_.Lookup(key, /*record_miss=*/false)) {
      if (query.trace != nullptr) {
        query.trace->Tag("cache", "hit");
      }
      if (query.profile != nullptr) query.profile->cache = "hit";
      if (cache_hit != nullptr) *cache_hit = true;
      return std::move(*hit);
    }
  }
  SpatialAggregationExecutor* executor = nullptr;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    URBANE_ASSIGN_OR_RETURN(executor, ActiveExecutorLocked(method));
  }
  // A query whose deadline expired while queued (e.g. behind the method
  // lock) aborts here instead of paying for a doomed execution. Cache hits
  // above are deliberately exempt: they are cheaper than the check is
  // useful.
  URBANE_RETURN_IF_ERROR(query.CheckControl());
  // Zone-map pruning (store-backed tables): skip blocks the filter rules
  // out. Computed after the cache probes (hits never pay for it) and kept
  // alive on this frame through Execute. A caller-supplied range set wins.
  PruneResult prune;
  if (zone_maps_ != nullptr && query.candidate_ranges == nullptr &&
      !query.filter.IsTrivial()) {
    prune = zone_maps_->Prune(query.filter, points_.schema());
    query.candidate_ranges = &prune.candidates;
    if (obs::MetricsEnabled()) {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      registry.GetCounter("store.blocks_pruned").Add(prune.blocks_pruned);
      registry.GetCounter("store.rows_pruned").Add(prune.rows_pruned);
    }
    if (query.trace != nullptr) {
      query.trace->Tag("store.blocks_pruned",
                       std::to_string(prune.blocks_pruned));
    }
    if (query.profile != nullptr) {
      query.profile->blocks_total = prune.blocks_total;
      query.profile->blocks_pruned = prune.blocks_pruned;
      query.profile->rows_pruned = prune.rows_pruned;
    }
  }
  // Thread-CPU attribution for the dispatch: exact while execution is
  // serial (including each sharded pass, which is serial per shard) and
  // coordinator-only under intra-executor parallelism (DESIGN.md §12).
  const double cpu_begin =
      query.profile != nullptr ? obs::ThreadCpuSeconds() : 0.0;
  URBANE_ASSIGN_OR_RETURN(QueryResult result, executor->Execute(query));
  if (query.profile != nullptr) {
    query.profile->cpu_seconds += obs::ThreadCpuSeconds() - cpu_begin;
    // Copied under the method lock, so the stats are this query's own.
    const ExecutorStats& stats = executor->stats();
    query.profile->method = executor->name();
    query.profile->threads_used = stats.threads_used;
    FillProfilePassCosts(stats, &query.profile->totals);
  }
  if (use_cache) {
    cache_.Insert(key, result, CacheValidTime(query.filter));
  }
  return result;
}

StatusOr<QueryResult> SpatialAggregation::Execute(AggregationQuery query,
                                                  ExecutionMethod method) {
  obs::SlowQueryLog& recorder = obs::SlowQueryLog::Global();
  const bool journal = obs::JournalEnabled();
  const bool armed = recorder.armed();
  const bool metrics = obs::MetricsEnabled();
  if (!journal && !armed && !metrics && query.trace == nullptr &&
      query.profile == nullptr) {
    // The obs-off == baseline guarantee: three relaxed loads and two
    // pointer tests, then the unchanged query path.
    return ExecuteUnobserved(std::move(query), method, nullptr);
  }

  // The fingerprint keys journal events and slow-query records to the same
  // identity the cache uses (it ignores points/regions pointers, so it is
  // safe to compute before ExecuteUnobserved fills those in).
  const std::uint64_t fingerprint =
      journal || armed ? Fingerprint(query, method) : 0;
  if (journal) {
    obs::Event start;
    start.kind = obs::EventKind::kQueryStart;
    start.method = static_cast<std::uint8_t>(method);
    start.fingerprint = fingerprint;
    obs::EmitEvent(start);
  }

  // Armed mode: attach a trace the caller did not ask for, so a slow query
  // retains its per-pass spans. Dropped unless MaybeRecord captures it.
  std::unique_ptr<obs::QueryTrace> armed_trace;
  if (armed && query.trace == nullptr) {
    armed_trace = std::make_unique<obs::QueryTrace>();
    query.trace = armed_trace.get();
  }
  // Armed mode likewise attaches a profile, so a committed slow-query
  // record embeds the full per-pass/per-shard breakdown. The armed profile
  // inherits the thread's current trace context (the server request's id),
  // linking the slowlog entry to the same trace as everything else.
  std::unique_ptr<obs::QueryProfile> armed_profile;
  if (armed && query.profile == nullptr) {
    armed_profile = std::make_unique<obs::QueryProfile>();
    obs::CurrentTraceContext(&armed_profile->context.trace_hi,
                             &armed_profile->context.trace_lo);
    query.profile = armed_profile.get();
  }

  WallTimer timer;
  bool cache_hit = false;
  StatusOr<QueryResult> result =
      ExecuteUnobserved(query, method, &cache_hit);
  const double wall_seconds = timer.ElapsedSeconds();
  if (query.profile != nullptr) {
    query.profile->wall_seconds = wall_seconds;
  }

  if (metrics) {
    // The recorder's p99-multiplier threshold derives from this histogram.
    obs::MetricsRegistry::Global()
        .GetHistogram("query.wall_seconds")
        .Observe(wall_seconds);
  }
  if (journal) {
    obs::Event finish;
    finish.kind = obs::EventKind::kQueryFinish;
    finish.method = static_cast<std::uint8_t>(method);
    finish.fingerprint = fingerprint;
    finish.value = wall_seconds;
    if (cache_hit) finish.flags |= obs::kEventCacheHit;
    if (!result.ok()) finish.flags |= obs::kEventError;
    obs::EmitEvent(finish);
    if (!result.ok()) {
      obs::Event error;
      error.kind = obs::EventKind::kError;
      error.method = static_cast<std::uint8_t>(method);
      error.fingerprint = fingerprint;
      error.detail = static_cast<std::uint8_t>(result.status().code());
      obs::EmitEvent(error);
    }
  }
  if (armed) {
    std::string plan;
    if (query.trace != nullptr) {
      for (const auto& [key, value] : query.trace->Tags()) {
        if (key == "planner.explanation") plan = value;
      }
    }
    recorder.MaybeRecord(fingerprint, ExecutionMethodToString(method),
                         query.ToString(), plan, wall_seconds, query.trace,
                         query.profile);
  }
  return result;
}

StatusOr<std::vector<QueryResult>> SpatialAggregation::ExecuteMany(
    std::vector<AggregationQuery> queries, ExecutionMethod method) {
  for (AggregationQuery& query : queries) {
    query.points = &points_;
    query.regions = &regions_;
  }
  // The shared-splat batch is a single-executor optimization; a sharded
  // engine answers each query through its scatter-gather path instead.
  if (method == ExecutionMethod::kBoundedRaster && queries.size() > 1 &&
      num_shards() <= 1) {
    const bool use_cache = cache_.enabled();
    std::vector<std::optional<QueryResult>> found(queries.size());
    bool batch_ok = false;
    {
      std::lock_guard<std::mutex> serialize(method_mu_[MethodIndex(method)]);
      std::vector<std::uint64_t> keys(queries.size(), 0);
      std::vector<std::size_t> missing;
      for (std::size_t i = 0; i < queries.size(); ++i) {
        if (use_cache) {
          keys[i] = Fingerprint(queries[i], method);
          if (std::optional<QueryResult> hit = cache_.Lookup(keys[i])) {
            found[i] = std::move(*hit);
            continue;
          }
        }
        missing.push_back(i);
      }
      if (missing.empty()) {
        batch_ok = true;
      } else {
        SpatialAggregationExecutor* executor = nullptr;
        {
          std::lock_guard<std::mutex> lock(state_mu_);
          URBANE_ASSIGN_OR_RETURN(executor, ExecutorLocked(method));
        }
        auto* raster = static_cast<BoundedRasterJoin*>(executor);
        std::vector<AggregationQuery> pending;
        pending.reserve(missing.size());
        for (const std::size_t i : missing) {
          pending.push_back(queries[i]);
        }
        // The batch path shares one filter evaluation (ExecuteBatch checks
        // the filters are equal), so one prune serves every pending query.
        PruneResult prune;
        if (zone_maps_ != nullptr &&
            !pending.front().filter.IsTrivial()) {
          prune =
              zone_maps_->Prune(pending.front().filter, points_.schema());
          for (AggregationQuery& query : pending) {
            if (query.candidate_ranges == nullptr) {
              query.candidate_ranges = &prune.candidates;
            }
          }
          if (obs::MetricsEnabled()) {
            obs::MetricsRegistry::Global()
                .GetCounter("store.blocks_pruned")
                .Add(prune.blocks_pruned);
          }
        }
        auto batched = raster->ExecuteBatch(pending);
        if (batched.ok()) {
          for (std::size_t k = 0; k < missing.size(); ++k) {
            if (use_cache) {
              cache_.Insert(keys[missing[k]], (*batched)[k],
                            CacheValidTime(queries[missing[k]].filter));
            }
            found[missing[k]] = std::move((*batched)[k]);
          }
          batch_ok = true;
        }
        // Heterogeneous filters: fall through to per-query execution.
      }
    }
    if (batch_ok) {
      std::vector<QueryResult> results;
      results.reserve(queries.size());
      for (std::optional<QueryResult>& result : found) {
        results.push_back(std::move(*result));
      }
      return results;
    }
  }
  std::vector<QueryResult> results;
  results.reserve(queries.size());
  for (AggregationQuery& query : queries) {
    URBANE_ASSIGN_OR_RETURN(QueryResult result,
                            Execute(query, method));
    results.push_back(std::move(result));
  }
  return results;
}

StatusOr<QueryResult> SpatialAggregation::ExecuteAuto(
    AggregationQuery query, const AccuracyRequirement& accuracy) {
  query.points = &points_;
  query.regions = &regions_;
  URBANE_RETURN_IF_ERROR(query.Validate());

  WorkloadProfile profile;
  profile.num_points = points_.size();
  profile.num_regions = regions_.size();
  profile.total_region_vertices = regions_.TotalVertexCount();
  profile.world = points_.Bounds();
  profile.world.Extend(regions_.Bounds());
  URBANE_ASSIGN_OR_RETURN(profile.selectivity,
                          EstimateSelectivity(query.filter));
  profile.available_shards = num_shards();
  QueryPlan plan;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    profile.has_point_index = index_ != nullptr;
    profile.has_pixel_index = accurate_ != nullptr;
    plan = PlanQuery(profile, accuracy, raster_options_.resolution);
    last_plan_ = plan;
  }
  if (query.trace != nullptr) {
    query.trace->Tag("planner.choice", ExecutionMethodToString(plan.method));
    query.trace->Tag("planner.explanation", plan.explanation);
  }
  if (query.profile != nullptr) {
    query.profile->planner_choice = ExecutionMethodToString(plan.method);
    query.profile->planner_explanation = plan.explanation;
  }
  if (obs::JournalEnabled()) {
    obs::Event chose;
    chose.kind = obs::EventKind::kPlannerChoose;
    chose.method = static_cast<std::uint8_t>(plan.method);
    chose.fingerprint = Fingerprint(query, plan.method);
    chose.value = plan.method == ExecutionMethod::kScan ? plan.cost_scan
                  : plan.method == ExecutionMethod::kIndexJoin
                      ? plan.cost_index
                      : plan.cost_raster;
    obs::EmitEvent(chose);
  }
  // Honor a tighter epsilon by rebuilding the bounded executor's canvas.
  // The rebuild holds the raster method mutex (no session can be mid-query
  // on the old executor) and bumps the config epoch, which retires every
  // cache entry computed at the old, coarser ε.
  if (plan.method == ExecutionMethod::kBoundedRaster) {
    std::scoped_lock rebuild(
        method_mu_[MethodIndex(ExecutionMethod::kBoundedRaster)], state_mu_);
    if (plan.resolution > raster_options_.resolution) {
      raster_options_.resolution = plan.resolution;
      raster_.reset();
      // The sharded wrapper's inner rasters carry the old canvas too.
      sharded_[MethodIndex(ExecutionMethod::kBoundedRaster)].reset();
      config_epoch_.fetch_add(1, std::memory_order_acq_rel);
    }
  }
  return Execute(std::move(query), plan.method);
}

QueryPlan SpatialAggregation::last_plan() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return last_plan_;
}

StatusOr<double> SpatialAggregation::EstimateSelectivity(
    const FilterSpec& filter) const {
  if (filter.IsTrivial()) {
    return 1.0;
  }
  URBANE_ASSIGN_OR_RETURN(double estimate,
                          EstimateFilterSelectivity(filter, points_));
  // Zone maps give an exact upper bound (pruned rows cannot match), which
  // sharpens the strided sample when the filter is clustered in few blocks.
  if (zone_maps_ != nullptr) {
    estimate = std::min(
        estimate, zone_maps_->CandidateFraction(filter, points_.schema()));
  }
  return estimate;
}

}  // namespace urbane::core
