#include "core/spatial_aggregation.h"

#include <algorithm>

#include "util/string_util.h"

namespace urbane::core {

SpatialAggregation::SpatialAggregation(const data::PointTable& points,
                                       const data::RegionSet& regions,
                                       const RasterJoinOptions& raster_options,
                                       const IndexJoinOptions& index_options,
                                       const ExecutionContext& exec)
    : points_(points),
      regions_(regions),
      raster_options_(raster_options),
      index_options_(index_options),
      exec_(exec) {
  // A non-serial facade-level context overrides the per-executor knobs so
  // one argument parallelizes the whole engine uniformly.
  if (!exec_.IsSerial()) {
    raster_options_.exec = exec_;
    index_options_.exec = exec_;
  }
}

StatusOr<SpatialAggregationExecutor*> SpatialAggregation::Executor(
    ExecutionMethod method) {
  switch (method) {
    case ExecutionMethod::kScan:
      if (!scan_) {
        URBANE_ASSIGN_OR_RETURN(scan_,
                                ScanJoin::Create(points_, regions_, exec_));
      }
      return static_cast<SpatialAggregationExecutor*>(scan_.get());
    case ExecutionMethod::kIndexJoin:
      if (!index_) {
        URBANE_ASSIGN_OR_RETURN(
            index_, IndexJoin::Create(points_, regions_, index_options_));
      }
      return static_cast<SpatialAggregationExecutor*>(index_.get());
    case ExecutionMethod::kBoundedRaster:
      if (!raster_) {
        URBANE_ASSIGN_OR_RETURN(
            raster_,
            BoundedRasterJoin::Create(points_, regions_, raster_options_));
      }
      return static_cast<SpatialAggregationExecutor*>(raster_.get());
    case ExecutionMethod::kAccurateRaster:
      if (!accurate_) {
        URBANE_ASSIGN_OR_RETURN(
            accurate_,
            AccurateRasterJoin::Create(points_, regions_, raster_options_));
      }
      return static_cast<SpatialAggregationExecutor*>(accurate_.get());
  }
  return Status::InvalidArgument("unknown execution method");
}

void SpatialAggregation::set_result_cache_capacity(std::size_t capacity) {
  cache_capacity_ = capacity;
  while (cache_.size() > cache_capacity_) {
    cache_.pop_front();
  }
}

std::string SpatialAggregation::CacheKey(const AggregationQuery& query,
                                         ExecutionMethod method) {
  // ToString() renders aggregate + every filter conjunct deterministically;
  // prepend the method so bounded/exact answers never mix.
  return std::string(ExecutionMethodToString(method)) + "|" +
         query.ToString();
}

StatusOr<QueryResult> SpatialAggregation::Execute(AggregationQuery query,
                                                  ExecutionMethod method) {
  query.points = &points_;
  query.regions = &regions_;
  const std::string key =
      cache_capacity_ > 0 ? CacheKey(query, method) : std::string();
  if (!key.empty()) {
    const auto it =
        std::find_if(cache_.begin(), cache_.end(),
                     [&](const auto& entry) { return entry.first == key; });
    if (it != cache_.end()) {
      ++cache_hits_;
      return it->second;
    }
  }
  URBANE_ASSIGN_OR_RETURN(SpatialAggregationExecutor * executor,
                          Executor(method));
  URBANE_ASSIGN_OR_RETURN(QueryResult result, executor->Execute(query));
  if (!key.empty()) {
    cache_.emplace_back(key, result);
    if (cache_.size() > cache_capacity_) {
      cache_.pop_front();
    }
  }
  return result;
}

StatusOr<std::vector<QueryResult>> SpatialAggregation::ExecuteMany(
    std::vector<AggregationQuery> queries, ExecutionMethod method) {
  for (AggregationQuery& query : queries) {
    query.points = &points_;
    query.regions = &regions_;
  }
  if (method == ExecutionMethod::kBoundedRaster && queries.size() > 1) {
    URBANE_ASSIGN_OR_RETURN(SpatialAggregationExecutor * executor,
                            Executor(method));
    auto* raster = static_cast<BoundedRasterJoin*>(executor);
    auto batched = raster->ExecuteBatch(queries);
    if (batched.ok()) {
      return batched;
    }
    // Heterogeneous filters: fall through to per-query execution.
  }
  std::vector<QueryResult> results;
  results.reserve(queries.size());
  for (AggregationQuery& query : queries) {
    URBANE_ASSIGN_OR_RETURN(QueryResult result,
                            Execute(query, method));
    results.push_back(std::move(result));
  }
  return results;
}

StatusOr<QueryResult> SpatialAggregation::ExecuteAuto(
    AggregationQuery query, const AccuracyRequirement& accuracy) {
  query.points = &points_;
  query.regions = &regions_;
  URBANE_RETURN_IF_ERROR(query.Validate());

  WorkloadProfile profile;
  profile.num_points = points_.size();
  profile.num_regions = regions_.size();
  profile.total_region_vertices = regions_.TotalVertexCount();
  profile.world = points_.Bounds();
  profile.world.Extend(regions_.Bounds());
  URBANE_ASSIGN_OR_RETURN(profile.selectivity,
                          EstimateSelectivity(query.filter));
  profile.has_point_index = index_ != nullptr;
  profile.has_pixel_index = accurate_ != nullptr;

  last_plan_ = PlanQuery(profile, accuracy, raster_options_.resolution);
  // Honor a tighter epsilon by rebuilding the bounded executor's canvas.
  if (last_plan_.method == ExecutionMethod::kBoundedRaster &&
      last_plan_.resolution > raster_options_.resolution) {
    raster_options_.resolution = last_plan_.resolution;
    raster_.reset();
  }
  return Execute(std::move(query), last_plan_.method);
}

StatusOr<double> SpatialAggregation::EstimateSelectivity(
    const FilterSpec& filter) const {
  if (filter.IsTrivial()) {
    return 1.0;
  }
  URBANE_ASSIGN_OR_RETURN(FilterSelection selection,
                          EvaluateFilter(filter, points_));
  return selection.Selectivity(points_.size());
}

}  // namespace urbane::core
