#ifndef URBANE_CORE_RASTER_TARGETS_H_
#define URBANE_CORE_RASTER_TARGETS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/aggregate.h"
#include "core/filter.h"
#include "data/point_table.h"
#include "raster/buffer.h"
#include "raster/kernels.h"
#include "raster/morton.h"
#include "raster/point_splat.h"
#include "raster/tile_raster.h"
#include "raster/viewport.h"

namespace urbane::core::internal {

/// The points one query splats, gathered into contiguous arrays with their
/// framebuffer index precomputed once (SIMD, raster/kernels.h) and shared by
/// every render target — the seed path recomputed PixelForPoint per point
/// per target, up to five times for SUM with error bounds.
struct SplatSchedule {
  std::vector<std::uint32_t> ids;      // original rows, schedule order
  std::vector<std::uint32_t> indices;  // pixel index per position
                                       // (raster::kInvalidPixel = off canvas)
  bool morton = false;                 // schedule follows the Z-order curve
  std::size_t size() const { return ids.size(); }
};

/// Morton-ordered splats only pay off when the schedule covers most of the
/// dataset: walking the full Morton permutation costs O(table size), so a
/// sparse selection is cheaper in row order. The gate reads only sizes and
/// is therefore deterministic across SIMD levels and thread counts.
inline bool UseMortonSchedule(const FilterSelection& selection,
                              std::size_t table_size) {
  return selection.ids.size() * 4 >= table_size;
}

/// Gathers the selected rows into a splat schedule — along the Z-order
/// curve when `morton` is built and the selection is dense enough, else in
/// ascending row order (the seed's order). The Morton key is pixel-granular
/// and the underlying sort is stable, so points of one pixel keep their row
/// order either way: per-pixel accumulation, and hence every query result,
/// is bit-identical under both schedules.
inline SplatSchedule BuildSplatSchedule(
    const raster::Viewport& vp, const data::PointTable& table,
    const FilterSelection& selection,
    const raster::MortonSplatOrder* morton) {
  SplatSchedule s;
  std::vector<float> xs;
  std::vector<float> ys;
  const std::size_t n = selection.ids.size();
  s.ids.reserve(n);
  xs.reserve(n);
  ys.reserve(n);
  if (morton != nullptr && morton->enabled() &&
      morton->size() == table.size() &&
      selection.bitmap.size() == table.size() &&
      UseMortonSchedule(selection, table.size())) {
    s.morton = true;
    const std::vector<std::uint32_t>& order = morton->ids();
    const std::vector<float>& mxs = morton->xs();
    const std::vector<float>& mys = morton->ys();
    for (std::size_t k = 0; k < order.size(); ++k) {
      const std::uint32_t id = order[k];
      if (!selection.bitmap[id]) continue;
      s.ids.push_back(id);
      xs.push_back(mxs[k]);
      ys.push_back(mys[k]);
    }
  } else {
    for (const std::uint32_t id : selection.ids) {
      s.ids.push_back(id);
      xs.push_back(table.xs()[id]);
      ys.push_back(table.ys()[id]);
    }
  }
  s.indices.resize(s.ids.size());
  raster::ComputeSplatIndices(vp, xs.data(), ys.data(), s.ids.size(),
                              s.indices.data());
  return s;
}

/// Per-pixel aggregate render targets produced by the point-splat pass
/// (pass 1 of Raster Join). Which targets exist depends on the aggregate:
/// COUNT -> count only; SUM/AVG -> count + sum; MIN/MAX -> count + min/max.
struct AggregateTargets {
  raster::Buffer2D<std::uint32_t> count;
  raster::Buffer2D<double> sum;       // default precision
  raster::Buffer2D<float> sum32;      // GPU-authentic float32 ablation
  raster::Buffer2D<double> abs_sum;   // for SUM error bounds (optional)
  raster::Buffer2D<float> min_value;
  raster::Buffer2D<float> max_value;
  bool need_sum = false;
  bool need_minmax = false;
  bool need_abs_sum = false;
  bool float32 = false;

  double SumAt(int x, int y) const {
    return float32 ? static_cast<double>(sum32.at(x, y)) : sum.at(x, y);
  }
};

/// Reuses `buf` when the canvas size matches (refilled with `fill`),
/// reallocating otherwise. Refilling a warm buffer is several times cheaper
/// than a fresh allocation (no page faults), which is why the executors keep
/// their AggregateTargets as a member scratch across queries.
template <typename T>
inline void EnsureFilled(raster::Buffer2D<T>& buf, int w, int h, T fill) {
  if (buf.width() == w && buf.height() == h) {
    buf.Fill(fill);
  } else {
    buf = raster::Buffer2D<T>(w, h, fill);
  }
}

/// Like EnsureFilled but skips the refill: for targets whose scatter
/// initializes every pixel it touches on first touch (and whose readers are
/// gated on count > 0), stale contents are never observable.
template <typename T>
inline void EnsureAllocated(raster::Buffer2D<T>& buf, int w, int h) {
  if (buf.width() != w || buf.height() != h) {
    buf = raster::Buffer2D<T>(w, h);
  }
}

/// Serial fused scatter: one pass over the schedule feeds every live target.
/// Per pixel the accumulation sequence is exactly the per-target zero-init
/// loops' (first touch computes `identity op v`, later touches fold into the
/// stored value), so results are bit-identical to the unfused form while
/// value targets never need a whole-canvas clear. Returns hits.
inline std::size_t SplatScheduleSerial(AggregateTargets& t,
                                       const SplatSchedule& schedule,
                                       const float* attr) {
  const std::uint32_t* indices = schedule.indices.data();
  const std::size_t n = schedule.size();
  std::uint32_t* count = t.count.data().data();
  std::size_t hits = 0;
  if (!t.need_sum && !t.need_minmax) {
    for (std::size_t k = 0; k < n; ++k) {
      const std::uint32_t idx = indices[k];
      if (idx == raster::kInvalidPixel) continue;
      ++count[idx];
      ++hits;
    }
    return hits;
  }
  const bool need_sum = t.need_sum;
  const bool need_abs = t.need_abs_sum;
  const bool need_minmax = t.need_minmax;
  const bool float32 = t.float32;
  double* sum = t.sum.empty() ? nullptr : t.sum.data().data();
  float* sum32 = t.sum32.empty() ? nullptr : t.sum32.data().data();
  double* abs_sum = t.abs_sum.empty() ? nullptr : t.abs_sum.data().data();
  float* min_v = t.min_value.empty() ? nullptr : t.min_value.data().data();
  float* max_v = t.max_value.empty() ? nullptr : t.max_value.data().data();
  constexpr float kInf = std::numeric_limits<float>::infinity();
  for (std::size_t k = 0; k < n; ++k) {
    const std::uint32_t idx = indices[k];
    if (idx == raster::kInvalidPixel) continue;
    const std::uint32_t c = ++count[idx];
    const float v = attr[schedule.ids[k]];
    const bool first = c == 1;
    if (need_sum) {
      if (float32) {
        sum32[idx] = (first ? 0.0f : sum32[idx]) + v;
      } else {
        sum[idx] = (first ? 0.0 : sum[idx]) + static_cast<double>(v);
      }
      if (need_abs) {
        abs_sum[idx] = (first ? 0.0 : abs_sum[idx]) +
                       std::abs(static_cast<double>(v));
      }
    }
    if (need_minmax) {
      min_v[idx] = std::min(first ? kInf : min_v[idx], v);
      max_v[idx] = std::max(first ? -kInf : max_v[idx], v);
    }
    ++hits;
  }
  return hits;
}

/// Splats a schedule into `t` (caller-owned scratch, reused across queries).
/// `attr` is the aggregate attribute
/// column (nullptr for COUNT). Every target reuses the schedule's
/// precomputed pixel indices; `par` spreads each splat over a pool
/// (partitions are contiguous schedule ranges, default serial).
inline void BuildAggregateTargets(
    const raster::Viewport& vp, const SplatSchedule& schedule,
    const float* attr, AggregateKind kind, bool float32,
    bool need_abs_sum, AggregateTargets& t,
    const raster::SplatParallelism& par = raster::SplatParallelism()) {
  t.float32 = float32;
  t.need_sum = kind == AggregateKind::kSum || kind == AggregateKind::kAvg;
  t.need_minmax = kind == AggregateKind::kMin || kind == AggregateKind::kMax;
  t.need_abs_sum = need_abs_sum && t.need_sum;

  const std::uint32_t* indices = schedule.indices.data();
  const std::size_t n = schedule.size();
  const int w = vp.width();
  const int h = vp.height();
  EnsureFilled(t.count, w, h, 0u);

  const bool parallel = par.EffectivePartitions() > 1 && n >= par.min_points;
  if (!parallel) {
    // Serial fused path: value targets are first-touch-initialized by the
    // scatter, so they only need to exist — no whole-canvas clear.
    if (t.need_sum) {
      if (float32) {
        EnsureAllocated(t.sum32, w, h);
      } else {
        EnsureAllocated(t.sum, w, h);
      }
      if (t.need_abs_sum) EnsureAllocated(t.abs_sum, w, h);
    }
    if (t.need_minmax) {
      EnsureAllocated(t.min_value, w, h);
      EnsureAllocated(t.max_value, w, h);
    }
    SplatScheduleSerial(t, schedule, attr);
    return;
  }

  // Parallel path: per-target identity-filled buffers, partial-buffer
  // reduction (Morton ranges when the schedule is Morton-ordered).
  raster::ParallelSplatIndexed(
      par, vp, indices, n, raster::BlendOp::kAdd,
      [](std::size_t) { return 1u; }, t.count);

  if (t.need_sum) {
    if (float32) {
      EnsureFilled(t.sum32, w, h, 0.0f);
      raster::ParallelSplatIndexed(
          par, vp, indices, n, raster::BlendOp::kAdd,
          [&](std::size_t k) { return attr[schedule.ids[k]]; }, t.sum32);
    } else {
      EnsureFilled(t.sum, w, h, 0.0);
      raster::ParallelSplatIndexed(
          par, vp, indices, n, raster::BlendOp::kAdd,
          [&](std::size_t k) {
            return static_cast<double>(attr[schedule.ids[k]]);
          },
          t.sum);
    }
    if (t.need_abs_sum) {
      EnsureFilled(t.abs_sum, w, h, 0.0);
      raster::ParallelSplatIndexed(
          par, vp, indices, n, raster::BlendOp::kAdd,
          [&](std::size_t k) {
            return std::abs(static_cast<double>(attr[schedule.ids[k]]));
          },
          t.abs_sum);
    }
  }
  if (t.need_minmax) {
    EnsureFilled(t.min_value, w, h, std::numeric_limits<float>::infinity());
    raster::ParallelSplatIndexed(
        par, vp, indices, n, raster::BlendOp::kMin,
        [&](std::size_t k) { return attr[schedule.ids[k]]; }, t.min_value);
    EnsureFilled(t.max_value, w, h, -std::numeric_limits<float>::infinity());
    raster::ParallelSplatIndexed(
        par, vp, indices, n, raster::BlendOp::kMax,
        [&](std::size_t k) { return attr[schedule.ids[k]]; }, t.max_value);
  }
}

/// Folds one covered pixel into a region accumulator.
inline void AccumulatePixel(const AggregateTargets& t, int x, int y,
                            Accumulator& acc) {
  const std::uint32_t c = t.count.at(x, y);
  if (c == 0) {
    return;
  }
  acc.AddBulk(c, t.need_sum ? t.SumAt(x, y) : static_cast<double>(c) * 0.0);
  if (t.need_minmax) {
    acc.MergeMinMax(t.min_value.at(x, y), t.max_value.at(x, y));
  }
}

/// Folds one cached span into `acc`, bit-identical to running
/// AccumulatePixel over its pixels left to right:
///
///   * COUNT-only targets take the whole-span count sum in one AddBulk —
///     exact (u64 arithmetic) and order-free, since every per-pixel bulk
///     adds 0.0 to the float sum;
///   * targets with sums or min/max gather the nonzero columns (SIMD) and
///     accumulate them scalar, in ascending order — the float additions
///     happen in exactly the seed loop's sequence.
///
/// `scratch` must hold at least span-width entries. Returns the span's
/// point total (for points_bulk accounting).
inline std::uint64_t AccumulateSpan(const AggregateTargets& t,
                                    const raster::RasterKernels& kernels,
                                    const raster::PixelSpan& span,
                                    Accumulator& acc,
                                    std::uint32_t* scratch) {
  const std::uint32_t* row =
      t.count.Row(span.y) + static_cast<std::size_t>(span.x_begin);
  const std::size_t len =
      static_cast<std::size_t>(span.x_end - span.x_begin);
  if (!t.need_sum && !t.need_minmax) {
    const std::uint64_t total = kernels.sum_span_u32(row, len);
    if (total != 0) {
      acc.AddBulk(total, 0.0);
    }
    return total;
  }
  std::uint64_t total = 0;
  const std::size_t hits = kernels.gather_nonzero_u32(row, len, scratch);
  for (std::size_t j = 0; j < hits; ++j) {
    const int x = span.x_begin + static_cast<int>(scratch[j]);
    total += row[scratch[j]];
    AccumulatePixel(t, x, span.y, acc);
  }
  return total;
}

/// Per-worker boundary-pixel dedup scratch: a stamp buffer avoids clearing
/// a W*H bitmap per region. Each pass-2 worker owns one, so the region
/// sweep can run on many threads with no shared mutable state (this
/// replaces the former executor-member stamp).
class StampBuffer {
 public:
  StampBuffer() = default;
  explicit StampBuffer(std::size_t num_pixels) : stamp_(num_pixels, 0) {}

  /// Starts a new dedup scope; handles counter wrap by clearing.
  void NextScope() {
    ++current_;
    if (current_ == 0) {
      std::fill(stamp_.begin(), stamp_.end(), 0);
      current_ = 1;
    }
  }

  /// Marks `idx`; returns true the first time it is seen in this scope.
  bool MarkOnce(std::size_t idx) {
    if (stamp_[idx] == current_) {
      return false;
    }
    stamp_[idx] = current_;
    return true;
  }

  /// True if `idx` was marked in the current scope.
  bool Marked(std::size_t idx) const { return stamp_[idx] == current_; }

 private:
  std::vector<std::uint32_t> stamp_;
  std::uint32_t current_ = 0;
};

}  // namespace urbane::core::internal

#endif  // URBANE_CORE_RASTER_TARGETS_H_
