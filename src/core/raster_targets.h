#ifndef URBANE_CORE_RASTER_TARGETS_H_
#define URBANE_CORE_RASTER_TARGETS_H_

#include <cstdint>
#include <vector>

#include "core/aggregate.h"
#include "data/point_table.h"
#include "raster/buffer.h"
#include "raster/point_splat.h"
#include "raster/viewport.h"

namespace urbane::core::internal {

/// Per-pixel aggregate render targets produced by the point-splat pass
/// (pass 1 of Raster Join). Which targets exist depends on the aggregate:
/// COUNT -> count only; SUM/AVG -> count + sum; MIN/MAX -> count + min/max.
struct AggregateTargets {
  raster::Buffer2D<std::uint32_t> count;
  raster::Buffer2D<double> sum;       // default precision
  raster::Buffer2D<float> sum32;      // GPU-authentic float32 ablation
  raster::Buffer2D<double> abs_sum;   // for SUM error bounds (optional)
  raster::Buffer2D<float> min_value;
  raster::Buffer2D<float> max_value;
  bool need_sum = false;
  bool need_minmax = false;
  bool need_abs_sum = false;
  bool float32 = false;

  double SumAt(int x, int y) const {
    return float32 ? static_cast<double>(sum32.at(x, y)) : sum.at(x, y);
  }
};

/// Splats the selected rows of `table` into fresh targets.
/// `attr` is the aggregate attribute column (nullptr for COUNT).
/// `par` spreads each splat over a pool (default: serial).
inline AggregateTargets BuildAggregateTargets(
    const raster::Viewport& vp, const data::PointTable& table,
    const std::vector<std::uint32_t>& selected_ids,
    const std::vector<float>* attr, AggregateKind kind, bool float32,
    bool need_abs_sum,
    const raster::SplatParallelism& par = raster::SplatParallelism()) {
  AggregateTargets t;
  t.float32 = float32;
  t.need_sum = kind == AggregateKind::kSum || kind == AggregateKind::kAvg;
  t.need_minmax = kind == AggregateKind::kMin || kind == AggregateKind::kMax;
  t.need_abs_sum = need_abs_sum && t.need_sum;

  t.count = raster::Buffer2D<std::uint32_t>(vp.width(), vp.height(), 0);
  raster::ParallelSplatPointsSubset(
      par, vp, table.xs(), table.ys(), selected_ids, raster::BlendOp::kAdd,
      [](std::size_t) { return 1u; }, t.count);

  if (t.need_sum) {
    if (float32) {
      t.sum32 = raster::Buffer2D<float>(vp.width(), vp.height(), 0.0f);
      raster::ParallelSplatPointsSubset(
          par, vp, table.xs(), table.ys(), selected_ids,
          raster::BlendOp::kAdd, [&](std::size_t i) { return (*attr)[i]; },
          t.sum32);
    } else {
      t.sum = raster::Buffer2D<double>(vp.width(), vp.height(), 0.0);
      raster::ParallelSplatPointsSubset(
          par, vp, table.xs(), table.ys(), selected_ids,
          raster::BlendOp::kAdd,
          [&](std::size_t i) { return static_cast<double>((*attr)[i]); },
          t.sum);
    }
    if (t.need_abs_sum) {
      t.abs_sum = raster::Buffer2D<double>(vp.width(), vp.height(), 0.0);
      raster::ParallelSplatPointsSubset(
          par, vp, table.xs(), table.ys(), selected_ids,
          raster::BlendOp::kAdd,
          [&](std::size_t i) {
            return std::abs(static_cast<double>((*attr)[i]));
          },
          t.abs_sum);
    }
  }
  if (t.need_minmax) {
    t.min_value = raster::Buffer2D<float>(
        vp.width(), vp.height(), std::numeric_limits<float>::infinity());
    raster::ParallelSplatPointsSubset(
        par, vp, table.xs(), table.ys(), selected_ids, raster::BlendOp::kMin,
        [&](std::size_t i) { return (*attr)[i]; }, t.min_value);
    t.max_value = raster::Buffer2D<float>(
        vp.width(), vp.height(), -std::numeric_limits<float>::infinity());
    raster::ParallelSplatPointsSubset(
        par, vp, table.xs(), table.ys(), selected_ids, raster::BlendOp::kMax,
        [&](std::size_t i) { return (*attr)[i]; }, t.max_value);
  }
  return t;
}

/// Folds one covered pixel into a region accumulator.
inline void AccumulatePixel(const AggregateTargets& t, int x, int y,
                            Accumulator& acc) {
  const std::uint32_t c = t.count.at(x, y);
  if (c == 0) {
    return;
  }
  acc.AddBulk(c, t.need_sum ? t.SumAt(x, y) : static_cast<double>(c) * 0.0);
  if (t.need_minmax) {
    acc.MergeMinMax(t.min_value.at(x, y), t.max_value.at(x, y));
  }
}

/// Per-worker boundary-pixel dedup scratch: a stamp buffer avoids clearing
/// a W*H bitmap per region. Each pass-2 worker owns one, so the region
/// sweep can run on many threads with no shared mutable state (this
/// replaces the former executor-member stamp).
class StampBuffer {
 public:
  StampBuffer() = default;
  explicit StampBuffer(std::size_t num_pixels) : stamp_(num_pixels, 0) {}

  /// Starts a new dedup scope; handles counter wrap by clearing.
  void NextScope() {
    ++current_;
    if (current_ == 0) {
      std::fill(stamp_.begin(), stamp_.end(), 0);
      current_ = 1;
    }
  }

  /// Marks `idx`; returns true the first time it is seen in this scope.
  bool MarkOnce(std::size_t idx) {
    if (stamp_[idx] == current_) {
      return false;
    }
    stamp_[idx] = current_;
    return true;
  }

  /// True if `idx` was marked in the current scope.
  bool Marked(std::size_t idx) const { return stamp_[idx] == current_; }

 private:
  std::vector<std::uint32_t> stamp_;
  std::uint32_t current_ = 0;
};

}  // namespace urbane::core::internal

#endif  // URBANE_CORE_RASTER_TARGETS_H_
