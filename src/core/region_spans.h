#ifndef URBANE_CORE_REGION_SPANS_H_
#define URBANE_CORE_REGION_SPANS_H_

// Cached sweep geometry for the raster joins' pass 2.
//
// Scan-converting every region on every query made pass 2 pay for edge
// walking, crossing sorts and boundary dedup over and over, even though the
// covered pixels depend only on (region set, canvas) — both fixed at
// executor Create. This cache rasterizes each region once into flat span
// and boundary-pixel arrays; the per-query sweep then degenerates into a
// linear walk over those arrays, which is the memory-bound loop the SIMD
// span kernels (raster/kernels.h) accelerate.
//
// Emission order is preserved exactly — spans are part-major and row-major
// within a part (the order ScanlineFillPolygon emits), boundary pixels are
// in RasterizePolygonBoundary's first-occurrence order — so accumulating
// through the cache is bit-identical to the uncached sweep, float sums
// included.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "data/region.h"
#include "raster/tile_raster.h"
#include "raster/viewport.h"

namespace urbane::core::internal {

/// Pre-rasterized geometry of one region on one canvas.
struct RegionSpanCache {
  /// Covered-pixel runs, concatenated part-major. In accurate mode the
  /// part's boundary pixels are already cut out of its spans, so the sweep
  /// needs no per-pixel stamp checks.
  std::vector<raster::PixelSpan> spans;
  /// Index of the first span of each part; size = parts + 1.
  std::vector<std::uint32_t> span_part_offsets;
  /// Boundary pixels (linear canvas indices) in emission order. Bounded
  /// mode dedups across the whole region; accurate mode per part (a pixel
  /// on two parts' boundaries is refined against each part separately).
  std::vector<std::uint32_t> boundary;
  /// Index of the first boundary pixel of each part; size = parts + 1.
  std::vector<std::uint32_t> boundary_part_offsets;
  /// Interior pixels before any boundary cut — the pixels_touched a sweep
  /// of this region reports, matching the uncached loop.
  std::uint64_t pixels = 0;
  /// Distinct 64×64 canvas tiles the interior spans touch.
  std::uint32_t tiles = 0;

  std::size_t MemoryBytes() const;
};

/// Which executor the cache serves; controls boundary dedup scope and
/// whether boundary pixels are cut from the interior spans.
enum class SweepMode {
  kBounded,   // spans keep boundary pixels; boundary deduped per region
  kAccurate,  // spans exclude the part's boundary; boundary deduped per part
};

/// Query-independent sweep geometry for a whole region set.
struct SweepGeometry {
  std::vector<RegionSpanCache> regions;

  std::size_t MemoryBytes() const;
};

/// Rasterizes every region of `regions` once. `with_boundary` skips the
/// boundary lists when the executor never reads them (bounded join with
/// error bounds off). `triangle_pipeline` scan converts interiors through
/// the tiled triangle rasterizer instead of the scanline filler (the
/// GPU-authentic ablation; same pixels, tile-major emission order).
SweepGeometry BuildSweepGeometry(const raster::Viewport& vp,
                                 const data::RegionSet& regions,
                                 SweepMode mode, bool with_boundary,
                                 bool triangle_pipeline);

}  // namespace urbane::core::internal

#endif  // URBANE_CORE_REGION_SPANS_H_
