#include "core/accurate_join.h"

#include <algorithm>

#include "core/observe.h"
#include "core/raster_targets.h"
#include "raster/rasterizer.h"
#include "util/timer.h"

namespace urbane::core {

StatusOr<std::unique_ptr<AccurateRasterJoin>> AccurateRasterJoin::Create(
    const data::PointTable& points, const data::RegionSet& regions,
    const RasterJoinOptions& options) {
  WallTimer timer;
  URBANE_ASSIGN_OR_RETURN(raster::Viewport viewport,
                          MakeValidatedCanvas(points, regions, options));
  auto executor = std::unique_ptr<AccurateRasterJoin>(new AccurateRasterJoin(
      points, regions, options, viewport));
  executor->BuildPixelIndex();
  executor->morton_ = raster::MortonSplatOrder::Build(
      viewport, points.xs(), points.ys(), points.size());
  executor->sweep_ = internal::BuildSweepGeometry(
      viewport, regions, internal::SweepMode::kAccurate,
      /*with_boundary=*/true, /*triangle_pipeline=*/false);
  executor->stats_.build_seconds = timer.ElapsedSeconds();
  return executor;
}

void AccurateRasterJoin::BuildPixelIndex() {
  const std::size_t num_pixels =
      static_cast<std::size_t>(viewport_.width()) * viewport_.height();
  const std::size_t n = points_.size();
  // Pixel per point through the SIMD kernels (bit-identical to
  // PixelForPoint at every level; kInvalidPixel marks points off canvas).
  std::vector<std::uint32_t> pixel_of_point(n);
  raster::ComputeSplatIndices(viewport_, points_.xs(), points_.ys(), n,
                              pixel_of_point.data());
  std::vector<std::uint32_t> counts(num_pixels, 0);
  std::size_t kept = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (pixel_of_point[i] == raster::kInvalidPixel) continue;
    ++counts[pixel_of_point[i]];
    ++kept;
  }
  pixel_offsets_.assign(num_pixels + 1, 0);
  for (std::size_t p = 0; p < num_pixels; ++p) {
    pixel_offsets_[p + 1] = pixel_offsets_[p] + counts[p];
  }
  pixel_points_.resize(kept);
  std::vector<std::uint32_t> cursor(pixel_offsets_.begin(),
                                    pixel_offsets_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    if (pixel_of_point[i] == raster::kInvalidPixel) continue;
    pixel_points_[cursor[pixel_of_point[i]]++] =
        static_cast<std::uint32_t>(i);
  }
}

StatusOr<QueryResult> AccurateRasterJoin::Execute(
    const AggregationQuery& query) {
  URBANE_RETURN_IF_ERROR(query.Validate());
  if (query.points != &points_ || query.regions != &regions_) {
    return Status::FailedPrecondition(
        "AccurateRasterJoin was created for a different table/region set");
  }
  const double build_seconds = stats_.build_seconds;
  stats_.Reset();
  stats_.build_seconds = build_seconds;
  const ExecutionContext& exec = options_.exec;
  stats_.threads_used = exec.EffectiveThreads();
  obs::TraceSpan exec_span(query.trace, "accurate");
  WallTimer timer;

  WallTimer filter_timer;
  URBANE_ASSIGN_OR_RETURN(
      FilterSelection selection,
      EvaluateFilter(query.filter, points_, exec, query.candidate_ranges));
  stats_.filter_seconds = filter_timer.ElapsedSeconds();
  TracePass(query.trace, exec_span.id(), "filter", stats_.filter_seconds);
  URBANE_RETURN_IF_ERROR(query.CheckControl());
  const float* attr = nullptr;
  if (query.aggregate.NeedsAttribute()) {
    attr = points_.AttributeByName(query.aggregate.attribute);
  }
  WallTimer splat_timer;
  const internal::SplatSchedule schedule =
      internal::BuildSplatSchedule(viewport_, points_, selection, &morton_);
  internal::AggregateTargets& targets = targets_scratch_;
  internal::BuildAggregateTargets(viewport_, schedule, attr,
                                  query.aggregate.kind,
                                  options_.use_float32_targets,
                                  /*need_abs_sum=*/false, targets,
                                  exec.Splat());
  stats_.splat_seconds = splat_timer.ElapsedSeconds();
  TracePass(query.trace, exec_span.id(), "splat", stats_.splat_seconds);
  URBANE_RETURN_IF_ERROR(query.CheckControl());
  stats_.points_scanned = selection.ids.size();

  // Pass 2: regions are partitioned across the pool. Each part's cached
  // boundary pixels are refined exactly (in cached emission order) and its
  // cached interior spans — boundary already cut out at Create — reduce
  // wholesale through the SIMD span kernels. Both walks follow the order of
  // the uncached loops they replace, so results are bit-identical and
  // exactness is per region: partitioning cannot change it.
  WallTimer sweep_timer;
  const std::size_t num_regions = regions_.size();
  QueryResult result;
  result.values.assign(num_regions, 0.0);
  result.counts.assign(num_regions, 0);

  const raster::RasterKernels& kernels = raster::ActiveKernels();
  std::vector<ExecutorStats> worker_stats(exec.EffectiveThreads());
  // Refine time (the exact boundary-pixel tests interleaved with the sweep)
  // is only clocked when someone is observing: the extra clock reads sit
  // inside the per-region loop, and the disabled fast path must stay free.
  const bool measure_refine =
      obs::MetricsEnabled() || query.trace != nullptr;
  ForEachPartition(exec, num_regions, [&](std::size_t part, std::size_t begin,
                                          std::size_t end) {
    ExecutorStats& ws = worker_stats[part];
    std::vector<std::uint32_t> scratch(
        static_cast<std::size_t>(viewport_.width()));
    WallTimer refine_timer;
    for (std::size_t r = begin; r < end; ++r) {
      const internal::RegionSpanCache& cache = sweep_.regions[r];
      const auto& parts = regions_[r].geometry.parts();
      Accumulator acc;
      for (std::size_t p = 0; p < parts.size(); ++p) {
        const geometry::Polygon& region_part = parts[p];

        // --- boundary pixels: exact tests against this part ---
        const std::uint32_t b_begin = cache.boundary_part_offsets[p];
        const std::uint32_t b_end = cache.boundary_part_offsets[p + 1];
        ws.boundary_pixels += b_end - b_begin;
        if (measure_refine) {
          refine_timer.Restart();
        }
        for (std::uint32_t b = b_begin; b < b_end; ++b) {
          const std::uint32_t pixel = cache.boundary[b];
          const std::uint32_t pt_begin = pixel_offsets_[pixel];
          const std::uint32_t pt_end = pixel_offsets_[pixel + 1];
          for (std::uint32_t k = pt_begin; k < pt_end; ++k) {
            const std::uint32_t id = pixel_points_[k];
            if (!selection.bitmap[id]) {
              continue;
            }
            ++ws.pip_tests;
            const geometry::Vec2 pt{points_.x(id), points_.y(id)};
            if (region_part.Contains(pt)) {
              acc.Add(attr ? static_cast<double>(attr[id]) : 1.0);
            }
          }
        }
        if (measure_refine) {
          ws.refine_seconds += refine_timer.ElapsedSeconds();
        }

        // --- interior pixels: wholesale raster reduction over the cached
        //     boundary-free spans ---
        const std::uint32_t s_begin = cache.span_part_offsets[p];
        const std::uint32_t s_end = cache.span_part_offsets[p + 1];
        for (std::uint32_t s = s_begin; s < s_end; ++s) {
          const raster::PixelSpan& span = cache.spans[s];
          ws.simd_fragments +=
              static_cast<std::size_t>(span.x_end - span.x_begin);
          ws.points_bulk += internal::AccumulateSpan(targets, kernels, span,
                                                     acc, scratch.data());
        }
      }
      ws.pixels_touched += cache.pixels;
      ws.tiles_visited += cache.tiles;
      result.values[r] = acc.Finalize(query.aggregate.kind);
      result.counts[r] = acc.count;
    }
  });
  for (const ExecutorStats& ws : worker_stats) {
    stats_.MergeCounters(ws);
    // Workers run concurrently, so the slowest worker's refine time is the
    // wall-clock contribution (summing would exceed sweep_seconds).
    stats_.refine_seconds = std::max(stats_.refine_seconds, ws.refine_seconds);
  }
  stats_.sweep_seconds = sweep_timer.ElapsedSeconds();
  TracePass(query.trace, exec_span.id(), "sweep", stats_.sweep_seconds);
  TracePass(query.trace, exec_span.id(), "refine", stats_.refine_seconds);
  stats_.query_seconds = timer.ElapsedSeconds();
  ObserveExecutorStats("accurate", stats_);
  return result;
}

std::size_t AccurateRasterJoin::MemoryBytes() const {
  return pixel_offsets_.capacity() * sizeof(std::uint32_t) +
         pixel_points_.capacity() * sizeof(std::uint32_t) +
         morton_.MemoryBytes() + sweep_.MemoryBytes();
}

}  // namespace urbane::core
