#include "core/accurate_join.h"

#include <algorithm>

#include "core/observe.h"
#include "core/raster_targets.h"
#include "raster/rasterizer.h"
#include "util/timer.h"

namespace urbane::core {

StatusOr<std::unique_ptr<AccurateRasterJoin>> AccurateRasterJoin::Create(
    const data::PointTable& points, const data::RegionSet& regions,
    const RasterJoinOptions& options) {
  // Reuse the bounded join's canvas validation by constructing one.
  URBANE_ASSIGN_OR_RETURN(std::unique_ptr<BoundedRasterJoin> probe,
                          BoundedRasterJoin::Create(points, regions, options));
  WallTimer timer;
  auto executor = std::unique_ptr<AccurateRasterJoin>(new AccurateRasterJoin(
      points, regions, options, probe->canvas()));
  executor->BuildPixelIndex();
  executor->stats_.build_seconds = timer.ElapsedSeconds();
  return executor;
}

void AccurateRasterJoin::BuildPixelIndex() {
  const std::size_t num_pixels =
      static_cast<std::size_t>(viewport_.width()) * viewport_.height();
  const std::size_t n = points_.size();
  std::vector<std::uint32_t> pixel_of_point(n);
  std::vector<std::uint32_t> counts(num_pixels, 0);
  const std::uint32_t kOutside = std::numeric_limits<std::uint32_t>::max();
  std::size_t kept = 0;
  for (std::size_t i = 0; i < n; ++i) {
    int ix;
    int iy;
    if (!viewport_.PixelForPoint({points_.x(i), points_.y(i)}, ix, iy)) {
      pixel_of_point[i] = kOutside;
      continue;
    }
    const std::uint32_t pixel =
        static_cast<std::uint32_t>(iy) * viewport_.width() + ix;
    pixel_of_point[i] = pixel;
    ++counts[pixel];
    ++kept;
  }
  pixel_offsets_.assign(num_pixels + 1, 0);
  for (std::size_t p = 0; p < num_pixels; ++p) {
    pixel_offsets_[p + 1] = pixel_offsets_[p] + counts[p];
  }
  pixel_points_.resize(kept);
  std::vector<std::uint32_t> cursor(pixel_offsets_.begin(),
                                    pixel_offsets_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    if (pixel_of_point[i] == kOutside) continue;
    pixel_points_[cursor[pixel_of_point[i]]++] =
        static_cast<std::uint32_t>(i);
  }
}

StatusOr<QueryResult> AccurateRasterJoin::Execute(
    const AggregationQuery& query) {
  URBANE_RETURN_IF_ERROR(query.Validate());
  if (query.points != &points_ || query.regions != &regions_) {
    return Status::FailedPrecondition(
        "AccurateRasterJoin was created for a different table/region set");
  }
  const double build_seconds = stats_.build_seconds;
  stats_.Reset();
  stats_.build_seconds = build_seconds;
  const ExecutionContext& exec = options_.exec;
  stats_.threads_used = exec.EffectiveThreads();
  obs::TraceSpan exec_span(query.trace, "accurate");
  WallTimer timer;

  WallTimer filter_timer;
  URBANE_ASSIGN_OR_RETURN(FilterSelection selection,
                          EvaluateFilter(query.filter, points_, exec));
  stats_.filter_seconds = filter_timer.ElapsedSeconds();
  TracePass(query.trace, exec_span.id(), "filter", stats_.filter_seconds);
  URBANE_RETURN_IF_ERROR(query.CheckControl());
  const std::vector<float>* attr = nullptr;
  if (query.aggregate.NeedsAttribute()) {
    attr = points_.AttributeByName(query.aggregate.attribute);
  }
  WallTimer splat_timer;
  internal::AggregateTargets targets = internal::BuildAggregateTargets(
      viewport_, points_, selection.ids, attr, query.aggregate.kind,
      options_.use_float32_targets, /*need_abs_sum=*/false, exec.Splat());
  stats_.splat_seconds = splat_timer.ElapsedSeconds();
  TracePass(query.trace, exec_span.id(), "splat", stats_.splat_seconds);
  URBANE_RETURN_IF_ERROR(query.CheckControl());
  stats_.points_scanned = selection.ids.size();

  // Pass 2: regions are partitioned across the pool; each worker owns a
  // stamp buffer and a boundary-pixel scratch list, so region sweeps share
  // nothing mutable and every region resolves exactly as in the serial
  // sweep (exactness is per region, so partitioning cannot change it).
  WallTimer sweep_timer;
  const std::size_t num_regions = regions_.size();
  QueryResult result;
  result.values.assign(num_regions, 0.0);
  result.counts.assign(num_regions, 0);

  const std::size_t num_pixels =
      static_cast<std::size_t>(viewport_.width()) * viewport_.height();
  std::vector<ExecutorStats> worker_stats(exec.EffectiveThreads());
  // Refine time (the exact boundary-pixel tests interleaved with the sweep)
  // is only clocked when someone is observing: the extra clock reads sit
  // inside the per-region loop, and the disabled fast path must stay free.
  const bool measure_refine =
      obs::MetricsEnabled() || query.trace != nullptr;
  ForEachPartition(exec, num_regions, [&](std::size_t part, std::size_t begin,
                                          std::size_t end) {
    ExecutorStats& ws = worker_stats[part];
    internal::StampBuffer stamp(num_pixels);
    std::vector<std::uint32_t> boundary_pixels;
    WallTimer refine_timer;
    for (std::size_t r = begin; r < end; ++r) {
      Accumulator acc;
      for (const geometry::Polygon& region_part :
           regions_[r].geometry.parts()) {
        // --- boundary pixels: exact tests against this part ---
        stamp.NextScope();
        boundary_pixels.clear();
        raster::RasterizePolygonBoundary(
            viewport_, region_part, [&](int x, int y) {
              const std::size_t idx =
                  static_cast<std::size_t>(y) * viewport_.width() + x;
              if (stamp.MarkOnce(idx)) {
                boundary_pixels.push_back(static_cast<std::uint32_t>(idx));
              }
            });
        ws.boundary_pixels += boundary_pixels.size();
        if (measure_refine) {
          refine_timer.Restart();
        }
        for (const std::uint32_t pixel : boundary_pixels) {
          const std::uint32_t pt_begin = pixel_offsets_[pixel];
          const std::uint32_t pt_end = pixel_offsets_[pixel + 1];
          for (std::uint32_t k = pt_begin; k < pt_end; ++k) {
            const std::uint32_t id = pixel_points_[k];
            if (!selection.bitmap[id]) {
              continue;
            }
            ++ws.pip_tests;
            const geometry::Vec2 p{points_.x(id), points_.y(id)};
            if (region_part.Contains(p)) {
              acc.Add(attr ? static_cast<double>((*attr)[id]) : 1.0);
            }
          }
        }
        if (measure_refine) {
          ws.refine_seconds += refine_timer.ElapsedSeconds();
        }

        // --- interior pixels: wholesale raster reduction ---
        raster::ScanlineFillPolygon(
            viewport_, region_part, [&](int y, int x_begin, int x_end) {
              ws.pixels_touched += static_cast<std::size_t>(x_end - x_begin);
              const std::size_t row_base =
                  static_cast<std::size_t>(y) * viewport_.width();
              for (int x = x_begin; x < x_end; ++x) {
                if (stamp.Marked(row_base + x)) {
                  continue;  // boundary pixel, already handled exactly
                }
                internal::AccumulatePixel(targets, x, y, acc);
                ws.points_bulk += targets.count.at(x, y);
              }
            });
      }
      result.values[r] = acc.Finalize(query.aggregate.kind);
      result.counts[r] = acc.count;
    }
  });
  for (const ExecutorStats& ws : worker_stats) {
    stats_.MergeCounters(ws);
    // Workers run concurrently, so the slowest worker's refine time is the
    // wall-clock contribution (summing would exceed sweep_seconds).
    stats_.refine_seconds = std::max(stats_.refine_seconds, ws.refine_seconds);
  }
  stats_.sweep_seconds = sweep_timer.ElapsedSeconds();
  TracePass(query.trace, exec_span.id(), "sweep", stats_.sweep_seconds);
  TracePass(query.trace, exec_span.id(), "refine", stats_.refine_seconds);
  stats_.query_seconds = timer.ElapsedSeconds();
  ObserveExecutorStats("accurate", stats_);
  return result;
}

std::size_t AccurateRasterJoin::MemoryBytes() const {
  return pixel_offsets_.capacity() * sizeof(std::uint32_t) +
         pixel_points_.capacity() * sizeof(std::uint32_t);
}

}  // namespace urbane::core
