#include "core/accurate_join.h"

#include <algorithm>

#include "core/raster_targets.h"
#include "raster/rasterizer.h"
#include "util/timer.h"

namespace urbane::core {

StatusOr<std::unique_ptr<AccurateRasterJoin>> AccurateRasterJoin::Create(
    const data::PointTable& points, const data::RegionSet& regions,
    const RasterJoinOptions& options) {
  // Reuse the bounded join's canvas validation by constructing one.
  URBANE_ASSIGN_OR_RETURN(std::unique_ptr<BoundedRasterJoin> probe,
                          BoundedRasterJoin::Create(points, regions, options));
  WallTimer timer;
  auto executor = std::unique_ptr<AccurateRasterJoin>(new AccurateRasterJoin(
      points, regions, options, probe->canvas()));
  executor->BuildPixelIndex();
  executor->stamp_.assign(static_cast<std::size_t>(
                              executor->viewport_.width()) *
                              executor->viewport_.height(),
                          0);
  executor->stats_.build_seconds = timer.ElapsedSeconds();
  return executor;
}

void AccurateRasterJoin::BuildPixelIndex() {
  const std::size_t num_pixels =
      static_cast<std::size_t>(viewport_.width()) * viewport_.height();
  const std::size_t n = points_.size();
  std::vector<std::uint32_t> pixel_of_point(n);
  std::vector<std::uint32_t> counts(num_pixels, 0);
  const std::uint32_t kOutside = std::numeric_limits<std::uint32_t>::max();
  std::size_t kept = 0;
  for (std::size_t i = 0; i < n; ++i) {
    int ix;
    int iy;
    if (!viewport_.PixelForPoint({points_.x(i), points_.y(i)}, ix, iy)) {
      pixel_of_point[i] = kOutside;
      continue;
    }
    const std::uint32_t pixel =
        static_cast<std::uint32_t>(iy) * viewport_.width() + ix;
    pixel_of_point[i] = pixel;
    ++counts[pixel];
    ++kept;
  }
  pixel_offsets_.assign(num_pixels + 1, 0);
  for (std::size_t p = 0; p < num_pixels; ++p) {
    pixel_offsets_[p + 1] = pixel_offsets_[p] + counts[p];
  }
  pixel_points_.resize(kept);
  std::vector<std::uint32_t> cursor(pixel_offsets_.begin(),
                                    pixel_offsets_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    if (pixel_of_point[i] == kOutside) continue;
    pixel_points_[cursor[pixel_of_point[i]]++] =
        static_cast<std::uint32_t>(i);
  }
}

StatusOr<QueryResult> AccurateRasterJoin::Execute(
    const AggregationQuery& query) {
  URBANE_RETURN_IF_ERROR(query.Validate());
  if (query.points != &points_ || query.regions != &regions_) {
    return Status::FailedPrecondition(
        "AccurateRasterJoin was created for a different table/region set");
  }
  const double build_seconds = stats_.build_seconds;
  stats_.Reset();
  stats_.build_seconds = build_seconds;
  WallTimer timer;

  URBANE_ASSIGN_OR_RETURN(FilterSelection selection,
                          EvaluateFilter(query.filter, points_));
  const std::vector<float>* attr = nullptr;
  if (query.aggregate.NeedsAttribute()) {
    attr = points_.AttributeByName(query.aggregate.attribute);
  }
  internal::AggregateTargets targets = internal::BuildAggregateTargets(
      viewport_, points_, selection.ids, attr, query.aggregate.kind,
      options_.use_float32_targets, /*need_abs_sum=*/false);
  stats_.points_scanned = selection.ids.size();

  QueryResult result;
  result.values.reserve(regions_.size());
  result.counts.reserve(regions_.size());

  std::vector<std::uint32_t> boundary_pixels;
  for (std::size_t r = 0; r < regions_.size(); ++r) {
    Accumulator acc;
    for (const geometry::Polygon& part : regions_[r].geometry.parts()) {
      // --- boundary pixels: exact tests against this part ---
      ++current_stamp_;
      if (current_stamp_ == 0) {
        std::fill(stamp_.begin(), stamp_.end(), 0);
        current_stamp_ = 1;
      }
      boundary_pixels.clear();
      raster::RasterizePolygonBoundary(
          viewport_, part, [&](int x, int y) {
            const std::size_t idx =
                static_cast<std::size_t>(y) * viewport_.width() + x;
            if (stamp_[idx] == current_stamp_) {
              return;
            }
            stamp_[idx] = current_stamp_;
            boundary_pixels.push_back(static_cast<std::uint32_t>(idx));
          });
      stats_.boundary_pixels += boundary_pixels.size();
      for (const std::uint32_t pixel : boundary_pixels) {
        const std::uint32_t begin = pixel_offsets_[pixel];
        const std::uint32_t end = pixel_offsets_[pixel + 1];
        for (std::uint32_t k = begin; k < end; ++k) {
          const std::uint32_t id = pixel_points_[k];
          if (!selection.bitmap[id]) {
            continue;
          }
          ++stats_.pip_tests;
          const geometry::Vec2 p{points_.x(id), points_.y(id)};
          if (part.Contains(p)) {
            acc.Add(attr ? static_cast<double>((*attr)[id]) : 1.0);
          }
        }
      }

      // --- interior pixels: wholesale raster reduction ---
      raster::ScanlineFillPolygon(
          viewport_, part, [&](int y, int x_begin, int x_end) {
            stats_.pixels_touched +=
                static_cast<std::size_t>(x_end - x_begin);
            const std::size_t row_base =
                static_cast<std::size_t>(y) * viewport_.width();
            for (int x = x_begin; x < x_end; ++x) {
              if (stamp_[row_base + x] == current_stamp_) {
                continue;  // boundary pixel, already handled exactly
              }
              internal::AccumulatePixel(targets, x, y, acc);
              stats_.points_bulk += targets.count.at(x, y);
            }
          });
    }
    result.values.push_back(acc.Finalize(query.aggregate.kind));
    result.counts.push_back(acc.count);
  }
  stats_.query_seconds = timer.ElapsedSeconds();
  return result;
}

std::size_t AccurateRasterJoin::MemoryBytes() const {
  return pixel_offsets_.capacity() * sizeof(std::uint32_t) +
         pixel_points_.capacity() * sizeof(std::uint32_t) +
         stamp_.capacity() * sizeof(std::uint32_t);
}

}  // namespace urbane::core
