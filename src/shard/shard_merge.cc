#include "shard/shard_merge.h"

#include <cmath>

namespace urbane::shard {

core::AggregateKind ShardExecutionKind(core::AggregateKind requested) {
  return requested == core::AggregateKind::kAvg ? core::AggregateKind::kSum
                                                : requested;
}

StatusOr<core::QueryResult> MergeShardPartials(
    core::AggregateKind kind,
    const std::vector<core::QueryResult>& partials) {
  if (partials.empty()) {
    return Status::InvalidArgument("shard merge needs at least one partial");
  }
  const std::size_t regions = partials.front().size();
  bool any_bounds = false;
  for (const core::QueryResult& partial : partials) {
    if (partial.values.size() != regions ||
        partial.counts.size() != regions) {
      return Status::InvalidArgument(
          "shard partials disagree on region count");
    }
    if (!partial.error_bounds.empty() &&
        partial.error_bounds.size() != regions) {
      return Status::InvalidArgument(
          "shard partial carries malformed error bounds");
    }
    any_bounds = any_bounds || !partial.error_bounds.empty();
  }

  core::QueryResult merged;
  merged.values.assign(regions, 0.0);
  merged.counts.assign(regions, 0);
  if (any_bounds) {
    merged.error_bounds.assign(regions, 0.0);
  }

  for (std::size_t r = 0; r < regions; ++r) {
    std::uint64_t count = 0;
    double additive = 0.0;       // COUNT / SUM / AVG-numerator
    double extreme = std::nan("");  // MIN / MAX fold, NaN = nothing yet
    double bound = 0.0;
    // Always in ascending shard order: the merge is a function of the
    // partials alone, never of which shard finished first.
    for (const core::QueryResult& partial : partials) {
      count += partial.counts[r];
      const double v = partial.values[r];
      switch (kind) {
        case core::AggregateKind::kCount:
        case core::AggregateKind::kSum:
        case core::AggregateKind::kAvg:
          additive += v;
          break;
        case core::AggregateKind::kMin:
          // NaN marks "this shard saw no point in this region"; any
          // non-NaN partial (including ±inf) participates in the fold.
          if (!std::isnan(v) && (std::isnan(extreme) || v < extreme)) {
            extreme = v;
          }
          break;
        case core::AggregateKind::kMax:
          if (!std::isnan(v) && (std::isnan(extreme) || v > extreme)) {
            extreme = v;
          }
          break;
      }
      if (!partial.error_bounds.empty()) {
        bound += partial.error_bounds[r];
      }
    }
    switch (kind) {
      case core::AggregateKind::kCount:
      case core::AggregateKind::kSum:
        merged.values[r] = additive;
        break;
      case core::AggregateKind::kAvg:
        // (sum, count) pairs, finalized once — identical structure to
        // Accumulator::Finalize, never an average of averages.
        merged.values[r] =
            count == 0 ? std::nan("")
                       : additive / static_cast<double>(count);
        break;
      case core::AggregateKind::kMin:
      case core::AggregateKind::kMax:
        merged.values[r] = extreme;
        break;
    }
    merged.counts[r] = count;
    if (any_bounds) {
      merged.error_bounds[r] = bound;
    }
  }
  return merged;
}

}  // namespace urbane::shard
