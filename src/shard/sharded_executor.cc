#include "shard/sharded_executor.h"

#include <atomic>
#include <utility>

#include "core/observe.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "shard/shard_merge.h"
#include "util/timer.h"

namespace urbane::shard {

namespace {

/// The per-shard inner context: always serial. Shard-level concurrency is
/// the only parallelism in a sharded pass, so the shard partials — and
/// therefore the merged result — depend on the shard plan alone, never on
/// how many workers the pool happens to have.
core::ExecutionContext SerialContext() { return core::ExecutionContext(); }

Status ValidateExplicitShards(const std::vector<core::RowRange>& shards,
                              std::uint64_t rows) {
  std::uint64_t expect = 0;
  for (const core::RowRange& s : shards) {
    if (s.begin != expect || s.end < s.begin) {
      return Status::InvalidArgument(
          "explicit shards must tile the row space in ascending order");
    }
    expect = s.end;
  }
  if (expect != rows) {
    return Status::InvalidArgument("explicit shards do not cover all rows");
  }
  return Status::OK();
}

}  // namespace

StatusOr<std::unique_ptr<ShardedExecutor>> ShardedExecutor::Create(
    const data::PointTable& points, const data::RegionSet& regions,
    core::ExecutionMethod method, const ShardedExecutorOptions& options,
    const core::RasterJoinOptions& raster_options,
    const core::IndexJoinOptions& index_options) {
  std::size_t m = options.num_shards == 0 ? 1 : options.num_shards;
  if (!options.explicit_shards.empty()) {
    m = options.explicit_shards.size();
  }

  WallTimer timer;
  std::unique_ptr<ShardedExecutor> sharded(
      new ShardedExecutor(points, regions, method, options));
  sharded->shards_.reserve(m);
  for (std::size_t s = 0; s < m; ++s) {
    switch (method) {
      case core::ExecutionMethod::kScan: {
        auto inner = core::ScanJoin::Create(points, regions, SerialContext());
        if (!inner.ok()) return inner.status();
        sharded->shards_.push_back(std::move(inner).value());
        break;
      }
      case core::ExecutionMethod::kIndexJoin: {
        core::IndexJoinOptions opts = index_options;
        opts.exec = SerialContext();
        auto inner = core::IndexJoin::Create(points, regions, opts);
        if (!inner.ok()) return inner.status();
        sharded->shards_.push_back(std::move(inner).value());
        break;
      }
      case core::ExecutionMethod::kBoundedRaster: {
        core::RasterJoinOptions opts = raster_options;
        opts.exec = SerialContext();
        auto inner = core::BoundedRasterJoin::Create(points, regions, opts);
        if (!inner.ok()) return inner.status();
        sharded->bounded_.push_back(inner.value().get());
        sharded->shards_.push_back(std::move(inner).value());
        break;
      }
      case core::ExecutionMethod::kAccurateRaster: {
        core::RasterJoinOptions opts = raster_options;
        opts.exec = SerialContext();
        auto inner = core::AccurateRasterJoin::Create(points, regions, opts);
        if (!inner.ok()) return inner.status();
        sharded->shards_.push_back(std::move(inner).value());
        break;
      }
    }
  }
  sharded->stats_.build_seconds = timer.ElapsedSeconds();
  return sharded;
}

std::string ShardedExecutor::name() const {
  return "sharded-" + (shards_.empty() ? std::string("?")
                                       : shards_.front()->name());
}

bool ShardedExecutor::exact() const {
  return shards_.empty() ? true : shards_.front()->exact();
}

StatusOr<core::QueryResult> ShardedExecutor::ExecuteShard(
    const core::AggregationQuery& query, std::size_t s,
    const core::RowRangeSet& candidates) {
  if (options_.fault_injector) {
    URBANE_RETURN_IF_ERROR(options_.fault_injector(s));
  }
  URBANE_RETURN_IF_ERROR(query.CheckControl());

  core::AggregationQuery shard_query = query;
  shard_query.trace = nullptr;    // spans come from the coordinator
  shard_query.profile = nullptr;  // the coordinator owns the breakdown
  shard_query.candidate_ranges = &candidates;
  shard_query.aggregate.kind = ShardExecutionKind(query.aggregate.kind);

  // Bounded-raster AVG with error bounds: the merged AVG bound must be the
  // boundary point count (aggregate.h), but a SUM pass bounds Σ|attr|.
  // Batch SUM and COUNT through one splat+sweep and graft the COUNT pass's
  // bounds (and counts) onto the SUM partial.
  if (query.aggregate.kind == core::AggregateKind::kAvg &&
      method_ == core::ExecutionMethod::kBoundedRaster) {
    core::AggregationQuery count_query = shard_query;
    count_query.aggregate.kind = core::AggregateKind::kCount;
    count_query.aggregate.attribute.clear();
    auto batch = bounded_[s]->ExecuteBatch({shard_query, count_query});
    if (!batch.ok()) return batch.status();
    std::vector<core::QueryResult>& results = batch.value();
    core::QueryResult partial = std::move(results[0]);
    partial.counts = std::move(results[1].counts);
    partial.error_bounds = std::move(results[1].error_bounds);
    return partial;
  }
  return shards_[s]->Execute(shard_query);
}

StatusOr<core::QueryResult> ShardedExecutor::Execute(
    const core::AggregationQuery& query) {
  URBANE_RETURN_IF_ERROR(query.Validate());

  const std::uint64_t rows = points_.size();
  ShardPlan plan;
  if (!options_.explicit_shards.empty()) {
    URBANE_RETURN_IF_ERROR(
        ValidateExplicitShards(options_.explicit_shards, rows));
    plan.shards = options_.explicit_shards;
  } else {
    plan = MakeShardPlan(rows, shards_.size(), options_.align_rows);
  }
  if (plan.size() != shards_.size()) {
    return Status::Internal("shard plan size disagrees with executor count");
  }
  const std::size_t m = plan.size();

  const double build_seconds = stats_.build_seconds;
  stats_.Reset();
  stats_.build_seconds = build_seconds;
  stats_.threads_used = m;

  obs::TraceSpan exec_span(query.trace, "sharded");
  if (query.trace != nullptr) {
    exec_span.Tag("shards", std::to_string(m));
    exec_span.Tag("method", shards_.empty() ? "?" : shards_.front()->name());
  }
  const bool metrics = obs::MetricsEnabled();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  if (metrics) {
    registry.GetCounter("shard.queries").Add(1);
    registry.GetCounter("shard.fanout").Add(m);
    registry.GetGauge("shard.inflight").Add(static_cast<double>(m));
  }
  WallTimer timer;

  // Candidate sets must outlive the scatter; one slot per shard, fixed
  // before any task runs.
  std::vector<core::RowRangeSet> candidates;
  candidates.reserve(m);
  std::size_t empty_shards = 0;
  for (std::size_t s = 0; s < m; ++s) {
    candidates.push_back(
        IntersectCandidates(query.candidate_ranges, plan.shards[s]));
    if (candidates.back().empty()) ++empty_shards;
  }

  // Scatter. Each task writes ONLY its own slot; the coordinator reads the
  // slots after Batch::Wait (the pool's completion acts as the fence).
  // Failure latches are per-slot too, so the first-failing *shard index* —
  // not the first-failing completion — decides the reported status.
  std::vector<core::QueryResult> partials(m);
  std::vector<Status> statuses(m, Status::OK());
  // Per-shard wall/CPU samples for the profile breakdown. Each task writes
  // only its own slot (same fence discipline as `partials`); empty unless
  // the request carries a profile, so the unprofiled path never touches the
  // thread-CPU clock.
  const bool profiling = query.profile != nullptr;
  std::vector<double> shard_wall(profiling ? m : 0, 0.0);
  std::vector<double> shard_cpu(profiling ? m : 0, 0.0);
  WallTimer scatter_timer;
  const bool inline_scatter = options_.serial_scatter || m == 1;
  auto run_shard = [&](std::size_t s) {
    WallTimer shard_timer;
    const double cpu_begin = profiling ? obs::ThreadCpuSeconds() : 0.0;
    StatusOr<core::QueryResult> partial =
        ExecuteShard(query, s, candidates[s]);
    if (profiling) {
      shard_cpu[s] = obs::ThreadCpuSeconds() - cpu_begin;
      shard_wall[s] = shard_timer.ElapsedSeconds();
    }
    if (partial.ok()) {
      // The hook gates *successful* publishes only: a failed shard has no
      // partial to hold back, and the fault suite counts hook calls to
      // prove the healthy shards really did finish before being discarded.
      if (options_.completion_hook) {
        options_.completion_hook(s);
      }
      partials[s] = std::move(partial).value();
    } else {
      statuses[s] = partial.status();
    }
  };
  if (inline_scatter) {
    for (std::size_t s = 0; s < m; ++s) run_shard(s);
  } else {
    ThreadPool* pool =
        options_.pool != nullptr ? options_.pool : DefaultThreadPool();
    ThreadPool::Batch batch = pool->CreateBatch();
    for (std::size_t s = 0; s < m; ++s) {
      batch.Submit([&run_shard, s] { run_shard(s); });
    }
    batch.Wait();
  }
  const double scatter_seconds = scatter_timer.ElapsedSeconds();
  core::TracePass(query.trace, exec_span.id(), "scatter", scatter_seconds);

  if (metrics) {
    registry.GetGauge("shard.inflight").Add(-static_cast<double>(m));
    registry.GetCounter("shard.empty_shards").Add(empty_shards);
  }

  // Gather: any shard failure fails the whole query — no partial merge,
  // ever. Ties between shards break by shard index for reproducibility.
  for (std::size_t s = 0; s < m; ++s) {
    if (!statuses[s].ok()) {
      if (metrics) registry.GetCounter("shard.failures").Add(1);
      return statuses[s];
    }
    stats_.MergeCounters(shards_[s]->stats());
  }
  URBANE_RETURN_IF_ERROR(query.CheckControl());

  WallTimer merge_timer;
  StatusOr<core::QueryResult> merged =
      MergeShardPartials(query.aggregate.kind, partials);
  if (!merged.ok()) {
    if (metrics) registry.GetCounter("shard.failures").Add(1);
    return merged.status();
  }
  stats_.reduce_seconds = merge_timer.ElapsedSeconds();
  core::TracePass(query.trace, exec_span.id(), "merge", stats_.reduce_seconds);

  // Profile breakdown, in shard-index order (never completion order) so the
  // table is reproducible at a fixed shard count. Pass costs come from the
  // per-shard inner executors, whose counters MergeCounters summed above —
  // the per-shard rows therefore sum exactly to the executor totals.
  if (profiling) {
    query.profile->scatter_seconds = scatter_seconds;
    query.profile->merge_seconds = stats_.reduce_seconds;
    query.profile->shards.clear();
    query.profile->shards.reserve(m);
    for (std::size_t s = 0; s < m; ++s) {
      obs::ShardProfileEntry entry;
      entry.index = s;
      entry.rows_begin = plan.shards[s].begin;
      entry.rows_end = plan.shards[s].end;
      entry.candidate_rows = candidates[s].total_rows();
      entry.wall_seconds = shard_wall[s];
      entry.cpu_seconds = shard_cpu[s];
      core::FillProfilePassCosts(shards_[s]->stats(), &entry.costs);
      query.profile->shards.push_back(entry);
    }
  }

  stats_.query_seconds = timer.ElapsedSeconds();
  if (metrics) {
    registry.GetHistogram("shard.merge_seconds").Observe(stats_.reduce_seconds);
  }
  core::ObserveExecutorStats("sharded", stats_);
  return merged;
}

}  // namespace urbane::shard
