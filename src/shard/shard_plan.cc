#include "shard/shard_plan.h"

#include <algorithm>

namespace urbane::shard {

ShardPlan MakeShardPlan(std::uint64_t total_rows, std::size_t num_shards,
                        std::uint64_t align_rows) {
  if (num_shards == 0) num_shards = 1;
  ShardPlan plan;
  plan.shards.reserve(num_shards);
  const std::uint64_t m = static_cast<std::uint64_t>(num_shards);
  std::uint64_t prev_end = 0;
  for (std::uint64_t s = 0; s < m; ++s) {
    // Ideal boundary of shard s's end, before alignment: ceil-balanced so
    // shard sizes differ by at most one row.
    std::uint64_t end = s + 1 == m
                            ? total_rows
                            : (total_rows * (s + 1)) / m;
    if (align_rows > 0 && s + 1 < m) {
      end = (end / align_rows) * align_rows;
    }
    // Boundaries must stay monotone after snapping; a shard squeezed to
    // nothing stays in the plan as an empty range.
    end = std::max(end, prev_end);
    end = std::min(end, total_rows);
    plan.shards.push_back(core::RowRange{prev_end, end});
    prev_end = end;
  }
  return plan;
}

core::RowRangeSet IntersectCandidates(const core::RowRangeSet* candidates,
                                      core::RowRange shard) {
  std::vector<core::RowRange> out;
  if (candidates == nullptr) {
    if (shard.begin < shard.end) {
      out.push_back(shard);
    }
    return core::RowRangeSet(std::move(out));
  }
  for (const core::RowRange& r : candidates->ranges()) {
    const std::uint64_t lo = std::max(r.begin, shard.begin);
    const std::uint64_t hi = std::min(r.end, shard.end);
    if (lo < hi) {
      out.push_back(core::RowRange{lo, hi});
    }
  }
  return core::RowRangeSet(std::move(out));
}

}  // namespace urbane::shard
