#ifndef URBANE_SHARD_SHARD_PLAN_H_
#define URBANE_SHARD_SHARD_PLAN_H_

#include <cstdint>
#include <vector>

#include "core/row_range.h"

namespace urbane::shard {

/// How a dataset's row space is split into independently-executable shards.
///
/// Shards are contiguous half-open row ranges that tile [0, rows) exactly:
/// every row belongs to exactly one shard, in ascending order. Over a UST1
/// block store the rows are Morton-clustered (store_writer sorts each batch
/// by raster::MortonPixelKey), so contiguous row ranges ARE spatial shards —
/// a shard owns a run of Z-order, i.e. a set of spatial tiles — and
/// zone-map pruning composes with them per block. Over an in-memory table
/// the split is positional; the merge contract (see shard_merge.h) does not
/// depend on the spatial quality of the partition, only on its disjointness.
struct ShardPlan {
  std::vector<core::RowRange> shards;

  std::size_t size() const { return shards.size(); }
};

/// Builds an M-way plan over [0, total_rows).
///
/// `align_rows`, when non-zero, snaps every interior boundary down to a
/// multiple of it (the store's block_rows): no block ever straddles two
/// shards, so per-shard zone-map pruning eliminates whole blocks and the
/// BlockCursor of one shard never touches another shard's blocks. Snapping
/// can make leading shards empty when total_rows / M < align_rows; empty
/// shards are kept (they produce well-formed empty partials) so the plan
/// always has exactly `num_shards` entries for `num_shards >= 1`.
///
/// `num_shards == 0` is treated as 1. The plan is a pure function of
/// (total_rows, num_shards, align_rows) — no scheduling input — which is
/// what makes sharded execution reproducible for a fixed shard count.
ShardPlan MakeShardPlan(std::uint64_t total_rows, std::size_t num_shards,
                        std::uint64_t align_rows = 0);

/// Restriction of a candidate set to one shard: the sorted, coalesced
/// intersection of `candidates` (null = every row) with `shard`. This is
/// what a shard's executor receives as AggregationQuery::candidate_ranges —
/// pruning and sharding compose, and a fully-pruned shard yields an empty
/// set (the executor then visits no rows and returns an empty partial).
core::RowRangeSet IntersectCandidates(const core::RowRangeSet* candidates,
                                      core::RowRange shard);

}  // namespace urbane::shard

#endif  // URBANE_SHARD_SHARD_PLAN_H_
