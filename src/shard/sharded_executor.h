#ifndef URBANE_SHARD_SHARDED_EXECUTOR_H_
#define URBANE_SHARD_SHARDED_EXECUTOR_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/accurate_join.h"
#include "core/execution_context.h"
#include "core/index_join.h"
#include "core/planner.h"
#include "core/query.h"
#include "core/raster_join.h"
#include "core/scan_join.h"
#include "shard/shard_plan.h"

namespace urbane::shard {

/// Configuration of one sharded executor.
struct ShardedExecutorOptions {
  /// Shard count M. 0 and 1 both mean "one shard" (still the scatter-gather
  /// code path, so M=1 is the degenerate conformance case).
  std::size_t num_shards = 1;

  /// Interior shard boundaries snap down to multiples of this (the store's
  /// block_rows); 0 = no alignment. See MakeShardPlan.
  std::uint64_t align_rows = 0;

  /// Pool the shard passes scatter onto. Null uses DefaultThreadPool().
  /// Pool size changes scheduling only, never results: each shard's pass is
  /// serial inside, partials land in per-shard slots, and the gather merges
  /// slots in shard-index order after every shard finished.
  ThreadPool* pool = nullptr;

  /// When true (or when num_shards == 1) shards run inline on the calling
  /// thread, in shard order — the fully deterministic schedule the
  /// conformance suite uses as one endpoint of the interleaving space.
  bool serial_scatter = false;

  /// Test-only plan override: when non-empty, used instead of
  /// MakeShardPlan. Ranges must be disjoint, ascending, and tile
  /// [0, rows) (validated at Execute). Enables skewed / empty /
  /// single-point shard partitions in the property suite.
  std::vector<core::RowRange> explicit_shards;

  /// Test-only fault injection: called per shard before it executes; a
  /// non-OK status makes that shard fail. The whole query must then fail
  /// with that status — never a partial merge.
  std::function<Status(std::size_t shard)> fault_injector;

  /// Test-only completion hook: called on the shard's worker thread after
  /// its partial is computed successfully, before it is published to the
  /// gather slot (failed shards publish their status without a hook call).
  /// The adversarial-interleaving harness blocks here to force shard
  /// completions into hostile orders; the fault suite counts calls to
  /// prove healthy shards finished and were still discarded.
  std::function<void(std::size_t shard)> completion_hook;
};

/// Scatter-gather execution of one query over M spatial/temporal shards.
///
/// Scatter: the row space is split by ShardPlan; shard s executes a private
/// instance of the underlying executor (scan/index/bounded/accurate) with
/// `candidate_ranges` restricted to its rows ∩ the query's pruned ranges,
/// serially within the shard, concurrently across shards on the pool.
/// Gather: partials are published into per-shard slots; after all shards
/// finish, MergeShardPartials folds the slots in ascending shard index —
/// canvas-free partial merge (COUNT/SUM additive, AVG by (sum, count),
/// MIN/MAX by NaN-aware extrema, error bounds additive).
///
/// Why private executor instances: executors keep per-query stats and
/// scratch (render targets, stamp buffers), so one instance serves one
/// in-flight query. M instances buy shard independence today and are the
/// process-per-shard seam later (ROADMAP). The build cost (R-tree / grid /
/// splat order per instance) is paid once at Create and amortized across
/// queries, exactly like the unsharded executors.
///
/// Determinism contract (DESIGN.md §11): for a fixed shard count the result
/// is reproducible on any pool size and any completion order. COUNT and
/// MIN/MAX are bit-identical to the unsharded executor at every M; float
/// SUM/AVG merge per-shard partial sums in shard order, so they are
/// bit-identical whenever double addition over the data is exact (the
/// conformance suite constructs such data to pin the merge order) and
/// within summation-reorder noise otherwise — the same contract
/// ExecutionContext documents for thread partitioning.
class ShardedExecutor : public core::SpatialAggregationExecutor {
 public:
  /// Builds M per-shard instances of `method`'s executor. The raster/index
  /// options are taken as configured EXCEPT their ExecutionContext, which
  /// is forced serial — parallelism lives at the shard level.
  static StatusOr<std::unique_ptr<ShardedExecutor>> Create(
      const data::PointTable& points, const data::RegionSet& regions,
      core::ExecutionMethod method, const ShardedExecutorOptions& options,
      const core::RasterJoinOptions& raster_options =
          core::RasterJoinOptions(),
      const core::IndexJoinOptions& index_options =
          core::IndexJoinOptions());

  StatusOr<core::QueryResult> Execute(
      const core::AggregationQuery& query) override;

  std::string name() const override;
  bool exact() const override;
  const core::ExecutorStats& stats() const override { return stats_; }

  core::ExecutionMethod method() const { return method_; }
  std::size_t num_shards() const { return shards_.size(); }

 private:
  ShardedExecutor(const data::PointTable& points,
                  const data::RegionSet& regions,
                  core::ExecutionMethod method,
                  ShardedExecutorOptions options)
      : points_(points),
        regions_(regions),
        method_(method),
        options_(std::move(options)) {}

  /// Runs shard `s` of `query` (already validated). The partial result
  /// carries ShardExecutionKind(aggregate); for bounded-raster AVG it is a
  /// SUM result whose error bounds are COUNT-semantics boundary counts.
  StatusOr<core::QueryResult> ExecuteShard(
      const core::AggregationQuery& query, std::size_t s,
      const core::RowRangeSet& candidates);

  const data::PointTable& points_;
  const data::RegionSet& regions_;
  const core::ExecutionMethod method_;
  const ShardedExecutorOptions options_;

  /// One underlying executor per shard (all built over the full table; the
  /// per-shard restriction is purely candidate_ranges).
  std::vector<std::unique_ptr<core::SpatialAggregationExecutor>> shards_;
  /// Concrete bounded-raster handles (same objects as shards_) for the
  /// AVG batch path; empty for the other methods.
  std::vector<core::BoundedRasterJoin*> bounded_;

  core::ExecutorStats stats_;
};

}  // namespace urbane::shard

#endif  // URBANE_SHARD_SHARDED_EXECUTOR_H_
