#ifndef URBANE_SHARD_SHARD_MERGE_H_
#define URBANE_SHARD_SHARD_MERGE_H_

#include <vector>

#include "core/aggregate.h"
#include "util/status.h"

namespace urbane::shard {

/// The aggregate a shard actually executes for a requested aggregate.
///
/// Everything maps to itself except AVG: a per-shard average cannot be
/// merged (average-of-averages is wrong whenever shard sizes differ — see
/// the unit counterexample in tests/shard/shard_merge_test.cc), so each
/// shard runs SUM and the merge divides the summed (sum, count) pairs once,
/// exactly like Accumulator::Finalize does for the unsharded engine.
core::AggregateKind ShardExecutionKind(core::AggregateKind requested);

/// Merges per-shard partial results into the final QueryResult, in
/// ascending shard order. `partials[s]` must be the result of running shard
/// s with aggregate `ShardExecutionKind(kind)` over a disjoint row subset;
/// all partials must have the same number of regions.
///
/// Merge semantics per aggregate (the shard-merge contract):
///   COUNT  value and count add (exact integer arithmetic in double).
///   SUM    values add; counts add.
///   AVG    partials carry SUM results; merged value = Σsum / Σcount,
///          NaN when Σcount == 0 (matching Accumulator::Finalize).
///   MIN    NaN-aware minimum: a NaN partial value means "shard saw no
///          point in this region" and is skipped; all-NaN stays NaN.
///   MAX    symmetric NaN-aware maximum.
///
/// Error bounds (bounded raster only) are additive for every aggregate:
/// each point lives in exactly one shard, so per-shard boundary-point
/// counts / |attribute| sums partition the serial bound. Partials with no
/// bounds contribute zero; the merged result carries bounds iff any partial
/// did. For AVG the caller must supply COUNT-semantics bounds in the SUM
/// partials' error_bounds (the sharded bounded-raster path batches SUM and
/// COUNT in one splat+sweep for exactly this reason).
///
/// Because shard partials are combined in shard-index order — never in
/// completion order — the merged result is a pure function of the partials:
/// the adversarial-interleaving suite exploits this to prove merge-order
/// independence.
StatusOr<core::QueryResult> MergeShardPartials(
    core::AggregateKind kind,
    const std::vector<core::QueryResult>& partials);

}  // namespace urbane::shard

#endif  // URBANE_SHARD_SHARD_MERGE_H_
