#include "geometry/clip.h"

#include <array>

namespace urbane::geometry {

namespace {

enum class Edge { kLeft, kRight, kBottom, kTop };

bool Inside(const Vec2& p, Edge edge, const BoundingBox& box) {
  switch (edge) {
    case Edge::kLeft:
      return p.x >= box.min_x;
    case Edge::kRight:
      return p.x <= box.max_x;
    case Edge::kBottom:
      return p.y >= box.min_y;
    case Edge::kTop:
      return p.y <= box.max_y;
  }
  return false;
}

Vec2 IntersectEdge(const Vec2& a, const Vec2& b, Edge edge,
                   const BoundingBox& box) {
  double t = 0.0;
  switch (edge) {
    case Edge::kLeft:
      t = (box.min_x - a.x) / (b.x - a.x);
      break;
    case Edge::kRight:
      t = (box.max_x - a.x) / (b.x - a.x);
      break;
    case Edge::kBottom:
      t = (box.min_y - a.y) / (b.y - a.y);
      break;
    case Edge::kTop:
      t = (box.max_y - a.y) / (b.y - a.y);
      break;
  }
  return a + (b - a) * t;
}

}  // namespace

Ring ClipRingToBox(const Ring& ring, const BoundingBox& box) {
  static constexpr std::array<Edge, 4> kEdges = {Edge::kLeft, Edge::kRight,
                                                 Edge::kBottom, Edge::kTop};
  Ring current = ring;
  for (const Edge edge : kEdges) {
    if (current.empty()) break;
    Ring next;
    next.reserve(current.size() + 4);
    const std::size_t n = current.size();
    for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
      const Vec2& prev = current[j];
      const Vec2& cur = current[i];
      const bool prev_in = Inside(prev, edge, box);
      const bool cur_in = Inside(cur, edge, box);
      if (cur_in) {
        if (!prev_in) {
          next.push_back(IntersectEdge(prev, cur, edge, box));
        }
        next.push_back(cur);
      } else if (prev_in) {
        next.push_back(IntersectEdge(prev, cur, edge, box));
      }
    }
    current = std::move(next);
  }
  if (current.size() < 3) {
    current.clear();
  }
  return current;
}

Polygon ClipPolygonToBox(const Polygon& polygon, const BoundingBox& box) {
  Ring outer = ClipRingToBox(polygon.outer(), box);
  if (outer.empty()) {
    return Polygon();
  }
  Polygon out(std::move(outer));
  for (const Ring& hole : polygon.holes()) {
    Ring clipped = ClipRingToBox(hole, box);
    if (clipped.size() >= 3 && RingSignedArea(clipped) != 0.0) {
      out.add_hole(std::move(clipped));
    }
  }
  return out;
}

bool ClipSegmentToBox(const BoundingBox& box, Vec2& a, Vec2& b) {
  double t0 = 0.0;
  double t1 = 1.0;
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  const double p[4] = {-dx, dx, -dy, dy};
  const double q[4] = {a.x - box.min_x, box.max_x - a.x, a.y - box.min_y,
                       box.max_y - a.y};
  for (int i = 0; i < 4; ++i) {
    if (p[i] == 0.0) {
      if (q[i] < 0.0) {
        return false;  // parallel and outside
      }
      continue;
    }
    const double r = q[i] / p[i];
    if (p[i] < 0.0) {
      if (r > t1) return false;
      if (r > t0) t0 = r;
    } else {
      if (r < t0) return false;
      if (r < t1) t1 = r;
    }
  }
  const Vec2 original_a = a;
  a = original_a + Vec2{dx, dy} * t0;
  b = original_a + Vec2{dx, dy} * t1;
  return true;
}

bool SegmentIntersectsBox(const BoundingBox& box, const Vec2& a,
                          const Vec2& b) {
  Vec2 ca = a;
  Vec2 cb = b;
  return ClipSegmentToBox(box, ca, cb);
}

bool PolygonBoundaryIntersectsBox(const Polygon& polygon,
                                  const BoundingBox& box) {
  auto ring_hits = [&](const Ring& ring) {
    const std::size_t n = ring.size();
    for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
      if (SegmentIntersectsBox(box, ring[j], ring[i])) {
        return true;
      }
    }
    return false;
  };
  if (ring_hits(polygon.outer())) return true;
  for (const Ring& hole : polygon.holes()) {
    if (ring_hits(hole)) return true;
  }
  return false;
}

bool PolygonContainsBox(const Polygon& polygon, const BoundingBox& box) {
  // No ring edge touches the box, so the box is uniformly inside or outside
  // the polygon; any interior sample decides which.
  if (PolygonBoundaryIntersectsBox(polygon, box)) {
    return false;
  }
  return polygon.Contains(box.Center());
}

}  // namespace urbane::geometry
