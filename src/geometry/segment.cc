#include "geometry/segment.h"

#include <algorithm>
#include <cmath>

namespace urbane::geometry {

bool PointOnSegment(const Vec2& p, const Segment& s) {
  if (Orient2d(s.a, s.b, p) != 0.0) {
    return false;
  }
  return p.x >= std::min(s.a.x, s.b.x) && p.x <= std::max(s.a.x, s.b.x) &&
         p.y >= std::min(s.a.y, s.b.y) && p.y <= std::max(s.a.y, s.b.y);
}

bool SegmentsIntersect(const Segment& s1, const Segment& s2) {
  const double d1 = Orient2d(s2.a, s2.b, s1.a);
  const double d2 = Orient2d(s2.a, s2.b, s1.b);
  const double d3 = Orient2d(s1.a, s1.b, s2.a);
  const double d4 = Orient2d(s1.a, s1.b, s2.b);

  if (((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
      ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))) {
    return true;
  }
  if (d1 == 0 && PointOnSegment(s1.a, s2)) return true;
  if (d2 == 0 && PointOnSegment(s1.b, s2)) return true;
  if (d3 == 0 && PointOnSegment(s2.a, s1)) return true;
  if (d4 == 0 && PointOnSegment(s2.b, s1)) return true;
  return false;
}

std::optional<Vec2> SegmentIntersectionPoint(const Segment& s1,
                                             const Segment& s2) {
  const Vec2 r = s1.b - s1.a;
  const Vec2 s = s2.b - s2.a;
  const double denom = r.Cross(s);
  if (denom == 0.0) {
    return std::nullopt;  // parallel or collinear
  }
  const Vec2 qp = s2.a - s1.a;
  const double t = qp.Cross(s) / denom;
  const double u = qp.Cross(r) / denom;
  if (t < 0.0 || t > 1.0 || u < 0.0 || u > 1.0) {
    return std::nullopt;
  }
  return s1.a + r * t;
}

double SquaredDistancePointToSegment(const Vec2& p, const Segment& s) {
  const Vec2 d = s.b - s.a;
  const double len2 = d.SquaredNorm();
  if (len2 == 0.0) {
    return p.SquaredDistanceTo(s.a);
  }
  const double t = std::clamp((p - s.a).Dot(d) / len2, 0.0, 1.0);
  const Vec2 projection = s.a + d * t;
  return p.SquaredDistanceTo(projection);
}

double DistancePointToSegment(const Vec2& p, const Segment& s) {
  return std::sqrt(SquaredDistancePointToSegment(p, s));
}

}  // namespace urbane::geometry
