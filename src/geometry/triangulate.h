#ifndef URBANE_GEOMETRY_TRIANGULATE_H_
#define URBANE_GEOMETRY_TRIANGULATE_H_

#include <vector>

#include "geometry/point.h"
#include "geometry/polygon.h"
#include "util/status.h"

namespace urbane::geometry {

/// One output triangle (counter-clockwise).
struct Triangle {
  Vec2 a;
  Vec2 b;
  Vec2 c;

  double Area() const { return 0.5 * std::fabs(Orient2d(a, b, c)); }
  bool Contains(const Vec2& p) const;
};

/// Ear-clipping triangulation of a simple polygon; holes are eliminated
/// first by bridging each hole to the outer ring (earcut-style), so the
/// result covers exactly polygon-minus-holes.
///
/// This feeds the triangle path of the raster pipeline, mirroring how the
/// GPU implementation of Raster Join tessellates polygons before rendering.
/// Returns InvalidArgument for degenerate inputs (< 3 vertices, zero area).
StatusOr<std::vector<Triangle>> TriangulatePolygon(const Polygon& polygon);

/// Triangulates a hole-free ring. The ring may be in either orientation.
StatusOr<std::vector<Triangle>> TriangulateRing(const Ring& ring);

/// Sum of triangle areas — equal to Polygon::Area() for valid inputs (the
/// property the tests enforce).
double TotalArea(const std::vector<Triangle>& triangles);

}  // namespace urbane::geometry

#endif  // URBANE_GEOMETRY_TRIANGULATE_H_
