#ifndef URBANE_GEOMETRY_SEGMENT_H_
#define URBANE_GEOMETRY_SEGMENT_H_

#include <optional>

#include "geometry/point.h"

namespace urbane::geometry {

/// Closed line segment between two endpoints.
struct Segment {
  Vec2 a;
  Vec2 b;

  double Length() const { return a.DistanceTo(b); }
};

/// True if point `p` lies on segment `s` (within exact arithmetic of the
/// doubles involved; collinearity uses an exact-zero cross product).
bool PointOnSegment(const Vec2& p, const Segment& s);

/// True if the closed segments intersect (including touching endpoints and
/// collinear overlap).
bool SegmentsIntersect(const Segment& s1, const Segment& s2);

/// Proper intersection point of two segments if they cross at a single
/// point (excluding collinear overlap, where no single point exists).
std::optional<Vec2> SegmentIntersectionPoint(const Segment& s1,
                                             const Segment& s2);

/// Euclidean distance from `p` to the closed segment `s`.
double DistancePointToSegment(const Vec2& p, const Segment& s);

/// Squared version (avoids the sqrt in hot loops).
double SquaredDistancePointToSegment(const Vec2& p, const Segment& s);

}  // namespace urbane::geometry

#endif  // URBANE_GEOMETRY_SEGMENT_H_
