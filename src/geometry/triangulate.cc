#include "geometry/triangulate.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geometry/segment.h"

namespace urbane::geometry {

bool Triangle::Contains(const Vec2& p) const {
  const double d1 = Orient2d(a, b, p);
  const double d2 = Orient2d(b, c, p);
  const double d3 = Orient2d(c, a, p);
  const bool has_neg = (d1 < 0) || (d2 < 0) || (d3 < 0);
  const bool has_pos = (d1 > 0) || (d2 > 0) || (d3 > 0);
  return !(has_neg && has_pos);
}

namespace {

// Strict interior test (points on the triangle edge do not count); used to
// reject ears that would swallow another vertex.
bool StrictlyInsideTriangle(const Vec2& a, const Vec2& b, const Vec2& c,
                            const Vec2& p) {
  return Orient2d(a, b, p) > 0 && Orient2d(b, c, p) > 0 &&
         Orient2d(c, a, p) > 0;
}

// Ear-clips a CCW ring given as an index chain into `pts`.
std::vector<Triangle> EarClipChain(const std::vector<Vec2>& pts) {
  std::vector<Triangle> triangles;
  const std::size_t n = pts.size();
  if (n < 3) return triangles;
  triangles.reserve(n - 2);

  std::vector<std::size_t> chain(n);
  for (std::size_t i = 0; i < n; ++i) chain[i] = i;

  std::size_t guard = 0;
  const std::size_t max_steps = 2 * n * n + 16;
  while (chain.size() > 3 && guard++ < max_steps) {
    bool clipped = false;
    const std::size_t m = chain.size();
    for (std::size_t i = 0; i < m; ++i) {
      const Vec2& prev = pts[chain[(i + m - 1) % m]];
      const Vec2& cur = pts[chain[i]];
      const Vec2& next = pts[chain[(i + 1) % m]];
      const double orient = Orient2d(prev, cur, next);
      if (orient < 0) {
        continue;  // reflex vertex, not an ear
      }
      if (orient == 0) {
        // Collinear / duplicate vertex: removing it changes nothing.
        chain.erase(chain.begin() + static_cast<std::ptrdiff_t>(i));
        clipped = true;
        break;
      }
      bool blocked = false;
      for (std::size_t j = 0; j < m; ++j) {
        if (j == i || j == (i + m - 1) % m || j == (i + 1) % m) continue;
        const Vec2& q = pts[chain[j]];
        if (q == prev || q == cur || q == next) continue;  // bridge dups
        if (StrictlyInsideTriangle(prev, cur, next, q)) {
          blocked = true;
          break;
        }
      }
      if (blocked) continue;
      triangles.push_back(Triangle{prev, cur, next});
      chain.erase(chain.begin() + static_cast<std::ptrdiff_t>(i));
      clipped = true;
      break;
    }
    if (!clipped) {
      // Numerically stuck (e.g. nearly-degenerate input): clip the most
      // convex vertex to guarantee progress.
      std::size_t best = 0;
      double best_orient = -std::numeric_limits<double>::infinity();
      const std::size_t mm = chain.size();
      for (std::size_t i = 0; i < mm; ++i) {
        const double o = Orient2d(pts[chain[(i + mm - 1) % mm]], pts[chain[i]],
                                  pts[chain[(i + 1) % mm]]);
        if (o > best_orient) {
          best_orient = o;
          best = i;
        }
      }
      const std::size_t mm2 = chain.size();
      triangles.push_back(Triangle{pts[chain[(best + mm2 - 1) % mm2]],
                                   pts[chain[best]],
                                   pts[chain[(best + 1) % mm2]]});
      chain.erase(chain.begin() + static_cast<std::ptrdiff_t>(best));
    }
  }
  if (chain.size() == 3) {
    const Vec2& a = pts[chain[0]];
    const Vec2& b = pts[chain[1]];
    const Vec2& c = pts[chain[2]];
    if (Orient2d(a, b, c) != 0) {
      triangles.push_back(Triangle{a, b, c});
    }
  }
  // Drop zero-area output triangles from the fallback path.
  triangles.erase(std::remove_if(triangles.begin(), triangles.end(),
                                 [](const Triangle& t) {
                                   return t.Area() == 0.0;
                                 }),
                  triangles.end());
  return triangles;
}

// True if segment (a, b) crosses any edge of `ring`, ignoring edges that
// share an endpoint with the segment.
bool SegmentCrossesRing(const Vec2& a, const Vec2& b, const Ring& ring) {
  const std::size_t n = ring.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const Vec2& u = ring[j];
    const Vec2& v = ring[i];
    if (u == a || u == b || v == a || v == b) continue;
    if (SegmentsIntersect(Segment{a, b}, Segment{u, v})) {
      return true;
    }
  }
  return false;
}

// Merges `hole` (any orientation; will be traversed CW) into `outer` (CCW)
// via the closest mutually visible vertex pair, duplicating the two bridge
// endpoints.
Ring BridgeHole(const Ring& outer, const Ring& hole,
                const std::vector<Ring>& all_holes) {
  Ring hole_cw = hole;
  if (RingIsCounterClockwise(hole_cw)) {
    std::reverse(hole_cw.begin(), hole_cw.end());
  }

  // Candidate bridges ordered by squared length.
  struct Candidate {
    std::size_t outer_idx;
    std::size_t hole_idx;
    double dist2;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(outer.size() * hole_cw.size());
  for (std::size_t p = 0; p < outer.size(); ++p) {
    for (std::size_t m = 0; m < hole_cw.size(); ++m) {
      candidates.push_back(
          {p, m, outer[p].SquaredDistanceTo(hole_cw[m])});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.dist2 < b.dist2;
            });

  std::size_t bridge_outer = 0;
  std::size_t bridge_hole = 0;
  bool found = false;
  for (const Candidate& c : candidates) {
    const Vec2& a = outer[c.outer_idx];
    const Vec2& b = hole_cw[c.hole_idx];
    if (SegmentCrossesRing(a, b, outer)) continue;
    bool crosses_hole = false;
    for (const Ring& h : all_holes) {
      if (SegmentCrossesRing(a, b, h)) {
        crosses_hole = true;
        break;
      }
    }
    if (crosses_hole) continue;
    bridge_outer = c.outer_idx;
    bridge_hole = c.hole_idx;
    found = true;
    break;
  }
  if (!found && !candidates.empty()) {
    bridge_outer = candidates.front().outer_idx;
    bridge_hole = candidates.front().hole_idx;
  }

  Ring merged;
  merged.reserve(outer.size() + hole_cw.size() + 2);
  for (std::size_t i = 0; i <= bridge_outer; ++i) {
    merged.push_back(outer[i]);
  }
  for (std::size_t k = 0; k <= hole_cw.size(); ++k) {
    merged.push_back(hole_cw[(bridge_hole + k) % hole_cw.size()]);
  }
  merged.push_back(outer[bridge_outer]);
  for (std::size_t i = bridge_outer + 1; i < outer.size(); ++i) {
    merged.push_back(outer[i]);
  }
  return merged;
}

}  // namespace

StatusOr<std::vector<Triangle>> TriangulateRing(const Ring& ring) {
  if (ring.size() < 3) {
    return Status::InvalidArgument("cannot triangulate a ring with < 3 vertices");
  }
  Ring ccw = ring;
  if (!RingIsCounterClockwise(ccw)) {
    std::reverse(ccw.begin(), ccw.end());
  }
  if (RingSignedArea(ccw) == 0.0) {
    return Status::InvalidArgument("cannot triangulate a zero-area ring");
  }
  return EarClipChain(ccw);
}

StatusOr<std::vector<Triangle>> TriangulatePolygon(const Polygon& polygon) {
  if (polygon.holes().empty()) {
    return TriangulateRing(polygon.outer());
  }
  Ring outer = polygon.outer();
  if (outer.size() < 3) {
    return Status::InvalidArgument("cannot triangulate a polygon with < 3 vertices");
  }
  if (!RingIsCounterClockwise(outer)) {
    std::reverse(outer.begin(), outer.end());
  }
  // Merge holes from the one with the largest max-x inward; this matches the
  // earcut heuristic and keeps bridges from crossing unprocessed holes.
  std::vector<std::size_t> order(polygon.holes().size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  auto max_x = [&](std::size_t h) {
    double mx = -std::numeric_limits<double>::infinity();
    for (const Vec2& v : polygon.holes()[h]) mx = std::max(mx, v.x);
    return mx;
  };
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return max_x(a) > max_x(b); });

  std::vector<Ring> remaining;
  for (const std::size_t h : order) remaining.push_back(polygon.holes()[h]);
  Ring merged = outer;
  while (!remaining.empty()) {
    const Ring hole = remaining.front();
    remaining.erase(remaining.begin());
    merged = BridgeHole(merged, hole, remaining);
  }
  return EarClipChain(merged);
}

double TotalArea(const std::vector<Triangle>& triangles) {
  double total = 0.0;
  for (const Triangle& t : triangles) {
    total += t.Area();
  }
  return total;
}

}  // namespace urbane::geometry
