#include "geometry/mercator.h"

#include <cmath>

namespace urbane::geometry {

namespace {
constexpr double kEarthRadiusMeters = 6378137.0;
constexpr double kDegToRad = M_PI / 180.0;
constexpr double kRadToDeg = 180.0 / M_PI;
}  // namespace

Vec2 LonLatToMercator(const LonLat& ll) {
  const double x = kEarthRadiusMeters * ll.lon * kDegToRad;
  const double lat_rad = ll.lat * kDegToRad;
  const double y =
      kEarthRadiusMeters * std::log(std::tan(M_PI / 4.0 + lat_rad / 2.0));
  return {x, y};
}

LonLat MercatorToLonLat(const Vec2& xy) {
  LonLat ll;
  ll.lon = xy.x / kEarthRadiusMeters * kRadToDeg;
  ll.lat = (2.0 * std::atan(std::exp(xy.y / kEarthRadiusMeters)) - M_PI / 2.0) *
           kRadToDeg;
  return ll;
}

double MercatorScaleFactor(double lat_degrees) {
  return 1.0 / std::cos(lat_degrees * kDegToRad);
}

BoundingBox ProjectBounds(const LonLat& min_corner, const LonLat& max_corner) {
  BoundingBox box;
  box.Extend(LonLatToMercator(min_corner));
  box.Extend(LonLatToMercator(max_corner));
  return box;
}

BoundingBox NycMercatorBounds() {
  // Roughly the five boroughs: 74.26W–73.70W, 40.49N–40.92N.
  return ProjectBounds(LonLat{-74.26, 40.49}, LonLat{-73.70, 40.92});
}

}  // namespace urbane::geometry
