#ifndef URBANE_GEOMETRY_BOUNDING_BOX_H_
#define URBANE_GEOMETRY_BOUNDING_BOX_H_

#include <algorithm>
#include <limits>
#include <ostream>

#include "geometry/point.h"

namespace urbane::geometry {

/// Axis-aligned bounding box. Default-constructed boxes are empty (inverted
/// bounds) and absorb points via Extend().
struct BoundingBox {
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();

  BoundingBox() = default;
  BoundingBox(double min_x_in, double min_y_in, double max_x_in,
              double max_y_in)
      : min_x(min_x_in), min_y(min_y_in), max_x(max_x_in), max_y(max_y_in) {}

  static BoundingBox FromPoints(const Vec2& a, const Vec2& b) {
    BoundingBox box;
    box.Extend(a);
    box.Extend(b);
    return box;
  }

  bool IsEmpty() const { return min_x > max_x || min_y > max_y; }

  double Width() const { return IsEmpty() ? 0.0 : max_x - min_x; }
  double Height() const { return IsEmpty() ? 0.0 : max_y - min_y; }
  double Area() const { return Width() * Height(); }
  Vec2 Center() const {
    return {(min_x + max_x) * 0.5, (min_y + max_y) * 0.5};
  }

  void Extend(const Vec2& p) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }

  void Extend(const BoundingBox& other) {
    if (other.IsEmpty()) return;
    min_x = std::min(min_x, other.min_x);
    min_y = std::min(min_y, other.min_y);
    max_x = std::max(max_x, other.max_x);
    max_y = std::max(max_y, other.max_y);
  }

  /// Closed-interval point containment.
  bool Contains(const Vec2& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  bool Contains(const BoundingBox& other) const {
    return !other.IsEmpty() && other.min_x >= min_x && other.max_x <= max_x &&
           other.min_y >= min_y && other.max_y <= max_y;
  }

  bool Intersects(const BoundingBox& other) const {
    return !IsEmpty() && !other.IsEmpty() && min_x <= other.max_x &&
           other.min_x <= max_x && min_y <= other.max_y &&
           other.min_y <= max_y;
  }

  /// Intersection (possibly empty).
  BoundingBox Intersection(const BoundingBox& other) const {
    BoundingBox out(std::max(min_x, other.min_x), std::max(min_y, other.min_y),
                    std::min(max_x, other.max_x),
                    std::min(max_y, other.max_y));
    return out;
  }

  /// Box grown by `margin` on every side.
  BoundingBox Expanded(double margin) const {
    if (IsEmpty()) return *this;
    return BoundingBox(min_x - margin, min_y - margin, max_x + margin,
                       max_y + margin);
  }

  bool operator==(const BoundingBox& other) const {
    if (IsEmpty() && other.IsEmpty()) return true;
    return min_x == other.min_x && min_y == other.min_y &&
           max_x == other.max_x && max_y == other.max_y;
  }
};

inline std::ostream& operator<<(std::ostream& os, const BoundingBox& b) {
  return os << "[(" << b.min_x << ", " << b.min_y << ") - (" << b.max_x
            << ", " << b.max_y << ")]";
}

}  // namespace urbane::geometry

#endif  // URBANE_GEOMETRY_BOUNDING_BOX_H_
