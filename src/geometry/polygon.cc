#include "geometry/polygon.h"

#include <algorithm>
#include <cmath>

#include "geometry/segment.h"
#include "util/string_util.h"

namespace urbane::geometry {

double RingSignedArea(const Ring& ring) {
  const std::size_t n = ring.size();
  if (n < 3) return 0.0;
  double twice_area = 0.0;
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    twice_area += ring[j].Cross(ring[i]);
  }
  return 0.5 * twice_area;
}

bool RingIsCounterClockwise(const Ring& ring) {
  return RingSignedArea(ring) > 0.0;
}

bool RingBoundaryContains(const Ring& ring, const Vec2& p) {
  const std::size_t n = ring.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    if (PointOnSegment(p, Segment{ring[j], ring[i]})) {
      return true;
    }
  }
  return false;
}

bool RingContains(const Ring& ring, const Vec2& p) {
  const std::size_t n = ring.size();
  if (n < 3) return false;
  if (RingBoundaryContains(ring, p)) return true;
  // Crossing-number: count edges crossing the upward ray from p. The
  // half-open vertex rule (y_lo <= p.y < y_hi) counts each vertex once.
  bool inside = false;
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const Vec2& a = ring[j];
    const Vec2& b = ring[i];
    if ((a.y > p.y) != (b.y > p.y)) {
      const double x_at_y = a.x + (b.x - a.x) * (p.y - a.y) / (b.y - a.y);
      if (p.x < x_at_y) {
        inside = !inside;
      }
    }
  }
  return inside;
}

bool RingContainsWinding(const Ring& ring, const Vec2& p) {
  const std::size_t n = ring.size();
  if (n < 3) return false;
  if (RingBoundaryContains(ring, p)) return true;
  int winding = 0;
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const Vec2& a = ring[j];
    const Vec2& b = ring[i];
    if (a.y <= p.y) {
      if (b.y > p.y && Orient2d(a, b, p) > 0) {
        ++winding;
      }
    } else {
      if (b.y <= p.y && Orient2d(a, b, p) < 0) {
        --winding;
      }
    }
  }
  return winding != 0;
}

std::size_t Polygon::VertexCount() const {
  std::size_t count = outer_.size();
  for (const Ring& hole : holes_) {
    count += hole.size();
  }
  return count;
}

double Polygon::Area() const {
  double area = std::fabs(RingSignedArea(outer_));
  for (const Ring& hole : holes_) {
    area -= std::fabs(RingSignedArea(hole));
  }
  return std::max(area, 0.0);
}

double Polygon::Perimeter() const {
  auto ring_perimeter = [](const Ring& ring) {
    double total = 0.0;
    const std::size_t n = ring.size();
    for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
      total += ring[j].DistanceTo(ring[i]);
    }
    return total;
  };
  double total = ring_perimeter(outer_);
  for (const Ring& hole : holes_) {
    total += ring_perimeter(hole);
  }
  return total;
}

namespace {

// Area-weighted centroid of one ring (sign follows orientation).
void AccumulateRingCentroid(const Ring& ring, double& area_sum, Vec2& moment) {
  const std::size_t n = ring.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const double cross = ring[j].Cross(ring[i]);
    area_sum += cross;
    moment += (ring[j] + ring[i]) * cross;
  }
}

}  // namespace

Vec2 Polygon::Centroid() const {
  double area_sum = 0.0;
  Vec2 moment{0.0, 0.0};
  // Normalize() gives outer CCW (positive) and holes CW (negative), so the
  // signed accumulation subtracts holes automatically. For non-normalized
  // input we fix the signs ring by ring.
  {
    Ring ring = outer_;
    if (!RingIsCounterClockwise(ring)) std::reverse(ring.begin(), ring.end());
    AccumulateRingCentroid(ring, area_sum, moment);
  }
  for (const Ring& h : holes_) {
    Ring ring = h;
    if (RingIsCounterClockwise(ring)) std::reverse(ring.begin(), ring.end());
    AccumulateRingCentroid(ring, area_sum, moment);
  }
  if (area_sum == 0.0) {
    // Degenerate polygon: fall back to vertex average.
    Vec2 avg{0.0, 0.0};
    if (outer_.empty()) return avg;
    for (const Vec2& v : outer_) avg += v;
    return avg / static_cast<double>(outer_.size());
  }
  return moment / (3.0 * area_sum);
}

BoundingBox Polygon::Bounds() const {
  BoundingBox box;
  for (const Vec2& v : outer_) {
    box.Extend(v);
  }
  return box;
}

bool Polygon::Contains(const Vec2& p) const {
  if (!RingContains(outer_, p)) {
    return false;
  }
  for (const Ring& hole : holes_) {
    if (RingBoundaryContains(hole, p)) {
      return true;  // on a hole edge -> still part of the polygon
    }
    if (RingContains(hole, p)) {
      return false;
    }
  }
  return true;
}

bool Polygon::BoundaryContains(const Vec2& p) const {
  if (RingBoundaryContains(outer_, p)) return true;
  for (const Ring& hole : holes_) {
    if (RingBoundaryContains(hole, p)) return true;
  }
  return false;
}

void Polygon::Normalize() {
  if (!RingIsCounterClockwise(outer_)) {
    std::reverse(outer_.begin(), outer_.end());
  }
  for (Ring& hole : holes_) {
    if (RingIsCounterClockwise(hole)) {
      std::reverse(hole.begin(), hole.end());
    }
  }
}

bool Polygon::IsSimple() const {
  auto ring_is_simple = [](const Ring& ring) {
    const std::size_t n = ring.size();
    for (std::size_t i = 0; i < n; ++i) {
      const Segment si{ring[i], ring[(i + 1) % n]};
      for (std::size_t j = i + 1; j < n; ++j) {
        // Skip adjacent edges (they share an endpoint by construction).
        if (j == i || (j + 1) % n == i || (i + 1) % n == j) {
          continue;
        }
        const Segment sj{ring[j], ring[(j + 1) % n]};
        if (SegmentsIntersect(si, sj)) {
          return false;
        }
      }
    }
    return true;
  };
  if (!ring_is_simple(outer_)) return false;
  for (const Ring& hole : holes_) {
    if (!ring_is_simple(hole)) return false;
  }
  return true;
}

urbane::Status Polygon::Validate() const {
  if (outer_.size() < 3) {
    return urbane::Status::InvalidArgument(urbane::StringPrintf(
        "outer ring has %zu vertices (need >= 3)", outer_.size()));
  }
  if (RingSignedArea(outer_) == 0.0) {
    return urbane::Status::InvalidArgument("outer ring has zero area");
  }
  for (std::size_t h = 0; h < holes_.size(); ++h) {
    if (holes_[h].size() < 3) {
      return urbane::Status::InvalidArgument(urbane::StringPrintf(
          "hole %zu has %zu vertices (need >= 3)", h, holes_[h].size()));
    }
    if (RingSignedArea(holes_[h]) == 0.0) {
      return urbane::Status::InvalidArgument(
          urbane::StringPrintf("hole %zu has zero area", h));
    }
  }
  if (!IsSimple()) {
    return urbane::Status::InvalidArgument("polygon ring self-intersects");
  }
  return urbane::Status::OK();
}

std::size_t MultiPolygon::VertexCount() const {
  std::size_t count = 0;
  for (const Polygon& part : parts_) {
    count += part.VertexCount();
  }
  return count;
}

double MultiPolygon::Area() const {
  double area = 0.0;
  for (const Polygon& part : parts_) {
    area += part.Area();
  }
  return area;
}

Vec2 MultiPolygon::Centroid() const {
  double total_area = 0.0;
  Vec2 weighted{0.0, 0.0};
  for (const Polygon& part : parts_) {
    const double a = part.Area();
    weighted += part.Centroid() * a;
    total_area += a;
  }
  if (total_area == 0.0) {
    return parts_.empty() ? Vec2{0.0, 0.0} : parts_.front().Centroid();
  }
  return weighted / total_area;
}

BoundingBox MultiPolygon::Bounds() const {
  BoundingBox box;
  for (const Polygon& part : parts_) {
    box.Extend(part.Bounds());
  }
  return box;
}

bool MultiPolygon::Contains(const Vec2& p) const {
  for (const Polygon& part : parts_) {
    if (part.Contains(p)) {
      return true;
    }
  }
  return false;
}

void MultiPolygon::Normalize() {
  for (Polygon& part : parts_) {
    part.Normalize();
  }
}

Polygon MakeRectanglePolygon(const BoundingBox& box) {
  Ring ring = {{box.min_x, box.min_y},
               {box.max_x, box.min_y},
               {box.max_x, box.max_y},
               {box.min_x, box.max_y}};
  return Polygon(std::move(ring));
}

Polygon MakeRegularPolygon(const Vec2& center, double radius,
                           std::size_t vertex_count, double phase) {
  Ring ring;
  ring.reserve(vertex_count);
  for (std::size_t i = 0; i < vertex_count; ++i) {
    const double angle =
        phase + 2.0 * M_PI * static_cast<double>(i) /
                    static_cast<double>(vertex_count);
    ring.push_back(
        {center.x + radius * std::cos(angle), center.y + radius * std::sin(angle)});
  }
  return Polygon(std::move(ring));
}

}  // namespace urbane::geometry
