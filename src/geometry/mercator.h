#ifndef URBANE_GEOMETRY_MERCATOR_H_
#define URBANE_GEOMETRY_MERCATOR_H_

#include "geometry/bounding_box.h"
#include "geometry/point.h"

namespace urbane::geometry {

/// WGS84 longitude/latitude in degrees.
struct LonLat {
  double lon = 0.0;
  double lat = 0.0;
};

/// Spherical Web-Mercator (EPSG:3857) projection — the projection slippy-map
/// front ends (and Urbane's map view) use, so query geometry and screen
/// geometry share one coordinate system.
///
/// x, y are meters on the projected plane; valid |lat| < 85.05113°.
Vec2 LonLatToMercator(const LonLat& ll);
LonLat MercatorToLonLat(const Vec2& xy);

/// Projected meters per real meter at the given latitude (Mercator scale
/// distortion) — used to convert error bounds back to ground distance.
double MercatorScaleFactor(double lat_degrees);

/// Projects a lon/lat bounding box (min/max in degrees) to Mercator meters.
BoundingBox ProjectBounds(const LonLat& min_corner, const LonLat& max_corner);

/// Bounds of the NYC-like synthetic world used by the data generators.
/// Chosen to match the real NYC extents so distances/areas are plausible.
BoundingBox NycMercatorBounds();

}  // namespace urbane::geometry

#endif  // URBANE_GEOMETRY_MERCATOR_H_
