#ifndef URBANE_GEOMETRY_POLYGON_H_
#define URBANE_GEOMETRY_POLYGON_H_

#include <cstddef>
#include <vector>

#include "geometry/bounding_box.h"
#include "geometry/point.h"
#include "util/status.h"

namespace urbane::geometry {

/// A ring is an implicitly-closed sequence of vertices (the last vertex is
/// NOT a repeat of the first).
using Ring = std::vector<Vec2>;

/// Signed area of a ring: positive for counter-clockwise orientation.
double RingSignedArea(const Ring& ring);

/// True if the ring is counter-clockwise (by signed area).
bool RingIsCounterClockwise(const Ring& ring);

/// Even-odd (crossing-number) point-in-ring test. Points exactly on an edge
/// count as inside (boundary-inclusive), which keeps the exact executors'
/// semantics identical to the rasterized pixel-ownership semantics.
bool RingContains(const Ring& ring, const Vec2& p);

/// Winding-number point-in-ring test (boundary-inclusive). Agrees with
/// RingContains on simple rings; used by tests as an independent oracle.
bool RingContainsWinding(const Ring& ring, const Vec2& p);

/// True if `p` lies exactly on some edge of the ring.
bool RingBoundaryContains(const Ring& ring, const Vec2& p);

/// Simple polygon with optional holes. Invariants after Normalize():
/// outer ring counter-clockwise, holes clockwise, every ring has >= 3
/// vertices.
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(Ring outer) : outer_(std::move(outer)) {}
  Polygon(Ring outer, std::vector<Ring> holes)
      : outer_(std::move(outer)), holes_(std::move(holes)) {}

  const Ring& outer() const { return outer_; }
  Ring& mutable_outer() { return outer_; }
  const std::vector<Ring>& holes() const { return holes_; }
  void add_hole(Ring hole) { holes_.push_back(std::move(hole)); }

  /// Total vertex count over all rings.
  std::size_t VertexCount() const;

  /// Positive area: |outer| - sum |holes|.
  double Area() const;

  /// Perimeter of the outer ring plus hole boundaries.
  double Perimeter() const;

  /// Area-weighted centroid of the polygon (holes subtracted).
  Vec2 Centroid() const;

  BoundingBox Bounds() const;

  /// Boundary-inclusive containment: inside the outer ring and not strictly
  /// inside any hole. A point on a hole's boundary is considered inside the
  /// polygon.
  bool Contains(const Vec2& p) const;

  /// True if `p` lies on any ring boundary.
  bool BoundaryContains(const Vec2& p) const;

  /// Reorients rings to the canonical orientation (outer CCW, holes CW).
  void Normalize();

  /// Validation: every ring has >= 3 vertices and non-zero area; outer ring
  /// must not self-intersect (O(n^2) check, intended for ingest/test time,
  /// not query time).
  urbane::Status Validate() const;

  /// True if no two non-adjacent edges of any single ring intersect.
  bool IsSimple() const;

 private:
  Ring outer_;
  std::vector<Ring> holes_;
};

/// A set of disjoint polygons treated as one region (e.g. a neighborhood
/// made of islands).
class MultiPolygon {
 public:
  MultiPolygon() = default;
  explicit MultiPolygon(std::vector<Polygon> parts)
      : parts_(std::move(parts)) {}
  explicit MultiPolygon(Polygon single) { parts_.push_back(std::move(single)); }

  const std::vector<Polygon>& parts() const { return parts_; }
  std::vector<Polygon>& mutable_parts() { return parts_; }
  void add_part(Polygon part) { parts_.push_back(std::move(part)); }
  bool empty() const { return parts_.empty(); }

  std::size_t VertexCount() const;
  double Area() const;
  Vec2 Centroid() const;
  BoundingBox Bounds() const;
  bool Contains(const Vec2& p) const;
  void Normalize();

 private:
  std::vector<Polygon> parts_;
};

/// Convenience constructors used pervasively in tests and generators.
Polygon MakeRectanglePolygon(const BoundingBox& box);
Polygon MakeRegularPolygon(const Vec2& center, double radius,
                           std::size_t vertex_count, double phase = 0.0);

}  // namespace urbane::geometry

#endif  // URBANE_GEOMETRY_POLYGON_H_
