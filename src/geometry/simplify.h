#ifndef URBANE_GEOMETRY_SIMPLIFY_H_
#define URBANE_GEOMETRY_SIMPLIFY_H_

#include <vector>

#include "geometry/point.h"
#include "geometry/polygon.h"

namespace urbane::geometry {

/// Ramer–Douglas–Peucker simplification of an open polyline. Keeps the first
/// and last vertices; drops interior vertices whose deviation from the
/// simplified chain is <= `tolerance`.
std::vector<Vec2> SimplifyPolyline(const std::vector<Vec2>& points,
                                   double tolerance);

/// Simplifies each ring of the polygon (treating rings as closed: the ring
/// is split at its two mutually farthest vertices so RDP applies cleanly).
/// Rings that would collapse below 3 vertices are left unsimplified.
///
/// Urbane uses this for level-of-detail: coarse zoom levels draw simplified
/// region boundaries, which also shrinks raster-join vertex workloads.
Polygon SimplifyPolygon(const Polygon& polygon, double tolerance);

}  // namespace urbane::geometry

#endif  // URBANE_GEOMETRY_SIMPLIFY_H_
