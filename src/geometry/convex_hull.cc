#include "geometry/convex_hull.h"

#include <algorithm>

namespace urbane::geometry {

Ring ConvexHull(std::vector<Vec2> points) {
  std::sort(points.begin(), points.end(), [](const Vec2& a, const Vec2& b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  points.erase(std::unique(points.begin(), points.end()), points.end());
  const std::size_t n = points.size();
  if (n < 3) {
    return points;
  }

  Ring hull(2 * n);
  std::size_t k = 0;
  // Lower hull.
  for (std::size_t i = 0; i < n; ++i) {
    while (k >= 2 && Orient2d(hull[k - 2], hull[k - 1], points[i]) <= 0) {
      --k;
    }
    hull[k++] = points[i];
  }
  // Upper hull.
  const std::size_t lower_size = k + 1;
  for (std::size_t i = n - 1; i-- > 0;) {
    while (k >= lower_size &&
           Orient2d(hull[k - 2], hull[k - 1], points[i]) <= 0) {
      --k;
    }
    hull[k++] = points[i];
  }
  hull.resize(k - 1);  // last point repeats the first
  return hull;
}

}  // namespace urbane::geometry
