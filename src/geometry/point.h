#ifndef URBANE_GEOMETRY_POINT_H_
#define URBANE_GEOMETRY_POINT_H_

#include <cmath>
#include <ostream>

namespace urbane::geometry {

/// 2-D point / vector in world coordinates (double precision; the columnar
/// point store keeps float32 like the GPU pipeline, but all geometry math is
/// done in double).
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_in, double y_in) : x(x_in), y(y_in) {}

  constexpr Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  Vec2& operator+=(const Vec2& o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  Vec2& operator-=(const Vec2& o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  Vec2& operator*=(double s) {
    x *= s;
    y *= s;
    return *this;
  }

  constexpr bool operator==(const Vec2& o) const {
    return x == o.x && y == o.y;
  }

  constexpr double Dot(const Vec2& o) const { return x * o.x + y * o.y; }
  /// z-component of the 3-D cross product (signed parallelogram area).
  constexpr double Cross(const Vec2& o) const { return x * o.y - y * o.x; }
  double Norm() const { return std::sqrt(x * x + y * y); }
  constexpr double SquaredNorm() const { return x * x + y * y; }
  double DistanceTo(const Vec2& o) const { return (*this - o).Norm(); }
  constexpr double SquaredDistanceTo(const Vec2& o) const {
    return (*this - o).SquaredNorm();
  }
};

constexpr Vec2 operator*(double s, const Vec2& v) { return v * s; }

inline std::ostream& operator<<(std::ostream& os, const Vec2& v) {
  return os << "(" << v.x << ", " << v.y << ")";
}

/// Signed orientation of the triangle (a, b, c):
/// > 0 counter-clockwise, < 0 clockwise, == 0 collinear.
constexpr double Orient2d(const Vec2& a, const Vec2& b, const Vec2& c) {
  return (b - a).Cross(c - a);
}

}  // namespace urbane::geometry

#endif  // URBANE_GEOMETRY_POINT_H_
