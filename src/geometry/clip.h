#ifndef URBANE_GEOMETRY_CLIP_H_
#define URBANE_GEOMETRY_CLIP_H_

#include "geometry/bounding_box.h"
#include "geometry/polygon.h"

namespace urbane::geometry {

/// Sutherland–Hodgman clip of a ring against an axis-aligned rectangle.
/// Returns the (possibly empty) clipped ring. Works for convex clip windows;
/// the ring may be concave.
Ring ClipRingToBox(const Ring& ring, const BoundingBox& box);

/// Clips every ring of the polygon to the box. Holes that vanish are
/// dropped; if the outer ring vanishes an empty polygon is returned.
///
/// The map view uses this so only the visible viewport portion of each
/// region is rasterized while panning/zooming.
Polygon ClipPolygonToBox(const Polygon& polygon, const BoundingBox& box);

/// Liang–Barsky segment clip; true if any part of the segment is inside,
/// with `a`/`b` replaced by the clipped endpoints.
bool ClipSegmentToBox(const BoundingBox& box, Vec2& a, Vec2& b);

/// True if the closed segment (a, b) intersects the closed box.
bool SegmentIntersectsBox(const BoundingBox& box, const Vec2& a,
                          const Vec2& b);

/// True if any ring edge of the polygon intersects the box.
bool PolygonBoundaryIntersectsBox(const Polygon& polygon,
                                  const BoundingBox& box);

/// True if the polygon (minus holes) fully contains the box.
bool PolygonContainsBox(const Polygon& polygon, const BoundingBox& box);

}  // namespace urbane::geometry

#endif  // URBANE_GEOMETRY_CLIP_H_
