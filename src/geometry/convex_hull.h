#ifndef URBANE_GEOMETRY_CONVEX_HULL_H_
#define URBANE_GEOMETRY_CONVEX_HULL_H_

#include <vector>

#include "geometry/point.h"
#include "geometry/polygon.h"

namespace urbane::geometry {

/// Andrew's monotone-chain convex hull. Returns the hull as a CCW ring
/// without collinear interior points. Inputs with < 3 distinct
/// non-collinear points return the degenerate chain (0–2 points).
Ring ConvexHull(std::vector<Vec2> points);

}  // namespace urbane::geometry

#endif  // URBANE_GEOMETRY_CONVEX_HULL_H_
