#include "geometry/simplify.h"

#include <algorithm>
#include <cmath>

#include "geometry/segment.h"

namespace urbane::geometry {

namespace {

void RdpRecurse(const std::vector<Vec2>& points, std::size_t begin,
                std::size_t end, double tolerance2,
                std::vector<bool>& keep) {
  if (end <= begin + 1) {
    return;
  }
  const Segment chord{points[begin], points[end]};
  double max_dist2 = -1.0;
  std::size_t split = begin;
  for (std::size_t i = begin + 1; i < end; ++i) {
    const double d2 = SquaredDistancePointToSegment(points[i], chord);
    if (d2 > max_dist2) {
      max_dist2 = d2;
      split = i;
    }
  }
  if (max_dist2 > tolerance2) {
    keep[split] = true;
    RdpRecurse(points, begin, split, tolerance2, keep);
    RdpRecurse(points, split, end, tolerance2, keep);
  }
}

}  // namespace

std::vector<Vec2> SimplifyPolyline(const std::vector<Vec2>& points,
                                   double tolerance) {
  if (points.size() <= 2) {
    return points;
  }
  std::vector<bool> keep(points.size(), false);
  keep.front() = true;
  keep.back() = true;
  RdpRecurse(points, 0, points.size() - 1, tolerance * tolerance, keep);
  std::vector<Vec2> out;
  out.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (keep[i]) {
      out.push_back(points[i]);
    }
  }
  return out;
}

namespace {

Ring SimplifyRing(const Ring& ring, double tolerance) {
  if (ring.size() <= 4) {
    return ring;
  }
  // Split the closed ring at its two mutually farthest vertices so each half
  // is an open polyline whose endpoints are pinned.
  std::size_t i_far = 0;
  std::size_t j_far = 1;
  double best = -1.0;
  for (std::size_t i = 0; i < ring.size(); ++i) {
    for (std::size_t j = i + 1; j < ring.size(); ++j) {
      const double d2 = ring[i].SquaredDistanceTo(ring[j]);
      if (d2 > best) {
        best = d2;
        i_far = i;
        j_far = j;
      }
    }
  }
  std::vector<Vec2> first_half;
  for (std::size_t k = i_far; k != j_far; k = (k + 1) % ring.size()) {
    first_half.push_back(ring[k]);
  }
  first_half.push_back(ring[j_far]);
  std::vector<Vec2> second_half;
  for (std::size_t k = j_far; k != i_far; k = (k + 1) % ring.size()) {
    second_half.push_back(ring[k]);
  }
  second_half.push_back(ring[i_far]);

  std::vector<Vec2> a = SimplifyPolyline(first_half, tolerance);
  std::vector<Vec2> b = SimplifyPolyline(second_half, tolerance);
  Ring out;
  out.reserve(a.size() + b.size() - 2);
  out.insert(out.end(), a.begin(), a.end() - 1);
  out.insert(out.end(), b.begin(), b.end() - 1);
  if (out.size() < 3) {
    return ring;  // refuse to collapse the ring
  }
  return out;
}

}  // namespace

Polygon SimplifyPolygon(const Polygon& polygon, double tolerance) {
  Polygon out(SimplifyRing(polygon.outer(), tolerance));
  for (const Ring& hole : polygon.holes()) {
    Ring simplified = SimplifyRing(hole, tolerance);
    if (simplified.size() >= 3 && RingSignedArea(simplified) != 0.0) {
      out.add_hole(std::move(simplified));
    }
  }
  return out;
}

}  // namespace urbane::geometry
