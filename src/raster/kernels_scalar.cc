// Portable scalar kernel table: the executable specification the SSE2/AVX2
// tables must match bit-for-bit. The bodies live in kernels_inl.h so the
// vector translation units reuse them verbatim for loop tails.
#include <cstddef>
#include <cstdint>

#include "raster/kernels.h"
#include "raster/kernels_inl.h"

namespace urbane::raster {
namespace {

std::size_t ComputePixelIndicesScalar(const SplatGeometry& g, const float* xs,
                                      const float* ys, std::size_t count,
                                      std::uint32_t* out) {
  return internal::ScalarComputePixelIndices(g, xs, ys, count, out);
}

std::uint64_t SumSpanU32Scalar(const std::uint32_t* v, std::size_t n) {
  return internal::ScalarSumSpanU32(v, n);
}

std::size_t GatherNonZeroU32Scalar(const std::uint32_t* v, std::size_t n,
                                   std::uint32_t* out) {
  return internal::ScalarGatherNonZeroU32(v, n, 0, out);
}

std::uint64_t EdgeCoverageMaskScalar(const EdgeRowSetup& row, int n) {
  return internal::ScalarEdgeCoverageMask(row, n);
}

}  // namespace

const RasterKernels kScalarRasterKernels = {
    "off",
    &ComputePixelIndicesScalar,
    &SumSpanU32Scalar,
    &GatherNonZeroU32Scalar,
    &EdgeCoverageMaskScalar,
};

}  // namespace urbane::raster
