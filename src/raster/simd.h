#ifndef URBANE_RASTER_SIMD_H_
#define URBANE_RASTER_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace urbane::raster {

/// Vector width tier the raster kernels run at. Levels are totally ordered:
/// a CPU that can run kAvx2 can also run kSse2 and kOff; the dispatcher
/// clamps any request to what the hardware supports.
///
/// Every level computes the *same* function bit-for-bit: the kernels are
/// specified in integer / IEEE-754 terms that do not depend on lane count
/// (see DESIGN.md "Tiled SIMD rasterizer"), so switching levels can change
/// speed but never results. That is what lets the determinism suites run
/// the identical assertions at every level.
enum class SimdLevel : int {
  kOff = 0,   // portable scalar kernels
  kSse2 = 1,  // 128-bit kernels (x86-64 baseline)
  kAvx2 = 2,  // 256-bit kernels
};

/// Human-readable level name ("off", "sse2", "avx2").
const char* SimdLevelName(SimdLevel level);

/// Parses a URBANE_SIMD value. Accepts "off"/"scalar"/"none"/"0", "sse2",
/// "avx2", and "auto" (reported as the CPU maximum). Returns false for
/// anything else.
bool ParseSimdLevel(const char* text, SimdLevel& level, bool& is_auto);

/// Highest level this CPU supports (queried once, then cached).
SimdLevel CpuMaxSimdLevel();

/// The level the raster kernels currently dispatch to. Resolution order:
///   1. an explicit SetSimdLevel() call (tests sweep levels in-process),
///   2. the URBANE_SIMD environment variable (off|sse2|avx2|auto),
///   3. auto: the CPU maximum.
/// Requests above CpuMaxSimdLevel() are clamped, so URBANE_SIMD=avx2 on an
/// SSE2-only machine runs the sse2 kernels rather than crashing.
SimdLevel ActiveSimdLevel();

/// Forces the dispatch level (clamped to the CPU maximum; returns the level
/// actually installed). Not thread-safe against in-flight queries — callers
/// (tests, bench mains) switch levels only between queries.
SimdLevel SetSimdLevel(SimdLevel level);

/// Drops any SetSimdLevel() override and re-reads URBANE_SIMD.
void ResetSimdLevelFromEnv();

}  // namespace urbane::raster

#endif  // URBANE_RASTER_SIMD_H_
