#ifndef URBANE_RASTER_IMAGE_H_
#define URBANE_RASTER_IMAGE_H_

#include <cstdint>
#include <string>

#include "raster/buffer.h"
#include "util/color.h"
#include "util/status.h"

namespace urbane::raster {

/// RGB image buffer (row 0 = bottom, consistent with Viewport; writers flip).
using Image = Buffer2D<Rgb>;

/// Writes a binary PPM (P6). Rows are flipped so the file displays with y
/// growing downward as image viewers expect.
Status WritePpm(const Image& image, const std::string& path);

/// Writes a binary PGM (P5) of an 8-bit grayscale buffer.
Status WritePgm(const Buffer2D<std::uint8_t>& gray, const std::string& path);

/// Maps a scalar buffer through a colormap into an image. Values are scaled
/// by [lo, hi]; pass lo == hi to auto-scale to the buffer's min/max.
Image ColormapBuffer(const Buffer2D<float>& values, const Colormap& colormap,
                     double lo = 0.0, double hi = 0.0);

/// Count-buffer convenience (log scale optional — urban point densities are
/// heavy-tailed, matching Urbane's heatmap display).
Image ColormapCounts(const Buffer2D<std::uint32_t>& counts,
                     const Colormap& colormap, bool log_scale = true);

}  // namespace urbane::raster

#endif  // URBANE_RASTER_IMAGE_H_
