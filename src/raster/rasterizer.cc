#include "raster/rasterizer.h"

#include <algorithm>

namespace urbane::raster::internal {

namespace {

// Appends crossings of `ring` with the horizontal line y = scan_y using the
// same half-open vertex rule as geometry::RingContains, so scanline fill and
// the point-in-polygon oracle agree everywhere except exactly on edges.
void CollectRingCrossings(const geometry::Ring& ring, double scan_y,
                          std::vector<double>& crossings) {
  const std::size_t n = ring.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const geometry::Vec2& a = ring[j];
    const geometry::Vec2& b = ring[i];
    if ((a.y > scan_y) != (b.y > scan_y)) {
      crossings.push_back(a.x + (b.x - a.x) * (scan_y - a.y) / (b.y - a.y));
    }
  }
}

}  // namespace

void CollectRowCrossings(const geometry::Polygon& polygon, double scan_y,
                         std::vector<double>& crossings) {
  CollectRingCrossings(polygon.outer(), scan_y, crossings);
  for (const geometry::Ring& hole : polygon.holes()) {
    CollectRingCrossings(hole, scan_y, crossings);
  }
  std::sort(crossings.begin(), crossings.end());
}

}  // namespace urbane::raster::internal
