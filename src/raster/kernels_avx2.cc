// 256-bit kernel table. Compiled with -mavx2 (see src/raster/CMakeLists.txt)
// and only ever dispatched to after a runtime CPUID check; must produce
// bit-identical results to kernels_scalar.cc on every input.
#include "raster/kernels.h"

#if URBANE_RASTER_X86

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#include "raster/kernels_inl.h"

namespace urbane::raster {
namespace {

std::size_t ComputePixelIndicesAvx2(const SplatGeometry& g, const float* xs,
                                    const float* ys, std::size_t count,
                                    std::uint32_t* out) {
  const __m256d min_x = _mm256_set1_pd(g.min_x);
  const __m256d max_x = _mm256_set1_pd(g.max_x);
  const __m256d min_y = _mm256_set1_pd(g.min_y);
  const __m256d max_y = _mm256_set1_pd(g.max_y);
  const __m256d pw = _mm256_set1_pd(g.pixel_w);
  const __m256d ph = _mm256_set1_pd(g.pixel_h);
  const __m128i width = _mm_set1_epi32(g.width);
  const __m128i height = _mm_set1_epi32(g.height);

  std::size_t hits = 0;
  std::size_t i = 0;
  alignas(16) std::uint32_t idx[4];
  for (; i + 4 <= count; i += 4) {
    // Four points per iteration: widen the floats to double and replicate
    // the scalar arithmetic lane-wise (same IEEE divide, same truncation).
    const __m256d xd = _mm256_cvtps_pd(_mm_loadu_ps(xs + i));
    const __m256d yd = _mm256_cvtps_pd(_mm_loadu_ps(ys + i));
    // _CMP_*_OQ compares are ordered: NaN lanes come out invalid.
    const __m256d in_x = _mm256_and_pd(_mm256_cmp_pd(xd, min_x, _CMP_GE_OQ),
                                       _mm256_cmp_pd(xd, max_x, _CMP_LE_OQ));
    const __m256d in_y = _mm256_and_pd(_mm256_cmp_pd(yd, min_y, _CMP_GE_OQ),
                                       _mm256_cmp_pd(yd, max_y, _CMP_LE_OQ));
    const unsigned valid = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_and_pd(in_x, in_y)));

    __m128i ix4 =
        _mm256_cvttpd_epi32(_mm256_div_pd(_mm256_sub_pd(xd, min_x), pw));
    __m128i iy4 =
        _mm256_cvttpd_epi32(_mm256_div_pd(_mm256_sub_pd(yd, min_y), ph));
    // Closed max-edge fold: lanes equal to width/height step back by one.
    ix4 = _mm_add_epi32(ix4, _mm_cmpeq_epi32(ix4, width));
    iy4 = _mm_add_epi32(iy4, _mm_cmpeq_epi32(iy4, height));
    _mm_store_si128(reinterpret_cast<__m128i*>(idx),
                    _mm_add_epi32(_mm_mullo_epi32(iy4, width), ix4));
    for (int k = 0; k < 4; ++k) {
      out[i + k] = (valid >> k) & 1u ? idx[k] : kInvalidPixel;
    }
    hits += static_cast<std::size_t>(__builtin_popcount(valid));
  }
  for (; i < count; ++i) {
    out[i] = internal::ScalarPixelIndex(g, xs[i], ys[i]);
    hits += out[i] != kInvalidPixel;
  }
  return hits;
}

std::uint64_t SumSpanU32Avx2(const std::uint32_t* v, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();  // four u64 lanes
  const __m256i zero = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    acc = _mm256_add_epi64(acc, _mm256_unpacklo_epi32(x, zero));
    acc = _mm256_add_epi64(acc, _mm256_unpackhi_epi32(x, zero));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3] +
         internal::ScalarSumSpanU32(v + i, n - i);
}

std::size_t GatherNonZeroU32Avx2(const std::uint32_t* v, std::size_t n,
                                 std::uint32_t* out) {
  std::size_t found = 0;
  std::size_t i = 0;
  const __m256i zero = _mm256_setzero_si256();
  for (; i + 8 <= n; i += 8) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    unsigned m = static_cast<unsigned>(_mm256_movemask_ps(
                     _mm256_castsi256_ps(_mm256_cmpeq_epi32(x, zero)))) ^
                 0xFFu;
    while (m != 0) {
      const unsigned k = static_cast<unsigned>(__builtin_ctz(m));
      out[found++] = static_cast<std::uint32_t>(i) + k;
      m &= m - 1;
    }
  }
  found += internal::ScalarGatherNonZeroU32(v + i, n - i,
                                            static_cast<std::uint32_t>(i),
                                            out + found);
  return found;
}

std::uint64_t EdgeCoverageMaskAvx2(const EdgeRowSetup& row, int n) {
  if (n <= 0) return 0;
  // Four pixels per iteration: lane k sits k pixels ahead.
  __m256i e0 = _mm256_set_epi64x(row.e[0] + 3 * row.dx[0],
                                 row.e[0] + 2 * row.dx[0],
                                 row.e[0] + row.dx[0], row.e[0]);
  __m256i e1 = _mm256_set_epi64x(row.e[1] + 3 * row.dx[1],
                                 row.e[1] + 2 * row.dx[1],
                                 row.e[1] + row.dx[1], row.e[1]);
  __m256i e2 = _mm256_set_epi64x(row.e[2] + 3 * row.dx[2],
                                 row.e[2] + 2 * row.dx[2],
                                 row.e[2] + row.dx[2], row.e[2]);
  const __m256i s0 = _mm256_set1_epi64x(4 * row.dx[0]);
  const __m256i s1 = _mm256_set1_epi64x(4 * row.dx[1]);
  const __m256i s2 = _mm256_set1_epi64x(4 * row.dx[2]);
  std::uint64_t mask = 0;
  for (int i = 0; i < n; i += 4) {
    const __m256i ored = _mm256_or_si256(_mm256_or_si256(e0, e1), e2);
    // movemask_pd reads the four 64-bit sign bits: clear sign ⇒ covered.
    const unsigned covered =
        ~static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(ored))) &
        0xFu;
    mask |= static_cast<std::uint64_t>(covered) << i;
    e0 = _mm256_add_epi64(e0, s0);
    e1 = _mm256_add_epi64(e1, s1);
    e2 = _mm256_add_epi64(e2, s2);
  }
  // The loop may compute up to three pixels past n-1; trim them.
  if (n < 64) mask &= (std::uint64_t{1} << n) - 1;
  return mask;
}

}  // namespace

const RasterKernels kAvx2RasterKernels = {
    "avx2",
    &ComputePixelIndicesAvx2,
    &SumSpanU32Avx2,
    &GatherNonZeroU32Avx2,
    &EdgeCoverageMaskAvx2,
};

}  // namespace urbane::raster

#endif  // URBANE_RASTER_X86
