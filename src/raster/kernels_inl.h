#ifndef URBANE_RASTER_KERNELS_INL_H_
#define URBANE_RASTER_KERNELS_INL_H_

// Shared scalar bodies for the kernel tables: kernels_scalar.cc wraps these
// directly, and the SSE2/AVX2 translation units use them for loop tails so
// the remainder lanes are — by construction — the same code at every level.

#include <cstddef>
#include <cstdint>

#include "raster/kernels.h"

namespace urbane::raster::internal {

/// Pixel index of one point, or kInvalidPixel. Mirrors
/// Viewport::PixelForPoint exactly (closed box, truncating division,
/// max-edge fold); the comparisons reject NaN.
inline std::uint32_t ScalarPixelIndex(const SplatGeometry& g, float xf,
                                      float yf) {
  const double x = xf;
  const double y = yf;
  if (!(x >= g.min_x && x <= g.max_x && y >= g.min_y && y <= g.max_y)) {
    return kInvalidPixel;
  }
  std::int32_t ix = static_cast<std::int32_t>((x - g.min_x) / g.pixel_w);
  std::int32_t iy = static_cast<std::int32_t>((y - g.min_y) / g.pixel_h);
  if (ix == g.width) ix = g.width - 1;
  if (iy == g.height) iy = g.height - 1;
  return static_cast<std::uint32_t>(iy) * static_cast<std::uint32_t>(g.width) +
         static_cast<std::uint32_t>(ix);
}

inline std::size_t ScalarComputePixelIndices(const SplatGeometry& g,
                                             const float* xs, const float* ys,
                                             std::size_t count,
                                             std::uint32_t* out) {
  std::size_t hits = 0;
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = ScalarPixelIndex(g, xs[i], ys[i]);
    hits += out[i] != kInvalidPixel;
  }
  return hits;
}

inline std::uint64_t ScalarSumSpanU32(const std::uint32_t* v, std::size_t n) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < n; ++i) sum += v[i];
  return sum;
}

/// Appends ascending indices of nonzero entries; `base` offsets the stored
/// index so vector callers can reuse it for tails.
inline std::size_t ScalarGatherNonZeroU32(const std::uint32_t* v,
                                          std::size_t n, std::uint32_t base,
                                          std::uint32_t* out) {
  std::size_t found = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (v[i] != 0) out[found++] = base + static_cast<std::uint32_t>(i);
  }
  return found;
}

inline std::uint64_t ScalarEdgeCoverageMask(const EdgeRowSetup& row, int n) {
  std::uint64_t mask = 0;
  std::int64_t e0 = row.e[0], e1 = row.e[1], e2 = row.e[2];
  for (int i = 0; i < n; ++i) {
    // Biased edges: covered iff every value is non-negative, i.e. the OR of
    // the three sign bits is clear.
    if (((e0 | e1 | e2) >> 63) == 0) mask |= std::uint64_t{1} << i;
    e0 += row.dx[0];
    e1 += row.dx[1];
    e2 += row.dx[2];
  }
  return mask;
}

}  // namespace urbane::raster::internal

#endif  // URBANE_RASTER_KERNELS_INL_H_
