// 128-bit kernel table. SSE2 is the x86-64 baseline, so this TU needs no
// special compile flags; it must produce bit-identical results to
// kernels_scalar.cc on every input (enforced by tests/raster/simd_*).
#include "raster/kernels.h"

#if URBANE_RASTER_X86

#include <emmintrin.h>

#include <cstddef>
#include <cstdint>

#include "raster/kernels_inl.h"

namespace urbane::raster {
namespace {

// iy * width + ix for four u32 lanes without SSE4.1's _mm_mullo_epi32:
// multiply the even and odd lanes with _mm_mul_epu32 and re-interleave the
// low halves (the products fit 32 bits for any in-canvas pixel).
inline __m128i MulAddU32(__m128i iy, __m128i width, __m128i ix) {
  const __m128i even = _mm_mul_epu32(iy, width);
  const __m128i odd =
      _mm_mul_epu32(_mm_srli_si128(iy, 4), _mm_srli_si128(width, 4));
  const __m128i lo =
      _mm_unpacklo_epi32(_mm_shuffle_epi32(even, _MM_SHUFFLE(0, 0, 2, 0)),
                         _mm_shuffle_epi32(odd, _MM_SHUFFLE(0, 0, 2, 0)));
  return _mm_add_epi32(lo, ix);
}

std::size_t ComputePixelIndicesSse2(const SplatGeometry& g, const float* xs,
                                    const float* ys, std::size_t count,
                                    std::uint32_t* out) {
  const __m128d min_x = _mm_set1_pd(g.min_x), max_x = _mm_set1_pd(g.max_x);
  const __m128d min_y = _mm_set1_pd(g.min_y), max_y = _mm_set1_pd(g.max_y);
  const __m128d pw = _mm_set1_pd(g.pixel_w), ph = _mm_set1_pd(g.pixel_h);
  const __m128i width = _mm_set1_epi32(g.width);
  const __m128i height = _mm_set1_epi32(g.height);

  std::size_t hits = 0;
  std::size_t i = 0;
  alignas(16) std::uint32_t idx[4];
  for (; i + 4 <= count; i += 4) {
    const __m128 xf = _mm_loadu_ps(xs + i);
    const __m128 yf = _mm_loadu_ps(ys + i);

    __m128i ix4 = _mm_setzero_si128();
    __m128i iy4 = _mm_setzero_si128();
    unsigned valid = 0;
    for (int half = 0; half < 2; ++half) {
      const __m128d xd = half == 0 ? _mm_cvtps_pd(xf)
                                   : _mm_cvtps_pd(_mm_movehl_ps(xf, xf));
      const __m128d yd = half == 0 ? _mm_cvtps_pd(yf)
                                   : _mm_cvtps_pd(_mm_movehl_ps(yf, yf));
      // Ordered compares: NaN lanes come out invalid, as in the scalar path.
      const __m128d in_x =
          _mm_and_pd(_mm_cmpge_pd(xd, min_x), _mm_cmple_pd(xd, max_x));
      const __m128d in_y =
          _mm_and_pd(_mm_cmpge_pd(yd, min_y), _mm_cmple_pd(yd, max_y));
      valid |= static_cast<unsigned>(
                   _mm_movemask_pd(_mm_and_pd(in_x, in_y)))
               << (2 * half);
      // Same IEEE ops as the scalar path: subtract, divide, truncate.
      const __m128i ix2 = _mm_cvttpd_epi32(_mm_div_pd(_mm_sub_pd(xd, min_x), pw));
      const __m128i iy2 = _mm_cvttpd_epi32(_mm_div_pd(_mm_sub_pd(yd, min_y), ph));
      if (half == 0) {
        ix4 = ix2;
        iy4 = iy2;
      } else {
        ix4 = _mm_unpacklo_epi64(ix4, ix2);
        iy4 = _mm_unpacklo_epi64(iy4, iy2);
      }
    }
    // Closed max-edge fold: lanes equal to width/height step back by one
    // (the compare mask is -1 in matching lanes).
    ix4 = _mm_add_epi32(ix4, _mm_cmpeq_epi32(ix4, width));
    iy4 = _mm_add_epi32(iy4, _mm_cmpeq_epi32(iy4, height));
    _mm_store_si128(reinterpret_cast<__m128i*>(idx),
                    MulAddU32(iy4, width, ix4));
    for (int k = 0; k < 4; ++k) {
      out[i + k] = (valid >> k) & 1u ? idx[k] : kInvalidPixel;
    }
    hits += static_cast<std::size_t>(__builtin_popcount(valid));
  }
  for (; i < count; ++i) {
    out[i] = internal::ScalarPixelIndex(g, xs[i], ys[i]);
    hits += out[i] != kInvalidPixel;
  }
  return hits;
}

std::uint64_t SumSpanU32Sse2(const std::uint32_t* v, std::size_t n) {
  __m128i acc = _mm_setzero_si128();  // two u64 lanes
  const __m128i zero = _mm_setzero_si128();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i));
    acc = _mm_add_epi64(acc, _mm_unpacklo_epi32(x, zero));
    acc = _mm_add_epi64(acc, _mm_unpackhi_epi32(x, zero));
  }
  alignas(16) std::uint64_t lanes[2];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), acc);
  return lanes[0] + lanes[1] + internal::ScalarSumSpanU32(v + i, n - i);
}

std::size_t GatherNonZeroU32Sse2(const std::uint32_t* v, std::size_t n,
                                 std::uint32_t* out) {
  std::size_t found = 0;
  std::size_t i = 0;
  const __m128i zero = _mm_setzero_si128();
  for (; i + 4 <= n; i += 4) {
    const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(v + i));
    unsigned m = static_cast<unsigned>(_mm_movemask_ps(
                     _mm_castsi128_ps(_mm_cmpeq_epi32(x, zero)))) ^
                 0xFu;
    while (m != 0) {
      const unsigned k = static_cast<unsigned>(__builtin_ctz(m));
      out[found++] = static_cast<std::uint32_t>(i) + k;
      m &= m - 1;
    }
  }
  found += internal::ScalarGatherNonZeroU32(v + i, n - i,
                                            static_cast<std::uint32_t>(i),
                                            out + found);
  return found;
}

std::uint64_t EdgeCoverageMaskSse2(const EdgeRowSetup& row, int n) {
  if (n <= 0) return 0;
  // Two pixels per iteration: lane 1 sits one pixel ahead of lane 0.
  __m128i e0 = _mm_set_epi64x(row.e[0] + row.dx[0], row.e[0]);
  __m128i e1 = _mm_set_epi64x(row.e[1] + row.dx[1], row.e[1]);
  __m128i e2 = _mm_set_epi64x(row.e[2] + row.dx[2], row.e[2]);
  const __m128i s0 = _mm_set1_epi64x(2 * row.dx[0]);
  const __m128i s1 = _mm_set1_epi64x(2 * row.dx[1]);
  const __m128i s2 = _mm_set1_epi64x(2 * row.dx[2]);
  std::uint64_t mask = 0;
  for (int i = 0; i < n; i += 2) {
    const __m128i ored = _mm_or_si128(_mm_or_si128(e0, e1), e2);
    // movemask_pd reads the two 64-bit sign bits: clear sign ⇒ covered.
    const unsigned covered =
        ~static_cast<unsigned>(_mm_movemask_pd(_mm_castsi128_pd(ored))) & 0x3u;
    mask |= static_cast<std::uint64_t>(covered) << i;
    e0 = _mm_add_epi64(e0, s0);
    e1 = _mm_add_epi64(e1, s1);
    e2 = _mm_add_epi64(e2, s2);
  }
  // The loop may compute one pixel past n-1; trim it.
  if (n < 64) mask &= (std::uint64_t{1} << n) - 1;
  return mask;
}

}  // namespace

const RasterKernels kSse2RasterKernels = {
    "sse2",
    &ComputePixelIndicesSse2,
    &SumSpanU32Sse2,
    &GatherNonZeroU32Sse2,
    &EdgeCoverageMaskSse2,
};

}  // namespace urbane::raster

#endif  // URBANE_RASTER_X86
