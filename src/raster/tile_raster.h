#ifndef URBANE_RASTER_TILE_RASTER_H_
#define URBANE_RASTER_TILE_RASTER_H_

// Tile-binned triangle rasterizer with fixed-point edge functions.
//
// The legacy RasterizeTriangle (rasterizer.h) steps three double-precision
// edge functions across the whole bounding box, one pixel at a time. This
// path restructures that loop around 64×64 screen tiles:
//
//   * vertices snap to a 1/65536-pixel lattice; edge functions become int64
//     cross products, evaluated in closed form — no incremental drift, and
//     the half-open tie rule (include_zero) is exact by construction;
//   * each edge's bias folds the tie rule into the sign bit, so "covered"
//     is simply (e0 | e1 | e2) >= 0 — the form the SIMD coverage kernels
//     test four/two lanes at a time;
//   * edge functions are linear, so their extrema over a tile sit at the
//     tile's corners: a tile where some edge's maximum is negative is
//     rejected outright, and a tile where every edge's minimum is
//     non-negative emits full-width spans with no per-pixel tests. Only
//     boundary tiles run the per-pixel coverage kernel.
//
// Determinism contract: the emitted pixel set depends only on the snapped
// geometry, never on the SIMD level (the coverage kernels are bit-equal at
// every level). On inputs whose pixel-space vertices already lie on the
// 1/65536 lattice, snapping is the identity and the pixel set equals the
// legacy double-precision oracle exactly (the simd fuzz suite drives both
// paths on lattice inputs and compares pixel sets). Triangles whose snapped
// coordinates leave the safe int64 range fall back to the legacy path —
// a geometry-only decision, identical at every SIMD level.

#include <cstdint>
#include <vector>

#include "geometry/polygon.h"
#include "geometry/triangulate.h"
#include "raster/kernels.h"
#include "raster/rasterizer.h"
#include "raster/tile.h"
#include "raster/viewport.h"

namespace urbane::raster {

/// Vertex snap granularity: 1/65536 of a pixel.
inline constexpr int kSubPixelBits = 16;
inline constexpr std::int64_t kSubPixelScale = std::int64_t{1} << kSubPixelBits;
inline constexpr std::int64_t kSubPixelHalf = kSubPixelScale / 2;

/// Snapped coordinates beyond this magnitude (±8192 pixels) could overflow
/// the int64 edge products; such triangles use the legacy double path.
inline constexpr std::int64_t kMaxSnappedCoord = std::int64_t{1} << 29;

/// One half-open run of covered pixels: row y, columns [x_begin, x_end).
struct PixelSpan {
  std::int32_t y;
  std::int32_t x_begin;
  std::int32_t x_end;
};

struct TileRasterStats {
  std::uint64_t tiles_visited = 0;
  std::uint64_t tiles_full = 0;     // trivially accepted (no per-pixel tests)
  std::uint64_t tiles_partial = 0;  // ran the coverage kernel
  std::uint64_t fragments = 0;      // covered pixels emitted
};

namespace internal {

/// Snapped, biased, clamped per-triangle state. base[k] is edge k's biased
/// value at the pixel-center of (ix_lo, iy_lo); dx/dy are per-pixel steps.
struct TriangleTileSetup {
  bool degenerate = false;     // zero snapped area, or empty pixel range
  bool use_fallback = false;   // coordinates out of fixed-point range
  int ix_lo = 0, ix_hi = -1;   // closed pixel ranges, clamped to the canvas
  int iy_lo = 0, iy_hi = -1;
  std::int64_t base[3] = {0, 0, 0};
  std::int64_t dx[3] = {0, 0, 0};
  std::int64_t dy[3] = {0, 0, 0};
};

TriangleTileSetup SetupTriangle(const Viewport& vp,
                                const geometry::Triangle& tri);

/// Emits the runs of set bits in `mask` (pixels [x0+bit, ...) on row y) as
/// half-open spans, ascending.
template <typename EmitSpan>
inline void EmitMaskSpans(std::uint64_t mask, int x0, int y, EmitSpan&& emit) {
  while (mask != 0) {
    const int start = __builtin_ctzll(mask);
    const std::uint64_t shifted = mask >> start;
    const std::uint64_t inverted = ~shifted;
    const int len = inverted == 0 ? 64 - start : __builtin_ctzll(inverted);
    emit(y, x0 + start, x0 + start + len);
    if (start + len >= 64) return;
    mask &= ~std::uint64_t{0} << (start + len);
  }
}

}  // namespace internal

/// Scan converts one triangle through the tile walk; `emit(y, x_begin,
/// x_end)` receives half-open covered spans (tile-major order). Degenerate
/// triangles emit nothing.
template <typename EmitSpan>
void TiledRasterizeTriangle(const Viewport& vp, const geometry::Triangle& tri,
                            const RasterKernels& kernels, EmitSpan&& emit,
                            TileRasterStats* stats = nullptr) {
  const internal::TriangleTileSetup setup = internal::SetupTriangle(vp, tri);
  if (setup.degenerate) return;
  if (setup.use_fallback) {
    RasterizeTriangle(vp, tri, [&](int ix, int iy) {
      emit(iy, ix, ix + 1);
      if (stats != nullptr) ++stats->fragments;
    });
    return;
  }

  const int tx_lo = TileCoord(setup.ix_lo), tx_hi = TileCoord(setup.ix_hi);
  const int ty_lo = TileCoord(setup.iy_lo), ty_hi = TileCoord(setup.iy_hi);
  for (int ty = ty_lo; ty <= ty_hi; ++ty) {
    const int y0 = ty == ty_lo ? setup.iy_lo : ty << kTileBits;
    const int y1 = ty == ty_hi ? setup.iy_hi : ((ty + 1) << kTileBits) - 1;
    for (int tx = tx_lo; tx <= tx_hi; ++tx) {
      const int x0 = tx == tx_lo ? setup.ix_lo : tx << kTileBits;
      const int x1 = tx == tx_hi ? setup.ix_hi : ((tx + 1) << kTileBits) - 1;
      if (stats != nullptr) ++stats->tiles_visited;

      // Edge functions are linear, so min/max over the tile sit at its
      // corners. Reject on any all-negative edge; accept fully when every
      // edge is non-negative at all four corners.
      bool reject = false;
      bool full = true;
      std::int64_t row_e[3];
      for (int k = 0; k < 3; ++k) {
        const std::int64_t v00 = setup.base[k] +
                                 (x0 - setup.ix_lo) * setup.dx[k] +
                                 (y0 - setup.iy_lo) * setup.dy[k];
        const std::int64_t v10 = v00 + (x1 - x0) * setup.dx[k];
        const std::int64_t v01 = v00 + (y1 - y0) * setup.dy[k];
        const std::int64_t v11 = v10 + (y1 - y0) * setup.dy[k];
        const std::int64_t lo = std::min(std::min(v00, v10), std::min(v01, v11));
        const std::int64_t hi = std::max(std::max(v00, v10), std::max(v01, v11));
        if (hi < 0) {
          reject = true;
          break;
        }
        if (lo < 0) full = false;
        row_e[k] = v00;
      }
      if (reject) continue;

      const int width = x1 - x0 + 1;
      if (full) {
        if (stats != nullptr) {
          ++stats->tiles_full;
          stats->fragments +=
              static_cast<std::uint64_t>(width) *
              static_cast<std::uint64_t>(y1 - y0 + 1);
        }
        for (int y = y0; y <= y1; ++y) emit(y, x0, x1 + 1);
        continue;
      }

      if (stats != nullptr) ++stats->tiles_partial;
      for (int y = y0; y <= y1; ++y) {
        EdgeRowSetup row;
        for (int k = 0; k < 3; ++k) {
          row.e[k] = row_e[k];
          row.dx[k] = setup.dx[k];
        }
        const std::uint64_t mask = kernels.edge_coverage_mask(row, width);
        if (mask != 0) {
          if (stats != nullptr) {
            stats->fragments +=
                static_cast<std::uint64_t>(__builtin_popcountll(mask));
          }
          internal::EmitMaskSpans(mask, x0, y, emit);
        }
        row_e[0] += setup.dy[0];
        row_e[1] += setup.dy[1];
        row_e[2] += setup.dy[2];
      }
    }
  }
}

/// Rasterizes a polygon via its triangulation through the tile walk.
/// Returns false when triangulation fails (degenerate polygon).
template <typename EmitSpan>
bool TiledRasterizePolygonTriangles(const Viewport& vp,
                                    const geometry::Polygon& polygon,
                                    const RasterKernels& kernels,
                                    EmitSpan&& emit,
                                    TileRasterStats* stats = nullptr) {
  auto triangles = geometry::TriangulatePolygon(polygon);
  if (!triangles.ok()) return false;
  for (const geometry::Triangle& tri : triangles.value()) {
    TiledRasterizeTriangle(vp, tri, kernels, emit, stats);
  }
  return true;
}

/// Collects a polygon's scanline spans (ScanlineFillPolygon, unchanged
/// geometry) into a row-major vector — the form the sweep caches per region
/// so repeated queries skip scan conversion entirely. Returns the number of
/// covered pixels appended.
std::size_t AppendPolygonSpans(const Viewport& vp,
                               const geometry::Polygon& polygon,
                               std::vector<PixelSpan>& out);

}  // namespace urbane::raster

#endif  // URBANE_RASTER_TILE_RASTER_H_
