#include "raster/morton.h"

#include <algorithm>
#include <numeric>

#include "raster/kernels.h"

namespace urbane::raster {

MortonSplatOrder MortonSplatOrder::Build(const Viewport& vp, const float* xs,
                                         const float* ys, std::size_t count) {
  MortonSplatOrder order;
  if (vp.width() <= 0 || vp.height() <= 0 || vp.width() > 0xFFFF ||
      vp.height() > 0xFFFF) {
    return order;  // disabled; callers splat in table order
  }
  order.enabled_ = true;

  // Pixel index per point via the dispatch kernels (identical at every
  // level), then a stable sort by the pixel's Z-order key. Out-of-canvas
  // points get the maximal key and sink to the end.
  std::vector<std::uint32_t> indices(count);
  const SplatGeometry geom = SplatGeometry::From(vp);
  ActiveKernels().compute_pixel_indices(geom, xs, ys, count, indices.data());

  const std::uint32_t width = static_cast<std::uint32_t>(vp.width());
  std::vector<std::uint32_t> keys(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t idx = indices[i];
    keys[i] = idx == kInvalidPixel
                  ? 0xFFFFFFFFu
                  : MortonPixelKey(idx % width, idx / width);
  }

  order.ids_.resize(count);
  std::iota(order.ids_.begin(), order.ids_.end(), 0u);
  std::stable_sort(order.ids_.begin(), order.ids_.end(),
                   [&keys](std::uint32_t a, std::uint32_t b) {
                     return keys[a] < keys[b];
                   });

  order.xs_.resize(count);
  order.ys_.resize(count);
  for (std::size_t k = 0; k < count; ++k) {
    order.xs_[k] = xs[order.ids_[k]];
    order.ys_[k] = ys[order.ids_[k]];
  }
  return order;
}

}  // namespace urbane::raster
