#ifndef URBANE_RASTER_VIEWPORT_H_
#define URBANE_RASTER_VIEWPORT_H_

#include <cmath>

#include "geometry/bounding_box.h"
#include "geometry/point.h"
#include "util/logging.h"

namespace urbane::raster {

/// Maps a world-coordinate window onto a W x H pixel grid (the "canvas" that
/// Raster Join draws on). Pixel (ix, iy) covers the half-open world cell
/// [min_x + ix*pw, min_x + (ix+1)*pw) x [min_y + iy*ph, min_y + (iy+1)*ph),
/// with iy growing upward (math convention; the image writer flips rows).
///
/// The raster-join error bound ε is the length of a pixel-cell diagonal: a
/// point assigned to a region by pixel ownership is at most ε away from the
/// region's true boundary.
class Viewport {
 public:
  Viewport(const geometry::BoundingBox& world, int width, int height)
      : world_(world), width_(width), height_(height) {
    URBANE_CHECK(width > 0 && height > 0) << "viewport must be non-empty";
    URBANE_CHECK(!world.IsEmpty()) << "world bounds must be non-empty";
    pixel_w_ = world.Width() / width;
    pixel_h_ = world.Height() / height;
    URBANE_CHECK(pixel_w_ > 0.0 && pixel_h_ > 0.0)
        << "world bounds must have positive extent";
  }

  /// Square-pixel viewport: chooses the height to (approximately) preserve
  /// the world aspect ratio at the given width.
  static Viewport WithSquarePixels(const geometry::BoundingBox& world,
                                   int width) {
    const double aspect = world.Height() / world.Width();
    const int height =
        std::max(1, static_cast<int>(std::lround(width * aspect)));
    return Viewport(world, width, height);
  }

  int width() const { return width_; }
  int height() const { return height_; }
  const geometry::BoundingBox& world() const { return world_; }
  double pixel_width() const { return pixel_w_; }
  double pixel_height() const { return pixel_h_; }

  /// Geometric error bound of pixel-ownership assignment (cell diagonal).
  double EpsilonWorld() const {
    return std::sqrt(pixel_w_ * pixel_w_ + pixel_h_ * pixel_h_);
  }

  /// Continuous pixel coordinates (pixel ix covers [ix, ix+1)).
  double WorldToPixelX(double wx) const {
    return (wx - world_.min_x) / pixel_w_;
  }
  double WorldToPixelY(double wy) const {
    return (wy - world_.min_y) / pixel_h_;
  }

  geometry::Vec2 PixelCenter(int ix, int iy) const {
    return {world_.min_x + (ix + 0.5) * pixel_w_,
            world_.min_y + (iy + 0.5) * pixel_h_};
  }

  geometry::BoundingBox PixelCell(int ix, int iy) const {
    return {world_.min_x + ix * pixel_w_, world_.min_y + iy * pixel_h_,
            world_.min_x + (ix + 1) * pixel_w_,
            world_.min_y + (iy + 1) * pixel_h_};
  }

  bool PixelInBounds(int ix, int iy) const {
    return ix >= 0 && ix < width_ && iy >= 0 && iy < height_;
  }

  /// Pixel owning a world point. Points on the max edge are folded into the
  /// last row/column so the world box is fully covered; returns false for
  /// points outside the world box.
  bool PixelForPoint(const geometry::Vec2& p, int& ix, int& iy) const {
    if (!world_.Contains(p)) {
      return false;
    }
    ix = static_cast<int>(WorldToPixelX(p.x));
    iy = static_cast<int>(WorldToPixelY(p.y));
    if (ix == width_) ix = width_ - 1;
    if (iy == height_) iy = height_ - 1;
    return PixelInBounds(ix, iy);
  }

  /// Clamps continuous pixel x to a valid column index.
  int ClampPixelX(double px) const {
    if (px < 0) return 0;
    if (px >= width_) return width_ - 1;
    return static_cast<int>(px);
  }
  int ClampPixelY(double py) const {
    if (py < 0) return 0;
    if (py >= height_) return height_ - 1;
    return static_cast<int>(py);
  }

 private:
  geometry::BoundingBox world_;
  int width_;
  int height_;
  double pixel_w_;
  double pixel_h_;
};

}  // namespace urbane::raster

#endif  // URBANE_RASTER_VIEWPORT_H_
