#include "raster/image.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>

namespace urbane::raster {

Status WritePpm(const Image& image, const std::string& path) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return Status::IoError("cannot open image file for writing: " + path);
  }
  file << "P6\n" << image.width() << " " << image.height() << "\n255\n";
  for (int y = image.height() - 1; y >= 0; --y) {
    const Rgb* row = image.Row(y);
    for (int x = 0; x < image.width(); ++x) {
      const char rgb[3] = {static_cast<char>(row[x].r),
                           static_cast<char>(row[x].g),
                           static_cast<char>(row[x].b)};
      file.write(rgb, 3);
    }
  }
  if (!file) {
    return Status::IoError("write failure on image file: " + path);
  }
  return Status::OK();
}

Status WritePgm(const Buffer2D<std::uint8_t>& gray, const std::string& path) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    return Status::IoError("cannot open image file for writing: " + path);
  }
  file << "P5\n" << gray.width() << " " << gray.height() << "\n255\n";
  for (int y = gray.height() - 1; y >= 0; --y) {
    file.write(reinterpret_cast<const char*>(gray.Row(y)), gray.width());
  }
  if (!file) {
    return Status::IoError("write failure on image file: " + path);
  }
  return Status::OK();
}

Image ColormapBuffer(const Buffer2D<float>& values, const Colormap& colormap,
                     double lo, double hi) {
  if (lo == hi) {
    lo = std::numeric_limits<double>::infinity();
    hi = -std::numeric_limits<double>::infinity();
    for (const float v : values.data()) {
      lo = std::min(lo, static_cast<double>(v));
      hi = std::max(hi, static_cast<double>(v));
    }
    if (!(hi > lo)) {
      hi = lo + 1.0;
    }
  }
  Image image(values.width(), values.height());
  for (int y = 0; y < values.height(); ++y) {
    const float* src = values.Row(y);
    Rgb* dst = image.Row(y);
    for (int x = 0; x < values.width(); ++x) {
      dst[x] = colormap.MapRange(src[x], lo, hi);
    }
  }
  return image;
}

Image ColormapCounts(const Buffer2D<std::uint32_t>& counts,
                     const Colormap& colormap, bool log_scale) {
  Buffer2D<float> scaled(counts.width(), counts.height());
  for (int y = 0; y < counts.height(); ++y) {
    const std::uint32_t* src = counts.Row(y);
    float* dst = scaled.Row(y);
    for (int x = 0; x < counts.width(); ++x) {
      dst[x] = log_scale ? std::log1p(static_cast<float>(src[x]))
                         : static_cast<float>(src[x]);
    }
  }
  return ColormapBuffer(scaled, colormap);
}

}  // namespace urbane::raster
