#ifndef URBANE_RASTER_KERNELS_H_
#define URBANE_RASTER_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "raster/simd.h"
#include "raster/viewport.h"

// x86-64 builds ship SSE2 and AVX2 kernel tables next to the portable
// scalar one; every other architecture gets the scalar table at all levels.
#if defined(__x86_64__) || defined(_M_X64)
#define URBANE_RASTER_X86 1
#else
#define URBANE_RASTER_X86 0
#endif

namespace urbane::raster {

/// Sentinel pixel index for a point outside the canvas world box.
inline constexpr std::uint32_t kInvalidPixel = 0xFFFFFFFFu;

/// The exact arithmetic of Viewport::PixelForPoint, flattened into a POD so
/// kernels can vectorize it. Every kernel must reproduce the scalar mapping
/// bit-for-bit: closed-box containment in double, then
/// `static_cast<int>((w - min) / pixel)` (IEEE division, truncation), then
/// the max-edge fold — this is what keeps splats identical at every
/// SimdLevel.
struct SplatGeometry {
  double min_x, min_y, max_x, max_y;  // closed world box
  double pixel_w, pixel_h;
  std::int32_t width, height;

  static SplatGeometry From(const Viewport& vp) {
    const geometry::BoundingBox& world = vp.world();
    return {world.min_x, world.min_y, world.max_x,  world.max_y,
            vp.pixel_width(), vp.pixel_height(), vp.width(), vp.height()};
  }
};

/// One row segment of the fixed-point triangle rasterizer: three biased
/// edge values at the segment's first pixel center plus per-pixel steps.
/// The bias folds the fill rule into a sign test — a pixel is covered iff
/// all three values are >= 0, i.e. iff (e0 | e1 | e2) has a clear sign bit
/// (see tile_raster.h for the setup).
struct EdgeRowSetup {
  std::int64_t e[3];
  std::int64_t dx[3];
};

/// Dispatch table of the data-parallel inner loops shared by the splat and
/// sweep passes. All kernels are pure functions with lane-count-independent
/// semantics: the scalar table is the executable specification, and the
/// SSE2/AVX2 tables must match it bit-for-bit on every input (the simd test
/// suite enforces this).
struct RasterKernels {
  const char* name;

  /// Splat pass 1: out[i] = linear framebuffer index of point i, or
  /// kInvalidPixel when the point is outside the world box (NaNs are
  /// outside). Returns the number of valid indices.
  std::size_t (*compute_pixel_indices)(const SplatGeometry& geom,
                                       const float* xs, const float* ys,
                                       std::size_t count, std::uint32_t* out);

  /// Sweep pass 2, COUNT fast path: exact u64 sum of a u32 span.
  std::uint64_t (*sum_span_u32)(const std::uint32_t* v, std::size_t n);

  /// Sweep pass 2, sparse path: writes i (ascending) for every v[i] != 0;
  /// returns how many were written. `out` must hold at least n entries.
  std::size_t (*gather_nonzero_u32)(const std::uint32_t* v, std::size_t n,
                                    std::uint32_t* out);

  /// Tiled triangle rasterizer: coverage bits of up to 64 consecutive
  /// pixels (bit i set iff pixel i is covered under `row`). n in [0, 64].
  std::uint64_t (*edge_coverage_mask)(const EdgeRowSetup& row, int n);
};

/// Kernel table for a level (levels absent from this build resolve to the
/// nearest level below that is present).
const RasterKernels& KernelsForLevel(SimdLevel level);

/// KernelsForLevel(ActiveSimdLevel()).
const RasterKernels& ActiveKernels();

extern const RasterKernels kScalarRasterKernels;
#if URBANE_RASTER_X86
extern const RasterKernels kSse2RasterKernels;
extern const RasterKernels kAvx2RasterKernels;
#endif

}  // namespace urbane::raster

#endif  // URBANE_RASTER_KERNELS_H_
