#ifndef URBANE_RASTER_FONT_H_
#define URBANE_RASTER_FONT_H_

#include <string>

#include "raster/image.h"

namespace urbane::raster {

/// Built-in 5x7 bitmap font (uppercase letters, digits, common punctuation;
/// lowercase is rendered as uppercase). Just enough typography for the map
/// view's titles and legend labels without an external font dependency.
constexpr int kGlyphWidth = 5;
constexpr int kGlyphHeight = 7;

/// Pixel width of `text` at the given integer scale (including 1-pixel
/// inter-glyph spacing).
int TextWidth(const std::string& text, int scale = 1);
int TextHeight(int scale = 1);

/// Draws text with its top-left corner at (x, y) in *image* coordinates
/// (y = 0 is the image's bottom row, consistent with Viewport; the glyphs
/// are oriented for the flipped PPM output). Pixels outside the image are
/// clipped. Returns the x coordinate just past the rendered text.
int DrawText(Image& image, int x, int y, const std::string& text,
             const Rgb& color, int scale = 1);

/// Draws a horizontal legend bar of `width` x `height` pixels with its
/// bottom-left corner at (x, y), colored by the colormap, with `lo`/`hi`
/// labels underneath and an optional title above.
void DrawLegendBar(Image& image, int x, int y, int width, int height,
                   const Colormap& colormap, const std::string& lo_label,
                   const std::string& hi_label, const std::string& title,
                   const Rgb& text_color);

}  // namespace urbane::raster

#endif  // URBANE_RASTER_FONT_H_
