#include "raster/tile_raster.h"

#include <algorithm>
#include <cmath>

namespace urbane::raster {

/// Largest canvas side the fixed-point path accepts: pixel centers must
/// stay within kMaxSnappedCoord so the int64 edge products cannot overflow.
static constexpr int kMaxTiledCanvasDim = 8192;

namespace internal {

TriangleTileSetup SetupTriangle(const Viewport& vp,
                                const geometry::Triangle& tri) {
  TriangleTileSetup s;
  if (vp.width() <= 0 || vp.height() <= 0) {
    s.degenerate = true;
    return s;
  }
  if (vp.width() > kMaxTiledCanvasDim || vp.height() > kMaxTiledCanvasDim) {
    s.use_fallback = true;
    return s;
  }

  // Snap the pixel-space vertices to the 1/65536 lattice. Coordinates out
  // of the safe range (or NaN) route to the double fallback — a decision
  // made from geometry alone, so it is identical at every SIMD level.
  const geometry::Vec2 v[3] = {tri.a, tri.b, tri.c};
  std::int64_t sx[3];
  std::int64_t sy[3];
  for (int k = 0; k < 3; ++k) {
    const double px = vp.WorldToPixelX(v[k].x) * static_cast<double>(kSubPixelScale);
    const double py = vp.WorldToPixelY(v[k].y) * static_cast<double>(kSubPixelScale);
    if (!(std::fabs(px) < static_cast<double>(kMaxSnappedCoord)) ||
        !(std::fabs(py) < static_cast<double>(kMaxSnappedCoord))) {
      s.use_fallback = true;
      return s;
    }
    sx[k] = std::llround(px);
    sy[k] = std::llround(py);
  }

  // Enforce counter-clockwise winding in snapped space (positive area).
  const std::int64_t area2 = (sx[1] - sx[0]) * (sy[2] - sy[0]) -
                             (sy[1] - sy[0]) * (sx[2] - sx[0]);
  if (area2 == 0) {
    s.degenerate = true;
    return s;
  }
  if (area2 < 0) {
    std::swap(sx[1], sx[2]);
    std::swap(sy[1], sy[2]);
  }

  // Tight pixel range: columns whose center (ix*S + S/2) can lie in the
  // snapped x-range, rows likewise. Integer ceil/floor division keeps the
  // range exact for negative coordinates too.
  const auto floor_div = [](std::int64_t a, std::int64_t b) {
    return a >= 0 ? a / b : -((-a + b - 1) / b);
  };
  const auto ceil_div = [](std::int64_t a, std::int64_t b) {
    return a >= 0 ? (a + b - 1) / b : -(-a / b);
  };
  const std::int64_t min_sx = std::min({sx[0], sx[1], sx[2]});
  const std::int64_t max_sx = std::max({sx[0], sx[1], sx[2]});
  const std::int64_t min_sy = std::min({sy[0], sy[1], sy[2]});
  const std::int64_t max_sy = std::max({sy[0], sy[1], sy[2]});
  s.ix_lo = static_cast<int>(std::max<std::int64_t>(
      0, ceil_div(min_sx - kSubPixelHalf, kSubPixelScale)));
  s.ix_hi = static_cast<int>(std::min<std::int64_t>(
      vp.width() - 1, floor_div(max_sx - kSubPixelHalf, kSubPixelScale)));
  s.iy_lo = static_cast<int>(std::max<std::int64_t>(
      0, ceil_div(min_sy - kSubPixelHalf, kSubPixelScale)));
  s.iy_hi = static_cast<int>(std::min<std::int64_t>(
      vp.height() - 1, floor_div(max_sy - kSubPixelHalf, kSubPixelScale)));
  if (s.ix_lo > s.ix_hi || s.iy_lo > s.iy_hi) {
    s.degenerate = true;
    return s;
  }

  // Edge functions E(c) = d × (c - p) at the first pixel center, with the
  // half-open tie rule folded into the bias: covered ⇔ E' >= 0 where
  // E' = E - (include_zero ? 0 : 1). The world→pixel map scales both axes
  // by positive factors, so edge-direction signs (and hence the tie rule)
  // match the world-space rule of the double oracle.
  const std::int64_t cx0 =
      static_cast<std::int64_t>(s.ix_lo) * kSubPixelScale + kSubPixelHalf;
  const std::int64_t cy0 =
      static_cast<std::int64_t>(s.iy_lo) * kSubPixelScale + kSubPixelHalf;
  for (int e = 0; e < 3; ++e) {
    const std::int64_t px = sx[e], py = sy[e];
    const std::int64_t qx = sx[(e + 1) % 3], qy = sy[(e + 1) % 3];
    const std::int64_t dxs = qx - px;
    const std::int64_t dys = qy - py;
    const std::int64_t value = dxs * (cy0 - py) - dys * (cx0 - px);
    const bool include_zero = dys < 0 || (dys == 0 && dxs > 0);
    s.base[e] = value - (include_zero ? 0 : 1);
    s.dx[e] = -dys * kSubPixelScale;  // per +1 pixel in x
    s.dy[e] = dxs * kSubPixelScale;   // per +1 pixel in y
  }
  return s;
}

}  // namespace internal

std::size_t AppendPolygonSpans(const Viewport& vp,
                               const geometry::Polygon& polygon,
                               std::vector<PixelSpan>& out) {
  std::size_t pixels = 0;
  ScanlineFillPolygon(vp, polygon, [&](int y, int x_begin, int x_end) {
    out.push_back({y, x_begin, x_end});
    pixels += static_cast<std::size_t>(x_end - x_begin);
  });
  return pixels;
}

}  // namespace urbane::raster
