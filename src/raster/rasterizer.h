#ifndef URBANE_RASTER_RASTERIZER_H_
#define URBANE_RASTER_RASTERIZER_H_

#include <algorithm>
#include <cmath>
#include <vector>

#include "geometry/polygon.h"
#include "geometry/triangulate.h"
#include "raster/viewport.h"

namespace urbane::raster {

/// Pixel-coverage rules
/// --------------------
/// A pixel is covered by a shape iff the pixel's *center* is inside the
/// shape, with half-open boundary ties broken toward the left/bottom. This
/// is the standard GPU sample-point rule; it guarantees that a tessellated
/// polygon (triangle path) and the polygon itself (scanline path) cover the
/// same pixel set, and that triangles sharing an edge never double-cover.

/// Scan converts one triangle; `emit(ix, iy)` is called once per covered
/// pixel. Degenerate (zero-area) triangles emit nothing.
template <typename Emit>
void RasterizeTriangle(const Viewport& vp, const geometry::Triangle& tri,
                       Emit&& emit) {
  geometry::Vec2 a = tri.a;
  geometry::Vec2 b = tri.b;
  geometry::Vec2 c = tri.c;
  const double orient = geometry::Orient2d(a, b, c);
  if (orient == 0.0) {
    return;
  }
  if (orient < 0.0) {
    std::swap(b, c);  // enforce counter-clockwise winding
  }

  geometry::BoundingBox box;
  box.Extend(a);
  box.Extend(b);
  box.Extend(c);
  const int ix_lo = std::max(
      0, static_cast<int>(std::floor(vp.WorldToPixelX(box.min_x) - 0.5)));
  const int ix_hi = std::min(
      vp.width() - 1,
      static_cast<int>(std::ceil(vp.WorldToPixelX(box.max_x) - 0.5)));
  const int iy_lo = std::max(
      0, static_cast<int>(std::floor(vp.WorldToPixelY(box.min_y) - 0.5)));
  const int iy_hi = std::min(
      vp.height() - 1,
      static_cast<int>(std::ceil(vp.WorldToPixelY(box.max_y) - 0.5)));
  if (ix_lo > ix_hi || iy_lo > iy_hi) {
    return;
  }

  // Edge functions, evaluated at pixel centers and stepped incrementally.
  struct EdgeFn {
    double value_at_row_start;
    double dx;  // change per +1 pixel in x
    double dy;  // change per +1 pixel in y
    bool include_zero;
  };
  const geometry::Vec2 verts[3] = {a, b, c};
  EdgeFn edges[3];
  const geometry::Vec2 origin = vp.PixelCenter(ix_lo, iy_lo);
  for (int e = 0; e < 3; ++e) {
    const geometry::Vec2& p = verts[e];
    const geometry::Vec2& q = verts[(e + 1) % 3];
    const geometry::Vec2 d = q - p;
    // E(s) = d x (s - p); E > 0 strictly inside (CCW). Ties included only on
    // left (downward) and bottom (rightward horizontal) edges so adjacent
    // triangles partition shared pixels.
    edges[e].value_at_row_start = d.Cross(origin - p);
    edges[e].dx = -d.y * vp.pixel_width();
    edges[e].dy = d.x * vp.pixel_height();
    edges[e].include_zero = d.y < 0.0 || (d.y == 0.0 && d.x > 0.0);
  }

  for (int iy = iy_lo; iy <= iy_hi; ++iy) {
    double ev[3] = {edges[0].value_at_row_start, edges[1].value_at_row_start,
                    edges[2].value_at_row_start};
    for (int ix = ix_lo; ix <= ix_hi; ++ix) {
      bool inside = true;
      for (int e = 0; e < 3; ++e) {
        if (!(ev[e] > 0.0 || (ev[e] == 0.0 && edges[e].include_zero))) {
          inside = false;
          break;
        }
      }
      if (inside) {
        emit(ix, iy);
      }
      ev[0] += edges[0].dx;
      ev[1] += edges[1].dx;
      ev[2] += edges[2].dx;
    }
    edges[0].value_at_row_start += edges[0].dy;
    edges[1].value_at_row_start += edges[1].dy;
    edges[2].value_at_row_start += edges[2].dy;
  }
}

namespace internal {

/// Computes the sorted even-odd crossing x-positions of all polygon rings
/// with the horizontal line y = `scan_y`, appending into `crossings`.
void CollectRowCrossings(const geometry::Polygon& polygon, double scan_y,
                         std::vector<double>& crossings);

/// First pixel column whose center x >= world x (continuous -> discrete).
inline int FirstCenterAtOrAfter(const Viewport& vp, double world_x) {
  return static_cast<int>(std::ceil(vp.WorldToPixelX(world_x) - 0.5));
}

}  // namespace internal

/// Scanline (even-odd) fill of a polygon with holes; `emit(iy, x_begin,
/// x_end)` receives half-open pixel spans on each covered row. Equivalent
/// pixel set to rasterizing the polygon's triangulation, but needs no
/// tessellation and handles holes directly — this is the region-drawing
/// primitive Raster Join uses to sweep a polygon over the point canvas.
template <typename EmitSpan>
void ScanlineFillPolygon(const Viewport& vp, const geometry::Polygon& polygon,
                         EmitSpan&& emit) {
  const geometry::BoundingBox box = polygon.Bounds();
  if (box.IsEmpty()) return;
  const int iy_lo = std::max(
      0, static_cast<int>(std::floor(vp.WorldToPixelY(box.min_y) - 0.5)));
  const int iy_hi = std::min(
      vp.height() - 1,
      static_cast<int>(std::ceil(vp.WorldToPixelY(box.max_y) - 0.5)));
  std::vector<double> crossings;
  for (int iy = iy_lo; iy <= iy_hi; ++iy) {
    const double scan_y = vp.PixelCenter(0, iy).y;
    crossings.clear();
    internal::CollectRowCrossings(polygon, scan_y, crossings);
    for (std::size_t k = 0; k + 1 < crossings.size(); k += 2) {
      int x_begin = internal::FirstCenterAtOrAfter(vp, crossings[k]);
      int x_end = internal::FirstCenterAtOrAfter(vp, crossings[k + 1]);
      x_begin = std::max(x_begin, 0);
      x_end = std::min(x_end, vp.width());
      if (x_begin < x_end) {
        emit(iy, x_begin, x_end);
      }
    }
  }
}

/// Per-pixel adapter over ScanlineFillPolygon.
template <typename Emit>
void ScanlineFillPolygonPixels(const Viewport& vp,
                               const geometry::Polygon& polygon,
                               Emit&& emit) {
  ScanlineFillPolygon(vp, polygon, [&](int iy, int x_begin, int x_end) {
    for (int ix = x_begin; ix < x_end; ++ix) {
      emit(ix, iy);
    }
  });
}

/// Conservatively rasterizes a single segment: `emit(ix, iy)` is called for
/// every pixel whose closed cell the segment touches (never misses a cell).
/// Out-of-viewport parts are skipped.
template <typename Emit>
void RasterizeSegmentConservative(const Viewport& vp, const geometry::Vec2& a,
                                  const geometry::Vec2& b, Emit&& emit) {
  const double x_lo = std::min(a.x, b.x);
  const double x_hi = std::max(a.x, b.x);
  const double y_lo_seg = std::min(a.y, b.y);
  const double y_hi_seg = std::max(a.y, b.y);
  const geometry::BoundingBox& world = vp.world();
  if (x_hi < world.min_x || x_lo > world.max_x || y_hi_seg < world.min_y ||
      y_lo_seg > world.max_y) {
    return;
  }

  const int ix_first =
      std::max(0, static_cast<int>(std::floor(vp.WorldToPixelX(x_lo))));
  const int ix_last = std::min(
      vp.width() - 1, static_cast<int>(std::floor(vp.WorldToPixelX(x_hi))));

  const bool vertical = (b.x == a.x);
  const double inv_dx = vertical ? 0.0 : 1.0 / (b.x - a.x);

  for (int ix = ix_first; ix <= ix_last; ++ix) {
    double y0;
    double y1;
    if (vertical) {
      y0 = y_lo_seg;
      y1 = y_hi_seg;
    } else {
      // Segment's y-range over this column's x-slab.
      const geometry::BoundingBox cell = vp.PixelCell(ix, 0);
      const double xs = std::max(x_lo, cell.min_x);
      const double xe = std::min(x_hi, cell.max_x);
      const double t0 = (xs - a.x) * inv_dx;
      const double t1 = (xe - a.x) * inv_dx;
      const double ya = a.y + (b.y - a.y) * t0;
      const double yb = a.y + (b.y - a.y) * t1;
      y0 = std::min(ya, yb);
      y1 = std::max(ya, yb);
    }
    if (y1 < world.min_y || y0 > world.max_y) {
      continue;
    }
    const int iy_first =
        std::max(0, static_cast<int>(std::floor(vp.WorldToPixelY(y0))));
    const int iy_last = std::min(
        vp.height() - 1, static_cast<int>(std::floor(vp.WorldToPixelY(y1))));
    for (int iy = iy_first; iy <= iy_last; ++iy) {
      emit(ix, iy);
    }
  }
}

/// Conservatively rasterizes every ring edge of the polygon. Used by the
/// accurate raster join to find the pixels where pixel-ownership may err
/// (cells straddling a region boundary).
template <typename Emit>
void RasterizePolygonBoundary(const Viewport& vp,
                              const geometry::Polygon& polygon, Emit&& emit) {
  auto do_ring = [&](const geometry::Ring& ring) {
    const std::size_t n = ring.size();
    for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
      RasterizeSegmentConservative(vp, ring[j], ring[i], emit);
    }
  };
  do_ring(polygon.outer());
  for (const geometry::Ring& hole : polygon.holes()) {
    do_ring(hole);
  }
}

/// Rasterizes a polygon via its triangulation (the GPU-authentic path).
/// Returns false when triangulation fails (degenerate polygon).
template <typename Emit>
bool RasterizePolygonTriangles(const Viewport& vp,
                               const geometry::Polygon& polygon,
                               Emit&& emit) {
  auto triangles = geometry::TriangulatePolygon(polygon);
  if (!triangles.ok()) {
    return false;
  }
  for (const geometry::Triangle& tri : triangles.value()) {
    RasterizeTriangle(vp, tri, emit);
  }
  return true;
}

}  // namespace urbane::raster

#endif  // URBANE_RASTER_RASTERIZER_H_
