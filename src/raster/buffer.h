#ifndef URBANE_RASTER_BUFFER_H_
#define URBANE_RASTER_BUFFER_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "util/logging.h"

namespace urbane::raster {

/// Row-major 2-D buffer — the software analogue of a GPU render target /
/// texture. `T` is typically std::uint32_t (counts), float (sums) or
/// std::int32_t (region ids).
template <typename T>
class Buffer2D {
 public:
  Buffer2D() : width_(0), height_(0) {}
  Buffer2D(int width, int height, T fill_value = T{})
      : width_(width),
        height_(height),
        data_(static_cast<std::size_t>(width) * height, fill_value) {
    URBANE_DCHECK(width >= 0 && height >= 0);
  }

  int width() const { return width_; }
  int height() const { return height_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  T& at(int x, int y) {
    URBANE_DCHECK(InBounds(x, y)) << "(" << x << ", " << y << ")";
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }
  const T& at(int x, int y) const {
    URBANE_DCHECK(InBounds(x, y)) << "(" << x << ", " << y << ")";
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }

  bool InBounds(int x, int y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  void Fill(const T& value) { std::fill(data_.begin(), data_.end(), value); }

  /// Raw row pointer for tight inner loops.
  T* Row(int y) { return data_.data() + static_cast<std::size_t>(y) * width_; }
  const T* Row(int y) const {
    return data_.data() + static_cast<std::size_t>(y) * width_;
  }

  const std::vector<T>& data() const { return data_; }
  std::vector<T>& data() { return data_; }

  std::size_t MemoryBytes() const { return data_.capacity() * sizeof(T); }

 private:
  int width_;
  int height_;
  std::vector<T> data_;
};

/// Blending modes supported by the pipeline's output-merger stage. ADD is
/// the workhorse (counts/sums fall out of additive blending, exactly as the
/// GPU implementation uses glBlendFunc(GL_ONE, GL_ONE)).
enum class BlendOp {
  kAdd,
  kMin,
  kMax,
  kReplace,
};

template <typename T>
inline void ApplyBlend(BlendOp op, T& dst, T src) {
  switch (op) {
    case BlendOp::kAdd:
      dst += src;
      break;
    case BlendOp::kMin:
      dst = std::min(dst, src);
      break;
    case BlendOp::kMax:
      dst = std::max(dst, src);
      break;
    case BlendOp::kReplace:
      dst = src;
      break;
  }
}

}  // namespace urbane::raster

#endif  // URBANE_RASTER_BUFFER_H_
