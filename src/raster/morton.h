#ifndef URBANE_RASTER_MORTON_H_
#define URBANE_RASTER_MORTON_H_

// Morton (Z-order) pre-sort for the splat pass.
//
// Splatting points in table order scatters writes across the whole
// framebuffer; sorting them once by the Morton code of their target pixel
// makes consecutive splats land in the same 64×64 tile (a Z-order curve
// visits tiles depth-first), so the render-target lines a splat touches are
// almost always already in cache.
//
// Determinism: the key is pixel-granular and the sort is stable, so all
// points of one pixel keep their original row order — per-pixel float
// accumulation is therefore bit-identical to the unsorted splat, for every
// blend op. Partitioning a Morton-ordered schedule into contiguous ranges
// (the parallel splat's partitions) preserves the same property per range,
// so the existing partition-count determinism contract carries over.
//
// Lifecycle: executors build one order per (dataset, viewport) at Create
// and reuse it across queries. Executors are themselves rebuilt whenever
// the facade bumps its dataset epoch, which is what keeps the cache
// consistent with QueryCache invalidation — there is no cross-epoch reuse
// to guard against.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "raster/viewport.h"

namespace urbane::raster {

/// Spreads the low 16 bits of `v` into the even bit positions.
inline std::uint32_t MortonSpread16(std::uint32_t v) {
  v &= 0xFFFFu;
  v = (v | (v << 8)) & 0x00FF00FFu;
  v = (v | (v << 4)) & 0x0F0F0F0Fu;
  v = (v | (v << 2)) & 0x33333333u;
  v = (v | (v << 1)) & 0x55555555u;
  return v;
}

/// Z-order key of a pixel coordinate (x, y), each < 2^16.
inline std::uint32_t MortonPixelKey(std::uint32_t x, std::uint32_t y) {
  return MortonSpread16(x) | (MortonSpread16(y) << 1);
}

/// A dataset's points re-ordered along the canvas Z-order curve, with
/// coordinates gathered into contiguous arrays so the splat kernels read
/// them with unit stride. Points outside the canvas sort to the end (they
/// are skipped by the splat exactly as in table order).
class MortonSplatOrder {
 public:
  MortonSplatOrder() = default;

  /// Builds the order for `count` points on `vp`'s canvas. Canvases wider
  /// or taller than 2^16 pixels disable the order (enabled() == false);
  /// callers then splat in table order.
  static MortonSplatOrder Build(const Viewport& vp, const float* xs,
                                const float* ys, std::size_t count);

  bool enabled() const { return enabled_; }
  std::size_t size() const { return ids_.size(); }

  /// Original row ids in Morton order (stable within a pixel).
  const std::vector<std::uint32_t>& ids() const { return ids_; }
  /// Coordinates gathered in the same order: xs()[k] == table_xs[ids()[k]].
  const std::vector<float>& xs() const { return xs_; }
  const std::vector<float>& ys() const { return ys_; }

  std::size_t MemoryBytes() const {
    return ids_.capacity() * sizeof(std::uint32_t) +
           xs_.capacity() * sizeof(float) + ys_.capacity() * sizeof(float);
  }

 private:
  bool enabled_ = false;
  std::vector<std::uint32_t> ids_;
  std::vector<float> xs_;
  std::vector<float> ys_;
};

}  // namespace urbane::raster

#endif  // URBANE_RASTER_MORTON_H_
