#include "raster/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "raster/kernels.h"

namespace urbane::raster {
namespace {

SimdLevel Clamp(SimdLevel level) {
  const SimdLevel max = CpuMaxSimdLevel();
  return level > max ? max : level;
}

SimdLevel LevelFromEnv() {
  const char* text = std::getenv("URBANE_SIMD");
  if (text == nullptr || *text == '\0') return CpuMaxSimdLevel();
  SimdLevel level;
  bool is_auto;
  if (!ParseSimdLevel(text, level, is_auto)) return CpuMaxSimdLevel();
  return is_auto ? CpuMaxSimdLevel() : Clamp(level);
}

// Encodes "no override" distinctly from any real level.
constexpr int kNoOverride = -1;
std::atomic<int> g_override{kNoOverride};

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kOff:
      return "off";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool ParseSimdLevel(const char* text, SimdLevel& level, bool& is_auto) {
  if (text == nullptr) return false;
  is_auto = false;
  if (std::strcmp(text, "off") == 0 || std::strcmp(text, "scalar") == 0 ||
      std::strcmp(text, "none") == 0 || std::strcmp(text, "0") == 0) {
    level = SimdLevel::kOff;
    return true;
  }
  if (std::strcmp(text, "sse2") == 0) {
    level = SimdLevel::kSse2;
    return true;
  }
  if (std::strcmp(text, "avx2") == 0) {
    level = SimdLevel::kAvx2;
    return true;
  }
  if (std::strcmp(text, "auto") == 0) {
    level = CpuMaxSimdLevel();
    is_auto = true;
    return true;
  }
  return false;
}

SimdLevel CpuMaxSimdLevel() {
#if URBANE_RASTER_X86
  static const SimdLevel cached = [] {
#if defined(__GNUC__) || defined(__clang__)
    if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
    if (__builtin_cpu_supports("sse2")) return SimdLevel::kSse2;
    return SimdLevel::kOff;
#else
    // SSE2 is part of the x86-64 baseline.
    return SimdLevel::kSse2;
#endif
  }();
  return cached;
#else
  return SimdLevel::kOff;
#endif
}

SimdLevel ActiveSimdLevel() {
  const int forced = g_override.load(std::memory_order_acquire);
  if (forced != kNoOverride) return static_cast<SimdLevel>(forced);
  static const SimdLevel from_env = LevelFromEnv();
  return from_env;
}

SimdLevel SetSimdLevel(SimdLevel level) {
  const SimdLevel installed = Clamp(level);
  g_override.store(static_cast<int>(installed), std::memory_order_release);
  return installed;
}

void ResetSimdLevelFromEnv() {
  g_override.store(kNoOverride, std::memory_order_release);
}

const RasterKernels& KernelsForLevel(SimdLevel level) {
#if URBANE_RASTER_X86
  switch (Clamp(level)) {
    case SimdLevel::kAvx2:
      return kAvx2RasterKernels;
    case SimdLevel::kSse2:
      return kSse2RasterKernels;
    case SimdLevel::kOff:
      return kScalarRasterKernels;
  }
#endif
  (void)level;
  return kScalarRasterKernels;
}

const RasterKernels& ActiveKernels() {
  return KernelsForLevel(ActiveSimdLevel());
}

}  // namespace urbane::raster
