#ifndef URBANE_RASTER_TILE_H_
#define URBANE_RASTER_TILE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace urbane::raster {

/// Screen-space tiles: the rasterizer walks the canvas in kTileSize²-pixel
/// blocks so the framebuffer slice a tile touches stays cache-resident, and
/// so whole tiles can be trivially accepted (fully inside every edge) or
/// rejected (fully outside one edge) from four corner evaluations.
inline constexpr int kTileBits = 6;
inline constexpr int kTileSize = 1 << kTileBits;  // 64×64 pixels

/// Tile coordinate of a pixel coordinate.
inline int TileCoord(int pixel) { return pixel >> kTileBits; }

/// Tile grid overlaying a width×height canvas.
struct TileGrid {
  int tiles_x = 0;
  int tiles_y = 0;

  static TileGrid For(int width, int height) {
    TileGrid grid;
    grid.tiles_x = (width + kTileSize - 1) >> kTileBits;
    grid.tiles_y = (height + kTileSize - 1) >> kTileBits;
    return grid;
  }
  std::size_t TileCount() const {
    return static_cast<std::size_t>(tiles_x) * static_cast<std::size_t>(tiles_y);
  }
};

/// Counts the distinct tiles a set of pixel spans touches (observability:
/// exec stats report it as raster.tiles).
class TileCoverage {
 public:
  TileCoverage(int width, int height) : grid_(TileGrid::For(width, height)) {
    bits_.assign((grid_.TileCount() + 63) / 64, 0);
  }

  /// Marks the tiles of the half-open span [x_begin, x_end) on row y.
  void AddSpan(int y, int x_begin, int x_end) {
    if (x_begin >= x_end) return;
    const int ty = TileCoord(y);
    const int tx_lo = TileCoord(x_begin);
    const int tx_hi = TileCoord(x_end - 1);
    for (int tx = tx_lo; tx <= tx_hi; ++tx) {
      const std::size_t t =
          static_cast<std::size_t>(ty) * static_cast<std::size_t>(grid_.tiles_x) +
          static_cast<std::size_t>(tx);
      const std::uint64_t bit = std::uint64_t{1} << (t & 63);
      if ((bits_[t >> 6] & bit) == 0) {
        bits_[t >> 6] |= bit;
        ++count_;
      }
    }
  }

  std::size_t count() const { return count_; }

 private:
  TileGrid grid_;
  std::vector<std::uint64_t> bits_;
  std::size_t count_ = 0;
};

}  // namespace urbane::raster

#endif  // URBANE_RASTER_TILE_H_
