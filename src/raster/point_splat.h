#ifndef URBANE_RASTER_POINT_SPLAT_H_
#define URBANE_RASTER_POINT_SPLAT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "raster/buffer.h"
#include "raster/viewport.h"
#include "util/thread_pool.h"

namespace urbane::raster {

/// Splats points into an aggregate framebuffer — the software analogue of
/// rendering a vertex buffer of GL_POINTS with additive blending, which is
/// the first pass of Raster Join (building the per-pixel point texture).
///
/// `weight(i)` supplies the blended value for point i (1 for COUNT, the
/// attribute value for SUM). Returns the number of points that landed inside
/// the viewport.
template <typename T, typename WeightFn>
std::size_t SplatPoints(const Viewport& vp, const float* xs, const float* ys,
                        std::size_t count, BlendOp op, WeightFn&& weight,
                        Buffer2D<T>& target) {
  std::size_t hits = 0;
  for (std::size_t i = 0; i < count; ++i) {
    int ix;
    int iy;
    if (!vp.PixelForPoint({xs[i], ys[i]}, ix, iy)) {
      continue;
    }
    ApplyBlend(op, target.at(ix, iy), static_cast<T>(weight(i)));
    ++hits;
  }
  return hits;
}

/// Splats only the points named by `subset` (row ids) — used after filter
/// evaluation, mirroring how the GPU path re-uploads only surviving points.
template <typename T, typename WeightFn>
std::size_t SplatPointsSubset(const Viewport& vp, const float* xs,
                              const float* ys,
                              const std::vector<std::uint32_t>& subset,
                              BlendOp op, WeightFn&& weight,
                              Buffer2D<T>& target) {
  std::size_t hits = 0;
  for (const std::uint32_t i : subset) {
    int ix;
    int iy;
    if (!vp.PixelForPoint({xs[i], ys[i]}, ix, iy)) {
      continue;
    }
    ApplyBlend(op, target.at(ix, iy), static_cast<T>(weight(i)));
    ++hits;
  }
  return hits;
}

/// Parallel additive splat: partitions the points across the pool, each
/// worker accumulating into a private buffer, then reduces. Only valid for
/// commutative/associative ops (kAdd, kMin, kMax). Falls back to the serial
/// path when the pool is null or the workload is small.
template <typename T, typename WeightFn>
std::size_t ParallelSplatPoints(ThreadPool* pool, const Viewport& vp,
                                const float* xs, const float* ys,
                                std::size_t count, BlendOp op,
                                WeightFn&& weight, Buffer2D<T>& target) {
  const std::size_t workers = pool == nullptr ? 1 : pool->num_threads();
  if (workers <= 1 || count < 1 << 16) {
    return SplatPoints(vp, xs, ys, count, op, weight, target);
  }
  std::vector<Buffer2D<T>> partials;
  std::vector<std::size_t> partial_hits(workers, 0);
  partials.reserve(workers);
  // kMin needs identity = max value; handled by initializing partials from
  // the current target contents for the first partial and neutral fills for
  // the rest. To stay simple we support kAdd with zero-init partials and
  // kMin/kMax by serial fallback.
  if (op != BlendOp::kAdd) {
    return SplatPoints(vp, xs, ys, count, op, weight, target);
  }
  for (std::size_t w = 0; w < workers; ++w) {
    partials.emplace_back(vp.width(), vp.height(), T{});
  }
  const std::size_t chunk = (count + workers - 1) / workers;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = w * chunk;
    const std::size_t end = std::min(count, begin + chunk);
    if (begin >= end) break;
    pool->Submit([&, w, begin, end] {
      partial_hits[w] = SplatPoints(vp, xs + begin, ys + begin, end - begin,
                                    BlendOp::kAdd, [&](std::size_t i) {
                                      return weight(begin + i);
                                    },
                                    partials[w]);
    });
  }
  pool->Wait();
  std::size_t hits = 0;
  for (std::size_t w = 0; w < workers; ++w) {
    hits += partial_hits[w];
    const std::vector<T>& src = partials[w].data();
    std::vector<T>& dst = target.data();
    for (std::size_t i = 0; i < src.size(); ++i) {
      dst[i] += src[i];
    }
  }
  return hits;
}

}  // namespace urbane::raster

#endif  // URBANE_RASTER_POINT_SPLAT_H_
