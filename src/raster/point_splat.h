#ifndef URBANE_RASTER_POINT_SPLAT_H_
#define URBANE_RASTER_POINT_SPLAT_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "raster/buffer.h"
#include "raster/kernels.h"
#include "raster/viewport.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace urbane::raster {

/// Below this many points a parallel splat is not worth the partial-buffer
/// reduction and runs serially.
inline constexpr std::size_t kDefaultParallelSplatMinPoints = 1 << 16;

/// How a splat pass is spread over a pool. The default (null pool) is the
/// serial path, keeping existing callers and benches bit-comparable.
struct SplatParallelism {
  ThreadPool* pool = nullptr;
  /// Number of point partitions (= partial buffers). 0 means one per pool
  /// worker. The partition count — not the scheduling — determines the
  /// result, so a run with P partitions is reproducible on any pool size.
  std::size_t partitions = 0;
  /// Workload floor under which the serial path is taken.
  std::size_t min_points = kDefaultParallelSplatMinPoints;

  std::size_t EffectivePartitions() const {
    if (pool == nullptr) return 1;
    const std::size_t p = partitions == 0 ? pool->num_threads() : partitions;
    return p == 0 ? 1 : p;
  }
};

/// Neutral element of a blend op: blending the identity into any pixel
/// leaves it unchanged. Partial buffers are filled with it so the final
/// reduction is exact for ADD/MIN/MAX. kReplace has no identity (it is
/// order-dependent) and must not be splatted in parallel.
template <typename T>
constexpr T BlendIdentity(BlendOp op) {
  switch (op) {
    case BlendOp::kMin:
      return std::numeric_limits<T>::has_infinity
                 ? std::numeric_limits<T>::infinity()
                 : std::numeric_limits<T>::max();
    case BlendOp::kMax:
      return std::numeric_limits<T>::has_infinity
                 ? -std::numeric_limits<T>::infinity()
                 : std::numeric_limits<T>::lowest();
    case BlendOp::kAdd:
    case BlendOp::kReplace:
      return T{};
  }
  return T{};
}

/// Splats points into an aggregate framebuffer — the software analogue of
/// rendering a vertex buffer of GL_POINTS with additive blending, which is
/// the first pass of Raster Join (building the per-pixel point texture).
///
/// `weight(i)` supplies the blended value for point i (1 for COUNT, the
/// attribute value for SUM). Returns the number of points that landed inside
/// the viewport.
template <typename T, typename WeightFn>
std::size_t SplatPoints(const Viewport& vp, const float* xs, const float* ys,
                        std::size_t count, BlendOp op, WeightFn&& weight,
                        Buffer2D<T>& target) {
  std::size_t hits = 0;
  for (std::size_t i = 0; i < count; ++i) {
    int ix;
    int iy;
    if (!vp.PixelForPoint({xs[i], ys[i]}, ix, iy)) {
      continue;
    }
    ApplyBlend(op, target.at(ix, iy), static_cast<T>(weight(i)));
    ++hits;
  }
  return hits;
}

/// Splats only the points named by `subset` (row ids) — used after filter
/// evaluation, mirroring how the GPU path re-uploads only surviving points.
template <typename T, typename WeightFn>
std::size_t SplatPointsSubset(const Viewport& vp, const float* xs,
                              const float* ys,
                              const std::vector<std::uint32_t>& subset,
                              BlendOp op, WeightFn&& weight,
                              Buffer2D<T>& target) {
  std::size_t hits = 0;
  for (const std::uint32_t i : subset) {
    int ix;
    int iy;
    if (!vp.PixelForPoint({xs[i], ys[i]}, ix, iy)) {
      continue;
    }
    ApplyBlend(op, target.at(ix, iy), static_cast<T>(weight(i)));
    ++hits;
  }
  return hits;
}

/// Computes the framebuffer index of each point through the active SIMD
/// kernels (kInvalidPixel marks points outside the canvas). Bit-identical
/// to Viewport::PixelForPoint per point, at every SIMD level.
inline std::size_t ComputeSplatIndices(const Viewport& vp, const float* xs,
                                       const float* ys, std::size_t count,
                                       std::uint32_t* out) {
  return ActiveKernels().compute_pixel_indices(SplatGeometry::From(vp), xs,
                                               ys, count, out);
}

/// Scatters points with precomputed pixel indices into `target`, in input
/// order; `weight(k)` supplies the blended value of position k. Equivalent
/// to SplatPoints over the same coordinate sequence — the index computation
/// is merely hoisted out so it runs vectorized and is shared across the
/// aggregate targets of one query.
template <typename T, typename WeightFn>
std::size_t SplatIndexed(const std::uint32_t* indices, std::size_t count,
                         BlendOp op, WeightFn&& weight, Buffer2D<T>& target) {
  T* data = target.data().data();
  std::size_t hits = 0;
  for (std::size_t k = 0; k < count; ++k) {
    const std::uint32_t idx = indices[k];
    if (idx == kInvalidPixel) continue;
    ApplyBlend(op, data[idx], static_cast<T>(weight(k)));
    ++hits;
  }
  return hits;
}

namespace internal {

/// Shared scaffold of the parallel splat variants: runs `splat_range(p,
/// begin, end, partial)` for each of P contiguous index ranges on the pool
/// (each into an identity-filled private buffer), then reduces the partials
/// into `target` in partition order. Reduction order is fixed, so results
/// are independent of scheduling; float ADD sums may still differ from the
/// serial order within 1e-6-relative.
template <typename T, typename SplatRange>
std::size_t ReduceParallelSplat(const SplatParallelism& par, const Viewport& vp,
                                std::size_t count, BlendOp op,
                                SplatRange&& splat_range, Buffer2D<T>& target) {
  URBANE_CHECK(op != BlendOp::kReplace)
      << "BlendOp::kReplace has no identity element and is order-dependent; "
         "it cannot be splatted through partial-buffer reduction";
  const std::size_t parts = par.EffectivePartitions();
  std::vector<Buffer2D<T>> partials;
  std::vector<std::size_t> partial_hits(parts, 0);
  partials.reserve(parts);
  const T identity = BlendIdentity<T>(op);
  for (std::size_t p = 0; p < parts; ++p) {
    partials.emplace_back(vp.width(), vp.height(), identity);
  }
  const std::size_t chunk = (count + parts - 1) / parts;
  ThreadPool::Batch batch = par.pool->CreateBatch();
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t begin = p * chunk;
    const std::size_t end = std::min(count, begin + chunk);
    if (begin >= end) break;
    batch.Submit([&splat_range, &partials, &partial_hits, p, begin, end] {
      partial_hits[p] = splat_range(p, begin, end, partials[p]);
    });
  }
  batch.Wait();
  std::size_t hits = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    hits += partial_hits[p];
    const std::vector<T>& src = partials[p].data();
    std::vector<T>& dst = target.data();
    for (std::size_t i = 0; i < src.size(); ++i) {
      ApplyBlend(op, dst[i], src[i]);
    }
  }
  return hits;
}

}  // namespace internal

/// Parallel splat: partitions the points across the pool, each worker
/// accumulating into a private identity-filled buffer, then reduces with
/// the blend op. Valid only for the commutative/associative ops (kAdd,
/// kMin, kMax): requesting parallelism for kReplace is a hard error — its
/// result depends on splat order, which a partial-buffer reduction cannot
/// reproduce. A null pool or a workload under `par.min_points` runs serial.
template <typename T, typename WeightFn>
std::size_t ParallelSplatPoints(const SplatParallelism& par, const Viewport& vp,
                                const float* xs, const float* ys,
                                std::size_t count, BlendOp op,
                                WeightFn&& weight, Buffer2D<T>& target) {
  URBANE_CHECK(op != BlendOp::kReplace || par.EffectivePartitions() <= 1)
      << "BlendOp::kReplace is order-dependent and must not be splatted in "
         "parallel";
  if (par.EffectivePartitions() <= 1 || count < par.min_points) {
    return SplatPoints(vp, xs, ys, count, op, weight, target);
  }
  return internal::ReduceParallelSplat(
      par, vp, count, op,
      [&](std::size_t, std::size_t begin, std::size_t end,
          Buffer2D<T>& partial) {
        return SplatPoints(vp, xs + begin, ys + begin, end - begin, op,
                           [&](std::size_t i) { return weight(begin + i); },
                           partial);
      },
      target);
}

/// Back-compat convenience: pool-only parallelism spec.
template <typename T, typename WeightFn>
std::size_t ParallelSplatPoints(ThreadPool* pool, const Viewport& vp,
                                const float* xs, const float* ys,
                                std::size_t count, BlendOp op,
                                WeightFn&& weight, Buffer2D<T>& target) {
  SplatParallelism par;
  par.pool = pool;
  return ParallelSplatPoints(par, vp, xs, ys, count, op, weight, target);
}

/// Parallel variant of SplatPointsSubset: the subset (not the full table)
/// is partitioned, so executors that splat filtered row subsets scale with
/// the surviving points. `weight(i)` receives original row ids, exactly as
/// in the serial subset splat.
template <typename T, typename WeightFn>
std::size_t ParallelSplatPointsSubset(const SplatParallelism& par,
                                      const Viewport& vp, const float* xs,
                                      const float* ys,
                                      const std::vector<std::uint32_t>& subset,
                                      BlendOp op, WeightFn&& weight,
                                      Buffer2D<T>& target) {
  URBANE_CHECK(op != BlendOp::kReplace || par.EffectivePartitions() <= 1)
      << "BlendOp::kReplace is order-dependent and must not be splatted in "
         "parallel";
  if (par.EffectivePartitions() <= 1 || subset.size() < par.min_points) {
    return SplatPointsSubset(vp, xs, ys, subset, op, weight, target);
  }
  return internal::ReduceParallelSplat(
      par, vp, subset.size(), op,
      [&](std::size_t, std::size_t begin, std::size_t end,
          Buffer2D<T>& partial) {
        std::size_t hits = 0;
        for (std::size_t k = begin; k < end; ++k) {
          const std::uint32_t i = subset[k];
          int ix;
          int iy;
          if (!vp.PixelForPoint({xs[i], ys[i]}, ix, iy)) {
            continue;
          }
          ApplyBlend(op, partial.at(ix, iy), static_cast<T>(weight(i)));
          ++hits;
        }
        return hits;
      },
      target);
}

/// Parallel SplatIndexed: partitions are contiguous ranges of the index
/// array — Morton ranges when the schedule is Morton-ordered — each into an
/// identity-filled partial, reduced in partition order. `weight(k)` receives
/// positions of the full array, as in the serial form.
template <typename T, typename WeightFn>
std::size_t ParallelSplatIndexed(const SplatParallelism& par,
                                 const Viewport& vp,
                                 const std::uint32_t* indices,
                                 std::size_t count, BlendOp op,
                                 WeightFn&& weight, Buffer2D<T>& target) {
  URBANE_CHECK(op != BlendOp::kReplace || par.EffectivePartitions() <= 1)
      << "BlendOp::kReplace is order-dependent and must not be splatted in "
         "parallel";
  if (par.EffectivePartitions() <= 1 || count < par.min_points) {
    return SplatIndexed(indices, count, op, weight, target);
  }
  return internal::ReduceParallelSplat(
      par, vp, count, op,
      [&](std::size_t, std::size_t begin, std::size_t end,
          Buffer2D<T>& partial) {
        return SplatIndexed(indices + begin, end - begin, op,
                            [&](std::size_t k) { return weight(begin + k); },
                            partial);
      },
      target);
}

}  // namespace urbane::raster

#endif  // URBANE_RASTER_POINT_SPLAT_H_
