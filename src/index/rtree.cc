#include "index/rtree.h"

#include <algorithm>
#include <cmath>

namespace urbane::index {

StatusOr<RTree> RTree::Build(const std::vector<geometry::BoundingBox>& boxes,
                             const Options& options) {
  if (options.leaf_capacity == 0 || options.fanout < 2) {
    return Status::InvalidArgument("invalid R-tree options");
  }
  RTree tree;
  tree.item_boxes_ = boxes;
  tree.item_count_ = boxes.size();
  if (boxes.empty()) {
    return tree;
  }

  // STR pass 1: order items by x-tile then y within each tile.
  const std::size_t n = boxes.size();
  std::vector<std::uint32_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<std::uint32_t>(i);

  const std::size_t leaves =
      (n + options.leaf_capacity - 1) / options.leaf_capacity;
  const std::size_t slices =
      std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(
                                   std::sqrt(static_cast<double>(leaves)))));
  const std::size_t per_slice =
      (n + slices - 1) / slices;  // items per vertical slice

  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return boxes[a].Center().x < boxes[b].Center().x;
            });
  for (std::size_t s = 0; s < slices; ++s) {
    const std::size_t begin = s * per_slice;
    if (begin >= n) break;
    const std::size_t end = std::min(n, begin + per_slice);
    std::sort(order.begin() + static_cast<std::ptrdiff_t>(begin),
              order.begin() + static_cast<std::ptrdiff_t>(end),
              [&](std::uint32_t a, std::uint32_t b) {
                return boxes[a].Center().y < boxes[b].Center().y;
              });
  }

  // Build leaves over the packed ordering.
  tree.items_ = order;
  std::vector<std::uint32_t> level;  // node ids at the current level
  for (std::size_t begin = 0; begin < n; begin += options.leaf_capacity) {
    const std::size_t end = std::min(n, begin + options.leaf_capacity);
    Node leaf;
    leaf.leaf = true;
    leaf.begin = static_cast<std::uint32_t>(begin);
    leaf.end = static_cast<std::uint32_t>(end);
    for (std::size_t k = begin; k < end; ++k) {
      leaf.bounds.Extend(boxes[tree.items_[k]]);
    }
    level.push_back(static_cast<std::uint32_t>(tree.nodes_.size()));
    tree.nodes_.push_back(leaf);
  }
  tree.height_ = 1;

  // Pack upper levels until a single root remains.
  while (level.size() > 1) {
    std::vector<std::uint32_t> next_level;
    for (std::size_t begin = 0; begin < level.size();
         begin += options.fanout) {
      const std::size_t end = std::min(level.size(), begin + options.fanout);
      Node internal;
      internal.leaf = false;
      internal.begin = static_cast<std::uint32_t>(tree.children_.size());
      for (std::size_t k = begin; k < end; ++k) {
        tree.children_.push_back(level[k]);
        internal.bounds.Extend(tree.nodes_[level[k]].bounds);
      }
      internal.end = static_cast<std::uint32_t>(tree.children_.size());
      next_level.push_back(static_cast<std::uint32_t>(tree.nodes_.size()));
      tree.nodes_.push_back(internal);
    }
    level = std::move(next_level);
    ++tree.height_;
  }
  tree.root_ = level.front();
  return tree;
}

}  // namespace urbane::index
