#include "index/quadtree.h"

#include <algorithm>

namespace urbane::index {

StatusOr<Quadtree> Quadtree::Build(const float* xs, const float* ys,
                                   std::size_t count,
                                   const geometry::BoundingBox& bounds,
                                   const Options& options) {
  if (bounds.IsEmpty() || bounds.Width() <= 0.0 || bounds.Height() <= 0.0) {
    return Status::InvalidArgument("quadtree bounds must have positive extent");
  }
  if (options.max_points_per_leaf == 0) {
    return Status::InvalidArgument("max_points_per_leaf must be positive");
  }
  Quadtree tree;
  tree.ids_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (bounds.Contains({xs[i], ys[i]})) {
      tree.ids_.push_back(static_cast<std::uint32_t>(i));
    }
  }
  Node root;
  root.bounds = bounds;
  root.begin = 0;
  root.end = static_cast<std::uint32_t>(tree.ids_.size());
  tree.nodes_.push_back(root);
  tree.BuildNode(0, xs, ys, 0, options);
  return tree;
}

void Quadtree::BuildNode(std::uint32_t node_index, const float* xs,
                         const float* ys, int depth, const Options& options) {
  max_depth_reached_ = std::max(max_depth_reached_, depth);
  // Copy the range: nodes_ may reallocate while children are appended.
  const geometry::BoundingBox bounds = nodes_[node_index].bounds;
  const std::uint32_t begin = nodes_[node_index].begin;
  const std::uint32_t end = nodes_[node_index].end;
  if (end - begin <= options.max_points_per_leaf ||
      depth >= options.max_depth) {
    return;  // stays a leaf
  }
  const geometry::Vec2 center = bounds.Center();

  // Quadtree sort: partition [begin, end) into SW | SE | NW | NE.
  auto* ids = ids_.data();
  auto below = [&](std::uint32_t id) { return ys[id] < center.y; };
  auto left = [&](std::uint32_t id) { return xs[id] < center.x; };
  std::uint32_t* mid_y = std::partition(ids + begin, ids + end, below);
  std::uint32_t* sw_end = std::partition(ids + begin, mid_y, left);
  std::uint32_t* nw_end = std::partition(mid_y, ids + end, left);

  const std::uint32_t south_split =
      static_cast<std::uint32_t>(sw_end - ids);
  const std::uint32_t y_split = static_cast<std::uint32_t>(mid_y - ids);
  const std::uint32_t north_split =
      static_cast<std::uint32_t>(nw_end - ids);

  const std::int32_t first_child = static_cast<std::int32_t>(nodes_.size());
  nodes_[node_index].first_child = first_child;

  const geometry::BoundingBox quads[4] = {
      {bounds.min_x, bounds.min_y, center.x, center.y},  // SW
      {center.x, bounds.min_y, bounds.max_x, center.y},  // SE
      {bounds.min_x, center.y, center.x, bounds.max_y},  // NW
      {center.x, center.y, bounds.max_x, bounds.max_y},  // NE
  };
  const std::uint32_t ranges[4][2] = {
      {begin, south_split},
      {south_split, y_split},
      {y_split, north_split},
      {north_split, end},
  };
  for (int c = 0; c < 4; ++c) {
    Node child;
    child.bounds = quads[c];
    child.begin = ranges[c][0];
    child.end = ranges[c][1];
    nodes_.push_back(child);
  }
  for (int c = 0; c < 4; ++c) {
    BuildNode(static_cast<std::uint32_t>(first_child + c), xs, ys, depth + 1,
              options);
  }
}

}  // namespace urbane::index
