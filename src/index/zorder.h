#ifndef URBANE_INDEX_ZORDER_H_
#define URBANE_INDEX_ZORDER_H_

#include <cstdint>

#include "geometry/bounding_box.h"
#include "geometry/point.h"

namespace urbane::index {

/// Interleaves the low 16 bits of x and y into a 32-bit Morton code.
std::uint32_t MortonEncode16(std::uint16_t x, std::uint16_t y);

/// Inverse of MortonEncode16.
void MortonDecode16(std::uint32_t code, std::uint16_t& x, std::uint16_t& y);

/// Interleaves the low 32 bits of x and y into a 64-bit Morton code.
std::uint64_t MortonEncode32(std::uint32_t x, std::uint32_t y);

/// Z-order key of a world point quantized onto a 2^16 x 2^16 lattice over
/// `bounds`. Sorting points by this key clusters them spatially, which
/// speeds up both grid-index construction and point splatting (cache
/// locality) — one of the ablations the benches measure.
std::uint32_t ZOrderKey(const geometry::Vec2& p,
                        const geometry::BoundingBox& bounds);

}  // namespace urbane::index

#endif  // URBANE_INDEX_ZORDER_H_
