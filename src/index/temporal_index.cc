#include "index/temporal_index.h"

#include <algorithm>
#include <numeric>

namespace urbane::index {

StatusOr<TemporalIndex> TemporalIndex::Build(const std::int64_t* timestamps,
                                             std::size_t count,
                                             int histogram_bins) {
  if (histogram_bins <= 0) {
    return Status::InvalidArgument("histogram_bins must be positive");
  }
  TemporalIndex index;
  index.sorted_ids_.resize(count);
  std::iota(index.sorted_ids_.begin(), index.sorted_ids_.end(), 0);
  std::sort(index.sorted_ids_.begin(), index.sorted_ids_.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return timestamps[a] < timestamps[b];
            });
  index.sorted_times_.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    index.sorted_times_[i] = timestamps[index.sorted_ids_[i]];
  }
  if (count > 0) {
    index.min_time_ = index.sorted_times_.front();
    index.max_time_ = index.sorted_times_.back();
  }
  index.histogram_.assign(static_cast<std::size_t>(histogram_bins), 0);
  if (count > 0) {
    const double span = static_cast<double>(index.max_time_ -
                                            index.min_time_) +
                        1.0;
    for (std::size_t i = 0; i < count; ++i) {
      const double frac =
          static_cast<double>(index.sorted_times_[i] - index.min_time_) /
          span;
      int bin = static_cast<int>(frac * histogram_bins);
      bin = std::clamp(bin, 0, histogram_bins - 1);
      ++index.histogram_[static_cast<std::size_t>(bin)];
    }
  }
  return index;
}

std::pair<const std::uint32_t*, std::size_t> TemporalIndex::IdsInRange(
    std::int64_t t_begin, std::int64_t t_end) const {
  const auto lo = std::lower_bound(sorted_times_.begin(), sorted_times_.end(),
                                   t_begin);
  const auto hi =
      std::lower_bound(lo, sorted_times_.end(), t_end);
  const std::size_t offset =
      static_cast<std::size_t>(lo - sorted_times_.begin());
  return {sorted_ids_.data() + offset, static_cast<std::size_t>(hi - lo)};
}

std::size_t TemporalIndex::CountInRange(std::int64_t t_begin,
                                        std::int64_t t_end) const {
  return IdsInRange(t_begin, t_end).second;
}

std::int64_t TemporalIndex::BinStart(int b) const {
  const double span =
      static_cast<double>(max_time_ - min_time_) + 1.0;
  return min_time_ + static_cast<std::int64_t>(
                         span * b / static_cast<double>(histogram_.size()));
}

}  // namespace urbane::index
