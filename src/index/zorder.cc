#include "index/zorder.h"

#include <algorithm>

namespace urbane::index {

namespace {

// Spreads the low 16 bits of v so a zero bit separates each (0b...abc ->
// 0b...a0b0c).
std::uint32_t Part1By1(std::uint32_t v) {
  v &= 0x0000FFFF;
  v = (v | (v << 8)) & 0x00FF00FF;
  v = (v | (v << 4)) & 0x0F0F0F0F;
  v = (v | (v << 2)) & 0x33333333;
  v = (v | (v << 1)) & 0x55555555;
  return v;
}

std::uint32_t Compact1By1(std::uint32_t v) {
  v &= 0x55555555;
  v = (v | (v >> 1)) & 0x33333333;
  v = (v | (v >> 2)) & 0x0F0F0F0F;
  v = (v | (v >> 4)) & 0x00FF00FF;
  v = (v | (v >> 8)) & 0x0000FFFF;
  return v;
}

std::uint64_t Part1By1Wide(std::uint64_t v) {
  v &= 0x00000000FFFFFFFFULL;
  v = (v | (v << 16)) & 0x0000FFFF0000FFFFULL;
  v = (v | (v << 8)) & 0x00FF00FF00FF00FFULL;
  v = (v | (v << 4)) & 0x0F0F0F0F0F0F0F0FULL;
  v = (v | (v << 2)) & 0x3333333333333333ULL;
  v = (v | (v << 1)) & 0x5555555555555555ULL;
  return v;
}

}  // namespace

std::uint32_t MortonEncode16(std::uint16_t x, std::uint16_t y) {
  return Part1By1(x) | (Part1By1(y) << 1);
}

void MortonDecode16(std::uint32_t code, std::uint16_t& x, std::uint16_t& y) {
  x = static_cast<std::uint16_t>(Compact1By1(code));
  y = static_cast<std::uint16_t>(Compact1By1(code >> 1));
}

std::uint64_t MortonEncode32(std::uint32_t x, std::uint32_t y) {
  return Part1By1Wide(x) | (Part1By1Wide(y) << 1);
}

std::uint32_t ZOrderKey(const geometry::Vec2& p,
                        const geometry::BoundingBox& bounds) {
  const double fx = (p.x - bounds.min_x) / bounds.Width();
  const double fy = (p.y - bounds.min_y) / bounds.Height();
  const double clamped_x = std::clamp(fx, 0.0, 1.0);
  const double clamped_y = std::clamp(fy, 0.0, 1.0);
  const auto qx = static_cast<std::uint16_t>(
      std::min(65535.0, clamped_x * 65536.0));
  const auto qy = static_cast<std::uint16_t>(
      std::min(65535.0, clamped_y * 65536.0));
  return MortonEncode16(qx, qy);
}

}  // namespace urbane::index
