#ifndef URBANE_INDEX_RTREE_H_
#define URBANE_INDEX_RTREE_H_

#include <cstdint>
#include <vector>

#include "geometry/bounding_box.h"
#include "util/status.h"

namespace urbane::index {

/// STR (Sort-Tile-Recursive) bulk-loaded R-tree over item bounding boxes.
///
/// Urbane uses it over *region* geometries: point probes ("which
/// neighborhood was clicked?") and viewport-culling ("which regions are
/// visible?") resolve through it. Static by design — region sets change
/// rarely, so the packed layout beats dynamic insertion trees.
struct RTreeOptions {
  std::size_t leaf_capacity = 16;
  std::size_t fanout = 16;
};

class RTree {
 public:
  using Options = RTreeOptions;

  /// Builds from one box per item; item id == position in `boxes`.
  static StatusOr<RTree> Build(const std::vector<geometry::BoundingBox>& boxes,
                               const Options& options = RTreeOptions());

  std::size_t item_count() const { return item_count_; }
  std::size_t node_count() const { return nodes_.size(); }
  int height() const { return height_; }

  /// Calls `visit(item_id)` for every item whose box contains `p`.
  template <typename Visit>
  void QueryPoint(const geometry::Vec2& p, Visit&& visit) const {
    if (nodes_.empty()) return;
    std::vector<std::uint32_t> stack = {root_};
    while (!stack.empty()) {
      const Node& node = nodes_[stack.back()];
      stack.pop_back();
      if (!node.bounds.Contains(p)) {
        continue;
      }
      if (node.IsLeaf()) {
        for (std::uint32_t k = node.begin; k < node.end; ++k) {
          if (item_boxes_[items_[k]].Contains(p)) {
            visit(items_[k]);
          }
        }
      } else {
        for (std::uint32_t k = node.begin; k < node.end; ++k) {
          stack.push_back(children_[k]);
        }
      }
    }
  }

  /// Calls `visit(item_id)` for every item whose box intersects `box`.
  template <typename Visit>
  void QueryBox(const geometry::BoundingBox& box, Visit&& visit) const {
    if (nodes_.empty()) return;
    std::vector<std::uint32_t> stack = {root_};
    while (!stack.empty()) {
      const Node& node = nodes_[stack.back()];
      stack.pop_back();
      if (!node.bounds.Intersects(box)) {
        continue;
      }
      if (node.IsLeaf()) {
        for (std::uint32_t k = node.begin; k < node.end; ++k) {
          if (item_boxes_[items_[k]].Intersects(box)) {
            visit(items_[k]);
          }
        }
      } else {
        for (std::uint32_t k = node.begin; k < node.end; ++k) {
          stack.push_back(children_[k]);
        }
      }
    }
  }

  std::size_t MemoryBytes() const {
    return nodes_.capacity() * sizeof(Node) +
           items_.capacity() * sizeof(std::uint32_t) +
           children_.capacity() * sizeof(std::uint32_t) +
           item_boxes_.capacity() * sizeof(geometry::BoundingBox);
  }

 private:
  struct Node {
    geometry::BoundingBox bounds;
    std::uint32_t begin = 0;  // into items_ (leaf) or children_ (internal)
    std::uint32_t end = 0;
    bool leaf = true;

    bool IsLeaf() const { return leaf; }
  };

  RTree() = default;

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> items_;     // leaf item ids
  std::vector<std::uint32_t> children_;  // internal child node ids
  std::vector<geometry::BoundingBox> item_boxes_;
  std::uint32_t root_ = 0;
  std::size_t item_count_ = 0;
  int height_ = 0;
};

}  // namespace urbane::index

#endif  // URBANE_INDEX_RTREE_H_
