#ifndef URBANE_INDEX_GRID_INDEX_H_
#define URBANE_INDEX_GRID_INDEX_H_

#include <cstdint>
#include <vector>

#include "geometry/bounding_box.h"
#include "geometry/clip.h"
#include "geometry/polygon.h"
#include "util/status.h"

namespace urbane::index {

/// Uniform grid over a point set — the index-based spatial-join baseline the
/// Raster Join evaluation compares against.
///
/// Build: counting-sort point ids into cells (CSR layout, two passes).
/// Probe: for a polygon, cells overlapping its bounding box are classified
/// as *interior* (fully inside the polygon: every contained point matches
/// with no test) or *boundary* (the polygon edge crosses the cell: each
/// point needs an exact point-in-polygon test).
class GridIndex {
 public:
  /// Builds over `count` points. `cells_x/cells_y` control granularity; the
  /// usual setting is ~sqrt(count) cells total (see Build() helpers).
  static StatusOr<GridIndex> Build(const float* xs, const float* ys,
                                   std::size_t count,
                                   const geometry::BoundingBox& bounds,
                                   int cells_x, int cells_y);

  /// Chooses a near-square grid with roughly `target_points_per_cell`.
  static StatusOr<GridIndex> BuildAuto(const float* xs, const float* ys,
                                       std::size_t count,
                                       const geometry::BoundingBox& bounds,
                                       double target_points_per_cell = 64.0);

  int cells_x() const { return cells_x_; }
  int cells_y() const { return cells_y_; }
  const geometry::BoundingBox& bounds() const { return bounds_; }
  std::size_t point_count() const {
    return offsets_.empty() ? 0 : offsets_.back();
  }

  /// Point ids in cell (cx, cy) as a contiguous span.
  const std::uint32_t* CellBegin(int cx, int cy) const {
    return ids_.data() + offsets_[CellIndex(cx, cy)];
  }
  const std::uint32_t* CellEnd(int cx, int cy) const {
    return ids_.data() + offsets_[CellIndex(cx, cy) + 1];
  }
  std::size_t CellSize(int cx, int cy) const {
    const std::size_t c = CellIndex(cx, cy);
    return offsets_[c + 1] - offsets_[c];
  }

  geometry::BoundingBox CellBounds(int cx, int cy) const;

  /// Calls `interior(cx, cy)` for cells fully inside the polygon and
  /// `boundary(cx, cy)` for cells the polygon boundary touches. Cells
  /// outside the polygon are skipped.
  template <typename InteriorFn, typename BoundaryFn>
  void ClassifyCells(const geometry::Polygon& polygon, InteriorFn&& interior,
                     BoundaryFn&& boundary) const;

  /// Total bytes held by the index (for the memory-footprint table).
  std::size_t MemoryBytes() const {
    return offsets_.capacity() * sizeof(std::size_t) +
           ids_.capacity() * sizeof(std::uint32_t);
  }

 private:
  GridIndex() = default;

  std::size_t CellIndex(int cx, int cy) const {
    return static_cast<std::size_t>(cy) * cells_x_ + cx;
  }

  int CellXForWorld(double wx) const;
  int CellYForWorld(double wy) const;

  geometry::BoundingBox bounds_;
  int cells_x_ = 0;
  int cells_y_ = 0;
  double cell_w_ = 0.0;
  double cell_h_ = 0.0;
  std::vector<std::size_t> offsets_;   // cells_x*cells_y + 1
  std::vector<std::uint32_t> ids_;     // point ids grouped by cell
};

// ---- template implementation ----

template <typename InteriorFn, typename BoundaryFn>
void GridIndex::ClassifyCells(const geometry::Polygon& polygon,
                              InteriorFn&& interior,
                              BoundaryFn&& boundary) const {
  const geometry::BoundingBox poly_box = polygon.Bounds();
  if (!poly_box.Intersects(bounds_)) {
    return;
  }
  const int cx_lo = CellXForWorld(poly_box.min_x);
  const int cx_hi = CellXForWorld(poly_box.max_x);
  const int cy_lo = CellYForWorld(poly_box.min_y);
  const int cy_hi = CellYForWorld(poly_box.max_y);
  for (int cy = cy_lo; cy <= cy_hi; ++cy) {
    for (int cx = cx_lo; cx <= cx_hi; ++cx) {
      const geometry::BoundingBox cell = CellBounds(cx, cy);
      if (geometry::PolygonBoundaryIntersectsBox(polygon, cell)) {
        boundary(cx, cy);
      } else if (polygon.Contains(cell.Center())) {
        // No boundary crossing + center inside => cell fully inside.
        interior(cx, cy);
      }
    }
  }
}

}  // namespace urbane::index

#endif  // URBANE_INDEX_GRID_INDEX_H_
