#ifndef URBANE_INDEX_TEMPORAL_INDEX_H_
#define URBANE_INDEX_TEMPORAL_INDEX_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "util/status.h"

namespace urbane::index {

/// Sorted-timestamp index: point ids ordered by event time, plus an
/// equal-width bin directory for histogram queries.
///
/// Urbane's time-brushing slider turns into `IdsInRange` calls: the
/// contiguous id span for [t0, t1) feeds the raster join's filtered splat.
class TemporalIndex {
 public:
  /// `timestamps[i]` is the event time (epoch seconds) of point i.
  static StatusOr<TemporalIndex> Build(const std::int64_t* timestamps,
                                       std::size_t count,
                                       int histogram_bins = 256);

  std::size_t point_count() const { return sorted_ids_.size(); }
  std::int64_t min_time() const { return min_time_; }
  std::int64_t max_time() const { return max_time_; }

  /// Point ids with t in [t_begin, t_end), time-sorted, as a contiguous
  /// span (pointer, count) into the index.
  std::pair<const std::uint32_t*, std::size_t> IdsInRange(
      std::int64_t t_begin, std::int64_t t_end) const;

  /// Number of points with t in [t_begin, t_end).
  std::size_t CountInRange(std::int64_t t_begin, std::int64_t t_end) const;

  /// Equal-width histogram over [min_time, max_time]; bin -> count.
  const std::vector<std::size_t>& Histogram() const { return histogram_; }
  int histogram_bins() const { return static_cast<int>(histogram_.size()); }

  /// Start time of histogram bin b.
  std::int64_t BinStart(int b) const;

  std::size_t MemoryBytes() const {
    return sorted_ids_.capacity() * sizeof(std::uint32_t) +
           sorted_times_.capacity() * sizeof(std::int64_t) +
           histogram_.capacity() * sizeof(std::size_t);
  }

 private:
  TemporalIndex() = default;

  std::vector<std::uint32_t> sorted_ids_;
  std::vector<std::int64_t> sorted_times_;
  std::vector<std::size_t> histogram_;
  std::int64_t min_time_ = 0;
  std::int64_t max_time_ = 0;
};

}  // namespace urbane::index

#endif  // URBANE_INDEX_TEMPORAL_INDEX_H_
