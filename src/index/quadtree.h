#ifndef URBANE_INDEX_QUADTREE_H_
#define URBANE_INDEX_QUADTREE_H_

#include <cstdint>
#include <vector>

#include "geometry/bounding_box.h"
#include "geometry/clip.h"
#include "geometry/polygon.h"
#include "util/status.h"

namespace urbane::index {

/// Bucket PR-quadtree over a point set — the adaptive alternative to the
/// uniform grid baseline; degrades more gracefully under the heavy spatial
/// skew urban data exhibits (Manhattan hotspots).
///
/// Points are quadtree-sorted in place so that every node (internal or
/// leaf) owns one contiguous id range; "subtree fully inside polygon" then
/// resolves to a single span with zero point tests.
struct QuadtreeOptions {
  std::size_t max_points_per_leaf = 64;
  int max_depth = 16;
};

class Quadtree {
 public:
  using Options = QuadtreeOptions;

  static StatusOr<Quadtree> Build(const float* xs, const float* ys,
                                  std::size_t count,
                                  const geometry::BoundingBox& bounds,
                                  const Options& options = QuadtreeOptions());

  std::size_t point_count() const { return ids_.size(); }
  std::size_t node_count() const { return nodes_.size(); }
  int max_depth_reached() const { return max_depth_reached_; }

  /// Visits points that may fall in `polygon`:
  /// `take_all(ids, n)` for subtrees fully inside the polygon (no per-point
  /// test needed) and `test_each(ids, n)` for leaves straddling the
  /// boundary.
  template <typename TakeAllFn, typename TestEachFn>
  void Query(const geometry::Polygon& polygon, TakeAllFn&& take_all,
             TestEachFn&& test_each) const {
    if (nodes_.empty()) return;
    const geometry::BoundingBox poly_box = polygon.Bounds();
    std::vector<std::uint32_t> stack = {0};
    while (!stack.empty()) {
      const Node& node = nodes_[stack.back()];
      stack.pop_back();
      if (node.end == node.begin || !node.bounds.Intersects(poly_box)) {
        continue;
      }
      if (geometry::PolygonContainsBox(polygon, node.bounds)) {
        take_all(ids_.data() + node.begin, node.end - node.begin);
        continue;
      }
      if (node.IsLeaf()) {
        test_each(ids_.data() + node.begin, node.end - node.begin);
        continue;
      }
      for (int c = 0; c < 4; ++c) {
        stack.push_back(static_cast<std::uint32_t>(node.first_child + c));
      }
    }
  }

  /// Visits points possibly inside an axis-aligned box;
  /// `visit(ids, n, certain)` with certain == true when no per-point test
  /// is needed.
  template <typename Visit>
  void QueryBox(const geometry::BoundingBox& box, Visit&& visit) const {
    if (nodes_.empty()) return;
    std::vector<std::uint32_t> stack = {0};
    while (!stack.empty()) {
      const Node& node = nodes_[stack.back()];
      stack.pop_back();
      if (node.end == node.begin || !node.bounds.Intersects(box)) {
        continue;
      }
      if (box.Contains(node.bounds)) {
        visit(ids_.data() + node.begin, node.end - node.begin, true);
        continue;
      }
      if (node.IsLeaf()) {
        visit(ids_.data() + node.begin, node.end - node.begin, false);
        continue;
      }
      for (int c = 0; c < 4; ++c) {
        stack.push_back(static_cast<std::uint32_t>(node.first_child + c));
      }
    }
  }

  std::size_t MemoryBytes() const {
    return nodes_.capacity() * sizeof(Node) +
           ids_.capacity() * sizeof(std::uint32_t);
  }

 private:
  struct Node {
    geometry::BoundingBox bounds;
    std::uint32_t begin = 0;  // contiguous id range of the whole subtree
    std::uint32_t end = 0;
    std::int32_t first_child = -1;  // index of 4 consecutive children

    bool IsLeaf() const { return first_child < 0; }
  };

  Quadtree() = default;

  void BuildNode(std::uint32_t node_index, const float* xs, const float* ys,
                 int depth, const Options& options);

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> ids_;
  int max_depth_reached_ = 0;
};

}  // namespace urbane::index

#endif  // URBANE_INDEX_QUADTREE_H_
