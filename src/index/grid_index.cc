#include "index/grid_index.h"

#include <algorithm>
#include <cmath>

#include "geometry/clip.h"

namespace urbane::index {

StatusOr<GridIndex> GridIndex::Build(const float* xs, const float* ys,
                                     std::size_t count,
                                     const geometry::BoundingBox& bounds,
                                     int cells_x, int cells_y) {
  if (cells_x <= 0 || cells_y <= 0) {
    return Status::InvalidArgument("grid dimensions must be positive");
  }
  if (bounds.IsEmpty() || bounds.Width() <= 0.0 || bounds.Height() <= 0.0) {
    return Status::InvalidArgument("grid bounds must have positive extent");
  }
  GridIndex index;
  index.bounds_ = bounds;
  index.cells_x_ = cells_x;
  index.cells_y_ = cells_y;
  index.cell_w_ = bounds.Width() / cells_x;
  index.cell_h_ = bounds.Height() / cells_y;

  const std::size_t num_cells =
      static_cast<std::size_t>(cells_x) * static_cast<std::size_t>(cells_y);
  std::vector<std::size_t> counts(num_cells, 0);
  std::vector<std::size_t> cell_of_point(count);
  std::size_t kept = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const geometry::Vec2 p{xs[i], ys[i]};
    if (!bounds.Contains(p)) {
      cell_of_point[i] = num_cells;  // sentinel: outside
      continue;
    }
    const int cx = index.CellXForWorld(p.x);
    const int cy = index.CellYForWorld(p.y);
    const std::size_t cell = index.CellIndex(cx, cy);
    cell_of_point[i] = cell;
    ++counts[cell];
    ++kept;
  }
  index.offsets_.assign(num_cells + 1, 0);
  for (std::size_t c = 0; c < num_cells; ++c) {
    index.offsets_[c + 1] = index.offsets_[c] + counts[c];
  }
  index.ids_.resize(kept);
  std::vector<std::size_t> cursor(index.offsets_.begin(),
                                  index.offsets_.end() - 1);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t cell = cell_of_point[i];
    if (cell == num_cells) continue;
    index.ids_[cursor[cell]++] = static_cast<std::uint32_t>(i);
  }
  return index;
}

StatusOr<GridIndex> GridIndex::BuildAuto(const float* xs, const float* ys,
                                         std::size_t count,
                                         const geometry::BoundingBox& bounds,
                                         double target_points_per_cell) {
  const double want_cells =
      std::max(1.0, static_cast<double>(count) /
                        std::max(1.0, target_points_per_cell));
  // Near-square cells matching the world aspect ratio.
  const double aspect = bounds.Height() / bounds.Width();
  const int cx = std::max(
      1, static_cast<int>(std::lround(std::sqrt(want_cells / aspect))));
  const int cy = std::max(1, static_cast<int>(std::lround(cx * aspect)));
  return Build(xs, ys, count, bounds, cx, cy);
}

geometry::BoundingBox GridIndex::CellBounds(int cx, int cy) const {
  return {bounds_.min_x + cx * cell_w_, bounds_.min_y + cy * cell_h_,
          bounds_.min_x + (cx + 1) * cell_w_,
          bounds_.min_y + (cy + 1) * cell_h_};
}

int GridIndex::CellXForWorld(double wx) const {
  const int cx = static_cast<int>((wx - bounds_.min_x) / cell_w_);
  return std::clamp(cx, 0, cells_x_ - 1);
}

int GridIndex::CellYForWorld(double wy) const {
  const int cy = static_cast<int>((wy - bounds_.min_y) / cell_h_);
  return std::clamp(cy, 0, cells_y_ - 1);
}

}  // namespace urbane::index
