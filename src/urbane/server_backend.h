#ifndef URBANE_URBANE_SERVER_BACKEND_H_
#define URBANE_URBANE_SERVER_BACKEND_H_

#include "server/query_backend.h"
#include "urbane/dataset_manager.h"

namespace urbane::app {

/// Adapts DatasetManager to the query server's backend interface: parses
/// the statement, binds the FROM names to registered data sets / region
/// layers, runs the engine (planner-chosen when `method` is unset), and
/// joins the positional result with region identities. Stateless beyond
/// the borrowed manager, so one instance serves every worker thread.
class DatasetManagerBackend : public server::QueryBackend {
 public:
  /// `manager` is borrowed and must outlive the backend.
  explicit DatasetManagerBackend(DatasetManager* manager)
      : manager_(manager) {}

  StatusOr<server::BackendResult> ExecuteSql(
      const std::string& sql, std::optional<core::ExecutionMethod> method,
      const core::QueryControl* control,
      obs::QueryProfile* profile) override;

  /// POST /v1/ingest: appends the batch to a live data set;
  /// ResourceExhausted (HTTP 429) when the write path is saturated.
  StatusOr<server::IngestResponse> Ingest(
      const server::IngestRequest& request) override;

  /// Live data sets appear alongside registered ones, sized by watermark.
  std::vector<server::CatalogEntry> ListDatasets() override;
  std::vector<server::CatalogEntry> ListRegionLayers() override;

 private:
  DatasetManager* manager_;
};

}  // namespace urbane::app

#endif  // URBANE_URBANE_SERVER_BACKEND_H_
