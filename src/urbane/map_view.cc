#include "urbane/map_view.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geometry/simplify.h"
#include "raster/font.h"
#include "raster/rasterizer.h"
#include "util/string_util.h"

namespace urbane::app {

namespace {

// Compact numeric label for legends ("12.5K", "3.1M").
std::string LegendLabel(double value) {
  const double magnitude = std::fabs(value);
  if (magnitude >= 1e6) {
    return StringPrintf("%.1fM", value / 1e6);
  }
  if (magnitude >= 1e4) {
    return StringPrintf("%.1fK", value / 1e3);
  }
  if (magnitude == std::floor(magnitude) && magnitude < 1e4) {
    return StringPrintf("%.0f", value);
  }
  return StringPrintf("%.2f", value);
}

}  // namespace

StatusOr<MapRender> RenderChoropleth(const data::RegionSet& regions,
                                     const core::QueryResult& result,
                                     const MapViewOptions& options) {
  if (result.values.size() != regions.size()) {
    return Status::InvalidArgument(
        "query result size does not match the region set");
  }
  if (regions.empty()) {
    return Status::InvalidArgument("cannot render an empty region set");
  }
  const geometry::BoundingBox world = regions.Bounds().Expanded(
      0.01 * std::max(regions.Bounds().Width(), regions.Bounds().Height()));
  const raster::Viewport vp =
      raster::Viewport::WithSquarePixels(world, options.image_width);

  auto transform = [&](double v) {
    if (!options.log_scale) return v;
    return v >= 0 ? std::log1p(v) : -std::log1p(-v);
  };

  // Legend range over finite values.
  double lo = options.scale_lo;
  double hi = options.scale_hi;
  if (lo == hi) {
    lo = std::numeric_limits<double>::infinity();
    hi = -std::numeric_limits<double>::infinity();
    for (const double v : result.values) {
      if (!std::isfinite(v)) continue;
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (!(hi > lo)) {
      hi = lo + 1.0;
    }
  }

  const Colormap colormap = Colormap::Make(options.colormap);
  MapRender render;
  render.legend_lo = lo;
  render.legend_hi = hi;
  render.image = raster::Image(vp.width(), vp.height(), options.background);

  const double tlo = transform(lo);
  const double thi = transform(hi);
  // Optional level-of-detail pass: drop boundary detail below the pixel
  // grid before rasterizing.
  const double lod_tolerance =
      options.simplify_tolerance_px *
      std::max(vp.pixel_width(), vp.pixel_height());
  std::vector<geometry::Polygon> simplified;
  std::vector<std::pair<std::size_t, const geometry::Polygon*>> draw_list;
  for (std::size_t r = 0; r < regions.size(); ++r) {
    for (const geometry::Polygon& part : regions[r].geometry.parts()) {
      if (lod_tolerance > 0.0) {
        simplified.push_back(
            geometry::SimplifyPolygon(part, lod_tolerance));
      }
    }
  }
  std::size_t lod_cursor = 0;
  for (std::size_t r = 0; r < regions.size(); ++r) {
    for (const geometry::Polygon& part : regions[r].geometry.parts()) {
      draw_list.emplace_back(
          r, lod_tolerance > 0.0 ? &simplified[lod_cursor++] : &part);
    }
  }

  for (const auto& [r, part] : draw_list) {
    const double v = result.values[r];
    const Rgb fill = std::isfinite(v)
                         ? colormap.MapRange(transform(v), tlo, thi)
                         : options.background;
    raster::ScanlineFillPolygon(
        vp, *part, [&](int y, int x_begin, int x_end) {
          Rgb* row = render.image.Row(y);
          for (int x = x_begin; x < x_end; ++x) {
            row[x] = fill;
          }
        });
  }
  if (options.draw_boundaries) {
    for (const auto& [r, part] : draw_list) {
      raster::RasterizePolygonBoundary(vp, *part, [&](int x, int y) {
        render.image.at(x, y) = options.boundary_color;
      });
    }
  }
  if (options.draw_legend) {
    const int bar_width = std::min(200, vp.width() / 3);
    raster::DrawLegendBar(render.image, 12, 14, bar_width, 10, colormap,
                          LegendLabel(lo), LegendLabel(hi), options.title,
                          options.boundary_color);
  }
  return render;
}

StatusOr<MapRender> RenderChoroplethToFile(const data::RegionSet& regions,
                                           const core::QueryResult& result,
                                           const std::string& path,
                                           const MapViewOptions& options) {
  URBANE_ASSIGN_OR_RETURN(MapRender render,
                          RenderChoropleth(regions, result, options));
  URBANE_RETURN_IF_ERROR(raster::WritePpm(render.image, path));
  return render;
}

}  // namespace urbane::app
