#ifndef URBANE_URBANE_DATASET_MANAGER_H_
#define URBANE_URBANE_DATASET_MANAGER_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/spatial_aggregation.h"
#include "data/point_table.h"
#include "data/region.h"
#include "index/temporal_index.h"
#include "ingest/live_engine.h"
#include "ingest/live_table.h"
#include "store/store_reader.h"
#include "store/store_writer.h"
#include "util/status.h"

namespace urbane::app {

/// Urbane's data layer: named point data sets (taxi, 311, crime, ...) and
/// named region layers (boroughs, neighborhoods, tracts), plus lazily-built
/// query engines for every (data set, region layer) pair and per-data-set
/// temporal indexes backing the time-brush histogram.
///
/// Thread-safety: all methods may be called concurrently (the query server
/// binds names from N worker threads at once). The registry maps are
/// guarded by one mutex; registered tables/regions are immutable after
/// registration and engines are internally thread-safe, so pointers handed
/// out stay valid and usable without the lock. Lazy builds (first Engine /
/// Temporal call for a pair) happen under the lock — concurrent first
/// touches serialize rather than building twice.
class DatasetManager {
 public:
  DatasetManager() = default;

  DatasetManager(const DatasetManager&) = delete;
  DatasetManager& operator=(const DatasetManager&) = delete;

  Status AddPointDataset(const std::string& name, data::PointTable table);
  Status AddRegionLayer(const std::string& name, data::RegionSet regions);

  /// Registers a UST1 block store as a point data set. The table is served
  /// zero-copy from the mmap'ed file when possible (rows are paged in on
  /// demand, so data sets larger than RAM work) and engines built for it
  /// automatically prune blocks via the store's zone maps. Falls back to
  /// materializing the rows when the file cannot be mapped.
  Status AddStoreDataset(const std::string& name, const std::string& path);

  /// Converts a registered point data set to a UST1 block store at `path`
  /// (atomic: the file appears only when complete). Returns writer stats.
  StatusOr<store::StoreWriterStats> ConvertToStore(
      const std::string& dataset, const std::string& path,
      std::uint64_t block_rows = 64 * 1024);

  std::vector<std::string> PointDatasetNames() const;
  std::vector<std::string> RegionLayerNames() const;

  StatusOr<const data::PointTable*> PointDataset(
      const std::string& name) const;
  StatusOr<const data::RegionSet*> RegionLayer(const std::string& name) const;

  /// Query engine for a (data set, region layer) pair; built on first use
  /// and cached (so raster canvases / indexes are reused across frames).
  StatusOr<core::SpatialAggregation*> Engine(
      const std::string& dataset, const std::string& region_layer,
      const core::RasterJoinOptions& raster_options =
          core::RasterJoinOptions());

  /// Scatter-gather fan-out applied to every engine — existing and future
  /// (the server's `--shards` flag lands here). See
  /// SpatialAggregation::set_num_shards for the semantics; 0/1 = unsharded.
  void set_engine_shards(std::size_t num_shards);
  std::size_t engine_shards() const;

  /// Temporal index of a data set (built on first use).
  StatusOr<const index::TemporalIndex*> Temporal(const std::string& dataset);

  /// Makes `dataset` appendable: opens (or crash-recovers) an
  /// ingest::LiveTable rooted at `directory` and layers it over the
  /// registered table of the same name when one exists (its store's zone
  /// maps ride along). Unregistered names become fresh live data sets whose
  /// schema is `attribute_names` (must be empty when a base exists — the
  /// base's schema wins). Queries against the name route to the live
  /// engine from here on.
  Status EnableIngest(const std::string& dataset,
                      const std::string& directory,
                      std::vector<std::string> attribute_names = {},
                      const ingest::IngestOptions& options =
                          ingest::IngestOptions());

  bool IsLive(const std::string& dataset) const;
  std::vector<std::string> LiveDatasetNames() const;

  /// Appends a batch to a live data set; returns the new watermark.
  /// ResourceExhausted when the write path is saturated (HTTP 429).
  StatusOr<std::uint64_t> IngestBatch(const std::string& dataset,
                                      const data::PointTable& batch);

  /// Seals + flushes every pending run of a live data set to UST1 files.
  Status FlushIngest(const std::string& dataset);

  /// Merges a live data set's store runs into one.
  Status CompactIngest(const std::string& dataset);

  StatusOr<ingest::IngestStats> IngestStatsFor(
      const std::string& dataset) const;

  /// Attribute schema appended batches must match (arity-wise).
  StatusOr<data::Schema> LiveSchema(const std::string& dataset) const;

  /// Live query engine for a (live data set, region layer) pair; built on
  /// first use and cached, mirroring Engine().
  StatusOr<ingest::LiveEngine*> Live(const std::string& dataset,
                                     const std::string& region_layer);

  /// Loads every entry of a workspace manifest (data::Catalog JSON file);
  /// entry paths are resolved relative to the manifest's directory.
  Status LoadWorkspace(const std::string& manifest_path);

  /// Snapshots every registered data set / region layer into `directory`
  /// (binary formats) and writes `directory/urbane.workspace.json`.
  Status SaveWorkspace(const std::string& directory) const;

  /// Parses and runs a statement in the paper's SQL dialect, e.g.
  ///   "SELECT AVG(fare_amount) FROM taxi, neighborhoods
  ///    WHERE t IN [1230768000, 1233446400) AND passenger_count IN [1, 2]"
  /// binding the FROM names to registered data sets / region layers; a
  /// live data set routes to its snapshot-composed engine, and a non-null
  /// `watermark` receives the as-of row count the answer is exact for.
  /// A non-null `trace` collects the query's spans and tags (CLI `trace`);
  /// a non-null `profile` collects the per-request resource breakdown
  /// (CLI `explain analyze`, see obs/profile.h).
  StatusOr<core::QueryResult> ExecuteSql(const std::string& sql,
                                         core::ExecutionMethod method,
                                         obs::QueryTrace* trace = nullptr,
                                         obs::QueryProfile* profile = nullptr,
                                         std::uint64_t* watermark = nullptr);

 private:
  StatusOr<const data::PointTable*> PointDatasetLocked(
      const std::string& name) const;
  StatusOr<const data::RegionSet*> RegionLayerLocked(
      const std::string& name) const;

  mutable std::mutex mu_;
  /// Fan-out stamped onto every engine (see set_engine_shards).
  std::size_t engine_shards_ = 1;
  /// Open store readers backing store-registered data sets (the PointTable
  /// in points_ is a view into the reader's mapping, so the reader must
  /// stay alive; keyed by data set name).
  std::map<std::string, std::unique_ptr<store::StoreReader>> stores_;
  std::map<std::string, std::unique_ptr<data::PointTable>> points_;
  std::map<std::string, std::unique_ptr<data::RegionSet>> regions_;
  std::map<std::string, std::unique_ptr<core::SpatialAggregation>> engines_;
  std::map<std::string, std::unique_ptr<index::TemporalIndex>> temporal_;
  /// Live (appendable) data sets and their lazily-built engines, keyed
  /// like engines_ ("dataset\x1flayer"). LiveTable and LiveEngine are
  /// internally thread-safe, so both are used outside mu_ once looked up.
  std::map<std::string, std::unique_ptr<ingest::LiveTable>> live_;
  std::map<std::string, std::unique_ptr<ingest::LiveEngine>> live_engines_;
};

}  // namespace urbane::app

#endif  // URBANE_URBANE_DATASET_MANAGER_H_
