#ifndef URBANE_URBANE_CHART_VIEW_H_
#define URBANE_URBANE_CHART_VIEW_H_

#include <string>
#include <vector>

#include "raster/image.h"
#include "util/color.h"
#include "util/status.h"

namespace urbane::app {

/// One line of a time-series chart.
struct ChartSeries {
  std::string label;
  std::vector<double> values;  // one per time bin, NaN -> gap
};

struct ChartOptions {
  int width = 640;
  int height = 240;
  std::string title;
  Rgb background{20, 20, 24};
  Rgb axis_color{200, 200, 200};
  /// Series colors are sampled from this map (categorical use).
  ColormapKind palette = ColormapKind::kViridis;
  /// Explicit y range; lo == hi -> auto from the data (always including 0
  /// for count-like series when `include_zero`).
  double y_lo = 0.0;
  double y_hi = 0.0;
  bool include_zero = true;
};

/// Renders a multi-series line chart — Urbane's temporal view next to the
/// map (e.g. pickups per time bin for selected neighborhoods). All series
/// must share one length (>= 2).
StatusOr<raster::Image> RenderTimeSeriesChart(
    const std::vector<ChartSeries>& series,
    const ChartOptions& options = ChartOptions());

StatusOr<raster::Image> RenderTimeSeriesChartToFile(
    const std::vector<ChartSeries>& series, const std::string& path,
    const ChartOptions& options = ChartOptions());

}  // namespace urbane::app

#endif  // URBANE_URBANE_CHART_VIEW_H_
