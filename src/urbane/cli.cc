#include "urbane/cli.h"

#include <algorithm>
#include <vector>

#include "core/sql.h"
#include "data/binary_io.h"
#include "data/csv_loader.h"
#include "data/event_generator.h"
#include "data/geojson.h"
#include "data/region_generator.h"
#include "data/taxi_generator.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "urbane/map_view.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace urbane::app {

namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  for (const char c : line) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!current.empty()) {
        tokens.push_back(std::move(current));
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) {
    tokens.push_back(std::move(current));
  }
  return tokens;
}

StatusOr<std::uint64_t> ParseCount(const std::string& text) {
  URBANE_ASSIGN_OR_RETURN(std::int64_t value, ParseInt64(text));
  if (value <= 0) {
    return Status::InvalidArgument("count must be positive: " + text);
  }
  return static_cast<std::uint64_t>(value);
}

}  // namespace

const char* CommandInterpreter::Help() {
  return "commands:\n"
         "  gen taxi|311|crime <name> <count> [seed]\n"
         "  gen regions <name> boroughs|neighborhoods|tracts [seed]\n"
         "  load points <name> <file.csv|file.upt>\n"
         "  load regions <name> <file.geojson|file.urg>\n"
         "  save points <name> <file.csv|file.upt>\n"
         "  save regions <name> <file.geojson|file.urg>\n"
         "  save workspace <dir> | load workspace <manifest.json>\n"
         "  method scan|index|raster|accurate\n"
         "  cache <points> <regions> on [entries]|off|stats\n"
         "  sql SELECT AGG(attr|*) FROM <points>, <regions> [WHERE ...]\n"
         "  map <points> <regions> <out.ppm> [title...]\n"
         "  stats [on|off|reset|json]\n"
         "  trace on|off|dump [json]\n"
         "  list | help | quit\n";
}

bool CommandInterpreter::Execute(const std::string& line, std::ostream& out) {
  bool quit = false;
  const Status status = Dispatch(line, out, quit);
  if (!status.ok()) {
    out << "error: " << status.ToString() << "\n";
  }
  return !quit;
}

Status CommandInterpreter::Dispatch(const std::string& line,
                                    std::ostream& out, bool& quit) {
  const std::string trimmed(TrimWhitespace(line));
  if (trimmed.empty() || trimmed[0] == '#') {
    return Status::OK();
  }
  const std::vector<std::string> tokens = Tokenize(trimmed);
  const std::string command = ToLowerAscii(tokens[0]);
  if (command == "quit" || command == "exit") {
    quit = true;
    return Status::OK();
  }
  if (command == "help") {
    out << Help();
    return Status::OK();
  }
  if (command == "list") {
    CmdList(out);
    return Status::OK();
  }
  if (command == "gen") {
    return CmdGen(tokens, out);
  }
  if (command == "load") {
    if (tokens.size() >= 2 && ToLowerAscii(tokens[1]) == "workspace") {
      if (tokens.size() != 3) {
        return Status::InvalidArgument(
            "usage: load workspace <manifest.json>");
      }
      URBANE_RETURN_IF_ERROR(manager_.LoadWorkspace(tokens[2]));
      out << "loaded workspace " << tokens[2] << "\n";
      CmdList(out);
      return Status::OK();
    }
    return CmdLoad(tokens, out);
  }
  if (command == "save") {
    if (tokens.size() >= 2 && ToLowerAscii(tokens[1]) == "workspace") {
      if (tokens.size() != 3) {
        return Status::InvalidArgument("usage: save workspace <directory>");
      }
      URBANE_RETURN_IF_ERROR(manager_.SaveWorkspace(tokens[2]));
      out << "saved workspace to " << tokens[2] << "\n";
      return Status::OK();
    }
    return CmdSave(tokens, out);
  }
  if (command == "method") {
    return CmdMethod(tokens, out);
  }
  if (command == "cache") {
    return CmdCache(tokens, out);
  }
  if (command == "sql" || command == "select") {
    // Allow both "sql SELECT ..." and bare "SELECT ...".
    const std::string sql =
        command == "sql" ? trimmed.substr(tokens[0].size()) : trimmed;
    return CmdSql(std::string(TrimWhitespace(sql)), out);
  }
  if (command == "map") {
    return CmdMap(tokens, out);
  }
  if (command == "stats") {
    return CmdStats(tokens, out);
  }
  if (command == "trace") {
    return CmdTrace(tokens, out);
  }
  return Status::InvalidArgument("unknown command '" + tokens[0] +
                                 "' (try 'help')");
}

Status CommandInterpreter::CmdGen(const std::vector<std::string>& args,
                                  std::ostream& out) {
  if (args.size() < 4) {
    return Status::InvalidArgument("usage: gen <kind> <name> <count|layer>");
  }
  const std::string kind = ToLowerAscii(args[1]);
  const std::string& name = args[2];
  std::uint64_t seed = 42;
  if (args.size() >= 5) {
    URBANE_ASSIGN_OR_RETURN(std::int64_t parsed, ParseInt64(args[4]));
    seed = static_cast<std::uint64_t>(parsed);
  }
  WallTimer timer;
  if (kind == "taxi") {
    URBANE_ASSIGN_OR_RETURN(std::uint64_t count, ParseCount(args[3]));
    data::TaxiGeneratorOptions options;
    options.num_trips = count;
    options.seed = seed;
    URBANE_RETURN_IF_ERROR(
        manager_.AddPointDataset(name, data::GenerateTaxiTrips(options)));
  } else if (kind == "311" || kind == "crime") {
    URBANE_ASSIGN_OR_RETURN(std::uint64_t count, ParseCount(args[3]));
    data::UrbanEventOptions options;
    options.kind = kind == "311" ? data::UrbanEventKind::kServiceRequests311
                                 : data::UrbanEventKind::kCrimeIncidents;
    options.num_events = count;
    options.seed = seed;
    URBANE_RETURN_IF_ERROR(
        manager_.AddPointDataset(name, data::GenerateUrbanEvents(options)));
  } else if (kind == "regions") {
    const std::string layer = ToLowerAscii(args[3]);
    data::RegionSet regions;
    if (layer == "boroughs") {
      regions = data::GenerateBoroughs(seed);
    } else if (layer == "neighborhoods") {
      regions = data::GenerateNeighborhoods(seed);
    } else if (layer == "tracts") {
      regions = data::GenerateCensusTracts(seed);
    } else {
      return Status::InvalidArgument("unknown region layer: " + args[3]);
    }
    URBANE_RETURN_IF_ERROR(manager_.AddRegionLayer(name, std::move(regions)));
  } else {
    return Status::InvalidArgument("unknown generator kind: " + args[1]);
  }
  out << "generated '" << name << "' in "
      << FormatDuration(timer.ElapsedSeconds()) << "\n";
  return Status::OK();
}

Status CommandInterpreter::CmdLoad(const std::vector<std::string>& args,
                                   std::ostream& out) {
  if (args.size() != 4) {
    return Status::InvalidArgument(
        "usage: load points|regions <name> <path>");
  }
  const std::string what = ToLowerAscii(args[1]);
  const std::string& name = args[2];
  const std::string& path = args[3];
  WallTimer timer;
  if (what == "points") {
    data::PointTable table;
    if (EndsWith(path, ".upt")) {
      URBANE_ASSIGN_OR_RETURN(table, data::ReadPointTableBinary(path));
    } else {
      URBANE_ASSIGN_OR_RETURN(table, data::ReadPointTableCsvFile(path));
    }
    const std::size_t rows = table.size();
    URBANE_RETURN_IF_ERROR(manager_.AddPointDataset(name, std::move(table)));
    out << "loaded " << rows << " points into '" << name << "' in "
        << FormatDuration(timer.ElapsedSeconds()) << "\n";
    return Status::OK();
  }
  if (what == "regions") {
    data::RegionSet regions;
    if (EndsWith(path, ".urg")) {
      URBANE_ASSIGN_OR_RETURN(regions, data::ReadRegionSetBinary(path));
    } else {
      URBANE_ASSIGN_OR_RETURN(regions, data::ReadGeoJsonRegionsFile(path));
    }
    const std::size_t count = regions.size();
    URBANE_RETURN_IF_ERROR(manager_.AddRegionLayer(name, std::move(regions)));
    out << "loaded " << count << " regions into '" << name << "' in "
        << FormatDuration(timer.ElapsedSeconds()) << "\n";
    return Status::OK();
  }
  return Status::InvalidArgument("load expects 'points' or 'regions'");
}

Status CommandInterpreter::CmdSave(const std::vector<std::string>& args,
                                   std::ostream& out) {
  if (args.size() != 4) {
    return Status::InvalidArgument(
        "usage: save points|regions <name> <path>");
  }
  const std::string what = ToLowerAscii(args[1]);
  const std::string& name = args[2];
  const std::string& path = args[3];
  if (what == "points") {
    URBANE_ASSIGN_OR_RETURN(const data::PointTable* table,
                            manager_.PointDataset(name));
    if (EndsWith(path, ".upt")) {
      URBANE_RETURN_IF_ERROR(data::WritePointTableBinary(*table, path));
    } else {
      URBANE_RETURN_IF_ERROR(data::WritePointTableCsvFile(*table, path));
    }
  } else if (what == "regions") {
    URBANE_ASSIGN_OR_RETURN(const data::RegionSet* regions,
                            manager_.RegionLayer(name));
    if (EndsWith(path, ".urg")) {
      URBANE_RETURN_IF_ERROR(data::WriteRegionSetBinary(*regions, path));
    } else {
      URBANE_RETURN_IF_ERROR(
          WriteStringToFile(data::WriteGeoJsonRegions(*regions), path));
    }
  } else {
    return Status::InvalidArgument("save expects 'points' or 'regions'");
  }
  out << "saved '" << name << "' to " << path << "\n";
  return Status::OK();
}

Status CommandInterpreter::CmdMethod(const std::vector<std::string>& args,
                                     std::ostream& out) {
  if (args.size() != 2) {
    return Status::InvalidArgument(
        "usage: method scan|index|raster|accurate");
  }
  const std::string name = ToLowerAscii(args[1]);
  if (name == "scan") {
    method_ = core::ExecutionMethod::kScan;
  } else if (name == "index") {
    method_ = core::ExecutionMethod::kIndexJoin;
  } else if (name == "raster") {
    method_ = core::ExecutionMethod::kBoundedRaster;
  } else if (name == "accurate") {
    method_ = core::ExecutionMethod::kAccurateRaster;
  } else {
    return Status::InvalidArgument("unknown method: " + args[1]);
  }
  out << "execution method = " << core::ExecutionMethodToString(method_)
      << "\n";
  return Status::OK();
}

Status CommandInterpreter::CmdCache(const std::vector<std::string>& args,
                                    std::ostream& out) {
  if (args.size() < 4) {
    return Status::InvalidArgument(
        "usage: cache <points> <regions> on [entries]|off|stats");
  }
  URBANE_ASSIGN_OR_RETURN(core::SpatialAggregation * engine,
                          manager_.Engine(args[1], args[2]));
  const std::string action = ToLowerAscii(args[3]);
  if (action == "on") {
    std::size_t entries = 1024;
    if (args.size() >= 5) {
      URBANE_ASSIGN_OR_RETURN(std::uint64_t parsed, ParseCount(args[4]));
      entries = static_cast<std::size_t>(parsed);
    }
    engine->set_result_cache_capacity(entries);
    out << "result cache on (" << entries << " entries)\n";
    return Status::OK();
  }
  if (action == "off") {
    engine->set_result_cache_capacity(0);
    out << "result cache off\n";
    return Status::OK();
  }
  if (action == "stats") {
    const core::QueryCacheStats stats = engine->result_cache_stats();
    out << StringPrintf(
        "result cache: entries=%zu bytes=%zu hits=%zu misses=%zu "
        "evictions=%zu hit-rate=%.1f%% epoch=%llu\n",
        stats.entries, stats.bytes, stats.hits, stats.misses,
        stats.evictions, 100.0 * stats.HitRate(),
        static_cast<unsigned long long>(engine->config_epoch()));
    return Status::OK();
  }
  return Status::InvalidArgument("cache expects 'on', 'off', or 'stats'");
}

Status CommandInterpreter::CmdSql(const std::string& sql, std::ostream& out) {
  URBANE_ASSIGN_OR_RETURN(core::ParsedQuery parsed,
                          core::ParseQuerySql(sql));
  URBANE_ASSIGN_OR_RETURN(const data::RegionSet* regions,
                          manager_.RegionLayer(parsed.regions_layer));
  obs::QueryTrace* trace = nullptr;
  if (trace_on_) {
    last_trace_ = std::make_unique<obs::QueryTrace>();
    trace = last_trace_.get();
  }
  WallTimer timer;
  URBANE_ASSIGN_OR_RETURN(core::QueryResult result,
                          manager_.ExecuteSql(sql, method_, trace));
  const double seconds = timer.ElapsedSeconds();

  // Top regions by value.
  std::vector<std::size_t> order(result.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const double va = std::isfinite(result.values[a])
                                           ? result.values[a]
                                           : -1e300;
                     const double vb = std::isfinite(result.values[b])
                                           ? result.values[b]
                                           : -1e300;
                     return va > vb;
                   });
  std::uint64_t total = 0;
  for (const auto c : result.counts) total += c;
  out << result.size() << " groups, " << total << " matching points, "
      << FormatDuration(seconds) << " ("
      << core::ExecutionMethodToString(method_) << ")\n";
  const std::size_t top = std::min<std::size_t>(10, order.size());
  for (std::size_t k = 0; k < top; ++k) {
    const std::size_t r = order[k];
    out << "  " << (*regions)[r].name << "  "
        << StringPrintf("%.4g", result.values[r]);
    if (!result.error_bounds.empty()) {
      out << StringPrintf("  (err<=%.3g)", result.error_bounds[r]);
    }
    out << "\n";
  }
  return Status::OK();
}

Status CommandInterpreter::CmdMap(const std::vector<std::string>& args,
                                  std::ostream& out) {
  if (args.size() < 4) {
    return Status::InvalidArgument(
        "usage: map <points> <regions> <out.ppm> [title...]");
  }
  URBANE_ASSIGN_OR_RETURN(core::SpatialAggregation * engine,
                          manager_.Engine(args[1], args[2]));
  URBANE_ASSIGN_OR_RETURN(const data::RegionSet* regions,
                          manager_.RegionLayer(args[2]));
  core::AggregationQuery query;
  query.aggregate = core::AggregateSpec::Count();
  URBANE_ASSIGN_OR_RETURN(core::QueryResult result,
                          engine->Execute(query, method_));
  MapViewOptions options;
  for (std::size_t i = 4; i < args.size(); ++i) {
    if (!options.title.empty()) options.title += " ";
    options.title += args[i];
  }
  URBANE_ASSIGN_OR_RETURN(MapRender render,
                          RenderChoroplethToFile(*regions, result, args[3],
                                                 options));
  out << "wrote " << args[3] << " (" << render.image.width() << "x"
      << render.image.height() << ", scale " << render.legend_lo << ".."
      << render.legend_hi << ")\n";
  return Status::OK();
}

Status CommandInterpreter::CmdStats(const std::vector<std::string>& args,
                                    std::ostream& out) {
  if (args.size() >= 2) {
    const std::string action = ToLowerAscii(args[1]);
    if (action == "on") {
      obs::SetMetricsEnabled(true);
      out << "metrics on\n";
      return Status::OK();
    }
    if (action == "off") {
      obs::SetMetricsEnabled(false);
      out << "metrics off\n";
      return Status::OK();
    }
    if (action == "reset") {
      obs::MetricsRegistry::Global().Reset();
      out << "metrics reset\n";
      return Status::OK();
    }
    if (action == "json") {
      out << obs::MetricsRegistry::Global().ToJson().Dump(2) << "\n";
      return Status::OK();
    }
    return Status::InvalidArgument("usage: stats [on|off|reset|json]");
  }
  if (!obs::MetricsEnabled()) {
    out << "metrics are off ('stats on' to enable)\n";
  }
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Global().Snapshot();
  if (snapshot.counters.empty() && snapshot.gauges.empty() &&
      snapshot.histograms.empty()) {
    out << "no metrics recorded\n";
    return Status::OK();
  }
  for (const obs::CounterSnapshot& counter : snapshot.counters) {
    out << StringPrintf("%-40s %llu\n", counter.name.c_str(),
                        static_cast<unsigned long long>(counter.value));
  }
  for (const obs::GaugeSnapshot& gauge : snapshot.gauges) {
    out << StringPrintf("%-40s %.6g\n", gauge.name.c_str(), gauge.value);
  }
  for (const obs::HistogramSnapshot& histogram : snapshot.histograms) {
    out << StringPrintf(
        "%-40s n=%llu mean=%s min=%s max=%s\n", histogram.name.c_str(),
        static_cast<unsigned long long>(histogram.count),
        FormatDuration(histogram.Mean()).c_str(),
        FormatDuration(histogram.min).c_str(),
        FormatDuration(histogram.max).c_str());
  }
  return Status::OK();
}

Status CommandInterpreter::CmdTrace(const std::vector<std::string>& args,
                                    std::ostream& out) {
  if (args.size() < 2) {
    return Status::InvalidArgument("usage: trace on|off|dump [json]");
  }
  const std::string action = ToLowerAscii(args[1]);
  if (action == "on") {
    trace_on_ = true;
    obs::SetTracingEnabled(true);
    out << "tracing on (next 'sql' records a trace; 'trace dump' prints it)\n";
    return Status::OK();
  }
  if (action == "off") {
    trace_on_ = false;
    obs::SetTracingEnabled(false);
    out << "tracing off\n";
    return Status::OK();
  }
  if (action == "dump") {
    if (last_trace_ == nullptr || last_trace_->Empty()) {
      out << "no trace recorded (run 'trace on' and then a 'sql' command)\n";
      return Status::OK();
    }
    if (args.size() >= 3 && ToLowerAscii(args[2]) == "json") {
      out << last_trace_->ToJson().Dump(2) << "\n";
    } else {
      out << last_trace_->ToString();
    }
    return Status::OK();
  }
  return Status::InvalidArgument("trace expects 'on', 'off', or 'dump'");
}

void CommandInterpreter::CmdList(std::ostream& out) {
  out << "point data sets:";
  for (const std::string& name : manager_.PointDatasetNames()) {
    const auto table = manager_.PointDataset(name);
    out << " " << name << "(" << (*table)->size() << ")";
  }
  out << "\nregion layers:";
  for (const std::string& name : manager_.RegionLayerNames()) {
    const auto regions = manager_.RegionLayer(name);
    out << " " << name << "(" << (*regions)->size() << ")";
  }
  out << "\n";
}

}  // namespace urbane::app
