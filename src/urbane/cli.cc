#include "urbane/cli.h"

#include <algorithm>
#include <vector>

#include "core/sql.h"
#include "data/binary_io.h"
#include "data/csv_loader.h"
#include "data/event_generator.h"
#include "data/geojson.h"
#include "data/region_generator.h"
#include "data/taxi_generator.h"
#include "geometry/mercator.h"
#include "obs/event_journal.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/profile.h"
#include "obs/slow_query_log.h"
#include "urbane/map_view.h"
#include "util/csv.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace urbane::app {

namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  for (const char c : line) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!current.empty()) {
        tokens.push_back(std::move(current));
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) {
    tokens.push_back(std::move(current));
  }
  return tokens;
}

StatusOr<std::uint64_t> ParseCount(const std::string& text) {
  URBANE_ASSIGN_OR_RETURN(std::int64_t value, ParseInt64(text));
  if (value <= 0) {
    return Status::InvalidArgument("count must be positive: " + text);
  }
  return static_cast<std::uint64_t>(value);
}

}  // namespace

const char* CommandInterpreter::Help() {
  return "commands:\n"
         "  gen taxi|311|crime <name> <count> [seed]\n"
         "  gen regions <name> boroughs|neighborhoods|tracts [seed]\n"
         "  load points <name> <file.csv|file.upt>\n"
         "  load regions <name> <file.geojson|file.urg>\n"
         "  save points <name> <file.csv|file.upt>\n"
         "  save regions <name> <file.geojson|file.urg>\n"
         "  save workspace <dir> | load workspace <manifest.json>\n"
         "  convert <points> <file.ust> [block-rows]\n"
         "  open <name> <file.ust>\n"
         "  method scan|index|raster|accurate\n"
         "  live <dataset> <dir> [attr...] | live <dataset>\n"
         "  ingest <dataset> <count> [seed]\n"
         "  flush <dataset> | compact <dataset>\n"
         "  cache <points> <regions> on [entries]|off|stats\n"
         "  sql SELECT AGG(attr|*) FROM <points>, <regions> [WHERE ...]\n"
         "  explain analyze [json] SELECT ...\n"
         "  map <points> <regions> <out.ppm> [title...]\n"
         "  stats [on|off|reset|json]\n"
         "  trace on|off|dump [json]\n"
         "  serve [[start] [port] [sink <path>]|stop|status]\n"
         "  server [[start] [port] [workers N] [queue N] [timeout MS] "
         "[shards N]|stop|status]\n"
         "  events [drain|status|on|off|reset]\n"
         "  slowlog [arm [threshold-ms]|arm p99 [multiplier]|disarm|clear|"
         "json]\n"
         "  list | help | quit\n";
}

bool CommandInterpreter::Execute(const std::string& line, std::ostream& out) {
  bool quit = false;
  const Status status = Dispatch(line, out, quit);
  if (!status.ok()) {
    out << "error: " << status.ToString() << "\n";
  }
  return !quit;
}

Status CommandInterpreter::Dispatch(const std::string& line,
                                    std::ostream& out, bool& quit) {
  const std::string trimmed(TrimWhitespace(line));
  if (trimmed.empty() || trimmed[0] == '#') {
    return Status::OK();
  }
  const std::vector<std::string> tokens = Tokenize(trimmed);
  const std::string command = ToLowerAscii(tokens[0]);
  if (command == "quit" || command == "exit") {
    quit = true;
    return Status::OK();
  }
  if (command == "help") {
    out << Help();
    return Status::OK();
  }
  if (command == "list") {
    CmdList(out);
    return Status::OK();
  }
  if (command == "gen") {
    return CmdGen(tokens, out);
  }
  if (command == "load") {
    if (tokens.size() >= 2 && ToLowerAscii(tokens[1]) == "workspace") {
      if (tokens.size() != 3) {
        return Status::InvalidArgument(
            "usage: load workspace <manifest.json>");
      }
      URBANE_RETURN_IF_ERROR(manager_.LoadWorkspace(tokens[2]));
      out << "loaded workspace " << tokens[2] << "\n";
      CmdList(out);
      return Status::OK();
    }
    return CmdLoad(tokens, out);
  }
  if (command == "save") {
    if (tokens.size() >= 2 && ToLowerAscii(tokens[1]) == "workspace") {
      if (tokens.size() != 3) {
        return Status::InvalidArgument("usage: save workspace <directory>");
      }
      URBANE_RETURN_IF_ERROR(manager_.SaveWorkspace(tokens[2]));
      out << "saved workspace to " << tokens[2] << "\n";
      return Status::OK();
    }
    return CmdSave(tokens, out);
  }
  if (command == "convert") {
    return CmdConvert(tokens, out);
  }
  if (command == "open") {
    return CmdOpen(tokens, out);
  }
  if (command == "method") {
    return CmdMethod(tokens, out);
  }
  if (command == "live") {
    return CmdLive(tokens, out);
  }
  if (command == "ingest") {
    return CmdIngest(tokens, out);
  }
  if (command == "flush") {
    return CmdFlush(tokens, out);
  }
  if (command == "compact") {
    return CmdCompact(tokens, out);
  }
  if (command == "cache") {
    return CmdCache(tokens, out);
  }
  if (command == "sql" || command == "select") {
    // Allow both "sql SELECT ..." and bare "SELECT ...".
    const std::string sql =
        command == "sql" ? trimmed.substr(tokens[0].size()) : trimmed;
    return CmdSql(std::string(TrimWhitespace(sql)), out);
  }
  if (command == "explain") {
    if (tokens.size() < 3 || ToLowerAscii(tokens[1]) != "analyze") {
      return Status::InvalidArgument("usage: explain analyze [json] <sql>");
    }
    // Strip "explain analyze" (as typed) from the raw line; the rest is
    // the statement, whose spacing must survive untouched.
    std::size_t pos =
        trimmed.find_first_not_of(" \t", tokens[0].size());
    pos = trimmed.find_first_of(" \t", pos);
    return CmdExplain(std::string(TrimWhitespace(trimmed.substr(pos))), out);
  }
  if (command == "map") {
    return CmdMap(tokens, out);
  }
  if (command == "stats") {
    return CmdStats(tokens, out);
  }
  if (command == "trace") {
    return CmdTrace(tokens, out);
  }
  if (command == "serve") {
    return CmdServe(tokens, out);
  }
  if (command == "server") {
    return CmdServer(tokens, out);
  }
  if (command == "events") {
    return CmdEvents(tokens, out);
  }
  if (command == "slowlog") {
    return CmdSlowlog(tokens, out);
  }
  return Status::InvalidArgument("unknown command '" + tokens[0] +
                                 "' (try 'help')");
}

Status CommandInterpreter::CmdGen(const std::vector<std::string>& args,
                                  std::ostream& out) {
  if (args.size() < 4) {
    return Status::InvalidArgument("usage: gen <kind> <name> <count|layer>");
  }
  const std::string kind = ToLowerAscii(args[1]);
  const std::string& name = args[2];
  std::uint64_t seed = 42;
  if (args.size() >= 5) {
    URBANE_ASSIGN_OR_RETURN(std::int64_t parsed, ParseInt64(args[4]));
    seed = static_cast<std::uint64_t>(parsed);
  }
  WallTimer timer;
  if (kind == "taxi") {
    URBANE_ASSIGN_OR_RETURN(std::uint64_t count, ParseCount(args[3]));
    data::TaxiGeneratorOptions options;
    options.num_trips = count;
    options.seed = seed;
    URBANE_RETURN_IF_ERROR(
        manager_.AddPointDataset(name, data::GenerateTaxiTrips(options)));
  } else if (kind == "311" || kind == "crime") {
    URBANE_ASSIGN_OR_RETURN(std::uint64_t count, ParseCount(args[3]));
    data::UrbanEventOptions options;
    options.kind = kind == "311" ? data::UrbanEventKind::kServiceRequests311
                                 : data::UrbanEventKind::kCrimeIncidents;
    options.num_events = count;
    options.seed = seed;
    URBANE_RETURN_IF_ERROR(
        manager_.AddPointDataset(name, data::GenerateUrbanEvents(options)));
  } else if (kind == "regions") {
    const std::string layer = ToLowerAscii(args[3]);
    data::RegionSet regions;
    if (layer == "boroughs") {
      regions = data::GenerateBoroughs(seed);
    } else if (layer == "neighborhoods") {
      regions = data::GenerateNeighborhoods(seed);
    } else if (layer == "tracts") {
      regions = data::GenerateCensusTracts(seed);
    } else {
      return Status::InvalidArgument("unknown region layer: " + args[3]);
    }
    URBANE_RETURN_IF_ERROR(manager_.AddRegionLayer(name, std::move(regions)));
  } else {
    return Status::InvalidArgument("unknown generator kind: " + args[1]);
  }
  out << "generated '" << name << "' in "
      << FormatDuration(timer.ElapsedSeconds()) << "\n";
  return Status::OK();
}

Status CommandInterpreter::CmdLoad(const std::vector<std::string>& args,
                                   std::ostream& out) {
  if (args.size() != 4) {
    return Status::InvalidArgument(
        "usage: load points|regions <name> <path>");
  }
  const std::string what = ToLowerAscii(args[1]);
  const std::string& name = args[2];
  const std::string& path = args[3];
  WallTimer timer;
  if (what == "points") {
    data::PointTable table;
    if (EndsWith(path, ".upt")) {
      URBANE_ASSIGN_OR_RETURN(table, data::ReadPointTableBinary(path));
    } else {
      URBANE_ASSIGN_OR_RETURN(table, data::ReadPointTableCsvFile(path));
    }
    const std::size_t rows = table.size();
    URBANE_RETURN_IF_ERROR(manager_.AddPointDataset(name, std::move(table)));
    out << "loaded " << rows << " points into '" << name << "' in "
        << FormatDuration(timer.ElapsedSeconds()) << "\n";
    return Status::OK();
  }
  if (what == "regions") {
    data::RegionSet regions;
    if (EndsWith(path, ".urg")) {
      URBANE_ASSIGN_OR_RETURN(regions, data::ReadRegionSetBinary(path));
    } else {
      URBANE_ASSIGN_OR_RETURN(regions, data::ReadGeoJsonRegionsFile(path));
    }
    const std::size_t count = regions.size();
    URBANE_RETURN_IF_ERROR(manager_.AddRegionLayer(name, std::move(regions)));
    out << "loaded " << count << " regions into '" << name << "' in "
        << FormatDuration(timer.ElapsedSeconds()) << "\n";
    return Status::OK();
  }
  return Status::InvalidArgument("load expects 'points' or 'regions'");
}

Status CommandInterpreter::CmdSave(const std::vector<std::string>& args,
                                   std::ostream& out) {
  if (args.size() != 4) {
    return Status::InvalidArgument(
        "usage: save points|regions <name> <path>");
  }
  const std::string what = ToLowerAscii(args[1]);
  const std::string& name = args[2];
  const std::string& path = args[3];
  if (what == "points") {
    URBANE_ASSIGN_OR_RETURN(const data::PointTable* table,
                            manager_.PointDataset(name));
    if (EndsWith(path, ".upt")) {
      URBANE_RETURN_IF_ERROR(data::WritePointTableBinary(*table, path));
    } else {
      URBANE_RETURN_IF_ERROR(data::WritePointTableCsvFile(*table, path));
    }
  } else if (what == "regions") {
    URBANE_ASSIGN_OR_RETURN(const data::RegionSet* regions,
                            manager_.RegionLayer(name));
    if (EndsWith(path, ".urg")) {
      URBANE_RETURN_IF_ERROR(data::WriteRegionSetBinary(*regions, path));
    } else {
      URBANE_RETURN_IF_ERROR(
          WriteStringToFile(data::WriteGeoJsonRegions(*regions), path));
    }
  } else {
    return Status::InvalidArgument("save expects 'points' or 'regions'");
  }
  out << "saved '" << name << "' to " << path << "\n";
  return Status::OK();
}

Status CommandInterpreter::CmdConvert(const std::vector<std::string>& args,
                                      std::ostream& out) {
  if (args.size() != 3 && args.size() != 4) {
    return Status::InvalidArgument(
        "usage: convert <points> <file.ust> [block-rows]");
  }
  std::uint64_t block_rows = 64 * 1024;
  if (args.size() == 4) {
    URBANE_ASSIGN_OR_RETURN(block_rows, ParseCount(args[3]));
  }
  WallTimer timer;
  URBANE_ASSIGN_OR_RETURN(
      store::StoreWriterStats stats,
      manager_.ConvertToStore(args[1], args[2], block_rows));
  out << "converted '" << args[1] << "' to " << args[2] << ": "
      << stats.rows_written << " rows in " << stats.blocks_written
      << " blocks (" << stats.file_bytes << " bytes) in "
      << FormatDuration(timer.ElapsedSeconds()) << "\n";
  return Status::OK();
}

Status CommandInterpreter::CmdOpen(const std::vector<std::string>& args,
                                   std::ostream& out) {
  if (args.size() != 3) {
    return Status::InvalidArgument("usage: open <name> <file.ust>");
  }
  WallTimer timer;
  URBANE_RETURN_IF_ERROR(manager_.AddStoreDataset(args[1], args[2]));
  URBANE_ASSIGN_OR_RETURN(const data::PointTable* table,
                          manager_.PointDataset(args[1]));
  out << "opened store " << args[2] << " as '" << args[1] << "': "
      << table->size() << " rows"
      << (table->is_view() ? " (memory-mapped)" : " (materialized)")
      << " in " << FormatDuration(timer.ElapsedSeconds()) << "\n";
  return Status::OK();
}

Status CommandInterpreter::CmdMethod(const std::vector<std::string>& args,
                                     std::ostream& out) {
  if (args.size() != 2) {
    return Status::InvalidArgument(
        "usage: method scan|index|raster|accurate");
  }
  const std::string name = ToLowerAscii(args[1]);
  if (name == "scan") {
    method_ = core::ExecutionMethod::kScan;
  } else if (name == "index") {
    method_ = core::ExecutionMethod::kIndexJoin;
  } else if (name == "raster") {
    method_ = core::ExecutionMethod::kBoundedRaster;
  } else if (name == "accurate") {
    method_ = core::ExecutionMethod::kAccurateRaster;
  } else {
    return Status::InvalidArgument("unknown method: " + args[1]);
  }
  out << "execution method = " << core::ExecutionMethodToString(method_)
      << "\n";
  return Status::OK();
}

Status CommandInterpreter::CmdLive(const std::vector<std::string>& args,
                                   std::ostream& out) {
  if (args.size() < 2) {
    return Status::InvalidArgument(
        "usage: live <dataset> <dir> [attr...] | live <dataset>");
  }
  const std::string& name = args[1];
  if (args.size() == 2) {
    URBANE_ASSIGN_OR_RETURN(ingest::IngestStats stats,
                            manager_.IngestStatsFor(name));
    out << StringPrintf(
        "live '%s': watermark=%llu (base=%llu hot=%llu) sealed-runs=%llu "
        "store-runs=%llu\n"
        "  appends=%llu rows=%llu rejected=%llu flushes=%llu "
        "compactions=%llu wal-bytes=%llu replayed=%llu\n",
        name.c_str(), static_cast<unsigned long long>(stats.watermark),
        static_cast<unsigned long long>(stats.base_rows),
        static_cast<unsigned long long>(stats.hot_rows),
        static_cast<unsigned long long>(stats.sealed_runs),
        static_cast<unsigned long long>(stats.store_runs),
        static_cast<unsigned long long>(stats.appends),
        static_cast<unsigned long long>(stats.rows_appended),
        static_cast<unsigned long long>(stats.rejected),
        static_cast<unsigned long long>(stats.flushes),
        static_cast<unsigned long long>(stats.compactions),
        static_cast<unsigned long long>(stats.wal_bytes),
        static_cast<unsigned long long>(stats.replayed_rows));
    return Status::OK();
  }
  std::vector<std::string> attrs(args.begin() + 3, args.end());
  WallTimer timer;
  URBANE_RETURN_IF_ERROR(
      manager_.EnableIngest(name, args[2], std::move(attrs)));
  URBANE_ASSIGN_OR_RETURN(ingest::IngestStats stats,
                          manager_.IngestStatsFor(name));
  out << "live '" << name << "' at " << args[2] << ": watermark="
      << stats.watermark;
  if (stats.replayed_rows > 0) {
    out << " (recovered " << stats.replayed_rows << " rows from the WAL)";
  }
  out << " in " << FormatDuration(timer.ElapsedSeconds()) << "\n";
  return Status::OK();
}

Status CommandInterpreter::CmdIngest(const std::vector<std::string>& args,
                                     std::ostream& out) {
  if (args.size() != 3 && args.size() != 4) {
    return Status::InvalidArgument("usage: ingest <dataset> <count> [seed]");
  }
  URBANE_ASSIGN_OR_RETURN(std::uint64_t count, ParseCount(args[2]));
  std::uint64_t seed = 42;
  if (args.size() == 4) {
    URBANE_ASSIGN_OR_RETURN(std::int64_t parsed, ParseInt64(args[3]));
    seed = static_cast<std::uint64_t>(parsed);
  }
  URBANE_ASSIGN_OR_RETURN(data::Schema schema,
                          manager_.LiveSchema(args[1]));
  // Synthetic rows over the same NYC footprint and month as the taxi
  // generator, so they land inside generated region layers.
  const geometry::BoundingBox bounds = geometry::NycMercatorBounds();
  const std::int64_t t0 = 1230768000;  // 2009-01-01 00:00:00 UTC
  const std::int64_t t_span = 31LL * 24 * 3600;
  Rng rng(seed);
  data::PointTable batch(schema);
  batch.Reserve(count);
  std::vector<float> attrs(schema.attribute_count(), 0.0f);
  for (std::uint64_t i = 0; i < count; ++i) {
    for (float& a : attrs) {
      a = static_cast<float>(rng.NextDouble(0.0, 100.0));
    }
    URBANE_RETURN_IF_ERROR(batch.AppendRow(
        static_cast<float>(rng.NextDouble(bounds.min_x, bounds.max_x)),
        static_cast<float>(rng.NextDouble(bounds.min_y, bounds.max_y)),
        t0 + rng.NextInt(0, t_span - 1), attrs));
  }
  WallTimer timer;
  URBANE_ASSIGN_OR_RETURN(std::uint64_t watermark,
                          manager_.IngestBatch(args[1], batch));
  out << "appended " << count << " rows to '" << args[1]
      << "': watermark=" << watermark << " in "
      << FormatDuration(timer.ElapsedSeconds()) << "\n";
  return Status::OK();
}

Status CommandInterpreter::CmdFlush(const std::vector<std::string>& args,
                                    std::ostream& out) {
  if (args.size() != 2) {
    return Status::InvalidArgument("usage: flush <dataset>");
  }
  WallTimer timer;
  URBANE_RETURN_IF_ERROR(manager_.FlushIngest(args[1]));
  URBANE_ASSIGN_OR_RETURN(ingest::IngestStats stats,
                          manager_.IngestStatsFor(args[1]));
  out << "flushed '" << args[1] << "': " << stats.store_runs
      << " store runs, watermark=" << stats.watermark << " in "
      << FormatDuration(timer.ElapsedSeconds()) << "\n";
  return Status::OK();
}

Status CommandInterpreter::CmdCompact(const std::vector<std::string>& args,
                                      std::ostream& out) {
  if (args.size() != 2) {
    return Status::InvalidArgument("usage: compact <dataset>");
  }
  WallTimer timer;
  URBANE_RETURN_IF_ERROR(manager_.CompactIngest(args[1]));
  URBANE_ASSIGN_OR_RETURN(ingest::IngestStats stats,
                          manager_.IngestStatsFor(args[1]));
  out << "compacted '" << args[1] << "' to " << stats.store_runs
      << " store run(s) in " << FormatDuration(timer.ElapsedSeconds())
      << "\n";
  return Status::OK();
}

Status CommandInterpreter::CmdCache(const std::vector<std::string>& args,
                                    std::ostream& out) {
  if (args.size() < 4) {
    return Status::InvalidArgument(
        "usage: cache <points> <regions> on [entries]|off|stats");
  }
  URBANE_ASSIGN_OR_RETURN(core::SpatialAggregation * engine,
                          manager_.Engine(args[1], args[2]));
  const std::string action = ToLowerAscii(args[3]);
  if (action == "on") {
    std::size_t entries = 1024;
    if (args.size() >= 5) {
      URBANE_ASSIGN_OR_RETURN(std::uint64_t parsed, ParseCount(args[4]));
      entries = static_cast<std::size_t>(parsed);
    }
    engine->set_result_cache_capacity(entries);
    out << "result cache on (" << entries << " entries)\n";
    return Status::OK();
  }
  if (action == "off") {
    engine->set_result_cache_capacity(0);
    out << "result cache off\n";
    return Status::OK();
  }
  if (action == "stats") {
    const core::QueryCacheStats stats = engine->result_cache_stats();
    out << StringPrintf(
        "result cache: entries=%zu bytes=%zu hits=%zu misses=%zu "
        "evictions=%zu hit-rate=%.1f%% epoch=%llu\n",
        stats.entries, stats.bytes, stats.hits, stats.misses,
        stats.evictions, 100.0 * stats.HitRate(),
        static_cast<unsigned long long>(engine->config_epoch()));
    return Status::OK();
  }
  return Status::InvalidArgument("cache expects 'on', 'off', or 'stats'");
}

Status CommandInterpreter::CmdSql(const std::string& sql, std::ostream& out) {
  URBANE_ASSIGN_OR_RETURN(core::ParsedQuery parsed,
                          core::ParseQuerySql(sql));
  URBANE_ASSIGN_OR_RETURN(const data::RegionSet* regions,
                          manager_.RegionLayer(parsed.regions_layer));
  obs::QueryTrace* trace = nullptr;
  if (trace_on_) {
    last_trace_ = std::make_unique<obs::QueryTrace>();
    trace = last_trace_.get();
  }
  WallTimer timer;
  std::uint64_t watermark = 0;
  URBANE_ASSIGN_OR_RETURN(core::QueryResult result,
                          manager_.ExecuteSql(sql, method_, trace, nullptr,
                                              &watermark));
  const double seconds = timer.ElapsedSeconds();
  const bool live = manager_.IsLive(parsed.points_dataset);

  // Top regions by value.
  std::vector<std::size_t> order(result.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const double va = std::isfinite(result.values[a])
                                           ? result.values[a]
                                           : -1e300;
                     const double vb = std::isfinite(result.values[b])
                                           ? result.values[b]
                                           : -1e300;
                     return va > vb;
                   });
  std::uint64_t total = 0;
  for (const auto c : result.counts) total += c;
  out << result.size() << " groups, " << total << " matching points, "
      << FormatDuration(seconds) << " ("
      << core::ExecutionMethodToString(method_);
  if (live) {
    out << ", as of watermark " << watermark;
  }
  out << ")\n";
  const std::size_t top = std::min<std::size_t>(10, order.size());
  for (std::size_t k = 0; k < top; ++k) {
    const std::size_t r = order[k];
    out << "  " << (*regions)[r].name << "  "
        << StringPrintf("%.4g", result.values[r]);
    if (!result.error_bounds.empty()) {
      out << StringPrintf("  (err<=%.3g)", result.error_bounds[r]);
    }
    out << "\n";
  }
  return Status::OK();
}

Status CommandInterpreter::CmdExplain(const std::string& args,
                                      std::ostream& out) {
  bool as_json = false;
  std::string sql = args;
  {
    const std::vector<std::string> tokens = Tokenize(args);
    if (!tokens.empty() && ToLowerAscii(tokens[0]) == "json") {
      as_json = true;
      sql = std::string(TrimWhitespace(args.substr(tokens[0].size())));
    }
  }
  if (sql.empty()) {
    return Status::InvalidArgument("usage: explain analyze [json] <sql>");
  }
  obs::QueryProfile profile;
  profile.context = obs::GenerateTraceContext();
  URBANE_ASSIGN_OR_RETURN(core::QueryResult result,
                          manager_.ExecuteSql(sql, method_, nullptr,
                                              &profile));
  // Retained like a server-side profile, so `server start` + GET
  // /v1/profiles/<trace_id> can fetch what the shell just measured.
  obs::ProfileStore::Global().Insert(profile);
  if (as_json) {
    out << profile.ToJson().Dump(2) << "\n";
    return Status::OK();
  }
  std::uint64_t total = 0;
  for (const auto c : result.counts) total += c;
  out << profile.ToTable();
  out << result.size() << " groups, " << total << " matching points\n";
  return Status::OK();
}

Status CommandInterpreter::CmdMap(const std::vector<std::string>& args,
                                  std::ostream& out) {
  if (args.size() < 4) {
    return Status::InvalidArgument(
        "usage: map <points> <regions> <out.ppm> [title...]");
  }
  URBANE_ASSIGN_OR_RETURN(core::SpatialAggregation * engine,
                          manager_.Engine(args[1], args[2]));
  URBANE_ASSIGN_OR_RETURN(const data::RegionSet* regions,
                          manager_.RegionLayer(args[2]));
  core::AggregationQuery query;
  query.aggregate = core::AggregateSpec::Count();
  URBANE_ASSIGN_OR_RETURN(core::QueryResult result,
                          engine->Execute(query, method_));
  MapViewOptions options;
  for (std::size_t i = 4; i < args.size(); ++i) {
    if (!options.title.empty()) options.title += " ";
    options.title += args[i];
  }
  URBANE_ASSIGN_OR_RETURN(MapRender render,
                          RenderChoroplethToFile(*regions, result, args[3],
                                                 options));
  out << "wrote " << args[3] << " (" << render.image.width() << "x"
      << render.image.height() << ", scale " << render.legend_lo << ".."
      << render.legend_hi << ")\n";
  return Status::OK();
}

Status CommandInterpreter::CmdStats(const std::vector<std::string>& args,
                                    std::ostream& out) {
  if (args.size() >= 2) {
    const std::string action = ToLowerAscii(args[1]);
    if (action == "on") {
      obs::SetMetricsEnabled(true);
      out << "metrics on\n";
      return Status::OK();
    }
    if (action == "off") {
      obs::SetMetricsEnabled(false);
      out << "metrics off\n";
      return Status::OK();
    }
    if (action == "reset") {
      obs::MetricsRegistry::Global().Reset();
      out << "metrics reset\n";
      return Status::OK();
    }
    if (action == "json") {
      out << obs::MetricsRegistry::Global().ToJson().Dump(2) << "\n";
      return Status::OK();
    }
    return Status::InvalidArgument("usage: stats [on|off|reset|json]");
  }
  if (!obs::MetricsEnabled()) {
    out << "metrics are off ('stats on' to enable)\n";
  }
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Global().Snapshot();
  if (snapshot.counters.empty() && snapshot.gauges.empty() &&
      snapshot.histograms.empty()) {
    out << "no metrics recorded\n";
    return Status::OK();
  }
  for (const obs::CounterSnapshot& counter : snapshot.counters) {
    out << StringPrintf("%-40s %llu\n", counter.name.c_str(),
                        static_cast<unsigned long long>(counter.value));
  }
  for (const obs::GaugeSnapshot& gauge : snapshot.gauges) {
    out << StringPrintf("%-40s %.6g\n", gauge.name.c_str(), gauge.value);
  }
  for (const obs::HistogramSnapshot& histogram : snapshot.histograms) {
    out << StringPrintf(
        "%-40s n=%llu mean=%s min=%s max=%s\n", histogram.name.c_str(),
        static_cast<unsigned long long>(histogram.count),
        FormatDuration(histogram.Mean()).c_str(),
        FormatDuration(histogram.min).c_str(),
        FormatDuration(histogram.max).c_str());
  }
  return Status::OK();
}

Status CommandInterpreter::CmdTrace(const std::vector<std::string>& args,
                                    std::ostream& out) {
  if (args.size() < 2) {
    return Status::InvalidArgument("usage: trace on|off|dump [json]");
  }
  const std::string action = ToLowerAscii(args[1]);
  if (action == "on") {
    trace_on_ = true;
    obs::SetTracingEnabled(true);
    out << "tracing on (next 'sql' records a trace; 'trace dump' prints it)\n";
    return Status::OK();
  }
  if (action == "off") {
    trace_on_ = false;
    obs::SetTracingEnabled(false);
    out << "tracing off\n";
    return Status::OK();
  }
  if (action == "dump") {
    if (last_trace_ == nullptr || last_trace_->Empty()) {
      out << "no trace recorded (run 'trace on' and then a 'sql' command)\n";
      return Status::OK();
    }
    if (args.size() >= 3 && ToLowerAscii(args[2]) == "json") {
      out << last_trace_->ToJson().Dump(2) << "\n";
    } else {
      out << last_trace_->ToString();
    }
    return Status::OK();
  }
  return Status::InvalidArgument("trace expects 'on', 'off', or 'dump'");
}

Status CommandInterpreter::CmdServe(const std::vector<std::string>& args,
                                    std::ostream& out) {
  std::string action =
      args.size() >= 2 ? ToLowerAscii(args[1]) : std::string("start");
  // "serve 9090" and "serve sink <path>" are shorthands for "serve start ...".
  std::size_t i = 2;
  if (action != "start" && action != "stop" && action != "status") {
    const bool numeric =
        !action.empty() &&
        action.find_first_not_of("0123456789") == std::string::npos;
    if (numeric || action == "sink") {
      action = "start";
      i = 1;
    }
  }
  if (action == "stop") {
    if (exporter_ == nullptr) {
      out << "exporter is not running\n";
      return Status::OK();
    }
    exporter_->Stop();
    exporter_.reset();
    out << "exporter stopped\n";
    return Status::OK();
  }
  if (action == "status") {
    if (exporter_ != nullptr && exporter_->running()) {
      out << "exporter listening on 127.0.0.1:" << exporter_->port() << "\n";
    } else {
      out << "exporter is not running\n";
    }
    return Status::OK();
  }
  if (action != "start") {
    return Status::InvalidArgument(
        "usage: serve [[start] [port] [sink <path>]|stop|status]");
  }
  if (exporter_ != nullptr && exporter_->running()) {
    return Status::FailedPrecondition(
        "exporter already running ('serve stop' first)");
  }
  obs::TelemetryExporterOptions options;
  if (i < args.size() && ToLowerAscii(args[i]) != "sink") {
    URBANE_ASSIGN_OR_RETURN(std::int64_t port, ParseInt64(args[i]));
    if (port < 0 || port > 65535) {
      return Status::InvalidArgument("port out of range: " + args[i]);
    }
    options.port = static_cast<std::uint16_t>(port);
    ++i;
  }
  if (i < args.size() && ToLowerAscii(args[i]) == "sink") {
    if (i + 1 >= args.size()) {
      return Status::InvalidArgument("'sink' expects a file path");
    }
    options.sink_path = args[i + 1];
    i += 2;
  }
  if (i < args.size()) {
    return Status::InvalidArgument("unexpected argument: " + args[i]);
  }
  // A scrape endpoint with an empty registry is useless, so serving
  // implies the metrics + journal switches.
  obs::SetMetricsEnabled(true);
  obs::SetJournalEnabled(true);
  exporter_ = std::make_unique<obs::TelemetryExporter>(options);
  if (Status status = exporter_->Start(); !status.ok()) {
    exporter_.reset();
    return status;
  }
  out << "exporter listening on 127.0.0.1:" << exporter_->port()
      << " (metrics + journal on; try: curl http://127.0.0.1:"
      << exporter_->port() << "/metrics)\n";
  if (!options.sink_path.empty()) {
    out << "telemetry sink: " << options.sink_path << "\n";
  }
  return Status::OK();
}

Status CommandInterpreter::CmdServer(const std::vector<std::string>& args,
                                     std::ostream& out) {
  std::string action =
      args.size() >= 2 ? ToLowerAscii(args[1]) : std::string("start");
  std::size_t i = 2;
  // "server 9090" is shorthand for "server start 9090".
  if (action != "start" && action != "stop" && action != "status" &&
      !action.empty() &&
      action.find_first_not_of("0123456789") == std::string::npos) {
    action = "start";
    i = 1;
  }
  if (action == "stop") {
    if (server_ == nullptr) {
      out << "query server is not running\n";
      return Status::OK();
    }
    server_->Stop();
    out << "query server stopped (served "
        << server_->served() << " requests, shed "
        << server_->rejected_overload() << " on overload)\n";
    server_.reset();
    return Status::OK();
  }
  if (action == "status") {
    if (server_ != nullptr && server_->running()) {
      out << "query server listening on 127.0.0.1:" << server_->port()
          << " (accepted " << server_->accepted() << ", served "
          << server_->served() << ", overload 429s "
          << server_->rejected_overload() << ")\n";
    } else {
      out << "query server is not running\n";
    }
    return Status::OK();
  }
  if (action != "start") {
    return Status::InvalidArgument(
        "usage: server [[start] [port] [workers N] [queue N] "
        "[timeout MS] [shards N]|stop|status]");
  }
  if (server_ != nullptr && server_->running()) {
    return Status::FailedPrecondition(
        "query server already running ('server stop' first)");
  }
  server::QueryServerOptions options;
  if (i < args.size() &&
      args[i].find_first_not_of("0123456789") == std::string::npos) {
    URBANE_ASSIGN_OR_RETURN(std::int64_t port, ParseInt64(args[i]));
    if (port < 0 || port > 65535) {
      return Status::InvalidArgument("port out of range: " + args[i]);
    }
    options.port = static_cast<std::uint16_t>(port);
    ++i;
  }
  while (i < args.size()) {
    const std::string key = ToLowerAscii(args[i]);
    if (i + 1 >= args.size()) {
      return Status::InvalidArgument("'" + key + "' expects a value");
    }
    URBANE_ASSIGN_OR_RETURN(std::int64_t value, ParseInt64(args[i + 1]));
    if (key == "workers") {
      options.worker_threads = static_cast<int>(value);
    } else if (key == "queue") {
      options.max_queue_depth = static_cast<int>(value);
    } else if (key == "timeout") {
      options.default_timeout_ms = static_cast<int>(value);
    } else if (key == "shards") {
      if (value < 0) {
        return Status::InvalidArgument("'shards' must be >= 0");
      }
      manager_.set_engine_shards(static_cast<std::size_t>(value));
    } else {
      return Status::InvalidArgument("unexpected argument: " + args[i]);
    }
    i += 2;
  }
  // A query service without telemetry is flying blind; serving implies
  // the metrics + journal switches (same policy as `serve`).
  obs::SetMetricsEnabled(true);
  obs::SetJournalEnabled(true);
  if (backend_ == nullptr) {
    backend_ = std::make_unique<DatasetManagerBackend>(&manager_);
  }
  server_ = std::make_unique<server::QueryServer>(backend_.get(), options);
  if (Status status = server_->Start(); !status.ok()) {
    server_.reset();
    return status;
  }
  out << "query server listening on 127.0.0.1:" << server_->port() << " ("
      << options.worker_threads << " workers, queue "
      << options.max_queue_depth;
  if (manager_.engine_shards() > 1) {
    out << ", " << manager_.engine_shards() << " shards";
  }
  out << "; try: curl -d '{\"sql\": "
      << "\"SELECT COUNT(*) FROM taxi, nbhd\"}' http://127.0.0.1:"
      << server_->port() << "/v1/query)\n";
  return Status::OK();
}

Status CommandInterpreter::CmdEvents(const std::vector<std::string>& args,
                                     std::ostream& out) {
  obs::EventJournal& journal = obs::EventJournal::Global();
  const std::string action =
      args.size() >= 2 ? ToLowerAscii(args[1]) : std::string("drain");
  if (action == "on") {
    obs::SetJournalEnabled(true);
    out << "event journal on\n";
    return Status::OK();
  }
  if (action == "off") {
    obs::SetJournalEnabled(false);
    out << "event journal off\n";
    return Status::OK();
  }
  if (action == "reset") {
    journal.Reset();
    out << "event journal reset\n";
    return Status::OK();
  }
  if (action == "status") {
    out << StringPrintf(
        "event journal: %s, capacity=%zu published=%llu dropped=%llu\n",
        obs::JournalEnabled() ? "on" : "off", journal.capacity(),
        static_cast<unsigned long long>(journal.published()),
        static_cast<unsigned long long>(journal.dropped()));
    return Status::OK();
  }
  if (action != "drain") {
    return Status::InvalidArgument(
        "usage: events [drain|status|on|off|reset]");
  }
  if (!obs::JournalEnabled() && journal.published() == 0) {
    out << "event journal is off ('events on' to enable)\n";
    return Status::OK();
  }
  std::vector<obs::Event> events;
  journal.Drain(&events);
  if (events.empty()) {
    out << "no events\n";
    return Status::OK();
  }
  for (const obs::Event& event : events) {
    out << StringPrintf("%8llu  %-14s",
                        static_cast<unsigned long long>(event.sequence),
                        obs::EventKindName(event.kind));
    if (event.kind == obs::EventKind::kQueryStart ||
        event.kind == obs::EventKind::kQueryFinish ||
        event.kind == obs::EventKind::kPlannerChoose ||
        event.kind == obs::EventKind::kError) {
      out << "  method=" << core::ExecutionMethodToString(
                                static_cast<core::ExecutionMethod>(
                                    event.method));
    }
    if (event.fingerprint != 0) {
      out << StringPrintf(
          "  fp=%016llx",
          static_cast<unsigned long long>(event.fingerprint));
    }
    if (event.context != 0) {
      out << StringPrintf("  conn=%llu",
                          static_cast<unsigned long long>(event.context));
    }
    if (event.kind == obs::EventKind::kQueryFinish ||
        event.kind == obs::EventKind::kSessionFrame) {
      out << "  wall=" << FormatDuration(event.value);
    } else if (event.kind == obs::EventKind::kCacheEvict) {
      out << StringPrintf("  bytes=%.0f", event.value);
    } else if (event.kind == obs::EventKind::kPlannerChoose) {
      out << StringPrintf("  cost=%.3g", event.value);
    }
    if ((event.flags & obs::kEventCacheHit) != 0) out << "  cache-hit";
    if ((event.flags & obs::kEventError) != 0) out << "  error";
    out << "\n";
  }
  out << events.size() << " events ("
      << static_cast<unsigned long long>(journal.dropped()) << " dropped)\n";
  return Status::OK();
}

Status CommandInterpreter::CmdSlowlog(const std::vector<std::string>& args,
                                      std::ostream& out) {
  obs::SlowQueryLog& recorder = obs::SlowQueryLog::Global();
  const std::string action =
      args.size() >= 2 ? ToLowerAscii(args[1]) : std::string("show");
  if (action == "arm") {
    obs::SlowQueryLogOptions options = recorder.options();
    if (args.size() >= 3 && ToLowerAscii(args[2]) == "p99") {
      options.p99_multiplier = 3.0;
      if (args.size() >= 4) {
        URBANE_ASSIGN_OR_RETURN(std::int64_t mult, ParseInt64(args[3]));
        if (mult <= 0) {
          return Status::InvalidArgument("multiplier must be positive");
        }
        options.p99_multiplier = static_cast<double>(mult);
      }
      // The rolling threshold needs the latency histogram populated.
      obs::SetMetricsEnabled(true);
    } else {
      options.p99_multiplier = 0.0;
      if (args.size() >= 3) {
        URBANE_ASSIGN_OR_RETURN(std::int64_t ms, ParseInt64(args[2]));
        if (ms < 0) {
          return Status::InvalidArgument("threshold must be >= 0");
        }
        options.threshold_seconds = static_cast<double>(ms) / 1000.0;
      }
    }
    recorder.SetOptions(options);
    recorder.Arm();
    if (options.p99_multiplier > 0.0) {
      out << StringPrintf(
          "slow-query recorder armed (threshold = %.0fx rolling p99 of "
          "%s)\n",
          options.p99_multiplier, options.histogram_name.c_str());
    } else {
      out << StringPrintf("slow-query recorder armed (threshold = %s)\n",
                          FormatDuration(options.threshold_seconds).c_str());
    }
    return Status::OK();
  }
  if (action == "disarm") {
    recorder.Disarm();
    out << "slow-query recorder disarmed\n";
    return Status::OK();
  }
  if (action == "clear") {
    recorder.Clear();
    out << "slow-query log cleared\n";
    return Status::OK();
  }
  if (action == "json") {
    out << recorder.ToJson().Dump(2) << "\n";
    return Status::OK();
  }
  if (action != "show") {
    return Status::InvalidArgument(
        "usage: slowlog [arm [threshold-ms]|arm p99 [multiplier]|disarm|"
        "clear|json]");
  }
  const std::vector<obs::SlowQueryRecord> records = recorder.Records();
  out << StringPrintf(
      "slow-query recorder: %s, threshold=%s, captured=%llu, retained=%zu\n",
      recorder.armed() ? "armed" : "disarmed",
      FormatDuration(recorder.ThresholdSeconds()).c_str(),
      static_cast<unsigned long long>(recorder.captured()), records.size());
  for (const obs::SlowQueryRecord& record : records) {
    out << StringPrintf(
        "  #%llu  %s  wall=%s  fp=%016llx  %s\n",
        static_cast<unsigned long long>(record.sequence),
        record.method.c_str(), FormatDuration(record.wall_seconds).c_str(),
        static_cast<unsigned long long>(record.fingerprint),
        record.query.c_str());
  }
  return Status::OK();
}

void CommandInterpreter::CmdList(std::ostream& out) {
  out << "point data sets:";
  for (const std::string& name : manager_.PointDatasetNames()) {
    const auto table = manager_.PointDataset(name);
    out << " " << name << "(" << (*table)->size() << ")";
  }
  const std::vector<std::string> live = manager_.LiveDatasetNames();
  if (!live.empty()) {
    out << "\nlive data sets:";
    for (const std::string& name : live) {
      const auto stats = manager_.IngestStatsFor(name);
      out << " " << name << "("
          << (stats.ok() ? stats->watermark : 0) << ")";
    }
  }
  out << "\nregion layers:";
  for (const std::string& name : manager_.RegionLayerNames()) {
    const auto regions = manager_.RegionLayer(name);
    out << " " << name << "(" << (*regions)->size() << ")";
  }
  out << "\n";
}

}  // namespace urbane::app
