#ifndef URBANE_URBANE_EXPLORATION_VIEW_H_
#define URBANE_URBANE_EXPLORATION_VIEW_H_

#include <string>
#include <vector>

#include "core/planner.h"
#include "urbane/dataset_manager.h"

namespace urbane::app {

/// One column of the exploration view's profile matrix: an aggregate of one
/// data set under optional filters ("taxi pickups in January", "avg 311
/// response hours", ...).
struct ProfileMetric {
  std::string label;
  std::string dataset;
  core::AggregateSpec aggregate;
  core::FilterSpec filter;
};

/// Per-region multi-data-set profile matrix — the data model behind
/// Urbane's data exploration view (Section 3.1 of the paper), which lets an
/// architect compare a neighborhood of interest against the rest of the
/// city across several data sets at once.
struct ProfileTable {
  std::vector<std::string> metric_labels;          // columns
  std::vector<std::string> region_names;           // rows
  std::vector<std::vector<double>> values;         // [metric][region]
  std::vector<std::vector<double>> zscores;        // same shape, normalized

  std::size_t metric_count() const { return metric_labels.size(); }
  std::size_t region_count() const { return region_names.size(); }
};

/// A ranked similarity hit.
struct SimilarRegion {
  std::size_t region_index;
  double distance;  // euclidean distance in z-score space (lower = closer)
};

class DataExplorationView {
 public:
  /// `manager` must outlive the view.
  DataExplorationView(DatasetManager& manager, std::string region_layer);

  void AddMetric(ProfileMetric metric) {
    metrics_.push_back(std::move(metric));
  }
  const std::vector<ProfileMetric>& metrics() const { return metrics_; }

  /// Evaluates every metric over every region with the given execution
  /// method (the demo runs this on Raster Join to stay interactive) and
  /// z-score normalizes each metric column.
  StatusOr<ProfileTable> ComputeProfiles(core::ExecutionMethod method);

  /// Regions ordered by one metric (descending). `metric` indexes
  /// ProfileTable::metric_labels.
  static std::vector<std::size_t> RankByMetric(const ProfileTable& table,
                                               std::size_t metric);

  /// The k regions most similar to `region_index` across all metrics
  /// (euclidean in z-score space, NaNs skipped), excluding itself.
  static std::vector<SimilarRegion> MostSimilar(const ProfileTable& table,
                                                std::size_t region_index,
                                                std::size_t k);

  /// Aggregate time series: the metric re-evaluated over `bins` equal time
  /// slices of [t_begin, t_end); result is [bin][region].
  StatusOr<std::vector<std::vector<double>>> ComputeTimeSeries(
      const ProfileMetric& metric, std::int64_t t_begin, std::int64_t t_end,
      int bins, core::ExecutionMethod method);

 private:
  DatasetManager& manager_;
  std::string region_layer_;
  std::vector<ProfileMetric> metrics_;
};

}  // namespace urbane::app

#endif  // URBANE_URBANE_EXPLORATION_VIEW_H_
