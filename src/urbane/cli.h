#ifndef URBANE_URBANE_CLI_H_
#define URBANE_URBANE_CLI_H_

#include <memory>
#include <ostream>
#include <string>

#include "core/planner.h"
#include "obs/exporter.h"
#include "obs/trace.h"
#include "server/query_server.h"
#include "urbane/dataset_manager.h"
#include "urbane/server_backend.h"

namespace urbane::app {

/// Command interpreter behind the `urbane_cli` tool: a line-oriented shell
/// over the DatasetManager. One instance holds the session state (loaded
/// data sets, current execution method).
///
/// Commands (see Help()):
///   gen taxi <name> <count> [seed]     synthesize a taxi feed
///   gen 311 <name> <count> [seed]      synthesize a 311 feed
///   gen crime <name> <count> [seed]    synthesize a crime feed
///   gen regions <name> <boroughs|neighborhoods|tracts> [seed]
///   load points <name> <file.csv|file.upt>
///   load regions <name> <file.geojson|file.urg>
///   save points <name> <file.csv|file.upt>
///   save regions <name> <file.geojson|file.urg>
///   method <scan|index|raster|accurate>
///   live <dataset> <dir> [attr...]     enable streaming ingest (layered on
///                                      a registered data set, or fresh)
///   live <dataset>                     ingest status (watermark, runs, WAL)
///   ingest <dataset> <count> [seed]    append synthetic rows to a live set
///   flush <dataset>                    seal + flush live runs to UST1 files
///   compact <dataset>                  merge a live data set's store runs
///   cache <points> <regions> on [entries]|off|stats
///   sql SELECT ...                     run a query (paper dialect)
///   explain analyze [json] SELECT ...  run + print the resource profile
///   map <points> <regions> <out.ppm> [title...]
///   stats [on|off|reset|json]          process-wide metrics registry
///   trace on|off|dump [json]           per-query span traces for sql
///   serve [start [port] [sink <path>]|stop|status]
///                                      telemetry exporter (/metrics HTTP)
///   server [start [port] [workers N] [queue N] [timeout MS]|stop|status]
///                                      HTTP/JSON query server (POST
///                                      /v1/query, GET /v1/datasets, ...)
///   events [drain|status|on|off|reset] structured event journal
///   slowlog [arm [ms]|arm p99 [mult]|disarm|clear|json]
///                                      slow-query flight recorder
///   list                               registered data sets
///   help
///   quit
class CommandInterpreter {
 public:
  CommandInterpreter() = default;

  /// Executes one command line, writing human-readable output to `out`.
  /// Returns false when the command asks the session to end ("quit").
  /// Command errors are reported to `out` and return true (keep going).
  bool Execute(const std::string& line, std::ostream& out);

  DatasetManager& manager() { return manager_; }
  core::ExecutionMethod method() const { return method_; }

  static const char* Help();

 private:
  Status Dispatch(const std::string& line, std::ostream& out, bool& quit);
  Status CmdGen(const std::vector<std::string>& args, std::ostream& out);
  Status CmdLoad(const std::vector<std::string>& args, std::ostream& out);
  Status CmdSave(const std::vector<std::string>& args, std::ostream& out);
  Status CmdConvert(const std::vector<std::string>& args, std::ostream& out);
  Status CmdOpen(const std::vector<std::string>& args, std::ostream& out);
  Status CmdMethod(const std::vector<std::string>& args, std::ostream& out);
  Status CmdLive(const std::vector<std::string>& args, std::ostream& out);
  Status CmdIngest(const std::vector<std::string>& args, std::ostream& out);
  Status CmdFlush(const std::vector<std::string>& args, std::ostream& out);
  Status CmdCompact(const std::vector<std::string>& args, std::ostream& out);
  Status CmdCache(const std::vector<std::string>& args, std::ostream& out);
  Status CmdSql(const std::string& sql, std::ostream& out);
  Status CmdExplain(const std::string& args, std::ostream& out);
  Status CmdMap(const std::vector<std::string>& args, std::ostream& out);
  Status CmdStats(const std::vector<std::string>& args, std::ostream& out);
  Status CmdTrace(const std::vector<std::string>& args, std::ostream& out);
  Status CmdServe(const std::vector<std::string>& args, std::ostream& out);
  Status CmdServer(const std::vector<std::string>& args, std::ostream& out);
  Status CmdEvents(const std::vector<std::string>& args, std::ostream& out);
  Status CmdSlowlog(const std::vector<std::string>& args, std::ostream& out);
  void CmdList(std::ostream& out);

 public:
  /// The running telemetry exporter, if `serve` started one (exposed so
  /// embedding code and tests can discover the bound port).
  const obs::TelemetryExporter* exporter() const { return exporter_.get(); }

  /// The running query server, if `server start` started one.
  const server::QueryServer* query_server() const { return server_.get(); }

 private:
  DatasetManager manager_;
  core::ExecutionMethod method_ = core::ExecutionMethod::kAccurateRaster;
  bool trace_on_ = false;
  /// Trace of the most recent `sql` command while tracing is on; what
  /// `trace dump` prints.
  std::unique_ptr<obs::QueryTrace> last_trace_;
  std::unique_ptr<obs::TelemetryExporter> exporter_;
  std::unique_ptr<DatasetManagerBackend> backend_;
  std::unique_ptr<server::QueryServer> server_;
};

}  // namespace urbane::app

#endif  // URBANE_URBANE_CLI_H_
