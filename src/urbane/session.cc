#include "urbane/session.h"

#include <algorithm>
#include <cmath>

#include "obs/event_journal.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "util/random.h"

namespace urbane::app {

const char* InteractionKindToString(InteractionKind kind) {
  switch (kind) {
    case InteractionKind::kTimeBrushMove:
      return "brush-move";
    case InteractionKind::kTimeBrushResize:
      return "brush-resize";
    case InteractionKind::kFilterTighten:
      return "filter-tighten";
    case InteractionKind::kFilterRelax:
      return "filter-relax";
    case InteractionKind::kAggregateSwitch:
      return "agg-switch";
    case InteractionKind::kPanZoom:
      return "pan-zoom";
  }
  return "unknown";
}

SessionSummary SummarizeFrames(const std::vector<FrameRecord>& frames,
                               double interactive_budget_seconds) {
  SessionSummary summary;
  summary.frames = frames.size();
  LatencyStats stats;
  for (const FrameRecord& frame : frames) {
    stats.AddSample(frame.latency_seconds);
    summary.total_seconds += frame.latency_seconds;
    if (frame.latency_seconds <= interactive_budget_seconds) {
      ++summary.interactive_frames;
    }
    if (frame.cache_hit) {
      ++summary.cache_hit_frames;
    }
  }
  summary.p50_seconds = stats.PercentileSeconds(50.0);
  summary.p95_seconds = stats.PercentileSeconds(95.0);
  summary.max_seconds = stats.MaxSeconds();
  return summary;
}

std::vector<InteractionEvent> GenerateInteractionTrace(std::size_t count,
                                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<InteractionEvent> trace;
  trace.reserve(count);
  // Realistic mix: brushing dominates, aggregate switches are rare.
  const struct {
    InteractionKind kind;
    double weight;
  } mix[] = {
      {InteractionKind::kTimeBrushMove, 0.38},
      {InteractionKind::kTimeBrushResize, 0.14},
      {InteractionKind::kFilterTighten, 0.14},
      {InteractionKind::kFilterRelax, 0.08},
      {InteractionKind::kAggregateSwitch, 0.06},
      {InteractionKind::kPanZoom, 0.20},
  };
  double total = 0.0;
  for (const auto& m : mix) total += m.weight;
  for (std::size_t i = 0; i < count; ++i) {
    double u = rng.NextDouble() * total;
    InteractionKind kind = mix[0].kind;
    for (const auto& m : mix) {
      if (u < m.weight) {
        kind = m.kind;
        break;
      }
      u -= m.weight;
    }
    trace.push_back({kind, rng.NextDouble()});
  }
  return trace;
}

InteractionSession::InteractionSession(core::SpatialAggregation& engine,
                                       std::string attribute,
                                       std::int64_t t_min, std::int64_t t_max)
    : engine_(engine),
      attribute_(std::move(attribute)),
      t_min_(t_min),
      t_max_(std::max(t_max, t_min + 1)) {}

StatusOr<std::vector<FrameRecord>> InteractionSession::Replay(
    const std::vector<InteractionEvent>& trace,
    core::ExecutionMethod method) {
  // Evolving query state.
  const double span = static_cast<double>(t_max_ - t_min_);
  double window_start = 0.0;   // fraction of span
  double window_length = 0.25; // fraction of span
  bool has_attr_filter = false;
  double filter_lo_q = 0.0;    // quantile-ish fractions of the value range
  double filter_hi_q = 1.0;
  int aggregate_cycle = 0;

  // Attribute value range for filter construction.
  const float* attr_col = engine_.points().AttributeByName(attribute_);
  if (attr_col == nullptr) {
    return Status::InvalidArgument("session attribute not in table: " +
                                   attribute_);
  }
  const std::size_t attr_n = engine_.points().size();
  float attr_min = 0.0f;
  float attr_max = 1.0f;
  if (attr_n > 0) {
    attr_min = *std::min_element(attr_col, attr_col + attr_n);
    attr_max = *std::max_element(attr_col, attr_col + attr_n);
  }

  std::vector<FrameRecord> frames;
  frames.reserve(trace.size());
  for (const InteractionEvent& event : trace) {
    switch (event.kind) {
      case InteractionKind::kTimeBrushMove:
        window_start = std::clamp(
            window_start + (event.magnitude - 0.5) * 0.3, 0.0,
            1.0 - window_length);
        break;
      case InteractionKind::kTimeBrushResize:
        window_length =
            std::clamp(0.05 + event.magnitude * 0.45, 0.05, 0.5);
        window_start = std::min(window_start, 1.0 - window_length);
        break;
      case InteractionKind::kFilterTighten:
        has_attr_filter = true;
        filter_lo_q = event.magnitude * 0.4;
        filter_hi_q = 1.0 - (1.0 - event.magnitude) * 0.3;
        if (filter_hi_q <= filter_lo_q) {
          filter_hi_q = filter_lo_q + 0.05;
        }
        break;
      case InteractionKind::kFilterRelax:
        has_attr_filter = false;
        break;
      case InteractionKind::kAggregateSwitch:
        aggregate_cycle = (aggregate_cycle + 1) % 3;
        break;
      case InteractionKind::kPanZoom:
        // Camera-only: Urbane still refreshes the aggregation for the new
        // frame, so the query re-runs unchanged.
        break;
    }

    core::AggregationQuery query;
    switch (aggregate_cycle) {
      case 0:
        query.aggregate = core::AggregateSpec::Count();
        break;
      case 1:
        query.aggregate = core::AggregateSpec::Avg(attribute_);
        break;
      default:
        query.aggregate = core::AggregateSpec::Sum(attribute_);
        break;
    }
    const std::int64_t t0 =
        t_min_ + static_cast<std::int64_t>(span * window_start);
    const std::int64_t t1 =
        t_min_ +
        static_cast<std::int64_t>(span * (window_start + window_length));
    query.filter.WithTime(t0, std::max(t1, t0 + 1));
    if (has_attr_filter) {
      const double lo = attr_min + (attr_max - attr_min) * filter_lo_q;
      const double hi = attr_min + (attr_max - attr_min) * filter_hi_q;
      query.filter.WithRange(attribute_, lo, hi);
    }
    query.profile = profile_;

    const std::size_t hits_before = engine_.result_cache_hits();
    WallTimer timer;
    URBANE_ASSIGN_OR_RETURN(core::QueryResult result,
                            engine_.Execute(query, method));
    FrameRecord frame;
    frame.kind = event.kind;
    frame.latency_seconds = timer.ElapsedSeconds();
    frame.cache_hit = engine_.result_cache_hits() > hits_before;
    double checksum = 0.0;
    std::uint64_t matched = 0;
    for (std::size_t r = 0; r < result.size(); ++r) {
      if (std::isfinite(result.values[r])) {
        checksum += result.values[r];
      }
      matched += result.counts[r];
    }
    frame.checksum = checksum;
    frame.selectivity =
        engine_.points().size() == 0
            ? 0.0
            : static_cast<double>(matched) /
                  static_cast<double>(engine_.points().size());
    if (obs::MetricsEnabled()) {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      registry.GetCounter("session.frames").Add(1);
      registry.GetHistogram("session.frame_seconds")
          .Observe(frame.latency_seconds);
      if (frame.cache_hit) {
        registry.GetCounter("session.cache_hit_frames").Add(1);
      }
    }
    if (obs::JournalEnabled()) {
      obs::Event frame_event;
      frame_event.kind = obs::EventKind::kSessionFrame;
      frame_event.detail = static_cast<std::uint8_t>(event.kind);
      frame_event.value = frame.latency_seconds;
      if (frame.cache_hit) frame_event.flags |= obs::kEventCacheHit;
      obs::EmitEvent(frame_event);
    }
    frames.push_back(frame);
  }
  return frames;
}

}  // namespace urbane::app
