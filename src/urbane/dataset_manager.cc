#include "urbane/dataset_manager.h"

#include <filesystem>
#include <system_error>

#include "core/sql.h"
#include "data/binary_io.h"
#include "data/catalog.h"
#include "data/csv_loader.h"
#include "data/geojson.h"
#include "util/csv.h"

namespace urbane::app {

namespace {

// Directory part of a path ("" for bare filenames), with trailing slash.
std::string DirectoryOf(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string()
                                    : path.substr(0, slash + 1);
}

}  // namespace

Status DatasetManager::AddPointDataset(const std::string& name,
                                       data::PointTable table) {
  if (name.empty()) {
    return Status::InvalidArgument("data set name must be non-empty");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (points_.count(name) != 0) {
    return Status::AlreadyExists("data set already registered: " + name);
  }
  URBANE_RETURN_IF_ERROR(table.Validate());
  points_[name] = std::make_unique<data::PointTable>(std::move(table));
  return Status::OK();
}

Status DatasetManager::AddStoreDataset(const std::string& name,
                                       const std::string& path) {
  if (name.empty()) {
    return Status::InvalidArgument("data set name must be non-empty");
  }
  URBANE_ASSIGN_OR_RETURN(store::StoreReader reader,
                          store::StoreReader::Open(path));
  auto owned = std::make_unique<store::StoreReader>(std::move(reader));
  data::PointTable table;
  if (owned->mapped() || owned->row_count() == 0) {
    URBANE_ASSIGN_OR_RETURN(table, owned->MappedTable());
  } else {
    URBANE_ASSIGN_OR_RETURN(table, owned->Materialize());
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (points_.count(name) != 0) {
    return Status::AlreadyExists("data set already registered: " + name);
  }
  URBANE_RETURN_IF_ERROR(table.Validate());
  points_[name] = std::make_unique<data::PointTable>(std::move(table));
  stores_[name] = std::move(owned);
  return Status::OK();
}

StatusOr<store::StoreWriterStats> DatasetManager::ConvertToStore(
    const std::string& dataset, const std::string& path,
    std::uint64_t block_rows) {
  const data::PointTable* table = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    URBANE_ASSIGN_OR_RETURN(table, PointDatasetLocked(dataset));
  }
  // Conversion runs outside the lock: the table is immutable once
  // registered, and a long conversion must not stall concurrent queries.
  store::StoreWriterOptions options;
  options.block_rows = block_rows;
  return store::WritePointStore(*table, path, options);
}

Status DatasetManager::AddRegionLayer(const std::string& name,
                                      data::RegionSet regions) {
  if (name.empty()) {
    return Status::InvalidArgument("region layer name must be non-empty");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (regions_.count(name) != 0) {
    return Status::AlreadyExists("region layer already registered: " + name);
  }
  regions_[name] = std::make_unique<data::RegionSet>(std::move(regions));
  return Status::OK();
}

std::vector<std::string> DatasetManager::PointDatasetNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(points_.size());
  for (const auto& [name, table] : points_) {
    names.push_back(name);
  }
  return names;
}

std::vector<std::string> DatasetManager::RegionLayerNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(regions_.size());
  for (const auto& [name, set] : regions_) {
    names.push_back(name);
  }
  return names;
}

StatusOr<const data::PointTable*> DatasetManager::PointDatasetLocked(
    const std::string& name) const {
  const auto it = points_.find(name);
  if (it == points_.end()) {
    return Status::NotFound("unknown data set: " + name);
  }
  return const_cast<const data::PointTable*>(it->second.get());
}

StatusOr<const data::RegionSet*> DatasetManager::RegionLayerLocked(
    const std::string& name) const {
  const auto it = regions_.find(name);
  if (it == regions_.end()) {
    return Status::NotFound("unknown region layer: " + name);
  }
  return const_cast<const data::RegionSet*>(it->second.get());
}

StatusOr<const data::PointTable*> DatasetManager::PointDataset(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return PointDatasetLocked(name);
}

StatusOr<const data::RegionSet*> DatasetManager::RegionLayer(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return RegionLayerLocked(name);
}

StatusOr<core::SpatialAggregation*> DatasetManager::Engine(
    const std::string& dataset, const std::string& region_layer,
    const core::RasterJoinOptions& raster_options) {
  const std::string key = dataset + "\x1f" + region_layer;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = engines_.find(key);
  if (it != engines_.end()) {
    return it->second.get();
  }
  URBANE_ASSIGN_OR_RETURN(const data::PointTable* table,
                          PointDatasetLocked(dataset));
  URBANE_ASSIGN_OR_RETURN(const data::RegionSet* regions,
                          RegionLayerLocked(region_layer));
  auto engine = std::make_unique<core::SpatialAggregation>(*table, *regions,
                                                           raster_options);
  const auto store_it = stores_.find(dataset);
  if (store_it != stores_.end()) {
    engine->AttachZoneMaps(&store_it->second->zone_maps());
  }
  if (engine_shards_ > 1) {
    engine->set_num_shards(engine_shards_);
  }
  core::SpatialAggregation* raw = engine.get();
  engines_[key] = std::move(engine);
  return raw;
}

void DatasetManager::set_engine_shards(std::size_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  std::lock_guard<std::mutex> lock(mu_);
  engine_shards_ = num_shards;
  for (auto& [key, engine] : engines_) {
    engine->set_num_shards(num_shards);
  }
  for (auto& [key, engine] : live_engines_) {
    engine->set_num_shards(num_shards);
  }
}

std::size_t DatasetManager::engine_shards() const {
  std::lock_guard<std::mutex> lock(mu_);
  return engine_shards_;
}

StatusOr<const index::TemporalIndex*> DatasetManager::Temporal(
    const std::string& dataset) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = temporal_.find(dataset);
  if (it != temporal_.end()) {
    return const_cast<const index::TemporalIndex*>(it->second.get());
  }
  URBANE_ASSIGN_OR_RETURN(const data::PointTable* table,
                          PointDatasetLocked(dataset));
  URBANE_ASSIGN_OR_RETURN(
      index::TemporalIndex index,
      index::TemporalIndex::Build(table->ts(), table->size()));
  auto owned = std::make_unique<index::TemporalIndex>(std::move(index));
  const index::TemporalIndex* raw = owned.get();
  temporal_[dataset] = std::move(owned);
  return raw;
}

Status DatasetManager::EnableIngest(const std::string& dataset,
                                    const std::string& directory,
                                    std::vector<std::string> attribute_names,
                                    const ingest::IngestOptions& options) {
  if (dataset.empty()) {
    return Status::InvalidArgument("data set name must be non-empty");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (live_.count(dataset) != 0) {
    return Status::AlreadyExists("data set is already live: " + dataset);
  }
  const data::PointTable* base = nullptr;
  const core::ZoneMapIndex* base_zone_maps = nullptr;
  data::Schema schema;
  if (const auto it = points_.find(dataset); it != points_.end()) {
    base = it->second.get();
    schema = base->schema();
    if (!attribute_names.empty()) {
      return Status::InvalidArgument(
          "'" + dataset + "' is registered; its schema fixes the attribute "
          "columns (do not pass attribute names)");
    }
    if (const auto store_it = stores_.find(dataset);
        store_it != stores_.end()) {
      base_zone_maps = &store_it->second->zone_maps();
    }
  } else {
    URBANE_ASSIGN_OR_RETURN(schema,
                            data::Schema::Create(std::move(attribute_names)));
  }
  URBANE_ASSIGN_OR_RETURN(
      std::unique_ptr<ingest::LiveTable> table,
      ingest::LiveTable::Open(directory, std::move(schema), base,
                              base_zone_maps, options));
  live_[dataset] = std::move(table);
  return Status::OK();
}

bool DatasetManager::IsLive(const std::string& dataset) const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_.count(dataset) != 0;
}

std::vector<std::string> DatasetManager::LiveDatasetNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(live_.size());
  for (const auto& [name, table] : live_) {
    names.push_back(name);
  }
  return names;
}

StatusOr<std::uint64_t> DatasetManager::IngestBatch(
    const std::string& dataset, const data::PointTable& batch) {
  ingest::LiveTable* table = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = live_.find(dataset);
    if (it == live_.end()) {
      return Status::NotFound("not a live data set: " + dataset +
                              " (enable ingest first)");
    }
    table = it->second.get();
  }
  // Append outside the registry lock: the table serializes internally and
  // a saturated write path must not stall unrelated lookups.
  return table->Append(batch);
}

Status DatasetManager::FlushIngest(const std::string& dataset) {
  ingest::LiveTable* table = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = live_.find(dataset);
    if (it == live_.end()) {
      return Status::NotFound("not a live data set: " + dataset);
    }
    table = it->second.get();
  }
  return table->Flush();
}

Status DatasetManager::CompactIngest(const std::string& dataset) {
  ingest::LiveTable* table = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = live_.find(dataset);
    if (it == live_.end()) {
      return Status::NotFound("not a live data set: " + dataset);
    }
    table = it->second.get();
  }
  return table->Compact();
}

StatusOr<ingest::IngestStats> DatasetManager::IngestStatsFor(
    const std::string& dataset) const {
  const ingest::LiveTable* table = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = live_.find(dataset);
    if (it == live_.end()) {
      return Status::NotFound("not a live data set: " + dataset);
    }
    table = it->second.get();
  }
  return table->stats();
}

StatusOr<data::Schema> DatasetManager::LiveSchema(
    const std::string& dataset) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = live_.find(dataset);
  if (it == live_.end()) {
    return Status::NotFound("not a live data set: " + dataset);
  }
  return it->second->schema();
}

StatusOr<ingest::LiveEngine*> DatasetManager::Live(
    const std::string& dataset, const std::string& region_layer) {
  const std::string key = dataset + "\x1f" + region_layer;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = live_engines_.find(key);
  if (it != live_engines_.end()) {
    return it->second.get();
  }
  const auto live_it = live_.find(dataset);
  if (live_it == live_.end()) {
    return Status::NotFound("not a live data set: " + dataset);
  }
  URBANE_ASSIGN_OR_RETURN(const data::RegionSet* regions,
                          RegionLayerLocked(region_layer));
  ingest::LiveEngineOptions options;
  options.num_shards = engine_shards_;
  auto engine = std::make_unique<ingest::LiveEngine>(live_it->second.get(),
                                                     regions, options);
  ingest::LiveEngine* raw = engine.get();
  live_engines_[key] = std::move(engine);
  return raw;
}

Status DatasetManager::LoadWorkspace(const std::string& manifest_path) {
  URBANE_ASSIGN_OR_RETURN(data::Catalog catalog,
                          data::Catalog::ReadFile(manifest_path));
  const std::string base = DirectoryOf(manifest_path);
  for (const data::CatalogEntry& entry : catalog.entries()) {
    const std::string path = base + entry.path;
    if (entry.kind == data::CatalogEntry::Kind::kPoints) {
      data::PointTable table;
      if (entry.format == "upt") {
        URBANE_ASSIGN_OR_RETURN(table, data::ReadPointTableBinary(path));
      } else {
        URBANE_ASSIGN_OR_RETURN(table, data::ReadPointTableCsvFile(path));
      }
      URBANE_RETURN_IF_ERROR(AddPointDataset(entry.name, std::move(table)));
    } else {
      data::RegionSet regions;
      if (entry.format == "urg") {
        URBANE_ASSIGN_OR_RETURN(regions, data::ReadRegionSetBinary(path));
      } else {
        URBANE_ASSIGN_OR_RETURN(regions, data::ReadGeoJsonRegionsFile(path));
      }
      URBANE_RETURN_IF_ERROR(AddRegionLayer(entry.name, std::move(regions)));
    }
  }
  return Status::OK();
}

Status DatasetManager::SaveWorkspace(const std::string& directory) const {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::IoError("cannot create workspace directory '" +
                           directory + "': " + ec.message());
  }
  std::lock_guard<std::mutex> lock(mu_);
  data::Catalog catalog;
  for (const auto& [name, table] : points_) {
    const std::string filename = name + ".upt";
    URBANE_RETURN_IF_ERROR(
        data::WritePointTableBinary(*table, directory + "/" + filename));
    data::CatalogEntry entry;
    entry.kind = data::CatalogEntry::Kind::kPoints;
    entry.name = name;
    entry.path = filename;
    URBANE_RETURN_IF_ERROR(catalog.Add(std::move(entry)));
  }
  for (const auto& [name, regions] : regions_) {
    const std::string filename = name + ".urg";
    URBANE_RETURN_IF_ERROR(
        data::WriteRegionSetBinary(*regions, directory + "/" + filename));
    data::CatalogEntry entry;
    entry.kind = data::CatalogEntry::Kind::kRegions;
    entry.name = name;
    entry.path = filename;
    URBANE_RETURN_IF_ERROR(catalog.Add(std::move(entry)));
  }
  return catalog.WriteFile(directory + "/urbane.workspace.json");
}

StatusOr<core::QueryResult> DatasetManager::ExecuteSql(
    const std::string& sql, core::ExecutionMethod method,
    obs::QueryTrace* trace, obs::QueryProfile* profile,
    std::uint64_t* watermark) {
  URBANE_ASSIGN_OR_RETURN(core::ParsedQuery parsed,
                          core::ParseQuerySql(sql));
  core::AggregationQuery query;
  query.aggregate = std::move(parsed.aggregate);
  query.filter = std::move(parsed.filter);
  query.trace = trace;
  query.profile = profile;
  if (IsLive(parsed.points_dataset)) {
    URBANE_ASSIGN_OR_RETURN(
        ingest::LiveEngine * engine,
        Live(parsed.points_dataset, parsed.regions_layer));
    return engine->Execute(std::move(query), method, watermark);
  }
  URBANE_ASSIGN_OR_RETURN(
      core::SpatialAggregation * engine,
      Engine(parsed.points_dataset, parsed.regions_layer));
  return engine->Execute(std::move(query), method);
}

}  // namespace urbane::app
