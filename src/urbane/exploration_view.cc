#include "urbane/exploration_view.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace urbane::app {

DataExplorationView::DataExplorationView(DatasetManager& manager,
                                         std::string region_layer)
    : manager_(manager), region_layer_(std::move(region_layer)) {}

StatusOr<ProfileTable> DataExplorationView::ComputeProfiles(
    core::ExecutionMethod method) {
  if (metrics_.empty()) {
    return Status::FailedPrecondition("no metrics added to the view");
  }
  URBANE_ASSIGN_OR_RETURN(const data::RegionSet* regions,
                          manager_.RegionLayer(region_layer_));
  ProfileTable table;
  for (const data::Region& region : regions->regions()) {
    table.region_names.push_back(region.name);
  }
  for (const ProfileMetric& metric : metrics_) {
    URBANE_ASSIGN_OR_RETURN(core::SpatialAggregation * engine,
                            manager_.Engine(metric.dataset, region_layer_));
    core::AggregationQuery query;
    query.aggregate = metric.aggregate;
    query.filter = metric.filter;
    URBANE_ASSIGN_OR_RETURN(core::QueryResult result,
                            engine->Execute(query, method));
    table.metric_labels.push_back(metric.label);
    table.values.push_back(std::move(result.values));
  }

  // z-score each metric column over its finite entries.
  table.zscores.resize(table.values.size());
  for (std::size_t m = 0; m < table.values.size(); ++m) {
    const std::vector<double>& col = table.values[m];
    double sum = 0.0;
    std::size_t n = 0;
    for (const double v : col) {
      if (std::isfinite(v)) {
        sum += v;
        ++n;
      }
    }
    const double mean = n > 0 ? sum / static_cast<double>(n) : 0.0;
    double var = 0.0;
    for (const double v : col) {
      if (std::isfinite(v)) {
        var += (v - mean) * (v - mean);
      }
    }
    const double stddev =
        n > 1 ? std::sqrt(var / static_cast<double>(n - 1)) : 0.0;
    std::vector<double>& z = table.zscores[m];
    z.resize(col.size());
    for (std::size_t r = 0; r < col.size(); ++r) {
      if (!std::isfinite(col[r]) || stddev == 0.0) {
        z[r] = 0.0;
      } else {
        z[r] = (col[r] - mean) / stddev;
      }
    }
  }
  return table;
}

std::vector<std::size_t> DataExplorationView::RankByMetric(
    const ProfileTable& table, std::size_t metric) {
  std::vector<std::size_t> order(table.region_count());
  std::iota(order.begin(), order.end(), 0);
  const std::vector<double>& col = table.values[metric];
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const double va = std::isfinite(col[a])
                                           ? col[a]
                                           : -std::numeric_limits<
                                                 double>::infinity();
                     const double vb = std::isfinite(col[b])
                                           ? col[b]
                                           : -std::numeric_limits<
                                                 double>::infinity();
                     return va > vb;
                   });
  return order;
}

std::vector<SimilarRegion> DataExplorationView::MostSimilar(
    const ProfileTable& table, std::size_t region_index, std::size_t k) {
  std::vector<SimilarRegion> hits;
  hits.reserve(table.region_count());
  for (std::size_t r = 0; r < table.region_count(); ++r) {
    if (r == region_index) continue;
    double d2 = 0.0;
    for (std::size_t m = 0; m < table.metric_count(); ++m) {
      const double diff = table.zscores[m][r] - table.zscores[m][region_index];
      d2 += diff * diff;
    }
    hits.push_back({r, std::sqrt(d2)});
  }
  std::sort(hits.begin(), hits.end(),
            [](const SimilarRegion& a, const SimilarRegion& b) {
              return a.distance < b.distance;
            });
  if (hits.size() > k) {
    hits.resize(k);
  }
  return hits;
}

StatusOr<std::vector<std::vector<double>>>
DataExplorationView::ComputeTimeSeries(const ProfileMetric& metric,
                                       std::int64_t t_begin,
                                       std::int64_t t_end, int bins,
                                       core::ExecutionMethod method) {
  if (bins <= 0 || t_end <= t_begin) {
    return Status::InvalidArgument("empty time range or non-positive bins");
  }
  URBANE_ASSIGN_OR_RETURN(core::SpatialAggregation * engine,
                          manager_.Engine(metric.dataset, region_layer_));
  std::vector<std::vector<double>> series;
  series.reserve(static_cast<std::size_t>(bins));
  const double span = static_cast<double>(t_end - t_begin);
  for (int b = 0; b < bins; ++b) {
    const std::int64_t lo =
        t_begin + static_cast<std::int64_t>(span * b / bins);
    const std::int64_t hi =
        t_begin + static_cast<std::int64_t>(span * (b + 1) / bins);
    core::AggregationQuery query;
    query.aggregate = metric.aggregate;
    query.filter = metric.filter;
    query.filter.time_range = core::TimeRange{lo, hi};
    URBANE_ASSIGN_OR_RETURN(core::QueryResult result,
                            engine->Execute(query, method));
    series.push_back(std::move(result.values));
  }
  return series;
}

}  // namespace urbane::app
