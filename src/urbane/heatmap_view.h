#ifndef URBANE_URBANE_HEATMAP_VIEW_H_
#define URBANE_URBANE_HEATMAP_VIEW_H_

#include <string>

#include "core/filter.h"
#include "data/point_table.h"
#include "raster/image.h"
#include "util/color.h"
#include "util/status.h"

namespace urbane::app {

/// Point-density heatmap options (Urbane's raw-points layer, shown when the
/// user zooms past the region level).
struct HeatmapOptions {
  int image_width = 800;
  ColormapKind colormap = ColormapKind::kMagma;
  bool log_scale = true;
  /// Optional world window; empty -> point bounds.
  geometry::BoundingBox world;
};

/// Splats the filtered points into a density raster and color-maps it —
/// pass 1 of Raster Join doubling as a visualization, exactly how the GPU
/// implementation previews its point texture.
StatusOr<raster::Image> RenderHeatmap(const data::PointTable& points,
                                      const core::FilterSpec& filter,
                                      const HeatmapOptions& options =
                                          HeatmapOptions());

StatusOr<raster::Image> RenderHeatmapToFile(const data::PointTable& points,
                                            const core::FilterSpec& filter,
                                            const std::string& path,
                                            const HeatmapOptions& options =
                                                HeatmapOptions());

}  // namespace urbane::app

#endif  // URBANE_URBANE_HEATMAP_VIEW_H_
