#include "urbane/heatmap_view.h"

#include "raster/point_splat.h"
#include "raster/viewport.h"

namespace urbane::app {

StatusOr<raster::Image> RenderHeatmap(const data::PointTable& points,
                                      const core::FilterSpec& filter,
                                      const HeatmapOptions& options) {
  geometry::BoundingBox world = options.world;
  if (world.IsEmpty()) {
    world = points.Bounds();
  }
  if (world.IsEmpty()) {
    return Status::InvalidArgument("cannot render a heatmap of no points");
  }
  world = world.Expanded(1e-7 * std::max(1.0, world.Width()));
  const raster::Viewport vp =
      raster::Viewport::WithSquarePixels(world, options.image_width);

  URBANE_ASSIGN_OR_RETURN(core::FilterSelection selection,
                          core::EvaluateFilter(filter, points));
  raster::Buffer2D<std::uint32_t> counts(vp.width(), vp.height(), 0);
  raster::SplatPointsSubset(
      vp, points.xs(), points.ys(), selection.ids, raster::BlendOp::kAdd,
      [](std::size_t) { return 1u; }, counts);
  return raster::ColormapCounts(counts, Colormap::Make(options.colormap),
                                options.log_scale);
}

StatusOr<raster::Image> RenderHeatmapToFile(const data::PointTable& points,
                                            const core::FilterSpec& filter,
                                            const std::string& path,
                                            const HeatmapOptions& options) {
  URBANE_ASSIGN_OR_RETURN(raster::Image image,
                          RenderHeatmap(points, filter, options));
  URBANE_RETURN_IF_ERROR(raster::WritePpm(image, path));
  return image;
}

}  // namespace urbane::app
