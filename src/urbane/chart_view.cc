#include "urbane/chart_view.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "raster/font.h"
#include "raster/rasterizer.h"
#include "raster/viewport.h"
#include "util/string_util.h"

namespace urbane::app {

namespace {

constexpr int kMarginLeft = 46;
constexpr int kMarginRight = 8;
constexpr int kMarginBottom = 18;
constexpr int kMarginTop = 24;

std::string AxisLabel(double value) {
  const double magnitude = std::fabs(value);
  if (magnitude >= 1e6) return StringPrintf("%.1fM", value / 1e6);
  if (magnitude >= 1e3) return StringPrintf("%.1fK", value / 1e3);
  if (value == std::floor(value)) return StringPrintf("%.0f", value);
  return StringPrintf("%.2f", value);
}

// 1-pixel-ish line from (x0, y0) to (x1, y1) in image coordinates.
void DrawLine(raster::Image& image, double x0, double y0, double x1,
              double y1, const Rgb& color) {
  const raster::Viewport vp(
      geometry::BoundingBox(0, 0, image.width(), image.height()),
      image.width(), image.height());
  raster::RasterizeSegmentConservative(
      vp, {x0, y0}, {x1, y1}, [&](int x, int y) { image.at(x, y) = color; });
}

}  // namespace

StatusOr<raster::Image> RenderTimeSeriesChart(
    const std::vector<ChartSeries>& series, const ChartOptions& options) {
  if (series.empty()) {
    return Status::InvalidArgument("chart needs at least one series");
  }
  const std::size_t bins = series.front().values.size();
  if (bins < 2) {
    return Status::InvalidArgument("chart series need >= 2 points");
  }
  for (const ChartSeries& s : series) {
    if (s.values.size() != bins) {
      return Status::InvalidArgument("chart series lengths disagree");
    }
  }
  if (options.width < kMarginLeft + kMarginRight + 32 ||
      options.height < kMarginTop + kMarginBottom + 32) {
    return Status::InvalidArgument("chart canvas too small");
  }

  // y range.
  double lo = options.y_lo;
  double hi = options.y_hi;
  if (lo == hi) {
    lo = std::numeric_limits<double>::infinity();
    hi = -std::numeric_limits<double>::infinity();
    for (const ChartSeries& s : series) {
      for (const double v : s.values) {
        if (!std::isfinite(v)) continue;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
    if (!(hi > lo)) hi = lo + 1.0;
    if (options.include_zero) {
      lo = std::min(lo, 0.0);
      hi = std::max(hi, 0.0);
    }
  }

  raster::Image image(options.width, options.height, options.background);
  const int plot_x0 = kMarginLeft;
  const int plot_x1 = options.width - kMarginRight;
  const int plot_y0 = kMarginBottom;
  const int plot_y1 = options.height - kMarginTop;

  // Axes.
  DrawLine(image, plot_x0, plot_y0, plot_x1, plot_y0, options.axis_color);
  DrawLine(image, plot_x0, plot_y0, plot_x0, plot_y1, options.axis_color);
  raster::DrawText(image, 2, plot_y1, AxisLabel(hi), options.axis_color);
  raster::DrawText(image, 2, plot_y0 + raster::TextHeight(), AxisLabel(lo),
                   options.axis_color);
  if (!options.title.empty()) {
    raster::DrawText(image, plot_x0, options.height - 4, options.title,
                     options.axis_color);
  }

  const Colormap palette = Colormap::Make(options.palette);
  auto x_of = [&](std::size_t bin) {
    return plot_x0 + 1 +
           (plot_x1 - plot_x0 - 2) * static_cast<double>(bin) /
               static_cast<double>(bins - 1);
  };
  auto y_of = [&](double v) {
    return plot_y0 + 1 + (plot_y1 - plot_y0 - 2) * (v - lo) / (hi - lo);
  };

  int legend_x = plot_x0 + 60;
  for (std::size_t s = 0; s < series.size(); ++s) {
    const Rgb color = palette.Map(
        series.size() == 1
            ? 0.7
            : 0.15 + 0.75 * static_cast<double>(s) /
                         static_cast<double>(series.size() - 1));
    for (std::size_t b = 0; b + 1 < bins; ++b) {
      const double va = series[s].values[b];
      const double vb = series[s].values[b + 1];
      if (!std::isfinite(va) || !std::isfinite(vb)) continue;  // gap
      DrawLine(image, x_of(b), y_of(std::clamp(va, lo, hi)), x_of(b + 1),
               y_of(std::clamp(vb, lo, hi)), color);
    }
    if (!series[s].label.empty() && legend_x < plot_x1 - 40) {
      legend_x = raster::DrawText(image, legend_x, options.height - 4,
                                  series[s].label, color) +
                 10;
    }
  }
  return image;
}

StatusOr<raster::Image> RenderTimeSeriesChartToFile(
    const std::vector<ChartSeries>& series, const std::string& path,
    const ChartOptions& options) {
  URBANE_ASSIGN_OR_RETURN(raster::Image image,
                          RenderTimeSeriesChart(series, options));
  URBANE_RETURN_IF_ERROR(raster::WritePpm(image, path));
  return image;
}

}  // namespace urbane::app
