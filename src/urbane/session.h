#ifndef URBANE_URBANE_SESSION_H_
#define URBANE_URBANE_SESSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/planner.h"
#include "core/spatial_aggregation.h"
#include "util/timer.h"

namespace urbane::app {

/// The interactions a demo visitor performs against Urbane. Every event
/// mutates the session's query state and triggers a fresh spatial
/// aggregation — the workload the paper claims must stay interactive.
enum class InteractionKind {
  kTimeBrushMove,    // slide the time window
  kTimeBrushResize,  // widen/narrow the time window
  kFilterTighten,    // add / tighten an attribute range
  kFilterRelax,      // drop attribute ranges
  kAggregateSwitch,  // COUNT -> AVG(fare) -> ... cycle
  kPanZoom,          // camera-only move (still re-queries in Urbane's design)
};

const char* InteractionKindToString(InteractionKind kind);

struct InteractionEvent {
  InteractionKind kind = InteractionKind::kTimeBrushMove;
  /// Kind-specific magnitude in [0, 1] (e.g. how far the brush moved).
  double magnitude = 0.5;
};

/// One replayed frame: what happened and how long the backing query took.
struct FrameRecord {
  InteractionKind kind;
  double latency_seconds = 0.0;
  double selectivity = 1.0;
  /// Sum of the per-region values (cheap checksum for comparing replays
  /// across executors).
  double checksum = 0.0;
  /// Whether the engine's result cache served this frame (detected via the
  /// engine-wide hit counter, so with several concurrent sessions on one
  /// engine this is approximate — a neighbor's hit can be attributed here).
  bool cache_hit = false;
};

/// Summary of a replay, as reported by the F8 experiment.
struct SessionSummary {
  std::size_t frames = 0;
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double max_seconds = 0.0;
  double total_seconds = 0.0;
  /// Frames under the interactivity budget (100 ms — the usual HCI bar the
  /// demo targets).
  std::size_t interactive_frames = 0;
  /// Frames served from the engine's result cache (0 when caching is off).
  std::size_t cache_hit_frames = 0;
};

SessionSummary SummarizeFrames(const std::vector<FrameRecord>& frames,
                               double interactive_budget_seconds = 0.1);

/// Deterministic pseudo-user: generates a plausible exploration trace
/// (brushing back and forth in time, tightening filters, switching
/// aggregates, panning).
std::vector<InteractionEvent> GenerateInteractionTrace(std::size_t count,
                                                       std::uint64_t seed);

/// Replays a trace against one engine/executor, maintaining evolving query
/// state (time window over [t_min, t_max], attribute filters over the
/// table's first attribute, rotating aggregates).
class InteractionSession {
 public:
  /// `engine` must outlive the session. `attribute` is the column used for
  /// filter / aggregate events (must exist in the engine's table).
  InteractionSession(core::SpatialAggregation& engine, std::string attribute,
                     std::int64_t t_min, std::int64_t t_max);

  StatusOr<std::vector<FrameRecord>> Replay(
      const std::vector<InteractionEvent>& trace,
      core::ExecutionMethod method);

  /// When non-null, every replayed frame's query carries this profile
  /// (overwritten per frame — only the last frame's numbers survive). The
  /// fig8 profile-overhead ablation replays one trace with and without it
  /// to price per-request attribution; null (the default) keeps replay on
  /// the unobserved fast path.
  void set_profile(obs::QueryProfile* profile) { profile_ = profile; }

 private:
  core::SpatialAggregation& engine_;
  std::string attribute_;
  std::int64_t t_min_;
  std::int64_t t_max_;
  obs::QueryProfile* profile_ = nullptr;
};

}  // namespace urbane::app

#endif  // URBANE_URBANE_SESSION_H_
