#include "urbane/server_backend.h"

#include <utility>

#include "core/sql.h"

namespace urbane::app {

StatusOr<server::BackendResult> DatasetManagerBackend::ExecuteSql(
    const std::string& sql, std::optional<core::ExecutionMethod> method,
    const core::QueryControl* control, obs::QueryProfile* profile) {
  URBANE_ASSIGN_OR_RETURN(core::ParsedQuery parsed, core::ParseQuerySql(sql));
  URBANE_ASSIGN_OR_RETURN(const data::RegionSet* regions,
                          manager_->RegionLayer(parsed.regions_layer));

  core::AggregationQuery query;
  query.aggregate = std::move(parsed.aggregate);
  query.filter = std::move(parsed.filter);
  query.control = control;
  query.profile = profile;

  server::BackendResult out;
  out.dataset = parsed.points_dataset;
  out.regions_layer = parsed.regions_layer;
  core::QueryResult result;
  if (manager_->IsLive(parsed.points_dataset)) {
    // Live data sets execute against a consistent as-of snapshot; the
    // watermark says exactly which one, so clients can reason about
    // appends racing their queries.
    URBANE_ASSIGN_OR_RETURN(
        ingest::LiveEngine * engine,
        manager_->Live(parsed.points_dataset, parsed.regions_layer));
    std::uint64_t watermark = 0;
    if (method.has_value()) {
      URBANE_ASSIGN_OR_RETURN(
          result, engine->Execute(std::move(query), *method, &watermark));
      out.method = core::ExecutionMethodToString(*method);
      out.exact = *method != core::ExecutionMethod::kBoundedRaster;
    } else {
      core::AccuracyRequirement accuracy;
      core::QueryPlan plan;
      URBANE_ASSIGN_OR_RETURN(
          result, engine->ExecuteAuto(std::move(query), accuracy, &watermark,
                                      &plan));
      out.method = core::ExecutionMethodToString(plan.method);
      out.exact = plan.method != core::ExecutionMethod::kBoundedRaster;
    }
    out.watermark = watermark;
  } else if (method.has_value()) {
    URBANE_ASSIGN_OR_RETURN(
        core::SpatialAggregation * engine,
        manager_->Engine(parsed.points_dataset, parsed.regions_layer));
    URBANE_ASSIGN_OR_RETURN(result, engine->Execute(std::move(query),
                                                    *method));
    out.method = core::ExecutionMethodToString(*method);
    out.exact = *method != core::ExecutionMethod::kBoundedRaster;
  } else {
    URBANE_ASSIGN_OR_RETURN(
        core::SpatialAggregation * engine,
        manager_->Engine(parsed.points_dataset, parsed.regions_layer));
    core::AccuracyRequirement accuracy;  // exact; the planner picks the engine
    URBANE_ASSIGN_OR_RETURN(result,
                            engine->ExecuteAuto(std::move(query), accuracy));
    const core::QueryPlan plan = engine->last_plan();
    out.method = core::ExecutionMethodToString(plan.method);
    out.exact = plan.method != core::ExecutionMethod::kBoundedRaster;
  }

  out.rows.reserve(result.size());
  for (std::size_t i = 0; i < result.size(); ++i) {
    server::RegionRow row;
    if (i < regions->size()) {
      row.id = (*regions)[i].id;
      row.name = (*regions)[i].name;
    }
    row.value = result.values[i];
    row.count = i < result.counts.size() ? result.counts[i] : 0;
    if (i < result.error_bounds.size()) {
      row.error_bound = result.error_bounds[i];
      row.has_error_bound = true;
    }
    out.rows.push_back(std::move(row));
  }
  return out;
}

StatusOr<server::IngestResponse> DatasetManagerBackend::Ingest(
    const server::IngestRequest& request) {
  URBANE_ASSIGN_OR_RETURN(std::uint64_t watermark,
                          manager_->IngestBatch(request.dataset,
                                                request.batch));
  server::IngestResponse response;
  response.watermark = watermark;
  response.rows_appended = request.batch.size();
  return response;
}

std::vector<server::CatalogEntry> DatasetManagerBackend::ListDatasets() {
  std::vector<server::CatalogEntry> entries;
  for (const std::string& name : manager_->PointDatasetNames()) {
    server::CatalogEntry entry;
    entry.name = name;
    if (const auto table = manager_->PointDataset(name); table.ok()) {
      entry.size = (*table)->size();
    }
    // A live data set layered on this name reports the full visible row
    // count (base + runs + hot), replacing the base-only size.
    if (const auto stats = manager_->IngestStatsFor(name); stats.ok()) {
      entry.size = stats->watermark;
    }
    entries.push_back(std::move(entry));
  }
  for (const std::string& name : manager_->LiveDatasetNames()) {
    if (const auto table = manager_->PointDataset(name); table.ok()) {
      continue;  // already listed above
    }
    server::CatalogEntry entry;
    entry.name = name;
    if (const auto stats = manager_->IngestStatsFor(name); stats.ok()) {
      entry.size = stats->watermark;
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::vector<server::CatalogEntry> DatasetManagerBackend::ListRegionLayers() {
  std::vector<server::CatalogEntry> entries;
  for (const std::string& name : manager_->RegionLayerNames()) {
    server::CatalogEntry entry;
    entry.name = name;
    if (const auto regions = manager_->RegionLayer(name); regions.ok()) {
      entry.size = (*regions)->size();
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

}  // namespace urbane::app
