#ifndef URBANE_URBANE_MAP_VIEW_H_
#define URBANE_URBANE_MAP_VIEW_H_

#include <string>

#include "core/aggregate.h"
#include "data/region.h"
#include "raster/image.h"
#include "raster/viewport.h"
#include "util/color.h"
#include "util/status.h"

namespace urbane::app {

/// Rendering options of the choropleth map view (the paper's Figure 1:
/// per-neighborhood aggregates painted over the city).
struct MapViewOptions {
  int image_width = 800;
  ColormapKind colormap = ColormapKind::kViridis;
  /// log1p-scale values before color mapping (urban counts are heavy
  /// tailed).
  bool log_scale = true;
  /// Draw region boundaries in a dark outline.
  bool draw_boundaries = true;
  Rgb background{20, 20, 24};
  Rgb boundary_color{235, 235, 235};
  /// Explicit value range for the color scale; lo == hi -> auto.
  double scale_lo = 0.0;
  double scale_hi = 0.0;
  /// Draw a legend bar with the scale range, plus an optional title line.
  bool draw_legend = true;
  std::string title;
  /// Level-of-detail: simplify region outlines (Douglas–Peucker) to this
  /// tolerance in *pixels* before rasterizing. 0 disables. Urbane uses this
  /// at coarse zoom levels where sub-pixel boundary detail is invisible.
  double simplify_tolerance_px = 0.0;
};

/// Result of a render: the image plus the legend range actually used.
struct MapRender {
  raster::Image image;
  double legend_lo = 0.0;
  double legend_hi = 0.0;
};

/// Paints one choropleth frame: every region filled with the color of its
/// aggregate value. `result` must be in `regions` order (the output of any
/// executor).
StatusOr<MapRender> RenderChoropleth(const data::RegionSet& regions,
                                     const core::QueryResult& result,
                                     const MapViewOptions& options =
                                         MapViewOptions());

/// Convenience: render and write a PPM next to returning the render.
StatusOr<MapRender> RenderChoroplethToFile(const data::RegionSet& regions,
                                           const core::QueryResult& result,
                                           const std::string& path,
                                           const MapViewOptions& options =
                                               MapViewOptions());

}  // namespace urbane::app

#endif  // URBANE_URBANE_MAP_VIEW_H_
