#ifndef URBANE_INGEST_LIVE_ENGINE_H_
#define URBANE_INGEST_LIVE_ENGINE_H_

// Snapshot-composed query execution over a LiveTable.
//
// Every query runs against one LiveTable::Snapshot() — a consistent as-of
// picture of base + runs + hot — so a query never sees half an append and
// the watermark it reports is exactly the row count it executed over.
// Each component gets its own core::SpatialAggregation engine (zone maps
// attached for store-backed components, the configured shard fan-out for
// all of them); the per-component partial results merge under the shard
// contract (shard/shard_merge.h), which is exactly the merge a sharded
// engine applies to row-range shards — a component is just a shard whose
// boundary is a run boundary. All component engines pin one shared canvas
// world (the union of every component's bounds and the region bounds), so
// raster canvases align bit-for-bit with a stop-the-world engine over the
// concatenated rows: the ingest-equivalence oracle in
// tests/ingest/live_engine_test.cc checks bit-identity per executor,
// aggregate, filter, thread count and shard fan-out.
//
// Result caching & watermark semantics: the engine keeps one QueryCache
// whose keys deliberately exclude the watermark. Appends invalidate by
// *time overlap* instead (LiveTable's append log supplies the appended
// intervals), so an answer over a fully-closed time range keeps hitting
// across appends that only touch newer times — the fix for the coarse
// config-epoch invalidation. Flush/compact events also invalidate their
// run's interval: the row set is unchanged but the Morton re-order changes
// float summation order, so a cached SUM could differ bitwise from a
// re-execution.

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/planner.h"
#include "core/query.h"
#include "core/query_cache.h"
#include "core/spatial_aggregation.h"
#include "core/temporal_canvas.h"
#include "data/region.h"
#include "ingest/live_table.h"
#include "util/status.h"

namespace urbane::ingest {

struct LiveEngineOptions {
  core::RasterJoinOptions raster_options;  // world is pinned internally
  core::IndexJoinOptions index_options;
  core::ExecutionContext exec;
  /// Shard fan-out applied to every component engine (1 = unsharded).
  std::size_t num_shards = 1;
  /// Result cache bound (0 disables, like the facade's default).
  std::size_t cache_entries = 0;
  std::size_t cache_max_bytes = 256u << 20;
  /// Layout of the lazily-built time-brushing index (world/time_domain are
  /// pinned internally so incremental Append stays rebuild-identical).
  core::TemporalCanvasOptions canvas_options;
};

class LiveEngine {
 public:
  /// `table` and `regions` are borrowed and must outlive the engine.
  LiveEngine(LiveTable* table, const data::RegionSet* regions,
             const LiveEngineOptions& options = LiveEngineOptions());

  ~LiveEngine();
  LiveEngine(const LiveEngine&) = delete;
  LiveEngine& operator=(const LiveEngine&) = delete;

  /// Executes against the current snapshot. `watermark` (optional)
  /// receives the snapshot's visible row count — the as-of position the
  /// result is exact for. Safe to call concurrently with appends and
  /// flushes; concurrent Execute calls serialize on the engine mutex.
  StatusOr<core::QueryResult> Execute(core::AggregationQuery query,
                                      core::ExecutionMethod method,
                                      std::uint64_t* watermark = nullptr);

  /// Plans over the combined workload profile (total rows, shared world,
  /// row-weighted selectivity estimate), then executes the chosen method at
  /// the engine's configured resolution. `plan` (optional) receives the
  /// choice.
  StatusOr<core::QueryResult> ExecuteAuto(
      core::AggregationQuery query, const core::AccuracyRequirement& accuracy,
      std::uint64_t* watermark = nullptr, core::QueryPlan* plan = nullptr);

  /// COUNT per region over a bin-snapped time window, served by the
  /// incrementally-maintained TemporalCanvasIndex (built lazily on first
  /// use, appended to — never rebuilt — as rows arrive, unless the world
  /// grows or the append log overflowed).
  StatusOr<core::QueryResult> BrushTimeWindow(
      std::int64_t t_begin, std::int64_t t_end,
      std::int64_t* snapped_begin = nullptr,
      std::int64_t* snapped_end = nullptr, std::uint64_t* watermark = nullptr);

  /// Reconfigures the component fan-out; bumps the epoch (cached results
  /// from a different fan-out could differ bitwise).
  void set_num_shards(std::size_t num_shards);

  void set_result_cache_capacity(std::size_t capacity);
  core::QueryCacheStats result_cache_stats() const { return cache_.stats(); }

  const LiveTable& table() const { return *table_; }
  const data::RegionSet& regions() const { return *regions_; }
  std::uint64_t config_epoch() const { return epoch_; }

 private:
  /// One entry of the component stack with its lazily-reused engine.
  struct Component {
    /// Identity for engine reuse across refreshes: the base table pointer,
    /// the LiveRun pointer, or the hot tag below.
    const void* identity = nullptr;
    std::shared_ptr<const LiveRun> run;   // keeps a run component alive
    std::shared_ptr<Memtable> hot_owner;  // keeps the hot columns alive
    data::PointTable hot_table;           // stable view storage (hot only)
    const data::PointTable* table = nullptr;
    const core::ZoneMapIndex* zone_maps = nullptr;
    std::unique_ptr<core::SpatialAggregation> engine;
  };

  /// Reconciles components with the snapshot, handles world growth
  /// (rebuild everything + clear cache) and catches up the append log
  /// (scoped cache invalidation + canvas appends). Requires mu_ held.
  Status RefreshLocked(const LiveSnapshot& snapshot);
  Status RebuildComponentEngineLocked(Component& component);
  StatusOr<core::QueryResult> ExecuteComposedLocked(
      const core::AggregationQuery& query, core::ExecutionMethod method);
  core::QueryResult EmptyResult(core::AggregateKind kind,
                                core::ExecutionMethod method) const;
  Status EnsureCanvasLocked(const LiveSnapshot& snapshot);

  LiveTable* const table_;
  const data::RegionSet* const regions_;
  LiveEngineOptions options_;

  /// Serializes refresh + execution (component engines already serialize
  /// per method internally; the coarse lock keeps refresh atomic).
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Component>> components_;
  geometry::BoundingBox world_;
  std::uint64_t epoch_ = 0;
  std::uint64_t seen_seq_ = 0;  // append-log position already applied
  std::uint64_t hot_generation_ = 0;
  std::uint64_t hot_rows_ = 0;
  core::QueryCache cache_;

  std::unique_ptr<core::TemporalCanvasIndex> canvas_;
  data::PointTable canvas_seed_;  // empty table the canvas is built over
  std::uint64_t canvas_seq_ = 0;  // append-log position folded into canvas

  /// Identity tag for the hot component (see Component::identity).
  static const char kHotTag;
};

}  // namespace urbane::ingest

#endif  // URBANE_INGEST_LIVE_ENGINE_H_
