#ifndef URBANE_INGEST_LIVE_TABLE_H_
#define URBANE_INGEST_LIVE_TABLE_H_

// The appendable data set: an LSM-style write path over the existing
// read-only store machinery.
//
// Row lifecycle (DESIGN.md §13):
//
//   append --> hot run (memtable, WAL-durable)
//          --> sealed run (immutable memtable awaiting flush)
//          --> store run (UST1 block file written through StoreWriter:
//              Morton-sorted blocks + zone maps, atomically swapped in)
//          --> [Compact()] merged store run
//
// Visibility & watermark: a batch is visible to queries the moment
// Append() returns, and the *watermark* is the total number of visible
// rows (base + every run + hot). Snapshot() returns an immutable picture
// of the component stack — base table, runs in generation order, hot
// prefix — that queries execute against; concurrent appends and flushes
// never mutate a snapshot's components (flush swaps a sealed run for a
// store run holding the same rows, and snapshots keep the old component
// alive via shared_ptr).
//
// Durability: every append is framed into a checksummed WAL segment before
// it is published (one segment per memtable generation; see wal.h).
// Sealing rotates the segment; a flush makes the run durable as a UST1
// file, commits a manifest (AtomicFileWriter: temp + fsync + rename +
// parent-dir fsync) naming the live run files and the lowest WAL
// generation still needed, then deletes the covered segments. Open()
// recovers by reading the manifest, opening the listed runs, ignoring and
// removing orphan run files (flush crashed before its manifest commit —
// their rows are still in the WAL), and replaying every committed WAL
// record at or above the floor into a fresh memtable, truncating any torn
// tail. Replay therefore reaches exactly the pre-crash visible state.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/zone_map.h"
#include "data/point_table.h"
#include "data/schema.h"
#include "geometry/bounding_box.h"
#include "ingest/memtable.h"
#include "ingest/wal.h"
#include "store/store_reader.h"
#include "util/status.h"

namespace urbane::ingest {

struct IngestOptions {
  /// Hot-run bound: Append returns ResourceExhausted (HTTP 429) when a
  /// batch does not fit and no seal can make room.
  std::size_t memtable_rows = 256 * 1024;
  /// Un-flushed sealed runs allowed before appends push back. The write
  /// path can absorb bursts of max_sealed_runs * memtable_rows rows while
  /// the flusher catches up.
  std::size_t max_sealed_runs = 4;
  /// > 0: a background thread seals the memtable at this row count and
  /// flushes sealed runs as they appear. 0 (default): sealing happens only
  /// at capacity and flushing only via Flush() — deterministic for tests.
  std::size_t auto_flush_rows = 0;
  /// fsync the WAL segment after every append (a durability point per
  /// batch). Off by default: the OS page cache absorbs the stream and
  /// Seal/Flush/Close sync — the trade every LSM write path offers.
  bool sync_wal_each_append = false;
  /// Block size of flushed UST1 run files (StoreWriterOptions::block_rows).
  std::uint64_t run_block_rows = 64 * 1024;
  /// Retained-append-log bound for incremental index/cache maintenance
  /// (see AppendLogEntry); oldest entries are dropped past either bound.
  std::size_t append_log_entries = 1024;
  std::size_t append_log_bytes = 64u << 20;
};

/// One immutable run in the component stack. Either memory-backed (a
/// sealed memtable) or store-backed (a flushed UST1 file); `table` is a
/// view either way, so readers are oblivious to which.
struct LiveRun {
  std::uint64_t generation = 0;
  std::uint64_t rows = 0;
  /// WAL generations this run's rows came from ([wal_lo, wal_hi]).
  std::uint64_t wal_lo = 0;
  std::uint64_t wal_hi = 0;
  /// Memory-backed: the sealed memtable owning the columns.
  std::shared_ptr<Memtable> mem;
  /// Store-backed: the open reader owning the mapping + its file path.
  std::unique_ptr<store::StoreReader> reader;
  std::string path;
  /// View over the run's rows (into `mem` or the reader's mapping).
  data::PointTable table;
  /// Exact extents (memtable fold or zone-map union — both bit-identical
  /// to a scan).
  geometry::BoundingBox bounds;
  std::pair<std::int64_t, std::int64_t> time_range{0, 0};

  bool store_backed() const { return reader != nullptr; }
  const core::ZoneMapIndex* zone_maps() const {
    return reader != nullptr ? &reader->zone_maps() : nullptr;
  }
};

/// An immutable as-of picture of the component stack. The canonical row
/// order — the order a stop-the-world rebuild would concatenate rows in —
/// is: base rows, then each run's rows in generation order (each run in
/// its stored order), then hot rows in arrival order.
struct LiveSnapshot {
  const data::PointTable* base = nullptr;  // null when the table has none
  const core::ZoneMapIndex* base_zone_maps = nullptr;
  std::vector<std::shared_ptr<const LiveRun>> runs;  // generation order
  /// Hot prefix: owner + a view over its first `hot_rows` rows.
  std::shared_ptr<Memtable> hot_owner;
  data::PointTable hot;
  std::uint64_t hot_rows = 0;
  /// Identity of the hot component: changes on every append and seal, so
  /// engines know when to rebuild their hot-run state.
  std::uint64_t hot_generation = 0;
  std::uint64_t hot_sequence = 0;
  /// Exact extents of the hot prefix (empty box / {0,0} when no rows).
  geometry::BoundingBox hot_bounds;
  std::pair<std::int64_t, std::int64_t> hot_time_range{0, 0};
  /// Total visible rows: base + runs + hot.
  std::uint64_t watermark = 0;
  /// Position in the append log (see AppendLogEntry).
  std::uint64_t append_seq = 0;
};

/// One entry of the bounded append log that engines use for incremental
/// maintenance: scoped cache invalidation needs the time interval, the
/// temporal-canvas catch-up needs the rows. Flush/compact events carry an
/// interval but no rows (the row set did not change, only its order — a
/// cached float SUM over that interval may differ bitwise from a
/// re-execution, so it must drop, but index counts are unaffected).
struct AppendLogEntry {
  std::uint64_t seq = 0;
  std::int64_t t_begin = 0;  // half-open [t_begin, t_end)
  std::int64_t t_end = 0;
  /// Owning copy of the appended batch; null for flush/compact entries.
  std::shared_ptr<const data::PointTable> rows;
};

struct IngestStats {
  std::uint64_t watermark = 0;
  std::uint64_t base_rows = 0;
  std::uint64_t hot_rows = 0;
  std::uint64_t sealed_runs = 0;
  std::uint64_t store_runs = 0;
  std::uint64_t appends = 0;
  std::uint64_t rows_appended = 0;
  std::uint64_t rejected = 0;
  std::uint64_t flushes = 0;
  std::uint64_t compactions = 0;
  std::uint64_t wal_bytes = 0;  // active segment
  std::uint64_t replayed_rows = 0;  // recovered by Open()
};

/// The appendable table. Thread-safe: Append / Snapshot / Flush / stats may
/// race freely (one mutex guards the component stack; flushing serializes
/// on its own mutex and only takes the stack mutex to swap components).
class LiveTable {
 public:
  /// Opens (or recovers) the live table rooted at `directory`, layered on
  /// top of an optional immutable base table (borrowed; may be null).
  /// `base_zone_maps` (borrowed, may be null) are the base's block zone
  /// maps when it is store-backed. The schema fixes the attribute columns
  /// appended batches must carry.
  static StatusOr<std::unique_ptr<LiveTable>> Open(
      const std::string& directory, data::Schema schema,
      const data::PointTable* base, const core::ZoneMapIndex* base_zone_maps,
      const IngestOptions& options = IngestOptions());

  ~LiveTable();

  LiveTable(const LiveTable&) = delete;
  LiveTable& operator=(const LiveTable&) = delete;

  /// Appends a batch: WAL first, then the memtable, then publication (the
  /// watermark advances and the batch is in every later Snapshot).
  /// ResourceExhausted when the write path is saturated — the caller
  /// should flush or back off (the server maps this onto HTTP 429).
  /// Returns the new watermark.
  StatusOr<std::uint64_t> Append(const data::PointTable& batch);

  /// Seals the hot run (if non-empty) and synchronously flushes every
  /// sealed run to a UST1 store run, committing the manifest and deleting
  /// covered WAL segments. Queries are never blocked: each swap happens
  /// under the stack mutex after the file is fully written.
  Status Flush();

  /// Merges all store runs into one (fewer components to execute and
  /// merge). No-op with fewer than two store runs.
  Status Compact();

  LiveSnapshot Snapshot() const;
  std::uint64_t watermark() const;
  IngestStats stats() const;
  const data::Schema& schema() const { return schema_; }
  const std::string& directory() const { return directory_; }

  /// Append-log entries with seq > since, oldest first. Sets *overflowed
  /// when entries beyond `since` were already dropped (the caller must
  /// fall back to a full rebuild / cache clear).
  std::vector<AppendLogEntry> EntriesSince(std::uint64_t since,
                                           bool* overflowed) const;

 private:
  LiveTable(std::string directory, data::Schema schema,
            const data::PointTable* base,
            const core::ZoneMapIndex* base_zone_maps, IngestOptions options);

  std::string WalPath(std::uint64_t generation) const;
  std::string RunPath(std::uint64_t generation) const;

  /// Seals the hot memtable into a memory run and rotates the WAL.
  /// Requires mu_ held; no-op when the memtable is empty.
  Status SealLocked();
  /// Writes one manifest naming `runs` and `wal_floor` (atomic commit).
  Status CommitManifest(const std::vector<std::shared_ptr<const LiveRun>>& runs,
                        std::uint64_t wal_floor);
  /// Flushes the oldest sealed run (returns false when none exist).
  StatusOr<bool> FlushOldestSealed();
  /// Appends an entry to the bounded append log. Requires mu_ held.
  void LogLocked(AppendLogEntry entry);
  void BackgroundLoop();

  const std::string directory_;
  const data::Schema schema_;
  const data::PointTable* const base_;  // borrowed, may be null
  const core::ZoneMapIndex* const base_zone_maps_;
  const IngestOptions options_;
  const std::uint64_t base_rows_;

  /// Guards the component stack, the WAL writer, and the counters.
  mutable std::mutex mu_;
  std::condition_variable flush_cv_;
  std::shared_ptr<Memtable> hot_;
  std::uint64_t hot_generation_ = 1;  // bumped on every seal
  std::uint64_t hot_sequence_ = 0;    // bumped on every append
  std::vector<std::shared_ptr<const LiveRun>> runs_;
  WalWriter wal_;
  std::uint64_t wal_generation_ = 1;
  std::uint64_t wal_record_seq_ = 0;  // per-segment, restarts at 1
  std::uint64_t wal_floor_ = 1;
  /// WAL generations feeding the current memtable ([lo, current]).
  std::uint64_t hot_wal_lo_ = 1;
  std::uint64_t next_run_generation_ = 1;
  std::uint64_t watermark_ = 0;
  std::deque<AppendLogEntry> append_log_;
  std::uint64_t append_seq_ = 0;
  std::uint64_t append_log_floor_ = 0;  // seq of the oldest retained - 1
  std::size_t append_log_bytes_ = 0;
  IngestStats counters_;

  /// Serializes flush/compact (file writes happen outside mu_).
  std::mutex flush_mu_;

  std::thread background_;
  bool stop_ = false;
};

}  // namespace urbane::ingest

#endif  // URBANE_INGEST_LIVE_TABLE_H_
