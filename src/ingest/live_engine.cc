#include "ingest/live_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "shard/shard_merge.h"

namespace urbane::ingest {

namespace {

/// The dependency interval a cached answer carries (see QueryCache).
std::optional<core::QueryCache::TimeInterval> CacheValidTime(
    const core::FilterSpec& filter) {
  if (!filter.time_range.has_value()) {
    return std::nullopt;
  }
  return core::QueryCache::TimeInterval{filter.time_range->begin,
                                        filter.time_range->end};
}

int CacheResolution(const core::ExecutionMethod method, int resolution) {
  return (method == core::ExecutionMethod::kBoundedRaster ||
          method == core::ExecutionMethod::kAccurateRaster)
             ? resolution
             : 0;
}

}  // namespace

const char LiveEngine::kHotTag = 0;

LiveEngine::LiveEngine(LiveTable* table, const data::RegionSet* regions,
                       const LiveEngineOptions& options)
    : table_(table),
      regions_(regions),
      options_(options),
      cache_(core::QueryCacheOptions{options.cache_entries,
                                     options.cache_max_bytes,
                                     /*shards=*/8}),
      canvas_seed_(table->schema()) {}

LiveEngine::~LiveEngine() = default;

Status LiveEngine::RebuildComponentEngineLocked(Component& component) {
  core::RasterJoinOptions raster = options_.raster_options;
  // PadCanvasWorld makes the pinned window bit-identical to the one a
  // stop-the-world engine derives from the concatenated rows (the raw
  // union alone differs by the derivation's edge padding).
  raster.world = core::PadCanvasWorld(world_);
  component.engine = std::make_unique<core::SpatialAggregation>(
      *component.table, *regions_, raster, options_.index_options,
      options_.exec);
  if (component.zone_maps != nullptr) {
    component.engine->AttachZoneMaps(component.zone_maps);
  }
  if (options_.num_shards > 1) {
    component.engine->set_num_shards(options_.num_shards);
  }
  return Status::OK();
}

Status LiveEngine::RefreshLocked(const LiveSnapshot& snapshot) {
  // The shared canvas world: union of the region bounds and every non-empty
  // component's exact bounds — identical to what a stop-the-world engine
  // over the concatenated rows would derive (min/max folds associate).
  geometry::BoundingBox world = regions_->Bounds();
  if (snapshot.base != nullptr && !snapshot.base->empty()) {
    world.Extend(snapshot.base->Bounds());
  }
  for (const auto& run : snapshot.runs) {
    if (run->rows > 0) {
      world.Extend(run->bounds);
    }
  }
  if (snapshot.hot_rows > 0) {
    world.Extend(snapshot.hot_bounds);
  }
  if (!(world == world_)) {
    // Growth changes every raster canvas, so nothing built under the old
    // world — engines, cached answers, the brush index — is reusable.
    world_ = world;
    ++epoch_;
    components_.clear();
    cache_.Clear();
    canvas_.reset();
  }

  // Reconcile the component stack in canonical order, reusing engines whose
  // component is unchanged (identity: base pointer / run pointer / hot tag).
  auto take = [this](const void* identity) -> std::unique_ptr<Component> {
    for (auto& component : components_) {
      if (component != nullptr && component->identity == identity) {
        return std::move(component);
      }
    }
    return nullptr;
  };
  std::vector<std::unique_ptr<Component>> next;
  if (snapshot.base != nullptr && !snapshot.base->empty()) {
    std::unique_ptr<Component> component = take(snapshot.base);
    if (component == nullptr) {
      component = std::make_unique<Component>();
      component->identity = snapshot.base;
      component->table = snapshot.base;
      component->zone_maps = snapshot.base_zone_maps;
      URBANE_RETURN_IF_ERROR(RebuildComponentEngineLocked(*component));
    }
    next.push_back(std::move(component));
  }
  for (const auto& run : snapshot.runs) {
    if (run->rows == 0) {
      continue;
    }
    std::unique_ptr<Component> component = take(run.get());
    if (component == nullptr) {
      component = std::make_unique<Component>();
      component->identity = run.get();
      component->run = run;
      component->table = &run->table;
      component->zone_maps = run->zone_maps();
      URBANE_RETURN_IF_ERROR(RebuildComponentEngineLocked(*component));
    }
    next.push_back(std::move(component));
  }
  if (snapshot.hot_rows > 0) {
    std::unique_ptr<Component> component = take(&kHotTag);
    if (component == nullptr || hot_generation_ != snapshot.hot_generation ||
        hot_rows_ != snapshot.hot_rows) {
      component = std::make_unique<Component>();
      component->identity = &kHotTag;
      component->hot_owner = snapshot.hot_owner;
      component->hot_table = snapshot.hot;  // view copy: shares the columns
      component->hot_table.SetCachedExtents(snapshot.hot_bounds,
                                            snapshot.hot_time_range);
      component->table = &component->hot_table;
      URBANE_RETURN_IF_ERROR(RebuildComponentEngineLocked(*component));
    }
    next.push_back(std::move(component));
  }
  components_ = std::move(next);
  hot_generation_ = snapshot.hot_generation;
  hot_rows_ = snapshot.hot_rows;

  // Catch up the append log: each appended batch invalidates exactly the
  // cached answers its time interval can affect; flush/compact entries do
  // the same for their run's interval (row order — and therefore float
  // summation order — changed). Overflow means unknown intervals were
  // dropped, so everything time-dependent goes.
  bool overflowed = false;
  const std::vector<AppendLogEntry> entries =
      table_->EntriesSince(seen_seq_, &overflowed);
  if (overflowed) {
    cache_.Clear();
    canvas_.reset();
  } else {
    for (const AppendLogEntry& entry : entries) {
      cache_.InvalidateTimeOverlap(entry.t_begin, entry.t_end);
    }
  }
  // Only advance to the snapshot we are about to execute against; entries
  // from appends racing past it re-apply next refresh (idempotent).
  seen_seq_ = std::max(seen_seq_, snapshot.append_seq);
  return Status::OK();
}

core::QueryResult LiveEngine::EmptyResult(
    core::AggregateKind kind, core::ExecutionMethod method) const {
  core::QueryResult result;
  const double empty_value =
      (kind == core::AggregateKind::kCount ||
       kind == core::AggregateKind::kSum)
          ? 0.0
          : std::numeric_limits<double>::quiet_NaN();
  result.values.assign(regions_->size(), empty_value);
  result.counts.assign(regions_->size(), 0);
  if (method == core::ExecutionMethod::kBoundedRaster) {
    result.error_bounds.assign(regions_->size(), 0.0);
  }
  return result;
}

StatusOr<core::QueryResult> LiveEngine::ExecuteComposedLocked(
    const core::AggregationQuery& query, core::ExecutionMethod method) {
  const core::AggregateKind kind = query.aggregate.kind;
  std::vector<core::QueryResult> partials;
  partials.reserve(components_.size());
  for (const auto& component : components_) {
    core::AggregationQuery partial_query;
    partial_query.aggregate = query.aggregate;
    partial_query.filter = query.filter;
    partial_query.trace = query.trace;
    partial_query.control = query.control;
    partial_query.profile = query.profile;
    if (kind == core::AggregateKind::kAvg) {
      // The shard-merge contract wants SUM partials for AVG (an average of
      // averages is wrong across unequal components). For the bounded
      // raster the partial additionally needs COUNT-semantics error bounds,
      // so SUM and COUNT run as one shared-splat batch and the COUNT
      // bounds are grafted on.
      partial_query.aggregate =
          core::AggregateSpec::Sum(query.aggregate.attribute);
      if (method == core::ExecutionMethod::kBoundedRaster) {
        core::AggregationQuery count_query = partial_query;
        count_query.aggregate = core::AggregateSpec::Count();
        std::vector<core::AggregationQuery> pair;
        pair.push_back(std::move(partial_query));
        pair.push_back(std::move(count_query));
        URBANE_ASSIGN_OR_RETURN(
            std::vector<core::QueryResult> results,
            component->engine->ExecuteMany(std::move(pair), method));
        core::QueryResult partial = std::move(results[0]);
        partial.error_bounds = std::move(results[1].error_bounds);
        partials.push_back(std::move(partial));
        continue;
      }
    }
    URBANE_ASSIGN_OR_RETURN(
        core::QueryResult partial,
        component->engine->Execute(std::move(partial_query), method));
    partials.push_back(std::move(partial));
  }
  if (partials.empty()) {
    return EmptyResult(kind, method);
  }
  return shard::MergeShardPartials(kind, partials);
}

StatusOr<core::QueryResult> LiveEngine::Execute(core::AggregationQuery query,
                                                core::ExecutionMethod method,
                                                std::uint64_t* watermark) {
  std::lock_guard<std::mutex> lock(mu_);
  const LiveSnapshot snapshot = table_->Snapshot();
  URBANE_RETURN_IF_ERROR(RefreshLocked(snapshot));
  if (watermark != nullptr) {
    *watermark = snapshot.watermark;
  }
  const bool cacheable = cache_.enabled();
  std::uint64_t key = 0;
  if (cacheable) {
    key = core::QueryCache::Fingerprint(
        query, method,
        CacheResolution(method, options_.raster_options.resolution), epoch_);
    if (std::optional<core::QueryResult> hit = cache_.Lookup(key)) {
      return *std::move(hit);
    }
  }
  URBANE_ASSIGN_OR_RETURN(core::QueryResult result,
                          ExecuteComposedLocked(query, method));
  if (cacheable) {
    cache_.Insert(key, result, CacheValidTime(query.filter));
  }
  return result;
}

StatusOr<core::QueryResult> LiveEngine::ExecuteAuto(
    core::AggregationQuery query, const core::AccuracyRequirement& accuracy,
    std::uint64_t* watermark, core::QueryPlan* plan) {
  std::lock_guard<std::mutex> lock(mu_);
  const LiveSnapshot snapshot = table_->Snapshot();
  URBANE_RETURN_IF_ERROR(RefreshLocked(snapshot));
  if (watermark != nullptr) {
    *watermark = snapshot.watermark;
  }

  core::WorkloadProfile profile;
  profile.num_regions = regions_->size();
  profile.total_region_vertices = regions_->TotalVertexCount();
  profile.world = world_;
  profile.available_shards = std::max<std::size_t>(1, options_.num_shards);
  double weighted_selectivity = 0.0;
  std::size_t total_rows = 0;
  for (const auto& component : components_) {
    const std::size_t rows = component->table->size();
    double selectivity = 1.0;
    if (!query.filter.IsTrivial()) {
      URBANE_ASSIGN_OR_RETURN(
          selectivity, component->engine->EstimateSelectivity(query.filter));
    }
    weighted_selectivity += selectivity * static_cast<double>(rows);
    total_rows += rows;
  }
  profile.num_points = total_rows;
  profile.selectivity =
      total_rows == 0 ? 1.0
                      : weighted_selectivity / static_cast<double>(total_rows);
  const core::QueryPlan chosen = core::PlanQuery(
      profile, accuracy, options_.raster_options.resolution);
  if (plan != nullptr) {
    *plan = chosen;
  }

  const bool cacheable = cache_.enabled();
  std::uint64_t key = 0;
  if (cacheable) {
    key = core::QueryCache::Fingerprint(
        query, chosen.method,
        CacheResolution(chosen.method, options_.raster_options.resolution),
        epoch_);
    if (std::optional<core::QueryResult> hit = cache_.Lookup(key)) {
      return *std::move(hit);
    }
  }
  URBANE_ASSIGN_OR_RETURN(core::QueryResult result,
                          ExecuteComposedLocked(query, chosen.method));
  if (cacheable) {
    cache_.Insert(key, result, CacheValidTime(query.filter));
  }
  return result;
}

Status LiveEngine::EnsureCanvasLocked(const LiveSnapshot& snapshot) {
  if (canvas_ != nullptr) {
    bool overflowed = false;
    const std::vector<AppendLogEntry> entries =
        table_->EntriesSince(canvas_seq_, &overflowed);
    if (!overflowed) {
      for (const AppendLogEntry& entry : entries) {
        if (entry.seq > snapshot.append_seq) {
          break;  // rows not in this snapshot; fold them in next time
        }
        if (entry.rows != nullptr) {
          URBANE_RETURN_IF_ERROR(canvas_->Append(*entry.rows));
        }
        canvas_seq_ = entry.seq;
      }
      return Status::OK();
    }
    canvas_.reset();  // unknown batches dropped: rebuild below
  }

  core::TemporalCanvasOptions options = options_.canvas_options;
  options.world = world_;
  if (!options.time_domain.has_value()) {
    // Pin the bin layout to the combined span so later appends never shift
    // it (out-of-domain times clamp into the edge bins).
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    bool any = false;
    for (const auto& component : components_) {
      const auto [t0, t1] = component->table->TimeRange();
      lo = any ? std::min(lo, t0) : t0;
      hi = any ? std::max(hi, t1) : t1;
      any = true;
    }
    options.time_domain = std::make_pair(lo, hi);
  }
  URBANE_ASSIGN_OR_RETURN(
      canvas_,
      core::TemporalCanvasIndex::Build(canvas_seed_, *regions_, options));
  for (const auto& component : components_) {
    URBANE_RETURN_IF_ERROR(canvas_->Append(*component->table));
  }
  canvas_seq_ = snapshot.append_seq;
  return Status::OK();
}

StatusOr<core::QueryResult> LiveEngine::BrushTimeWindow(
    std::int64_t t_begin, std::int64_t t_end, std::int64_t* snapped_begin,
    std::int64_t* snapped_end, std::uint64_t* watermark) {
  std::lock_guard<std::mutex> lock(mu_);
  const LiveSnapshot snapshot = table_->Snapshot();
  URBANE_RETURN_IF_ERROR(RefreshLocked(snapshot));
  URBANE_RETURN_IF_ERROR(EnsureCanvasLocked(snapshot));
  if (watermark != nullptr) {
    *watermark = snapshot.watermark;
  }
  return canvas_->QueryTimeWindow(t_begin, t_end, snapped_begin, snapped_end);
}

void LiveEngine::set_num_shards(std::size_t num_shards) {
  std::lock_guard<std::mutex> lock(mu_);
  if (num_shards == options_.num_shards) {
    return;
  }
  options_.num_shards = num_shards;
  for (const auto& component : components_) {
    component->engine->set_num_shards(std::max<std::size_t>(1, num_shards));
  }
  // A different fan-out can differ bitwise (float merge order), so cached
  // answers from the old configuration must become unreachable.
  ++epoch_;
}

void LiveEngine::set_result_cache_capacity(std::size_t capacity) {
  cache_.set_max_entries(capacity);
}

}  // namespace urbane::ingest
