#ifndef URBANE_INGEST_WAL_H_
#define URBANE_INGEST_WAL_H_

// Checksummed write-ahead log for the streaming-ingest hot run.
//
// One segment file per memtable generation. Layout (little-endian, the
// store's native byte order):
//
//   header:  magic "UWAL1\0\0\0" (8) | u32 version (=1) | u32 attr_count
//   record:  u64 sequence | u32 row_count | u32 crc32(payload) | payload
//   payload: x f32*n | y f32*n | t i64*n | attr_0 f32*n | ... (columnar)
//
// Sequences start at 1 within each segment and increment by one per record,
// so replay detects duplicated or reordered records without any external
// state. A record is *committed* iff it is completely present, its CRC
// matches, and its sequence is the expected next value; replay stops
// cleanly at the first record that is not — truncated tails, bit flips and
// duplicates all degrade to "the log ends here", never to a crash or to
// garbage rows (the corruption corpus in tests/ingest/wal_test.cc sweeps
// every field boundary, mirroring the store truncation sweep).

#include <cstdint>
#include <cstdio>
#include <string>

#include "data/point_table.h"
#include "data/schema.h"
#include "util/status.h"

namespace urbane::ingest {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over a byte buffer.
std::uint32_t Crc32(const void* data, std::size_t size);

/// Appender for one WAL segment. Not thread-safe; the LiveTable serializes
/// appends under its own mutex.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();

  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Creates the segment (truncating any stale file) and writes the header.
  static StatusOr<WalWriter> Create(const std::string& path,
                                    std::size_t attribute_count);

  /// Appends one record; `sequence` must be the previous record's + 1
  /// (first record: 1). The record is in the OS page cache after this
  /// returns — call Sync() for a durability point.
  Status Append(const data::PointTable& batch, std::uint64_t sequence);

  /// fflush + fsync: every appended record survives power loss.
  Status Sync();

  /// Sync + close. The writer is unusable afterwards.
  Status Close();

  bool open() const { return file_ != nullptr; }
  std::uint64_t bytes() const { return bytes_; }
  const std::string& path() const { return path_; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  std::size_t attribute_count_ = 0;
  std::uint64_t bytes_ = 0;
};

/// Outcome of replaying one segment.
struct WalReplayResult {
  /// Replayed rows in arrival order (owning table on `schema`).
  data::PointTable rows;
  std::uint64_t records = 0;
  /// Sequence of the last committed record (0 when the segment is empty).
  std::uint64_t last_sequence = 0;
  /// File offset just past the last committed record.
  std::uint64_t valid_bytes = 0;
  /// True when bytes past `valid_bytes` were present (torn tail, bit flip,
  /// duplicated record) and replay stopped there.
  bool tail_dropped = false;
};

/// Replays the committed prefix of a segment, validating byte-by-byte like
/// StoreReader::Open: header magic/version/arity, then records until the
/// first incomplete, corrupt or out-of-sequence one. Never fails on a
/// damaged tail — that is the normal crash shape — but does fail (IoError)
/// when the header itself is unreadable. With `truncate_invalid_tail` the
/// file is truncated to `valid_bytes` so a later reader sees a clean log.
StatusOr<WalReplayResult> ReplayWal(const std::string& path,
                                    const data::Schema& schema,
                                    bool truncate_invalid_tail);

}  // namespace urbane::ingest

#endif  // URBANE_INGEST_WAL_H_
