#include "ingest/wal.h"

#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <vector>

#include "util/string_util.h"

namespace urbane::ingest {

namespace {

constexpr char kWalMagic[8] = {'U', 'W', 'A', 'L', '1', '\0', '\0', '\0'};
constexpr std::uint32_t kWalVersion = 1;
// A record claiming more rows than this is corruption, not data: the cap
// keeps a bit-flipped row_count from driving a multi-gigabyte allocation.
constexpr std::uint32_t kMaxWalRecordRows = 1u << 24;

std::size_t PayloadBytes(std::size_t rows, std::size_t attribute_count) {
  return rows * (2 * sizeof(float) + sizeof(std::int64_t) +
                 attribute_count * sizeof(float));
}

struct RecordHeader {
  std::uint64_t sequence = 0;
  std::uint32_t row_count = 0;
  std::uint32_t crc = 0;
};

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

WalWriter::~WalWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

WalWriter::WalWriter(WalWriter&& other) noexcept
    : file_(other.file_),
      path_(std::move(other.path_)),
      attribute_count_(other.attribute_count_),
      bytes_(other.bytes_) {
  other.file_ = nullptr;
}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) {
      std::fclose(file_);
    }
    file_ = other.file_;
    path_ = std::move(other.path_);
    attribute_count_ = other.attribute_count_;
    bytes_ = other.bytes_;
    other.file_ = nullptr;
  }
  return *this;
}

StatusOr<WalWriter> WalWriter::Create(const std::string& path,
                                      std::size_t attribute_count) {
  WalWriter writer;
  writer.path_ = path;
  writer.attribute_count_ = attribute_count;
  writer.file_ = std::fopen(path.c_str(), "wb");
  if (writer.file_ == nullptr) {
    return Status::IoError("cannot create WAL segment: " + path + ": " +
                           std::strerror(errno));
  }
  const std::uint32_t version = kWalVersion;
  const std::uint32_t attrs = static_cast<std::uint32_t>(attribute_count);
  if (std::fwrite(kWalMagic, 1, sizeof(kWalMagic), writer.file_) !=
          sizeof(kWalMagic) ||
      std::fwrite(&version, sizeof(version), 1, writer.file_) != 1 ||
      std::fwrite(&attrs, sizeof(attrs), 1, writer.file_) != 1) {
    return Status::IoError("cannot write WAL header: " + path);
  }
  writer.bytes_ = sizeof(kWalMagic) + 2 * sizeof(std::uint32_t);
  return writer;
}

Status WalWriter::Append(const data::PointTable& batch,
                         std::uint64_t sequence) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("append on a closed WalWriter");
  }
  if (batch.empty()) {
    return Status::InvalidArgument("empty WAL record");
  }
  if (batch.schema().attribute_count() != attribute_count_) {
    return Status::InvalidArgument(StringPrintf(
        "WAL batch has %zu attributes, segment expects %zu",
        batch.schema().attribute_count(), attribute_count_));
  }
  const std::size_t rows = batch.size();
  if (rows > kMaxWalRecordRows) {
    return Status::InvalidArgument("WAL record too large");
  }
  // Assemble the columnar payload contiguously so one CRC covers it.
  std::vector<unsigned char> payload(PayloadBytes(rows, attribute_count_));
  unsigned char* out = payload.data();
  std::memcpy(out, batch.xs(), rows * sizeof(float));
  out += rows * sizeof(float);
  std::memcpy(out, batch.ys(), rows * sizeof(float));
  out += rows * sizeof(float);
  std::memcpy(out, batch.ts(), rows * sizeof(std::int64_t));
  out += rows * sizeof(std::int64_t);
  for (std::size_t c = 0; c < attribute_count_; ++c) {
    std::memcpy(out, batch.attribute_data(c), rows * sizeof(float));
    out += rows * sizeof(float);
  }

  RecordHeader header;
  header.sequence = sequence;
  header.row_count = static_cast<std::uint32_t>(rows);
  header.crc = Crc32(payload.data(), payload.size());
  if (std::fwrite(&header.sequence, sizeof(header.sequence), 1, file_) != 1 ||
      std::fwrite(&header.row_count, sizeof(header.row_count), 1, file_) !=
          1 ||
      std::fwrite(&header.crc, sizeof(header.crc), 1, file_) != 1 ||
      (payload.empty()
           ? false
           : std::fwrite(payload.data(), 1, payload.size(), file_) !=
                 payload.size())) {
    return Status::IoError("WAL append failure: " + path_);
  }
  bytes_ += sizeof(header.sequence) + sizeof(header.row_count) +
            sizeof(header.crc) + payload.size();
  return Status::OK();
}

Status WalWriter::Sync() {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("sync on a closed WalWriter");
  }
  if (std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
    return Status::IoError("WAL fsync failure: " + path_);
  }
  return Status::OK();
}

Status WalWriter::Close() {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("close on a closed WalWriter");
  }
  const Status synced = Sync();
  const int close_result = std::fclose(file_);
  file_ = nullptr;
  URBANE_RETURN_IF_ERROR(synced);
  if (close_result != 0) {
    return Status::IoError("WAL close failure: " + path_);
  }
  return Status::OK();
}

StatusOr<WalReplayResult> ReplayWal(const std::string& path,
                                    const data::Schema& schema,
                                    bool truncate_invalid_tail) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError("cannot open WAL segment: " + path + ": " +
                           std::strerror(errno));
  }
  // Everything below must fclose on exit; collect the outcome first.
  WalReplayResult result;
  result.rows = data::PointTable(schema);
  const std::size_t attribute_count = schema.attribute_count();

  char magic[sizeof(kWalMagic)];
  std::uint32_t version = 0;
  std::uint32_t attrs = 0;
  if (std::fread(magic, 1, sizeof(magic), file) != sizeof(magic) ||
      std::memcmp(magic, kWalMagic, sizeof(magic)) != 0) {
    std::fclose(file);
    return Status::IoError("not a WAL segment (bad magic): " + path);
  }
  if (std::fread(&version, sizeof(version), 1, file) != 1 ||
      version != kWalVersion) {
    std::fclose(file);
    return Status::IoError("unsupported WAL version: " + path);
  }
  if (std::fread(&attrs, sizeof(attrs), 1, file) != 1 ||
      attrs != attribute_count) {
    std::fclose(file);
    return Status::IoError(StringPrintf(
        "WAL attribute arity mismatch in %s: segment %u, schema %zu",
        path.c_str(), attrs, attribute_count));
  }
  result.valid_bytes = sizeof(kWalMagic) + 2 * sizeof(std::uint32_t);

  std::vector<unsigned char> payload;
  std::vector<float> floats;
  std::vector<std::int64_t> times;
  std::vector<float> attr_row(attribute_count, 0.0f);
  for (;;) {
    RecordHeader header;
    if (std::fread(&header.sequence, sizeof(header.sequence), 1, file) != 1 ||
        std::fread(&header.row_count, sizeof(header.row_count), 1, file) !=
            1 ||
        std::fread(&header.crc, sizeof(header.crc), 1, file) != 1) {
      break;  // clean EOF or torn record header
    }
    if (header.row_count == 0 || header.row_count > kMaxWalRecordRows) {
      break;  // corrupt length field
    }
    if (header.sequence != result.last_sequence + 1) {
      break;  // duplicated, reordered or skipped record
    }
    const std::size_t rows = header.row_count;
    payload.resize(PayloadBytes(rows, attribute_count));
    if (std::fread(payload.data(), 1, payload.size(), file) !=
        payload.size()) {
      break;  // torn payload
    }
    if (Crc32(payload.data(), payload.size()) != header.crc) {
      break;  // bit flip
    }
    // Committed: decode the columnar payload back into rows.
    const unsigned char* in = payload.data();
    const float* xs = reinterpret_cast<const float*>(in);
    const float* ys = xs + rows;
    const std::int64_t* ts =
        reinterpret_cast<const std::int64_t*>(ys + rows);
    const float* attr_base = reinterpret_cast<const float*>(ts + rows);
    result.rows.Reserve(result.rows.size() + rows);
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t c = 0; c < attribute_count; ++c) {
        attr_row[c] = attr_base[c * rows + i];
      }
      const Status appended =
          result.rows.AppendRow(xs[i], ys[i], ts[i], attr_row);
      if (!appended.ok()) {
        std::fclose(file);
        return appended;
      }
    }
    ++result.records;
    result.last_sequence = header.sequence;
    result.valid_bytes += sizeof(header.sequence) + sizeof(header.row_count) +
                          sizeof(header.crc) + payload.size();
  }

  // Anything past the committed prefix is a crash artifact.
  const long end = [&] {
    std::fseek(file, 0, SEEK_END);
    return std::ftell(file);
  }();
  std::fclose(file);
  if (end >= 0 && static_cast<std::uint64_t>(end) > result.valid_bytes) {
    result.tail_dropped = true;
    if (truncate_invalid_tail &&
        ::truncate(path.c_str(),
                   static_cast<off_t>(result.valid_bytes)) != 0) {
      return Status::IoError("cannot truncate WAL tail: " + path + ": " +
                             std::strerror(errno));
    }
  }
  return result;
}

}  // namespace urbane::ingest
